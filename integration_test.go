package parmonc_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parmonc"
	"parmonc/internal/rng"
	"parmonc/internal/store"
)

// TestLifecycleGenparamRunResumeManaver drives the complete user
// workflow of the paper in one flow: choose custom leap parameters with
// genparam, simulate, resume with a new seqnum, kill-and-recover with
// manaver, and confirm that every artifact on disk stays consistent.
func TestLifecycleGenparamRunResumeManaver(t *testing.T) {
	dir := t.TempDir()

	// 1. genparam: custom leaps written into the working directory.
	gp, err := rng.ComputeGenparam(100, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := rng.WriteGenparam(dir, gp); err != nil {
		t.Fatal(err)
	}

	realize := func(src *parmonc.Stream, out []float64) error {
		out[0] = src.Float64()
		return nil
	}
	cfg := parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples:          3000,
		Workers:             3,
		WorkDir:             dir,
		PassPeriod:          time.Millisecond,
		AverPeriod:          2 * time.Millisecond,
		SaveWorkerSnapshots: true,
		StrictExchange:      true,
	}

	// 2. first run picks the genparam file up automatically.
	r1, err := parmonc.Run(context.Background(), cfg, realize)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Meta.Params.ExperimentLeapLog2 != 100 {
		t.Fatalf("run ignored genparam file: %+v", r1.Meta.Params)
	}
	if r1.Report.N != 3000 {
		t.Fatalf("N = %d", r1.Report.N)
	}

	// 3. resume with a fresh experiments subsequence.
	cfg.Resume = true
	cfg.SeqNum = 1
	r2, err := parmonc.Run(context.Background(), cfg, realize)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Report.N != 6000 {
		t.Fatalf("resumed N = %d, want 6000", r2.Report.N)
	}
	if diff := math.Abs(r2.Report.MeanAt(0, 0) - 0.5); diff > r2.Report.AbsErrAt(0, 0)*4/3 {
		t.Fatalf("pooled mean off: %g", r2.Report.MeanAt(0, 0))
	}

	// 4. simulate a crash: remove the collector checkpoint, recover the
	// second run's results from worker snapshots via manaver.
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := parmonc.Manaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 6000 {
		t.Fatalf("manaver N = %d, want 6000", rep.N)
	}

	// 5. all paper-mandated files exist and the experiment log has both
	// runs.
	for _, name := range []string{store.FuncFile, store.FuncCIFile, store.FuncLogFile} {
		p := filepath.Join(dir, store.DataDir, store.ResultsDir, name)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s", name)
		}
	}
	exps, err := d.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || !strings.Contains(exps[1], "mode=resumed") {
		t.Fatalf("experiment log: %v", exps)
	}
}

// TestLifecycleDistributedMatchesLocal runs the same job through the
// in-process driver and through the TCP cluster and checks that both
// estimates agree within combined error bounds (they use different
// processor substreams, so exact equality is not expected).
func TestLifecycleDistributedMatchesLocal(t *testing.T) {
	realize := func(src *parmonc.Stream, out []float64) error {
		a := src.Float64()
		out[0] = a * a // E α² = 1/3
		return nil
	}

	local, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 40000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}, realize)
	if err != nil {
		t.Fatal(err)
	}

	spec := parmonc.JobSpec{
		Nrow: 1, Ncol: 1,
		MaxSamples: 40000,
		Params:     parmonc.DefaultParams(),
		Gamma:      3,
		PassEvery:  500,
	}
	coord, err := parmonc.NewCoordinator(spec, parmonc.CoordinatorConfig{
		WorkDir:    t.TempDir(),
		AverPeriod: time.Millisecond,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parmonc.RunWorker(ctx, coord.Addr(), func(int) (parmonc.Realization, error) {
				return realize, nil
			})
		}()
	}
	remote, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	exact := 1.0 / 3
	for name, got := range map[string]float64{
		"local":       local.Report.MeanAt(0, 0),
		"distributed": remote.MeanAt(0, 0),
	} {
		if math.Abs(got-exact) > 0.01 {
			t.Errorf("%s estimate %g, want ≈ 1/3", name, got)
		}
	}
}

// TestLifecycleExperimentsPublicAPI exercises RunExperiments through the
// public surface.
func TestLifecycleExperimentsPublicAPI(t *testing.T) {
	cfg := parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 2000,
		Workers:    2,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := parmonc.RunExperiments(context.Background(), cfg, []uint64{0, 1, 2, 3},
		func(int) (parmonc.Realization, error) {
			return func(src *parmonc.Stream, out []float64) error {
				out[0] = src.Float64()
				return nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined.N != 8000 {
		t.Fatalf("combined N = %d", res.Combined.N)
	}
	// The independent estimates must agree with each other within
	// combined 3σ bounds — the paper's validation-by-repetition.
	for i := 1; i < len(res.Reports); i++ {
		diff := math.Abs(res.Reports[i].MeanAt(0, 0) - res.Reports[0].MeanAt(0, 0))
		bound := res.Reports[i].AbsErrAt(0, 0) + res.Reports[0].AbsErrAt(0, 0)
		if diff > bound*4/3 {
			t.Errorf("experiments %d and 0 disagree: |Δ| = %g > %g", i, diff, bound)
		}
	}
}
