// Benchmark harness regenerating the paper's evaluation.
//
// The paper's quantitative evaluation is Fig. 2 (panels a–d): the
// computer time T_comp(L) for M = 1…512 processors under strict
// per-realization exchange, on the 2-D SDE workload of Sec. 4. Absolute
// times belong to the 2011 Siberian Supercomputer Center cluster; the
// claims under reproduction are the shapes — T_comp linear in L,
// speedup proportional to M, no crossovers — which these benchmarks
// emit as custom metrics (sim-T(L=..,M=..) in simulated seconds, and
// measured seconds for the real-goroutine variants).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// See EXPERIMENTS.md for paper-vs-measured tables generated from these
// benchmarks and from cmd/fig2.
package parmonc_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"parmonc"
	"parmonc/internal/baseline"
	"parmonc/internal/clustersim"
	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/lcg"
	"parmonc/internal/rng"
	"parmonc/internal/sde"
	"parmonc/internal/stat"
	"parmonc/internal/store"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

// benchPanel runs one Fig. 2 panel on the cluster simulator and reports
// every (L, M) point as a custom metric in simulated seconds.
func benchPanel(b *testing.B, ms []int, ls []int64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			for _, l := range ls {
				res, err := clustersim.Simulate(clustersim.PaperParams(m), l)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.TCompSeconds, fmt.Sprintf("simsec/L%d/M%d", l, m))
				}
			}
		}
	}
}

// BenchmarkFig2a — Fig. 2a: M = 1, 8; L up to 1000.
func BenchmarkFig2a(b *testing.B) {
	benchPanel(b, []int{1, 8}, []int64{200, 400, 600, 800, 1000})
}

// BenchmarkFig2b — Fig. 2b: M = 8, 16, 32; L up to 7500.
func BenchmarkFig2b(b *testing.B) {
	benchPanel(b, []int{8, 16, 32}, []int64{1500, 3000, 4500, 6000, 7500})
}

// BenchmarkFig2c — Fig. 2c: M = 32, 64, 128; L up to 25000.
func BenchmarkFig2c(b *testing.B) {
	benchPanel(b, []int{32, 64, 128}, []int64{5000, 10000, 15000, 20000, 25000})
}

// BenchmarkFig2d — Fig. 2d: M = 128, 256, 512; L up to 75000.
func BenchmarkFig2d(b *testing.B) {
	benchPanel(b, []int{128, 256, 512}, []int64{15000, 30000, 45000, 60000, 75000})
}

// BenchmarkRealSpeedup measures actual wall time with goroutine workers
// on a scaled-down version of the paper's SDE workload (mesh 10⁻⁴ so a
// realization costs ~10 ms instead of 7.7 s), under the same strict
// exchange conditions — the laptop-scale validation of the Fig. 2
// shape. The observable speedup is bounded by the physical core count
// (reported as the "cores" metric): on a single-core host all M curves
// coincide and only the simulated-cluster benchmarks can show the
// paper's scaling.
func BenchmarkRealSpeedup(b *testing.B) {
	const L = 256
	for _, m := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					Nrow: 100, Ncol: 2,
					MaxSamples:     L,
					Workers:        m,
					WorkDir:        b.TempDir(),
					StrictExchange: true,
					PassPeriod:     time.Second,
					AverPeriod:     time.Second,
				}
				_, err := core.RunFactory(context.Background(), cfg, func(int) (core.Realization, error) {
					return sde.PaperRealization(1e-4, 10.0, 100)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationExchange compares the paper's periodic-exchange
// design against exchanging only at the end of the run (Sec. 2.2
// discusses why PARMONC rejects end-only exchange for operational
// reasons; the claim is that periodic exchange costs ~nothing).
func BenchmarkAblationExchange(b *testing.B) {
	const L = 512
	run := func(b *testing.B, strict bool, pass time.Duration) {
		for i := 0; i < b.N; i++ {
			cfg := core.Config{
				Nrow: 100, Ncol: 2,
				MaxSamples:     L,
				Workers:        4,
				WorkDir:        b.TempDir(),
				StrictExchange: strict,
				PassPeriod:     pass,
				AverPeriod:     pass,
			}
			_, err := core.RunFactory(context.Background(), cfg, func(int) (core.Realization, error) {
				return sde.PaperRealization(1e-4, 10.0, 100)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("per-realization", func(b *testing.B) { run(b, true, time.Second) })
	b.Run("periodic-10ms", func(b *testing.B) { run(b, false, 10*time.Millisecond) })
	b.Run("end-only", func(b *testing.B) { run(b, false, time.Hour) })
}

// BenchmarkAblationStrictnessSim measures the same ablation on the
// cluster simulator at paper scale, where the message volume actually
// matters (512 processors, 15360 realizations).
func BenchmarkAblationStrictnessSim(b *testing.B) {
	for _, passEvery := range []int64{1, 10, 100} {
		b.Run(fmt.Sprintf("passEvery=%d", passEvery), func(b *testing.B) {
			p := clustersim.PaperParams(512)
			p.PassEvery = passEvery
			var last clustersim.Result
			for i := 0; i < b.N; i++ {
				res, err := clustersim.Simulate(p, 15360)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.TCompSeconds, "simsec")
			b.ReportMetric(float64(last.Messages), "msgs")
		})
	}
}

// BenchmarkRNG compares the 128-bit PARMONC generator against the
// 40-bit baseline whose period exhaustion motivates it (Sec. 2.2) and
// against the cost of positioning a new substream.
func BenchmarkRNG(b *testing.B) {
	b.Run("parmonc128-next", func(b *testing.B) {
		g := lcg.New()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink = g.Float64()
		}
		_ = sink
	})
	b.Run("baseline40-next", func(b *testing.B) {
		g := baseline.New40()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink = g.Float64()
		}
		_ = sink
	})
	b.Run("stream-positioning", func(b *testing.B) {
		p := parmonc.DefaultParams()
		for i := 0; i < b.N; i++ {
			if _, err := parmonc.NewStream(p, parmonc.Coord{Processor: uint64(i % 1000)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCollectorMerge measures the collector-side cost of one
// subtotal merge at the paper's matrix size (1000×2) — the quantity that
// bounds how often workers can push (the ≈120 KB message of Sec. 4).
func BenchmarkCollectorMerge(b *testing.B) {
	total := parmonc.NewAccumulator(1000, 2)
	worker := parmonc.NewAccumulator(1000, 2)
	row := make([]float64, 2000)
	for i := range row {
		row[i] = float64(i)
	}
	if err := worker.Add(row); err != nil {
		b.Fatal(err)
	}
	snap := worker.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := total.Merge(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManifestAppend measures the durable-persist cost every run
// lifecycle transition pays in the service: one WAL record appended to
// the service log plus one atomic (tmp + rename) rewrite of the run's
// checksummed manifest. The WAL append is a single unsynced write by
// design; the manifest rewrite dominates. This bounds how often the
// manager can afford to persist transitions on the submit/admit path.
func BenchmarkManifestAppend(b *testing.B) {
	dir := b.TempDir()
	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	w, _, err := store.OpenWAL(filepath.Join(dir, store.WALFile), 0, now)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	type manifest struct {
		ID    string    `json:"id"`
		Seq   int       `json:"seq"`
		State string    `json:"state"`
		Nrow  int       `json:"nrow"`
		Ncol  int       `json:"ncol"`
		MaxSV int64     `json:"maxsv"`
		At    time.Time `json:"at"`
	}
	body := manifest{ID: "r0001", Seq: 1, Nrow: 3, Ncol: 3, MaxSV: 1_000_000, At: now}
	path := filepath.Join(dir, store.ManifestFile)
	states := []string{"queued", "admitted", "running", "done"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.State = states[i%len(states)]
		if err := w.Append(body.State, body.ID, now, nil); err != nil {
			b.Fatal(err)
		}
		if err := store.SaveManifest(path, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorPush measures the collector engine's push
// throughput — validation, merge, liveness bookkeeping and metrics on
// the hot path — at worker counts spanning the paper's range (1 to
// 512). The engine runs in-memory, so this isolates the per-push cost
// every transport pays, independent of I/O; compare with
// BenchmarkCollectorMerge for the bare merge arithmetic.
func BenchmarkCollectorPush(b *testing.B) {
	for _, m := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("workers=%d", m), func(b *testing.B) {
			eng, err := collect.New(nil, store.RunMeta{
				Nrow: 1000, Ncol: 2,
				Gamma: stat.DefaultConfidenceCoefficient,
			}, collect.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for w := 0; w < m; w++ {
				eng.Register(w)
			}
			worker := stat.New(1000, 2)
			row := make([]float64, 2000)
			for i := range row {
				row[i] = float64(i)
			}
			if err := worker.Add(row); err != nil {
				b.Fatal(err)
			}
			snap := worker.Snapshot()
			b.SetBytes(int64(16 * len(row))) // Sum + Sum2, 8 bytes each
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Push(i%m, snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectorPushContended measures aggregate push throughput
// with b.RunParallel hammering the engine from many goroutines at once
// — the contended version of BenchmarkCollectorPush, and the number the
// sharded collector exists to improve: each pusher claims a worker
// index from an atomic counter, so with enough workers the pushes land
// on distinct shards and never serialize on a global lock. On a
// multi-core host the aggregate ns/op drops with the worker count;
// even single-core, the per-push cost is far below the old serialized
// collector's because validation runs once per push on an aggregate
// fast path and the global report is folded on demand rather than
// per push.
func BenchmarkCollectorPushContended(b *testing.B) {
	for _, m := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers=%d", m), func(b *testing.B) {
			eng, err := collect.New(nil, store.RunMeta{
				Nrow: 1000, Ncol: 2,
				Gamma: stat.DefaultConfidenceCoefficient,
			}, collect.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for w := 0; w < m; w++ {
				eng.Register(w)
			}
			worker := stat.New(1000, 2)
			row := make([]float64, 2000)
			for i := range row {
				row[i] = float64(i)
			}
			if err := worker.Add(row); err != nil {
				b.Fatal(err)
			}
			snap := worker.Snapshot()
			var next atomic.Int64
			b.SetBytes(int64(16 * len(row))) // Sum + Sum2, 8 bytes each
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(next.Add(1)-1) % m
				for pb.Next() {
					if err := eng.Push(w, snap); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkEndToEndPi measures whole-pipeline throughput on the cheapest
// possible realization, bounding the library's own overhead per
// realization.
func BenchmarkEndToEndPi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := parmonc.Config{
			Nrow: 1, Ncol: 1,
			MaxSamples: 100000,
			WorkDir:    b.TempDir(),
			PassPeriod: 100 * time.Millisecond,
			AverPeriod: 200 * time.Millisecond,
		}
		_, err := parmonc.Run(context.Background(), cfg, func(src *parmonc.Stream, out []float64) error {
			x, y := src.Float64(), src.Float64()
			if x*x+y*y < 1 {
				out[0] = 1
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100000*float64(b.N)/b.Elapsed().Seconds(), "realizations/s")
}

// BenchmarkRealization sweeps every registered workload's realization
// kernel at its schema defaults — one sub-benchmark per workload, no
// collector in the loop — so the bench.sh snapshot tracks per-scenario
// simulation cost (the paper's τ, the per-realization time that sets
// where parallelism pays off).
func BenchmarkRealization(b *testing.B) {
	for _, d := range workload.All() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			id, err := d.Identity(nil)
			if err != nil {
				b.Fatal(err)
			}
			factory, err := d.Factory(workload.Values(id.Params))
			if err != nil {
				b.Fatal(err)
			}
			realize, err := factory(1)
			if err != nil {
				b.Fatal(err)
			}
			src, err := rng.NewStream(rng.DefaultParams(), rng.Coord{Processor: 1})
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, id.Nrow*id.Ncol)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = 0
				}
				if err := realize(src, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
