package parmonc_test

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"testing"
	"time"

	"parmonc"
	"parmonc/dist"
)

func testConfig(dir string) parmonc.Config {
	return parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 10000,
		Workers:    4,
		WorkDir:    dir,
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
}

func TestPublicRunEstimatesPi(t *testing.T) {
	res, err := parmonc.Run(context.Background(), testConfig(t.TempDir()),
		func(src *parmonc.Stream, out []float64) error {
			x, y := src.Float64(), src.Float64()
			if x*x+y*y < 1 {
				out[0] = 1
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	got := 4 * res.Report.MeanAt(0, 0)
	if math.Abs(got-math.Pi) > 4*res.Report.AbsErrAt(0, 0)*4/3 {
		t.Fatalf("π ≈ %g outside tolerance", got)
	}
}

func TestPublicRunFactoryWithDistSamplers(t *testing.T) {
	// Estimate E X for X ~ Exp(2) using the public dist package — the
	// "complex distributions by formula (2)" workflow.
	res, err := parmonc.RunFactory(context.Background(), testConfig(t.TempDir()),
		func(worker int) (parmonc.Realization, error) {
			return func(src *parmonc.Stream, out []float64) error {
				out[0] = dist.Exponential(src, 2)
				return nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.MeanAt(0, 0); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("E X = %g, want 0.5", got)
	}
}

func TestPublicManaverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SaveWorkerSnapshots = true
	cfg.StrictExchange = true
	cfg.MaxSamples = 500
	res, err := parmonc.Run(context.Background(), cfg,
		func(src *parmonc.Stream, out []float64) error {
			out[0] = src.Float64()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := parmonc.Manaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != res.Report.N {
		t.Fatalf("manaver N = %d, run N = %d", rep.N, res.Report.N)
	}
}

func TestPublicParamsAndStream(t *testing.T) {
	p, err := parmonc.NewParams(100, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	s, err := parmonc.NewStream(p, parmonc.Coord{Experiment: 1, Processor: 2, Realization: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := s.Float64()
	if v <= 0 || v >= 1 {
		t.Fatalf("draw %g", v)
	}
	if parmonc.DefaultParams().ExperimentLeapLog2 != 115 {
		t.Fatal("default params wrong")
	}
}

func TestPublicConfidenceCoefficient(t *testing.T) {
	g, err := parmonc.ConfidenceCoefficient(0.9973002039367398)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-3) > 1e-9 {
		t.Fatalf("γ = %g", g)
	}
}

func TestPublicAccumulator(t *testing.T) {
	a := parmonc.NewAccumulator(1, 1)
	for i := 1; i <= 4; i++ {
		if err := a.Add([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	rep := a.Report(3)
	if rep.MeanAt(0, 0) != 2.5 {
		t.Fatalf("mean %g", rep.MeanAt(0, 0))
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if parmonc.Version == "" {
		t.Fatal("empty version")
	}
}

// ExampleRun demonstrates the minimal PARMONC program: estimating E α
// for α uniform on (0, 1).
func ExampleRun() {
	dir, err := os.MkdirTemp("", "parmonc-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	res, err := parmonc.Run(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 100000,
		Workers:    2,
		WorkDir:    dir,
	}, func(src *parmonc.Stream, out []float64) error {
		out[0] = src.Float64()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean within 0.01 of 1/2: %v\n", math.Abs(res.Report.MeanAt(0, 0)-0.5) < 0.01)
	// Output:
	// mean within 0.01 of 1/2: true
}

// ExampleRunFactory shows a stateful realization routine (an integrator
// with scratch buffers) safely instantiated once per worker.
func ExampleRunFactory() {
	dir, err := os.MkdirTemp("", "parmonc-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	res, err := parmonc.RunFactory(context.Background(), parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 50000,
		Workers:    2,
		WorkDir:    dir,
	}, func(worker int) (parmonc.Realization, error) {
		scratch := make([]float64, 8) // per-worker state: no sharing
		return func(src *parmonc.Stream, out []float64) error {
			for i := range scratch {
				scratch[i] = src.Float64()
			}
			// Estimate E max of 8 uniforms = 8/9.
			m := 0.0
			for _, v := range scratch {
				if v > m {
					m = v
				}
			}
			out[0] = m
			return nil
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean within 0.01 of 8/9: %v\n", math.Abs(res.Report.MeanAt(0, 0)-8.0/9) < 0.01)
	// Output:
	// mean within 0.01 of 8/9: true
}

// ExampleConfig_onSave demonstrates error-controlled termination: stop
// as soon as the relative error falls below 2%.
func ExampleConfig_onSave() {
	dir, err := os.MkdirTemp("", "parmonc-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := parmonc.Run(ctx, parmonc.Config{
		Nrow: 1, Ncol: 1,
		MaxSamples: 0, // unbounded; accuracy decides
		WorkDir:    dir,
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
		OnSave: func(p parmonc.Progress) {
			if p.N > 500 && p.MaxRelErr < 2.0 {
				cancel()
			}
		},
	}, func(src *parmonc.Stream, out []float64) error {
		out[0] = src.Float64()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped by accuracy control: %v\n", res.Interrupted && res.Report.MaxRelErr < 2.5)
	// Output:
	// stopped by accuracy control: true
}
