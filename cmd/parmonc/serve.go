package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"parmonc/internal/obs"
	"parmonc/internal/runmgr"
	"parmonc/internal/workload"
)

// cmdServe starts the multi-run simulation service: a run manager with
// an admission queue and fair-share lease scheduler, its JSON control
// API mounted on the ops HTTP server, and a TCP fleet endpoint that
// `parmonc worker -service` processes attach to. Optionally a few
// local (in-process) fleet workers.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	httpAddr := fs.String("http", "127.0.0.1:8080", "run-control API + ops endpoints address")
	fleetAddr := fs.String("fleet", "127.0.0.1:7071", "fleet worker listen address")
	localWorkers := fs.Int("local-workers", 0, "in-process fleet workers to start")
	dir := fs.String("dir", ".", "data root (one subdirectory per run)")
	maxActive := fs.Int("max-active", 4, "concurrently active runs; more wait in the queue")
	maxQueued := fs.Int("max-queued", 16, "admission queue length; beyond it submissions are rejected")
	budget := fs.Int64("max-realizations", 100_000_000, "per-run realization budget")
	peraver := fs.Duration("peraver", 2*time.Minute, "per-run period of averaging and saving results")
	leaseTimeout := fs.Duration("lease-timeout", 30*time.Second, "reissue a lease after this long without a push (0 disables)")
	journalCap := fs.Int64("journal-max-bytes", 64<<20, "size-rotate each journal past this many bytes (0 disables)")
	pullWait := fs.Duration("pull-wait", 30*time.Second, "hold an idle fleet pull open up to this long (long-poll; negative answers immediately)")
	recoverPolicy := fs.String("recover", "strict", "corrupt-state policy at startup: strict (refuse to start) or discard (quarantine and continue)")
	fs.Parse(args)

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	journal, err := obs.OpenJournalRotating(filepath.Join(*dir, "service.events.jsonl"), *journalCap)
	if err != nil {
		return err
	}
	defer journal.Close()

	reg := obs.NewRegistry()
	m, err := runmgr.New(runmgr.Config{
		DataRoot:        *dir,
		MaxActive:       *maxActive,
		MaxQueued:       *maxQueued,
		MaxRealizations: *budget,
		AverPeriod:      *peraver,
		LeaseTimeout:    *leaseTimeout,
		JournalMaxBytes: *journalCap,
		PullWait:        *pullWait,
		Registry:        reg,
		Journal:         journal,
		Recover:         runmgr.RecoverPolicy(*recoverPolicy),
	})
	if err != nil {
		return err
	}
	defer m.Close()

	if info := m.Recovery(); info.Terminal+info.Requeued > 0 {
		fmt.Printf("recovered service state (epoch %d): %d terminal runs listed, %d runs requeued (%d resumed with %d samples)",
			info.Epoch, info.Terminal, info.Requeued, info.Resumed, info.SamplesRestored)
		if !info.CleanShutdown {
			fmt.Printf("; previous incarnation did not shut down cleanly (%d WAL records replayed)", info.WALRecords)
		}
		fmt.Println()
	}

	ln, err := net.Listen("tcp", *fleetAddr)
	if err != nil {
		return fmt.Errorf("fleet listener: %w", err)
	}
	if err := m.ServeFleet(ln); err != nil {
		return err
	}

	api := m.Handler()
	srv, err := obs.Serve(*httpAddr, obs.ServerConfig{
		Registry: reg,
		Journal:  journal,
		Status:   func() any { return m.Status() },
		Routes: map[string]http.Handler{
			"/runs":  api,
			"/runs/": api,
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ctx, cancel := signalContext()
	defer cancel()
	if *localWorkers > 0 {
		m.StartLocalWorkers(ctx, *localWorkers, runmgr.FleetWorkerConfig{})
	}

	fmt.Printf("run service on %s (POST /runs; metrics, statusz, pprof)\n", srv.URL())
	fmt.Printf("fleet endpoint on %s (%d local workers)\n", ln.Addr(), *localWorkers)
	<-ctx.Done()
	// Graceful drain: in-flight pushes land, every active run saves a
	// final checkpoint and recovery image, the WAL records a clean
	// shutdown — the next `parmonc serve` on this data root resumes the
	// runs with nothing to replay.
	fmt.Println("shutting down: draining pushes, checkpointing active runs")
	return m.Shutdown()
}

// serviceClient is the CLI side of the control API.
type serviceClient struct {
	base string
}

func (c serviceClient) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func addServerFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8080", "run service base URL")
}

func printRunStatus(st runmgr.RunStatus) {
	fmt.Printf("%-8s %-9s %-28s seq %-4d n %-10d leases %d/%d done, %d out, %d pending",
		st.ID, st.State, st.Fingerprint, st.SeqNum, st.N,
		st.Leases.Completed, st.Leases.Total, st.Leases.Outstanding, st.Leases.Pending)
	if st.Error != "" {
		fmt.Printf("  (%s)", st.Error)
	}
	fmt.Println()
}

// cmdSubmit sends one run to the service, optionally waiting for it.
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := addServerFlag(fs)
	wf := addWorkloadFlags(fs)
	maxsv := fs.Int64("maxsv", 100000, "realization target for the run")
	seqnum := fs.Uint64("seqnum", 0, "experiments subsequence (0 = service assigns)")
	passEvery := fs.Int64("pass-every", 100, "fleet workers push after this many realizations")
	leaseSize := fs.Int64("lease-size", 0, "realizations per substream lease (0 = automatic)")
	targetRel := fs.Float64("target-rel-err", 0, "complete early below this max relative error, percent (0 disables)")
	minSamples := fs.Int64("min-samples", 0, "sample floor before -target-rel-err may fire")
	wait := fs.Bool("wait", false, "poll until the run is terminal and print its report")
	poll := fs.Duration("poll", time.Second, "polling period with -wait")
	jsonOut := fs.Bool("json", false, "emit the service's responses as JSON")
	fs.Parse(args)

	w, err := wf.resolve()
	if err != nil {
		return err
	}
	sub := runmgr.Submission{
		Scenario:     workload.Spec{Workload: w.id.Name, Params: w.values},
		MaxSamples:   *maxsv,
		SeqNum:       *seqnum,
		PassEvery:    *passEvery,
		LeaseSize:    *leaseSize,
		TargetRelErr: *targetRel,
		MinSamples:   *minSamples,
	}
	c := serviceClient{*server}
	var st runmgr.RunStatus
	if err := c.do("POST", "/runs", sub, &st); err != nil {
		return err
	}
	if !*wait {
		if *jsonOut {
			return printAsJSON(st)
		}
		printRunStatus(st)
		return nil
	}
	for !st.State.Terminal() {
		time.Sleep(*poll)
		if err := c.do("GET", "/runs/"+st.ID, nil, &st); err != nil {
			return err
		}
		if !*jsonOut {
			printRunStatus(st)
		}
	}
	if st.State != runmgr.StateDone {
		return fmt.Errorf("run %s finished %s: %s", st.ID, st.State, st.Error)
	}
	var rep runmgr.ReportPayload
	if err := c.do("GET", "/runs/"+st.ID+"/report", nil, &rep); err != nil {
		return err
	}
	if *jsonOut {
		return printAsJSON(rep)
	}
	fmt.Printf("run %s done: N = %d, max abs err %g, max rel err %g%%\n",
		rep.ID, rep.N, float64(rep.MaxAbsErr), float64(rep.MaxRelErr))
	return nil
}

// cmdStatus lists the service's runs, or one run when an ID is given.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := addServerFlag(fs)
	jsonOut := fs.Bool("json", false, "emit the service's responses as JSON")
	fs.Parse(args)
	c := serviceClient{*server}

	if id := fs.Arg(0); id != "" {
		var st runmgr.RunStatus
		if err := c.do("GET", "/runs/"+id, nil, &st); err != nil {
			return err
		}
		if *jsonOut {
			return printAsJSON(st)
		}
		printRunStatus(st)
		return nil
	}
	var listing struct {
		Runs []runmgr.RunStatus `json:"runs"`
	}
	if err := c.do("GET", "/runs", nil, &listing); err != nil {
		return err
	}
	if *jsonOut {
		return printAsJSON(listing)
	}
	if len(listing.Runs) == 0 {
		fmt.Println("no runs")
		return nil
	}
	for _, st := range listing.Runs {
		printRunStatus(st)
	}
	return nil
}

// cmdResults fetches one run's final report (or cancels the run).
func cmdResults(args []string) error {
	fs := flag.NewFlagSet("results", flag.ExitOnError)
	server := addServerFlag(fs)
	cancelRun := fs.Bool("cancel", false, "cancel the run instead of fetching its report")
	jsonOut := fs.Bool("json", false, "emit the service's responses as JSON")
	fs.Parse(args)
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("usage: parmonc results [-cancel] <run-id>")
	}
	c := serviceClient{*server}
	if *cancelRun {
		var st runmgr.RunStatus
		if err := c.do("DELETE", "/runs/"+id, nil, &st); err != nil {
			return err
		}
		if *jsonOut {
			return printAsJSON(st)
		}
		printRunStatus(st)
		return nil
	}
	var rep runmgr.ReportPayload
	if err := c.do("GET", "/runs/"+id+"/report", nil, &rep); err != nil {
		return err
	}
	if *jsonOut {
		return printAsJSON(rep)
	}
	fmt.Printf("run %s (%s, %s): N = %d\n", rep.ID, rep.Workload, rep.State, rep.N)
	fmt.Printf("max abs err %g, max rel err %g%%, gamma %g\n",
		float64(rep.MaxAbsErr), float64(rep.MaxRelErr), rep.Gamma)
	for i := 0; i < rep.Nrow && i < 5; i++ {
		for j := 0; j < rep.Ncol && j < 5; j++ {
			k := i*rep.Ncol + j
			fmt.Printf("  [%d,%d] mean %-14g ± %-12g (%g%%)\n",
				i, j, float64(rep.Mean[k]), float64(rep.AbsErr[k]), float64(rep.RelErr[k]))
		}
	}
	return nil
}

func printAsJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
