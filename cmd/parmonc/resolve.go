package main

import (
	"flag"
	"fmt"

	"parmonc/internal/core"
	"parmonc/internal/workload"

	// Built-in scenarios self-register into the workload registry.
	_ "parmonc/internal/workload/builtin"
)

// setFlags collects repeated -set key=value flags.
type setFlags []string

func (s *setFlags) String() string { return fmt.Sprint([]string(*s)) }

func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// workloadFlags are the three flags every simulating mode shares; the
// selected workload is the composition scenario < -workload < -set
// (later overrides earlier, per-parameter).
type workloadFlags struct {
	fs       *flag.FlagSet
	name     *string
	sets     setFlags
	scenario *string
}

func addWorkloadFlags(fs *flag.FlagSet) *workloadFlags {
	wf := &workloadFlags{fs: fs}
	wf.name = fs.String("workload", "pi", "built-in workload name (see `parmonc list`)")
	fs.Var(&wf.sets, "set", "override one workload parameter, key=value (repeatable)")
	wf.scenario = fs.String("scenario", "", "JSON scenario spec file selecting workload and parameters")
	return wf
}

// runWorkload is a fully resolved workload selection: the definition,
// the complete parameter set, the canonical identity, the per-worker
// factory, and the round-trippable scenario JSON recorded with the run.
type runWorkload struct {
	def      workload.Definition
	values   workload.Values
	id       workload.Identity
	factory  core.Factory
	scenario string // canonical compact-JSON spec reproducing this run
}

func (w runWorkload) dims() (nrow, ncol int) { return w.id.Nrow, w.id.Ncol }

// resolve turns the flags into a runWorkload. A -scenario file names the
// workload and supplies base parameters; -set overrides apply on top; a
// -workload flag given alongside a scenario must agree with it.
func (wf *workloadFlags) resolve() (runWorkload, error) {
	name := *wf.name
	base := workload.Values{}
	if *wf.scenario != "" {
		spec, err := workload.LoadSpec(*wf.scenario)
		if err != nil {
			return runWorkload{}, err
		}
		nameFlagged := false
		wf.fs.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				nameFlagged = true
			}
		})
		if nameFlagged && name != spec.Workload {
			return runWorkload{}, fmt.Errorf("scenario %s runs workload %q but -workload says %q",
				*wf.scenario, spec.Workload, name)
		}
		name = spec.Workload
		base = spec.Params.Clone()
	}
	overrides, err := workload.ParseSets(wf.sets)
	if err != nil {
		return runWorkload{}, err
	}
	for k, v := range overrides {
		base[k] = v
	}
	def, err := workload.Lookup(name)
	if err != nil {
		return runWorkload{}, err
	}
	id, err := def.Identity(base)
	if err != nil {
		return runWorkload{}, err
	}
	resolved := workload.Values(id.Params)
	factory, err := def.Factory(resolved)
	if err != nil {
		return runWorkload{}, err
	}
	return runWorkload{
		def:      def,
		values:   resolved,
		id:       id,
		factory:  factory,
		scenario: workload.Spec{Workload: name, Params: resolved}.Canonical(),
	}, nil
}
