package main

import (
	"fmt"
	"sort"

	"parmonc/dist"
	"parmonc/internal/branching"
	"parmonc/internal/chem"
	"parmonc/internal/core"
	"parmonc/internal/dsmc"
	"parmonc/internal/finance"
	"parmonc/internal/histogram"
	"parmonc/internal/ising"
	"parmonc/internal/queueing"
	"parmonc/internal/rng"
	"parmonc/internal/sde"
	"parmonc/internal/smoluchowski"
	"parmonc/internal/transport"
	"parmonc/internal/turbulence"
	"parmonc/internal/wos"
)

// workload is a named, ready-to-run realization with fixed matrix
// dimensions. In the original PARMONC the user links their own routine;
// this command ships the workloads used in the paper's evaluation and
// this repository's examples so that coordinator and worker processes
// agree on the job by name.
type workload struct {
	name        string
	description string
	nrow, ncol  int
	factory     core.Factory
}

// workloads returns the registry of built-in workloads.
func workloads() map[string]workload {
	ws := []workload{
		{
			name:        "pi",
			description: "estimate π/4 by rejection in the unit square",
			nrow:        1, ncol: 1,
			factory: func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					x, y := src.Float64(), src.Float64()
					if x*x+y*y < 1 {
						out[0] = 1
					}
					return nil
				}, nil
			},
		},
		{
			name:        "diffusion",
			description: "the paper's Sec. 4 SDE test (scaled mesh): E y(t_i) on a 100×2 grid",
			nrow:        100, ncol: 2,
			factory: func(int) (core.Realization, error) {
				return sde.PaperRealization(1e-3, 10.0, 100)
			},
		},
		{
			name:        "transport",
			description: "1-D slab transmission/reflection/absorption probabilities",
			nrow:        1, ncol: transport.NOutcomes,
			factory: func(int) (core.Realization, error) {
				slab := transport.Slab{Thickness: 2, SigmaT: 1, SigmaS: 0.8, Mu0: 1}
				return func(src *rng.Stream, out []float64) error {
					return slab.History(src, out)
				}, nil
			},
		},
		{
			name:        "coagulation",
			description: "Smoluchowski constant-kernel cluster counts at 4 times",
			nrow:        4, ncol: 1,
			factory: func(int) (core.Realization, error) {
				sys := smoluchowski.System{N0: 500, Volume: 500, Kernel: smoluchowski.ConstantKernel(1), K0: 1}
				times := []float64{0.5, 1, 2, 4}
				return func(src *rng.Stream, out []float64) error {
					return sys.ClusterCounts(src, times, out)
				}, nil
			},
		},
		{
			name:        "mm1",
			description: "M/M/1 queue batch-mean waiting time (λ=0.6, μ=1)",
			nrow:        1, ncol: 1,
			factory: func(int) (core.Realization, error) {
				q := queueing.MM1{Lambda: 0.6, Mu: 1, Warmup: 2000, Batch: 2000}
				return func(src *rng.Stream, out []float64) error {
					return q.BatchMeanWait(src, out)
				}, nil
			},
		},
		{
			name:        "ising",
			description: "2-D Ising replica observables at β=0.3 on a 16×16 lattice",
			nrow:        1, ncol: ising.NObservables,
			factory: func(int) (core.Realization, error) {
				m := ising.Model{L: 16, Beta: 0.3, Sweeps: 60, Warmup: 30}
				return func(src *rng.Stream, out []float64) error {
					return m.Replica(src, out)
				}, nil
			},
		},
		{
			name:        "branching",
			description: "Galton–Watson (Poisson offspring, μ=1.5) population and extinction",
			nrow:        1, ncol: branching.NOutcomes,
			factory: func(int) (core.Realization, error) {
				p := branching.Process{Mu: 1.5, Generations: 40}
				return func(src *rng.Stream, out []float64) error {
					return p.Realize(src, out)
				}, nil
			},
		},
		{
			name:        "dsmc",
			description: "Boltzmann/DSMC Maxwell-gas temperature relaxation at 5 times",
			nrow:        5, ncol: dsmc.NMoments,
			factory: func(int) (core.Realization, error) {
				g := dsmc.Gas{N: 200, Nu: 1, Tx: 3, Ty: 1}
				times := []float64{0.5, 1, 2, 4, 8}
				return func(src *rng.Stream, out []float64) error {
					return g.Relax(src, times, out)
				}, nil
			},
		},
		{
			name:        "chem",
			description: "Gillespie SSA, reversible isomerization A⇌B at 4 times",
			nrow:        4, ncol: 2,
			factory: func(int) (core.Realization, error) {
				net := chem.Isomerization(2, 1, 150, 0)
				times := []float64{0.3, 1, 2, 5}
				return func(src *rng.Stream, out []float64) error {
					return net.Trajectory(src, times, []int{0, 1}, out)
				}, nil
			},
		},
		{
			name:        "option",
			description: "European call/put under GBM (S0=100, K=105, r=5%, σ=20%, T=1)",
			nrow:        1, ncol: finance.NPayoffs,
			factory: func(int) (core.Realization, error) {
				o := finance.Option{S0: 100, Strike: 105, Rate: 0.05, Sigma: 0.2, T: 1}
				r, err := o.EuropeanRealization()
				if err != nil {
					return nil, err
				}
				return func(src *rng.Stream, out []float64) error {
					return r(src, out)
				}, nil
			},
		},
		{
			name:        "dispersion",
			description: "turbulent dispersion σ_x(t) vs Taylor's law at 5 times",
			nrow:        5, ncol: 1,
			factory: func(int) (core.Realization, error) {
				f := turbulence.Flow{SigmaV: 1.5, TL: 1, Dt: 0.02}
				times := []float64{0.2, 0.5, 1, 2, 5}
				return func(src *rng.Stream, out []float64) error {
					return f.Disperse(src, times, out)
				}, nil
			},
		},
		{
			name:        "dirichlet",
			description: "walk-on-spheres solution of Δu=0 on the unit disk at (0.3, 0.2)",
			nrow:        1, ncol: 1,
			factory: func(int) (core.Realization, error) {
				solver := wos.Solver{
					Domain:   wos.Disk{Radius: 1},
					Boundary: func(p [2]float64) float64 { return p[0]*p[0] - p[1]*p[1] },
					Epsilon:  1e-4,
				}
				x0 := [2]float64{0.3, 0.2}
				return func(src *rng.Stream, out []float64) error {
					return solver.Walk(src, x0, out)
				}, nil
			},
		},
		{
			name:        "density",
			description: "histogram density of Exp(1) on [0,3) with per-bin error bars",
			nrow:        1, ncol: 15,
			factory: func(int) (core.Realization, error) {
				spec := histogram.Spec{Bins: 15, A: 0, B: 3}
				r, err := spec.Realization(func(src dist.Source) float64 {
					return dist.Exponential(src, 1)
				})
				if err != nil {
					return nil, err
				}
				return func(src *rng.Stream, out []float64) error {
					return r(src, out)
				}, nil
			},
		},
	}
	m := make(map[string]workload, len(ws))
	for _, w := range ws {
		m[w.name] = w
	}
	return m
}

// lookupWorkload resolves a workload name with a helpful error.
func lookupWorkload(name string) (workload, error) {
	ws := workloads()
	w, ok := ws[name]
	if !ok {
		names := make([]string, 0, len(ws))
		for n := range ws {
			names = append(names, n)
		}
		sort.Strings(names)
		return workload{}, fmt.Errorf("unknown workload %q; available: %v", name, names)
	}
	return w, nil
}
