// Command parmonc runs a built-in Monte Carlo workload under the
// library:
//
//	parmonc run   -workload pi -maxsv 1000000 -workers 8   # single process
//	parmonc coord -workload pi -maxsv 1000000 -addr :7070  # rank 0 of a cluster
//	parmonc worker -addr host:7070 -workload pi            # additional rank
//
// or hosts many runs at once behind a JSON control API:
//
//	parmonc serve -http :8080 -fleet :7071 -local-workers 4
//	parmonc worker -service -addr host:7071                # extra fleet capacity
//	parmonc submit -workload mm1 -set lambda=0.8 -maxsv 1000000 -wait
//	parmonc status; parmonc results r0001
//
// Workloads come from the internal/workload registry and are
// parameterized on the command line:
//
//	parmonc run -workload mm1 -set lambda=0.8 -set mu=1.2
//	parmonc run -scenario spec.json       # {"workload":"mm1","params":{...}}
//
// Every simulating mode shares the -workload/-set/-scenario flags; the
// resolved parameter set is fingerprinted, recorded in parmonc_exp.dat,
// and checked by the coordinator at worker registration, so a cluster
// can never silently merge realizations of differently-parameterized
// workers. `parmonc list` (or `list -json`) prints the registry and
// every workload's parameter schema.
//
// The run mode is the Go analogue of launching the paper's MPI program
// on one node; coord + worker reproduce the multi-node deployment, with
// TCP RPC standing in for MPI (see internal/cluster). The simulation
// results land in parmonc_data/ of the working directory in the file
// layout of the original library.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/obs"
	"parmonc/internal/report"
	"parmonc/internal/rng"
	"parmonc/internal/runmgr"
	"parmonc/internal/store"
	"parmonc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "coord":
		err = cmdCoord(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "results":
		err = cmdResults(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "parmonc: unknown mode %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmonc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: parmonc <mode> [flags]

modes:
  run          simulate with in-process workers (goroutines)
  experiments  run several independent stochastic experiments and pool them
  coord        start the rank-0 coordinator of a distributed job
  worker       join a distributed job (or, with -service, a run service fleet)
  serve        host many runs at once behind a JSON control API
  submit       send one run to a "parmonc serve" service
  status       list a service's runs, or show one
  results      fetch (or -cancel) one service run
  list         list built-in workloads and their parameter schemas

workload selection (run, experiments, coord, worker, submit):
  -workload <name>      pick a registered workload
  -set key=value        override one schema parameter (repeatable)
  -scenario spec.json   load workload and parameters from a JSON spec
`)
}

// signalContext returns a context cancelled by SIGINT/SIGTERM — the
// "job killed by the scheduler" path; the library saves results on the
// way out.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-ch
		cancel()
	}()
	return ctx, cancel
}

// jsonWorkload is one registry entry of `parmonc list -json`: the
// machine-readable schema a driving program needs to construct -set
// flags or scenario specs without parsing help text.
type jsonWorkload struct {
	Name          string           `json:"name"`
	Description   string           `json:"description"`
	SchemaVersion int              `json:"schema_version"`
	Nrow          int              `json:"nrow"`
	Ncol          int              `json:"ncol"`
	Fingerprint   string           `json:"fingerprint"`
	Params        []workload.Param `json:"params,omitempty"`
	RowLabels     []string         `json:"row_labels,omitempty"`
	ColLabels     []string         `json:"col_labels,omitempty"`
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the registry as JSON on stdout")
	fs.Parse(args)

	defs := workload.All()
	if *jsonOut {
		out := make([]jsonWorkload, 0, len(defs))
		for _, d := range defs {
			id, err := d.Identity(nil) // defaults
			if err != nil {
				return err
			}
			jw := jsonWorkload{
				Name:          d.Name,
				Description:   d.Description,
				SchemaVersion: d.Schema.Version,
				Nrow:          id.Nrow,
				Ncol:          id.Ncol,
				Fingerprint:   id.Fingerprint(),
				Params:        d.Schema.Params,
			}
			v := workload.Values(id.Params)
			if d.RowLabels != nil {
				jw.RowLabels = d.RowLabels(v)
			}
			if d.ColLabels != nil {
				jw.ColLabels = d.ColLabels(v)
			}
			out = append(out, jw)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for _, d := range defs {
		nrow, ncol := d.Dims(d.Schema.Defaults())
		fmt.Printf("%-12s %3d×%-2d  %s\n", d.Name, nrow, ncol, d.Description)
		for _, p := range d.Schema.Params {
			fmt.Printf("             -set %-18s %s\n", workload.FormatSet(p.Name, p.Default), p.Description)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	maxsv := fs.Int64("maxsv", 100000, "maximal sample volume (0 = run until interrupted)")
	workers := fs.Int("workers", 0, "parallel workers M (0 = GOMAXPROCS)")
	seqnum := fs.Uint64("seqnum", 0, "experiments subsequence number")
	res := fs.Bool("res", false, "resume the previous simulation in this directory")
	dir := fs.String("dir", ".", "working directory")
	perpass := fs.Duration("perpass", time.Minute, "period of passing subtotals to the collector")
	peraver := fs.Duration("peraver", 2*time.Minute, "period of averaging and saving results")
	strict := fs.Bool("strict", false, "exchange after every realization (Fig. 2 conditions)")
	snapshots := fs.Bool("worker-snapshots", true, "write per-worker snapshots for manaver")
	jsonOut := fs.Bool("json", false, "emit the result as JSON on stdout")
	stats := fs.Bool("stats", false, "print collector engine statistics (pushes, merges, saves, ...)")
	httpAddr := fs.String("http", "", "serve /metrics, /healthz, /statusz and /debug/pprof on this address")
	journal := fs.Bool("journal", true, "append the run-event journal to parmonc_data/events.jsonl")
	fs.Parse(args)

	w, err := wf.resolve()
	if err != nil {
		return err
	}
	nrow, ncol := w.dims()
	ctx, cancel := signalContext()
	defer cancel()

	cfg := core.Config{
		Nrow:                nrow,
		Ncol:                ncol,
		MaxSamples:          *maxsv,
		Resume:              *res,
		SeqNum:              *seqnum,
		Workers:             *workers,
		PassPeriod:          *perpass,
		AverPeriod:          *peraver,
		StrictExchange:      *strict,
		WorkDir:             *dir,
		SaveWorkerSnapshots: *snapshots,
		Workload:            w.id.Name,
		Fingerprint:         w.id.Fingerprint(),
		Scenario:            w.scenario,
	}

	if *journal {
		j, err := openJournal(*dir)
		if err != nil {
			return err
		}
		defer j.Close()
		cfg.Journal = j
	}
	var latest atomic.Pointer[core.Progress]
	if *httpAddr != "" {
		cfg.Registry = obs.NewRegistry()
		cfg.OnSave = func(p core.Progress) { latest.Store(&p) }
		srv, err := obs.Serve(*httpAddr, obs.ServerConfig{
			Registry: cfg.Registry,
			Journal:  cfg.Journal,
			Status: func() any {
				return map[string]any{
					"mode":     "run",
					"workload": w.id.Fingerprint(),
					"progress": latest.Load(),
				}
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		if !*jsonOut {
			fmt.Printf("ops server on %s (metrics, healthz, statusz, pprof)\n", srv.URL())
		}
	}

	result, err := core.RunFactory(ctx, cfg, w.factory)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(result, w, *stats)
	}
	printSummary(result, *dir)
	if *stats {
		printStats(result.Metrics)
	}
	return nil
}

// openJournal creates the parmonc_data layout under dir (if needed)
// and opens the run-event journal for appending.
func openJournal(dir string) (*obs.Journal, error) {
	d, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return obs.OpenJournal(d.JournalPath())
}

func printStats(m collect.MetricsSnapshot) {
	fmt.Println("\ncollector statistics:")
	m.WriteTo(os.Stdout)
}

// jsonResult is the machine-readable run summary of the -json flag.
type jsonResult struct {
	Workload    string    `json:"workload,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Scenario    string    `json:"scenario,omitempty"`
	N           int64     `json:"total_sample_volume"`
	NewSamples  int64     `json:"new_samples"`
	Nrow        int       `json:"rows"`
	Ncol        int       `json:"cols"`
	Mean        []float64 `json:"mean"`
	AbsErr      []float64 `json:"abs_err"`
	RelErr      []float64 `json:"rel_err_pct"`
	Var         []float64 `json:"variance"`
	MaxAbsErr   float64   `json:"max_abs_err"`
	MaxRelErr   float64   `json:"max_rel_err_pct"`
	ElapsedSec  float64   `json:"elapsed_seconds"`
	Interrupted bool      `json:"interrupted"`

	Stats *jsonStats `json:"collector_stats,omitempty"`
}

// jsonStats mirrors collect.MetricsSnapshot for the -json -stats output.
type jsonStats struct {
	Pushes            int64   `json:"pushes"`
	Merges            int64   `json:"merges"`
	RejectedSnapshots int64   `json:"rejected_snapshots"`
	PushesInvalid     int64   `json:"pushes_invalid"`
	Saves             int64   `json:"saves"`
	SaveLatencySec    float64 `json:"save_latency_seconds"`
	WorkerSnapshots   int64   `json:"worker_snapshots"`
	RegisteredWorkers int64   `json:"registered_workers"`
	PrunedWorkers     int64   `json:"pruned_workers"`
	ResumedSamples    int64   `json:"resumed_samples"`
}

func printJSON(result core.Result, w runWorkload, stats bool) error {
	rep := result.Report
	out := jsonResult{
		Workload:    w.id.Name,
		Fingerprint: w.id.Fingerprint(),
		Scenario:    w.scenario,
		N:           rep.N,
		NewSamples:  result.NewSamples,
		Nrow:        rep.Nrow,
		Ncol:        rep.Ncol,
		Mean:        rep.Mean,
		AbsErr:      rep.AbsErr,
		RelErr:      rep.RelErr,
		Var:         rep.Var,
		MaxAbsErr:   rep.MaxAbsErr,
		MaxRelErr:   rep.MaxRelErr,
		ElapsedSec:  result.Elapsed.Seconds(),
		Interrupted: result.Interrupted,
	}
	if stats {
		m := result.Metrics
		out.Stats = &jsonStats{
			Pushes:            m.Pushes,
			Merges:            m.Merges,
			RejectedSnapshots: m.RejectedSnapshots,
			PushesInvalid:     m.PushesInvalid,
			Saves:             m.Saves,
			SaveLatencySec:    m.SaveLatency.Seconds(),
			WorkerSnapshots:   m.WorkerSnapshots,
			RegisteredWorkers: m.RegisteredWorkers,
			PrunedWorkers:     m.PrunedWorkers,
			ResumedSamples:    m.ResumedSamples,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func printSummary(result core.Result, dir string) {
	status := "completed"
	if result.Interrupted {
		status = "interrupted (results saved)"
	}
	fmt.Printf("simulation %s in %s (%d new samples)\n",
		status, result.Elapsed.Round(time.Millisecond), result.NewSamples)
	report.Summary(os.Stdout, result.Report)
	fmt.Printf("%-28s %s/parmonc_data/results\n", "results in", dir)
	report.Table(os.Stdout, result.Report, 5)
}

func cmdCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	maxsv := fs.Int64("maxsv", 100000, "total sample volume target (0 = until interrupted)")
	seqnum := fs.Uint64("seqnum", 0, "experiments subsequence number")
	res := fs.Bool("res", false, "resume the previous simulation")
	dir := fs.String("dir", ".", "working directory")
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	peraver := fs.Duration("peraver", 2*time.Minute, "period of saving results")
	passEvery := fs.Int64("pass-every", 100, "worker pushes after this many realizations")
	leaseSize := fs.Int64("lease-size", 0, "realizations per substream lease (0 = automatic)")
	heartbeat := fs.Duration("heartbeat", 10*time.Second, "worker liveness interval (0 disables supervision)")
	missBudget := fs.Int("miss-budget", 3, "heartbeat intervals a worker may miss before its leases are reissued")
	drain := fs.Duration("drain-timeout", 2*time.Second, "grace for in-flight worker RPCs on shutdown")
	snapshots := fs.Bool("worker-snapshots", true, "write per-worker snapshots for manaver")
	stats := fs.Bool("stats", false, "print collector engine statistics after the job finishes")
	httpAddr := fs.String("http", "", "serve /metrics, /healthz, /statusz and /debug/pprof on this address")
	journal := fs.Bool("journal", true, "append the run-event journal to parmonc_data/events.jsonl")
	fs.Parse(args)

	w, err := wf.resolve()
	if err != nil {
		return err
	}
	nrow, ncol := w.dims()
	params, err := rng.LoadParams(*dir)
	if err != nil {
		return err
	}
	spec := cluster.JobSpec{
		SeqNum:     *seqnum,
		Nrow:       nrow,
		Ncol:       ncol,
		MaxSamples: *maxsv,
		Params:     params,
		Gamma:      3,
		PassEvery:  *passEvery,
		Workload:   w.id,
		LeaseSize:  *leaseSize,
		Heartbeat:  *heartbeat,
	}
	ccfg := cluster.CoordinatorConfig{
		WorkDir:             *dir,
		AverPeriod:          *peraver,
		Resume:              *res,
		MissBudget:          *missBudget,
		SaveWorkerSnapshots: *snapshots,
		DrainTimeout:        *drain,
	}
	if *journal {
		j, err := openJournal(*dir)
		if err != nil {
			return err
		}
		defer j.Close()
		ccfg.Journal = j
	}
	if *httpAddr != "" {
		ccfg.Registry = obs.NewRegistry()
	}
	coord, err := cluster.NewCoordinator(spec, ccfg, *addr)
	if err != nil {
		return err
	}
	defer coord.Close()
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, obs.ServerConfig{
			Registry: ccfg.Registry,
			Journal:  ccfg.Journal,
			Status:   func() any { return coord.Status() },
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("ops server on %s (metrics, healthz, statusz, pprof)\n", srv.URL())
	}
	fmt.Printf("coordinator listening on %s (workload %s, target %d)\n", coord.Addr(), w.id.Fingerprint(), *maxsv)

	ctx, cancel := signalContext()
	defer cancel()
	rep, err := coord.Wait(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("job finished: N = %d, max abs err %g, max rel err %g%%\n",
		rep.N, rep.MaxAbsErr, rep.MaxRelErr)
	if *stats {
		printStats(coord.Status().Metrics)
	}
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	maxsv := fs.Int64("maxsv", 100000, "maximal sample volume per experiment")
	count := fs.Int("count", 3, "number of independent experiments")
	first := fs.Uint64("first-seqnum", 0, "subsequence number of the first experiment")
	workers := fs.Int("workers", 0, "parallel workers per experiment (0 = GOMAXPROCS)")
	dir := fs.String("dir", ".", "working directory (one subdirectory per experiment)")
	perpass := fs.Duration("perpass", time.Minute, "period of passing subtotals")
	peraver := fs.Duration("peraver", 2*time.Minute, "period of saving results")
	fs.Parse(args)

	if *count < 1 {
		return fmt.Errorf("count %d must be >= 1", *count)
	}
	w, err := wf.resolve()
	if err != nil {
		return err
	}
	nrow, ncol := w.dims()
	seqnums := make([]uint64, *count)
	for i := range seqnums {
		seqnums[i] = *first + uint64(i)
	}
	ctx, cancel := signalContext()
	defer cancel()

	cfg := core.Config{
		Nrow:        nrow,
		Ncol:        ncol,
		MaxSamples:  *maxsv,
		Workers:     *workers,
		PassPeriod:  *perpass,
		AverPeriod:  *peraver,
		WorkDir:     *dir,
		Workload:    w.id.Name,
		Fingerprint: w.id.Fingerprint(),
		Scenario:    w.scenario,
	}
	res, err := core.RunExperiments(ctx, cfg, seqnums, w.factory)
	if err != nil {
		return err
	}
	fmt.Printf("%d independent experiments of workload %s, %d samples each\n", *count, w.id.Fingerprint(), *maxsv)
	report.Compare(os.Stdout, res.Reports, res.Combined, 0, 0)
	fmt.Println("\npooled report:")
	report.Summary(os.Stdout, res.Combined)
	return nil
}

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	addr := fs.String("addr", "127.0.0.1:7070", "coordinator (or, with -service, fleet) address")
	service := fs.Bool("service", false, "join a \"parmonc serve\" fleet instead of a single-job coordinator")
	defaults := cluster.DefaultRetryPolicy()
	attempts := fs.Int("retry-attempts", defaults.MaxAttempts, "RPC attempts before the worker gives up")
	base := fs.Duration("retry-base", defaults.BaseDelay, "first retry backoff delay")
	max := fs.Duration("retry-max", defaults.MaxDelay, "backoff delay cap")
	callTimeout := fs.Duration("call-timeout", defaults.CallTimeout, "per-RPC timeout before reconnecting")
	dialTimeout := fs.Duration("dial-timeout", defaults.DialTimeout, "per-dial timeout")
	httpAddr := fs.String("http", "", "serve /metrics, /healthz, /statusz and /debug/pprof on this address")
	journalPath := fs.String("journal", "", "append worker run events to this JSONL file")
	pullWait := fs.Duration("pull-wait", 10*time.Second, "with -service: ask the coordinator to hold idle pulls open this long (long-poll; negative polls instead)")
	pushInterval := fs.Duration("push-interval", 50*time.Millisecond, "with -service: coalesce completed push windows into one batch per interval (negative pushes each window separately)")
	maxBatch := fs.Int("max-batch", 64, "with -service: most push windows one batch may carry")
	fs.Parse(args)

	ctx, cancel := signalContext()
	defer cancel()
	retry := cluster.RetryPolicy{
		MaxAttempts: *attempts,
		BaseDelay:   *base,
		MaxDelay:    *max,
		CallTimeout: *callTimeout,
		DialTimeout: *dialTimeout,
	}
	if *service {
		// Fleet workers take their workloads from the tasks they pull,
		// so the -workload/-set/-scenario flags do not apply here.
		fmt.Printf("fleet worker joining %s\n", *addr)
		rep, err := runmgr.RunFleetWorker(ctx, *addr, runmgr.FleetWorkerConfig{
			Retry:         retry,
			PullWait:      *pullWait,
			FlushInterval: *pushInterval,
			MaxBatch:      *maxBatch,
		})
		if err != nil {
			return err
		}
		fmt.Printf("fleet worker %d done: %d realizations, %d pushes in %d batches (%d retries, %d reconnects)\n",
			rep.Worker, rep.Realizations, rep.Pushes, rep.Batches, rep.Retries, rep.Reconnects)
		return nil
	}
	w, err := wf.resolve()
	if err != nil {
		return err
	}
	wcfg := cluster.WorkerConfig{
		Workload: w.id,
		Retry:    retry,
	}
	if *journalPath != "" {
		j, err := obs.OpenJournal(*journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		wcfg.Journal = j
	}
	if *httpAddr != "" {
		wcfg.Registry = obs.NewRegistry()
		srv, err := obs.Serve(*httpAddr, obs.ServerConfig{
			Registry: wcfg.Registry,
			Journal:  wcfg.Journal,
			Status: func() any {
				return map[string]any{
					"mode":        "worker",
					"coordinator": *addr,
					"metrics":     wcfg.Registry.Snapshot(),
				}
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("ops server on %s (metrics, healthz, statusz, pprof)\n", srv.URL())
	}
	fmt.Printf("worker joining %s (workload %s)\n", *addr, w.id.Fingerprint())
	rep, err := cluster.RunResilientWorker(ctx, *addr, wcfg, w.factory)
	if err != nil {
		return err
	}
	fmt.Printf("worker %d done: %d realizations, %d pushes (%d retries, %d reconnects)\n",
		rep.Worker, rep.Realizations, rep.Pushes, rep.Retries, rep.Reconnects)
	return nil
}
