// Command rngtest runs the statistical test battery against the
// library's parallel generator — the "rigorous statistical testing" the
// paper reports for the 128-bit generator — and optionally against the
// 40-bit baseline.
//
//	rngtest                    # battery on the main stream + substreams
//	rngtest -n 1000000         # bigger sample per test
//	rngtest -baseline          # also test the 40-bit generator
//	rngtest -cross 16          # cross-correlation over 16 substream pairs
package main

import (
	"flag"
	"fmt"
	"os"

	"parmonc/internal/baseline"
	"parmonc/internal/rng"
	"parmonc/internal/rngtest"
)

const alpha = 1e-4

func main() {
	n := flag.Int("n", 200000, "samples per test")
	doBaseline := flag.Bool("baseline", false, "also test the 40-bit baseline generator")
	cross := flag.Int("cross", 8, "number of substream pairs for cross-correlation")
	flag.Parse()

	failures := 0
	printVerdict := func(failures *int, v rngtest.Verdict) {
		status := "pass"
		if !v.Pass(alpha) {
			status = "FAIL"
			*failures++
		}
		fmt.Printf("  %-4s %s\n", status, v)
	}
	runBattery := func(label string, src rngtest.Source) {
		fmt.Printf("\n%s\n", label)
		verdicts, err := rngtest.Battery(src, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
			os.Exit(1)
		}
		for _, v := range verdicts {
			status := "pass"
			if !v.Pass(alpha) {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  %-4s %s\n", status, v)
		}
	}

	mainStream, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
		os.Exit(1)
	}
	runBattery("main stream (experiment 0, processor 0)", mainStream)

	// Standalone tests with their own sample-size constraints.
	extra, err := rng.NewStream(rng.DefaultParams(), rng.Coord{Processor: 9})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nextra tests (processor 9 substream)")
	if *n/10 >= 13000 { // collision test needs ≥5 expected collisions
		v, err := rngtest.CollisionTest(extra, *n/10, 1<<24)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
			os.Exit(1)
		}
		printVerdict(&failures, v)
	}
	if v, err := rngtest.MaximumOfT(extra, *n/10, 5, 50); err == nil {
		printVerdict(&failures, v)
	} else {
		fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
		os.Exit(1)
	}

	for _, c := range []rng.Coord{
		{Processor: 1},
		{Processor: 4096},
		{Experiment: 3, Processor: 17},
	} {
		s, err := rng.NewStream(rng.DefaultParams(), c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
			os.Exit(1)
		}
		runBattery(fmt.Sprintf("substream %+v", c), s)
	}

	fmt.Printf("\ncross-correlation between %d adjacent processor substreams\n", *cross)
	for i := 0; i < *cross; i++ {
		a, err := rng.NewStream(rng.DefaultParams(), rng.Coord{Processor: uint64(2 * i)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
			os.Exit(1)
		}
		b, err := rng.NewStream(rng.DefaultParams(), rng.Coord{Processor: uint64(2*i + 1)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
			os.Exit(1)
		}
		v, err := rngtest.CrossCorrelation(a, b, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rngtest: %v\n", err)
			os.Exit(1)
		}
		status := "pass"
		if !v.Pass(alpha) {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %-4s procs %d↔%d  %s\n", status, 2*i, 2*i+1, v)
	}

	if *doBaseline {
		runBattery("baseline 40-bit generator (period 2^38)", baseline.New40())
	}

	if failures > 0 {
		fmt.Printf("\n%d test(s) FAILED at α = %g\n", failures, alpha)
		os.Exit(1)
	}
	fmt.Printf("\nall tests passed at α = %g\n", alpha)
}
