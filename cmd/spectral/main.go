// Command spectral runs the exact 2-D and 3-D spectral tests on an LCG
// multiplier — the selection criterion of Dyadkin & Hamilton's study of
// 128-bit multipliers (the paper's reference [14] for the generator
// parameters).
//
//	spectral                      # the library multiplier A = 5^101 mod 2^128
//	spectral -a 137 -m 256        # arbitrary multiplier and modulus
//	spectral -a5exp 17 -r 40      # the 40-bit baseline generator
//
// The modulus for a maximal-period multiplicative generator mod 2^r is
// the period lattice 2^(r-2).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"parmonc/internal/lcg"
	"parmonc/internal/rngtest"
)

func main() {
	aStr := flag.String("a", "", "multiplier (decimal); default: the library multiplier")
	mStr := flag.String("m", "", "modulus (decimal); default: 2^(r-2)")
	a5exp := flag.Uint("a5exp", 0, "use multiplier 5^k mod 2^r instead of -a")
	r := flag.Uint("r", 128, "modulus exponent for defaults (period lattice 2^(r-2))")
	flag.Parse()

	a := new(big.Int)
	switch {
	case *aStr != "":
		if _, ok := a.SetString(*aStr, 10); !ok {
			fmt.Fprintf(os.Stderr, "spectral: bad multiplier %q\n", *aStr)
			os.Exit(2)
		}
	case *a5exp > 0:
		mod := new(big.Int).Lsh(big.NewInt(1), *r)
		a.Exp(big.NewInt(5), big.NewInt(int64(*a5exp)), mod)
	default:
		a.SetString(lcg.DefaultMultiplier.String(), 10)
	}
	m := new(big.Int)
	if *mStr != "" {
		if _, ok := m.SetString(*mStr, 10); !ok {
			fmt.Fprintf(os.Stderr, "spectral: bad modulus %q\n", *mStr)
			os.Exit(2)
		}
	} else {
		m.Lsh(big.NewInt(1), *r-2)
	}

	fmt.Printf("multiplier a = %s\n", a)
	fmt.Printf("modulus    m = %s\n", m)
	r2, err := rngtest.SpectralTest2D(a, m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectral: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  2-D: ν₂² = %s\n       S₂  = %.4f\n", r2.Nu2Squared, r2.S2)
	r3, err := rngtest.SpectralTest3D(a, m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectral: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  3-D: ν₃² = %s\n       S₃  = %.4f\n", r3.Nu2Squared, r3.S2)
}
