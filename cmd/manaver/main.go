// Command manaver averages the subtotal sample moments stored by the
// workers of an interrupted simulation and rewrites the results files —
// the paper's manaver (Sec. 3.4). "It is launched after the termination
// of a job on a cluster ... when the sample moments stored in the files
// with results correspond to a smaller sample volume than the one that
// was actually obtained on all the processors."
//
// Run it in the working directory of the simulation (or pass -dir).
package main

import (
	"flag"
	"fmt"
	"os"

	"parmonc/internal/collect"
	"parmonc/internal/report"
)

func main() {
	dir := flag.String("dir", ".", "working directory holding parmonc_data")
	flag.Parse()
	rep, err := collect.Manaver(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manaver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("averaged results rewritten in %s/parmonc_data/results\n", *dir)
	report.Summary(os.Stdout, rep)
}
