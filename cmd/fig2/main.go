// Command fig2 regenerates the paper's performance evaluation (Fig. 2):
// the computer time T_comp(L) to simulate L realizations in total on M
// processors, under the strictest exchange conditions (a message to the
// collector after every realization).
//
//	fig2 -panel a|b|c|d|all     # paper-scale curves via the cluster simulator
//	fig2 -real                  # measured curves with goroutine workers (small M)
//	fig2 -capacities            # the Sec. 2.4 RNG capacity table
//	fig2 -ablation              # exchange-strictness ablation at M = 512
//
// The simulator uses the paper's parameters (τ ≈ 7.7 s per realization,
// ≈120 KB per message); the -real mode runs the actual library on a
// scaled-down SDE workload and reports measured wall times, validating
// the same shape at laptop scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"parmonc/internal/clustersim"
	"parmonc/internal/core"
	"parmonc/internal/lcg"
	"parmonc/internal/rng"
	"parmonc/internal/sde"
)

// panels reproduces the Fig. 2 layout: processor counts and total sample
// volumes per panel.
var panels = map[string]struct {
	ms []int
	ls []int64
}{
	"a": {ms: []int{1, 8}, ls: []int64{200, 400, 600, 800, 1000}},
	"b": {ms: []int{8, 16, 32}, ls: []int64{1500, 3000, 4500, 6000, 7500}},
	"c": {ms: []int{32, 64, 128}, ls: []int64{5000, 10000, 15000, 20000, 25000}},
	"d": {ms: []int{128, 256, 512}, ls: []int64{15000, 30000, 45000, 60000, 75000}},
}

func main() {
	panel := flag.String("panel", "all", "figure panel to regenerate: a, b, c, d or all")
	real := flag.Bool("real", false, "measure real goroutine workers instead of the cluster simulator")
	capacities := flag.Bool("capacities", false, "print the Sec. 2.4 RNG capacity table instead")
	ablation := flag.Bool("ablation", false, "print the exchange-strictness ablation table instead")
	tau := flag.Float64("tau", 7.7, "seconds per realization in the simulator")
	flag.Parse()

	if *capacities {
		printCapacities()
		return
	}
	if *ablation {
		if err := runAblation(*tau); err != nil {
			fmt.Fprintf(os.Stderr, "fig2: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *real {
		if err := runReal(); err != nil {
			fmt.Fprintf(os.Stderr, "fig2: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := []string{*panel}
	if *panel == "all" {
		names = []string{"a", "b", "c", "d"}
	}
	for _, name := range names {
		p, ok := panels[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "fig2: unknown panel %q\n", name)
			os.Exit(2)
		}
		if err := runPanel(name, p.ms, p.ls, *tau); err != nil {
			fmt.Fprintf(os.Stderr, "fig2: %v\n", err)
			os.Exit(1)
		}
	}
}

func printCapacities() {
	p := rng.DefaultParams()
	fmt.Println("PARMONC parallel RNG capacities (Sec. 2.4)")
	fmt.Printf("  base generator period          2^%d\n", lcg.PeriodLog2)
	fmt.Printf("  usable half-period             2^%d\n", lcg.UsableLog2)
	fmt.Printf("  experiment leap n_e            2^%d\n", p.ExperimentLeapLog2)
	fmt.Printf("  processor leap n_p             2^%d\n", p.ProcessorLeapLog2)
	fmt.Printf("  realization leap n_r           2^%d\n", p.RealizationLeapLog2)
	fmt.Printf("  stochastic experiments         %s (≈ 10^3)\n", p.MaxExperiments())
	fmt.Printf("  processors per experiment      %s (≈ 10^5)\n", p.MaxProcessors())
	fmt.Printf("  realizations per processor     %s (≈ 10^16)\n", p.MaxRealizations())
	fmt.Printf("  random numbers per realization %s (≈ 10^13)\n", p.RealizationBudget())
}

func runPanel(name string, ms []int, ls []int64, tau float64) error {
	fmt.Printf("\nFig. 2%s — T_comp(L) in seconds, simulated cluster (τ = %.2fs, 120 KB/msg, strict exchange)\n", name, tau)
	fmt.Printf("%8s", "L")
	for _, m := range ms {
		fmt.Printf("  %10s", fmt.Sprintf("M=%d", m))
	}
	fmt.Println()
	for _, l := range ls {
		fmt.Printf("%8d", l)
		for _, m := range ms {
			p := clustersim.PaperParams(m)
			p.TauSeconds = tau
			res, err := clustersim.Simulate(p, l)
			if err != nil {
				return err
			}
			fmt.Printf("  %10.1f", res.TCompSeconds)
		}
		fmt.Println()
	}
	// Speedup summary at the largest L.
	largest := ls[len(ls)-1]
	base := clustersim.PaperParams(1)
	base.TauSeconds = tau
	b, err := clustersim.Simulate(base, largest)
	if err != nil {
		return err
	}
	fmt.Printf("speedup at L=%d:", largest)
	for _, m := range ms {
		p := clustersim.PaperParams(m)
		p.TauSeconds = tau
		r, err := clustersim.Simulate(p, largest)
		if err != nil {
			return err
		}
		fmt.Printf("  M=%d→%.1fx", m, b.TCompSeconds/r.TCompSeconds)
	}
	fmt.Println()
	return nil
}

// runAblation prints T_comp and message counts for several exchange
// strictness levels at M = 512 — quantifying the premium of the paper's
// "strictest conditions".
func runAblation(tau float64) error {
	const L = 15360
	fmt.Printf("\nexchange-strictness ablation — M = 512, L = %d, τ = %.2fs (simulated)\n", L, tau)
	fmt.Printf("%12s  %12s  %12s  %14s  %10s\n", "pass-every", "T_comp (s)", "messages", "collector busy", "saturationM*")
	for _, passEvery := range []int64{1, 5, 10, 50, 100} {
		p := clustersim.PaperParams(512)
		p.TauSeconds = tau
		p.PassEvery = passEvery
		res, err := clustersim.Simulate(p, L)
		if err != nil {
			return err
		}
		fmt.Printf("%12d  %12.1f  %12d  %13.1fs  %10.0f\n",
			passEvery, res.TCompSeconds, res.Messages, res.CollectorBusy,
			clustersim.SaturationProcessors(p))
	}
	return nil
}

// runReal measures actual wall times with goroutine workers on a scaled
// SDE workload (mesh 1e-4 instead of the paper's 1e-6 so one realization
// takes milliseconds, not seconds).
func runReal() error {
	ms := []int{1, 2, 4, 8}
	ls := []int64{64, 128, 256}
	fmt.Println("\nreal goroutine-worker measurement — T_comp(L) in seconds (scaled SDE workload, strict exchange)")
	fmt.Printf("%8s", "L")
	for _, m := range ms {
		fmt.Printf("  %10s", fmt.Sprintf("M=%d", m))
	}
	fmt.Println()
	for _, l := range ls {
		fmt.Printf("%8d", l)
		for _, m := range ms {
			dir, err := os.MkdirTemp("", "fig2real")
			if err != nil {
				return err
			}
			cfg := core.Config{
				Nrow: 100, Ncol: 2,
				MaxSamples:     l,
				Workers:        m,
				WorkDir:        dir,
				StrictExchange: true,
				PassPeriod:     time.Second,
				AverPeriod:     time.Second,
			}
			start := time.Now()
			_, err = core.RunFactory(context.Background(), cfg, func(int) (core.Realization, error) {
				return sde.PaperRealization(1e-4, 10.0, 100)
			})
			elapsed := time.Since(start)
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			fmt.Printf("  %10.3f", elapsed.Seconds())
		}
		fmt.Println()
	}
	return nil
}
