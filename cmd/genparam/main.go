// Command genparam computes the parallel RNG leap multipliers for
// user-chosen leap exponents and stores them in parmonc_genparam.dat in
// the working directory, exactly as the paper's genparam does
// (Sec. 3.5):
//
//	genparam ne np nr
//
// where ne, np, nr are exponents of 2 for the experiment, processor and
// realization leaps. Subsequent simulations in the same directory pick
// the parameters up automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"parmonc/internal/rng"
)

func main() {
	dir := flag.String("dir", ".", "working directory to write parmonc_genparam.dat into")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: genparam [-dir DIR] ne np nr\n")
		fmt.Fprintf(os.Stderr, "  ne, np, nr: leap exponents of 2 (defaults in the library: 115 98 43)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 3 {
		flag.Usage()
		os.Exit(2)
	}
	exps := make([]uint, 3)
	for i, arg := range flag.Args() {
		v, err := strconv.ParseUint(arg, 10, 8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genparam: bad exponent %q: %v\n", arg, err)
			os.Exit(2)
		}
		exps[i] = uint(v)
	}
	d, err := rng.ComputeGenparam(exps[0], exps[1], exps[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "genparam: %v\n", err)
		os.Exit(1)
	}
	if err := rng.WriteGenparam(*dir, d); err != nil {
		fmt.Fprintf(os.Stderr, "genparam: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s/%s\n", *dir, rng.GenparamFile)
	fmt.Printf("  n_e = 2^%-3d  Â(n_e) = %s\n", d.Params.ExperimentLeapLog2, d.ExpMult.Hex())
	fmt.Printf("  n_p = 2^%-3d  Â(n_p) = %s\n", d.Params.ProcessorLeapLog2, d.ProcMult.Hex())
	fmt.Printf("  n_r = 2^%-3d  Â(n_r) = %s\n", d.Params.RealizationLeapLog2, d.RealizeMult.Hex())
	fmt.Printf("capacity: %s experiments × %s processors × %s realizations\n",
		d.Params.MaxExperiments(), d.Params.MaxProcessors(), d.Params.MaxRealizations())
}
