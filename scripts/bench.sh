#!/usr/bin/env bash
# Run the tracked microbenchmarks (collector push throughput — serial
# and contended —, the RNG kernels, and the per-workload realization
# sweep BenchmarkRealization/<name>) and write a machine-readable snapshot BENCH_<date>.json
# at the repo root. CI runs this on every push and uploads the snapshot
# as an artifact; the checked-in baseline is the reference point for
# the "collector push must not regress" budget.
#
# Environment:
#   BENCHTIME      go test -benchtime value (default 1s)
#   BENCH_OUT      output path (default BENCH_<YYYY-MM-DD>.json)
#   BENCH_PATTERN  benchmark regex (default collector push + RNG + realizations)
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
PATTERN="${BENCH_PATTERN:-^(BenchmarkCollectorPush|BenchmarkCollectorPushContended|BenchmarkRNG|BenchmarkRealization|BenchmarkManifestAppend|BenchmarkFleetRPCPerRealization|BenchmarkPushBatch)$}"
DATE="$(date +%F)"
OUT="${BENCH_OUT:-BENCH_${DATE}.json}"

RAW="$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem . ./internal/runmgr)"
echo "$RAW"

COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
GOVER="$(go version | awk '{print $3}')"

# Each result line is: name iterations (value unit)... — turn the
# unit pairs into a metrics object, sanitizing units into JSON keys
# (ns/op -> ns_op, MB/s -> MB_s, allocs/op -> allocs_op).
echo "$RAW" | awk -v date="$DATE" -v commit="$COMMIT" -v gover="$GOVER" '
/^Benchmark/ {
    name = $1
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        sep = (metrics == "") ? "" : ", "
        metrics = metrics sep "\"" unit "\": " $(i)
    }
    entries[n++] = "    {\"name\": \"" name "\", \"iterations\": " iters ", \"metrics\": {" metrics "}}"
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, commit, gover
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' >"$OUT"

echo "wrote $OUT"
