#!/usr/bin/env bash
# Benchmark regression gate for the collector push budget: diff the
# BenchmarkCollectorPush* ns/op figures in a fresh bench snapshot
# (produced by scripts/bench.sh) against the committed baseline and
# fail on any regression beyond the tolerance. The serialized-collector
# era ended at 16.6µs/push; this gate is what keeps the sharded
# collector from quietly sliding back toward it.
#
# Usage: scripts/bench_gate.sh <fresh.json> [baseline.json]
#
# The baseline defaults to the newest committed BENCH_<date>.json at
# the repo root. Benchmarks present only in the fresh snapshot pass
# (new coverage needs no baseline yet); gated benchmarks missing from
# the fresh run fail, so the gate cannot rot by the pattern shrinking.
#
# Environment:
#   BENCH_TOLERANCE_PCT  allowed ns/op growth in percent (default 20)
#   BENCH_GATE_PREFIX    space-separated benchmark name prefixes to gate
#                        (default "BenchmarkCollectorPush BenchmarkPushBatch")
set -euo pipefail

cd "$(dirname "$0")/.."

FRESH="${1:?usage: bench_gate.sh <fresh.json> [baseline.json]}"
BASELINE="${2:-$(ls BENCH_*.json 2>/dev/null | sort | tail -1)}"
TOL="${BENCH_TOLERANCE_PCT:-20}"
PREFIX="${BENCH_GATE_PREFIX:-BenchmarkCollectorPush BenchmarkPushBatch}"

if [ -z "$BASELINE" ]; then
    echo "bench_gate: no committed BENCH_*.json baseline found" >&2
    exit 1
fi

# Emit "name ns_op" for every gated benchmark entry in a snapshot.
# The snapshots are our own one-entry-per-line format (see bench.sh),
# so a line-oriented scan is exact.
extract() {
    awk -v prefixes="$PREFIX" '
    BEGIN { np = split(prefixes, pfx, " ") }
    /"name":/ {
        line = $0
        sub(/.*"name": "/, "", line)
        name = line
        sub(/".*/, "", name)
        hit = 0
        for (p = 1; p <= np; p++) if (index(name, pfx[p]) == 1) hit = 1
        if (!hit) next
        line = $0
        if (!sub(/.*"ns_op": /, "", line)) next
        sub(/[,}].*/, "", line)
        print name, line
    }' "$1"
}

echo "bench_gate: $FRESH vs baseline $BASELINE (prefix $PREFIX, tolerance ${TOL}%)"

extract "$BASELINE" >/tmp/bench_gate_base.$$
extract "$FRESH" >/tmp/bench_gate_fresh.$$
trap 'rm -f /tmp/bench_gate_base.$$ /tmp/bench_gate_fresh.$$' EXIT

if [ ! -s /tmp/bench_gate_base.$$ ]; then
    echo "bench_gate: baseline $BASELINE has no $PREFIX entries" >&2
    exit 1
fi

awk -v tol="$TOL" '
NR == FNR { base[$1] = $2; next }
{ fresh[$1] = $2 }
END {
    fail = 0
    for (n in base) {
        if (!(n in fresh)) {
            printf "MISSING  %-45s baseline %.5g ns/op, absent from fresh run\n", n, base[n]
            fail = 1
            continue
        }
        pct = (fresh[n] - base[n]) / base[n] * 100
        verdict = (pct > tol) ? "REGRESS" : "ok"
        if (pct > tol) fail = 1
        printf "%-8s %-45s %.5g -> %.5g ns/op (%+.1f%%)\n", verdict, n, base[n], fresh[n], pct
    }
    for (n in fresh) {
        if (!(n in base)) printf "NEW      %-45s %.5g ns/op (no baseline yet)\n", n, fresh[n]
    }
    exit fail
}' /tmp/bench_gate_base.$$ /tmp/bench_gate_fresh.$$
