// Package parmonc is a Go implementation of PARMONC, the library for
// massively parallel stochastic (Monte Carlo) simulation described in
//
//	M. Marchenko, "PARMONC — A Software Library for Massively Parallel
//	Stochastic Simulation", PaCT 2011, LNCS 6873, pp. 302–316.
//
// The user writes a sequential routine that simulates a single
// realization of a random object — a matrix [ζ_ij] — drawing base random
// numbers from the stream it is handed, and passes it to Run. The
// library:
//
//   - distributes the simulation of independent realizations over
//     parallel workers, each on its own subsequence of a 128-bit
//     congruential generator with period 2^126 (so streams never
//     overlap, up to ~10^3 experiments × 10^5 workers × 10^16
//     realizations with the default leaps);
//   - periodically collects subtotal sample moments from the workers and
//     computes the matrices of sample means, variances, absolute errors
//     (the 3σ·L^(-1/2) confidence bound) and relative errors;
//   - periodically saves results and checkpoints in the parmonc_data
//     directory, in the file layout of the original library (func.dat,
//     func_ci.dat, func_log.dat, parmonc_exp.dat);
//   - resumes a previous simulation (Config.Resume), automatically
//     averaging in its results, and recovers interrupted runs from
//     per-worker snapshots (Manaver).
//
// # Quick start
//
// Estimate E α for α uniform on (0,1):
//
//	res, err := parmonc.Run(ctx, parmonc.Config{
//		Nrow: 1, Ncol: 1, MaxSamples: 1e6,
//	}, func(src *parmonc.Stream, out []float64) error {
//		out[0] = src.Float64()
//		return nil
//	})
//
// res.Report then holds the sample mean 0.5 ± 3σ/√L.
//
// The original library is driven by MPI; this implementation runs the
// same master/worker protocol over goroutines in one process (Run) and
// over TCP between processes (the cluster coordinator and worker
// commands), which exercises the identical algorithm: asynchronous
// workers, rare moment pushes, collector-side averaging by the paper's
// formula (5).
package parmonc

import (
	"context"

	"parmonc/internal/cluster"
	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Version identifies this implementation.
const Version = "1.0.0"

// Stream is a positioned substream of the parallel 128-bit generator.
// The realization routine draws base random numbers from it via Float64
// (the paper's rnd128()).
type Stream = rng.Stream

// Source is the minimal random source interface: anything with
// Float64() float64 uniform on (0,1). *Stream implements it.
type Source = rng.Source

// Coord identifies one realization subsequence: experiment, processor,
// realization.
type Coord = rng.Coord

// Params holds the leap exponents (n_e, n_p, n_r) of the substream
// hierarchy.
type Params = rng.Params

// Realization is the user-supplied sequential routine: it simulates one
// realization of the random object into out (row-major Nrow×Ncol),
// drawing base random numbers from src.
type Realization = core.Realization

// Config configures a simulation run; see the field documentation on
// core.Config for the full contract. The zero values of the optional
// fields select the paper's defaults.
type Config = core.Config

// Result is the outcome of a run: the final report, metadata, sample
// counts, and whether the run was interrupted.
type Result = core.Result

// Report holds the derived statistics: matrices of sample means,
// variances, absolute and relative errors, and their upper bounds.
type Report = stat.Report

// Snapshot is the serializable subtotal-moment state exchanged between
// workers and the collector and stored in checkpoints.
type Snapshot = stat.Snapshot

// Accumulator collects running sample moments of a matrix-valued random
// variable; Run manages accumulators internally, but they are exported
// for custom drivers and post-processing.
type Accumulator = stat.Accumulator

// RunMeta describes a stored simulation run.
type RunMeta = store.RunMeta

// Factory produces a fresh Realization for each worker; use it with
// RunFactory when the realization routine carries state.
type Factory = core.Factory

// Progress is the point-in-time statistics snapshot handed to
// Config.OnSave — the hook for controlling the stochastic errors during
// the simulation.
type Progress = core.Progress

// StopRule is a statistical completion criterion evaluated after every
// periodic save. Set Config.Stop to end a run when a target accuracy is
// reached instead of (or in addition to) a fixed sample volume.
type StopRule = collect.StopRule

// TargetRelErr returns the standard error-control stop rule: complete
// once the maximal relative error — the γ·σ̄·L^(−1/2) bound relative to
// the mean, in percent — drops below maxRelErrPct, after at least
// minSamples realizations (<= 0 selects the default of 1000).
func TargetRelErr(maxRelErrPct float64, minSamples int64) StopRule {
	return collect.TargetRelErr(maxRelErrPct, minSamples)
}

// Run executes the simulation described by cfg, calling r once per
// independent realization across cfg.Workers parallel workers. It is the
// Go analogue of the paper's parmoncc/parmoncf subroutines. r is called
// concurrently; stateful routines should use RunFactory instead.
func Run(ctx context.Context, cfg Config, r Realization) (Result, error) {
	return core.Run(ctx, cfg, r)
}

// RunFactory is Run with a per-worker realization factory, mirroring the
// original library where every MPI rank runs its own copy of the user
// routine.
func RunFactory(ctx context.Context, cfg Config, f Factory) (Result, error) {
	return core.RunFactory(ctx, cfg, f)
}

// Manaver recomputes averaged results from the per-worker snapshot files
// of an interrupted run — the paper's manaver command.
func Manaver(workdir string) (Report, error) {
	return core.Manaver(workdir)
}

// DefaultParams returns the paper's default leap exponents
// (n_e, n_p, n_r) = (2^115, 2^98, 2^43).
func DefaultParams() Params { return rng.DefaultParams() }

// NewParams validates and returns custom leap exponents (the paper's
// genparam arguments are exponents of two).
func NewParams(ne, np, nr uint) (Params, error) { return rng.NewParams(ne, np, nr) }

// NewStream returns a stream positioned at the start of the realization
// subsequence identified by c — for users who drive the generator
// directly rather than through Run.
func NewStream(p Params, c Coord) (*Stream, error) { return rng.NewStream(p, c) }

// NewAccumulator returns an empty moment accumulator for nrow×ncol
// realization matrices.
func NewAccumulator(nrow, ncol int) *Accumulator { return stat.New(nrow, ncol) }

// ConfidenceCoefficient returns γ(λ) with
// P(|ζ̄ − Eζ| < γ·σ̄·L^(-1/2)) ≈ λ; γ(0.9973) = 3 is the default used by
// the library.
func ConfidenceCoefficient(lambda float64) (float64, error) {
	return stat.ConfidenceCoefficient(lambda)
}

// JobSpec describes a distributed simulation managed by a Coordinator.
type JobSpec = cluster.JobSpec

// Coordinator is the rank-0 process of a distributed job: it assigns
// processor substreams to TCP workers, merges their subtotal moments
// and writes results files. It replaces the MPI layer of the original
// library.
type Coordinator = cluster.Coordinator

// CoordinatorConfig bundles the optional coordinator knobs.
type CoordinatorConfig = cluster.CoordinatorConfig

// NewCoordinator starts a coordinator listening on addr
// (host:port, or host:0 for an ephemeral port).
func NewCoordinator(spec JobSpec, cfg CoordinatorConfig, addr string) (*Coordinator, error) {
	return cluster.NewCoordinator(spec, cfg, addr)
}

// RunWorker connects to the coordinator at addr and simulates
// realizations with the factory-produced routine until the job
// completes or ctx is cancelled.
func RunWorker(ctx context.Context, addr string, factory Factory) error {
	return cluster.RunWorker(ctx, addr, factory)
}

// ExperimentsResult bundles the independent per-experiment reports and
// the pooled report produced by RunExperiments.
type ExperimentsResult = core.ExperimentsResult

// RunExperiments performs several independent stochastic experiments —
// one full simulation per experiments-subsequence number, each in its
// own results subdirectory — and pools their moments. Independent
// experiments are the paper's top hierarchy level and its recipe for
// validating a stochastic computation.
func RunExperiments(ctx context.Context, cfg Config, seqnums []uint64, f Factory) (ExperimentsResult, error) {
	return core.RunExperiments(ctx, cfg, seqnums, f)
}

// WorkerOptions tunes RunWorkerOpts connection behaviour (retry count,
// delays), making worker/coordinator start order irrelevant.
type WorkerOptions = cluster.WorkerOptions

// RunWorkerOpts is RunWorker with explicit connection options.
func RunWorkerOpts(ctx context.Context, addr string, factory Factory, opts WorkerOptions) error {
	return cluster.RunWorkerOpts(ctx, addr, factory, opts)
}

// StableAccumulator is the numerically robust (Welford/Chan) moment
// accumulator; enable it inside Run with Config.StableMoments, or use
// it directly for custom post-processing.
type StableAccumulator = stat.StableAccumulator

// NewStableAccumulator returns an empty stable accumulator for
// nrow×ncol realization matrices.
func NewStableAccumulator(nrow, ncol int) *StableAccumulator {
	return stat.NewStable(nrow, ncol)
}
