module parmonc

go 1.22
