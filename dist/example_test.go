package dist_test

import (
	"fmt"
	"math"

	"parmonc"
	"parmonc/dist"
)

// source returns a deterministic library stream for the examples.
func source() dist.Source {
	s, err := parmonc.NewStream(parmonc.DefaultParams(), parmonc.Coord{})
	if err != nil {
		panic(err)
	}
	return s
}

// ExampleNormal shows the cached Box–Muller sampler inside a
// realization routine.
func ExampleNormal() {
	src := source()
	n := &dist.Normal{Mu: 10, Sigma: 2}
	var sum float64
	const count = 100000
	for i := 0; i < count; i++ {
		sum += n.Sample(src)
	}
	fmt.Printf("mean within 0.1 of 10: %v\n", math.Abs(sum/count-10) < 0.1)
	// Output:
	// mean within 0.1 of 10: true
}

// ExampleExponential estimates the mean free path of a particle in a
// medium with unit cross-section.
func ExampleExponential() {
	src := source()
	var sum float64
	const count = 100000
	for i := 0; i < count; i++ {
		sum += dist.Exponential(src, 1)
	}
	fmt.Printf("mean free path within 0.02 of 1: %v\n", math.Abs(sum/count-1) < 0.02)
	// Output:
	// mean free path within 0.02 of 1: true
}

// ExampleNewAlias draws from a discrete distribution in O(1) per
// sample.
func ExampleNewAlias() {
	a, err := dist.NewAlias([]float64{7, 2, 1})
	if err != nil {
		panic(err)
	}
	src := source()
	counts := make([]int, 3)
	for i := 0; i < 100000; i++ {
		counts[a.Sample(src)]++
	}
	fmt.Printf("category 0 most frequent: %v\n", counts[0] > counts[1] && counts[1] > counts[2])
	// Output:
	// category 0 most frequent: true
}

// ExamplePoisson counts events in a window with rate 3.
func ExamplePoisson() {
	src := source()
	var sum int64
	const count = 100000
	for i := 0; i < count; i++ {
		sum += dist.Poisson(src, 3)
	}
	mean := float64(sum) / count
	fmt.Printf("mean within 0.05 of 3: %v\n", math.Abs(mean-3) < 0.05)
	// Output:
	// mean within 0.05 of 3: true
}
