package dist

import (
	"math"
	"testing"

	"parmonc/internal/rng"
)

// src returns a fresh library stream for deterministic sampling tests.
func src(t testing.TB) Source {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// moments estimates mean and variance of n samples from f.
func moments(n int, f func() float64) (mean, variance float64) {
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := f()
		sum += v
		sum2 += v * v
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return mean, variance
}

const nSamples = 200000

func checkMoments(t *testing.T, name string, wantMean, wantVar float64, f func() float64) {
	t.Helper()
	mean, variance := moments(nSamples, f)
	// 5σ tolerance on the mean estimate plus a floor for tiny variances.
	tol := 5*math.Sqrt(wantVar/float64(nSamples)) + 1e-4
	if math.Abs(mean-wantMean) > tol {
		t.Errorf("%s: mean = %g, want %g ± %g", name, mean, wantMean, tol)
	}
	if wantVar > 0 {
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("%s: var = %g, want %g (±10%%)", name, variance, wantVar)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	s := src(t)
	checkMoments(t, "U(2,5)", 3.5, 9.0/12, func() float64 { return Uniform(s, 2, 5) })
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Uniform(src(t), 5, 2)
}

func TestBernoulliFrequency(t *testing.T) {
	s := src(t)
	count := 0
	for i := 0; i < nSamples; i++ {
		if Bernoulli(s, 0.3) {
			count++
		}
	}
	p := float64(count) / nSamples
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("P = %g, want 0.3", p)
	}
}

func TestExponentialMoments(t *testing.T) {
	s := src(t)
	checkMoments(t, "Exp(2)", 0.5, 0.25, func() float64 { return Exponential(s, 2) })
}

func TestExponentialPositive(t *testing.T) {
	s := src(t)
	for i := 0; i < 10000; i++ {
		if v := Exponential(s, 1); v <= 0 || math.IsInf(v, 0) {
			t.Fatalf("sample %g", v)
		}
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Exponential(src(t), 0)
}

func TestNormalMoments(t *testing.T) {
	s := src(t)
	n := &Normal{Mu: 3, Sigma: 2}
	checkMoments(t, "N(3,4)", 3, 4, func() float64 { return n.Sample(s) })
}

func TestStdNormalMoments(t *testing.T) {
	s := src(t)
	checkMoments(t, "N(0,1)", 0, 1, func() float64 { return StdNormal(s) })
}

func TestStdNormalDrawsExactlyTwo(t *testing.T) {
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Drawn()
	StdNormal(s)
	if got := s.Drawn() - before; got != 2 {
		t.Fatalf("StdNormal drew %d numbers, want 2", got)
	}
}

func TestNormalResetDropsSpare(t *testing.T) {
	s := src(t)
	n := &Normal{}
	n.Sample(s) // caches a spare
	n.Reset()
	if n.has {
		t.Fatal("Reset did not clear the spare")
	}
}

func TestNormalTails(t *testing.T) {
	// ~0.27% of standard normal samples should exceed |3|.
	s := src(t)
	n := &Normal{}
	count := 0
	for i := 0; i < nSamples; i++ {
		if math.Abs(n.Sample(s)) > 3 {
			count++
		}
	}
	p := float64(count) / nSamples
	if p < 0.001 || p > 0.006 {
		t.Fatalf("P(|Z|>3) = %g, want ≈ 0.0027", p)
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := src(t)
	mu, sigma := 0.5, 0.4
	wantMean := math.Exp(mu + sigma*sigma/2)
	wantVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	checkMoments(t, "LogNormal", wantMean, wantVar, func() float64 { return LogNormal(s, mu, sigma) })
}

func TestPoissonSmallMean(t *testing.T) {
	s := src(t)
	checkMoments(t, "Poisson(4)", 4, 4, func() float64 { return float64(Poisson(s, 4)) })
}

func TestPoissonLargeMeanPTRS(t *testing.T) {
	s := src(t)
	checkMoments(t, "Poisson(100)", 100, 100, func() float64 { return float64(Poisson(s, 100)) })
}

func TestPoissonBoundaryMean(t *testing.T) {
	// λ = 30 exercises the Knuth path right at the cutoff; λ = 30.5 the
	// PTRS path just above it.
	s := src(t)
	checkMoments(t, "Poisson(30)", 30, 30, func() float64 { return float64(Poisson(s, 30)) })
	checkMoments(t, "Poisson(30.5)", 30.5, 30.5, func() float64 { return float64(Poisson(s, 30.5)) })
}

func TestPoissonNonNegative(t *testing.T) {
	s := src(t)
	for i := 0; i < 10000; i++ {
		if v := Poisson(s, 50); v < 0 {
			t.Fatalf("negative Poisson sample %d", v)
		}
	}
}

func TestGeometricMoments(t *testing.T) {
	s := src(t)
	p := 0.25
	wantMean := (1 - p) / p
	wantVar := (1 - p) / (p * p)
	checkMoments(t, "Geometric(0.25)", wantMean, wantVar, func() float64 { return float64(Geometric(s, p)) })
}

func TestGeometricPOne(t *testing.T) {
	if got := Geometric(src(t), 1); got != 0 {
		t.Fatalf("Geometric(1) = %d", got)
	}
}

func TestBinomialSmallN(t *testing.T) {
	s := src(t)
	checkMoments(t, "B(20,0.3)", 6, 4.2, func() float64 { return float64(Binomial(s, 20, 0.3)) })
}

func TestBinomialLargeN(t *testing.T) {
	s := src(t)
	n, p := int64(10000), 0.37
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	checkMoments(t, "B(10000,0.37)", wantMean, wantVar, func() float64 { return float64(Binomial(s, n, p)) })
}

func TestBinomialEdgeCases(t *testing.T) {
	s := src(t)
	if got := Binomial(s, 0, 0.5); got != 0 {
		t.Fatalf("B(0,·) = %d", got)
	}
	if got := Binomial(s, 10, 0); got != 0 {
		t.Fatalf("B(·,0) = %d", got)
	}
	if got := Binomial(s, 10, 1); got != 10 {
		t.Fatalf("B(10,1) = %d", got)
	}
}

func TestBinomialRange(t *testing.T) {
	s := src(t)
	for i := 0; i < 5000; i++ {
		if v := Binomial(s, 1000, 0.5); v < 0 || v > 1000 {
			t.Fatalf("B(1000,0.5) = %d out of range", v)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	s := src(t)
	g := Gamma{Alpha: 3, Rate: 2}
	checkMoments(t, "Gamma(3,2)", 1.5, 0.75, func() float64 { return g.Sample(s) })
}

func TestGammaShapeBelowOne(t *testing.T) {
	s := src(t)
	g := Gamma{Alpha: 0.5, Rate: 1}
	checkMoments(t, "Gamma(0.5,1)", 0.5, 0.5, func() float64 { return g.Sample(s) })
}

func TestGammaDefaultsToExpOne(t *testing.T) {
	s := src(t)
	g := Gamma{}
	checkMoments(t, "Gamma defaults", 1, 1, func() float64 { return g.Sample(s) })
}

func TestBetaMoments(t *testing.T) {
	s := src(t)
	a, b := 2.0, 5.0
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	checkMoments(t, "Beta(2,5)", wantMean, wantVar, func() float64 { return Beta(s, a, b) })
}

func TestBetaInUnitInterval(t *testing.T) {
	s := src(t)
	for i := 0; i < 10000; i++ {
		if v := Beta(s, 0.5, 0.5); v < 0 || v > 1 {
			t.Fatalf("Beta sample %g", v)
		}
	}
}

func TestChiSquaredMoments(t *testing.T) {
	s := src(t)
	checkMoments(t, "χ²(5)", 5, 10, func() float64 { return ChiSquared(s, 5) })
}

func TestStudentTMoments(t *testing.T) {
	s := src(t)
	nu := 10.0
	checkMoments(t, "t(10)", 0, nu/(nu-2), func() float64 { return StudentT(s, nu) })
}

func TestCauchyMedian(t *testing.T) {
	// Cauchy has no mean; check the median and quartiles instead.
	s := src(t)
	neg, inQ := 0, 0
	for i := 0; i < nSamples; i++ {
		v := Cauchy(s)
		if v < 0 {
			neg++
		}
		if v > -1 && v < 1 {
			inQ++
		}
	}
	if p := float64(neg) / nSamples; math.Abs(p-0.5) > 0.01 {
		t.Fatalf("P(X<0) = %g", p)
	}
	// P(-1 < X < 1) = 1/2 for standard Cauchy.
	if p := float64(inQ) / nSamples; math.Abs(p-0.5) > 0.01 {
		t.Fatalf("P(-1<X<1) = %g", p)
	}
}

func TestWeibullMoments(t *testing.T) {
	s := src(t)
	k, lambda := 2.0, 3.0
	g1 := math.Gamma(1 + 1/k)
	g2 := math.Gamma(1 + 2/k)
	wantMean := lambda * g1
	wantVar := lambda * lambda * (g2 - g1*g1)
	checkMoments(t, "Weibull(2,3)", wantMean, wantVar, func() float64 { return Weibull(s, k, lambda) })
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	s := src(t)
	counts := make([]int, 4)
	for i := 0; i < nSamples; i++ {
		counts[a.Sample(s)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / nSamples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: freq %g, want %g", i, got, want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	s := src(t)
	for i := 0; i < 100; i++ {
		if got := a.Sample(s); got != 0 {
			t.Fatalf("sample %d", got)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a, err := NewAlias([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := src(t)
	for i := 0; i < 20000; i++ {
		if got := a.Sample(s); got == 1 {
			t.Fatal("sampled zero-weight category")
		}
	}
}

func TestAliasErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{-1, 2},
		{0, 0},
		{math.NaN()},
		{math.Inf(1)},
	}
	for i, w := range cases {
		if _, err := NewAlias(w); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestChoiceUniform(t *testing.T) {
	s := src(t)
	counts := make([]int, 5)
	for i := 0; i < nSamples; i++ {
		counts[Choice(s, 5)]++
	}
	for i, c := range counts {
		if p := float64(c) / nSamples; math.Abs(p-0.2) > 0.01 {
			t.Errorf("Choice category %d: freq %g", i, p)
		}
	}
}

func TestChoicePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Choice(src(t), 0)
}

func BenchmarkStdNormal(b *testing.B) {
	s := src(b)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = StdNormal(s)
	}
	_ = sink
}

func BenchmarkNormalCached(b *testing.B) {
	s := src(b)
	n := &Normal{}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = n.Sample(s)
	}
	_ = sink
}

func BenchmarkPoisson100(b *testing.B) {
	s := src(b)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = Poisson(s, 100)
	}
	_ = sink
}

func BenchmarkGamma(b *testing.B) {
	s := src(b)
	g := Gamma{Alpha: 2.5}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = g.Sample(s)
	}
	_ = sink
}

func BenchmarkAlias(b *testing.B) {
	a, err := NewAlias([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		b.Fatal(err)
	}
	s := src(b)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = a.Sample(s)
	}
	_ = sink
}

func TestSamplersFiniteAcrossParameterSweep(t *testing.T) {
	// Property sweep: every sampler stays finite over a grid of
	// parameters, with a fresh substream per case.
	s := src(t)
	const draws = 2000

	for _, lambda := range []float64{1e-6, 0.1, 1, 10, 1e6} {
		for i := 0; i < draws; i++ {
			if v := Exponential(s, lambda); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("Exponential(%g) = %g", lambda, v)
			}
		}
	}
	for _, mean := range []float64{1e-3, 1, 29.9, 30, 30.1, 1e4} {
		for i := 0; i < draws; i++ {
			if v := Poisson(s, mean); v < 0 {
				t.Fatalf("Poisson(%g) = %d", mean, v)
			}
		}
	}
	g := Gamma{}
	for _, alpha := range []float64{1e-2, 0.5, 1, 2.5, 100} {
		g.Alpha = alpha
		for i := 0; i < draws; i++ {
			if v := g.Sample(s); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("Gamma(%g) = %g", alpha, v)
			}
		}
	}
	for _, p := range []float64{1e-6, 0.5, 1 - 1e-9, 1} {
		for i := 0; i < 200; i++ {
			if v := Geometric(s, p); v < 0 {
				t.Fatalf("Geometric(%g) = %d", p, v)
			}
		}
	}
	for _, k := range []float64{0.3, 1, 5} {
		for _, lam := range []float64{0.1, 1, 100} {
			for i := 0; i < 500; i++ {
				if v := Weibull(s, k, lam); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("Weibull(%g,%g) = %g", k, lam, v)
				}
			}
		}
	}
}

func TestBinomialParameterSweepMeans(t *testing.T) {
	s := src(t)
	for _, c := range []struct {
		n int64
		p float64
	}{{1, 0.5}, {10, 0.01}, {64, 0.99}, {65, 0.5}, {1000, 0.123}, {100000, 0.9}} {
		var sum float64
		const reps = 3000
		for i := 0; i < reps; i++ {
			v := Binomial(s, c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("B(%d,%g) = %d out of range", c.n, c.p, v)
			}
			sum += float64(v)
		}
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		tol := 5*sd/math.Sqrt(reps) + 0.05
		if got := sum / reps; math.Abs(got-want) > tol {
			t.Errorf("B(%d,%g): mean %g, want %g ± %g", c.n, c.p, got, want, tol)
		}
	}
}
