package dist

import (
	"math"
	"testing"
)

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4, 2], [2, 5]] → L = [[2, 0], [1, 2]].
	l, err := Cholesky([]float64{4, 2, 2, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, 2}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Fatalf("L = %v, want %v", l, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := Cholesky([]float64{1, 2, 2, 1}, 2); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := Cholesky([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("wrong size accepted")
	}
}

func TestMVNormalValidation(t *testing.T) {
	if _, err := NewMVNormal(nil, nil); err == nil {
		t.Error("empty mean accepted")
	}
	if _, err := NewMVNormal([]float64{0, 0}, []float64{1, 0, 0}); err == nil {
		t.Error("wrong covariance size accepted")
	}
	if _, err := NewMVNormal([]float64{0, 0}, []float64{1, 0.5, -0.5, 1}); err == nil {
		t.Error("asymmetric covariance accepted")
	}
	m, err := NewMVNormal([]float64{0, 0}, []float64{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sample(src(t), make([]float64, 3)); err == nil {
		t.Error("wrong out length accepted")
	}
}

func TestMVNormalMomentsAndCorrelation(t *testing.T) {
	mu := []float64{1, -2}
	sigma := []float64{4, 2.4, 2.4, 9} // correlation 0.4
	m, err := NewMVNormal(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	s := src(t)
	out := make([]float64, 2)
	var sx, sy, sxx, syy, sxy float64
	const n = 200000
	for i := 0; i < n; i++ {
		if err := m.Sample(s, out); err != nil {
			t.Fatal(err)
		}
		sx += out[0]
		sy += out[1]
		sxx += out[0] * out[0]
		syy += out[1] * out[1]
		sxy += out[0] * out[1]
	}
	mx, my := sx/n, sy/n
	vx := sxx/n - mx*mx
	vy := syy/n - my*my
	cov := sxy/n - mx*my
	if math.Abs(mx-1) > 0.02 || math.Abs(my+2) > 0.03 {
		t.Fatalf("means (%g, %g)", mx, my)
	}
	if math.Abs(vx-4)/4 > 0.05 || math.Abs(vy-9)/9 > 0.05 {
		t.Fatalf("variances (%g, %g)", vx, vy)
	}
	if math.Abs(cov-2.4)/2.4 > 0.1 {
		t.Fatalf("covariance %g, want 2.4", cov)
	}
}

func TestDirichletSimplex(t *testing.T) {
	s := src(t)
	alpha := []float64{2, 3, 5}
	out := make([]float64, 3)
	sums := make([]float64, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		if err := Dirichlet(s, alpha, out); err != nil {
			t.Fatal(err)
		}
		var total float64
		for j, v := range out {
			if v < 0 || v > 1 {
				t.Fatalf("component %g outside [0,1]", v)
			}
			total += v
			sums[j] += v
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("components sum to %g", total)
		}
	}
	// E X_j = α_j / Σα = 0.2, 0.3, 0.5.
	for j, want := range []float64{0.2, 0.3, 0.5} {
		if got := sums[j] / n; math.Abs(got-want) > 0.005 {
			t.Errorf("E X_%d = %g, want %g", j, got, want)
		}
	}
}

func TestDirichletValidation(t *testing.T) {
	s := src(t)
	if err := Dirichlet(s, []float64{1}, make([]float64, 1)); err == nil {
		t.Error("single parameter accepted")
	}
	if err := Dirichlet(s, []float64{1, 0}, make([]float64, 2)); err == nil {
		t.Error("zero parameter accepted")
	}
	if err := Dirichlet(s, []float64{1, 2}, make([]float64, 3)); err == nil {
		t.Error("wrong out accepted")
	}
}

func TestParetoMoments(t *testing.T) {
	// α must exceed 4 for the sample variance to converge at the test's
	// sample size (the variance of the variance needs the 4th moment).
	s := src(t)
	xm, alpha := 2.0, 5.0
	wantMean := alpha * xm / (alpha - 1)
	wantVar := xm * xm * alpha / ((alpha - 1) * (alpha - 1) * (alpha - 2))
	checkMoments(t, "Pareto(2,5)", wantMean, wantVar, func() float64 { return Pareto(s, xm, alpha) })
}

func TestParetoMinimum(t *testing.T) {
	s := src(t)
	for i := 0; i < 10000; i++ {
		if v := Pareto(s, 2, 1); v < 2 {
			t.Fatalf("Pareto sample %g below xm", v)
		}
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := src(t)
	mu, b := 1.5, 0.7
	checkMoments(t, "Laplace", mu, 2*b*b, func() float64 { return Laplace(s, mu, b) })
}

func TestRayleighMoments(t *testing.T) {
	s := src(t)
	sigma := 2.0
	wantMean := sigma * math.Sqrt(math.Pi/2)
	wantVar := (4 - math.Pi) / 2 * sigma * sigma
	checkMoments(t, "Rayleigh(2)", wantMean, wantVar, func() float64 { return Rayleigh(s, sigma) })
}

func TestTruncatedNormalRespectsBounds(t *testing.T) {
	s := src(t)
	for i := 0; i < 20000; i++ {
		v := TruncatedNormal(s, 0, 1, -0.5, 1.5)
		if v < -0.5 || v > 1.5 {
			t.Fatalf("truncated sample %g out of bounds", v)
		}
	}
}

func TestTruncatedNormalSymmetricMeanZero(t *testing.T) {
	s := src(t)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += TruncatedNormal(s, 0, 1, -2, 2)
	}
	if mean := sum / n; math.Abs(mean) > 0.02 {
		t.Fatalf("symmetric truncation mean %g", mean)
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	s := src(t)
	cases := []func(){
		func() { Pareto(s, 0, 1) },
		func() { Laplace(s, 0, 0) },
		func() { Rayleigh(s, -1) },
		func() { TruncatedNormal(s, 0, 0, 0, 1) },
		func() { TruncatedNormal(s, 0, 1, 2, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkMVNormal3D(b *testing.B) {
	m, err := NewMVNormal([]float64{0, 0, 0}, []float64{
		2, 0.5, 0.2,
		0.5, 1, 0.1,
		0.2, 0.1, 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := src(b)
	out := make([]float64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Sample(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
