package dist

import (
	"fmt"
	"math"
)

// MVNormal samples from a multivariate normal distribution N(Mu, Σ)
// given the covariance matrix via its Cholesky factor. Construct with
// NewMVNormal, which factors Σ once; each Sample costs d standard
// normals and a triangular multiply.
type MVNormal struct {
	dim    int
	mu     []float64
	chol   []float64 // lower-triangular Cholesky factor, row-major
	normal Normal
}

// NewMVNormal builds a sampler for N(mu, sigma), where sigma is the
// row-major dim×dim covariance matrix. It returns an error if sigma is
// not symmetric positive definite.
func NewMVNormal(mu, sigma []float64) (*MVNormal, error) {
	d := len(mu)
	if d == 0 {
		return nil, fmt.Errorf("dist: empty mean vector")
	}
	if len(sigma) != d*d {
		return nil, fmt.Errorf("dist: covariance has %d entries, want %d", len(sigma), d*d)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if math.Abs(sigma[i*d+j]-sigma[j*d+i]) > 1e-12*(1+math.Abs(sigma[i*d+j])) {
				return nil, fmt.Errorf("dist: covariance not symmetric at (%d,%d)", i, j)
			}
		}
	}
	chol, err := Cholesky(sigma, d)
	if err != nil {
		return nil, err
	}
	m := &MVNormal{dim: d, mu: make([]float64, d), chol: chol}
	copy(m.mu, mu)
	return m, nil
}

// Dim returns the dimension.
func (m *MVNormal) Dim() int { return m.dim }

// Sample draws one vector into out (length Dim).
func (m *MVNormal) Sample(src Source, out []float64) error {
	if len(out) != m.dim {
		return fmt.Errorf("dist: out has length %d, want %d", len(out), m.dim)
	}
	z := make([]float64, m.dim)
	for i := range z {
		z[i] = m.normal.Sample(src)
	}
	for i := 0; i < m.dim; i++ {
		v := m.mu[i]
		row := m.chol[i*m.dim : (i+1)*m.dim]
		for j := 0; j <= i; j++ {
			v += row[j] * z[j]
		}
		out[i] = v
	}
	return nil
}

// Cholesky returns the lower-triangular factor L with L·Lᵀ = a for a
// row-major d×d symmetric positive definite matrix. The upper triangle
// of the result is zero.
func Cholesky(a []float64, d int) ([]float64, error) {
	if len(a) != d*d || d <= 0 {
		return nil, fmt.Errorf("dist: cholesky of %d entries with d=%d", len(a), d)
	}
	l := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*d+j]
			for k := 0; k < j; k++ {
				sum -= l[i*d+k] * l[j*d+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("dist: matrix not positive definite (pivot %d: %g)", i, sum)
				}
				l[i*d+i] = math.Sqrt(sum)
			} else {
				l[i*d+j] = sum / l[j*d+j]
			}
		}
	}
	return l, nil
}

// Dirichlet samples a point of the (k−1)-simplex with the given
// concentration parameters (all positive) into out, via normalized
// Gamma draws.
func Dirichlet(src Source, alpha, out []float64) error {
	if len(alpha) < 2 {
		return fmt.Errorf("dist: Dirichlet needs at least 2 parameters")
	}
	if len(out) != len(alpha) {
		return fmt.Errorf("dist: out has length %d, want %d", len(out), len(alpha))
	}
	g := Gamma{}
	var total float64
	for i, a := range alpha {
		if a <= 0 {
			return fmt.Errorf("dist: Dirichlet parameter %d = %g must be positive", i, a)
		}
		out[i] = g.sample(src, a)
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return nil
}

// Pareto returns a Pareto(xm, alpha) sample (minimum xm, tail exponent
// alpha), both positive.
func Pareto(src Source, xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("dist: Pareto parameters (%g, %g) must be positive", xm, alpha))
	}
	return xm / math.Pow(src.Float64(), 1/alpha)
}

// Laplace returns a Laplace(mu, b) sample, b > 0, by inversion.
func Laplace(src Source, mu, b float64) float64 {
	if b <= 0 {
		panic(fmt.Sprintf("dist: Laplace scale %g must be positive", b))
	}
	u := src.Float64() - 0.5
	if u < 0 {
		return mu + b*math.Log(1+2*u)
	}
	return mu - b*math.Log(1-2*u)
}

// Rayleigh returns a Rayleigh(sigma) sample, sigma > 0.
func Rayleigh(src Source, sigma float64) float64 {
	if sigma <= 0 {
		panic(fmt.Sprintf("dist: Rayleigh scale %g must be positive", sigma))
	}
	return sigma * math.Sqrt(-2*math.Log(src.Float64()))
}

// TruncatedNormal returns a N(mu, sigma²) sample conditioned on
// [lo, hi], by rejection against the untruncated normal. The interval
// must have positive width; for intervals far in the tail the rejection
// loop is slow — callers needing extreme tails should transform instead.
func TruncatedNormal(src Source, mu, sigma, lo, hi float64) float64 {
	if sigma <= 0 {
		panic(fmt.Sprintf("dist: TruncatedNormal sigma %g must be positive", sigma))
	}
	if !(lo < hi) {
		panic(fmt.Sprintf("dist: TruncatedNormal interval [%g, %g) empty", lo, hi))
	}
	for {
		v := mu + sigma*StdNormal(src)
		if v >= lo && v <= hi {
			return v
		}
	}
}
