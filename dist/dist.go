// Package dist provides samplers for the non-uniform distributions that
// Monte Carlo realization routines build from base random numbers — the
// paper's formula (2): a complex random variable is a function
// ζ = ζ(α₁, α₂, …) of independent uniforms on (0,1).
//
// Every sampler consumes base random numbers from a Source; a
// *parmonc.Stream is a Source, so realization routines compose these
// samplers exactly as a sequential Monte Carlo program would, and all
// parallel-stream guarantees of the library carry over unchanged.
//
// Samplers that need no state are plain functions (Exponential, Cauchy,
// …). Samplers with per-stream state or precomputed tables are types
// (Normal keeps the spare Box–Muller variate; Alias holds the Walker
// table). Stateful samplers must not be shared between realization
// routines running on different streams.
package dist

import (
	"fmt"
	"math"
)

// Source supplies base random numbers uniform on (0, 1). It is
// satisfied by *parmonc.Stream (and by anything else with a Float64
// method, which makes deterministic test doubles trivial).
type Source interface {
	Float64() float64
}

// Uniform returns a sample uniform on (a, b). It panics if b < a
// (programming error).
func Uniform(src Source, a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("dist: Uniform bounds inverted: (%g, %g)", a, b))
	}
	return a + (b-a)*src.Float64()
}

// Bernoulli returns true with probability p. p outside [0, 1] is
// clamped.
func Bernoulli(src Source, p float64) bool {
	return src.Float64() < p
}

// Exponential returns a sample from the exponential distribution with
// rate λ > 0 (mean 1/λ) by inversion. It panics for λ ≤ 0.
func Exponential(src Source, lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("dist: Exponential rate %g must be positive", lambda))
	}
	// src.Float64 is in (0,1), so the logarithm is finite.
	return -math.Log(src.Float64()) / lambda
}

// Cauchy returns a sample from the standard Cauchy distribution by
// inversion.
func Cauchy(src Source) float64 {
	return math.Tan(math.Pi * (src.Float64() - 0.5))
}

// Weibull returns a sample from the Weibull distribution with shape k
// and scale λ, both positive.
func Weibull(src Source, k, lambda float64) float64 {
	if k <= 0 || lambda <= 0 {
		panic(fmt.Sprintf("dist: Weibull parameters (k=%g, λ=%g) must be positive", k, lambda))
	}
	return lambda * math.Pow(-math.Log(src.Float64()), 1/k)
}

// Normal is a sampler for the normal distribution. It caches the second
// Box–Muller variate, so consecutive calls consume one base random
// number on average. The zero value samples N(0, 1).
type Normal struct {
	Mu    float64 // mean
	Sigma float64 // standard deviation; 0 means 1
	spare float64
	has   bool
}

// Sample returns one normal variate.
func (n *Normal) Sample(src Source) float64 {
	sigma := n.Sigma
	if sigma == 0 {
		sigma = 1
	}
	return n.Mu + sigma*n.std(src)
}

// std returns a standard normal variate via the Box–Muller transform.
func (n *Normal) std(src Source) float64 {
	if n.has {
		n.has = false
		return n.spare
	}
	// α ∈ (0,1) strictly, so log is finite and the pair is well-defined.
	r := math.Sqrt(-2 * math.Log(src.Float64()))
	theta := 2 * math.Pi * src.Float64()
	z0 := r * math.Cos(theta)
	n.spare = r * math.Sin(theta)
	n.has = true
	return z0
}

// Reset discards the cached spare variate. Call it when repositioning
// the underlying stream, so the next sample is a pure function of the
// new stream position.
func (n *Normal) Reset() { n.has = false }

// StdNormal returns one standard normal variate without caching,
// consuming exactly two base random numbers. Use it in realization
// routines that must draw a deterministic number of base random numbers
// per call.
func StdNormal(src Source) float64 {
	r := math.Sqrt(-2 * math.Log(src.Float64()))
	return r * math.Cos(2*math.Pi*src.Float64())
}

// LogNormal returns exp(N(mu, sigma)).
func LogNormal(src Source, mu, sigma float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("dist: LogNormal sigma %g must be non-negative", sigma))
	}
	return math.Exp(mu + sigma*StdNormal(src))
}

// Poisson returns a sample from the Poisson distribution with mean
// λ > 0. For λ ≤ 30 it uses Knuth's product method; for larger λ it uses
// the PTRS transformed-rejection sampler of Hörmann (1993), which runs
// in O(1) expected time for any λ.
func Poisson(src Source, lambda float64) int64 {
	switch {
	case lambda <= 0:
		panic(fmt.Sprintf("dist: Poisson mean %g must be positive", lambda))
	case lambda <= 30:
		return poissonKnuth(src, lambda)
	default:
		return poissonPTRS(src, lambda)
	}
}

func poissonKnuth(src Source, lambda float64) int64 {
	limit := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= src.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm.
func poissonPTRS(src Source, lambda float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := src.Float64() - 0.5
		v := src.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		rhs := -lambda + k*logLambda - logGammaPlus1(k)
		if lhs <= rhs {
			return int64(k)
		}
	}
}

// logGammaPlus1 returns ln Γ(k+1) = ln k!.
func logGammaPlus1(k float64) float64 {
	lg, _ := math.Lgamma(k + 1)
	return lg
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, p ∈ (0, 1].
func Geometric(src Source, p float64) int64 {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("dist: Geometric p = %g outside (0,1]", p))
	}
	if p == 1 {
		return 0
	}
	// Inversion: ⌊ln α / ln(1-p)⌋.
	return int64(math.Log(src.Float64()) / math.Log1p(-p))
}

// Binomial returns a Binomial(n, p) sample. For small n it sums
// Bernoulli draws; for large n it uses the normal approximation
// refinement via repeated halving with the beta relationship (BTPE would
// be overkill here; the split keeps the draw count bounded).
func Binomial(src Source, n int64, p float64) int64 {
	if n < 0 {
		panic(fmt.Sprintf("dist: Binomial n = %d negative", n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("dist: Binomial p = %g outside [0,1]", p))
	}
	if p == 0 || n == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	var count int64
	// Recursive split: X ~ B(n,p) = i + B(n-m, p') conditioned through a
	// Beta(m, n+1-m) median draw, where m = (n+1)/2. Each split halves n,
	// so the cost is O(log n) Gamma draws; below the cutoff, sum
	// Bernoullis directly.
	const cutoff = 64
	g := Gamma{}
	for n > cutoff {
		m := (n + 1) / 2
		// Beta(m, n+1-m) via two Gamma draws.
		x := g.sample(src, float64(m))
		y := g.sample(src, float64(n+1-m))
		b := x / (x + y)
		if p < b {
			n = m - 1
			p = p / b
		} else {
			count += m
			n = n - m
			p = (p - b) / (1 - b)
		}
	}
	for i := int64(0); i < n; i++ {
		if src.Float64() < p {
			count++
		}
	}
	return count
}

// Gamma is a sampler for the Gamma distribution with shape Alpha and
// rate Rate (both default to 1 when zero). It uses the Marsaglia–Tsang
// squeeze method, boosted for shape < 1.
type Gamma struct {
	Alpha float64
	Rate  float64
}

// Sample returns one Gamma(Alpha, Rate) variate.
func (g Gamma) Sample(src Source) float64 {
	alpha := g.Alpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha < 0 {
		panic(fmt.Sprintf("dist: Gamma shape %g must be positive", alpha))
	}
	rate := g.Rate
	if rate == 0 {
		rate = 1
	}
	if rate < 0 {
		panic(fmt.Sprintf("dist: Gamma rate %g must be positive", rate))
	}
	return g.sample(src, alpha) / rate
}

// sample draws Gamma(shape, 1).
func (g Gamma) sample(src Source, alpha float64) float64 {
	if alpha < 1 {
		// Boost: Gamma(α) = Gamma(α+1) · U^(1/α).
		u := src.Float64()
		return g.sample(src, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := StdNormal(src)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) sample via two Gamma draws.
func Beta(src Source, a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("dist: Beta parameters (%g, %g) must be positive", a, b))
	}
	g := Gamma{}
	x := g.sample(src, a)
	y := g.sample(src, b)
	return x / (x + y)
}

// ChiSquared returns a χ²(k) sample, k > 0 degrees of freedom.
func ChiSquared(src Source, k float64) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("dist: ChiSquared dof %g must be positive", k))
	}
	return 2 * Gamma{}.sample(src, k/2)
}

// StudentT returns a Student-t sample with ν > 0 degrees of freedom.
func StudentT(src Source, nu float64) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("dist: StudentT dof %g must be positive", nu))
	}
	z := StdNormal(src)
	v := ChiSquared(src, nu)
	return z / math.Sqrt(v/nu)
}

// Alias is Walker's alias-method sampler for a fixed discrete
// distribution over {0, …, n-1}: O(n) setup, O(1) per sample, one base
// random number... two, in this implementation, for simplicity and to
// avoid bit-reuse coupling.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights. The weights
// need not be normalized; their sum must be positive and finite.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: alias table needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: weight[%d] = %g is invalid", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: weights sum to %g; must be positive", total)
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of categories.
func (a *Alias) N() int { return len(a.prob) }

// Sample returns a category index distributed according to the weights.
func (a *Alias) Sample(src Source) int {
	i := int(src.Float64() * float64(len(a.prob)))
	if i == len(a.prob) { // Float64 < 1, but guard against rounding
		i--
	}
	if src.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Choice returns an index in {0,…,n-1} uniformly.
func Choice(src Source, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("dist: Choice n = %d must be positive", n))
	}
	i := int(src.Float64() * float64(n))
	if i == n {
		i--
	}
	return i
}
