package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// ManifestFile is the per-run manifest the run manager keeps beside
// each run's parmonc_data tree (DataRoot/<runID>/manifest.json): the
// durable record of what the run is and where its lifecycle stands,
// sufficient to rehydrate the service registry after a restart.
const ManifestFile = "manifest.json"

// manifestVersion is bumped only for incompatible envelope changes.
const manifestVersion = 1

// manifestEnvelope is the on-disk shape: a version, a CRC-32 (IEEE) of
// the body's exact bytes, and the body itself. The body stays a
// json.RawMessage on both paths so the checksum is computed over
// byte-identical input — encoding/json preserves RawMessage bytes
// verbatim, and the writer emits the body compactly.
type manifestEnvelope struct {
	V    int             `json:"v"`
	CRC  string          `json:"crc32"`
	Body json.RawMessage `json:"body"`
}

// SaveManifest atomically writes body (any JSON-marshalable value)
// under a checksummed envelope at path.
func SaveManifest(path string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("store: manifest body: %w", err)
	}
	env := manifestEnvelope{
		V:    manifestVersion,
		CRC:  fmt.Sprintf("%08x", crc32.ChecksumIEEE(b)),
		Body: b,
	}
	out, err := json.Marshal(env)
	if err != nil {
		return err
	}
	return atomicWrite(path, func(w *bufio.Writer) error {
		if _, err := w.Write(out); err != nil {
			return err
		}
		return w.WriteByte('\n')
	})
}

// LoadManifest reads and verifies the manifest at path, unmarshaling
// its body into out. A missing file surfaces as the original os error
// (os.IsNotExist works); a torn, truncated or garbage file is
// quarantined as <name>.corrupt and reported as a *CorruptError.
func LoadManifest(path string, out any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env manifestEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return quarantine(path, fmt.Sprintf("invalid envelope: %v", err))
	}
	if env.V != manifestVersion {
		return quarantine(path, fmt.Sprintf("unsupported manifest version %d", env.V))
	}
	if len(env.Body) == 0 {
		return quarantine(path, "empty body")
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.Body)); got != env.CRC {
		return quarantine(path, fmt.Sprintf("checksum mismatch: body %s, header %s", got, env.CRC))
	}
	if err := json.Unmarshal(env.Body, out); err != nil {
		return quarantine(path, fmt.Sprintf("invalid body: %v", err))
	}
	return nil
}
