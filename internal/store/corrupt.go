package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCorrupt is the sentinel every corruption failure in this package
// wraps: test with errors.Is(err, ErrCorrupt). A corrupt file is never
// a transient condition — the bytes on disk cannot be parsed — so the
// loaders quarantine it (rename to <name>.corrupt) before returning,
// which makes the error path idempotent: the next load sees a missing
// file, not the same garbage again.
var ErrCorrupt = errors.New("store: corrupt file")

// CorruptError describes one detected corruption: which file, what was
// wrong with it, and where the quarantined copy went (empty if the
// rename itself failed). It matches ErrCorrupt under errors.Is.
type CorruptError struct {
	Path        string // the file that failed to load
	Reason      string // what the detector saw (truncation, checksum, ...)
	Quarantined string // post-quarantine path, "" if quarantine failed
}

func (e *CorruptError) Error() string {
	if e.Quarantined != "" {
		return fmt.Sprintf("store: corrupt file %s (%s; quarantined as %s)", e.Path, e.Reason, e.Quarantined)
	}
	return fmt.Sprintf("store: corrupt file %s (%s)", e.Path, e.Reason)
}

func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// QuarantineSuffix is appended to a corrupt file's name when the loader
// moves it aside.
const QuarantineSuffix = ".corrupt"

// quarantine moves path aside and builds the typed error. An existing
// quarantine file from an earlier incident is overwritten — the newest
// corpse is the one worth examining.
func quarantine(path, reason string) *CorruptError {
	e := &CorruptError{Path: path, Reason: reason}
	q := path + QuarantineSuffix
	if err := os.Rename(path, q); err == nil {
		e.Quarantined = q
	}
	return e
}

// Binary frame wrapped around every gob payload this package persists
// (checkpoints, worker snapshots, recovery state): a magic string, the
// payload length, and a CRC-32 (IEEE) of the payload. Gob alone detects
// most garbage but happily decodes a truncated stream that happens to
// end on a value boundary; the explicit length + checksum turns every
// torn or bit-flipped file into a detected corruption instead of a
// silently short checkpoint.
const frameMagic = "parmonc-frame v1\n"

// writeFramed emits the frame around payload.
func writeFramed(w *bufio.Writer, payload []byte) error {
	if _, err := w.WriteString(frameMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFramed loads path and returns the verified payload. A missing
// file surfaces as the original os error (os.IsNotExist works); any
// framing violation quarantines the file and returns a *CorruptError.
func readFramed(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(raw, []byte(frameMagic)) {
		return nil, quarantine(path, "bad magic")
	}
	rest := raw[len(frameMagic):]
	if len(rest) < 12 {
		return nil, quarantine(path, "truncated header")
	}
	n := binary.BigEndian.Uint64(rest[:8])
	sum := binary.BigEndian.Uint32(rest[8:12])
	payload := rest[12:]
	if uint64(len(payload)) < n {
		return nil, quarantine(path, fmt.Sprintf("truncated payload: %d of %d bytes", len(payload), n))
	}
	if uint64(len(payload)) > n {
		return nil, quarantine(path, fmt.Sprintf("trailing bytes: %d past the declared %d", uint64(len(payload))-n, n))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, quarantine(path, "checksum mismatch")
	}
	return payload, nil
}

// framedDecoder returns a reader over the verified payload of path,
// suitable for gob decoding.
func framedDecoder(path string) (io.Reader, error) {
	payload, err := readFramed(path)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(payload), nil
}
