// Package store implements the PARMONC on-disk layout (Sec. 3.6 of the
// paper). When a simulation runs, a subdirectory parmonc_data is created
// in the working directory; results live in parmonc_data/results:
//
//	func.dat     — the matrix of sample means,
//	func_ci.dat  — means together with absolute errors, relative errors
//	               and variances,
//	func_log.dat — simulation log: total sample volume, mean computer
//	               time per realization, upper error bounds, etc.,
//
// and parmonc_data/parmonc_exp.dat records every stochastic experiment
// started in this directory.
//
// Additionally the package stores the machine-precision state needed for
// the two PARMONC workflows the text files cannot support:
//
//	parmonc_data/checkpoint.dat       — collector checkpoint (resume, res=1),
//	parmonc_data/workers/worker-*.dat — per-worker subtotal snapshots
//	                                    (merged by the manaver command).
//
// All writes are atomic (write to a temp file, then rename), so a job
// killed mid-save never leaves a truncated results file — the property
// that makes the paper's "resume after termination" workflow safe.
package store

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"parmonc/internal/rng"
	"parmonc/internal/stat"
)

// Directory and file names fixed by the paper.
const (
	DataDir        = "parmonc_data"
	ResultsDir     = "results"
	WorkersDir     = "workers"
	FuncFile       = "func.dat"
	FuncCIFile     = "func_ci.dat"
	FuncLogFile    = "func_log.dat"
	ExpFile        = "parmonc_exp.dat"
	CheckpointFile = "checkpoint.dat"
	JournalFile    = "events.jsonl"
)

// RunMeta describes one simulation run; it is stamped into checkpoints
// and the experiment log.
type RunMeta struct {
	SeqNum    uint64 // "experiments" subsequence number (the seqnum argument)
	Nrow      int
	Ncol      int
	MaxSV     int64 // maximal sample volume requested
	Workers   int   // number of parallel workers (processors)
	Params    rng.Params
	Gamma     float64 // confidence coefficient
	StartedAt time.Time

	// Workload names the realization routine the run averages, and
	// Fingerprint its full parameter-resolved identity (the short
	// "name@v1/0123456789ab" form). Scenario, when present, is the
	// canonical compact-JSON scenario spec that reproduces the run's
	// parameterization verbatim via `parmonc run -scenario`. All three
	// are optional (runs driven by an unregistered user factory leave
	// them empty) and are recorded in the experiment log.
	Workload    string
	Fingerprint string
	Scenario    string
}

// Validate checks the metadata invariants.
func (m RunMeta) Validate() error {
	if m.Nrow <= 0 || m.Ncol <= 0 {
		return fmt.Errorf("store: invalid dimensions %d×%d", m.Nrow, m.Ncol)
	}
	if m.MaxSV < 0 {
		return fmt.Errorf("store: negative maximal sample volume %d", m.MaxSV)
	}
	if m.Workers < 0 {
		return fmt.Errorf("store: negative worker count %d", m.Workers)
	}
	if m.Gamma <= 0 {
		return fmt.Errorf("store: confidence coefficient %g must be positive", m.Gamma)
	}
	return m.Params.Validate()
}

// Dir is an open PARMONC data directory rooted at a working directory.
type Dir struct {
	work string // the user's working directory
}

// Open ensures the parmonc_data tree exists under workdir and returns a
// handle to it.
func Open(workdir string) (*Dir, error) {
	d := &Dir{work: workdir}
	for _, p := range []string{d.dataPath(), d.resultsPath(), d.workersPath()} {
		if err := os.MkdirAll(p, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", p, err)
		}
	}
	return d, nil
}

// Root returns the working directory the store was opened in.
func (d *Dir) Root() string { return d.work }

func (d *Dir) dataPath() string    { return filepath.Join(d.work, DataDir) }
func (d *Dir) resultsPath() string { return filepath.Join(d.dataPath(), ResultsDir) }
func (d *Dir) workersPath() string { return filepath.Join(d.dataPath(), WorkersDir) }

// CheckpointPath returns the path of the collector checkpoint file.
func (d *Dir) CheckpointPath() string { return filepath.Join(d.dataPath(), CheckpointFile) }

// JournalPath returns the path of the run-event journal (a JSONL file
// the obs subsystem appends to). It lives inside parmonc_data so the
// audit trail travels with the results it explains; unlike the other
// files here it is append-only rather than atomically replaced.
func (d *Dir) JournalPath() string { return filepath.Join(d.dataPath(), JournalFile) }

// atomicWrite writes content produced by fill to path via a temp file,
// fsync and rename. Every failure path removes the temp file, so a
// crashed or failed save never leaves an orphan .tmp beside the data;
// the fsync before the rename guarantees the renamed file's contents
// are durable — without it a power loss shortly after the rename can
// leave a correctly-named but empty results file, breaking the resume
// workflow the atomic rename exists to protect.
func atomicWrite(path string, fill func(w *bufio.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SaveResults writes func.dat, func_ci.dat and func_log.dat from the
// given report. This is what the collector does every peraver interval
// and at the end of the run.
func (d *Dir) SaveResults(rep stat.Report, meta RunMeta) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	if rep.Nrow != meta.Nrow || rep.Ncol != meta.Ncol {
		return fmt.Errorf("store: report is %d×%d but run is %d×%d", rep.Nrow, rep.Ncol, meta.Nrow, meta.Ncol)
	}
	if err := atomicWrite(filepath.Join(d.resultsPath(), FuncFile), func(w *bufio.Writer) error {
		return writeMatrix(w, rep.Nrow, rep.Ncol, rep.Mean)
	}); err != nil {
		return fmt.Errorf("store: writing %s: %w", FuncFile, err)
	}
	if err := atomicWrite(filepath.Join(d.resultsPath(), FuncCIFile), func(w *bufio.Writer) error {
		fmt.Fprintf(w, "# columns: i j mean abs_err rel_err_pct variance\n")
		for i := 0; i < rep.Nrow; i++ {
			for j := 0; j < rep.Ncol; j++ {
				k := i*rep.Ncol + j
				fmt.Fprintf(w, "%d %d %.17g %.17g %.17g %.17g\n",
					i+1, j+1, rep.Mean[k], rep.AbsErr[k], rep.RelErr[k], rep.Var[k])
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("store: writing %s: %w", FuncCIFile, err)
	}
	if err := atomicWrite(filepath.Join(d.resultsPath(), FuncLogFile), func(w *bufio.Writer) error {
		fmt.Fprintf(w, "experiment_seqnum          %d\n", meta.SeqNum)
		fmt.Fprintf(w, "matrix_rows                %d\n", rep.Nrow)
		fmt.Fprintf(w, "matrix_cols                %d\n", rep.Ncol)
		fmt.Fprintf(w, "total_sample_volume        %d\n", rep.N)
		fmt.Fprintf(w, "max_sample_volume          %d\n", meta.MaxSV)
		fmt.Fprintf(w, "workers                    %d\n", meta.Workers)
		fmt.Fprintf(w, "confidence_coefficient     %g\n", rep.Gamma)
		fmt.Fprintf(w, "mean_time_per_realization  %s\n", rep.MeanSimTime)
		fmt.Fprintf(w, "max_absolute_error         %.17g\n", rep.MaxAbsErr)
		fmt.Fprintf(w, "max_relative_error_pct     %.17g\n", rep.MaxRelErr)
		fmt.Fprintf(w, "max_variance               %.17g\n", rep.MaxVar)
		fmt.Fprintf(w, "leap_exponents             ne=%d np=%d nr=%d\n",
			meta.Params.ExperimentLeapLog2, meta.Params.ProcessorLeapLog2, meta.Params.RealizationLeapLog2)
		return nil
	}); err != nil {
		return fmt.Errorf("store: writing %s: %w", FuncLogFile, err)
	}
	return nil
}

func writeMatrix(w *bufio.Writer, nrow, ncol int, vals []float64) error {
	for i := 0; i < nrow; i++ {
		for j := 0; j < ncol; j++ {
			if j > 0 {
				if _, err := w.WriteString(" "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%.17g", vals[i*ncol+j]); err != nil {
				return err
			}
		}
		if _, err := w.WriteString("\n"); err != nil {
			return err
		}
	}
	return nil
}

// LoadMeans reads back the matrix of sample means from func.dat.
func (d *Dir) LoadMeans() (nrow, ncol int, vals []float64, err error) {
	f, err := os.Open(filepath.Join(d.resultsPath(), FuncFile))
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if ncol == 0 {
			ncol = len(fields)
		} else if len(fields) != ncol {
			return 0, 0, nil, fmt.Errorf("store: ragged row in %s: %d fields, want %d", FuncFile, len(fields), ncol)
		}
		for _, fd := range fields {
			var v float64
			if _, err := fmt.Sscanf(fd, "%g", &v); err != nil {
				return 0, 0, nil, fmt.Errorf("store: bad value %q in %s: %w", fd, FuncFile, err)
			}
			vals = append(vals, v)
		}
		nrow++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, nil, err
	}
	return nrow, ncol, vals, nil
}

// checkpoint is the gob payload of checkpoint.dat and worker files.
type checkpoint struct {
	Meta RunMeta
	Snap stat.Snapshot
}

// writeCheckpointFile frames and atomically writes one checkpoint-shaped
// gob payload. All checkpoint-family files (checkpoint.dat, base.dat,
// worker-*.dat) share the frame, so torn or garbage files are detected
// by length + checksum rather than whatever gob happens to make of them.
func writeCheckpointFile(path string, cp checkpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return err
	}
	return atomicWrite(path, func(w *bufio.Writer) error {
		return writeFramed(w, buf.Bytes())
	})
}

// readCheckpointFile verifies the frame at path and decodes the
// payload. Missing file: original os error. Corruption (bad frame or
// undecodable payload): the file is quarantined as <name>.corrupt and a
// *CorruptError returned.
func readCheckpointFile(path string) (checkpoint, error) {
	var cp checkpoint
	r, err := framedDecoder(path)
	if err != nil {
		return cp, err
	}
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return cp, quarantine(path, fmt.Sprintf("undecodable payload: %v", err))
	}
	return cp, nil
}

// SaveCheckpoint atomically writes the collector checkpoint: the merged
// moments so far plus the run metadata. A subsequent run with the
// resumption flag set loads and merges it (formulas (5)).
func (d *Dir) SaveCheckpoint(snap stat.Snapshot, meta RunMeta) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	if err := snap.Validate(); err != nil {
		return err
	}
	return writeCheckpointFile(d.CheckpointPath(), checkpoint{Meta: meta, Snap: snap})
}

// LoadCheckpoint reads the collector checkpoint. os.IsNotExist(err)
// distinguishes "no previous simulation" from corruption; a torn,
// truncated or garbage checkpoint is quarantined as
// checkpoint.dat.corrupt and reported as a *CorruptError
// (errors.Is(err, ErrCorrupt)).
func (d *Dir) LoadCheckpoint() (stat.Snapshot, RunMeta, error) {
	cp, err := readCheckpointFile(d.CheckpointPath())
	if err != nil {
		return stat.Snapshot{}, RunMeta{}, err
	}
	if err := cp.Snap.Validate(); err != nil {
		return stat.Snapshot{}, RunMeta{}, err
	}
	if err := cp.Meta.Validate(); err != nil {
		return stat.Snapshot{}, RunMeta{}, err
	}
	return cp.Snap, cp.Meta, nil
}

// RemoveCheckpoint deletes the checkpoint (used when a run starts with
// res = 0, i.e. "brand new files with results").
func (d *Dir) RemoveCheckpoint() error {
	err := os.Remove(d.CheckpointPath())
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// SaveWorkerSnapshot writes worker w's subtotal moments. The file is the
// input of the manaver command: when a cluster job is killed, the last
// worker snapshots typically hold a larger sample volume than the last
// collector save.
func (d *Dir) SaveWorkerSnapshot(worker int, snap stat.Snapshot, meta RunMeta) error {
	if worker < 0 {
		return fmt.Errorf("store: negative worker id %d", worker)
	}
	if err := snap.Validate(); err != nil {
		return err
	}
	path := filepath.Join(d.workersPath(), fmt.Sprintf("worker-%06d.dat", worker))
	return writeCheckpointFile(path, checkpoint{Meta: meta, Snap: snap})
}

// LoadWorkerSnapshots reads every worker snapshot in the directory,
// sorted by worker id.
func (d *Dir) LoadWorkerSnapshots() ([]stat.Snapshot, []RunMeta, error) {
	entries, err := os.ReadDir(d.workersPath())
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "worker-") && strings.HasSuffix(e.Name(), ".dat") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var snaps []stat.Snapshot
	var metas []RunMeta
	for _, name := range names {
		cp, err := readCheckpointFile(filepath.Join(d.workersPath(), name))
		if err != nil {
			return nil, nil, err
		}
		if err := cp.Snap.Validate(); err != nil {
			return nil, nil, fmt.Errorf("store: invalid worker snapshot %s: %w", name, err)
		}
		snaps = append(snaps, cp.Snap)
		metas = append(metas, cp.Meta)
	}
	return snaps, metas, nil
}

// RemoveWorkerSnapshots deletes all worker snapshot files (done when a
// fresh run starts).
func (d *Dir) RemoveWorkerSnapshots() error {
	entries, err := os.ReadDir(d.workersPath())
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "worker-") {
			if err := os.Remove(filepath.Join(d.workersPath(), e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendExperiment appends one line describing a started experiment to
// parmonc_exp.dat, the per-directory history the paper keeps.
func (d *Dir) AppendExperiment(meta RunMeta, resumed bool) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(d.dataPath(), ExpFile),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	mode := "new"
	if resumed {
		mode = "resumed"
	}
	line := fmt.Sprintf("%s seqnum=%d rows=%d cols=%d maxsv=%d workers=%d mode=%s",
		meta.StartedAt.UTC().Format(time.RFC3339), meta.SeqNum, meta.Nrow, meta.Ncol,
		meta.MaxSV, meta.Workers, mode)
	// Workload identity rides on the same space-separated line; the
	// scenario spec is canonical compact JSON (no spaces), so the line
	// stays splittable on blanks.
	if meta.Fingerprint != "" {
		line += " workload=" + meta.Fingerprint
	} else if meta.Workload != "" {
		line += " workload=" + meta.Workload
	}
	if meta.Scenario != "" {
		line += " scenario=" + meta.Scenario
	}
	_, err = fmt.Fprintf(f, "%s\n", line)
	return err
}

// Experiments returns the recorded experiment-log lines.
func (d *Dir) Experiments() ([]string, error) {
	raw, err := os.ReadFile(filepath.Join(d.dataPath(), ExpFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil, nil
	}
	return lines, nil
}

// BaseCheckpointFile holds the moments a run started from (the resume
// base). It is written at run start and consumed by manaver, which needs
// to combine it with the per-worker subtotals of the interrupted run.
const BaseCheckpointFile = "base.dat"

// BaseCheckpointPath returns the path of the run-base checkpoint.
func (d *Dir) BaseCheckpointPath() string {
	return filepath.Join(d.dataPath(), BaseCheckpointFile)
}

// SaveBaseCheckpoint atomically writes the run-base checkpoint.
func (d *Dir) SaveBaseCheckpoint(snap stat.Snapshot, meta RunMeta) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	if err := snap.Validate(); err != nil {
		return err
	}
	return writeCheckpointFile(d.BaseCheckpointPath(), checkpoint{Meta: meta, Snap: snap})
}

// LoadBaseCheckpoint reads the run-base checkpoint. Corruption
// quarantines the file and returns a *CorruptError, as LoadCheckpoint.
func (d *Dir) LoadBaseCheckpoint() (stat.Snapshot, RunMeta, error) {
	cp, err := readCheckpointFile(d.BaseCheckpointPath())
	if err != nil {
		return stat.Snapshot{}, RunMeta{}, err
	}
	if err := cp.Snap.Validate(); err != nil {
		return stat.Snapshot{}, RunMeta{}, err
	}
	return cp.Snap, cp.Meta, nil
}
