package store

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"

	"parmonc/internal/stat"
)

// RecoveryFile holds a collector's full recovery image: the per-shard
// staging accumulators and lease ledgers, captured consistently under
// each shard's lock. The plain checkpoint (checkpoint.dat) stores only
// the folded total — enough to resume a *new* run from, but useless
// for restarting the *same* run bit-identically: float addition is not
// associative, so resuming from the folded total would change the fold
// topology and with it the report bits. Restoring the shards and
// replaying the remaining lease windows into them reproduces the exact
// reduction tree of an uninterrupted run.
const RecoveryFile = "recovery.dat"

// LeaseLedgerEntry is one lease's recovery record: the window, how far
// its merged prefix extends, and whether it finished or was revoked.
// Fields mirror collect's internal ledger without importing it (store
// sits below collect in the layering).
type LeaseLedgerEntry struct {
	ID        uint64
	Proc      uint64
	Start     uint64
	Count     int64
	Done      int64
	Completed bool
	Revoked   bool
}

// ShardRecord is one worker shard's recovery image.
type ShardRecord struct {
	Worker  int
	Epoch   uint64
	LastSeq uint64
	Snap    stat.Snapshot
	Leases  []LeaseLedgerEntry
}

// RecoveryState is a collector's complete recovery image.
type RecoveryState struct {
	Meta   RunMeta
	Base   stat.Snapshot
	Shards []ShardRecord
}

// RecoveryPath returns the path of the recovery image.
func (d *Dir) RecoveryPath() string { return filepath.Join(d.dataPath(), RecoveryFile) }

// SaveRecovery atomically writes the recovery image.
func (d *Dir) SaveRecovery(rs RecoveryState) error {
	if err := rs.Meta.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
		return err
	}
	return atomicWrite(d.RecoveryPath(), func(w *bufio.Writer) error {
		return writeFramed(w, buf.Bytes())
	})
}

// LoadRecovery reads and verifies the recovery image. A missing file
// surfaces as the original os error; a torn or garbage file is
// quarantined and reported as a *CorruptError.
func (d *Dir) LoadRecovery() (RecoveryState, error) {
	var rs RecoveryState
	r, err := framedDecoder(d.RecoveryPath())
	if err != nil {
		return rs, err
	}
	if err := gob.NewDecoder(r).Decode(&rs); err != nil {
		return rs, quarantine(d.RecoveryPath(), fmt.Sprintf("undecodable payload: %v", err))
	}
	for _, sh := range rs.Shards {
		if err := sh.Snap.Validate(); err != nil {
			return rs, quarantine(d.RecoveryPath(), fmt.Sprintf("shard %d: %v", sh.Worker, err))
		}
	}
	return rs, nil
}
