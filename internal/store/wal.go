package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"
	"time"
)

// WALFile is the append-only service write-ahead log the run manager
// keeps at its data root (DataRoot/service.wal): one record per run
// lifecycle transition, plus one epoch record per service incarnation.
// The WAL is the authority for "what was in flight when the process
// died" — manifests are rewritten after the WAL append, so on recovery
// a WAL record may be ahead of its manifest but never behind it.
const WALFile = "service.wal"

// walMagic is the WAL's first line. A file that does not start with it
// is not a WAL at all (garbage, or a future incompatible version) and
// is quarantined wholesale.
const walMagic = "parmonc-wal v1"

// WAL record kinds written by the store itself; the run manager layers
// its lifecycle kinds (submit/admit/start/done/failed/canceled/...) on
// top without the store interpreting them.
const (
	WALKindEpoch    = "epoch"    // a new service incarnation opened the WAL
	WALKindShutdown = "shutdown" // the service drained and closed cleanly
)

// WALRecord is one line of the service WAL.
type WALRecord struct {
	Seq   uint64          `json:"seq"`            // strictly increasing across the file
	Epoch uint64          `json:"epoch"`          // incarnation that wrote the record
	Kind  string          `json:"kind"`           // transition kind
	Run   string          `json:"run,omitempty"`  // run ID, for run-scoped kinds
	Time  time.Time       `json:"ts"`             // wall-clock stamp (informational)
	Data  json.RawMessage `json:"data,omitempty"` // kind-specific payload
}

// WALReplay is what reading a WAL yields: the decoded records plus the
// high-water marks a new incarnation continues from. Torn reports that
// the final record was truncated mid-write (a crash between write and
// close) and dropped — expected after a kill, not corruption.
type WALReplay struct {
	Records   []WALRecord
	LastSeq   uint64
	LastEpoch uint64
	Torn      bool
}

// CleanShutdown reports whether the WAL ends with a shutdown record —
// i.e. the previous incarnation drained and exited gracefully, so
// recovery needs no replay beyond re-opening state.
func (r WALReplay) CleanShutdown() bool {
	if len(r.Records) == 0 {
		return false
	}
	return r.Records[len(r.Records)-1].Kind == WALKindShutdown
}

// decodeWALLine parses one "crc8hex json" record line.
func decodeWALLine(line string) (WALRecord, error) {
	var rec WALRecord
	i := strings.IndexByte(line, ' ')
	if i != 8 {
		return rec, fmt.Errorf("malformed record framing")
	}
	var sum uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &sum); err != nil {
		return rec, fmt.Errorf("malformed checksum: %v", err)
	}
	body := line[9:]
	if crc32.ChecksumIEEE([]byte(body)) != sum {
		return rec, fmt.Errorf("checksum mismatch")
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return rec, fmt.Errorf("invalid record JSON: %v", err)
	}
	return rec, nil
}

// ReadWAL reads and verifies the WAL at path. A missing file surfaces
// as the original os error. A torn final record — the signature of a
// crash mid-append — is dropped and flagged, but a bad record with
// valid records after it means the file was damaged in place: the WAL
// is quarantined and a *CorruptError returned.
func ReadWAL(path string) (WALReplay, error) {
	var rep WALReplay
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	text := string(raw)
	if text != walMagic && !strings.HasPrefix(text, walMagic+"\n") {
		return rep, quarantine(path, "bad magic")
	}
	body := strings.TrimPrefix(text, walMagic)
	body = strings.TrimPrefix(body, "\n")
	unterminated := body != "" && !strings.HasSuffix(body, "\n")
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if body == "" {
		lines = nil
	}
	for i, line := range lines {
		if line == "" {
			// An empty line can only be a torn write boundary; anything
			// after it is damage.
			if i != len(lines)-1 {
				return rep, quarantine(path, fmt.Sprintf("empty record at line %d", i+2))
			}
			rep.Torn = true
			break
		}
		rec, derr := decodeWALLine(line)
		if derr != nil {
			if i == len(lines)-1 {
				rep.Torn = true
				break
			}
			return rep, quarantine(path, fmt.Sprintf("record %d: %v", i+1, derr))
		}
		if i == len(lines)-1 && unterminated {
			// Decoded fine but the newline never made it out: treat the
			// record as committed anyway — its checksum proves it whole.
			unterminated = false
		}
		if rec.Seq <= rep.LastSeq {
			return rep, quarantine(path, fmt.Sprintf("record %d: sequence %d not increasing (have %d)", i+1, rec.Seq, rep.LastSeq))
		}
		rep.LastSeq = rec.Seq
		if rec.Epoch > rep.LastEpoch {
			rep.LastEpoch = rec.Epoch
		}
		rep.Records = append(rep.Records, rec)
	}
	rep.Torn = rep.Torn || unterminated
	return rep, nil
}

// WAL is an open, append-only service log. Safe for concurrent use.
type WAL struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	seq   uint64
	epoch uint64
}

// OpenWAL opens (creating if absent) the WAL at path, replays its
// existing records, starts the next service epoch — one past the
// highest epoch on record, or past prevEpoch if the caller recovered a
// higher one from elsewhere (manifests) — and appends the new epoch
// record. The returned replay describes the file as it stood before
// this incarnation touched it.
func OpenWAL(path string, prevEpoch uint64, now time.Time) (*WAL, WALReplay, error) {
	rep, err := ReadWAL(path)
	fresh := false
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, rep, err
		}
		fresh = true
		rep = WALReplay{}
	}
	if rep.LastEpoch > prevEpoch {
		prevEpoch = rep.LastEpoch
	}
	if rep.Torn {
		// Drop the torn tail before appending: writing after a partial
		// line would glue the new record onto the fragment and turn an
		// ordinary crash artifact into mid-file corruption on the next
		// read. Rewrite the committed prefix and continue from there.
		var sb strings.Builder
		sb.WriteString(walMagic + "\n")
		for _, rec := range rep.Records {
			body, merr := json.Marshal(rec)
			if merr != nil {
				return nil, rep, merr
			}
			fmt.Fprintf(&sb, "%08x %s\n", crc32.ChecksumIEEE(body), body)
		}
		tmp := path + ".rewrite"
		if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
			return nil, rep, err
		}
		if err := os.Rename(tmp, path); err != nil {
			return nil, rep, err
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, rep, err
	}
	w := &WAL{f: f, path: path, seq: rep.LastSeq, epoch: prevEpoch + 1}
	if fresh {
		if _, err := f.WriteString(walMagic + "\n"); err != nil {
			f.Close()
			return nil, rep, err
		}
	}
	if err := w.Append(WALKindEpoch, "", now, nil); err != nil {
		f.Close()
		return nil, rep, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, rep, err
	}
	return w, rep, nil
}

// Epoch returns the service epoch this WAL handle writes under.
func (w *WAL) Epoch() uint64 { return w.epoch }

// Append writes one record. The line reaches the OS in a single write
// (so a crash can tear at most the final record, which ReadWAL
// tolerates) but is not fsynced per record — the submit path must stay
// cheap, and the manifests rewritten after each transition carry the
// same facts durably.
func (w *WAL) Append(kind, run string, t time.Time, data any) error {
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return fmt.Errorf("store: wal payload: %w", err)
		}
		raw = b
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: wal is closed")
	}
	w.seq++
	body, err := json.Marshal(WALRecord{
		Seq: w.seq, Epoch: w.epoch, Kind: kind, Run: run, Time: t, Data: raw,
	})
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)
	if _, err := w.f.WriteString(line); err != nil {
		return err
	}
	return nil
}

// Sync flushes the WAL to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the WAL. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
