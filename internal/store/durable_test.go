package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- framed checkpoint hardening -----------------------------------------

// goodCheckpointBytes builds one valid checkpoint file and returns its
// raw bytes.
func goodCheckpointBytes(t *testing.T) []byte {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveCheckpoint(testAccumulator(t).Snapshot(), testMeta()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(d.CheckpointPath())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// expectQuarantined asserts err is a *CorruptError matching ErrCorrupt
// and that path was moved aside as path+".corrupt".
func expectQuarantined(t *testing.T, err error, path string) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a corruption error, got nil")
	}
	if os.IsNotExist(err) {
		t.Fatalf("corruption misreported as missing file: %v", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error does not match ErrCorrupt: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CorruptError: %v", err)
	}
	if _, serr := os.Stat(path + QuarantineSuffix); serr != nil {
		t.Fatalf("bad file was not quarantined at %s: %v", path+QuarantineSuffix, serr)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("bad file still present at %s (stat err %v)", path, serr)
	}
}

func TestLoadCheckpointCorruptionTable(t *testing.T) {
	good := goodCheckpointBytes(t)
	flip := func(raw []byte, i int) []byte {
		out := append([]byte(nil), raw...)
		out[i] ^= 0x40
		return out
	}
	headerLen := len(frameMagic) + 8 + 4
	cases := []struct {
		name   string
		damage []byte
	}{
		{"empty file", nil},
		{"truncated mid-magic", good[:5]},
		{"magic only", good[:len(frameMagic)]},
		{"truncated mid-header", good[:len(frameMagic)+6]},
		{"header only", good[:headerLen]},
		{"truncated mid-payload", good[:len(good)-3]},
		{"single torn byte of payload", good[:headerLen+1]},
		{"bit flip in payload", flip(good, headerLen+2)},
		{"bit flip in stored checksum", flip(good, len(frameMagic)+8)},
		{"bit flip in length", flip(good, len(frameMagic)+7)},
		{"trailing garbage", append(append([]byte(nil), good...), "junk"...)},
		{"not a frame at all", []byte("definitely not a checkpoint")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(d.CheckpointPath(), tc.damage, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, lerr := d.LoadCheckpoint()
			expectQuarantined(t, lerr, d.CheckpointPath())
		})
	}
}

func TestLoadRecoveryCorrupt(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.RecoveryPath(), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, lerr := d.LoadRecovery()
	expectQuarantined(t, lerr, d.RecoveryPath())
}

// --- manifest hardening ---------------------------------------------------

type testManifestBody struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	N     int64   `json:"n"`
	X     float64 `json:"x"`
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestFile)
	in := testManifestBody{ID: "r0001", State: "running", N: 12345, X: 0.1 + 0.2}
	if err := SaveManifest(path, in); err != nil {
		t.Fatal(err)
	}
	var out testManifestBody
	if err := LoadManifest(path, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("manifest round trip changed the body: %+v != %+v", out, in)
	}
}

func TestLoadManifestMissing(t *testing.T) {
	var out testManifestBody
	err := LoadManifest(filepath.Join(t.TempDir(), ManifestFile), &out)
	if !os.IsNotExist(err) {
		t.Fatalf("missing manifest should surface as not-exist, got %v", err)
	}
}

func TestLoadManifestCorruptionTable(t *testing.T) {
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.json")
	if err := SaveManifest(goodPath, testManifestBody{ID: "r0001", State: "done", N: 7}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	bodyAt := strings.Index(string(good), `"body"`)
	if bodyAt < 0 {
		t.Fatalf("envelope has no body field: %s", good)
	}
	flip := func(raw []byte, i int) []byte {
		out := append([]byte(nil), raw...)
		out[i] ^= 0x01
		return out
	}
	cases := []struct {
		name   string
		damage []byte
	}{
		{"empty file", nil},
		{"truncated mid-envelope", good[:len(good)/2]},
		{"truncated inside body", good[:bodyAt+10]},
		{"tampered body byte", flip(good, bodyAt+12)},
		{"tampered checksum", flip(good, strings.Index(string(good), `"crc32"`)+10)},
		{"not JSON", []byte("<html>not a manifest</html>")},
		{"wrong version", []byte(`{"v":99,"crc32":"00000000","body":{}}`)},
		{"missing body", []byte(`{"v":1,"crc32":"00000000"}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), ManifestFile)
			if err := os.WriteFile(path, tc.damage, 0o644); err != nil {
				t.Fatal(err)
			}
			var out testManifestBody
			expectQuarantined(t, LoadManifest(path, &out), path)
		})
	}
}

// --- service WAL ----------------------------------------------------------

func walNow() time.Time { return time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC) }

// makeWAL creates a WAL with an epoch record and the given lifecycle
// kinds, then closes it.
func makeWAL(t *testing.T, path string, kinds ...string) {
	t.Helper()
	w, _, err := OpenWAL(path, 0, walNow())
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range kinds {
		if err := w.Append(k, fmt.Sprintf("r%04d", i+1), walNow(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTripAndEpochs(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	makeWAL(t, path, "submit", "admit", "start")

	rep, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 4 { // epoch + 3 lifecycle
		t.Fatalf("got %d records, want 4", len(rep.Records))
	}
	if rep.Records[0].Kind != WALKindEpoch || rep.Records[0].Epoch != 1 {
		t.Fatalf("first record should be the epoch-1 record, got %+v", rep.Records[0])
	}
	if rep.Torn {
		t.Fatal("clean WAL reported a torn tail")
	}
	if rep.LastSeq != 4 || rep.LastEpoch != 1 {
		t.Fatalf("high-water marks: seq %d epoch %d, want 4 and 1", rep.LastSeq, rep.LastEpoch)
	}

	// A second incarnation starts epoch 2; a caller recovering a higher
	// epoch from manifests pushes it further still.
	w2, rep2, err := OpenWAL(path, 0, walNow())
	if err != nil {
		t.Fatal(err)
	}
	if w2.Epoch() != 2 {
		t.Fatalf("second incarnation epoch %d, want 2", w2.Epoch())
	}
	if len(rep2.Records) != 4 {
		t.Fatalf("replay saw %d records, want 4", len(rep2.Records))
	}
	w2.Close()

	w3, _, err := OpenWAL(path, 7, walNow())
	if err != nil {
		t.Fatal(err)
	}
	if w3.Epoch() != 8 {
		t.Fatalf("epoch with prevEpoch=7 is %d, want 8", w3.Epoch())
	}
	w3.Close()
}

func TestWALCleanShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	makeWAL(t, path, "submit", WALKindShutdown)
	rep, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CleanShutdown() {
		t.Fatal("WAL ending in a shutdown record should report a clean shutdown")
	}
	// The next incarnation's epoch record ends the clean-shutdown state.
	w, _, err := OpenWAL(path, 0, walNow())
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err = ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CleanShutdown() {
		t.Fatal("an epoch record after shutdown must clear CleanShutdown")
	}
}

func TestWALTornTailDroppedAndRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	makeWAL(t, path, "submit", "admit", "start")
	// Crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":99,"kind":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := ReadWAL(path)
	if err != nil {
		t.Fatalf("a torn tail is not corruption: %v", err)
	}
	if !rep.Torn {
		t.Fatal("torn tail not flagged")
	}
	if len(rep.Records) != 4 {
		t.Fatalf("torn record not dropped: %d records, want 4", len(rep.Records))
	}

	// Re-opening repairs the tail; the next read must be clean and the
	// appended epoch record intact (the regression: appending after a
	// torn fragment used to glue the records together).
	w, _, err := OpenWAL(path, 0, walNow())
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err = ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("tail still torn after repair")
	}
	if len(rep.Records) != 5 || rep.Records[4].Kind != WALKindEpoch || rep.Records[4].Epoch != 2 {
		t.Fatalf("expected the 4 committed records plus the epoch-2 record, got %d: %+v", len(rep.Records), rep.Records)
	}
}

func TestWALUnterminatedValidRecordCommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	makeWAL(t, path, "submit", "admit")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Crash between write and newline flush is impossible (one write),
	// but a checksum-valid unterminated record can appear when the final
	// newline is lost by the filesystem: the checksum proves it whole.
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("a checksum-valid unterminated record must count as committed, not torn")
	}
	if len(rep.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(rep.Records))
	}
}

func TestWALMidFileCorruptionQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	makeWAL(t, path, "submit", "admit", "start")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Damage the second record (a mid-file line), leaving valid records
	// after it — in-place damage, not a crash artifact.
	lines[2] = "00000000" + lines[2][8:]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rerr := ReadWAL(path)
	expectQuarantined(t, rerr, path)
}

func TestWALNonIncreasingSeqQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	makeWAL(t, path, "submit")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	last := lines[len(lines)-2] // duplicate the final record verbatim
	if err := os.WriteFile(path, []byte(string(raw)+last), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rerr := ReadWAL(path)
	expectQuarantined(t, rerr, path)
}

func TestWALBadMagicQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), WALFile)
	if err := os.WriteFile(path, []byte("not a wal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rerr := ReadWAL(path)
	expectQuarantined(t, rerr, path)
}

func TestWALMissingFile(t *testing.T) {
	_, err := ReadWAL(filepath.Join(t.TempDir(), WALFile))
	if !os.IsNotExist(err) {
		t.Fatalf("missing WAL should surface as not-exist, got %v", err)
	}
}

// FuzzReadWAL feeds arbitrary bytes through the WAL reader: whatever
// the damage, it must return (possibly with a quarantine error), never
// panic or hang.
func FuzzReadWAL(f *testing.F) {
	f.Add([]byte(walMagic + "\n"))
	f.Add([]byte(walMagic))
	f.Add([]byte(""))
	f.Add([]byte(walMagic + "\n\n\n"))
	f.Add([]byte(walMagic + "\n00000000 {}\n"))
	body := `{"seq":1,"epoch":1,"kind":"epoch","ts":"2026-08-08T09:00:00Z"}`
	f.Add([]byte(fmt.Sprintf("%s\n%08x %s\n", walMagic, crc32.ChecksumIEEE([]byte(body)), body)))
	f.Add([]byte(fmt.Sprintf("%s\n%08x %s", walMagic, crc32.ChecksumIEEE([]byte(body)), body)))
	f.Add([]byte("garbage that is not a wal at all"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), WALFile)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip()
		}
		rep, err := ReadWAL(path)
		if err != nil {
			if os.IsNotExist(err) || errors.Is(err, ErrCorrupt) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		// Committed records must have strictly increasing sequences.
		var last uint64
		for _, rec := range rep.Records {
			if rec.Seq <= last {
				t.Fatalf("non-increasing seq %d after %d survived the read", rec.Seq, last)
			}
			last = rec.Seq
		}
	})
}
