package store

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parmonc/internal/rng"
	"parmonc/internal/stat"
)

func testMeta() RunMeta {
	return RunMeta{
		SeqNum:    2,
		Nrow:      2,
		Ncol:      3,
		MaxSV:     1000,
		Workers:   4,
		Params:    rng.DefaultParams(),
		Gamma:     3,
		StartedAt: time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC),
	}
}

func testAccumulator(t *testing.T) *stat.Accumulator {
	t.Helper()
	a := stat.New(2, 3)
	rows := [][]float64{
		{1, 2, 3, 4, 5, 6},
		{2, 3, 4, 5, 6, 7},
		{0, 1, 2, 3, 4, 5},
	}
	for _, r := range rows {
		if err := a.AddTimed(r, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestOpenCreatesTree(t *testing.T) {
	work := t.TempDir()
	if _, err := Open(work); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(work, DataDir),
		filepath.Join(work, DataDir, ResultsDir),
		filepath.Join(work, DataDir, WorkersDir),
	} {
		if fi, err := os.Stat(p); err != nil || !fi.IsDir() {
			t.Fatalf("missing directory %s: %v", p, err)
		}
	}
}

func TestSaveResultsWritesThreeFiles(t *testing.T) {
	work := t.TempDir()
	d, err := Open(work)
	if err != nil {
		t.Fatal(err)
	}
	rep := testAccumulator(t).Report(3)
	if err := d.SaveResults(rep, testMeta()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{FuncFile, FuncCIFile, FuncLogFile} {
		p := filepath.Join(work, DataDir, ResultsDir, name)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestLoadMeansRoundTrip(t *testing.T) {
	work := t.TempDir()
	d, err := Open(work)
	if err != nil {
		t.Fatal(err)
	}
	rep := testAccumulator(t).Report(3)
	if err := d.SaveResults(rep, testMeta()); err != nil {
		t.Fatal(err)
	}
	nrow, ncol, vals, err := d.LoadMeans()
	if err != nil {
		t.Fatal(err)
	}
	if nrow != 2 || ncol != 3 {
		t.Fatalf("dims %dx%d, want 2x3", nrow, ncol)
	}
	for i, v := range vals {
		if math.Abs(v-rep.Mean[i]) > 1e-15 {
			t.Fatalf("mean[%d] = %g, want %g", i, v, rep.Mean[i])
		}
	}
}

func TestFuncCIContents(t *testing.T) {
	work := t.TempDir()
	d, _ := Open(work)
	rep := testAccumulator(t).Report(3)
	if err := d.SaveResults(rep, testMeta()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(work, DataDir, ResultsDir, FuncCIFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// Header + 6 entries.
	if len(lines) != 7 {
		t.Fatalf("func_ci.dat has %d lines, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatal("missing header")
	}
	// Each data line: i j mean abs rel var = 6 fields.
	for _, l := range lines[1:] {
		if got := len(strings.Fields(l)); got != 6 {
			t.Fatalf("line %q has %d fields, want 6", l, got)
		}
	}
}

func TestFuncLogContents(t *testing.T) {
	work := t.TempDir()
	d, _ := Open(work)
	rep := testAccumulator(t).Report(3)
	if err := d.SaveResults(rep, testMeta()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(work, DataDir, ResultsDir, FuncLogFile))
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"total_sample_volume        3",
		"experiment_seqnum          2",
		"workers                    4",
		"mean_time_per_realization  10ms",
		"leap_exponents             ne=115 np=98 nr=43",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("func_log.dat missing %q;\n%s", want, text)
		}
	}
}

func TestSaveResultsDimensionMismatch(t *testing.T) {
	d, _ := Open(t.TempDir())
	rep := stat.New(1, 1).Report(3)
	if err := d.SaveResults(rep, testMeta()); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	d, _ := Open(t.TempDir())
	a := testAccumulator(t)
	meta := testMeta()
	if err := d.SaveCheckpoint(a.Snapshot(), meta); err != nil {
		t.Fatal(err)
	}
	snap, m, err := d.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if m.SeqNum != meta.SeqNum || m.Nrow != meta.Nrow || m.Ncol != meta.Ncol {
		t.Fatalf("meta lost: %+v", m)
	}
	restored, err := stat.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	ra, rr := a.Report(3), restored.Report(3)
	for i := range ra.Mean {
		if ra.Mean[i] != rr.Mean[i] {
			t.Fatal("checkpoint lost precision")
		}
	}
}

func TestLoadCheckpointMissing(t *testing.T) {
	d, _ := Open(t.TempDir())
	if _, _, err := d.LoadCheckpoint(); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestLoadCheckpointCorrupt(t *testing.T) {
	d, _ := Open(t.TempDir())
	if err := os.WriteFile(d.CheckpointPath(), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadCheckpoint(); err == nil || os.IsNotExist(err) {
		t.Fatalf("want corruption error, got %v", err)
	}
}

func TestRemoveCheckpointIdempotent(t *testing.T) {
	d, _ := Open(t.TempDir())
	if err := d.RemoveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveCheckpoint(testAccumulator(t).Snapshot(), testMeta()); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadCheckpoint(); !os.IsNotExist(err) {
		t.Fatal("checkpoint still present")
	}
}

func TestWorkerSnapshots(t *testing.T) {
	d, _ := Open(t.TempDir())
	meta := testMeta()
	for w := 0; w < 3; w++ {
		a := stat.New(2, 3)
		row := make([]float64, 6)
		for j := range row {
			row[j] = float64(w + j)
		}
		a.Add(row)
		if err := d.SaveWorkerSnapshot(w, a.Snapshot(), meta); err != nil {
			t.Fatal(err)
		}
	}
	snaps, metas, err := d.LoadWorkerSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || len(metas) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	// Sorted by worker id: snapshot w has Sum[0] = w.
	for w, s := range snaps {
		if s.Sum[0] != float64(w) {
			t.Fatalf("snapshot %d has Sum[0]=%g", w, s.Sum[0])
		}
	}
	if err := d.RemoveWorkerSnapshots(); err != nil {
		t.Fatal(err)
	}
	snaps, _, err = d.LoadWorkerSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatal("snapshots survive removal")
	}
}

func TestSaveWorkerSnapshotNegativeID(t *testing.T) {
	d, _ := Open(t.TempDir())
	if err := d.SaveWorkerSnapshot(-1, stat.New(1, 1).Snapshot(), testMeta()); err == nil {
		t.Fatal("expected error")
	}
}

func TestExperimentLog(t *testing.T) {
	d, _ := Open(t.TempDir())
	meta := testMeta()
	if err := d.AppendExperiment(meta, false); err != nil {
		t.Fatal(err)
	}
	meta.SeqNum = 3
	if err := d.AppendExperiment(meta, true); err != nil {
		t.Fatal(err)
	}
	lines, err := d.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "seqnum=2") || !strings.Contains(lines[0], "mode=new") {
		t.Errorf("line 0: %q", lines[0])
	}
	if !strings.Contains(lines[1], "seqnum=3") || !strings.Contains(lines[1], "mode=resumed") {
		t.Errorf("line 1: %q", lines[1])
	}
}

func TestExperimentsEmptyDir(t *testing.T) {
	d, _ := Open(t.TempDir())
	lines, err := d.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if lines != nil {
		t.Fatalf("got %v", lines)
	}
}

func TestMetaValidate(t *testing.T) {
	good := testMeta()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*RunMeta){
		func(m *RunMeta) { m.Nrow = 0 },
		func(m *RunMeta) { m.Ncol = -1 },
		func(m *RunMeta) { m.MaxSV = -1 },
		func(m *RunMeta) { m.Workers = -1 },
		func(m *RunMeta) { m.Gamma = 0 },
		func(m *RunMeta) { m.Params.RealizationLeapLog2 = 120 },
	}
	for i, mutate := range bad {
		m := testMeta()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	work := t.TempDir()
	d, _ := Open(work)
	if err := d.SaveResults(testAccumulator(t).Report(3), testMeta()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(work, DataDir, ResultsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestAtomicWriteFailureRemovesTemp(t *testing.T) {
	work := t.TempDir()
	path := filepath.Join(work, "out.txt")
	injected := errors.New("injected write failure")
	err := atomicWrite(path, func(w *bufio.Writer) error {
		fmt.Fprintln(w, "partial content")
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	if _, statErr := os.Stat(path + ".tmp"); !os.IsNotExist(statErr) {
		t.Fatalf("orphan temp file left behind: stat err = %v", statErr)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("destination should not exist after failed write: stat err = %v", statErr)
	}

	// A failed write must not clobber an existing destination either.
	if err := os.WriteFile(path, []byte("previous\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = atomicWrite(path, func(w *bufio.Writer) error { return injected })
	if !errors.Is(err, injected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "previous\n" {
		t.Fatalf("existing destination corrupted: %q, %v", got, err)
	}
	if _, statErr := os.Stat(path + ".tmp"); !os.IsNotExist(statErr) {
		t.Fatal("orphan temp file left behind on second failure")
	}
}

func TestLoadMeansErrors(t *testing.T) {
	work := t.TempDir()
	d, err := Open(work)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(work, DataDir, ResultsDir, FuncFile)

	// Ragged rows.
	if err := os.WriteFile(path, []byte("1 2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.LoadMeans(); err == nil {
		t.Error("ragged file accepted")
	}

	// Non-numeric value.
	if err := os.WriteFile(path, []byte("1 abc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.LoadMeans(); err == nil {
		t.Error("non-numeric value accepted")
	}

	// Missing file.
	os.Remove(path)
	if _, _, _, err := d.LoadMeans(); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBaseCheckpointRoundTrip(t *testing.T) {
	d, _ := Open(t.TempDir())
	a := testAccumulator(t)
	meta := testMeta()
	if err := d.SaveBaseCheckpoint(a.Snapshot(), meta); err != nil {
		t.Fatal(err)
	}
	snap, m, err := d.LoadBaseCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if m.SeqNum != meta.SeqNum || snap.N != a.N() {
		t.Fatal("base checkpoint round trip lost data")
	}
}

func TestLoadBaseCheckpointMissing(t *testing.T) {
	d, _ := Open(t.TempDir())
	if _, _, err := d.LoadBaseCheckpoint(); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestSaveResultsWithInfiniteRelErr(t *testing.T) {
	// A zero-mean noisy entry yields +Inf relative error; the files must
	// still be written and the means reloadable.
	d, _ := Open(t.TempDir())
	a := stat.New(1, 1)
	a.Add([]float64{1})
	a.Add([]float64{-1})
	meta := testMeta()
	meta.Nrow, meta.Ncol = 1, 1
	if err := d.SaveResults(a.Report(3), meta); err != nil {
		t.Fatal(err)
	}
	_, _, vals, err := d.LoadMeans()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Fatalf("mean %g", vals[0])
	}
}
