package core

import (
	"context"
	"fmt"
	"path/filepath"

	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// ExperimentsResult is the outcome of RunExperiments: the per-experiment
// reports (each an independent estimate of the same functionals, from
// disjoint "experiments" subsequences of the generator) plus the pooled
// report over all of them.
type ExperimentsResult struct {
	SeqNums  []uint64
	Reports  []stat.Report
	Combined stat.Report
}

// RunExperiments performs several independent stochastic experiments —
// the top level of the paper's substream hierarchy (Sec. 2.4). Each
// experiment runs the full simulation under its own experiments
// subsequence number and its own results subdirectory
// (WorkDir/experiment-NNNN), so the estimates are statistically
// independent; the combined report pools all their moments.
//
// Independent experiments are how the paper validates a stochastic
// computation: repeat it on a disjoint stretch of the general sequence
// and check that the independent sample means agree within the error
// bounds.
func RunExperiments(ctx context.Context, cfg Config, seqnums []uint64, factory Factory) (ExperimentsResult, error) {
	if len(seqnums) == 0 {
		return ExperimentsResult{}, fmt.Errorf("core: no experiment subsequence numbers given")
	}
	seen := map[uint64]bool{}
	for _, sq := range seqnums {
		if seen[sq] {
			return ExperimentsResult{}, fmt.Errorf("core: duplicate experiment subsequence %d; experiments would not be independent", sq)
		}
		seen[sq] = true
	}
	if cfg.Resume {
		return ExperimentsResult{}, fmt.Errorf("core: RunExperiments does not support resumption; resume individual experiments instead")
	}
	baseDir := cfg.WorkDir
	if baseDir == "" {
		baseDir = "."
	}

	res := ExperimentsResult{SeqNums: append([]uint64(nil), seqnums...)}
	var combined *stat.Accumulator
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = stat.DefaultConfidenceCoefficient
	}

	for i, sq := range seqnums {
		expCfg := cfg
		expCfg.SeqNum = sq
		expCfg.WorkDir = filepath.Join(baseDir, fmt.Sprintf("experiment-%04d", sq))
		r, err := RunFactory(ctx, expCfg, factory)
		if err != nil {
			return ExperimentsResult{}, fmt.Errorf("core: experiment %d (seqnum %d): %w", i, sq, err)
		}
		res.Reports = append(res.Reports, r.Report)

		// Pool via the stored checkpoint, which carries the raw moments.
		dir, err := store.Open(expCfg.WorkDir)
		if err != nil {
			return ExperimentsResult{}, err
		}
		snap, _, err := dir.LoadCheckpoint()
		if err != nil {
			return ExperimentsResult{}, fmt.Errorf("core: reading experiment %d checkpoint: %w", sq, err)
		}
		if combined == nil {
			combined = stat.New(snap.Nrow, snap.Ncol)
		}
		if err := combined.Merge(snap); err != nil {
			return ExperimentsResult{}, err
		}
		if ctx.Err() != nil {
			break
		}
	}
	res.Combined = combined.Report(gamma)
	return res, nil
}
