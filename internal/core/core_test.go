package core

import (
	"context"
	"errors"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// uniformMean is a trivial realization: a single uniform draw. Its
// expectation is 1/2 and variance 1/12.
func uniformMean(src *rng.Stream, out []float64) error {
	out[0] = src.Float64()
	return nil
}

// sumOfTwo fills a 1×2 matrix: [α, α²].
func sumOfTwo(src *rng.Stream, out []float64) error {
	a := src.Float64()
	out[0] = a
	out[1] = a * a
	return nil
}

func fastCfg(dir string) Config {
	return Config{
		Nrow:       1,
		Ncol:       1,
		MaxSamples: 4000,
		Workers:    4,
		WorkDir:    dir,
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
}

func TestRunComputesUniformMean(t *testing.T) {
	res, err := Run(context.Background(), fastCfg(t.TempDir()), uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.N != 4000 {
		t.Fatalf("N = %d, want 4000", res.Report.N)
	}
	if res.NewSamples != 4000 {
		t.Fatalf("NewSamples = %d", res.NewSamples)
	}
	mean := res.Report.MeanAt(0, 0)
	if diff := math.Abs(mean - 0.5); diff > res.Report.AbsErrAt(0, 0) {
		t.Fatalf("|mean-0.5| = %g exceeds 3σ bound %g", diff, res.Report.AbsErrAt(0, 0))
	}
	if v := res.Report.VarAt(0, 0); math.Abs(v-1.0/12) > 0.01 {
		t.Fatalf("var = %g, want ≈ 1/12", v)
	}
}

func TestRunDeterministicAcrossSchedules(t *testing.T) {
	// Two identical runs draw exactly the same realizations (static
	// quota split + per-realization substreams), so the moments agree to
	// floating-point reassociation noise: snapshot arrival order at the
	// collector varies with scheduling, and float addition is not
	// associative.
	cfg := fastCfg(t.TempDir())
	r1, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WorkDir = t.TempDir()
	r2, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Report.N != r2.Report.N {
		t.Fatalf("volumes differ: %d vs %d", r1.Report.N, r2.Report.N)
	}
	if d := math.Abs(r1.Report.MeanAt(0, 0) - r2.Report.MeanAt(0, 0)); d > 1e-12 {
		t.Fatalf("means differ by %g: %.17g vs %.17g", d, r1.Report.MeanAt(0, 0), r2.Report.MeanAt(0, 0))
	}
	if d := math.Abs(r1.Report.VarAt(0, 0) - r2.Report.VarAt(0, 0)); d > 1e-12 {
		t.Fatalf("variances differ by %g", d)
	}
}

func TestRunMatchesSequentialReference(t *testing.T) {
	// The parallel result must equal a hand-rolled sequential loop over
	// the same substreams — formula (4) exactness, not just statistical
	// agreement.
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 100
	cfg.Workers = 3
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}

	ref := stat.New(1, 1)
	params := rng.DefaultParams()
	// 100 realizations over 3 workers → leases of ⌈100/3⌉ = 34 on
	// processor subsequences 1, 2, 3 — the same partition the driver
	// computes, enumerated sequentially.
	for _, l := range collect.PartitionLeases(100, 34) {
		s, err := rng.NewStream(params, rng.Coord{
			Experiment: cfg.SeqNum, Processor: l.Proc, Realization: l.Start,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < l.Count; k++ {
			if k > 0 {
				if err := s.NextRealization(); err != nil {
					t.Fatal(err)
				}
			}
			out := []float64{0}
			if err := uniformMean(s, out); err != nil {
				t.Fatal(err)
			}
			ref.Add(out)
		}
	}
	want := ref.Report(3)
	if got := res.Report.MeanAt(0, 0); math.Abs(got-want.MeanAt(0, 0)) > 1e-13 {
		t.Fatalf("mean %.17g, reference %.17g", got, want.MeanAt(0, 0))
	}
	if got := res.Report.VarAt(0, 0); math.Abs(got-want.VarAt(0, 0)) > 1e-13 {
		t.Fatalf("var %.17g, reference %.17g", got, want.VarAt(0, 0))
	}
}

func TestRunWritesResultFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), fastCfg(dir), uniformMean); err != nil {
		t.Fatal(err)
	}
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	nrow, ncol, vals, err := d.LoadMeans()
	if err != nil {
		t.Fatal(err)
	}
	if nrow != 1 || ncol != 1 {
		t.Fatalf("dims %dx%d", nrow, ncol)
	}
	if math.Abs(vals[0]-0.5) > 0.05 {
		t.Fatalf("saved mean %g", vals[0])
	}
	exps, err := d.Experiments()
	if err != nil || len(exps) != 1 {
		t.Fatalf("experiment log: %v, %v", exps, err)
	}
}

func TestResumeMergesPreviousRun(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.MaxSamples = 1000
	cfg.SeqNum = 0
	r1, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	cfg.SeqNum = 1
	r2, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Report.N != 2000 {
		t.Fatalf("resumed N = %d, want 2000", r2.Report.N)
	}
	if r2.NewSamples != 1000 {
		t.Fatalf("NewSamples = %d, want 1000", r2.NewSamples)
	}
	// The merged mean must be the equally-weighted average of the two
	// runs' sums, since both have volume 1000.
	run2only := (r2.Report.MeanAt(0, 0)*2000 - r1.Report.MeanAt(0, 0)*1000) / 1000
	if run2only <= 0 || run2only >= 1 {
		t.Fatalf("implied second-run mean %g out of range", run2only)
	}
}

func TestResumeRejectsSameSeqNum(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	if _, err := Run(context.Background(), cfg, uniformMean); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true // SeqNum unchanged
	if _, err := Run(context.Background(), cfg, uniformMean); err == nil {
		t.Fatal("expected same-seqnum resume to be rejected")
	}
}

func TestResumeRejectsDimensionChange(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	if _, err := Run(context.Background(), cfg, uniformMean); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	cfg.SeqNum = 1
	cfg.Ncol = 2
	if _, err := Run(context.Background(), cfg, sumOfTwo); err == nil {
		t.Fatal("expected dimension-change resume to be rejected")
	}
}

func TestResumeWithoutPreviousRun(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Resume = true
	cfg.SeqNum = 1
	if _, err := Run(context.Background(), cfg, uniformMean); err == nil {
		t.Fatal("expected missing-checkpoint error")
	}
}

func TestFreshRunClearsOldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.MaxSamples = 500
	if _, err := Run(context.Background(), cfg, uniformMean); err != nil {
		t.Fatal(err)
	}
	// Second run with res = 0 starts from scratch.
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.N != 500 {
		t.Fatalf("N = %d, want 500 (old results must be discarded)", res.Report.N)
	}
}

func TestRealizationErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	cfg := fastCfg(t.TempDir())
	_, err := Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestContextCancellationGraceful(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 0 // unbounded: the "endless" mode
	done := make(chan struct{})
	var res Result
	var runErr error
	go func() {
		res, runErr = Run(ctx, cfg, func(src *rng.Stream, out []float64) error {
			out[0] = src.Float64()
			time.Sleep(100 * time.Microsecond)
			return nil
		})
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !res.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if res.Report.N == 0 {
		t.Fatal("no samples accumulated before cancellation")
	}
}

func TestMatrixRealization(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Ncol = 2
	cfg.MaxSamples = 20000
	res, err := Run(context.Background(), cfg, sumOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	// E α = 1/2, E α² = 1/3.
	if got := res.Report.MeanAt(0, 0); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("E α = %g", got)
	}
	if got := res.Report.MeanAt(0, 1); math.Abs(got-1.0/3) > 0.02 {
		t.Fatalf("E α² = %g", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nrow: 0, Ncol: 1},
		{Nrow: 1, Ncol: 0},
		{Nrow: 1, Ncol: 1, Workers: -1},
		{Nrow: 1, Ncol: 1, PassPeriod: -time.Second},
		{Nrow: 1, Ncol: 1, AverPeriod: -time.Second},
		{Nrow: 1, Ncol: 1, Gamma: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg, uniformMean); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
	if _, err := Run(context.Background(), Config{Nrow: 1, Ncol: 1, MaxSamples: 1}, nil); err == nil {
		t.Error("nil realization: expected error")
	}
}

func TestWorkersExceedingHierarchyRejected(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 1 << 20 // > 2^17 processors
	if _, err := Run(context.Background(), cfg, uniformMean); err == nil {
		t.Fatal("expected hierarchy capacity error")
	}
}

func TestStrictExchangeMode(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.StrictExchange = true
	cfg.MaxSamples = 200
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.N != 200 {
		t.Fatalf("N = %d", res.Report.N)
	}
}

func TestManaverReconstructsResults(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.SaveWorkerSnapshots = true
	cfg.StrictExchange = true // every realization lands in a worker file
	cfg.MaxSamples = 400
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the story: delete the collector checkpoint (as if the job
	// died before the final save), then recover via manaver.
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := Manaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != res.Report.N {
		t.Fatalf("manaver N = %d, run N = %d", rep.N, res.Report.N)
	}
	if d := math.Abs(rep.MeanAt(0, 0) - res.Report.MeanAt(0, 0)); d > 1e-13 {
		t.Fatalf("manaver mean %.17g, run mean %.17g", rep.MeanAt(0, 0), res.Report.MeanAt(0, 0))
	}
	// The rebuilt checkpoint supports resumption.
	if _, _, err := d.LoadCheckpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestManaverWithoutRun(t *testing.T) {
	if _, err := Manaver(t.TempDir()); err == nil {
		t.Fatal("expected error when nothing has run")
	}
}

func TestWorkersIdleWhenQuotaSmall(t *testing.T) {
	// More workers than samples: some do nothing, run still completes.
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 8
	cfg.MaxSamples = 3
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.N != 3 {
		t.Fatalf("N = %d, want 3", res.Report.N)
	}
}

func TestCustomParamsRespected(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	var err error
	cfg.Params, err = rng.NewParams(60, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta.Params.ExperimentLeapLog2 != 60 {
		t.Fatalf("params not propagated: %+v", res.Meta.Params)
	}
}

func TestOnSaveProgressReported(t *testing.T) {
	var mu sync.Mutex
	var progresses []Progress
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 2000
	cfg.OnSave = func(p Progress) {
		mu.Lock()
		progresses = append(progresses, p)
		mu.Unlock()
	}
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(progresses) == 0 {
		t.Fatal("OnSave never called")
	}
	last := progresses[len(progresses)-1]
	if last.N != res.Report.N {
		t.Fatalf("final progress N = %d, result N = %d", last.N, res.Report.N)
	}
	if last.MaxAbsErr != res.Report.MaxAbsErr {
		t.Fatal("final progress error bound mismatch")
	}
	for i := 1; i < len(progresses); i++ {
		if progresses[i].N < progresses[i-1].N {
			t.Fatal("progress N went backwards")
		}
	}
}

func TestErrorControlledTermination(t *testing.T) {
	// The paper's motivation for periodic exchange: stop once the
	// relative error is small enough, instead of a fixed sample count.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const target = 1.0 // percent
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 0 // unbounded: accuracy decides
	cfg.AverPeriod = time.Millisecond
	cfg.OnSave = func(p Progress) {
		if p.N > 100 && p.MaxRelErr < target {
			cancel()
		}
	}
	res, err := Run(ctx, cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("run not stopped by accuracy control")
	}
	if res.Report.MaxRelErr >= 2*target {
		t.Fatalf("final rel err %g%% far above target %g%%", res.Report.MaxRelErr, target)
	}
}

func TestRealizationPanicBecomesError(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	_, err := Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		panic("user bug")
	})
	if err == nil {
		t.Fatal("expected error from panicking realization")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "user bug") {
		t.Fatalf("error %v does not describe the panic", err)
	}
}

func TestRealizationPanicAfterProgressStillErrors(t *testing.T) {
	// Panic on the 50th realization of one worker: results so far are
	// saved, the run reports the failure.
	var count atomic.Int64
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 2
	_, err := Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		if count.Add(1) == 50 {
			panic("late failure")
		}
		out[0] = src.Float64()
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestStableMomentsSurvivesIllConditionedWorkload(t *testing.T) {
	// Mean 10^9, σ = 10^-3: raw sums lose the variance entirely; the
	// stable collector recovers it through the full driver. Workers
	// still ship raw sums, so keep per-push volumes small enough that
	// the worker-side sums stay benign (strict exchange: one realization
	// per push).
	realize := func(src *rng.Stream, out []float64) error {
		// Deterministic ±σ noise around a huge mean, driven by the
		// stream so every realization differs.
		if src.Float64() < 0.5 {
			out[0] = 1e9 - 1e-3
		} else {
			out[0] = 1e9 + 1e-3
		}
		return nil
	}
	base := fastCfg(t.TempDir())
	base.MaxSamples = 20000
	base.StrictExchange = true

	stable := base
	stable.WorkDir = t.TempDir()
	stable.StableMoments = true

	resNaive, err := Run(context.Background(), base, realize)
	if err != nil {
		t.Fatal(err)
	}
	resStable, err := Run(context.Background(), stable, realize)
	if err != nil {
		t.Fatal(err)
	}
	wantVar := 1e-6 // (±10^-3)² with equal probability
	gotStable := resStable.Report.VarAt(0, 0)
	if math.Abs(gotStable-wantVar)/wantVar > 0.05 {
		t.Fatalf("stable variance %g, want %g", gotStable, wantVar)
	}
	// The naive pipeline must be visibly worse on this data (typically
	// clamped to zero); if it ever matches, the test data is too easy.
	gotNaive := resNaive.Report.VarAt(0, 0)
	if math.Abs(gotNaive-wantVar)/wantVar < 0.05 {
		t.Fatalf("naive variance %g unexpectedly accurate; strengthen the test", gotNaive)
	}
}

func TestStableMomentsMatchesNaiveOnBenignData(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.StableMoments = true
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Report.MeanAt(0, 0)-0.5) > res.Report.AbsErrAt(0, 0)*4/3 {
		t.Fatalf("stable mean %g", res.Report.MeanAt(0, 0))
	}
	if math.Abs(res.Report.VarAt(0, 0)-1.0/12) > 0.01 {
		t.Fatalf("stable variance %g", res.Report.VarAt(0, 0))
	}
	// Resume from a stable run must work (shared checkpoint format).
	cfg.Resume = true
	cfg.SeqNum = 1
	res2, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.N != 2*res.Report.N {
		t.Fatalf("resumed N = %d", res2.Report.N)
	}
}

func TestResumeIntoStableMoments(t *testing.T) {
	// A raw-sum run's checkpoint must resume into a Welford/Chan
	// collector: the base moments arrive as one snapshot merge into the
	// stable accumulator, the paper's res = 1 on top of the shared
	// checkpoint format.
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.MaxSamples = 1000
	r1, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	cfg.StableMoments = true
	cfg.SeqNum = 1
	r2, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Report.N != 2000 || r2.NewSamples != 1000 {
		t.Fatalf("N = %d, NewSamples = %d", r2.Report.N, r2.NewSamples)
	}
	if r2.Metrics.ResumedSamples != r1.Report.N {
		t.Fatalf("ResumedSamples = %d, want %d", r2.Metrics.ResumedSamples, r1.Report.N)
	}
	if math.Abs(r2.Report.MeanAt(0, 0)-0.5) > r2.Report.AbsErrAt(0, 0)*4/3 {
		t.Fatalf("resumed stable mean %g", r2.Report.MeanAt(0, 0))
	}
	if math.Abs(r2.Report.VarAt(0, 0)-1.0/12) > 0.01 {
		t.Fatalf("resumed stable variance %g", r2.Report.VarAt(0, 0))
	}
}

func TestMetricsUnderStrictExchange(t *testing.T) {
	// Under the strictest exchange every realization is one push, so
	// the engine's counters are exactly predictable: quota pushes, all
	// merged, none rejected, one worker-snapshot write per push.
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 100
	cfg.Workers = 2
	cfg.StrictExchange = true
	cfg.SaveWorkerSnapshots = true
	res, err := Run(context.Background(), cfg, uniformMean)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Pushes != 100 || m.Merges != 100 {
		t.Fatalf("pushes/merges = %d/%d, want 100/100", m.Pushes, m.Merges)
	}
	if m.RejectedSnapshots != 0 {
		t.Fatalf("RejectedSnapshots = %d", m.RejectedSnapshots)
	}
	if m.WorkerSnapshots != 100 {
		t.Fatalf("WorkerSnapshots = %d", m.WorkerSnapshots)
	}
	if m.RegisteredWorkers != 2 {
		t.Fatalf("RegisteredWorkers = %d", m.RegisteredWorkers)
	}
	if m.Saves < 1 {
		t.Fatalf("Saves = %d, want >= 1 (final save)", m.Saves)
	}
}

func TestCollectorFailureDoesNotDeadlock(t *testing.T) {
	// Make the worker-snapshot directory unwritable so the collector
	// fails mid-run; the run must return the error promptly rather than
	// leaving workers blocked on the collector channel.
	dir := t.TempDir()
	if _, err := store.Open(dir); err != nil {
		t.Fatal(err)
	}
	// Replace the workers directory with a regular file so snapshot
	// writes fail even when running as root.
	workersDir := dir + "/parmonc_data/workers"
	if err := os.RemoveAll(workersDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(workersDir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := fastCfg(dir)
	cfg.SaveWorkerSnapshots = true
	cfg.StrictExchange = true
	cfg.MaxSamples = 2000

	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = Run(context.Background(), cfg, uniformMean)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run deadlocked after collector failure")
	}
	if runErr == nil {
		t.Fatal("expected collector error")
	}
}

func TestRunStopRuleEndsUnboundedRun(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 0 // unbounded: the stop rule decides
	cfg.Stop = func(p collect.Progress) bool { return p.N >= 2000 }

	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		defer close(done)
		res, err = Run(context.Background(), cfg, uniformMean)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stop rule never ended the unbounded run")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("stop-rule completion reported as interrupted")
	}
	if res.Report.N < 2000 {
		t.Fatalf("run stopped at N = %d, before the rule's threshold", res.Report.N)
	}
}
