// Package core implements the PARMONC simulation driver — the Go
// analogue of the paper's parmoncf/parmoncc subroutines (Sec. 2.2 and
// 3.2).
//
// The driver launches M workers (the paper's "processors"). Worker m
// repeatedly simulates independent realizations of the user's random
// object, drawing base random numbers from its own processor subsequence
// of the parallel RNG, realization k from the k-th realization
// subsequence. Workers accumulate subtotal moments locally and
// periodically push them to a collector (the paper's 0-th processor),
// which merges them by formula (5), computes the error matrices, and
// saves results and checkpoints to files. The exchange is asynchronous:
// no worker ever waits for another.
//
// Setting Config.Resume starts from the moments stored by a previous run
// (the paper's res = 1), with the requirement — enforced here as in the
// paper — that the new run uses a different experiments-subsequence
// number so that no base random numbers are reused.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Realization computes one realization of the random object into out
// (row-major Nrow×Ncol), drawing base random numbers from src. It is the
// user-supplied sequential routine of the paper (e.g. difftraj): it must
// not retain src or out, and it must not share state with other calls —
// the driver calls it concurrently from different workers.
type Realization func(src *rng.Stream, out []float64) error

// Config configures a simulation run. Zero values select documented
// defaults.
type Config struct {
	// Nrow, Ncol are the realization matrix dimensions (required).
	Nrow, Ncol int

	// MaxSamples is the paper's maxsv: the total number of new
	// realizations to simulate across all workers. Zero or negative
	// means unbounded — the run continues until the context is
	// cancelled, the paper's "endless simulation limited only by the
	// time framework of a job".
	MaxSamples int64

	// Resume, when true, merges the results of the previous simulation
	// found in WorkDir (the paper's res = 1). The previous run must have
	// identical matrix dimensions and a different SeqNum.
	Resume bool

	// SeqNum selects the "experiments" subsequence of the parallel RNG.
	SeqNum uint64

	// Workers is the paper's M. Default: runtime.GOMAXPROCS(0).
	Workers int

	// PassPeriod is the paper's perpass: how often each worker pushes
	// its subtotal moments to the collector. Default: 1 minute.
	PassPeriod time.Duration

	// AverPeriod is the paper's peraver: how often the collector
	// averages and saves results to files. Default: 2 minutes.
	AverPeriod time.Duration

	// StrictExchange makes every worker push its subtotal after every
	// single realization — the "strictest conditions" of the paper's
	// Fig. 2 performance test. File saves remain governed by AverPeriod
	// (in the paper, too, only the exchange is per-realization).
	StrictExchange bool

	// WorkDir is where the parmonc_data directory is created.
	// Default: current directory.
	WorkDir string

	// Gamma is the confidence coefficient of the error matrices.
	// Default: 3 (λ = 0.997).
	Gamma float64

	// Params are the parallel RNG leap exponents. The zero value loads
	// parmonc_genparam.dat from WorkDir if present, else the defaults.
	Params rng.Params

	// SaveWorkerSnapshots writes per-worker cumulative moments on every
	// pass, enabling post-mortem averaging with manaver.
	SaveWorkerSnapshots bool

	// StableMoments makes the collector accumulate with the numerically
	// stable Welford/Chan algorithm instead of raw sums. Use it when
	// |E ζ| ≫ σ, where raw Σζ² loses the variance to cancellation; see
	// stat.StableAccumulator. Workers still ship raw-sum snapshots (the
	// shared wire format), so per-push rounding is unchanged; the
	// protection applies to the long-lived collector state, which is
	// where L grows large.
	StableMoments bool

	// OnSave, if non-nil, is invoked after every periodic save with a
	// snapshot of the running statistics. This is the paper's "control
	// the absolute and relative stochastic errors during the
	// simulation": cancel the run's context from the callback to stop
	// as soon as a target accuracy is reached. The callback runs on the
	// collector goroutine; it must not block for long and must not call
	// back into the running simulation.
	OnSave func(Progress)
}

// Progress is the point-in-time view of a running simulation handed to
// Config.OnSave.
type Progress struct {
	N         int64         // total sample volume so far (incl. resumed)
	MaxAbsErr float64       // ε_max over the matrix
	MaxRelErr float64       // ρ_max over the matrix, percent
	MaxVar    float64       // σ̄²_max
	Elapsed   time.Duration // wall time since Run started
}

// withDefaults validates cfg and fills in defaults.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Nrow <= 0 || cfg.Ncol <= 0 {
		return cfg, fmt.Errorf("core: invalid realization dimensions %d×%d", cfg.Nrow, cfg.Ncol)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 0 {
		return cfg, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.PassPeriod == 0 {
		cfg.PassPeriod = time.Minute
	}
	if cfg.PassPeriod < 0 {
		return cfg, fmt.Errorf("core: negative pass period %v", cfg.PassPeriod)
	}
	if cfg.AverPeriod == 0 {
		cfg.AverPeriod = 2 * time.Minute
	}
	if cfg.AverPeriod < 0 {
		return cfg, fmt.Errorf("core: negative averaging period %v", cfg.AverPeriod)
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "."
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = stat.DefaultConfidenceCoefficient
	}
	if cfg.Gamma < 0 {
		return cfg, fmt.Errorf("core: negative confidence coefficient %g", cfg.Gamma)
	}
	if cfg.MaxSamples < 0 {
		cfg.MaxSamples = 0
	}
	return cfg, nil
}

// Result is the outcome of a run.
type Result struct {
	// Report holds the final averaged statistics, including any resumed
	// previous results.
	Report stat.Report

	// Meta is the run metadata as stored in the checkpoint.
	Meta store.RunMeta

	// NewSamples is the number of realizations simulated by this run
	// (Report.N minus the resumed volume).
	NewSamples int64

	// Elapsed is the wall time of the run.
	Elapsed time.Duration

	// Interrupted reports that the run stopped because the context was
	// cancelled rather than because MaxSamples was reached.
	Interrupted bool
}

// snapMsg is one subtotal push from a worker to the collector.
type snapMsg struct {
	worker int
	snap   stat.Snapshot
}

// Factory produces a fresh Realization for worker m. Use RunFactory
// when the realization routine carries per-call state (integrators,
// scratch buffers, samplers with caches): each worker then gets its own
// instance, just as each MPI rank in the original library runs its own
// copy of the user routine.
type Factory func(worker int) (Realization, error)

// Run executes the simulation described by cfg, calling r once per
// realization. r is invoked concurrently from cfg.Workers goroutines, so
// it must be safe for concurrent use (stateless routines are; for
// stateful ones use RunFactory). It returns the final averaged
// statistics. On context cancellation the run saves whatever it has (the
// paper's job-kill model) and returns with Result.Interrupted set;
// cancellation is not an error.
func Run(ctx context.Context, cfg Config, r Realization) (Result, error) {
	if r == nil {
		return Result{}, errors.New("core: nil realization routine")
	}
	return RunFactory(ctx, cfg, func(int) (Realization, error) { return r, nil })
}

// RunFactory is Run with a per-worker realization factory.
func RunFactory(ctx context.Context, cfg Config, factory Factory) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("core: nil realization factory")
	}

	dir, err := store.Open(cfg.WorkDir)
	if err != nil {
		return Result{}, err
	}

	params := cfg.Params
	if params == (rng.Params{}) {
		params, err = rng.LoadParams(cfg.WorkDir)
		if err != nil {
			return Result{}, err
		}
	}
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	if err := params.CheckCoord(rng.Coord{Experiment: cfg.SeqNum, Processor: uint64(cfg.Workers) - 1}); err != nil {
		return Result{}, fmt.Errorf("core: run does not fit the RNG hierarchy: %w", err)
	}

	meta := store.RunMeta{
		SeqNum:    cfg.SeqNum,
		Nrow:      cfg.Nrow,
		Ncol:      cfg.Ncol,
		MaxSV:     cfg.MaxSamples,
		Workers:   cfg.Workers,
		Params:    params,
		Gamma:     cfg.Gamma,
		StartedAt: time.Now(),
	}

	// Establish the base moments: either the previous run's checkpoint
	// (res = 1) or empty (res = 0).
	base := stat.New(cfg.Nrow, cfg.Ncol)
	if cfg.Resume {
		snap, prevMeta, err := dir.LoadCheckpoint()
		if err != nil {
			if os.IsNotExist(err) {
				return Result{}, fmt.Errorf("core: resume requested but no previous simulation found in %s", cfg.WorkDir)
			}
			return Result{}, err
		}
		if prevMeta.Nrow != cfg.Nrow || prevMeta.Ncol != cfg.Ncol {
			return Result{}, fmt.Errorf("core: previous simulation is %d×%d, this run is %d×%d",
				prevMeta.Nrow, prevMeta.Ncol, cfg.Nrow, cfg.Ncol)
		}
		if prevMeta.SeqNum == cfg.SeqNum {
			return Result{}, fmt.Errorf("core: resume must use a different experiments subsequence number than the previous run (both are %d); base random numbers would repeat", cfg.SeqNum)
		}
		if err := base.Merge(snap); err != nil {
			return Result{}, err
		}
	} else {
		if err := dir.RemoveCheckpoint(); err != nil {
			return Result{}, err
		}
		if err := dir.RemoveWorkerSnapshots(); err != nil {
			return Result{}, err
		}
	}
	resumedN := base.N()

	if err := dir.SaveBaseCheckpoint(base.Snapshot(), meta); err != nil {
		return Result{}, err
	}
	if err := dir.AppendExperiment(meta, cfg.Resume); err != nil {
		return Result{}, err
	}

	start := time.Now()

	// Static quota split keeps runs reproducible: worker m simulates
	// quota(m) realizations from its own processor subsequence, so the
	// final moments do not depend on goroutine scheduling.
	quota := func(m int) int64 {
		if cfg.MaxSamples <= 0 {
			return -1 // unbounded
		}
		q := cfg.MaxSamples / int64(cfg.Workers)
		if int64(m) < cfg.MaxSamples%int64(cfg.Workers) {
			q++
		}
		return q
	}

	msgs := make(chan snapMsg, cfg.Workers)
	errs := make(chan error, cfg.Workers+1)
	var wg sync.WaitGroup

	// Build every worker's realization before launching any goroutine,
	// so a factory failure cannot leave workers blocked on the collector
	// channel.
	routines := make([]Realization, cfg.Workers)
	for m := range routines {
		r, err := factory(m)
		if err != nil {
			return Result{}, fmt.Errorf("core: building realization for worker %d: %w", m, err)
		}
		if r == nil {
			return Result{}, fmt.Errorf("core: factory returned nil realization for worker %d", m)
		}
		routines[m] = r
	}

	for m := 0; m < cfg.Workers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			if err := runWorker(ctx, cfg, params, m, quota(m), routines[m], msgs); err != nil {
				errs <- fmt.Errorf("core: worker %d: %w", m, err)
			}
		}(m)
	}

	// Close the message channel once every worker is done.
	go func() {
		wg.Wait()
		close(msgs)
	}()

	// The collector runs in this goroutine — it is the paper's 0-th
	// processor.
	var collector moments
	if cfg.StableMoments {
		sc := stat.NewStable(cfg.Nrow, cfg.Ncol)
		if err := sc.Merge(base.Snapshot()); err != nil {
			return Result{}, err
		}
		collector = sc
	} else {
		collector = base
	}
	total, collectErr := collect(cfg, dir, meta, collector, msgs, start)
	if collectErr != nil {
		errs <- collectErr
	}

	interrupted := ctx.Err() != nil
	close(errs)
	for e := range errs {
		if e != nil {
			return Result{}, e
		}
	}

	rep := total.Report(cfg.Gamma)
	return Result{
		Report:      rep,
		Meta:        meta,
		NewSamples:  total.N() - resumedN,
		Elapsed:     time.Since(start),
		Interrupted: interrupted,
	}, nil
}

// runWorker simulates realizations on processor m until its quota is
// exhausted or the context is cancelled, pushing subtotal snapshots every
// PassPeriod (or after every realization under StrictExchange).
func runWorker(ctx context.Context, cfg Config, params rng.Params, m int, quota int64, r Realization, msgs chan<- snapMsg) error {
	stream, err := rng.NewStream(params, rng.Coord{Experiment: cfg.SeqNum, Processor: uint64(m)})
	if err != nil {
		return err
	}
	local := stat.New(cfg.Nrow, cfg.Ncol)
	out := make([]float64, cfg.Nrow*cfg.Ncol)
	lastPass := time.Now()

	push := func() {
		if local.N() == 0 {
			return
		}
		msgs <- snapMsg{worker: m, snap: local.Snapshot()}
		local.Reset()
		lastPass = time.Now()
	}
	defer push()

	for k := int64(0); quota < 0 || k < quota; k++ {
		if ctx.Err() != nil {
			return nil
		}
		if k > 0 {
			if err := stream.NextRealization(); err != nil {
				return err
			}
		}
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := callRealization(r, stream, out); err != nil {
			return fmt.Errorf("realization %d: %w", k, err)
		}
		if err := local.AddTimed(out, time.Since(t0)); err != nil {
			return err
		}
		if cfg.StrictExchange || time.Since(lastPass) >= cfg.PassPeriod {
			push()
		}
	}
	return nil
}

// moments is the collector-side accumulator interface satisfied by both
// stat.Accumulator (raw sums, the paper's scheme) and
// stat.StableAccumulator (Welford/Chan).
type moments interface {
	Merge(stat.Snapshot) error
	Snapshot() stat.Snapshot
	Report(gamma float64) stat.Report
	N() int64
}

// collect merges worker snapshots into the running total and saves
// results every AverPeriod, plus a final save when all workers have
// finished.
func collect(cfg Config, dir *store.Dir, meta store.RunMeta, total moments, msgs <-chan snapMsg, start time.Time) (moments, error) {
	var perWorker map[int]*stat.Accumulator
	if cfg.SaveWorkerSnapshots {
		perWorker = make(map[int]*stat.Accumulator, cfg.Workers)
	}
	lastSave := time.Now()

	save := func() error {
		rep := total.Report(cfg.Gamma)
		if err := dir.SaveResults(rep, meta); err != nil {
			return err
		}
		if err := dir.SaveCheckpoint(total.Snapshot(), meta); err != nil {
			return err
		}
		lastSave = time.Now()
		if cfg.OnSave != nil {
			cfg.OnSave(Progress{
				N:         rep.N,
				MaxAbsErr: rep.MaxAbsErr,
				MaxRelErr: rep.MaxRelErr,
				MaxVar:    rep.MaxVar,
				Elapsed:   time.Since(start),
			})
		}
		return nil
	}

	// On a collector-side failure the workers must not be left blocked
	// on the channel: drain the remaining messages before returning the
	// error.
	fail := func(err error) (moments, error) {
		for range msgs {
		}
		return total, err
	}

	for msg := range msgs {
		if err := total.Merge(msg.snap); err != nil {
			return fail(err)
		}
		if perWorker != nil {
			acc, ok := perWorker[msg.worker]
			if !ok {
				acc = stat.New(cfg.Nrow, cfg.Ncol)
				perWorker[msg.worker] = acc
			}
			if err := acc.Merge(msg.snap); err != nil {
				return fail(err)
			}
			if err := dir.SaveWorkerSnapshot(msg.worker, acc.Snapshot(), meta); err != nil {
				return fail(err)
			}
		}
		if time.Since(lastSave) >= cfg.AverPeriod {
			if err := save(); err != nil {
				return fail(err)
			}
		}
	}
	return total, save()
}

// Manaver recomputes the averaged results from the run-base checkpoint
// plus the per-worker snapshot files — the paper's manaver command. It
// is used after a job was killed, when the worker files hold a larger
// sample volume than the last collector save. It rewrites the results
// files and the collector checkpoint and returns the merged report.
func Manaver(workdir string) (stat.Report, error) {
	dir, err := store.Open(workdir)
	if err != nil {
		return stat.Report{}, err
	}
	baseSnap, meta, err := dir.LoadBaseCheckpoint()
	if err != nil {
		if os.IsNotExist(err) {
			return stat.Report{}, fmt.Errorf("core: manaver: no simulation has run in %s", workdir)
		}
		return stat.Report{}, err
	}
	total, err := stat.FromSnapshot(baseSnap)
	if err != nil {
		return stat.Report{}, err
	}
	snaps, _, err := dir.LoadWorkerSnapshots()
	if err != nil {
		return stat.Report{}, err
	}
	for i, s := range snaps {
		if err := total.Merge(s); err != nil {
			return stat.Report{}, fmt.Errorf("core: manaver: worker snapshot %d: %w", i, err)
		}
	}
	rep := total.Report(meta.Gamma)
	if err := dir.SaveResults(rep, meta); err != nil {
		return stat.Report{}, err
	}
	if err := dir.SaveCheckpoint(total.Snapshot(), meta); err != nil {
		return stat.Report{}, err
	}
	return rep, nil
}

// callRealization invokes the user routine, converting a panic into an
// error so one bad realization cannot take down the whole simulation —
// the run fails cleanly with results saved, as when a realization
// returns an error.
func callRealization(r Realization, stream *rng.Stream, out []float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: realization panicked: %v", p)
		}
	}()
	return r(stream, out)
}
