// Package core implements the PARMONC simulation driver — the Go
// analogue of the paper's parmoncf/parmoncc subroutines (Sec. 2.2 and
// 3.2).
//
// The driver launches M workers (the paper's "processors"). Worker m
// repeatedly simulates independent realizations of the user's random
// object, drawing base random numbers from its own processor subsequence
// of the parallel RNG, realization k from the k-th realization
// subsequence. Workers accumulate subtotal moments locally and
// periodically push them to a collector (the paper's 0-th processor),
// which merges them by formula (5), computes the error matrices, and
// saves results and checkpoints to files. The exchange is asynchronous:
// no worker ever waits for another.
//
// Setting Config.Resume starts from the moments stored by a previous run
// (the paper's res = 1), with the requirement — enforced here as in the
// paper — that the new run uses a different experiments-subsequence
// number so that no base random numbers are reused.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Realization computes one realization of the random object into out
// (row-major Nrow×Ncol), drawing base random numbers from src. It is the
// user-supplied sequential routine of the paper (e.g. difftraj): it must
// not retain src or out, and it must not share state with other calls —
// the driver calls it concurrently from different workers.
type Realization func(src *rng.Stream, out []float64) error

// Config configures a simulation run. Zero values select documented
// defaults.
type Config struct {
	// Nrow, Ncol are the realization matrix dimensions (required).
	Nrow, Ncol int

	// MaxSamples is the paper's maxsv: the total number of new
	// realizations to simulate across all workers. Zero or negative
	// means unbounded — the run continues until the context is
	// cancelled, the paper's "endless simulation limited only by the
	// time framework of a job".
	MaxSamples int64

	// Resume, when true, merges the results of the previous simulation
	// found in WorkDir (the paper's res = 1). The previous run must have
	// identical matrix dimensions and a different SeqNum.
	Resume bool

	// SeqNum selects the "experiments" subsequence of the parallel RNG.
	SeqNum uint64

	// Workers is the paper's M. Default: runtime.GOMAXPROCS(0).
	Workers int

	// LeaseSize is the realization-window size of the substream leases
	// the run is partitioned into: lease i covers realizations
	// [0, Count) of processor subsequence i+1, and worker m executes
	// leases m, m+Workers, m+2·Workers, … in order. The partition is a
	// pure function of (MaxSamples, LeaseSize) — shared with the
	// cluster transport — so a distributed run with the same LeaseSize
	// enumerates exactly the same substreams as this in-process driver,
	// whichever workers execute them. Zero defaults to
	// ceil(MaxSamples/Workers): one lease per worker, the classic
	// static split.
	LeaseSize int64

	// PassPeriod is the paper's perpass: how often each worker pushes
	// its subtotal moments to the collector. Default: 1 minute.
	PassPeriod time.Duration

	// AverPeriod is the paper's peraver: how often the collector
	// averages and saves results to files. Default: 2 minutes.
	AverPeriod time.Duration

	// StrictExchange makes every worker push its subtotal after every
	// single realization — the "strictest conditions" of the paper's
	// Fig. 2 performance test. File saves remain governed by AverPeriod
	// (in the paper, too, only the exchange is per-realization).
	StrictExchange bool

	// WorkDir is where the parmonc_data directory is created.
	// Default: current directory.
	WorkDir string

	// Gamma is the confidence coefficient of the error matrices.
	// Default: 3 (λ = 0.997).
	Gamma float64

	// Params are the parallel RNG leap exponents. The zero value loads
	// parmonc_genparam.dat from WorkDir if present, else the defaults.
	Params rng.Params

	// SaveWorkerSnapshots writes per-worker cumulative moments on every
	// pass, enabling post-mortem averaging with manaver.
	SaveWorkerSnapshots bool

	// StableMoments makes the collector accumulate with the numerically
	// stable Welford/Chan algorithm instead of raw sums. Use it when
	// |E ζ| ≫ σ, where raw Σζ² loses the variance to cancellation; see
	// stat.StableAccumulator. Workers still ship raw-sum snapshots (the
	// shared wire format), so per-push rounding is unchanged; the
	// protection applies to the long-lived collector state, which is
	// where L grows large.
	StableMoments bool

	// OnSave, if non-nil, is invoked after every periodic save with a
	// snapshot of the running statistics. This is the paper's "control
	// the absolute and relative stochastic errors during the
	// simulation": cancel the run's context from the callback to stop
	// as soon as a target accuracy is reached. The callback runs on the
	// collector goroutine; it must not block for long and must not call
	// back into the running simulation.
	OnSave func(Progress)

	// Stop, if non-nil, is the run's statistical completion rule: it is
	// evaluated by the collector after every periodic save, and once it
	// fires the workers stop at their next realization boundary and the
	// run finalizes normally (Result.Interrupted stays false). Combine
	// with MaxSamples = 0 for a pure accuracy-targeted run — see
	// collect.TargetRelErr for the standard target-relative-error rule.
	Stop collect.StopRule

	// Hook, if non-nil, receives the collector engine's events (pushes,
	// merges, saves, rejections); see collect.Hook for the contract.
	Hook collect.Hook

	// Registry, if non-nil, receives the run's metrics: the collector
	// engine's counters plus the driver's realization-timing and
	// collector-push-latency series. Serve it over HTTP with obs.Serve
	// (the parmonc CLI's --http flag) to watch a run live.
	Registry *obs.Registry

	// Journal, if non-nil, receives the run-event journal: run
	// start/stop plus every collector event (push, merge, save, ...),
	// buffered off the hot path. The caller owns the journal and closes
	// it after the run.
	Journal *obs.Journal

	// Workload, Fingerprint and Scenario are the optional workload
	// identity of the run: the registered workload name, its
	// parameter-resolved fingerprint ("name@v1/0123456789ab"), and the
	// canonical compact-JSON scenario spec that reproduces the
	// parameterization. They are recorded in the run metadata, the
	// experiment log and the run_start journal event. The core driver
	// does not interpret them — identity is resolved by the caller
	// (internal/workload), keeping this package free of a dependency on
	// the registry. Empty strings mean "unnamed user factory".
	Workload    string
	Fingerprint string
	Scenario    string
}

// Progress is the point-in-time view of a running simulation handed to
// Config.OnSave. It is the collector engine's progress type.
type Progress = collect.Progress

// withDefaults validates cfg and fills in defaults.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Nrow <= 0 || cfg.Ncol <= 0 {
		return cfg, fmt.Errorf("core: invalid realization dimensions %d×%d", cfg.Nrow, cfg.Ncol)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 0 {
		return cfg, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.PassPeriod == 0 {
		cfg.PassPeriod = time.Minute
	}
	if cfg.PassPeriod < 0 {
		return cfg, fmt.Errorf("core: negative pass period %v", cfg.PassPeriod)
	}
	if cfg.AverPeriod == 0 {
		cfg.AverPeriod = 2 * time.Minute
	}
	if cfg.AverPeriod < 0 {
		return cfg, fmt.Errorf("core: negative averaging period %v", cfg.AverPeriod)
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "."
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = stat.DefaultConfidenceCoefficient
	}
	if cfg.Gamma < 0 {
		return cfg, fmt.Errorf("core: negative confidence coefficient %g", cfg.Gamma)
	}
	if cfg.MaxSamples < 0 {
		cfg.MaxSamples = 0
	}
	if cfg.LeaseSize < 0 {
		return cfg, fmt.Errorf("core: negative lease size %d", cfg.LeaseSize)
	}
	if cfg.LeaseSize == 0 && cfg.MaxSamples > 0 && cfg.Workers > 0 {
		cfg.LeaseSize = (cfg.MaxSamples + int64(cfg.Workers) - 1) / int64(cfg.Workers)
	}
	return cfg, nil
}

// Result is the outcome of a run.
type Result struct {
	// Report holds the final averaged statistics, including any resumed
	// previous results.
	Report stat.Report

	// Meta is the run metadata as stored in the checkpoint.
	Meta store.RunMeta

	// NewSamples is the number of realizations simulated by this run
	// (Report.N minus the resumed volume).
	NewSamples int64

	// Elapsed is the wall time of the run.
	Elapsed time.Duration

	// Interrupted reports that the run stopped because the context was
	// cancelled rather than because MaxSamples was reached.
	Interrupted bool

	// Metrics is the collector engine's instrumentation for this run:
	// pushes, merges, saves, rejected snapshots, save latency.
	Metrics collect.MetricsSnapshot
}

// runObs bundles the driver's own instrumentation — realization
// timing/throughput and collector-push latency, the series the paper's
// Fig. 2 evaluation (T_comp(L), push traffic) is derived from. A nil
// *runObs disables instrumentation with a single pointer check, so
// uninstrumented runs pay nothing on the realization hot path.
type runObs struct {
	realizations *obs.Counter   // realizations completed across all workers
	realizeSec   *obs.Histogram // per-realization wall time
	pushSec      *obs.Histogram // collector-side merge latency per push
}

// newRunObs registers the driver series plus live gauges over the
// engine. Realization times span sub-µs (the pi workload) to seconds
// (the paper's SDE at fine meshes); push merges are µs-scale.
func newRunObs(reg *obs.Registry, eng *collect.Collector) *runObs {
	if reg == nil {
		return nil
	}
	reg.GaugeFunc("parmonc_samples_total", "Total sample volume merged so far (incl. resumed base).",
		func() float64 { return float64(eng.N()) })
	reg.GaugeFunc("parmonc_active_workers", "Workers currently registered with the collector.",
		func() float64 { return float64(eng.Active()) })
	return &runObs{
		realizations: reg.Counter("parmonc_realizations_total", "Realizations simulated by this process."),
		realizeSec: reg.Histogram("parmonc_realization_seconds", "Wall time of one realization.",
			obs.ExpBuckets(1e-6, 4, 16)),
		pushSec: reg.Histogram("parmonc_collector_push_seconds", "Collector-side latency of one subtotal push (validate + merge + bookkeeping).",
			obs.ExpBuckets(1e-6, 4, 16)),
	}
}

// Factory produces a fresh Realization for worker m. Use RunFactory
// when the realization routine carries per-call state (integrators,
// scratch buffers, samplers with caches): each worker then gets its own
// instance, just as each MPI rank in the original library runs its own
// copy of the user routine.
type Factory func(worker int) (Realization, error)

// Run executes the simulation described by cfg, calling r once per
// realization. r is invoked concurrently from cfg.Workers goroutines, so
// it must be safe for concurrent use (stateless routines are; for
// stateful ones use RunFactory). It returns the final averaged
// statistics. On context cancellation the run saves whatever it has (the
// paper's job-kill model) and returns with Result.Interrupted set;
// cancellation is not an error.
func Run(ctx context.Context, cfg Config, r Realization) (Result, error) {
	if r == nil {
		return Result{}, errors.New("core: nil realization routine")
	}
	return RunFactory(ctx, cfg, func(int) (Realization, error) { return r, nil })
}

// RunFactory is Run with a per-worker realization factory.
func RunFactory(ctx context.Context, cfg Config, factory Factory) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("core: nil realization factory")
	}

	dir, err := store.Open(cfg.WorkDir)
	if err != nil {
		return Result{}, err
	}

	params := cfg.Params
	if params == (rng.Params{}) {
		params, err = rng.LoadParams(cfg.WorkDir)
		if err != nil {
			return Result{}, err
		}
	}
	if err := params.Validate(); err != nil {
		return Result{}, err
	}

	// Partition the run into substream leases (shared with the cluster
	// transport): lease i covers processor subsequence i+1. Worker m
	// executes leases m, m+Workers, … in order, so the realization →
	// substream mapping is a pure function of the configuration,
	// independent of goroutine scheduling.
	leases := collect.PartitionLeases(cfg.MaxSamples, cfg.LeaseSize)
	// Every worker needs a distinct processor subsequence in unbounded
	// mode, and the lease partition must fit the hierarchy in bounded
	// mode — reject configurations that exceed either capacity.
	if err := params.CheckCoord(rng.Coord{Experiment: cfg.SeqNum, Processor: uint64(cfg.Workers)}); err != nil {
		return Result{}, fmt.Errorf("core: run does not fit the RNG hierarchy: %w", err)
	}
	if len(leases) > 0 {
		last := leases[len(leases)-1]
		var maxReal uint64
		if cfg.LeaseSize > 1 {
			maxReal = uint64(cfg.LeaseSize - 1)
		}
		if err := params.CheckCoord(rng.Coord{Experiment: cfg.SeqNum, Processor: last.Proc, Realization: maxReal}); err != nil {
			return Result{}, fmt.Errorf("core: run does not fit the RNG hierarchy: %w", err)
		}
	}

	meta := store.RunMeta{
		SeqNum:      cfg.SeqNum,
		Nrow:        cfg.Nrow,
		Ncol:        cfg.Ncol,
		MaxSV:       cfg.MaxSamples,
		Workers:     cfg.Workers,
		Params:      params,
		Gamma:       cfg.Gamma,
		StartedAt:   time.Now(),
		Workload:    cfg.Workload,
		Fingerprint: cfg.Fingerprint,
		Scenario:    cfg.Scenario,
	}

	// The collector engine owns base-checkpoint establishment (resume
	// or fresh), accumulation, periodic saves and metrics; this driver
	// is only the goroutine transport feeding it.
	eng, err := collect.New(dir, meta, collect.Config{
		Resume:              cfg.Resume,
		AverPeriod:          cfg.AverPeriod,
		SaveWorkerSnapshots: cfg.SaveWorkerSnapshots,
		StableMoments:       cfg.StableMoments,
		OnSave:              cfg.OnSave,
		Stop:                cfg.Stop,
		Hook:                collect.MultiHook(cfg.Hook, collect.JournalHook(cfg.Journal)),
		Registry:            cfg.Registry,
	})
	if err != nil {
		return Result{}, err
	}
	ro := newRunObs(cfg.Registry, eng)
	if cfg.Registry != nil && cfg.Fingerprint != "" {
		// Prometheus info pattern: a constant 1 whose labels carry the
		// workload identity, joinable against every other series.
		cfg.Registry.Gauge("parmonc_workload_info", "Workload identity of this run.",
			obs.L("workload", cfg.Workload), obs.L("fingerprint", cfg.Fingerprint)).Set(1)
	}
	if cfg.Journal != nil {
		startFields := map[string]any{
			"workers": cfg.Workers, "seqnum": cfg.SeqNum, "maxsv": cfg.MaxSamples,
			"nrow": cfg.Nrow, "ncol": cfg.Ncol, "resume": cfg.Resume,
		}
		if cfg.Fingerprint != "" {
			startFields["workload"] = cfg.Fingerprint
		}
		cfg.Journal.Record(obs.Event{Kind: "run_start", Fields: startFields})
		defer func() {
			cfg.Journal.Record(obs.Event{Kind: "run_stop", Samples: eng.N()})
		}()
	}
	resumedN := eng.BaseN()
	for m := 0; m < cfg.Workers; m++ {
		eng.Register(m)
	}

	start := time.Now()

	// workerLeases deals the partition round-robin: worker m gets
	// leases m, m+Workers, m+2·Workers, …
	workerLeases := func(m int) []collect.Lease {
		var mine []collect.Lease
		for i := m; i < len(leases); i += cfg.Workers {
			mine = append(mine, leases[i])
		}
		return mine
	}

	errs := make(chan error, cfg.Workers)
	var wg sync.WaitGroup

	// Build every worker's realization before launching any goroutine,
	// so a factory failure cannot leave half a fleet running.
	routines := make([]Realization, cfg.Workers)
	for m := range routines {
		r, err := factory(m)
		if err != nil {
			return Result{}, fmt.Errorf("core: building realization for worker %d: %w", m, err)
		}
		if r == nil {
			return Result{}, fmt.Errorf("core: factory returned nil realization for worker %d", m)
		}
		routines[m] = r
	}

	// Workers push straight into the sharded collector engine — the
	// engine is the paper's 0-th processor, and since it only locks the
	// pushing worker's shard there is no merge funnel to route pushes
	// through: the exchange is asynchronous, no worker ever waits for
	// another.
	for m := 0; m < cfg.Workers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			if err := runWorker(ctx, cfg, params, m, workerLeases(m), routines[m], eng, ro); err != nil {
				errs <- fmt.Errorf("core: worker %d: %w", m, err)
			}
		}(m)
	}
	wg.Wait()

	interrupted := ctx.Err() != nil
	close(errs)
	var runErr error
	for e := range errs {
		if e != nil && runErr == nil {
			runErr = e
		}
	}

	// Final save even after a worker failure: the run fails cleanly
	// with whatever was accumulated on disk. If the store itself is
	// broken the finalize fails too, and the worker's error wins.
	rep, ferr := eng.Finalize()
	if runErr == nil {
		runErr = ferr
	}
	if runErr == nil {
		return Result{
			Report:      rep,
			Meta:        meta,
			NewSamples:  rep.N - resumedN,
			Elapsed:     time.Since(start),
			Interrupted: interrupted,
			Metrics:     eng.Metrics(),
		}, nil
	}
	return Result{}, runErr
}

// runWorker simulates realizations until worker m's leases are
// exhausted or the context is cancelled, pushing subtotal snapshots
// straight into the collector engine every PassPeriod (or after every
// realization under StrictExchange) — the push only takes this worker's
// shard lock, so workers never serialize on each other. A bounded run
// executes the given leases in order; an unbounded run (no leases)
// draws from the endless window on processor subsequence m+1 until
// cancelled.
func runWorker(ctx context.Context, cfg Config, params rng.Params, m int, leases []collect.Lease, r Realization, eng *collect.Collector, ro *runObs) (err error) {
	local := stat.New(cfg.Nrow, cfg.Ncol)
	out := make([]float64, cfg.Nrow*cfg.Ncol)
	lastPass := time.Now()

	push := func() error {
		if local.N() == 0 {
			return nil
		}
		var t0 time.Time
		if ro != nil {
			t0 = time.Now()
		}
		perr := eng.Push(m, local.Snapshot())
		if ro != nil {
			ro.pushSec.Observe(time.Since(t0).Seconds())
		}
		if perr != nil {
			return perr
		}
		local.Reset()
		lastPass = time.Now()
		return nil
	}
	// Flush the final subtotal; a flush failure surfaces unless the
	// worker is already failing.
	defer func() {
		if ferr := push(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	// one realization: zero the buffer, run the routine, accumulate.
	step := func(stream *rng.Stream, k int64) error {
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := callRealization(r, stream, out); err != nil {
			return fmt.Errorf("realization %d: %w", k, err)
		}
		elapsed := time.Since(t0)
		if err := local.AddTimed(out, elapsed); err != nil {
			return err
		}
		if ro != nil {
			ro.realizations.Inc()
			ro.realizeSec.Observe(elapsed.Seconds())
		}
		if cfg.StrictExchange || time.Since(lastPass) >= cfg.PassPeriod {
			return push()
		}
		return nil
	}

	if cfg.MaxSamples <= 0 {
		// Unbounded: an endless window on processor subsequence m+1.
		stream, err := rng.NewStream(params, rng.Coord{Experiment: cfg.SeqNum, Processor: uint64(m) + 1})
		if err != nil {
			return err
		}
		for k := int64(0); ; k++ {
			if ctx.Err() != nil || eng.StopSatisfied() {
				return nil
			}
			if k > 0 {
				if err := stream.NextRealization(); err != nil {
					return err
				}
			}
			if err := step(stream, k); err != nil {
				return err
			}
		}
	}

	for _, l := range leases {
		stream, err := rng.NewStream(params, rng.Coord{Experiment: cfg.SeqNum, Processor: l.Proc, Realization: l.Start})
		if err != nil {
			return err
		}
		for k := int64(0); k < l.Count; k++ {
			if ctx.Err() != nil || eng.StopSatisfied() {
				return nil
			}
			if k > 0 {
				if err := stream.NextRealization(); err != nil {
					return err
				}
			}
			if err := step(stream, k); err != nil {
				return err
			}
		}
	}
	return nil
}

// Manaver recomputes the averaged results from the run-base checkpoint
// plus the per-worker snapshot files — the paper's manaver command. It
// delegates to the collector engine, which owns the merge.
func Manaver(workdir string) (stat.Report, error) {
	return collect.Manaver(workdir)
}

// callRealization invokes the user routine, converting a panic into an
// error so one bad realization cannot take down the whole simulation —
// the run fails cleanly with results saved, as when a realization
// returns an error.
func callRealization(r Realization, stream *rng.Stream, out []float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: realization panicked: %v", p)
		}
	}()
	return r(stream, out)
}
