package core

import (
	"context"
	"math"
	"testing"
)

func uniformFactory(int) (Realization, error) {
	return uniformMean, nil
}

func TestRunExperimentsIndependentEstimates(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	cfg.MaxSamples = 3000
	res, err := RunExperiments(context.Background(), cfg, []uint64{0, 1, 2}, uniformFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("got %d reports", len(res.Reports))
	}
	// Combined volume is the sum.
	if res.Combined.N != 9000 {
		t.Fatalf("combined N = %d, want 9000", res.Combined.N)
	}
	// Each independent estimate must contain the true mean within its
	// own 3σ bound, and the estimates must not be identical (they come
	// from disjoint subsequences).
	means := map[float64]bool{}
	for i, rep := range res.Reports {
		m := rep.MeanAt(0, 0)
		if diff := math.Abs(m - 0.5); diff > rep.AbsErrAt(0, 0)*4/3 {
			t.Errorf("experiment %d: |mean-1/2| = %g exceeds bound %g", i, diff, rep.AbsErrAt(0, 0))
		}
		if means[m] {
			t.Errorf("experiments produced identical means %g — subsequences overlap?", m)
		}
		means[m] = true
	}
	// Pooled mean = volume-weighted average of the per-experiment means.
	var want float64
	for _, rep := range res.Reports {
		want += rep.MeanAt(0, 0) * float64(rep.N)
	}
	want /= float64(res.Combined.N)
	if math.Abs(res.Combined.MeanAt(0, 0)-want) > 1e-12 {
		t.Fatalf("combined mean %g, weighted average %g", res.Combined.MeanAt(0, 0), want)
	}
	// Pooling over 3× the volume tightens the bound by about √3.
	if res.Combined.AbsErrAt(0, 0) >= res.Reports[0].AbsErrAt(0, 0) {
		t.Fatal("combined error bound not tighter than single experiment")
	}
}

func TestRunExperimentsValidation(t *testing.T) {
	cfg := fastCfg(t.TempDir())
	if _, err := RunExperiments(context.Background(), cfg, nil, uniformFactory); err == nil {
		t.Error("empty seqnums accepted")
	}
	if _, err := RunExperiments(context.Background(), cfg, []uint64{1, 1}, uniformFactory); err == nil {
		t.Error("duplicate seqnums accepted")
	}
	cfg.Resume = true
	if _, err := RunExperiments(context.Background(), cfg, []uint64{0, 1}, uniformFactory); err == nil {
		t.Error("resume accepted")
	}
}

func TestRunExperimentsSeparateDirectories(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg(dir)
	cfg.MaxSamples = 100
	if _, err := RunExperiments(context.Background(), cfg, []uint64{5, 9}, uniformFactory); err != nil {
		t.Fatal(err)
	}
	for _, sq := range []string{"experiment-0005", "experiment-0009"} {
		if _, err := Manaver(dir + "/" + sq); err != nil {
			t.Errorf("experiment dir %s not usable: %v", sq, err)
		}
	}
}
