package sde

import (
	"fmt"
	"math"

	"parmonc/internal/rng"

	"parmonc/dist"
)

// Scalar1D describes a scalar SDE with state-dependent coefficients:
//
//	dy = a(t, y) dt + b(t, y) dw,
//
// with BPrime the derivative ∂b/∂y needed by the Milstein correction.
type Scalar1D struct {
	Y0     float64
	A      func(t, y float64) float64
	B      func(t, y float64) float64
	BPrime func(t, y float64) float64
}

// Validate checks the coefficients are present.
func (s Scalar1D) Validate() error {
	if s.A == nil || s.B == nil {
		return fmt.Errorf("sde: scalar system needs drift and diffusion")
	}
	return nil
}

// Scheme selects the integration scheme for scalar SDEs.
type Scheme int

const (
	// Euler is the Euler–Maruyama scheme of the paper (strong order
	// 1/2, weak order 1).
	Euler Scheme = iota
	// Milstein adds the ½·b·b'·(Δw²−h) correction (strong order 1) —
	// the natural refinement of formula (9) for multiplicative noise.
	Milstein
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Euler:
		return "euler"
	case Milstein:
		return "milstein"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// IntegrateScalar advances the scalar SDE from t = 0 to tEnd with mesh h
// under the chosen scheme and returns the terminal value. It draws
// exactly one normal (two base random numbers) per step.
func IntegrateScalar(src rng.Source, sys Scalar1D, scheme Scheme, h, tEnd float64) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if h <= 0 || tEnd <= 0 {
		return 0, fmt.Errorf("sde: mesh %g and horizon %g must be positive", h, tEnd)
	}
	if h > tEnd {
		return 0, fmt.Errorf("sde: mesh %g coarser than horizon %g", h, tEnd)
	}
	if scheme == Milstein && sys.BPrime == nil {
		return 0, fmt.Errorf("sde: Milstein scheme needs ∂b/∂y")
	}
	steps := int64(tEnd/h + 0.5)
	if steps < 1 {
		return 0, fmt.Errorf("sde: mesh coarser than horizon")
	}
	sqrtH := math.Sqrt(h)
	y := sys.Y0
	t := 0.0
	for k := int64(0); k < steps; k++ {
		dw := sqrtH * dist.StdNormal(src)
		a := sys.A(t, y)
		b := sys.B(t, y)
		y += a*h + b*dw
		if scheme == Milstein {
			y += 0.5 * b * sys.BPrime(t, y) * (dw*dw - h)
		}
		t += h
	}
	return y, nil
}

// GBM returns the geometric Brownian motion system
// dy = μ·y dt + σ·y dw with y(0) = y0 — the canonical multiplicative-
// noise test case with the exact solution
// y(t) = y0·exp((μ−σ²/2)t + σ·w(t)), E y(t) = y0·e^{μt}.
func GBM(mu, sigma, y0 float64) Scalar1D {
	return Scalar1D{
		Y0:     y0,
		A:      func(t, y float64) float64 { return mu * y },
		B:      func(t, y float64) float64 { return sigma * y },
		BPrime: func(t, y float64) float64 { return sigma },
	}
}

// StrongError estimates the strong (pathwise) error of a scheme on GBM
// at horizon tEnd and mesh h, by coupling the discretization to the
// exact solution driven by the same Brownian increments. It averages
// |y_h(T) − y_exact(T)| over n paths.
func StrongError(src rng.Source, mu, sigma, y0 float64, scheme Scheme, h, tEnd float64, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("sde: need at least one path")
	}
	sys := GBM(mu, sigma, y0)
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if scheme == Milstein && sys.BPrime == nil {
		return 0, fmt.Errorf("sde: Milstein scheme needs ∂b/∂y")
	}
	if h <= 0 || tEnd <= 0 || h > tEnd {
		return 0, fmt.Errorf("sde: invalid mesh %g for horizon %g", h, tEnd)
	}
	steps := int64(tEnd/h + 0.5)
	sqrtH := math.Sqrt(h)
	var sum float64
	for p := 0; p < n; p++ {
		y := y0
		w := 0.0
		t := 0.0
		for k := int64(0); k < steps; k++ {
			dw := sqrtH * dist.StdNormal(src)
			w += dw
			b := sigma * y
			y += mu*y*h + b*dw
			if scheme == Milstein {
				y += 0.5 * b * sigma * (dw*dw - h)
			}
			t += h
		}
		exact := y0 * math.Exp((mu-sigma*sigma/2)*t+sigma*w)
		sum += math.Abs(y - exact)
	}
	return sum / float64(n), nil
}
