// Package sde implements the stochastic-differential-equation substrate
// used by the paper's performance test (Sec. 4): simulation of
// trajectories of the system
//
//	dy(t) = C dt + D dw(t),  y(0) = y₀,
//
// by the generalized Euler (Euler–Maruyama) method (formula (9)):
//
//	y^(n+1) = y^(n) + h·C + √h·D·ξ^(n),
//
// where the ξ^(n) are independent standard normal vectors. The package
// supports general drift functions f(t, y), not just constants, so it
// also serves as a reusable integrator for other diffusion workloads.
//
// For the paper's test system the exact solution is known:
// E y(t) = y₀ + C·t and Cov y(t) = D·Dᵀ·t, which is what the tests and
// the experiment harness verify.
package sde

import (
	"fmt"
	"math"

	"parmonc/internal/rng"

	"parmonc/dist"
)

// Drift is a drift coefficient function f(t, y) writing into out.
type Drift func(t float64, y, out []float64)

// System describes a d-dimensional SDE with general drift and constant
// diffusion matrix D (d×d, row-major).
type System struct {
	Dim       int
	Y0        []float64 // initial state, length Dim
	Drift     Drift
	Diffusion []float64 // D, row-major Dim×Dim
}

// Validate checks structural consistency.
func (s System) Validate() error {
	if s.Dim <= 0 {
		return fmt.Errorf("sde: dimension %d must be positive", s.Dim)
	}
	if len(s.Y0) != s.Dim {
		return fmt.Errorf("sde: y0 has length %d, want %d", len(s.Y0), s.Dim)
	}
	if s.Drift == nil {
		return fmt.Errorf("sde: nil drift")
	}
	if len(s.Diffusion) != s.Dim*s.Dim {
		return fmt.Errorf("sde: diffusion matrix has %d entries, want %d", len(s.Diffusion), s.Dim*s.Dim)
	}
	return nil
}

// ConstDrift returns a Drift that is the constant vector c.
func ConstDrift(c []float64) Drift {
	cc := make([]float64, len(c))
	copy(cc, c)
	return func(t float64, y, out []float64) {
		copy(out, cc)
	}
}

// Integrator advances trajectories of a System with the Euler–Maruyama
// scheme. One Integrator may be reused across realizations on the same
// stream; it is not safe for concurrent use.
type Integrator struct {
	sys    System
	h      float64
	sqrtH  float64
	y      []float64
	drift  []float64
	xi     []float64
	t      float64
	steps  int64
	normal dist.Normal
}

// NewIntegrator returns an integrator with mesh size h > 0.
func NewIntegrator(sys System, h float64) (*Integrator, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("sde: mesh size %g must be positive", h)
	}
	it := &Integrator{
		sys:   sys,
		h:     h,
		y:     make([]float64, sys.Dim),
		drift: make([]float64, sys.Dim),
		xi:    make([]float64, sys.Dim),
	}
	it.sqrtH = math.Sqrt(h)
	it.Reset()
	return it, nil
}

// Reset returns the trajectory to t = 0, y = y₀. It also drops any
// cached normal variate so the next step depends only on the stream
// position.
func (it *Integrator) Reset() {
	copy(it.y, it.sys.Y0)
	it.t = 0
	it.steps = 0
	it.normal.Reset()
}

// T returns the current trajectory time.
func (it *Integrator) T() float64 { return it.t }

// Steps returns the number of Euler steps taken since Reset.
func (it *Integrator) Steps() int64 { return it.steps }

// Y returns the current state (a view, valid until the next Step).
func (it *Integrator) Y() []float64 { return it.y }

// Step advances one Euler–Maruyama step using base random numbers from
// src.
func (it *Integrator) Step(src rng.Source) {
	d := it.sys.Dim
	it.sys.Drift(it.t, it.y, it.drift)
	for i := 0; i < d; i++ {
		it.xi[i] = it.normal.Sample(src)
	}
	for i := 0; i < d; i++ {
		var noise float64
		row := it.sys.Diffusion[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			noise += row[j] * it.xi[j]
		}
		it.y[i] += it.h*it.drift[i] + it.sqrtH*noise
	}
	it.t += it.h
	it.steps++
}

// SampleTrajectory integrates from 0 to tEnd, recording the state at the
// nOut equally spaced output times t_i = i·tEnd/nOut, i = 1…nOut, into
// out (row-major nOut×Dim). This produces exactly the realization matrix
// [ζ_ij] of the paper's performance test. The mesh must divide the
// output interval; SampleTrajectory returns an error otherwise.
func (it *Integrator) SampleTrajectory(src rng.Source, tEnd float64, nOut int, out []float64) error {
	d := it.sys.Dim
	if nOut <= 0 {
		return fmt.Errorf("sde: nOut %d must be positive", nOut)
	}
	if len(out) != nOut*d {
		return fmt.Errorf("sde: out has %d entries, want %d×%d=%d", len(out), nOut, d, nOut*d)
	}
	if tEnd <= 0 {
		return fmt.Errorf("sde: tEnd %g must be positive", tEnd)
	}
	interval := tEnd / float64(nOut)
	stepsPerOut := int64(interval/it.h + 0.5)
	if stepsPerOut < 1 {
		return fmt.Errorf("sde: mesh %g coarser than output interval %g", it.h, interval)
	}
	const relTol = 1e-9
	if diff := interval - float64(stepsPerOut)*it.h; diff > relTol*interval || diff < -relTol*interval {
		return fmt.Errorf("sde: mesh %g does not divide output interval %g", it.h, interval)
	}
	it.Reset()
	for i := 0; i < nOut; i++ {
		for s := int64(0); s < stepsPerOut; s++ {
			it.Step(src)
		}
		copy(out[i*d:(i+1)*d], it.y)
	}
	return nil
}

// PaperSystem returns the 2-dimensional test system of Sec. 4:
//
//	y(0) = (5, 10),  C = (0.5, 1),  D = [[1.0, 0.2], [0.2, 1.0]].
//
// The paper typesets D ambiguously; a symmetric matrix with unit
// diagonal and 0.2 off-diagonal matches the printed digits ("1.0 0.2 /
// 0.2 1.0") and makes the components correlated, which is what a
// 2-dimensional demonstration wants. E y₁(t) = 5 + 0.5t and
// E y₂(t) = 10 + t regardless of D.
func PaperSystem() System {
	return System{
		Dim:       2,
		Y0:        []float64{5, 10},
		Drift:     ConstDrift([]float64{0.5, 1}),
		Diffusion: []float64{1.0, 0.2, 0.2, 1.0},
	}
}

// PaperRealization returns a Realization-shaped function for the paper's
// performance test: it fills a nOut×2 matrix with the trajectory sampled
// at t_i = i·tEnd/nOut using mesh h. This is the difftraj of the paper's
// example main program.
//
// Each call constructs no garbage beyond one integrator allocated up
// front; the returned closure is not safe for concurrent use, so the
// driver must be given a fresh one per worker (see NewPaperFactory).
func PaperRealization(h, tEnd float64, nOut int) (func(src *rng.Stream, out []float64) error, error) {
	it, err := NewIntegrator(PaperSystem(), h)
	if err != nil {
		return nil, err
	}
	return func(src *rng.Stream, out []float64) error {
		return it.SampleTrajectory(src, tEnd, nOut, out)
	}, nil
}
