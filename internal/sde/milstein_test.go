package sde

import (
	"math"
	"testing"
)

func TestIntegrateScalarValidation(t *testing.T) {
	s := stream(t)
	if _, err := IntegrateScalar(s, Scalar1D{}, Euler, 0.1, 1); err == nil {
		t.Error("missing coefficients accepted")
	}
	sys := GBM(0.1, 0.2, 1)
	if _, err := IntegrateScalar(s, sys, Euler, 0, 1); err == nil {
		t.Error("zero mesh accepted")
	}
	if _, err := IntegrateScalar(s, sys, Euler, 0.1, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	noDeriv := sys
	noDeriv.BPrime = nil
	if _, err := IntegrateScalar(s, noDeriv, Milstein, 0.1, 1); err == nil {
		t.Error("Milstein without derivative accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if Euler.String() != "euler" || Milstein.String() != "milstein" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme unnamed")
	}
}

func TestGBMWeakMean(t *testing.T) {
	// E y(1) = y0·e^{μ} for GBM regardless of σ; both schemes must hit
	// it within statistical error.
	const (
		mu, sigma, y0 = 0.5, 0.4, 1.0
		h             = 0.01
		n             = 40000
	)
	want := y0 * math.Exp(mu)
	for _, scheme := range []Scheme{Euler, Milstein} {
		s := stream(t)
		var sum float64
		for p := 0; p < n; p++ {
			y, err := IntegrateScalar(s, GBM(mu, sigma, y0), scheme, h, 1)
			if err != nil {
				t.Fatal(err)
			}
			sum += y
		}
		got := sum / n
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("%s: E y(1) = %g, want %g", scheme, got, want)
		}
	}
}

func TestMilsteinStrongOrderBeatsEuler(t *testing.T) {
	// At a fixed mesh the Milstein pathwise error on GBM must be well
	// below Euler's (strong order 1 vs 1/2).
	const (
		mu, sigma, y0 = 0.2, 0.5, 1.0
		h             = 0.01
		n             = 2000
	)
	s1 := stream(t)
	euler, err := StrongError(s1, mu, sigma, y0, Euler, h, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	s2 := stream(t)
	milstein, err := StrongError(s2, mu, sigma, y0, Milstein, h, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if milstein >= euler/2 {
		t.Fatalf("Milstein error %g not well below Euler %g", milstein, euler)
	}
}

func TestStrongErrorHalvesWithMeshForMilstein(t *testing.T) {
	// Strong order 1: halving h should roughly halve the error.
	const (
		mu, sigma, y0 = 0.2, 0.5, 1.0
		n             = 4000
	)
	s1 := stream(t)
	e1, err := StrongError(s1, mu, sigma, y0, Milstein, 0.02, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	s2 := stream(t)
	e2, err := StrongError(s2, mu, sigma, y0, Milstein, 0.01, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	ratio := e1 / e2
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("error ratio e(2h)/e(h) = %g, want ≈ 2", ratio)
	}
}

func TestEulerStrongOrderHalf(t *testing.T) {
	// Strong order 1/2: halving h shrinks the error by ≈ √2.
	const (
		mu, sigma, y0 = 0.2, 0.5, 1.0
		n             = 4000
	)
	s1 := stream(t)
	e1, err := StrongError(s1, mu, sigma, y0, Euler, 0.02, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	s2 := stream(t)
	e2, err := StrongError(s2, mu, sigma, y0, Euler, 0.01, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	ratio := e1 / e2
	if ratio < 1.2 || ratio > 1.7 {
		t.Fatalf("error ratio e(2h)/e(h) = %g, want ≈ √2", ratio)
	}
}

func TestStrongErrorValidation(t *testing.T) {
	s := stream(t)
	if _, err := StrongError(s, 0.1, 0.2, 1, Euler, 0.01, 1, 0); err == nil {
		t.Error("zero paths accepted")
	}
	if _, err := StrongError(s, 0.1, 0.2, 1, Euler, 2, 1, 10); err == nil {
		t.Error("mesh coarser than horizon accepted")
	}
}

func BenchmarkMilsteinGBM(b *testing.B) {
	s := stream(b)
	sys := GBM(0.2, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IntegrateScalar(s, sys, Milstein, 0.001, 1); err != nil {
			b.Fatal(err)
		}
	}
}
