package sde

import (
	"context"
	"math"
	"testing"

	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemValidate(t *testing.T) {
	good := PaperSystem()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []System{
		{Dim: 0},
		{Dim: 2, Y0: []float64{1}, Drift: ConstDrift([]float64{0, 0}), Diffusion: make([]float64, 4)},
		{Dim: 2, Y0: []float64{1, 2}, Drift: nil, Diffusion: make([]float64, 4)},
		{Dim: 2, Y0: []float64{1, 2}, Drift: ConstDrift([]float64{0, 0}), Diffusion: make([]float64, 3)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewIntegratorRejectsBadMesh(t *testing.T) {
	for _, h := range []float64{0, -0.1} {
		if _, err := NewIntegrator(PaperSystem(), h); err == nil {
			t.Errorf("h = %g: expected error", h)
		}
	}
}

func TestDeterministicDriftNoNoise(t *testing.T) {
	// With D = 0 the scheme is plain Euler: y(t) = y0 + C·t exactly for
	// constant drift.
	sys := System{
		Dim:       2,
		Y0:        []float64{1, 2},
		Drift:     ConstDrift([]float64{3, -1}),
		Diffusion: make([]float64, 4), // zero matrix
	}
	it, err := NewIntegrator(sys, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	for i := 0; i < 100; i++ {
		it.Step(s)
	}
	y := it.Y()
	if math.Abs(y[0]-4) > 1e-9 || math.Abs(y[1]-1) > 1e-9 {
		t.Fatalf("y(1) = %v, want (4, 1)", y)
	}
	if math.Abs(it.T()-1) > 1e-9 {
		t.Fatalf("t = %g", it.T())
	}
	if it.Steps() != 100 {
		t.Fatalf("steps = %d", it.Steps())
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	it, err := NewIntegrator(PaperSystem(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	for i := 0; i < 10; i++ {
		it.Step(s)
	}
	it.Reset()
	if it.T() != 0 || it.Steps() != 0 {
		t.Fatal("time not reset")
	}
	y := it.Y()
	if y[0] != 5 || y[1] != 10 {
		t.Fatalf("y = %v after reset", y)
	}
}

func TestSampleTrajectoryShape(t *testing.T) {
	it, err := NewIntegrator(PaperSystem(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 10*2)
	if err := it.SampleTrajectory(stream(t), 1.0, 10, out); err != nil {
		t.Fatal(err)
	}
	// All outputs finite, and both components moved off their start.
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("out[%d] = %g", i, v)
		}
	}
}

func TestSampleTrajectoryErrors(t *testing.T) {
	it, err := NewIntegrator(PaperSystem(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	out := make([]float64, 20)
	if err := it.SampleTrajectory(s, 1.0, 10, out); err == nil {
		t.Error("mesh 0.3 does not divide 0.1 output interval: expected error")
	}
	if err := it.SampleTrajectory(s, 1.0, 0, nil); err == nil {
		t.Error("nOut 0: expected error")
	}
	if err := it.SampleTrajectory(s, -1, 10, out); err == nil {
		t.Error("negative tEnd: expected error")
	}
	if err := it.SampleTrajectory(s, 1.0, 10, out[:5]); err == nil {
		t.Error("short out: expected error")
	}
}

func TestWeakConvergenceToExactMean(t *testing.T) {
	// E y(t) = y0 + C·t for the paper system. Run the full PARMONC
	// pipeline at small scale and check every output time.
	const (
		nOut = 20
		tEnd = 2.0
		h    = 0.01
		L    = 2000
	)
	cfg := core.Config{
		Nrow:       nOut,
		Ncol:       2,
		MaxSamples: L,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.RunFactory(context.Background(), cfg, func(int) (core.Realization, error) {
		return PaperRealization(h, tEnd, nOut)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nOut; i++ {
		ti := tEnd * float64(i+1) / nOut
		want1 := 5 + 0.5*ti
		want2 := 10 + 1.0*ti
		got1 := res.Report.MeanAt(i, 0)
		got2 := res.Report.MeanAt(i, 1)
		// 4σ statistical tolerance plus O(h) bias allowance.
		tol1 := res.Report.AbsErrAt(i, 0)*4/3 + 5*h
		tol2 := res.Report.AbsErrAt(i, 1)*4/3 + 5*h
		if math.Abs(got1-want1) > tol1 {
			t.Errorf("E y1(%g) = %g, want %g ± %g", ti, got1, want1, tol1)
		}
		if math.Abs(got2-want2) > tol2 {
			t.Errorf("E y2(%g) = %g, want %g ± %g", ti, got2, want2, tol2)
		}
	}
	// Variance of y_i(t) is (DDᵀ)_ii·t = (1 + 0.04)·t.
	tN := tEnd
	wantVar := 1.04 * tN
	if got := res.Report.VarAt(nOut-1, 0); math.Abs(got-wantVar)/wantVar > 0.2 {
		t.Errorf("Var y1(%g) = %g, want ≈ %g", tN, got, wantVar)
	}
}

func TestTimeDependentDrift(t *testing.T) {
	// dy = 2t dt (no noise) → y(t) = t².
	sys := System{
		Dim: 1,
		Y0:  []float64{0},
		Drift: func(tt float64, y, out []float64) {
			out[0] = 2 * tt
		},
		Diffusion: []float64{0},
	}
	it, err := NewIntegrator(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	for it.T() < 1-1e-12 {
		it.Step(s)
	}
	if got := it.Y()[0]; math.Abs(got-1) > 1e-3 {
		t.Fatalf("y(1) = %g, want 1 (Euler bias O(h))", got)
	}
}

func TestPaperRealizationMatchesDims(t *testing.T) {
	r, err := PaperRealization(0.01, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 20)
	if err := r(stream(t), out); err != nil {
		t.Fatal(err)
	}
	if err := r(stream(t), out[:3]); err == nil {
		t.Fatal("short out: expected error")
	}
}

func TestRealizationsReproducible(t *testing.T) {
	// Same stream coordinate → identical trajectory, regardless of what
	// ran before on a different integrator instance.
	r1, err := PaperRealization(0.01, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PaperRealization(0.01, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 10)
	b := make([]float64, 10)
	s1 := stream(t)
	s2 := stream(t)
	// Warm r2's integrator with a junk run on another coordinate first.
	junk, err := rng.NewStream(rng.DefaultParams(), rng.Coord{Realization: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2(junk, b); err != nil {
		t.Fatal(err)
	}
	if err := r1(s1, a); err != nil {
		t.Fatal(err)
	}
	if err := r2(s2, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func BenchmarkStep2D(b *testing.B) {
	it, err := NewIntegrator(PaperSystem(), 0.001)
	if err != nil {
		b.Fatal(err)
	}
	s := stream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step(s)
	}
}

func BenchmarkPaperRealization(b *testing.B) {
	r, err := PaperRealization(0.001, 1.0, 100)
	if err != nil {
		b.Fatal(err)
	}
	s := stream(b)
	out := make([]float64, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
