// Package u128 implements 128-bit unsigned integer arithmetic modulo 2^128.
//
// The PARMONC base generator (Marchenko, PaCT 2011, Sec. 2.4) is the
// multiplicative congruential generator
//
//	u_{k+1} = u_k · A  (mod 2^128),  A = 5^101 (mod 2^128),
//
// so every operation the library needs — multiplication, exponentiation,
// and conversion of states to floating point — is arithmetic in the ring
// Z/2^128. This package provides exactly that ring, plus the parsing and
// formatting needed to read and write generator parameter files.
//
// A Uint128 is a value type; all operations return new values and no
// operation allocates.
package u128

import (
	"fmt"
	"math/bits"
	"strings"
)

// Uint128 is an unsigned 128-bit integer. The zero value is 0.
type Uint128 struct {
	Hi uint64 // most significant 64 bits
	Lo uint64 // least significant 64 bits
}

// Common small constants.
var (
	Zero = Uint128{}
	One  = Uint128{Lo: 1}
)

// New returns the Uint128 with the given high and low 64-bit halves.
func New(hi, lo uint64) Uint128 { return Uint128{Hi: hi, Lo: lo} }

// From64 returns the Uint128 equal to x.
func From64(x uint64) Uint128 { return Uint128{Lo: x} }

// IsZero reports whether x == 0.
func (x Uint128) IsZero() bool { return x.Hi == 0 && x.Lo == 0 }

// Eq reports whether x == y.
func (x Uint128) Eq(y Uint128) bool { return x.Hi == y.Hi && x.Lo == y.Lo }

// Cmp returns -1, 0 or +1 according to whether x < y, x == y or x > y.
func (x Uint128) Cmp(y Uint128) int {
	switch {
	case x.Hi != y.Hi:
		if x.Hi < y.Hi {
			return -1
		}
		return 1
	case x.Lo != y.Lo:
		if x.Lo < y.Lo {
			return -1
		}
		return 1
	}
	return 0
}

// Add returns x + y mod 2^128.
func (x Uint128) Add(y Uint128) Uint128 {
	lo, carry := bits.Add64(x.Lo, y.Lo, 0)
	hi, _ := bits.Add64(x.Hi, y.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}
}

// Sub returns x - y mod 2^128.
func (x Uint128) Sub(y Uint128) Uint128 {
	lo, borrow := bits.Sub64(x.Lo, y.Lo, 0)
	hi, _ := bits.Sub64(x.Hi, y.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}
}

// Mul returns x · y mod 2^128.
//
// This is the core operation of the PARMONC generator: one 128×128→128
// bit multiply per random number. It compiles to four 64-bit multiplies.
func (x Uint128) Mul(y Uint128) Uint128 {
	hi, lo := bits.Mul64(x.Lo, y.Lo)
	hi += x.Hi*y.Lo + x.Lo*y.Hi
	return Uint128{Hi: hi, Lo: lo}
}

// Lsh returns x << n mod 2^128. Shifts of 128 or more return zero.
func (x Uint128) Lsh(n uint) Uint128 {
	switch {
	case n >= 128:
		return Zero
	case n >= 64:
		return Uint128{Hi: x.Lo << (n - 64)}
	case n == 0:
		return x
	default:
		return Uint128{Hi: x.Hi<<n | x.Lo>>(64-n), Lo: x.Lo << n}
	}
}

// Rsh returns x >> n. Shifts of 128 or more return zero.
func (x Uint128) Rsh(n uint) Uint128 {
	switch {
	case n >= 128:
		return Zero
	case n >= 64:
		return Uint128{Lo: x.Hi >> (n - 64)}
	case n == 0:
		return x
	default:
		return Uint128{Hi: x.Hi >> n, Lo: x.Lo>>n | x.Hi<<(64-n)}
	}
}

// Bit returns the value of the i-th bit of x (bit 0 is least significant).
// Bits at positions 128 and above are zero.
func (x Uint128) Bit(i uint) uint {
	switch {
	case i >= 128:
		return 0
	case i >= 64:
		return uint(x.Hi>>(i-64)) & 1
	default:
		return uint(x.Lo>>i) & 1
	}
}

// BitLen returns the number of bits required to represent x; the bit
// length of 0 is 0.
func (x Uint128) BitLen() int {
	if x.Hi != 0 {
		return 128 - bits.LeadingZeros64(x.Hi)
	}
	return 64 - bits.LeadingZeros64(x.Lo)
}

// TrailingZeros returns the number of trailing zero bits in x;
// TrailingZeros(0) is 128.
func (x Uint128) TrailingZeros() int {
	if x.Lo != 0 {
		return bits.TrailingZeros64(x.Lo)
	}
	if x.Hi != 0 {
		return 64 + bits.TrailingZeros64(x.Hi)
	}
	return 128
}

// Exp returns base^exp mod 2^128 by binary square-and-multiply.
// By convention Exp(b, 0) == 1 for every b, including b == 0.
func Exp(base Uint128, exp Uint128) Uint128 {
	result := One
	b := base
	n := exp.BitLen()
	for i := 0; i < n; i++ {
		if exp.Bit(uint(i)) == 1 {
			result = result.Mul(b)
		}
		b = b.Mul(b)
	}
	return result
}

// ExpUint returns base^exp mod 2^128 for a machine-word exponent.
func ExpUint(base Uint128, exp uint64) Uint128 {
	return Exp(base, From64(exp))
}

// ExpPow2 returns base^(2^k) mod 2^128, i.e. base squared k times.
// For k >= 128 the result is base^(2^k) where the exponent wraps the
// group order; callers pass k < 128 in practice (PARMONC leap lengths
// are powers of two below the generator period).
func ExpPow2(base Uint128, k uint) Uint128 {
	r := base
	for i := uint(0); i < k; i++ {
		r = r.Mul(r)
	}
	return r
}

// Float64 returns x · 2^-128 as a float64 in [0, 1).
//
// This is the conversion the paper's rnd128 performs: the generator state
// u_k interpreted as the base random number α_k = u_k·2^-r with r = 128.
// The result is 0 only for x == 0, which the generator never produces
// (states are odd).
func (x Uint128) Float64() float64 {
	const twoNeg64 = 1.0 / (1 << 32) / (1 << 32)
	return (float64(x.Hi) + float64(x.Lo)*twoNeg64) * twoNeg64
}

// String returns the decimal representation of x.
func (x Uint128) String() string {
	if x.Hi == 0 {
		return fmt.Sprintf("%d", x.Lo)
	}
	// Repeatedly divide by 10^19 (the largest power of ten below 2^64).
	const chunk = 10_000_000_000_000_000_000
	var parts []string
	v := x
	for v.Hi != 0 {
		q, r := v.divmod64(chunk)
		parts = append(parts, fmt.Sprintf("%019d", r))
		v = q
	}
	parts = append(parts, fmt.Sprintf("%d", v.Lo))
	// parts are little-endian chunks; reverse.
	var sb strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		sb.WriteString(parts[i])
	}
	return sb.String()
}

// Hex returns the 32-digit zero-padded hexadecimal representation of x.
func (x Uint128) Hex() string {
	return fmt.Sprintf("%016x%016x", x.Hi, x.Lo)
}

// divmod64 returns (x / d, x mod d) for a 64-bit divisor d.
func (x Uint128) divmod64(d uint64) (q Uint128, r uint64) {
	if d == 0 {
		panic("u128: division by zero")
	}
	qHi := x.Hi / d
	rem := x.Hi % d
	qLo, rem2 := bits.Div64(rem, x.Lo, d)
	return Uint128{Hi: qHi, Lo: qLo}, rem2
}

// ParseDecimal parses a non-negative decimal integer into a Uint128.
// It returns an error on empty input, non-digit characters, or overflow
// past 2^128-1.
func ParseDecimal(s string) (Uint128, error) {
	if s == "" {
		return Zero, fmt.Errorf("u128: empty decimal string")
	}
	var v Uint128
	ten := From64(10)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return Zero, fmt.Errorf("u128: invalid decimal digit %q in %q", c, s)
		}
		// v = v*10 + digit, with overflow detection.
		next := v.Mul(ten)
		if next.Cmp(v) < 0 && !v.IsZero() {
			return Zero, fmt.Errorf("u128: decimal %q overflows 128 bits", s)
		}
		// Detect v*10 overflow properly: v > (2^128-1)/10.
		if v.Cmp(maxDiv10) > 0 {
			return Zero, fmt.Errorf("u128: decimal %q overflows 128 bits", s)
		}
		d := From64(uint64(c - '0'))
		sum := next.Add(d)
		if sum.Cmp(next) < 0 {
			return Zero, fmt.Errorf("u128: decimal %q overflows 128 bits", s)
		}
		v = sum
	}
	return v, nil
}

// maxDiv10 is (2^128 - 1) / 10.
var maxDiv10 = Uint128{Hi: 0x1999999999999999, Lo: 0x9999999999999999}

// ParseHex parses a hexadecimal string (without 0x prefix, up to 32
// digits) into a Uint128.
func ParseHex(s string) (Uint128, error) {
	if s == "" || len(s) > 32 {
		return Zero, fmt.Errorf("u128: hex string %q must have 1..32 digits", s)
	}
	var v Uint128
	for i := 0; i < len(s); i++ {
		var d uint64
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return Zero, fmt.Errorf("u128: invalid hex digit %q in %q", c, s)
		}
		v = v.Lsh(4).Add(From64(d))
	}
	return v, nil
}

// DivMod returns (x / y, x mod y) for y != 0, by binary long division.
// It panics on division by zero (a programming error, like the built-in
// integer division).
func (x Uint128) DivMod(y Uint128) (q, r Uint128) {
	if y.IsZero() {
		panic("u128: division by zero")
	}
	if x.Cmp(y) < 0 {
		return Zero, x
	}
	if y.Hi == 0 {
		// Fast path via 64-bit divisor.
		q, r64 := x.divmod64(y.Lo)
		return q, From64(r64)
	}
	// Binary long division: y.Hi != 0, so the quotient fits in 64 bits
	// and at most 64 iterations are needed.
	shift := x.BitLen() - y.BitLen()
	d := y.Lsh(uint(shift))
	for i := shift; i >= 0; i-- {
		q = q.Lsh(1)
		if d.Cmp(x) <= 0 {
			x = x.Sub(d)
			q = q.Add(One)
		}
		d = d.Rsh(1)
	}
	return q, x
}

// Div returns x / y.
func (x Uint128) Div(y Uint128) Uint128 {
	q, _ := x.DivMod(y)
	return q
}

// Mod returns x mod y.
func (x Uint128) Mod(y Uint128) Uint128 {
	_, r := x.DivMod(y)
	return r
}
