package u128

import (
	"math/big"
	"testing"
)

func FuzzParseDecimal(f *testing.F) {
	f.Add("0")
	f.Add("1")
	f.Add("340282366920938463463374607431768211455")
	f.Add("340282366920938463463374607431768211456")
	f.Add("00000000000000000000000000000000000000001")
	f.Add("deadbeef")
	f.Add("-1")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseDecimal(s)
		if err != nil {
			return
		}
		// Any accepted string must round-trip through big.Int and fit
		// in 128 bits.
		want, ok := new(big.Int).SetString(s, 10)
		if !ok {
			t.Fatalf("accepted %q that big.Int rejects", s)
		}
		if want.Sign() < 0 || want.BitLen() > 128 {
			t.Fatalf("accepted out-of-range %q", s)
		}
		if got := toBig(v); got.Cmp(want) != 0 {
			t.Fatalf("ParseDecimal(%q) = %s, want %s", s, got, want)
		}
	})
}

func FuzzParseHex(f *testing.F) {
	f.Add("0")
	f.Add("ffffffffffffffffffffffffffffffff")
	f.Add("123456789abcdefABCDEF")
	f.Add("xyz")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseHex(s)
		if err != nil {
			return
		}
		want, ok := new(big.Int).SetString(s, 16)
		if !ok {
			t.Fatalf("accepted %q that big.Int rejects", s)
		}
		if got := toBig(v); got.Cmp(want) != 0 {
			t.Fatalf("ParseHex(%q) = %s, want %s", s, got, want)
		}
		// Round trip: formatting the value and reparsing must agree.
		back, err := ParseHex(v.Hex())
		if err != nil || !back.Eq(v) {
			t.Fatalf("hex round trip failed for %q", s)
		}
	})
}
