package u128

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// toBig converts a Uint128 to *big.Int for cross-checking.
func toBig(x Uint128) *big.Int {
	b := new(big.Int).SetUint64(x.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(x.Lo))
}

// fromBig reduces a *big.Int mod 2^128 into a Uint128.
func fromBig(b *big.Int) Uint128 {
	m := new(big.Int).Mod(b, mod128())
	lo := new(big.Int).And(m, new(big.Int).SetUint64(^uint64(0)))
	hi := new(big.Int).Rsh(m, 64)
	return Uint128{Hi: hi.Uint64(), Lo: lo.Uint64()}
}

func mod128() *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), 128)
}

// Generate makes Uint128 a quick.Generator so property tests draw
// uniformly random 128-bit values.
func (x Uint128) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(Uint128{Hi: r.Uint64(), Lo: r.Uint64()})
}

var _ quick.Generator = Uint128{}

func TestAddMatchesBig(t *testing.T) {
	f := func(x, y Uint128) bool {
		got := x.Add(y)
		want := fromBig(new(big.Int).Add(toBig(x), toBig(y)))
		return got.Eq(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(x, y Uint128) bool {
		got := x.Sub(y)
		want := fromBig(new(big.Int).Sub(toBig(x), toBig(y)))
		return got.Eq(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(x, y Uint128) bool {
		got := x.Mul(y)
		want := fromBig(new(big.Int).Mul(toBig(x), toBig(y)))
		return got.Eq(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(x, y Uint128) bool { return x.Mul(y).Eq(y.Mul(x)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(x, y, z Uint128) bool { return x.Mul(y).Mul(z).Eq(x.Mul(y.Mul(z))) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(x, y Uint128) bool { return x.Add(y).Sub(y).Eq(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMatchesBig(t *testing.T) {
	f := func(base Uint128, e uint16) bool {
		got := ExpUint(base, uint64(e))
		want := fromBig(new(big.Int).Exp(toBig(base), big.NewInt(int64(e)), mod128()))
		return got.Eq(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpZeroExponent(t *testing.T) {
	for _, b := range []Uint128{Zero, One, New(^uint64(0), ^uint64(0)), From64(5)} {
		if got := Exp(b, Zero); !got.Eq(One) {
			t.Errorf("Exp(%v, 0) = %v, want 1", b, got)
		}
	}
}

func TestExpPow2MatchesExp(t *testing.T) {
	base := From64(5)
	for k := uint(0); k < 20; k++ {
		want := Exp(base, One.Lsh(k))
		got := ExpPow2(base, k)
		if !got.Eq(want) {
			t.Errorf("ExpPow2(5, %d) = %v, want %v", k, got, want)
		}
	}
}

func TestExpAdditionLaw(t *testing.T) {
	// base^(m+n) == base^m · base^n — the identity behind substream leaps.
	f := func(base Uint128, m, n uint16) bool {
		lhs := ExpUint(base, uint64(m)+uint64(n))
		rhs := ExpUint(base, uint64(m)).Mul(ExpUint(base, uint64(n)))
		return lhs.Eq(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShifts(t *testing.T) {
	f := func(x Uint128, nRaw uint8) bool {
		n := uint(nRaw) % 140
		wantL := fromBig(new(big.Int).Lsh(toBig(x), n))
		wantR := fromBig(new(big.Int).Rsh(toBig(x), n))
		return x.Lsh(n).Eq(wantL) && x.Rsh(n).Eq(wantR)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBit(t *testing.T) {
	x := New(0x8000000000000001, 0x0000000000000003)
	cases := []struct {
		i    uint
		want uint
	}{
		{0, 1}, {1, 1}, {2, 0}, {63, 0}, {64, 1}, {65, 0}, {127, 1}, {128, 0}, {200, 0},
	}
	for _, c := range cases {
		if got := x.Bit(c.i); got != c.want {
			t.Errorf("Bit(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		x    Uint128
		want int
	}{
		{Zero, 0},
		{One, 1},
		{From64(255), 8},
		{New(1, 0), 65},
		{New(1<<63, 0), 128},
	}
	for _, c := range cases {
		if got := c.x.BitLen(); got != c.want {
			t.Errorf("BitLen(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestTrailingZeros(t *testing.T) {
	cases := []struct {
		x    Uint128
		want int
	}{
		{Zero, 128},
		{One, 0},
		{From64(8), 3},
		{New(1, 0), 64},
		{New(1<<5, 0), 69},
	}
	for _, c := range cases {
		if got := c.x.TrailingZeros(); got != c.want {
			t.Errorf("TrailingZeros(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestStringMatchesBig(t *testing.T) {
	f := func(x Uint128) bool { return x.String() == toBig(x).String() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringKnownValues(t *testing.T) {
	cases := []struct {
		x    Uint128
		want string
	}{
		{Zero, "0"},
		{One, "1"},
		{From64(^uint64(0)), "18446744073709551615"},
		{New(1, 0), "18446744073709551616"},
		{New(^uint64(0), ^uint64(0)), "340282366920938463463374607431768211455"},
	}
	for _, c := range cases {
		if got := c.x.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.x, got, c.want)
		}
	}
}

func TestParseDecimalRoundTrip(t *testing.T) {
	f := func(x Uint128) bool {
		v, err := ParseDecimal(x.String())
		return err == nil && v.Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDecimalErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"12a",
		"-5",
		"340282366920938463463374607431768211456",  // 2^128
		"9340282366920938463463374607431768211455", // way over
	} {
		if _, err := ParseDecimal(s); err == nil {
			t.Errorf("ParseDecimal(%q): expected error", s)
		}
	}
}

func TestParseDecimalMax(t *testing.T) {
	v, err := ParseDecimal("340282366920938463463374607431768211455")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Eq(New(^uint64(0), ^uint64(0))) {
		t.Errorf("max parse = %v", v)
	}
}

func TestHexRoundTrip(t *testing.T) {
	f := func(x Uint128) bool {
		v, err := ParseHex(x.Hex())
		return err == nil && v.Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseHexErrors(t *testing.T) {
	for _, s := range []string{"", "xyz", "123456789012345678901234567890123"} {
		if _, err := ParseHex(s); err == nil {
			t.Errorf("ParseHex(%q): expected error", s)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(x Uint128) bool {
		v := x.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64KnownValues(t *testing.T) {
	if got := Zero.Float64(); got != 0 {
		t.Errorf("0.Float64() = %g", got)
	}
	// 2^127 · 2^-128 = 0.5
	if got := New(1<<63, 0).Float64(); got != 0.5 {
		t.Errorf("2^127·2^-128 = %g, want 0.5", got)
	}
	// 2^64 · 2^-128 = 2^-64
	if got := New(1, 0).Float64(); got != 1.0/(1<<32)/(1<<32) {
		t.Errorf("2^64·2^-128 = %g", got)
	}
	// Smallest positive state value: strictly positive.
	if got := One.Float64(); got <= 0 {
		t.Errorf("1·2^-128 = %g, want > 0", got)
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		x, y Uint128
		want int
	}{
		{Zero, Zero, 0},
		{One, Zero, 1},
		{Zero, One, -1},
		{New(1, 0), From64(^uint64(0)), 1},
		{From64(^uint64(0)), New(1, 0), -1},
		{New(2, 3), New(2, 3), 0},
	}
	for _, c := range cases {
		if got := c.x.Cmp(c.y); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestDivmod64(t *testing.T) {
	f := func(x Uint128, dRaw uint64) bool {
		d := dRaw | 1 // avoid zero
		q, r := x.divmod64(d)
		bd := new(big.Int).SetUint64(d)
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), bd, new(big.Int))
		return q.Eq(fromBig(wantQ)) && r == wantR.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivmodByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on division by zero")
		}
	}()
	One.divmod64(0)
}

func BenchmarkMul(b *testing.B) {
	x := New(0x0123456789abcdef, 0xfedcba9876543210)
	y := New(0x0fedcba987654321, 0x123456789abcdef0)
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	benchSink = x
}

func BenchmarkExpPow2_115(b *testing.B) {
	base := From64(5)
	for i := 0; i < b.N; i++ {
		benchSink = ExpPow2(base, 115)
	}
}

var benchSink Uint128

func TestDivModMatchesBig(t *testing.T) {
	f := func(x, y Uint128) bool {
		if y.IsZero() {
			return true
		}
		q, r := x.DivMod(y)
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		return toBig(q).Cmp(wantQ) == 0 && toBig(r).Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivModSmallDivisorsMatchBig(t *testing.T) {
	// Exercise the 64-bit fast path against big.Int.
	f := func(x Uint128, yRaw uint64) bool {
		y := From64(yRaw | 1)
		q, r := x.DivMod(y)
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		return toBig(q).Cmp(wantQ) == 0 && toBig(r).Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivModIdentity(t *testing.T) {
	// x == q·y + r with r < y.
	f := func(x, y Uint128) bool {
		if y.IsZero() {
			return true
		}
		q, r := x.DivMod(y)
		if r.Cmp(y) >= 0 {
			return false
		}
		return q.Mul(y).Add(r).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivModEdgeCases(t *testing.T) {
	max := New(^uint64(0), ^uint64(0))
	if q := max.Div(One); !q.Eq(max) {
		t.Fatalf("max/1 = %s", q)
	}
	if q := max.Div(max); !q.Eq(One) {
		t.Fatalf("max/max = %s", q)
	}
	if r := One.Mod(max); !r.Eq(One) {
		t.Fatalf("1 mod max = %s", r)
	}
	if q := Zero.Div(max); !q.IsZero() {
		t.Fatalf("0/max = %s", q)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	One.DivMod(Zero)
}
