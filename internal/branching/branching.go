// Package branching implements a Galton–Watson branching process — the
// population biology application the paper highlights (the MONC
// predecessor library "was actively applied ... to solve various
// problems in the population biology").
//
// A population starts with Z₀ = 1 individual; each individual leaves a
// Poisson(μ) number of offspring independently. Two classical exact
// results make the module verifiable:
//
//   - E Z_n = μⁿ (mean growth),
//   - the extinction probability q is the smallest root of
//     q = exp(μ(q−1)) (for μ > 1, q < 1; for μ ≤ 1, q = 1).
package branching

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Process describes a Galton–Watson process with Poisson(Mu) offspring.
type Process struct {
	Mu          float64 // mean offspring count (> 0)
	Generations int     // generations to simulate per realization
	PopCap      int64   // explosion guard; population beyond this counts as "survived" (default 1e6)
}

// Validate checks the process invariants.
func (p Process) Validate() error {
	if p.Mu <= 0 {
		return fmt.Errorf("branching: offspring mean %g must be positive", p.Mu)
	}
	if p.Generations < 1 {
		return fmt.Errorf("branching: generations %d must be >= 1", p.Generations)
	}
	if p.PopCap < 0 {
		return fmt.Errorf("branching: negative population cap")
	}
	return nil
}

// Outcome indexes the realization vector: the population size after
// Generations steps and the extinct-by-then indicator.
const (
	FinalPopulation = iota
	Extinct
	NOutcomes
)

// Realize simulates one lineage and writes [Z_n, extinct?] into out.
// Population is evolved generation by generation; once the population
// exceeds PopCap the line is deemed to survive and growth is cut short
// (the contribution to E Z_n is then an undercount, so tests use
// parameters where the cap is effectively never hit).
func (p Process) Realize(src dist.Source, out []float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(out) != NOutcomes {
		return fmt.Errorf("branching: out has length %d, want %d", len(out), NOutcomes)
	}
	popCap := p.PopCap
	if popCap == 0 {
		popCap = 1_000_000
	}
	z := int64(1)
	for g := 0; g < p.Generations && z > 0; g++ {
		if z > popCap {
			break
		}
		// Sum of z i.i.d. Poisson(μ) is Poisson(z·μ): one draw instead
		// of z, keeping heavy supercritical lineages cheap and exact.
		z = dist.Poisson(src, float64(z)*p.Mu)
	}
	out[FinalPopulation] = float64(z)
	if z == 0 {
		out[Extinct] = 1
	}
	return nil
}

// MeanPopulation returns E Z_n = μⁿ.
func (p Process) MeanPopulation() float64 {
	return math.Pow(p.Mu, float64(p.Generations))
}

// ExtinctionProbability returns the ultimate extinction probability: the
// smallest non-negative root of q = exp(μ(q−1)), found by fixed-point
// iteration (monotone from 0). For μ ≤ 1 it returns 1.
func (p Process) ExtinctionProbability() float64 {
	if p.Mu <= 1 {
		return 1
	}
	q := 0.0
	for i := 0; i < 200; i++ {
		next := math.Exp(p.Mu * (q - 1))
		if math.Abs(next-q) < 1e-15 {
			return next
		}
		q = next
	}
	return q
}
