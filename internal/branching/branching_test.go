package branching

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (Process{Mu: 1.5, Generations: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Process{
		{Mu: 0, Generations: 10},
		{Mu: -1, Generations: 10},
		{Mu: 1, Generations: 0},
		{Mu: 1, Generations: 5, PopCap: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRealizeOutLength(t *testing.T) {
	p := Process{Mu: 1, Generations: 3}
	if err := p.Realize(stream(t), make([]float64, 1)); err == nil {
		t.Fatal("wrong out length accepted")
	}
}

func TestExtinctionConsistency(t *testing.T) {
	p := Process{Mu: 0.8, Generations: 30}
	s := stream(t)
	out := make([]float64, NOutcomes)
	for i := 0; i < 2000; i++ {
		if err := p.Realize(s, out); err != nil {
			t.Fatal(err)
		}
		extinct := out[Extinct] == 1
		if extinct != (out[FinalPopulation] == 0) {
			t.Fatalf("inconsistent outcome: pop=%g extinct=%g", out[FinalPopulation], out[Extinct])
		}
		out[0], out[1] = 0, 0
	}
}

func TestSubcriticalDiesOut(t *testing.T) {
	// μ < 1: extinction probability 1; with 30 generations virtually
	// every lineage is gone.
	p := Process{Mu: 0.7, Generations: 30}
	if got := p.ExtinctionProbability(); got != 1 {
		t.Fatalf("q = %g, want 1", got)
	}
	s := stream(t)
	out := make([]float64, NOutcomes)
	extinct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		out[0], out[1] = 0, 0
		if err := p.Realize(s, out); err != nil {
			t.Fatal(err)
		}
		if out[Extinct] == 1 {
			extinct++
		}
	}
	if frac := float64(extinct) / n; frac < 0.99 {
		t.Fatalf("extinct fraction %g, want ≈ 1", frac)
	}
}

func TestSupercriticalExtinctionProbability(t *testing.T) {
	// μ = 1.5: q solves q = exp(1.5(q−1)). Fixed point ≈ 0.41718.
	p := Process{Mu: 1.5, Generations: 40}
	q := p.ExtinctionProbability()
	// The root must satisfy its own equation.
	if math.Abs(q-math.Exp(p.Mu*(q-1))) > 1e-12 {
		t.Fatalf("q = %g does not satisfy fixed point", q)
	}
	if q < 0.40 || q > 0.44 {
		t.Fatalf("q = %g outside expected bracket", q)
	}

	// Full pipeline: the extinct-by-generation-40 fraction estimates q.
	cfg := core.Config{
		Nrow: 1, Ncol: NOutcomes,
		MaxSamples: 20000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return p.Realize(src, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report.MeanAt(0, Extinct)
	if math.Abs(got-q) > res.Report.AbsErrAt(0, Extinct)*4/3+0.002 {
		t.Fatalf("extinct fraction %g, want %g ± %g", got, q, res.Report.AbsErrAt(0, Extinct))
	}
}

func TestMeanGrowthCritical(t *testing.T) {
	// μ = 1: E Z_n = 1 for every n.
	p := Process{Mu: 1, Generations: 10}
	if got := p.MeanPopulation(); got != 1 {
		t.Fatalf("E Z_n = %g", got)
	}
	s := stream(t)
	out := make([]float64, NOutcomes)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		out[0], out[1] = 0, 0
		if err := p.Realize(s, out); err != nil {
			t.Fatal(err)
		}
		sum += out[FinalPopulation]
	}
	// Var Z_n grows linearly in n at criticality (σ² = μ = 1): n=10
	// gives Var ≈ 10, so 5σ/√50000 ≈ 0.07.
	if mean := sum / n; math.Abs(mean-1) > 0.1 {
		t.Fatalf("E Z_10 = %g, want 1", mean)
	}
}

func TestMeanGrowthSupercritical(t *testing.T) {
	p := Process{Mu: 1.3, Generations: 8}
	want := p.MeanPopulation() // 1.3^8 ≈ 8.157
	s := stream(t)
	out := make([]float64, NOutcomes)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		out[0], out[1] = 0, 0
		if err := p.Realize(s, out); err != nil {
			t.Fatal(err)
		}
		sum += out[FinalPopulation]
	}
	if mean := sum / n; math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("E Z_8 = %g, want %g", mean, want)
	}
}

func TestPopCapShortCircuitsExplosions(t *testing.T) {
	p := Process{Mu: 3, Generations: 60, PopCap: 1000}
	s := stream(t)
	out := make([]float64, NOutcomes)
	if err := p.Realize(s, out); err != nil {
		t.Fatal(err)
	}
	// Either extinct early or capped: never astronomically large.
	if out[FinalPopulation] > 1000*10 {
		t.Fatalf("population %g blew past the cap region", out[FinalPopulation])
	}
}

func BenchmarkRealizeSupercritical(b *testing.B) {
	p := Process{Mu: 1.5, Generations: 20, PopCap: 100000}
	s := stream(b)
	out := make([]float64, NOutcomes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0], out[1] = 0, 0
		if err := p.Realize(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
