// Package smoluchowski implements direct stochastic simulation of the
// Smoluchowski coagulation equation — one of the physical-chemical
// kinetics applications the paper lists (Sec. 2.1, "solving the
// Boltzmann and Smoluchowski's equations").
//
// The model is the Marcus–Lushnikov process: N₀ monomers in a volume V;
// every unordered pair of clusters coalesces at rate K(i, j)/V where i,
// j are the cluster sizes. For the constant kernel K ≡ K₀ the mean-field
// solution is exactly solvable, which makes the module a sharp
// correctness check for the whole PARMONC pipeline:
//
//	E M(t) ≈ N₀ / (1 + K₀ n₀ t / 2),  n₀ = N₀/V,
//
// where M(t) is the number of clusters at time t.
package smoluchowski

import (
	"fmt"

	"parmonc/dist"
)

// Kernel is a coagulation kernel K(i, j) for cluster sizes i, j ≥ 1.
type Kernel func(i, j int64) float64

// ConstantKernel returns K(i, j) ≡ k0.
func ConstantKernel(k0 float64) Kernel {
	return func(i, j int64) float64 { return k0 }
}

// AdditiveKernel returns K(i, j) = k0·(i + j) — the other classical
// solvable case.
func AdditiveKernel(k0 float64) Kernel {
	return func(i, j int64) float64 { return k0 * float64(i+j) }
}

// System describes one Marcus–Lushnikov simulation.
type System struct {
	N0     int     // initial monomers
	Volume float64 // system volume
	Kernel Kernel
	K0     float64 // an upper bound for K(i,j)/K₀-style majorant rejection; for the constant kernel, the constant itself
}

// Validate checks the system invariants.
func (s System) Validate() error {
	if s.N0 < 2 {
		return fmt.Errorf("smoluchowski: N0 = %d must be >= 2", s.N0)
	}
	if s.Volume <= 0 {
		return fmt.Errorf("smoluchowski: volume %g must be positive", s.Volume)
	}
	if s.Kernel == nil {
		return fmt.Errorf("smoluchowski: nil kernel")
	}
	if s.K0 <= 0 {
		return fmt.Errorf("smoluchowski: majorant K0 = %g must be positive", s.K0)
	}
	return nil
}

// ClusterCounts simulates one realization from t = 0 with monodisperse
// initial condition and records the number of clusters at each of the
// given sample times (ascending). The result is written to out
// (len(times) entries). The SSA picks pairs uniformly and thins against
// the majorant K0, so any kernel bounded by K0 is exact.
func (s System) ClusterCounts(src dist.Source, times []float64, out []float64) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(times) == 0 || len(out) != len(times) {
		return fmt.Errorf("smoluchowski: need len(out) == len(times) > 0")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return fmt.Errorf("smoluchowski: sample times must be ascending")
		}
	}
	if times[0] < 0 {
		return fmt.Errorf("smoluchowski: negative sample time")
	}

	// Cluster sizes; order is irrelevant, removal swaps with the tail.
	sizes := make([]int64, s.N0)
	for i := range sizes {
		sizes[i] = 1
	}
	t := 0.0
	next := 0
	record := func(now float64) {
		for next < len(times) && times[next] <= now {
			out[next] = float64(len(sizes))
			next++
		}
	}

	for len(sizes) > 1 && next < len(times) {
		m := float64(len(sizes))
		// Majorant total rate: K0 · m(m−1)/2 / V.
		rate := s.K0 * m * (m - 1) / 2 / s.Volume
		t += dist.Exponential(src, rate)
		record(t)
		if next >= len(times) {
			break
		}
		// Pick an unordered pair uniformly.
		i := dist.Choice(src, len(sizes))
		j := dist.Choice(src, len(sizes)-1)
		if j >= i {
			j++
		}
		// Thinning: accept with probability K(i,j)/K0.
		k := s.Kernel(sizes[i], sizes[j])
		if k > s.K0 {
			return fmt.Errorf("smoluchowski: kernel value %g exceeds majorant %g", k, s.K0)
		}
		if !dist.Bernoulli(src, k/s.K0) {
			continue
		}
		// Coalesce: merge j into i, remove j.
		sizes[i] += sizes[j]
		last := len(sizes) - 1
		sizes[j] = sizes[last]
		sizes = sizes[:last]
	}
	// Whatever sample times remain see the final cluster count.
	for next < len(times) {
		out[next] = float64(len(sizes))
		next++
	}
	return nil
}

// MeanClusters returns the mean-field cluster count for the constant
// kernel: N₀ / (1 + K₀·n₀·t/2).
func (s System) MeanClusters(t float64) float64 {
	n0 := float64(s.N0) / s.Volume
	return float64(s.N0) / (1 + s.K0*n0*t/2)
}
