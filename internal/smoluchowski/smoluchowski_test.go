package smoluchowski

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func constSys(n0 int) System {
	return System{N0: n0, Volume: float64(n0), Kernel: ConstantKernel(1), K0: 1}
}

func TestValidate(t *testing.T) {
	if err := constSys(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []System{
		{N0: 1, Volume: 1, Kernel: ConstantKernel(1), K0: 1},
		{N0: 10, Volume: 0, Kernel: ConstantKernel(1), K0: 1},
		{N0: 10, Volume: 1, Kernel: nil, K0: 1},
		{N0: 10, Volume: 1, Kernel: ConstantKernel(1), K0: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestClusterCountsArguments(t *testing.T) {
	sys := constSys(10)
	s := stream(t)
	if err := sys.ClusterCounts(s, nil, nil); err == nil {
		t.Error("empty times accepted")
	}
	if err := sys.ClusterCounts(s, []float64{1, 0.5}, make([]float64, 2)); err == nil {
		t.Error("non-ascending times accepted")
	}
	if err := sys.ClusterCounts(s, []float64{-1, 0.5}, make([]float64, 2)); err == nil {
		t.Error("negative time accepted")
	}
	if err := sys.ClusterCounts(s, []float64{1}, make([]float64, 2)); err == nil {
		t.Error("mismatched out accepted")
	}
}

func TestMonotoneNonIncreasingCounts(t *testing.T) {
	sys := constSys(200)
	times := []float64{0.5, 1, 2, 4, 8}
	out := make([]float64, len(times))
	s := stream(t)
	for rep := 0; rep < 50; rep++ {
		if err := sys.ClusterCounts(s, times, out); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(out); i++ {
			if out[i] > out[i-1] {
				t.Fatalf("cluster count increased: %v", out)
			}
		}
		if out[0] > float64(sys.N0) || out[len(out)-1] < 1 {
			t.Fatalf("counts out of range: %v", out)
		}
	}
}

func TestConstantKernelMatchesMeanField(t *testing.T) {
	// Run the full PARMONC pipeline and compare E M(t) with the
	// mean-field solution N0/(1 + t/2) (n0 = 1). Finite-size corrections
	// are O(1/N0), so with N0 = 500 a 3% tolerance is ample.
	sys := constSys(500)
	times := []float64{0.5, 1, 2, 4}
	cfg := core.Config{
		Nrow: len(times), Ncol: 1,
		MaxSamples: 600,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return sys.ClusterCounts(src, times, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := sys.MeanClusters(tt)
		got := res.Report.MeanAt(i, 0)
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("E M(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestAdditiveKernelRuns(t *testing.T) {
	// Additive kernel with majorant 2·N0·k0 (max i+j = N0).
	sys := System{N0: 100, Volume: 100, Kernel: AdditiveKernel(0.01), K0: 0.01 * 2 * 100}
	out := make([]float64, 3)
	if err := sys.ClusterCounts(stream(t), []float64{1, 2, 3}, out); err != nil {
		t.Fatal(err)
	}
	if out[2] > out[0] {
		t.Fatalf("counts increased: %v", out)
	}
}

func TestKernelExceedingMajorantRejected(t *testing.T) {
	sys := System{N0: 50, Volume: 50, Kernel: ConstantKernel(10), K0: 1}
	out := make([]float64, 1)
	if err := sys.ClusterCounts(stream(t), []float64{1}, out); err == nil {
		t.Fatal("expected majorant violation error")
	}
}

func TestFinalStateSingleCluster(t *testing.T) {
	// At t → ∞ everything has coalesced into one cluster.
	sys := constSys(50)
	out := make([]float64, 1)
	if err := sys.ClusterCounts(stream(t), []float64{1e9}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("final cluster count %g, want 1", out[0])
	}
}

func BenchmarkClusterCounts500(b *testing.B) {
	sys := constSys(500)
	times := []float64{0.5, 1, 2, 4}
	out := make([]float64, len(times))
	s := stream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.ClusterCounts(s, times, out); err != nil {
			b.Fatal(err)
		}
	}
}
