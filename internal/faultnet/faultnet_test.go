package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections from ln and echoes bytes back until
// the listener closes.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
}

func newEcho(t *testing.T, plan Planner) *Listener {
	t.Helper()
	ln, err := Listen("tcp", "127.0.0.1:0", plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	echoServer(t, ln)
	return ln
}

func dial(t *testing.T, ln *Listener) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPassthrough(t *testing.T) {
	ln := newEcho(t, None)
	c := dial(t, ln)
	msg := []byte("hello, faultnet")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q", got)
	}
}

func TestRefusedConnectionDiesAtBirth(t *testing.T) {
	ln := newEcho(t, FaultFirst(ConnPlan{Refuse: true}))
	c := dial(t, ln)
	// The first connection is refused: either the write fails or the
	// subsequent read sees EOF/reset. Crucially the server survives.
	c.SetDeadline(time.Now().Add(2 * time.Second))
	_, werr := c.Write([]byte("x"))
	var rerr error
	if werr == nil {
		_, rerr = c.Read(make([]byte, 1))
	}
	if werr == nil && rerr == nil {
		t.Fatal("refused connection carried traffic")
	}
	// The second connection is clean.
	c2 := dial(t, ln)
	if _, err := c2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if _, err := io.ReadFull(c2, got); err != nil || got[0] != 'y' {
		t.Fatalf("clean follow-up connection broken: %v %q", err, got)
	}
}

func TestCloseAfterReadBudget(t *testing.T) {
	ln := newEcho(t, FaultFirst(ConnPlan{CloseAfterRead: 4}))
	c := dial(t, ln)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	// First 4 bytes pass and echo back.
	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// The budget is spent: the next exchange must fail.
	c.Write([]byte("efgh"))
	if _, err := io.ReadFull(c, got); err == nil {
		t.Fatal("connection survived past its read budget")
	}
}

func TestLatencyInjected(t *testing.T) {
	const lat = 30 * time.Millisecond
	ln := newEcho(t, FaultFirst(ConnPlan{Latency: lat}))
	c := dial(t, ln)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := c.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	// One echo crosses the wrapper at least twice (read + write).
	if d := time.Since(start); d < 2*lat {
		t.Fatalf("round trip took %v, want >= %v", d, 2*lat)
	}
}

func TestBlackholeWriteIsOneWay(t *testing.T) {
	// Server replies vanish after 2 bytes, but the server keeps
	// reading: client→server stays up, server→client is partitioned.
	ln := newEcho(t, FaultFirst(ConnPlan{BlackholeAfterWrite: 2}))
	c := dial(t, ln)
	if _, err := c.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// Writes still succeed (one-way), but no more echoes arrive.
	if _, err := c.Write([]byte("cd")); err != nil {
		t.Fatalf("client→server direction broken: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(got); err == nil {
		t.Fatal("bytes crossed a write black hole")
	}
}

func TestBlackholeReadBlocksUntilClose(t *testing.T) {
	ln := newEcho(t, FaultFirst(ConnPlan{BlackholeAfterRead: 1}))
	c := dial(t, ln)
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// Further client→server bytes vanish; the echo never comes.
	c.Write([]byte("b"))
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(got); err == nil {
		t.Fatal("bytes crossed a read black hole")
	}
	// Closing the listener releases the server goroutine blocked in
	// the black-holed read (would leak otherwise — verified by the
	// test finishing at all under -race with goroutine checks).
	ln.Close()
}

func TestKillAfterDestroysBothDirections(t *testing.T) {
	// Before the timer fires the connection carries traffic normally;
	// after it fires both directions are dead at once — the crash-stop
	// failure of a peer host dying, not a polite shutdown.
	const fuse = 150 * time.Millisecond
	ln := newEcho(t, FaultFirst(ConnPlan{KillAfter: fuse}))
	c := dial(t, ln)
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(c, got); err != nil || !bytes.Equal(got, []byte("ab")) {
		t.Fatalf("pre-kill echo broken: %v %q", err, got)
	}

	time.Sleep(fuse + 50*time.Millisecond)
	// Both directions must now fail. The first write may be absorbed by
	// kernel buffers before the RST is observed, so push until it
	// surfaces (bounded by the deadline set above).
	var werr, rerr error
	for i := 0; i < 50 && werr == nil; i++ {
		_, werr = c.Write([]byte("cd"))
		time.Sleep(5 * time.Millisecond)
	}
	_, rerr = c.Read(got)
	if werr == nil && rerr == nil {
		t.Fatal("connection survived its kill timer")
	}

	// The listener itself survives: a fresh connection is clean.
	c2 := dial(t, ln)
	c2.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, got[:1]); err != nil || got[0] != 'y' {
		t.Fatalf("post-kill connection broken: %v %q", err, got[:1])
	}
}

func TestRandomPlannerReproducible(t *testing.T) {
	a, b := RandomPlanner(42, 0.7, 10, 1000), RandomPlanner(42, 0.7, 10, 1000)
	for i := 0; i < 100; i++ {
		if pa, pb := a(i), b(i); pa != pb {
			t.Fatalf("conn %d: schedules diverge: %+v vs %+v", i, pa, pb)
		}
	}
	// A different seed yields a different schedule somewhere.
	cdiff := RandomPlanner(43, 0.7, 10, 1000)
	same := true
	a2 := RandomPlanner(42, 0.7, 10, 1000)
	for i := 0; i < 100; i++ {
		if a2(i) != cdiff(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestAcceptedCounts(t *testing.T) {
	ln := newEcho(t, None)
	if ln.Accepted() != 0 {
		t.Fatalf("fresh listener accepted %d", ln.Accepted())
	}
	c := dial(t, ln)
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	if ln.Accepted() != 1 {
		t.Fatalf("accepted %d, want 1", ln.Accepted())
	}
}
