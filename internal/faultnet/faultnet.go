// Package faultnet wraps net.Listener/net.Conn with scriptable fault
// injection for chaos-testing network transports: refused connections,
// added latency, connections dropped after a byte budget, and one-way
// partitions (bytes silently vanish in one direction while the other
// keeps flowing).
//
// The package exists to exercise the PARMONC cluster transport's
// at-least-once/exactly-once delivery machinery under the failures a
// real cluster interconnect produces — the subtleties Lubachevsky
// ("Why The Results of Parallel and Serial Monte Carlo Simulations May
// Differ") shows can corrupt Monte Carlo estimates undetectably. It is
// deliberately transport-agnostic: anything serving on a net.Listener
// can be wrapped.
//
// Faults are assigned per accepted connection by a Planner, which maps
// the connection's accept index to a ConnPlan. Plans are scripted
// (deterministic given the Planner), so chaos schedules are exactly
// reproducible from a seed.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnPlan scripts the faults of one accepted connection. The zero
// value is a fault-free passthrough. Byte thresholds count bytes seen
// by this wrapper: "read" is traffic from the remote peer (e.g. a
// worker's requests arriving at the coordinator), "write" is traffic to
// the peer (the coordinator's replies).
type ConnPlan struct {
	// Refuse closes the connection immediately after accept, before
	// any bytes flow — the peer sees a reset/EOF on first use.
	Refuse bool

	// Latency is added to every Read and Write call.
	Latency time.Duration

	// CloseAfterRead hard-closes the connection once this many bytes
	// have been read from the peer (0 = never). Requests already read
	// may have been applied while their replies can no longer be
	// delivered — the classic lost-ack window.
	CloseAfterRead int64

	// CloseAfterWrite hard-closes the connection once this many bytes
	// have been written to the peer (0 = never). A reply can be cut
	// mid-stream, corrupting the peer's decode state.
	CloseAfterWrite int64

	// BlackholeAfterWrite starts a one-way partition once this many
	// bytes have been written (0 = never): writes keep "succeeding"
	// locally but the bytes are discarded, so the peer waits forever
	// for replies that never arrive. Only a peer-side timeout escapes.
	BlackholeAfterWrite int64

	// BlackholeAfterRead starts the opposite one-way partition once
	// this many bytes have been read (0 = never): reads block until
	// the connection is closed, as if the peer's packets vanished.
	BlackholeAfterRead int64

	// KillAfter abruptly destroys the established connection this long
	// after accept (0 = never), regardless of traffic: both directions
	// die at once and, for TCP, the close goes out as an RST instead of
	// an orderly FIN — the crash-stop signature of a worker host dying
	// mid-stream, distinct from the byte-budget closes above which only
	// fire on the next Read/Write.
	KillAfter time.Duration
}

// Planner assigns a fault plan to the i-th accepted connection
// (0-based). It must be safe for concurrent use if the listener is
// shared; the listener calls it from its accept loop only.
type Planner func(i int) ConnPlan

// None is a Planner injecting no faults.
func None(int) ConnPlan { return ConnPlan{} }

// Listener wraps an inner net.Listener, applying the Planner's fault
// plan to every accepted connection.
type Listener struct {
	inner net.Listener
	plan  Planner
	n     atomic.Int64 // connections accepted so far

	abortOnce sync.Once
	aborted   chan struct{}
}

// Wrap returns a fault-injecting listener around ln. The returned
// listener owns ln and closes it on Close.
func Wrap(ln net.Listener, plan Planner) *Listener {
	if plan == nil {
		plan = None
	}
	return &Listener{inner: ln, plan: plan, aborted: make(chan struct{})}
}

// Listen is net.Listen followed by Wrap.
func Listen(network, addr string, plan Planner) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(ln, plan), nil
}

// Accept waits for the next connection, applies its plan, and returns
// it. Refused connections are closed immediately and never surface:
// the peer observes a connection that dies at birth, while the server
// keeps accepting.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		p := l.plan(int(l.n.Add(1) - 1))
		if p.Refuse {
			c.Close()
			continue
		}
		fc := &Conn{Conn: c, plan: p, closed: make(chan struct{}), abort: l.aborted}
		if p.KillAfter > 0 {
			go fc.killAfter(p.KillAfter)
		}
		return fc, nil
	}
}

// Close closes the inner listener and releases any reader blocked in a
// black-holed Read (the read returns net.ErrClosed). Live connections
// are otherwise left to their owners, matching net.Listener semantics —
// a server's graceful-drain logic keeps working under fault injection.
func (l *Listener) Close() error {
	l.abortOnce.Do(func() { close(l.aborted) })
	return l.inner.Close()
}

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Accepted returns how many connections have been accepted (including
// refused ones) — the next connection gets plan index Accepted().
func (l *Listener) Accepted() int { return int(l.n.Load()) }

// Conn is one fault-injected connection.
type Conn struct {
	net.Conn
	plan ConnPlan

	read    atomic.Int64
	written atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
	abort     <-chan struct{} // listener closed: release black holes
}

// Close closes the underlying connection and releases any reader
// blocked in a black-holed Read.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// killAfter arms the crash-stop timer: when it fires the connection is
// destroyed in both directions at once. A connection that closes first
// disarms the timer.
func (c *Conn) killAfter(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		c.Kill()
	case <-c.closed:
	case <-c.abort:
	}
}

// Kill destroys the connection abruptly in both directions. For TCP the
// close is turned into an RST (SO_LINGER 0), so the peer's next use of
// the socket fails immediately — no orderly shutdown, no drained
// buffers, exactly what the peer of a crashed host observes.
func (c *Conn) Kill() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// sleep applies the plan's latency, cut short if the conn closes.
func (c *Conn) sleep() {
	if c.plan.Latency <= 0 {
		return
	}
	t := time.NewTimer(c.plan.Latency)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	case <-c.abort:
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	c.sleep()
	if th := c.plan.BlackholeAfterRead; th > 0 && c.read.Load() >= th {
		// One-way partition: incoming bytes vanish. Block until the
		// connection (or the listener) is torn down, like a peer whose
		// packets are being dropped.
		select {
		case <-c.closed:
		case <-c.abort:
		}
		return 0, net.ErrClosed
	}
	if th := c.plan.CloseAfterRead; th > 0 && c.read.Load() >= th {
		c.Close()
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Read(b)
	c.read.Add(int64(n))
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	c.sleep()
	if th := c.plan.BlackholeAfterWrite; th > 0 && c.written.Load() >= th {
		// One-way partition: pretend the write succeeded. The peer
		// never sees these bytes.
		c.written.Add(int64(len(b)))
		return len(b), nil
	}
	if th := c.plan.CloseAfterWrite; th > 0 && c.written.Load() >= th {
		c.Close()
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Write(b)
	c.written.Add(int64(n))
	return n, err
}

// Plan returns the connection's fault script (for assertions in tests).
func (c *Conn) Plan() ConnPlan { return c.plan }

// RandomPlanner builds a reproducible chaos schedule: each accepted
// connection independently draws a fault plan from the seeded
// generator. severity in [0, 1] is the probability that a connection is
// faulty at all; a faulty connection gets one of the fault shapes
// (refusal, latency, byte-budget close, one-way partition) with byte
// thresholds in [lo, hi). Identical seeds yield identical schedules, so
// a failing chaos run is replayable from its logged seed.
func RandomPlanner(seed int64, severity float64, lo, hi int64) Planner {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	var mu sync.Mutex
	rnd := rand.New(rand.NewSource(seed))
	return func(int) ConnPlan {
		mu.Lock()
		defer mu.Unlock()
		if rnd.Float64() >= severity {
			return ConnPlan{}
		}
		budget := func() int64 { return lo + rnd.Int63n(hi-lo) }
		switch rnd.Intn(6) {
		case 0:
			return ConnPlan{Refuse: true}
		case 1:
			return ConnPlan{Latency: time.Duration(1+rnd.Intn(5)) * time.Millisecond}
		case 2:
			return ConnPlan{CloseAfterRead: budget()}
		case 3:
			return ConnPlan{CloseAfterWrite: budget()}
		case 4:
			return ConnPlan{BlackholeAfterWrite: budget()}
		default:
			return ConnPlan{BlackholeAfterRead: budget()}
		}
	}
}

// FaultFirst returns a Planner that applies plans[i] to the i-th
// accepted connection and no faults from len(plans) onward — a
// deterministic schedule with guaranteed eventual progress.
func FaultFirst(plans ...ConnPlan) Planner {
	return func(i int) ConnPlan {
		if i < len(plans) {
			return plans[i]
		}
		return ConnPlan{}
	}
}
