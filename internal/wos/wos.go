// Package wos implements the walk-on-spheres method for the Dirichlet
// problem of Laplace's equation — the paper's "stochastic
// representations for solutions to equations of mathematical physics"
// (Sec. 2.1) in its most classical form:
//
//	Δu = 0 in D,  u = g on ∂D   ⇒   u(x₀) = E[g(W_τ)],
//
// where W is Brownian motion started at x₀ and τ its exit time from D.
// Walk-on-spheres samples the exit position without simulating paths:
// from the current point, jump to a uniform point on the largest sphere
// inside D; repeat until within ε of the boundary; evaluate g at the
// nearest boundary point.
//
// The package ships the 2-D disk domain, where harmonic functions
// provide exact answers (u(x₀) = g(x₀) whenever g extends harmonically),
// making every estimate verifiable.
package wos

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Domain describes a region via the distance to its boundary.
type Domain interface {
	// DistanceToBoundary returns the distance from p to ∂D; it must be
	// positive for interior points.
	DistanceToBoundary(p [2]float64) float64
	// NearestBoundary returns the closest boundary point to p.
	NearestBoundary(p [2]float64) [2]float64
	// Contains reports whether p is an interior point.
	Contains(p [2]float64) bool
}

// Disk is the disk domain of given center and radius.
type Disk struct {
	Center [2]float64
	Radius float64
}

// DistanceToBoundary implements Domain.
func (d Disk) DistanceToBoundary(p [2]float64) float64 {
	return d.Radius - d.rho(p)
}

// NearestBoundary implements Domain.
func (d Disk) NearestBoundary(p [2]float64) [2]float64 {
	r := d.rho(p)
	if r == 0 {
		// Center: every boundary point is nearest; pick a fixed one.
		return [2]float64{d.Center[0] + d.Radius, d.Center[1]}
	}
	s := d.Radius / r
	return [2]float64{
		d.Center[0] + (p[0]-d.Center[0])*s,
		d.Center[1] + (p[1]-d.Center[1])*s,
	}
}

// Contains implements Domain.
func (d Disk) Contains(p [2]float64) bool {
	return d.rho(p) < d.Radius
}

func (d Disk) rho(p [2]float64) float64 {
	dx, dy := p[0]-d.Center[0], p[1]-d.Center[1]
	return math.Hypot(dx, dy)
}

// Solver estimates u(x₀) for the Dirichlet problem on a Domain.
type Solver struct {
	Domain   Domain
	Boundary func(p [2]float64) float64 // g on ∂D
	Epsilon  float64                    // boundary shell width (default 1e-4)
	MaxSteps int                        // safety cap per walk (default 10_000)
}

// Validate checks the solver configuration.
func (s Solver) Validate() error {
	if s.Domain == nil {
		return fmt.Errorf("wos: nil domain")
	}
	if s.Boundary == nil {
		return fmt.Errorf("wos: nil boundary function")
	}
	if s.Epsilon < 0 {
		return fmt.Errorf("wos: negative epsilon")
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("wos: negative step cap")
	}
	return nil
}

// Walk performs one walk-on-spheres realization from x0 and writes
// g(exit point) into out[0] — a Realization-shaped kernel whose sample
// mean estimates u(x₀).
func (s Solver) Walk(src dist.Source, x0 [2]float64, out []float64) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(out) != 1 {
		return fmt.Errorf("wos: out has length %d, want 1", len(out))
	}
	if !s.Domain.Contains(x0) {
		return fmt.Errorf("wos: start point (%g, %g) not interior", x0[0], x0[1])
	}
	eps := s.Epsilon
	if eps == 0 {
		eps = 1e-4
	}
	maxSteps := s.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10000
	}
	p := x0
	for step := 0; step < maxSteps; step++ {
		r := s.Domain.DistanceToBoundary(p)
		if r <= eps {
			out[0] = s.Boundary(s.Domain.NearestBoundary(p))
			return nil
		}
		theta := dist.Uniform(src, 0, 2*math.Pi)
		p[0] += r * math.Cos(theta)
		p[1] += r * math.Sin(theta)
	}
	return fmt.Errorf("wos: walk did not reach the boundary in %d steps", maxSteps)
}

// PoissonKernelSolution returns the exact solution of the Dirichlet
// problem on the unit disk for boundary data g(θ) by numerically
// integrating the Poisson kernel at the point with polar coordinates
// (r, phi), r < 1:
//
//	u(r, φ) = 1/2π ∫ g(θ)·(1 − r²)/(1 − 2r·cos(θ−φ) + r²) dθ.
//
// It is used by the tests as independent ground truth for
// non-harmonic-extendable boundary data.
func PoissonKernelSolution(g func(theta float64) float64, r, phi float64, nQuad int) (float64, error) {
	if r < 0 || r >= 1 {
		return 0, fmt.Errorf("wos: radius %g outside [0,1)", r)
	}
	if nQuad < 8 {
		return 0, fmt.Errorf("wos: quadrature size %d too small", nQuad)
	}
	var sum float64
	for k := 0; k < nQuad; k++ {
		theta := 2 * math.Pi * (float64(k) + 0.5) / float64(nQuad)
		kernel := (1 - r*r) / (1 - 2*r*math.Cos(theta-phi) + r*r)
		sum += g(theta) * kernel
	}
	return sum / float64(nQuad), nil
}
