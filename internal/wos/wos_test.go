package wos

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func unitDisk() Disk { return Disk{Radius: 1} }

func TestDiskGeometry(t *testing.T) {
	d := Disk{Center: [2]float64{1, 2}, Radius: 3}
	if !d.Contains([2]float64{1, 2}) {
		t.Fatal("center not contained")
	}
	if d.Contains([2]float64{4.5, 2}) {
		t.Fatal("exterior point contained")
	}
	if got := d.DistanceToBoundary([2]float64{1, 2}); got != 3 {
		t.Fatalf("distance from center %g", got)
	}
	nb := d.NearestBoundary([2]float64{2, 2})
	if math.Abs(nb[0]-4) > 1e-12 || math.Abs(nb[1]-2) > 1e-12 {
		t.Fatalf("nearest boundary %v", nb)
	}
	// Center special case: any boundary point is fine; must be ON the
	// boundary.
	nbc := d.NearestBoundary([2]float64{1, 2})
	if r := math.Hypot(nbc[0]-1, nbc[1]-2); math.Abs(r-3) > 1e-12 {
		t.Fatalf("center nearest-boundary radius %g", r)
	}
}

func TestSolverValidation(t *testing.T) {
	g := func(p [2]float64) float64 { return 0 }
	bad := []Solver{
		{Domain: nil, Boundary: g},
		{Domain: unitDisk(), Boundary: nil},
		{Domain: unitDisk(), Boundary: g, Epsilon: -1},
		{Domain: unitDisk(), Boundary: g, MaxSteps: -1},
	}
	for i, s := range bad {
		out := make([]float64, 1)
		if err := s.Walk(stream(t), [2]float64{0, 0}, out); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	good := Solver{Domain: unitDisk(), Boundary: g}
	if err := good.Walk(stream(t), [2]float64{2, 0}, make([]float64, 1)); err == nil {
		t.Error("exterior start accepted")
	}
	if err := good.Walk(stream(t), [2]float64{0, 0}, make([]float64, 2)); err == nil {
		t.Error("wrong out length accepted")
	}
}

func TestHarmonicBoundaryReproducedInside(t *testing.T) {
	// g(x, y) = x² − y² is harmonic, so u(x₀) = g(x₀) exactly. Run the
	// full pipeline at two interior points.
	solver := Solver{
		Domain:   unitDisk(),
		Boundary: func(p [2]float64) float64 { return p[0]*p[0] - p[1]*p[1] },
		Epsilon:  1e-4,
	}
	points := [][2]float64{{0.3, 0.2}, {-0.5, 0.4}}
	for _, x0 := range points {
		x0 := x0
		cfg := core.Config{
			Nrow: 1, Ncol: 1,
			MaxSamples: 30000,
			Workers:    4,
			WorkDir:    t.TempDir(),
			PassPeriod: time.Millisecond,
			AverPeriod: 2 * time.Millisecond,
		}
		res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
			return solver.Walk(src, x0, out)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := x0[0]*x0[0] - x0[1]*x0[1]
		got := res.Report.MeanAt(0, 0)
		// ε-shell bias is O(ε); statistical bound dominates.
		if math.Abs(got-want) > res.Report.AbsErrAt(0, 0)*4/3+1e-3 {
			t.Errorf("u(%v) = %g, want %g ± %g", x0, got, want, res.Report.AbsErrAt(0, 0))
		}
	}
}

func TestMatchesPoissonKernelForNonHarmonicData(t *testing.T) {
	// g(θ) = indicator of the upper half circle: u is not g's extension;
	// compare against the Poisson kernel quadrature.
	gTheta := func(theta float64) float64 {
		if math.Sin(theta) > 0 {
			return 1
		}
		return 0
	}
	solver := Solver{
		Domain: unitDisk(),
		Boundary: func(p [2]float64) float64 {
			return gTheta(math.Atan2(p[1], p[0]))
		},
		Epsilon: 1e-4,
	}
	x0 := [2]float64{0.2, 0.3}
	r := math.Hypot(x0[0], x0[1])
	phi := math.Atan2(x0[1], x0[0])
	want, err := PoissonKernelSolution(gTheta, r, phi, 20000)
	if err != nil {
		t.Fatal(err)
	}

	s := stream(t)
	out := make([]float64, 1)
	var sum float64
	const n = 40000
	for i := 0; i < n; i++ {
		if err := solver.Walk(s, x0, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
	}
	got := sum / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("u = %g, Poisson kernel %g", got, want)
	}
}

func TestCenterSolutionIsBoundaryAverage(t *testing.T) {
	// At the disk center u = mean of g over the circle (mean value
	// property). g(θ) = cos²θ has average 1/2.
	solver := Solver{
		Domain: unitDisk(),
		Boundary: func(p [2]float64) float64 {
			c := p[0] / math.Hypot(p[0], p[1])
			return c * c
		},
	}
	s := stream(t)
	out := make([]float64, 1)
	var sum float64
	const n = 30000
	for i := 0; i < n; i++ {
		if err := solver.Walk(s, [2]float64{0, 0}, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
	}
	if got := sum / n; math.Abs(got-0.5) > 0.01 {
		t.Fatalf("u(0) = %g, want 1/2", got)
	}
}

func TestPoissonKernelValidation(t *testing.T) {
	g := func(theta float64) float64 { return 1 }
	if _, err := PoissonKernelSolution(g, 1, 0, 100); err == nil {
		t.Error("r = 1 accepted")
	}
	if _, err := PoissonKernelSolution(g, 0.5, 0, 2); err == nil {
		t.Error("tiny quadrature accepted")
	}
	// Constant boundary data: u ≡ 1 everywhere.
	u, err := PoissonKernelSolution(g, 0.7, 1.2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-1) > 1e-6 {
		t.Fatalf("u = %g for constant data", u)
	}
}

func TestStepCapTriggers(t *testing.T) {
	// From an off-center start each jump only shrinks the boundary
	// distance geometrically, so a 2-step cap with a 1e-12 shell cannot
	// be met (note: from the exact center one jump lands on the
	// boundary, so the start must be off-center).
	solver := Solver{
		Domain:   unitDisk(),
		Boundary: func(p [2]float64) float64 { return 0 },
		Epsilon:  1e-12,
		MaxSteps: 2,
	}
	out := make([]float64, 1)
	sawErr := false
	s := stream(t)
	for i := 0; i < 100 && !sawErr; i++ {
		if err := solver.Walk(s, [2]float64{0.3, 0.2}, out); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("expected step-cap error")
	}
}

func BenchmarkWalk(b *testing.B) {
	solver := Solver{
		Domain:   unitDisk(),
		Boundary: func(p [2]float64) float64 { return p[0] },
		Epsilon:  1e-4,
	}
	s := stream(b)
	out := make([]float64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := solver.Walk(s, [2]float64{0.3, 0.2}, out); err != nil {
			b.Fatal(err)
		}
	}
}
