package ising

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (Model{L: 8, Beta: 0.3, Sweeps: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{L: 1, Beta: 0.3, Sweeps: 10},
		{L: 8, Beta: -1, Sweeps: 10},
		{L: 8, Beta: 0.3, Sweeps: 0},
		{L: 8, Beta: 0.3, Sweeps: 10, Warmup: 10},
		{L: 8, Beta: 0.3, Sweeps: 10, Warmup: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReplicaOutLength(t *testing.T) {
	m := Model{L: 4, Beta: 0.1, Sweeps: 4}
	if err := m.Replica(stream(t), make([]float64, 1)); err == nil {
		t.Fatal("wrong out length accepted")
	}
}

func TestObservableRanges(t *testing.T) {
	m := Model{L: 8, Beta: 0.4, Sweeps: 20}
	out := make([]float64, NObservables)
	s := stream(t)
	for i := 0; i < 20; i++ {
		if err := m.Replica(s, out); err != nil {
			t.Fatal(err)
		}
		if out[EnergyPerSite] < -2 || out[EnergyPerSite] > 2 {
			t.Fatalf("energy per site %g outside [-2, 2]", out[EnergyPerSite])
		}
		if out[AbsMagnetization] < 0 || out[AbsMagnetization] > 1 {
			t.Fatalf("|m| = %g outside [0, 1]", out[AbsMagnetization])
		}
	}
}

func TestHighTemperatureEnergy(t *testing.T) {
	// β = 0.15 ≪ β_c: energy per site ≈ −2·tanh β within a few percent.
	m := Model{L: 16, Beta: 0.15, Sweeps: 60, Warmup: 30}
	cfg := core.Config{
		Nrow: 1, Ncol: NObservables,
		MaxSamples: 200,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return m.Replica(src, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := HighTEnergy(m.Beta) // ≈ −0.2977
	got := res.Report.MeanAt(0, EnergyPerSite)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("E/N = %g, want ≈ %g", got, want)
	}
	// Far above T_c the magnetization is near zero (finite-size tail
	// scales like 1/L).
	if mag := res.Report.MeanAt(0, AbsMagnetization); mag > 0.2 {
		t.Fatalf("|m| = %g at high temperature", mag)
	}
}

func TestLowTemperatureOrder(t *testing.T) {
	// β = 1 ≫ β_c ≈ 0.44: the lattice orders, |m| close to 1, energy
	// close to the ground state −2.
	m := Model{L: 12, Beta: 1.0, Sweeps: 120, Warmup: 80}
	out := make([]float64, NObservables)
	s := stream(t)
	var magSum, eSum float64
	const reps = 10
	for i := 0; i < reps; i++ {
		if err := m.Replica(s, out); err != nil {
			t.Fatal(err)
		}
		magSum += out[AbsMagnetization]
		eSum += out[EnergyPerSite]
	}
	if avg := magSum / reps; avg < 0.9 {
		t.Fatalf("|m| = %g at β=1, want > 0.9", avg)
	}
	if avg := eSum / reps; avg > -1.7 {
		t.Fatalf("E/N = %g at β=1, want < -1.7", avg)
	}
}

func TestBetaCriticalValue(t *testing.T) {
	if math.Abs(BetaCritical-0.44068679350977147) > 1e-12 {
		t.Fatalf("BetaCritical = %.17g", BetaCritical)
	}
}

func TestInfiniteTemperatureEnergyZero(t *testing.T) {
	// β = 0: all flips accepted, configurations uniform; E ≈ 0, |m| small.
	m := Model{L: 16, Beta: 0, Sweeps: 40, Warmup: 20}
	out := make([]float64, NObservables)
	s := stream(t)
	var eSum float64
	const reps = 20
	for i := 0; i < reps; i++ {
		if err := m.Replica(s, out); err != nil {
			t.Fatal(err)
		}
		eSum += out[EnergyPerSite]
	}
	if avg := eSum / reps; math.Abs(avg) > 0.05 {
		t.Fatalf("E/N = %g at β=0, want ≈ 0", avg)
	}
}

func BenchmarkReplica16(b *testing.B) {
	m := Model{L: 16, Beta: 0.3, Sweeps: 10, Warmup: 5}
	out := make([]float64, NObservables)
	s := stream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Replica(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
