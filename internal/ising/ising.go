// Package ising implements a 2-D Ising model Metropolis sampler — the
// statistical-physics application the paper lists (Sec. 2.1, "the
// Metropolis method, the Ising model").
//
// Spins s ∈ {−1, +1} live on an L×L periodic lattice with energy
// E = −J Σ_{<ij>} s_i s_j. One realization runs a fresh lattice from a
// random configuration through Sweeps Metropolis sweeps at inverse
// temperature Beta and reports the energy per site and magnetization
// per site — independent realizations on independent streams, exactly
// the PARMONC usage pattern for Markov chain Monte Carlo (independent
// replicas rather than one long chain).
package ising

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Model describes one Ising replica simulation.
type Model struct {
	L      int     // lattice side; the lattice has L×L sites
	Beta   float64 // inverse temperature β = J/kT (J = 1)
	Sweeps int     // Metropolis sweeps per realization
	Warmup int     // sweeps discarded before measuring (default Sweeps/2)
}

// Validate checks the model invariants.
func (m Model) Validate() error {
	if m.L < 2 {
		return fmt.Errorf("ising: lattice side %d must be >= 2", m.L)
	}
	if m.Beta < 0 {
		return fmt.Errorf("ising: negative inverse temperature %g", m.Beta)
	}
	if m.Sweeps < 1 {
		return fmt.Errorf("ising: sweeps %d must be >= 1", m.Sweeps)
	}
	if m.Warmup < 0 || m.Warmup >= m.Sweeps {
		return fmt.Errorf("ising: warmup %d outside [0, sweeps)", m.Warmup)
	}
	return nil
}

// Observables indexes the realization vector.
const (
	EnergyPerSite = iota // E/N
	AbsMagnetization
	NObservables
)

// Replica simulates one independent replica and writes time-averaged
// observables (over the post-warmup sweeps) into out.
func (m Model) Replica(src dist.Source, out []float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if len(out) != NObservables {
		return fmt.Errorf("ising: out has length %d, want %d", len(out), NObservables)
	}
	warmup := m.Warmup
	if warmup == 0 && m.Sweeps > 1 {
		warmup = m.Sweeps / 2
	}

	n := m.L * m.L
	spins := make([]int8, n)
	for i := range spins {
		if dist.Bernoulli(src, 0.5) {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	// Precompute acceptance probabilities for ΔE ∈ {4, 8} (ΔE ≤ 0 always
	// accepted; 2-D square lattice has ΔE ∈ {−8, −4, 0, 4, 8}).
	acc4 := math.Exp(-4 * m.Beta)
	acc8 := math.Exp(-8 * m.Beta)

	sumNbr := func(i int) int {
		x, y := i%m.L, i/m.L
		right := y*m.L + (x+1)%m.L
		left := y*m.L + (x-1+m.L)%m.L
		up := ((y+1)%m.L)*m.L + x
		down := ((y-1+m.L)%m.L)*m.L + x
		return int(spins[right]) + int(spins[left]) + int(spins[up]) + int(spins[down])
	}

	var accE, accM float64
	measured := 0
	for sweep := 0; sweep < m.Sweeps; sweep++ {
		for k := 0; k < n; k++ {
			i := dist.Choice(src, n)
			dE := 2 * int(spins[i]) * sumNbr(i)
			switch {
			case dE <= 0:
				spins[i] = -spins[i]
			case dE == 4:
				if dist.Bernoulli(src, acc4) {
					spins[i] = -spins[i]
				}
			default: // dE == 8
				if dist.Bernoulli(src, acc8) {
					spins[i] = -spins[i]
				}
			}
		}
		if sweep < warmup {
			continue
		}
		e, mag := m.measure(spins)
		accE += e
		accM += math.Abs(mag)
		measured++
	}
	out[EnergyPerSite] = accE / float64(measured)
	out[AbsMagnetization] = accM / float64(measured)
	return nil
}

// measure returns the energy per site and magnetization per site of a
// configuration.
func (m Model) measure(spins []int8) (ePerSite, magPerSite float64) {
	n := m.L * m.L
	var e, mag int
	for i := 0; i < n; i++ {
		x, y := i%m.L, i/m.L
		right := y*m.L + (x+1)%m.L
		up := ((y+1)%m.L)*m.L + x
		e -= int(spins[i]) * (int(spins[right]) + int(spins[up]))
		mag += int(spins[i])
	}
	return float64(e) / float64(n), float64(mag) / float64(n)
}

// BetaCritical is the exact critical inverse temperature of the 2-D
// Ising model, ln(1+√2)/2 ≈ 0.4407.
var BetaCritical = math.Log(1+math.Sqrt2) / 2

// HighTEnergy returns the small-β energy per site from the leading
// high-temperature expansion, −2·tanh(β): each site has 2 bonds (per
// site) each contributing −⟨s_i s_j⟩ ≈ −tanh β.
func HighTEnergy(beta float64) float64 {
	return -2 * math.Tanh(beta)
}
