// Package clustersim is a discrete-event simulator of the PARMONC
// master/worker cluster, used to regenerate the paper's Fig. 2
// performance test at processor counts (up to 512) that exceed the host
// machine.
//
// The paper's experiment measures T_comp(L): the wall time until the
// 0-th processor has received, averaged and saved the moments of L
// realizations simulated across M processors, under the "strictest"
// exchange policy (a message after every single realization). The
// quantities that determine T_comp are
//
//   - τ, the time to simulate one realization (≈ 7.7 s in the paper),
//   - the message cost: latency + size/bandwidth (≈ 120 KB per message),
//   - the collector's per-message service time (merge + save),
//   - the exchange policy (every realization vs every n-th),
//
// and this simulator models exactly those. Processors 1…M−1 run free of
// contention: their k-th realization completes at k·τ_m and each message
// arrives at the collector after the network delay. Processor 0 both
// simulates realizations and services arrived messages on one CPU
// (non-preemptively, messages first), which reproduces the only
// serialization point of the design. The simulated clock is exact; no
// wall time passes.
//
// This is the documented substitution for the Siberian Supercomputer
// Center hardware (see DESIGN.md): the paper's claim under test — T_comp
// inversely proportional to M with no crossover between curves — is a
// property of this queueing structure, not of the specific cluster.
package clustersim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/lcg"
	"parmonc/internal/stat"
	"parmonc/internal/store"
	"parmonc/internal/u128"
)

// Params configures one simulated cluster run.
type Params struct {
	M int // number of processors (all simulate; processor 0 also collects)

	TauSeconds float64 // mean time to simulate one realization
	TauSpread  float64 // relative processor speed spread in [0,1); τ_m = τ·(1 + TauSpread·(u_m − 0.5))

	MsgBytes       int64   // bytes per subtotal message (paper: ≈ 120·1024)
	LatencySeconds float64 // network latency per message
	BandwidthBps   float64 // network bandwidth, bytes/second

	ServiceSeconds float64 // collector time to merge + save one message

	PassEvery int64 // realizations per message; 1 = the paper's strict mode
}

// Validate checks the parameter invariants.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("clustersim: M = %d must be >= 1", p.M)
	}
	if p.TauSeconds <= 0 {
		return fmt.Errorf("clustersim: τ = %g must be positive", p.TauSeconds)
	}
	if p.TauSpread < 0 || p.TauSpread >= 1 {
		return fmt.Errorf("clustersim: τ spread %g outside [0,1)", p.TauSpread)
	}
	if p.MsgBytes < 0 {
		return fmt.Errorf("clustersim: negative message size %d", p.MsgBytes)
	}
	if p.LatencySeconds < 0 || p.ServiceSeconds < 0 {
		return fmt.Errorf("clustersim: negative latency or service time")
	}
	if p.BandwidthBps <= 0 {
		return fmt.Errorf("clustersim: bandwidth %g must be positive", p.BandwidthBps)
	}
	if p.PassEvery < 1 {
		return fmt.Errorf("clustersim: PassEvery %d must be >= 1", p.PassEvery)
	}
	return nil
}

// PaperParams returns parameters matching the paper's Sec. 4 test:
// τ ≈ 7.7 s, ≈120 KB per message, gigabit-class interconnect, strict
// exchange after every realization.
func PaperParams(m int) Params {
	return Params{
		M:              m,
		TauSeconds:     7.7,
		TauSpread:      0.05,
		MsgBytes:       120 * 1024,
		LatencySeconds: 50e-6,
		BandwidthBps:   100e6,
		ServiceSeconds: 2e-3,
		PassEvery:      1,
	}
}

// Result is the outcome of a simulated run.
type Result struct {
	TCompSeconds     float64 // time the collector finished processing all L realizations
	Messages         int64   // messages the collector processed (excluding its own local saves)
	CollectorBusy    float64 // seconds the collector spent servicing messages and local saves
	Realizations     int64   // total realizations simulated (= requested L)
	SlowestProcessor float64 // finish time of the slowest processor's simulation work

	// Metrics are the collector engine's counters for the simulated
	// run: the simulator drives the same internal/collect engine as the
	// real transports, with simulated time injected as its clock.
	Metrics collect.MetricsSnapshot
}

// arrival is one message in flight to the collector.
type arrival struct {
	at    float64 // arrival time at the collector
	from  int     // sending processor index
	count int64   // realizations accounted by this message
}

// arrivalHeap merges the per-processor arrival streams by time.
type arrivalHeap []arrival

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// tau returns processor m's per-realization time, deterministically
// jittered with the library's own generator so runs are reproducible.
func (p Params) tau(m int) float64 {
	if p.TauSpread == 0 {
		return p.TauSeconds
	}
	g := lcg.New()
	// A fixed, well-separated substream per processor.
	g.SkipAhead(u128.From64(uint64(m + 1)).Lsh(40))
	u := g.Float64()
	return p.TauSeconds * (1 + p.TauSpread*(u-0.5))
}

// netDelay is the one-way message transfer time.
func (p Params) netDelay() float64 {
	return p.LatencySeconds + float64(p.MsgBytes)/p.BandwidthBps
}

// Simulate runs the cluster for a total of L realizations split evenly
// over the M processors (processor m gets L/M rounded as in the real
// driver) and returns the simulated timings.
//
// The collector side is the real engine: every serviced message is a
// collect.Collector.Push and every save a collect.Collector.Save,
// with the simulated clock injected via collect.Config.Now — the same
// lifecycle code the goroutine and RPC transports run, exercised at
// processor counts the host cannot reach.
func Simulate(p Params, L int64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if L < 1 {
		return Result{}, fmt.Errorf("clustersim: L = %d must be >= 1", L)
	}

	quota := func(m int) int64 {
		q := L / int64(p.M)
		if int64(m) < L%int64(p.M) {
			q++
		}
		return q
	}
	delay := p.netDelay()

	// The engine runs in-memory (nil store) on simulated time. Each
	// message carries only its realization count: the statistical
	// payload is irrelevant to the timing model, so subtotals are
	// zero-moment snapshots of the right volume.
	var simNow float64 // seconds; the simulated clock the engine reads
	epoch := time.Unix(0, 0)
	eng, err := collect.New(nil, store.RunMeta{
		Nrow: 1, Ncol: 1,
		MaxSV: L,
		Gamma: stat.DefaultConfidenceCoefficient,
	}, collect.Config{
		Now: func() time.Time {
			return epoch.Add(time.Duration(simNow * float64(time.Second)))
		},
	})
	if err != nil {
		return Result{}, err
	}
	for m := 0; m < p.M; m++ {
		eng.Register(m)
	}
	countSnap := func(n int64) stat.Snapshot {
		return stat.Snapshot{Nrow: 1, Ncol: 1, Sum: []float64{0}, Sum2: []float64{0}, N: n}
	}

	// Build the arrival stream from processors 1..M-1. Processor m's
	// k-th realization completes at k·τ_m (1-based); a message departs
	// after every PassEvery realizations and after the final one.
	h := &arrivalHeap{}
	var slowest float64
	for m := 1; m < p.M; m++ {
		q := quota(m)
		if q == 0 {
			continue
		}
		tm := p.tau(m)
		finish := float64(q) * tm
		if finish > slowest {
			slowest = finish
		}
		var sentAt int64
		for k := p.PassEvery; k <= q; k += p.PassEvery {
			heap.Push(h, arrival{at: float64(k)*tm + delay, from: m, count: p.PassEvery})
			sentAt = k
		}
		if rem := q - sentAt; rem > 0 {
			heap.Push(h, arrival{at: finish + delay, from: m, count: rem})
		}
	}

	// Processor 0's CPU runs realizations and message service
	// non-preemptively, servicing arrived messages first. It also
	// "saves" its own subtotals every PassEvery realizations (a local
	// merge+save, no network). Every merge+save goes through the
	// engine: ServiceSeconds is the modelled cost of that pair.
	var (
		t          float64 // processor-0 clock
		busy       float64 // collector busy time
		messages   int64
		q0         = quota(0)
		done0      int64 // processor-0 realizations completed
		sinceSave0 int64
		tau0       = p.tau(0)
	)

	mergeSave := func(from int, count int64) error {
		simNow = t
		if err := eng.Push(from, countSnap(count)); err != nil {
			return fmt.Errorf("clustersim: internal: %w", err)
		}
		return eng.Save()
	}
	serviceOne := func(a arrival) error {
		if a.at > t {
			t = a.at
		}
		t += p.ServiceSeconds
		busy += p.ServiceSeconds
		messages++
		return mergeSave(a.from, a.count)
	}

	for !eng.TargetReached() {
		// Service every message that has already arrived.
		if h.Len() > 0 && (*h)[0].at <= t {
			if err := serviceOne(heap.Pop(h).(arrival)); err != nil {
				return Result{}, err
			}
			continue
		}
		if done0 < q0 {
			// Work on the next local realization.
			t += tau0
			done0++
			sinceSave0++
			if sinceSave0 == p.PassEvery || done0 == q0 {
				// Local merge+save of processor 0's own subtotal.
				t += p.ServiceSeconds
				busy += p.ServiceSeconds
				if err := mergeSave(0, sinceSave0); err != nil {
					return Result{}, err
				}
				sinceSave0 = 0
			}
			continue
		}
		// Idle until the next arrival.
		if h.Len() == 0 {
			return Result{}, fmt.Errorf("clustersim: internal: collector starved with %d/%d accounted", eng.N(), L)
		}
		if err := serviceOne(heap.Pop(h).(arrival)); err != nil {
			return Result{}, err
		}
	}
	end0 := float64(done0) * tau0
	if end0 > slowest {
		slowest = end0
	}

	return Result{
		TCompSeconds:     t,
		Messages:         messages,
		CollectorBusy:    busy,
		Realizations:     eng.N(),
		SlowestProcessor: slowest,
		Metrics:          eng.Metrics(),
	}, nil
}

// Sweep runs Simulate for every L in ls and returns the T_comp series —
// one curve of the paper's Fig. 2.
func Sweep(p Params, ls []int64) ([]Result, error) {
	out := make([]Result, len(ls))
	for i, l := range ls {
		r, err := Simulate(p, l)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// SaturationProcessors returns the analytic estimate of the processor
// count at which the collector saturates: the point where the message
// service demand equals the collector's capacity. Each of the M−1
// remote processors emits one message per PassEvery·τ seconds costing
// ServiceSeconds, and processor 0 also spends τ per own realization, so
// saturation sets in near
//
//	M* ≈ PassEvery·τ/ServiceSeconds + 1.
//
// Beyond M* additional processors stop helping: the paper's linear
// speedup claim implicitly requires M ≪ M* (with the paper's numbers,
// M* ≈ 7.7/0.002 ≈ 3850 ≫ 512, which is why Fig. 2 stays linear).
func SaturationProcessors(p Params) float64 {
	if p.ServiceSeconds <= 0 {
		return math.Inf(1)
	}
	return float64(p.PassEvery)*p.TauSeconds/p.ServiceSeconds + 1
}
