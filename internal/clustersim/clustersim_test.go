package clustersim

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := PaperParams(8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.TauSeconds = 0 },
		func(p *Params) { p.TauSpread = 1 },
		func(p *Params) { p.TauSpread = -0.1 },
		func(p *Params) { p.MsgBytes = -1 },
		func(p *Params) { p.LatencySeconds = -1 },
		func(p *Params) { p.BandwidthBps = 0 },
		func(p *Params) { p.PassEvery = 0 },
		func(p *Params) { p.ServiceSeconds = -1 },
	}
	for i, mutate := range bad {
		p := PaperParams(8)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSimulateRejectsBadL(t *testing.T) {
	if _, err := Simulate(PaperParams(4), 0); err == nil {
		t.Fatal("expected error for L = 0")
	}
}

func TestSingleProcessorBaseline(t *testing.T) {
	// M = 1 with no spread: T = L·(τ + service) exactly in strict mode.
	p := PaperParams(1)
	p.TauSpread = 0
	res, err := Simulate(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (p.TauSeconds + p.ServiceSeconds)
	if math.Abs(res.TCompSeconds-want) > 1e-9 {
		t.Fatalf("T = %g, want %g", res.TCompSeconds, want)
	}
	if res.Messages != 0 {
		t.Fatalf("M=1 produced %d network messages", res.Messages)
	}
	if res.Realizations != 100 {
		t.Fatalf("accounted %d realizations", res.Realizations)
	}
}

func TestLinearSpeedupPaperShape(t *testing.T) {
	// The paper's headline claim: for all L, speedup ∝ M, despite the
	// strict per-realization exchange. Check T(1)/T(M) ≈ M within 15%
	// across the full Fig. 2 range of processor counts.
	const L = 15360 // divisible by 512
	base, err := Simulate(PaperParams(1), L)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{8, 16, 32, 64, 128, 256, 512} {
		res, err := Simulate(PaperParams(m), L)
		if err != nil {
			t.Fatal(err)
		}
		speedup := base.TCompSeconds / res.TCompSeconds
		if speedup < 0.85*float64(m) || speedup > 1.1*float64(m) {
			t.Errorf("M=%d: speedup %.1f, want ≈ %d", m, speedup, m)
		}
	}
}

func TestTCompLinearInL(t *testing.T) {
	// For fixed M, T_comp grows linearly in L (the straight lines of
	// Fig. 2): doubling L should roughly double T.
	p := PaperParams(32)
	r1, err := Simulate(p, 3200)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(p, 6400)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.TCompSeconds / r1.TCompSeconds
	if math.Abs(ratio-2) > 0.1 {
		t.Fatalf("T(2L)/T(L) = %g, want ≈ 2", ratio)
	}
}

func TestNoCurveCrossover(t *testing.T) {
	// Within each Fig. 2 panel, more processors is faster at every L.
	panels := [][]int{{1, 8}, {8, 16, 32}, {32, 64, 128}, {128, 256, 512}}
	ls := []int64{1024, 2048, 4096, 8192, 15360}
	for _, panel := range panels {
		for _, l := range ls {
			prev := math.Inf(1)
			for _, m := range panel {
				res, err := Simulate(PaperParams(m), l)
				if err != nil {
					t.Fatal(err)
				}
				if res.TCompSeconds >= prev {
					t.Errorf("L=%d: T(M=%d) = %g not below previous %g", l, m, res.TCompSeconds, prev)
				}
				prev = res.TCompSeconds
			}
		}
	}
}

func TestAllRealizationsAccounted(t *testing.T) {
	for _, m := range []int{1, 3, 7, 64} {
		res, err := Simulate(PaperParams(m), 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Realizations != 1000 {
			t.Errorf("M=%d: accounted %d/1000", m, res.Realizations)
		}
	}
}

func TestEngineMetricsMatchSimulation(t *testing.T) {
	// The simulator drives the real collector engine, so the engine's
	// counters and the simulator's own bookkeeping must tell one story:
	// every serviced network message plus every processor-0 local save
	// is exactly one push, one merge and one save, and nothing is ever
	// rejected.
	for _, m := range []int{1, 4, 32} {
		res, err := Simulate(PaperParams(m), 500)
		if err != nil {
			t.Fatal(err)
		}
		mx := res.Metrics
		if mx.RejectedSnapshots != 0 {
			t.Errorf("M=%d: %d rejected snapshots", m, mx.RejectedSnapshots)
		}
		if mx.Pushes != mx.Merges || mx.Saves != mx.Merges {
			t.Errorf("M=%d: pushes/merges/saves = %d/%d/%d, want all equal",
				m, mx.Pushes, mx.Merges, mx.Saves)
		}
		localSaves := mx.Merges - res.Messages
		if localSaves < 1 {
			t.Errorf("M=%d: merges %d <= network messages %d; processor 0's local saves missing",
				m, mx.Merges, res.Messages)
		}
		if mx.RegisteredWorkers != int64(m) {
			t.Errorf("M=%d: RegisteredWorkers = %d", m, mx.RegisteredWorkers)
		}
	}
}

func TestMessageCountStrictMode(t *testing.T) {
	// Strict mode, M processors: every realization of processors 1..M-1
	// becomes one network message.
	p := PaperParams(4)
	p.TauSpread = 0
	res, err := Simulate(p, 400)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(300); res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
}

func TestRelaxedExchangeFewerMessages(t *testing.T) {
	strict := PaperParams(8)
	relaxed := PaperParams(8)
	relaxed.PassEvery = 50
	rs, err := Simulate(strict, 4000)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Simulate(relaxed, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Messages >= rs.Messages/10 {
		t.Fatalf("relaxed messages %d not ≪ strict %d", rr.Messages, rs.Messages)
	}
	if rr.CollectorBusy >= rs.CollectorBusy {
		t.Fatalf("relaxed collector busy %g not below strict %g", rr.CollectorBusy, rs.CollectorBusy)
	}
	// And the run must not be slower.
	if rr.TCompSeconds > rs.TCompSeconds*1.01 {
		t.Fatalf("relaxed T %g worse than strict %g", rr.TCompSeconds, rs.TCompSeconds)
	}
}

func TestCollectorSaturation(t *testing.T) {
	// When service time × message rate exceeds one, the collector is the
	// bottleneck and speedup must degrade: a sanity check that the model
	// can express the regime the paper avoids.
	p := PaperParams(512)
	p.ServiceSeconds = 0.1 // pathological: 0.1 s per message
	res, err := Simulate(p, 15360)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(PaperParams(1), 15360)
	if err != nil {
		t.Fatal(err)
	}
	speedup := base.TCompSeconds / res.TCompSeconds
	if speedup > 256 {
		t.Fatalf("speedup %g despite saturated collector", speedup)
	}
	// Collector busy time must dominate the run.
	if res.CollectorBusy < 0.5*res.TCompSeconds {
		t.Fatalf("collector busy %g of %g: expected saturation", res.CollectorBusy, res.TCompSeconds)
	}
}

func TestHeterogeneousProcessorsStillComplete(t *testing.T) {
	p := PaperParams(16)
	p.TauSpread = 0.5
	res, err := Simulate(p, 1600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Realizations != 1600 {
		t.Fatalf("accounted %d", res.Realizations)
	}
	// T_comp is at least the slowest processor's compute time.
	if res.TCompSeconds < res.SlowestProcessor {
		t.Fatalf("T = %g below slowest processor %g", res.TCompSeconds, res.SlowestProcessor)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Simulate(PaperParams(32), 3200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(PaperParams(32), 3200)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSweep(t *testing.T) {
	ls := []int64{100, 200, 400}
	rs, err := Sweep(PaperParams(8), ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].TCompSeconds <= rs[i-1].TCompSeconds {
			t.Fatal("T_comp not increasing in L")
		}
	}
}

func TestMoreWorkersThanRealizations(t *testing.T) {
	res, err := Simulate(PaperParams(64), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Realizations != 10 {
		t.Fatalf("accounted %d", res.Realizations)
	}
}

func BenchmarkSimulate512x15360(b *testing.B) {
	p := PaperParams(512)
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p, 15360); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSaturationPrediction(t *testing.T) {
	// The analytic M* must separate the scaling regime from the
	// saturated regime in the event simulation.
	p := PaperParams(1)
	p.ServiceSeconds = 0.05 // M* ≈ 155
	mStar := SaturationProcessors(p)
	if mStar < 100 || mStar > 200 {
		t.Fatalf("M* = %g, want ≈ 155", mStar)
	}

	// Efficiency declines like 1/(1 + (M−1)·s/τ): gentle well below M*,
	// collapsed past it. Compare against the same-parameter M = 1 run.
	const L = 25600
	base, err := Simulate(p, L)
	if err != nil {
		t.Fatal(err)
	}
	pLow := p
	pLow.M = 16 // (M−1)·s/τ ≈ 0.10 → efficiency ≈ 0.9
	low, err := Simulate(pLow, L)
	if err != nil {
		t.Fatal(err)
	}
	if eff := base.TCompSeconds / low.TCompSeconds / 16; eff < 0.8 {
		t.Fatalf("efficiency %g at M ≪ M*", eff)
	}
	pHigh := p
	pHigh.M = 512 // ≈ 3.3·M* → collector-bound
	high, err := Simulate(pHigh, L)
	if err != nil {
		t.Fatal(err)
	}
	if eff := base.TCompSeconds / high.TCompSeconds / 512; eff > 0.5 {
		t.Fatalf("efficiency %g did not collapse past M*", eff)
	}
}

func TestSaturationInfiniteWithoutServiceCost(t *testing.T) {
	p := PaperParams(8)
	p.ServiceSeconds = 0
	if got := SaturationProcessors(p); !math.IsInf(got, 1) {
		t.Fatalf("M* = %g, want +Inf", got)
	}
}

func TestPaperRegimeFarFromSaturation(t *testing.T) {
	// With the paper's parameters M* ≈ 3850 ≫ 512: the Fig. 2 range is
	// safely in the linear regime — the quantitative backing of the
	// paper's "neglect the time expenses" argument.
	mStar := SaturationProcessors(PaperParams(1))
	if mStar < 2000 {
		t.Fatalf("M* = %g; expected ≫ 512", mStar)
	}
}
