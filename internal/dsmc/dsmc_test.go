package dsmc

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testGas() Gas {
	return Gas{N: 200, Nu: 1, Tx: 3, Ty: 1}
}

func TestValidate(t *testing.T) {
	if err := testGas().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Gas{
		{N: 1, Nu: 1, Tx: 1, Ty: 1},
		{N: 10, Nu: 0, Tx: 1, Ty: 1},
		{N: 10, Nu: 1, Tx: 0, Ty: 1},
		{N: 10, Nu: 1, Tx: 1, Ty: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRelaxArguments(t *testing.T) {
	g := testGas()
	s := stream(t)
	if err := g.Relax(s, nil, nil); err == nil {
		t.Error("empty times accepted")
	}
	if err := g.Relax(s, []float64{1, 0.5}, make([]float64, 6)); err == nil {
		t.Error("non-ascending times accepted")
	}
	if err := g.Relax(s, []float64{-1}, make([]float64, 3)); err == nil {
		t.Error("negative time accepted")
	}
	if err := g.Relax(s, []float64{1}, make([]float64, 2)); err == nil {
		t.Error("short out accepted")
	}
}

func TestCollisionConservesExactly(t *testing.T) {
	s := stream(t)
	for trial := 0; trial < 1000; trial++ {
		a := [3]float64{s.Float64()*4 - 2, s.Float64()*4 - 2, s.Float64()*4 - 2}
		b := [3]float64{s.Float64()*4 - 2, s.Float64()*4 - 2, s.Float64()*4 - 2}
		e0, p0 := EnergyAndMomentum([][3]float64{a, b})
		Collide(s, &a, &b)
		e1, p1 := EnergyAndMomentum([][3]float64{a, b})
		if math.Abs(e1-e0) > 1e-12*(1+math.Abs(e0)) {
			t.Fatalf("energy changed: %g → %g", e0, e1)
		}
		for k := 0; k < 3; k++ {
			if math.Abs(p1[k]-p0[k]) > 1e-12 {
				t.Fatalf("momentum %d changed: %g → %g", k, p0[k], p1[k])
			}
		}
	}
}

func TestAnisotropyDecaysToEquilibrium(t *testing.T) {
	// Full pipeline: E[T_x(t) − T_y(t)] must follow (T_x0 − T_y0)·e^{−νt/2}
	// and both components approach T_eq = (T_x0 + 2 T_y0)/3.
	g := testGas()
	times := []float64{0.5, 1, 2, 4, 8}
	cfg := core.Config{
		Nrow: len(times), Ncol: NMoments,
		MaxSamples: 400,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return g.Relax(src, times, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		gotAniso := res.Report.MeanAt(i, TempX) - res.Report.MeanAt(i, TempY)
		wantAniso := g.Anisotropy(tt)
		// Statistical tolerance plus a small O(1/N) systematic allowance.
		tol := (res.Report.AbsErrAt(i, TempX)+res.Report.AbsErrAt(i, TempY))*4/3 + 0.05
		if math.Abs(gotAniso-wantAniso) > tol {
			t.Errorf("anisotropy(%g) = %g, want %g ± %g", tt, gotAniso, wantAniso, tol)
		}
	}
	// At t = 8 (rate ν/2 → e^{-4} ≈ 0.018 of initial) all temperatures
	// are at equilibrium.
	last := len(times) - 1
	teq := g.Equilibrium()
	for _, col := range []int{TempX, TempY, TempZ} {
		if got := res.Report.MeanAt(last, col); math.Abs(got-teq)/teq > 0.05 {
			t.Errorf("component %d: T(∞) = %g, want %g", col, got, teq)
		}
	}
}

func TestEnergyConservedThroughRelaxation(t *testing.T) {
	// T_x + T_y + T_z must equal its initial expectation at every
	// sample time — energy is exactly conserved per realization, so the
	// only fluctuation is the initial Gaussian draw.
	g := testGas()
	times := []float64{0.5, 2, 8}
	out := make([]float64, len(times)*NMoments)
	s := stream(t)
	var sumInit, sumLate float64
	const reps = 200
	for r := 0; r < reps; r++ {
		if err := g.Relax(s, times, out); err != nil {
			t.Fatal(err)
		}
		sumInit += out[0*NMoments+TempX] + out[0*NMoments+TempY] + out[0*NMoments+TempZ]
		sumLate += out[2*NMoments+TempX] + out[2*NMoments+TempY] + out[2*NMoments+TempZ]
	}
	if math.Abs(sumInit-sumLate)/sumInit > 1e-9 {
		t.Fatalf("total energy drifted: %g vs %g", sumInit/reps, sumLate/reps)
	}
	want := g.Tx + 2*g.Ty
	if math.Abs(sumInit/reps-want)/want > 0.05 {
		t.Fatalf("initial energy %g, want %g", sumInit/reps, want)
	}
}

func TestEquilibriumValue(t *testing.T) {
	g := Gas{N: 10, Nu: 1, Tx: 6, Ty: 3}
	if got := g.Equilibrium(); got != 4 {
		t.Fatalf("T_eq = %g, want 4", got)
	}
	if got := g.Anisotropy(0); got != 3 {
		t.Fatalf("anisotropy(0) = %g", got)
	}
}

func BenchmarkRelax200(b *testing.B) {
	g := testGas()
	times := []float64{0.5, 1, 2, 4}
	out := make([]float64, len(times)*NMoments)
	s := stream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Relax(s, times, out); err != nil {
			b.Fatal(err)
		}
	}
}
