// Package dsmc implements direct simulation Monte Carlo of a spatially
// homogeneous gas of Maxwell molecules — the Boltzmann-equation
// application the paper lists (Sec. 2.1, "modeling multi-particle
// problems, solving the Boltzmann ... equations").
//
// N model particles carry 3-D velocities. Collisions occur at a
// velocity-independent rate (the defining property of Maxwell
// molecules): a uniformly random pair scatters isotropically in its
// centre-of-mass frame, which conserves momentum and kinetic energy
// exactly. Starting from an anisotropic Gaussian (temperature T_x ≠
// T_y = T_z), the component temperatures relax exponentially to the
// common equilibrium T = (T_x + 2·T_y)/3; for isotropic Maxwell
// molecules the anisotropy decay rate is ν/2 per unit time, where ν is
// the per-particle collision frequency. Both the conservation laws and
// the relaxation target are exact checks on the simulation.
package dsmc

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Gas describes one homogeneous DSMC relaxation simulation.
type Gas struct {
	N  int     // number of model particles (>= 2)
	Nu float64 // per-particle collision frequency (> 0)
	Tx float64 // initial temperature of the x component (> 0)
	Ty float64 // initial temperature of the y and z components (> 0)
}

// Validate checks the gas invariants.
func (g Gas) Validate() error {
	if g.N < 2 {
		return fmt.Errorf("dsmc: N = %d must be >= 2", g.N)
	}
	if g.Nu <= 0 {
		return fmt.Errorf("dsmc: collision frequency %g must be positive", g.Nu)
	}
	if g.Tx <= 0 || g.Ty <= 0 {
		return fmt.Errorf("dsmc: temperatures (%g, %g) must be positive", g.Tx, g.Ty)
	}
	return nil
}

// Moments indexes the per-sample-time columns of the realization.
const (
	TempX = iota // ⟨v_x²⟩
	TempY        // ⟨v_y²⟩
	TempZ        // ⟨v_z²⟩
	NMoments
)

// Equilibrium returns the common temperature the components relax to.
func (g Gas) Equilibrium() float64 { return (g.Tx + 2*g.Ty) / 3 }

// Anisotropy returns the predicted T_x − T_y at time t: the initial
// anisotropy damped at rate ν/2 (isotropic Maxwell molecules).
func (g Gas) Anisotropy(t float64) float64 {
	return (g.Tx - g.Ty) * math.Exp(-g.Nu*t/2)
}

// Relax simulates one realization from the anisotropic initial state
// and records the three component temperatures at each sample time
// (ascending). out is row-major len(times)×NMoments.
func (g Gas) Relax(src dist.Source, times []float64, out []float64) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if len(times) == 0 || len(out) != len(times)*NMoments {
		return fmt.Errorf("dsmc: need len(out) == %d×%d", len(times), NMoments)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return fmt.Errorf("dsmc: sample times must be ascending")
		}
	}
	if times[0] < 0 {
		return fmt.Errorf("dsmc: negative sample time")
	}

	// Initial anisotropic Maxwellian.
	v := make([][3]float64, g.N)
	var normal dist.Normal
	sx, sy := math.Sqrt(g.Tx), math.Sqrt(g.Ty)
	for i := range v {
		v[i][0] = sx * normal.Sample(src)
		v[i][1] = sy * normal.Sample(src)
		v[i][2] = sy * normal.Sample(src)
	}

	record := func(k int) {
		var tx, ty, tz float64
		for i := range v {
			tx += v[i][0] * v[i][0]
			ty += v[i][1] * v[i][1]
			tz += v[i][2] * v[i][2]
		}
		n := float64(g.N)
		out[k*NMoments+TempX] = tx / n
		out[k*NMoments+TempY] = ty / n
		out[k*NMoments+TempZ] = tz / n
	}

	// Total pair-collision rate: each particle collides at rate ν, each
	// collision involves two particles → ν·N/2 events per unit time.
	totalRate := g.Nu * float64(g.N) / 2
	t := 0.0
	next := 0
	for next < len(times) {
		dt := dist.Exponential(src, totalRate)
		for next < len(times) && times[next] <= t+dt {
			record(next)
			next++
		}
		t += dt
		if next >= len(times) {
			break
		}
		// Uniform pair, isotropic post-collision relative velocity.
		i := dist.Choice(src, g.N)
		j := dist.Choice(src, g.N-1)
		if j >= i {
			j++
		}
		collide(src, &v[i], &v[j])
	}
	return nil
}

// collide scatters the pair isotropically in its centre-of-mass frame,
// conserving momentum and energy exactly.
func collide(src dist.Source, a, b *[3]float64) {
	var cm, rel [3]float64
	var relMag float64
	for k := 0; k < 3; k++ {
		cm[k] = (a[k] + b[k]) / 2
		rel[k] = a[k] - b[k]
		relMag += rel[k] * rel[k]
	}
	relMag = math.Sqrt(relMag)
	// Isotropic unit vector: cos θ uniform on [−1, 1], φ uniform.
	cosT := dist.Uniform(src, -1, 1)
	sinT := math.Sqrt(1 - cosT*cosT)
	phi := dist.Uniform(src, 0, 2*math.Pi)
	omega := [3]float64{sinT * math.Cos(phi), sinT * math.Sin(phi), cosT}
	for k := 0; k < 3; k++ {
		a[k] = cm[k] + relMag/2*omega[k]
		b[k] = cm[k] - relMag/2*omega[k]
	}
}

// EnergyAndMomentum returns the total kinetic energy and momentum of a
// velocity set — exported for the conservation tests.
func EnergyAndMomentum(v [][3]float64) (energy float64, momentum [3]float64) {
	for i := range v {
		for k := 0; k < 3; k++ {
			energy += v[i][k] * v[i][k]
			momentum[k] += v[i][k]
		}
	}
	return energy / 2, momentum
}

// Collide exposes the pair-collision kernel for tests.
func Collide(src dist.Source, a, b *[3]float64) { collide(src, a, b) }
