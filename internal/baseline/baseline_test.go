package baseline

import (
	"testing"

	"parmonc/internal/rngtest"
)

func TestMult40Value(t *testing.T) {
	// 5^17 = 762939453125, which is below 2^40 so no reduction occurs.
	var m uint64 = 1
	for i := 0; i < 17; i++ {
		m *= 5
	}
	if Mult40 != m {
		t.Fatalf("Mult40 = %d, want %d", Mult40, m)
	}
	if Mult40&7 != 5 {
		t.Fatalf("Mult40 mod 8 = %d, want 5", Mult40&7)
	}
}

func TestStatesStayIn40Bits(t *testing.T) {
	g := New40()
	for i := 0; i < 100000; i++ {
		if s := g.Next(); s >= 1<<R40 {
			t.Fatalf("state %d exceeds 2^40", s)
		}
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	g := New40()
	for i := 0; i < 100000; i++ {
		v := g.Float64()
		if v <= 0 || v >= 1 {
			t.Fatalf("α = %g", v)
		}
	}
}

func TestSkipAheadMatchesStepping(t *testing.T) {
	for _, n := range []uint64{0, 1, 5, 1000, 99991} {
		a, b := New40(), New40()
		a.SkipAhead(n)
		for i := uint64(0); i < n; i++ {
			b.Next()
		}
		if a.State() != b.State() {
			t.Fatalf("SkipAhead(%d): %d vs %d", n, a.State(), b.State())
		}
	}
}

func TestPeriodLawOnSmallModuli(t *testing.T) {
	// The period of u·5^odd mod 2^r is 2^(r-2): verify by enumeration
	// for several r — this is the law behind both the baseline's 2^38
	// and the 128-bit generator's 2^126.
	for _, r := range []uint{8, 12, 16, 20, 24} {
		n, err := CycleLength(r, 17)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(1) << (r - 2); n != want {
			t.Errorf("r=%d: cycle %d, want %d", r, n, want)
		}
	}
}

func TestCycleLengthValidation(t *testing.T) {
	if _, err := CycleLength(2, 17); err == nil {
		t.Error("r=2 accepted")
	}
	if _, err := CycleLength(40, 17); err == nil {
		t.Error("r=40 accepted (not enumerable)")
	}
	if _, err := CycleLength(16, 0); err == nil {
		t.Error("mexp=0 accepted")
	}
}

func TestDrawsPerRealization(t *testing.T) {
	// The paper's SDE test draws ~2·10^8 normals per realization, i.e.
	// ~4·10^8 uniforms: the baseline generator fits only ~343
	// realizations in its usable half-period — the motivation for the
	// 128-bit generator.
	got, err := DrawsPerRealization(4e8)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1000 {
		t.Fatalf("baseline fits %d heavy realizations; expected catastrophically few", got)
	}
	if got == 0 {
		t.Fatal("expected at least one realization")
	}
	if _, err := DrawsPerRealization(0); err == nil {
		t.Fatal("zero draws accepted")
	}
}

func TestBaselinePassesBasicUniformity(t *testing.T) {
	// The 40-bit generator is statistically fine at small scale — its
	// flaw is the period, not short-range uniformity. The battery must
	// pass, which sharpens the point of the comparison.
	verdicts, err := rngtest.Battery(New40(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if !v.Pass(1e-4) {
			t.Errorf("baseline failed %s", v)
		}
	}
}

func TestPeriodConstant(t *testing.T) {
	if Period40 != 1<<38 {
		t.Fatalf("Period40 = %d", Period40)
	}
}

func BenchmarkNext40(b *testing.B) {
	g := New40()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkFloat64_40(b *testing.B) {
	g := New40()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = g.Float64()
	}
	_ = sink
}
