// Package baseline implements the previous-generation congruential
// generator the paper measures the 128-bit generator against: the
// "well known RNG with special parameters r = 40 and A = 5^17" whose
// period 2^38 ≈ 2.75·10^11 "is not sufficient for the up-to-date
// computations" (Sec. 2.2). It exists so the benchmark harness can
// reproduce the paper's motivation quantitatively: speed per draw,
// period headroom, and how quickly a massively parallel run exhausts
// the short period.
package baseline

import (
	"fmt"

	"parmonc/internal/u128"
)

// R40 is the modulus exponent of the baseline generator.
const R40 = 40

// Mult40 is A = 5^17 mod 2^40.
const Mult40 = 762939453125 % (1 << R40) // 5^17 = 762939453125 < 2^40

// Period40 is the period of the baseline generator, 2^38.
const Period40 = uint64(1) << (R40 - 2)

// mask40 keeps the low 40 bits.
const mask40 = (uint64(1) << R40) - 1

// Gen40 is the 40-bit multiplicative congruential generator
// u_{k+1} = u_k·5^17 mod 2^40, α_k = u_k·2^-40.
type Gen40 struct {
	state uint64
}

// New40 returns the generator at the canonical state u_0 = 1.
func New40() *Gen40 { return &Gen40{state: 1} }

// Next advances one step and returns the new state.
func (g *Gen40) Next() uint64 {
	g.state = (g.state * Mult40) & mask40
	return g.state
}

// Float64 advances and returns α = u·2^-40 ∈ (0,1).
func (g *Gen40) Float64() float64 {
	return float64(g.Next()) / float64(uint64(1)<<R40)
}

// State returns the current state.
func (g *Gen40) State() uint64 { return g.state }

// SkipAhead advances by n steps via A^n mod 2^40.
func (g *Gen40) SkipAhead(n uint64) {
	a := u128.ExpUint(u128.From64(Mult40), n)
	g.state = (g.state * (a.Lo & mask40)) & mask40
}

// DrawsPerRealization estimates how many realizations of a workload
// drawing perRealization base random numbers fit into the usable half
// of the baseline period before the sequence wraps — the quantity the
// paper calls out: "the simulation of a single realization may demand a
// quantity of base random numbers comparable with the whole period".
func DrawsPerRealization(perRealization uint64) (realizations uint64, err error) {
	if perRealization == 0 {
		return 0, fmt.Errorf("baseline: perRealization must be positive")
	}
	return (Period40 / 2) / perRealization, nil
}

// CycleLength iterates the generator u·(5^mexp) mod 2^r from u=1 until
// it returns to 1 and reports the cycle length. It is exact and
// feasible for r ≤ ~30; it exists to verify the 2^(r-2) period law the
// paper's capacity arithmetic rests on, on moduli small enough to
// enumerate.
func CycleLength(r uint, mexp uint) (uint64, error) {
	if r < 3 || r > 34 {
		return 0, fmt.Errorf("baseline: r = %d outside enumerable range [3, 34]", r)
	}
	if mexp == 0 {
		return 0, fmt.Errorf("baseline: multiplier exponent must be positive")
	}
	mask := (uint64(1) << r) - 1
	mult := uint64(1)
	for i := uint(0); i < mexp; i++ {
		mult = (mult * 5) & mask
	}
	state := uint64(1)
	var n uint64
	limit := uint64(1) << r
	for {
		state = (state * mult) & mask
		n++
		if state == 1 {
			return n, nil
		}
		if n > limit {
			return 0, fmt.Errorf("baseline: no cycle within 2^%d iterations", r)
		}
	}
}
