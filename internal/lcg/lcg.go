// Package lcg implements the PARMONC base random number generator:
// the 128-bit multiplicative linear congruential generator of
// Marchenko (PaCT 2011, Sec. 2.4), following Dyadkin & Hamilton's study
// of 128-bit multipliers (Comput. Phys. Comm. 125, 2000):
//
//	u_0 = 1,  u_{k+1} = u_k · A (mod 2^r),  α_k = u_k · 2^{-r}
//
// with r = 128 and A = 5^101 (mod 2^128). The period of the generator is
// 2^{r-2} = 2^126; the paper recommends using only the first half of the
// period, 2^125 numbers.
//
// Because the recurrence is purely multiplicative, skipping ahead by n
// steps is a single multiplication by the leap multiplier
//
//	Â(n) = A^n (mod 2^128),
//
// which is what makes the PARMONC substream hierarchy (experiments ⊃
// processors ⊃ realizations) cheap: positioning a stream anywhere in the
// period costs at most 128 squarings.
package lcg

import (
	"fmt"
	"strings"

	"parmonc/internal/u128"
)

// R is the modulus exponent of the base generator: states live in
// Z/2^R.
const R = 128

// PeriodLog2 is log2 of the generator period (2^126 for r=128).
const PeriodLog2 = R - 2

// UsableLog2 is log2 of the recommended usable stretch — the first half
// of the period (2^125).
const UsableLog2 = PeriodLog2 - 1

// MultiplierExponent is the power of 5 defining the default multiplier
// A = 5^101 mod 2^128 (Dyadkin & Hamilton; used by PARMONC). The paper
// prints the exponent ambiguously; it must be odd (5^odd ≡ 5 mod 8) for
// the period 2^126 the paper claims, and 101 matches the prior MONC
// generator family 5^(2k+1).
const MultiplierExponent = 101

// DefaultMultiplier is A = 5^101 mod 2^128.
var DefaultMultiplier = u128.ExpUint(u128.From64(5), MultiplierExponent)

// DefaultSeed is the canonical starting state u_0 = 1.
var DefaultSeed = u128.One

// Gen is a 128-bit multiplicative congruential generator. The zero value
// is not usable; construct with New or NewWithMultiplier.
//
// Gen is not safe for concurrent use; the PARMONC design gives every
// concurrent unit of work its own substream (see package rng).
type Gen struct {
	state u128.Uint128
	mult  u128.Uint128
}

// New returns a generator with the default multiplier A = 5^101 mod 2^128
// and initial state u_0 = 1.
func New() *Gen {
	return &Gen{state: DefaultSeed, mult: DefaultMultiplier}
}

// NewWithMultiplier returns a generator with the given multiplier and
// initial state u_0 = 1. The multiplier must be ≡ 5 (mod 8) for the
// maximal period 2^126; NewWithMultiplier returns an error otherwise.
func NewWithMultiplier(mult u128.Uint128) (*Gen, error) {
	if mult.Lo&7 != 5 {
		return nil, fmt.Errorf("lcg: multiplier %s is not ≡ 5 (mod 8); period would not be maximal", mult)
	}
	return &Gen{state: DefaultSeed, mult: mult}, nil
}

// State returns the current state u_k.
func (g *Gen) State() u128.Uint128 { return g.state }

// SetState sets the current state. The state must be odd (even states
// collapse onto shorter cycles); SetState returns an error for even
// states.
func (g *Gen) SetState(s u128.Uint128) error {
	if s.Lo&1 == 0 {
		return fmt.Errorf("lcg: state %s is even; generator states must be odd", s)
	}
	g.state = s
	return nil
}

// Multiplier returns the generator multiplier A.
func (g *Gen) Multiplier() u128.Uint128 { return g.mult }

// Next advances the generator one step and returns the new state
// u_{k+1} = u_k · A mod 2^128.
func (g *Gen) Next() u128.Uint128 {
	g.state = g.state.Mul(g.mult)
	return g.state
}

// Float64 advances the generator and returns the base random number
// α = u · 2^-128 ∈ (0, 1). This is the Go analogue of the paper's
// rnd128() routine.
func (g *Gen) Float64() float64 {
	return g.Next().Float64()
}

// SkipAhead advances the generator by n steps in O(log n) time using the
// leap multiplier Â(n) = A^n mod 2^128.
func (g *Gen) SkipAhead(n u128.Uint128) {
	g.state = g.state.Mul(u128.Exp(g.mult, n))
}

// SkipAheadPow2 advances the generator by 2^k steps (k squarings).
func (g *Gen) SkipAheadPow2(k uint) {
	g.state = g.state.Mul(u128.ExpPow2(g.mult, k))
}

// LeapMultiplier returns Â(n) = A^n mod 2^128 for the default multiplier.
func LeapMultiplier(n u128.Uint128) u128.Uint128 {
	return u128.Exp(DefaultMultiplier, n)
}

// LeapMultiplierPow2 returns Â(2^k) = A^(2^k) mod 2^128 for the default
// multiplier. This is the quantity the paper's genparam tool computes for
// user-selected leap exponents.
func LeapMultiplierPow2(k uint) u128.Uint128 {
	return u128.ExpPow2(DefaultMultiplier, k)
}

// Clone returns an independent copy of the generator positioned at the
// same state.
func (g *Gen) Clone() *Gen {
	cp := *g
	return &cp
}

// Marshal returns a compact text form of the generator ("statehex:multhex")
// suitable for checkpoints.
func (g *Gen) Marshal() string {
	return g.state.Hex() + ":" + g.mult.Hex()
}

// Unmarshal restores a generator from the form produced by Marshal.
func Unmarshal(s string) (*Gen, error) {
	stateHex, multHex, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("lcg: malformed generator state %q", s)
	}
	st, err := u128.ParseHex(stateHex)
	if err != nil {
		return nil, fmt.Errorf("lcg: bad state: %w", err)
	}
	mu, err := u128.ParseHex(multHex)
	if err != nil {
		return nil, fmt.Errorf("lcg: bad multiplier: %w", err)
	}
	g := &Gen{mult: mu}
	if err := g.SetState(st); err != nil {
		return nil, err
	}
	return g, nil
}
