package lcg

import (
	"math/big"
	"testing"
	"testing/quick"

	"parmonc/internal/u128"
)

func bigMod128() *big.Int { return new(big.Int).Lsh(big.NewInt(1), 128) }

func toBig(x u128.Uint128) *big.Int {
	b := new(big.Int).SetUint64(x.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(x.Lo))
}

func TestDefaultMultiplierValue(t *testing.T) {
	// A = 5^101 mod 2^128, computed independently with math/big.
	want := new(big.Int).Exp(big.NewInt(5), big.NewInt(101), bigMod128())
	if got := toBig(DefaultMultiplier); got.Cmp(want) != 0 {
		t.Fatalf("DefaultMultiplier = %s, want %s", got, want)
	}
	// The multiplier must be ≡ 5 (mod 8) for period 2^126.
	if DefaultMultiplier.Lo&7 != 5 {
		t.Fatalf("DefaultMultiplier mod 8 = %d, want 5", DefaultMultiplier.Lo&7)
	}
}

func TestNextMatchesBig(t *testing.T) {
	g := New()
	state := big.NewInt(1)
	mult := toBig(DefaultMultiplier)
	m := bigMod128()
	for i := 0; i < 1000; i++ {
		got := g.Next()
		state.Mul(state, mult).Mod(state, m)
		if toBig(got).Cmp(state) != 0 {
			t.Fatalf("step %d: state = %s, want %s", i, got, state)
		}
	}
}

func TestStatesAlwaysOdd(t *testing.T) {
	g := New()
	for i := 0; i < 10000; i++ {
		if s := g.Next(); s.Lo&1 == 0 {
			t.Fatalf("step %d: even state %s", i, s)
		}
	}
}

func TestFloat64InOpenUnitInterval(t *testing.T) {
	g := New()
	for i := 0; i < 100000; i++ {
		v := g.Float64()
		if v <= 0 || v >= 1 {
			t.Fatalf("step %d: α = %g outside (0,1)", i, v)
		}
	}
}

func TestSkipAheadMatchesStepping(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 3, 17, 100, 1000, 4097} {
		a := New()
		b := New()
		a.SkipAhead(u128.From64(n))
		for i := uint64(0); i < n; i++ {
			b.Next()
		}
		if !a.State().Eq(b.State()) {
			t.Errorf("SkipAhead(%d) = %s, stepping gives %s", n, a.State(), b.State())
		}
	}
}

func TestSkipAheadPow2MatchesSkipAhead(t *testing.T) {
	for k := uint(0); k < 20; k++ {
		a := New()
		b := New()
		a.SkipAheadPow2(k)
		b.SkipAhead(u128.One.Lsh(k))
		if !a.State().Eq(b.State()) {
			t.Errorf("SkipAheadPow2(%d) disagrees with SkipAhead(2^%d)", k, k)
		}
	}
}

func TestSkipAheadComposes(t *testing.T) {
	// Skipping m then n must equal skipping m+n: the substream property.
	f := func(m, n uint16) bool {
		a := New()
		a.SkipAhead(u128.From64(uint64(m)))
		a.SkipAhead(u128.From64(uint64(n)))
		b := New()
		b.SkipAhead(u128.From64(uint64(m) + uint64(n)))
		return a.State().Eq(b.State())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkipAheadFarLeap(t *testing.T) {
	// A leap of 2^115 (the default experiment leap) lands where 128
	// squarings say it should; cross-check against math/big.
	g := New()
	g.SkipAheadPow2(115)
	want := new(big.Int).Exp(
		toBig(DefaultMultiplier),
		new(big.Int).Lsh(big.NewInt(1), 115),
		bigMod128(),
	)
	if toBig(g.State()).Cmp(want) != 0 {
		t.Fatalf("leap 2^115: state = %s, want %s", g.State(), want)
	}
}

func TestLeapMultiplierPow2(t *testing.T) {
	for _, k := range []uint{10, 43, 98, 115} {
		want := new(big.Int).Exp(
			toBig(DefaultMultiplier),
			new(big.Int).Lsh(big.NewInt(1), k),
			bigMod128(),
		)
		if got := toBig(LeapMultiplierPow2(k)); got.Cmp(want) != 0 {
			t.Errorf("LeapMultiplierPow2(%d) = %s, want %s", k, got, want)
		}
	}
}

func TestNewWithMultiplierRejectsBadMultiplier(t *testing.T) {
	for _, m := range []u128.Uint128{
		u128.From64(4), // even
		u128.From64(3), // ≡ 3 mod 8
		u128.From64(7), // ≡ 7 mod 8
		u128.From64(1), // ≡ 1 mod 8
		u128.Zero,      // zero
	} {
		if _, err := NewWithMultiplier(m); err == nil {
			t.Errorf("NewWithMultiplier(%s): expected error", m)
		}
	}
}

func TestNewWithMultiplierAccepts5Mod8(t *testing.T) {
	g, err := NewWithMultiplier(u128.From64(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Next(); !got.Eq(u128.From64(5)) {
		t.Fatalf("first state = %s, want 5", got)
	}
}

func TestSetStateRejectsEven(t *testing.T) {
	g := New()
	if err := g.SetState(u128.From64(2)); err == nil {
		t.Fatal("SetState(2): expected error")
	}
	if err := g.SetState(u128.From64(3)); err != nil {
		t.Fatalf("SetState(3): %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	g.Next()
	c := g.Clone()
	if !c.State().Eq(g.State()) {
		t.Fatal("clone state differs")
	}
	g.Next()
	if c.State().Eq(g.State()) {
		t.Fatal("advancing original moved the clone")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := New()
	for i := 0; i < 37; i++ {
		g.Next()
	}
	restored, err := Unmarshal(g.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.State().Eq(g.State()) || !restored.Multiplier().Eq(g.Multiplier()) {
		t.Fatal("round trip lost state")
	}
	// Continuation sequences must be identical.
	for i := 0; i < 101; i++ {
		if a, b := g.Next(), restored.Next(); !a.Eq(b) {
			t.Fatalf("diverged at continuation step %d", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"deadbeef",                      // no colon
		"xyz:abc",                       // bad hex
		"10:" + DefaultMultiplier.Hex(), // even state
	} {
		if _, err := Unmarshal(s); err == nil {
			t.Errorf("Unmarshal(%q): expected error", s)
		}
	}
}

func TestPeriodOnSmallModulusAnalogue(t *testing.T) {
	// The full period 2^126 cannot be enumerated, but the same
	// construction mod 2^r for small r has period 2^(r-2) when the
	// multiplier ≡ 5 (mod 8) (Knuth TAoCP vol 2, 3.2.1.2). Verify the
	// period structure for r = 16 with multiplier 5^101 mod 2^16 using
	// plain uint16 arithmetic — this validates the theory the 128-bit
	// generator's period claim rests on.
	var mult uint16 = 1
	for i := 0; i < 101; i++ {
		mult *= 5
	}
	if mult&7 != 5 {
		t.Fatalf("5^101 mod 8 = %d, want 5", mult&7)
	}
	var state uint16 = 1
	period := 0
	for {
		state *= mult
		period++
		if state == 1 {
			break
		}
		if period > 1<<16 {
			t.Fatal("no cycle found")
		}
	}
	if want := 1 << 14; period != want {
		t.Fatalf("period mod 2^16 = %d, want 2^14 = %d", period, want)
	}
}

func TestFirstHalfPeriodStatesDistinct(t *testing.T) {
	// Spot check: states sampled at wide intervals across the usable
	// range are pairwise distinct.
	seen := map[string]bool{}
	for k := uint(100); k <= 124; k++ {
		g := New()
		g.SkipAheadPow2(k)
		h := g.State().Hex()
		if seen[h] {
			t.Fatalf("duplicate state at leap 2^%d", k)
		}
		seen[h] = true
	}
}

func BenchmarkNext(b *testing.B) {
	g := New()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkFloat64(b *testing.B) {
	g := New()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = g.Float64()
	}
	_ = sink
}

func BenchmarkSkipAheadPow2_98(b *testing.B) {
	g := New()
	for i := 0; i < b.N; i++ {
		g.SkipAheadPow2(98)
	}
}
