package lcg

import "testing"

func FuzzUnmarshal(f *testing.F) {
	f.Add(New().Marshal())
	f.Add("deadbeef:cafebabe")
	f.Add(":")
	f.Add("")
	f.Add("10:5") // even state
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Unmarshal(s)
		if err != nil {
			return
		}
		// Any accepted state must be odd (invariant) and must round-trip.
		if g.State().Lo&1 == 0 {
			t.Fatalf("Unmarshal(%q) produced even state", s)
		}
		back, err := Unmarshal(g.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of %q failed: %v", g.Marshal(), err)
		}
		if !back.State().Eq(g.State()) || !back.Multiplier().Eq(g.Multiplier()) {
			t.Fatalf("round trip changed generator for input %q", s)
		}
	})
}
