package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one record of the run-event journal. Timestamps pair a wall
// clock anchor with a monotonic offset: Mono is nanoseconds since the
// journal was opened, measured on Go's monotonic clock, so event
// ordering and spacing survive wall-clock adjustments; Time is the
// derived wall time for human consumption.
//
// The set of Kind values written by the library (run_start, run_stop,
// push, merge, reject, duplicate, save, prune, register, deregister,
// retry, reconnect) is open-ended — consumers must ignore kinds they
// do not know.
type Event struct {
	Time    time.Time      `json:"ts"`
	Mono    int64          `json:"mono_ns"`
	Kind    string         `json:"event"`
	Worker  int            `json:"worker,omitempty"`
	Samples int64          `json:"samples,omitempty"`
	Seq     uint64         `json:"seq,omitempty"`
	Elapsed time.Duration  `json:"elapsed_ns,omitempty"`
	Err     string         `json:"err,omitempty"`
	Fields  map[string]any `json:"fields,omitempty"`
}

// Journal is an append-only JSONL event log. Record is non-blocking:
// events go into a bounded channel and a background goroutine encodes
// and writes them through a bufio.Writer, flushed periodically and on
// Close — buffered appends off the push hot path. When the channel is
// full the event is dropped and counted (a slow disk must degrade the
// audit trail, never the simulation).
type Journal struct {
	f     *os.File
	start time.Time

	ch      chan Event
	done    chan struct{}
	dropped atomic.Int64
	written atomic.Int64

	closeMu   sync.RWMutex // guards closed vs in-flight Record sends
	closed    bool
	closeOnce sync.Once
	closeErr  error
}

// journalDepth bounds the in-flight event queue. At the chaos suite's
// push rates a queue this deep absorbs multi-millisecond write stalls
// without drops.
const journalDepth = 4096

// journalFlushPeriod is how often the background writer flushes even
// when events keep arriving.
const journalFlushPeriod = 250 * time.Millisecond

// OpenJournal opens (appending) or creates the JSONL journal at path
// and starts its background writer.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	j := &Journal{
		f:     f,
		start: time.Now(),
		ch:    make(chan Event, journalDepth),
		done:  make(chan struct{}),
	}
	go j.writeLoop()
	return j, nil
}

// Record enqueues one event, stamping its timestamps. It never blocks:
// if the writer has fallen behind the event is dropped and counted.
func (j *Journal) Record(e Event) {
	mono := time.Since(j.start)
	e.Mono = mono.Nanoseconds()
	e.Time = j.start.Add(mono)
	j.closeMu.RLock()
	defer j.closeMu.RUnlock()
	if j.closed {
		j.dropped.Add(1)
		return
	}
	select {
	case j.ch <- e:
	default:
		j.dropped.Add(1)
	}
}

// Emit is Record for the common case: a kind, a worker, and optional
// extra fields.
func (j *Journal) Emit(kind string, worker int, fields map[string]any) {
	j.Record(Event{Kind: kind, Worker: worker, Fields: fields})
}

// Dropped reports how many events were discarded because the writer
// could not keep up.
func (j *Journal) Dropped() int64 { return j.dropped.Load() }

// Written reports how many events reached the file buffer.
func (j *Journal) Written() int64 { return j.written.Load() }

func (j *Journal) writeLoop() {
	w := bufio.NewWriterSize(j.f, 64<<10)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(journalFlushPeriod)
	defer tick.Stop()
	for {
		select {
		case e, ok := <-j.ch:
			if !ok {
				w.Flush()
				close(j.done)
				return
			}
			if err := enc.Encode(e); err == nil {
				j.written.Add(1)
			}
		case <-tick.C:
			w.Flush()
		}
	}
}

// Close drains pending events, flushes, and closes the file. Safe to
// call more than once; Record after Close is a silent drop.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		j.closeMu.Lock()
		j.closed = true
		close(j.ch)
		j.closeMu.Unlock()
		<-j.done
		j.closeErr = j.f.Close()
	})
	return j.closeErr
}

// ReadJournal decodes every event in the JSONL file at path — the
// replay half of the audit story. Unknown fields are ignored; a
// trailing partial line (a crash mid-append) terminates the read
// without error.
func ReadJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			// io.EOF is a clean end; anything else is a torn final
			// record (a crash mid-append) — stop without error either
			// way, keeping what decoded.
			return out, nil
		}
		out = append(out, e)
	}
}
