package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one record of the run-event journal. Timestamps pair a wall
// clock anchor with a monotonic offset: Mono is nanoseconds since the
// journal was opened, measured on Go's monotonic clock, so event
// ordering and spacing survive wall-clock adjustments; Time is the
// derived wall time for human consumption.
//
// The set of Kind values written by the library (run_start, run_stop,
// push, merge, reject, duplicate, save, prune, register, deregister,
// retry, reconnect) is open-ended — consumers must ignore kinds they
// do not know.
type Event struct {
	Time    time.Time      `json:"ts"`
	Mono    int64          `json:"mono_ns"`
	Kind    string         `json:"event"`
	Worker  int            `json:"worker,omitempty"`
	Samples int64          `json:"samples,omitempty"`
	Seq     uint64         `json:"seq,omitempty"`
	Elapsed time.Duration  `json:"elapsed_ns,omitempty"`
	Err     string         `json:"err,omitempty"`
	Fields  map[string]any `json:"fields,omitempty"`
}

// Journal is an append-only JSONL event log. Record is non-blocking:
// events go into a bounded channel and a background goroutine encodes
// and writes them through a bufio.Writer, flushed periodically and on
// Close — buffered appends off the push hot path. When the channel is
// full the event is dropped and counted (a slow disk must degrade the
// audit trail, never the simulation).
//
// A journal opened with OpenJournalRotating additionally rotates by
// size: once the current file reaches the byte cap it is renamed
// events.<n>.jsonl (n increasing across rotations and reopens) and a
// fresh events.jsonl is started, so a long-lived serve process never
// grows one file unboundedly.
type Journal struct {
	f     *os.File
	path  string
	start time.Time

	maxBytes int64 // rotation threshold; 0 disables rotation
	size     int64 // bytes in the current file; writer goroutine only
	nextRot  int   // index the next rotated file gets; writer goroutine only

	ch        chan Event
	done      chan struct{}
	dropped   atomic.Int64
	written   atomic.Int64
	rotations atomic.Int64

	closeMu   sync.RWMutex // guards closed vs in-flight Record sends
	closed    bool
	closeOnce sync.Once
	closeErr  error
}

// journalDepth bounds the in-flight event queue. At the chaos suite's
// push rates a queue this deep absorbs multi-millisecond write stalls
// without drops.
const journalDepth = 4096

// journalFlushPeriod is how often the background writer flushes even
// when events keep arriving.
const journalFlushPeriod = 250 * time.Millisecond

// OpenJournal opens (appending) or creates the JSONL journal at path
// and starts its background writer. The file grows without bound; use
// OpenJournalRotating for long-lived processes.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalRotating(path, 0)
}

// OpenJournalRotating is OpenJournal with a size cap: once the current
// file reaches maxBytes it is renamed to the next free events.<n>.jsonl
// sibling and a fresh file is started at path. Rotation indices pick up
// where previous sessions left off (existing events.<n>.jsonl files are
// scanned at open), so reopening never clobbers rotated history.
// maxBytes <= 0 disables rotation.
func OpenJournalRotating(path string, maxBytes int64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening journal: %w", err)
	}
	j := &Journal{
		f:        f,
		path:     path,
		start:    time.Now(),
		maxBytes: maxBytes,
		ch:       make(chan Event, journalDepth),
		done:     make(chan struct{}),
	}
	if st, err := f.Stat(); err == nil {
		j.size = st.Size()
	}
	if maxBytes > 0 {
		j.nextRot = nextRotationIndex(path)
	}
	go j.writeLoop()
	return j, nil
}

// rotatedName returns the name rotation n of path gets: the numbered
// sibling with the index spliced in before the extension
// (events.jsonl → events.3.jsonl).
func rotatedName(path string, n int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%d%s", strings.TrimSuffix(path, ext), n, ext)
}

// nextRotationIndex scans path's directory for previously rotated
// siblings and returns one past the highest index found (1 for none).
func nextRotationIndex(path string) int {
	ext := filepath.Ext(path)
	stem := strings.TrimSuffix(path, ext)
	matches, err := filepath.Glob(stem + ".*" + ext)
	if err != nil {
		return 1
	}
	next := 1
	for _, m := range matches {
		mid := strings.TrimSuffix(strings.TrimPrefix(m, stem+"."), ext)
		if n, err := strconv.Atoi(mid); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// Record enqueues one event, stamping its timestamps. It never blocks:
// if the writer has fallen behind the event is dropped and counted.
func (j *Journal) Record(e Event) {
	mono := time.Since(j.start)
	e.Mono = mono.Nanoseconds()
	e.Time = j.start.Add(mono)
	j.closeMu.RLock()
	defer j.closeMu.RUnlock()
	if j.closed {
		j.dropped.Add(1)
		return
	}
	select {
	case j.ch <- e:
	default:
		j.dropped.Add(1)
	}
}

// Emit is Record for the common case: a kind, a worker, and optional
// extra fields.
func (j *Journal) Emit(kind string, worker int, fields map[string]any) {
	j.Record(Event{Kind: kind, Worker: worker, Fields: fields})
}

// Dropped reports how many events were discarded because the writer
// could not keep up.
func (j *Journal) Dropped() int64 { return j.dropped.Load() }

// Written reports how many events reached the file buffer.
func (j *Journal) Written() int64 { return j.written.Load() }

// Rotations reports how many size rotations have happened this session.
func (j *Journal) Rotations() int64 { return j.rotations.Load() }

func (j *Journal) writeLoop() {
	w := bufio.NewWriterSize(j.f, 64<<10)
	tick := time.NewTicker(journalFlushPeriod)
	defer tick.Stop()
	for {
		select {
		case e, ok := <-j.ch:
			if !ok {
				if w != nil {
					w.Flush()
				}
				close(j.done)
				return
			}
			if w == nil {
				// A rotation failed to open a fresh file; the journal
				// degrades to counting drops, never blocks the run.
				j.dropped.Add(1)
				continue
			}
			b, err := json.Marshal(e)
			if err != nil {
				continue
			}
			b = append(b, '\n')
			if _, err := w.Write(b); err == nil {
				j.written.Add(1)
				j.size += int64(len(b))
			}
			if j.maxBytes > 0 && j.size >= j.maxBytes {
				w = j.rotate(w)
			}
		case <-tick.C:
			if w != nil {
				w.Flush()
			}
		}
	}
}

// rotate renames the full current file to its numbered sibling and
// starts a fresh one. Runs on the writer goroutine. If the rename
// fails the current file keeps growing (rotation retries on the next
// write); if reopening fails the journal degrades to dropping events.
func (j *Journal) rotate(w *bufio.Writer) *bufio.Writer {
	w.Flush()
	j.f.Close()
	if err := os.Rename(j.path, rotatedName(j.path, j.nextRot)); err == nil {
		j.nextRot++
		j.rotations.Add(1)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return nil
	}
	j.f = f
	j.size = 0
	if st, err := f.Stat(); err == nil {
		j.size = st.Size() // nonzero when the rename failed: retry soon
	}
	return bufio.NewWriterSize(f, 64<<10)
}

// Close drains pending events, flushes, and closes the file. Safe to
// call more than once; Record after Close is a silent drop.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		j.closeMu.Lock()
		j.closed = true
		close(j.ch)
		j.closeMu.Unlock()
		<-j.done
		if j.f != nil {
			j.closeErr = j.f.Close()
		}
	})
	return j.closeErr
}

// ReadJournal decodes every event in the JSONL file at path — the
// replay half of the audit story. Unknown fields are ignored; a
// trailing partial line (a crash mid-append) terminates the read
// without error.
func ReadJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Event
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			// io.EOF is a clean end; anything else is a torn final
			// record (a crash mid-append) — stop without error either
			// way, keeping what decoded.
			return out, nil
		}
		out = append(out, e)
	}
}
