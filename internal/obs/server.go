package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerConfig describes what the ops HTTP server exposes.
type ServerConfig struct {
	// Registry backs /metrics. Nil serves an empty exposition.
	Registry *Registry

	// Health backs /healthz: nil means always healthy; a non-nil error
	// turns the endpoint into 503 with the error text.
	Health func() error

	// Status backs /statusz: the returned value is rendered as
	// indented JSON. Nil disables the endpoint (404).
	Status func() any

	// Journal, when set, adds its write/drop counters to /statusz
	// under "journal".
	Journal *Journal

	// Routes mounts extra handlers on the ops mux by pattern
	// (http.ServeMux syntax) — how a subsystem like the run manager
	// exposes its control API on the same listener as /metrics and
	// /statusz. Patterns must not collide with the built-in endpoints.
	Routes map[string]http.Handler

	// ReadHeaderTimeout bounds how long a client may dribble request
	// headers before the connection is dropped (slowloris protection).
	// Zero selects 10s; negative disables the bound.
	ReadHeaderTimeout time.Duration

	// ReadTimeout bounds reading one whole request, body included. The
	// ops API only ever receives small bodies (a run submission), so a
	// tight bound costs nothing. Zero selects 1m; negative disables.
	ReadTimeout time.Duration
}

// NewHandler builds the ops mux: /metrics (Prometheus text format),
// /healthz, /statusz (JSON), and net/http/pprof under /debug/pprof/
// for live CPU and heap profiling of a running coordinator or worker.
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			_ = cfg.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Status == nil {
			http.NotFound(w, r)
			return
		}
		body := map[string]any{"status": cfg.Status()}
		if cfg.Journal != nil {
			body["journal"] = map[string]int64{
				"written": cfg.Journal.Written(),
				"dropped": cfg.Journal.Dropped(),
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	for pattern, h := range cfg.Routes {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running ops HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the ops server on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns once the listener is bound; requests are
// served in the background.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops server listen: %w", err)
	}
	headerTO := cfg.ReadHeaderTimeout
	switch {
	case headerTO == 0:
		headerTO = 10 * time.Second
	case headerTO < 0:
		headerTO = 0
	}
	readTO := cfg.ReadTimeout
	switch {
	case readTO == 0:
		readTO = time.Minute
	case readTO < 0:
		readTO = 0
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(cfg),
			ReadHeaderTimeout: headerTO,
			ReadTimeout:       readTO,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns a dialable base URL for the bound address: a wildcard
// listen host (":0", "0.0.0.0", "[::]") is rewritten to loopback, so
// what a CLI prints — and what a test scrapes — can always be
// connected to verbatim.
func (s *Server) URL() string {
	addr := s.Addr()
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
