package obs

import (
	"math"
	"testing"
)

// TestQuantileExact pins the quantile estimator to hand-computed
// values on a known bucket layout: bounds {1, 2, 4, 8}, one hundred
// observations spread 10/20/30/40 across the buckets.
func TestQuantileExact(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	fill := func(v float64, n int) {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	fill(0.5, 10) // bucket (0, 1]
	fill(1.5, 20) // bucket (1, 2]
	fill(3.0, 30) // bucket (2, 4]
	fill(5.0, 40) // bucket (4, 8]

	cases := []struct {
		q    float64
		want float64
	}{
		// rank = q·100. Linear interpolation inside the covering bucket:
		// q=0.05 → rank 5, first bucket [0,1], 5/10 through → 0.5
		{0.05, 0.5},
		// q=0.10 → rank 10, exactly exhausts bucket 1 → 1.0
		{0.10, 1.0},
		// q=0.20 → rank 20, 10 into bucket (1,2] of 20 → 1.5
		{0.20, 1.5},
		// q=0.30 → rank 30, exhausts bucket 2 → 2.0
		{0.30, 2.0},
		// q=0.50 → rank 50, 20 into bucket (2,4] of 30 → 2 + 2·(20/30)
		{0.50, 2 + 2*20.0/30.0},
		// q=0.60 → rank 60, exhausts bucket 3 → 4.0
		{0.60, 4.0},
		// q=0.90 → rank 90, 30 into bucket (4,8] of 40 → 4 + 4·(30/40)
		{0.90, 7.0},
		// q=1 → rank 100, exhausts the last finite bucket → 8.0
		{1.0, 8.0},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestQuantileInfBucket: ranks falling above the last finite bound
// clamp to that bound, matching Prometheus histogram_quantile.
func TestQuantileInfBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(1.0); got != 10 {
		t.Fatalf("q=1 with +Inf mass = %g, want 10", got)
	}
	if got := h.Quantile(0.25); got != 0.5 {
		t.Fatalf("q=0.25 = %g, want 0.5", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
}

// TestQuantileSkipsEmptyBuckets: a rank landing exactly on a bucket
// boundary whose bucket is empty resolves to that bucket's upper
// bound rather than dividing by zero.
func TestQuantileEmptyBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5) // bucket 1
	h.Observe(3.0) // bucket 3; bucket 2 stays empty
	// q=0.5 → rank 1, exactly exhausted by bucket 1 → 1.0
	if got := h.Quantile(0.5); got != 1.0 {
		t.Fatalf("q=0.5 = %g, want 1", got)
	}
	// q=0.75 → rank 1.5 → inside bucket (2,4]: 2 + 2·(0.5/1) = 3
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-12 {
		t.Fatalf("q=0.75 = %g, want 3", got)
	}
}

func TestHistogramSumCount(t *testing.T) {
	h := NewHistogram([]float64{1})
	for _, v := range []float64{0.25, 0.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-3.75) > 1e-12 {
		t.Fatalf("sum = %g", h.Sum())
	}
	s := h.Snapshot()
	if s.Counts[0] != 2 || s.Inf != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	for i, want := range []float64{0, 0.5, 1} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	// Unsorted, duplicated, +Inf-containing bounds normalize.
	h := NewHistogram([]float64{4, 1, math.Inf(1), 2, 2})
	if len(h.bounds) != 3 || h.bounds[0] != 1 || h.bounds[2] != 4 {
		t.Fatalf("bounds = %v", h.bounds)
	}
}
