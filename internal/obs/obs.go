// Package obs is the observability subsystem: a concurrency-safe
// metrics registry with Prometheus text-format exposition, an ops HTTP
// server (metrics, health, status, pprof) and a structured run-event
// journal.
//
// PARMONC's operational story is a long-running master/worker
// simulation that, in the original library, users could monitor only
// through periodic checkpoint files. The paper's own evaluation
// (Fig. 2) depends on measuring T_comp(L), push traffic and collector
// overhead, and Lubachevsky ("Why The Results of Parallel and Serial
// Monte Carlo Simulations May Differ") shows that silent runtime
// anomalies in parallel MC are exactly the failures caught only by
// watching the run live. This package gives every layer one way to be
// watched:
//
//   - Registry: counters, gauges and histograms, lock-free on the hot
//     path (atomic operations only), with labels for worker identity
//     and transport, exposed in Prometheus text format.
//   - Server (server.go): /metrics, /healthz, /statusz and
//     /debug/pprof/ on an operator-chosen address.
//   - Journal (journal.go): an append-only JSONL span/event log written
//     alongside parmonc_data, so a run can be replayed and audited
//     post-hoc.
//
// obs is a leaf package: it imports nothing from the rest of the
// library, so every layer (collect, cluster, core, cmd) may depend on
// it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric backed by a single
// atomic integer — the same cost as the raw atomic.Int64 counters it
// replaces in the collector, cheap enough for a push-per-realization
// hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative for Prometheus semantics; this is
// not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up, down, or be set outright.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates the series types a family may hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one (name, labels) time series inside a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind metricKind
	rows []*series
}

// Registry holds metric families and renders them. Registration takes
// a mutex; updates to registered metrics are atomic operations with no
// registry involvement, so the hot path never contends on the registry
// lock. The same (name, labels) pair always returns the same metric,
// making registration idempotent — two subsystems may ask for the same
// counter and share it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelsKey serializes labels into a canonical map key.
func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// lookup finds or creates the family and series for (name, labels),
// enforcing that a name keeps one kind. init populates the metric of a
// freshly created series before it becomes visible to scrapers — all
// under one lock acquisition, so a concurrent WritePrometheus can
// never observe a series without its metric.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, init func(*series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as two different kinds", name))
	}
	if help != "" && f.help == "" {
		f.help = help
	}
	key := labelsKey(labels)
	for _, s := range f.rows {
		if labelsKey(s.labels) == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	init(s)
	f.rows = append(f.rows, s)
	return s
}

// Counter returns the counter registered under name+labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) { s.ctr = &Counter{} })
	return s.ctr
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values some other layer already owns (active workers,
// total sample volume) that would otherwise need shadow bookkeeping.
// fn must be safe for concurrent use. Re-registering the same
// name+labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGaugeFunc, labels, func(s *series) { s.fn = fn })
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// Histogram returns the histogram registered under name+labels,
// creating it with the given bucket upper bounds on first use (later
// calls ignore buckets and return the existing histogram).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func(s *series) { s.hist = NewHistogram(buckets) })
	return s.hist
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders {k="v",...} with an optional extra le pair,
// preserving registration order of the labels.
func formatLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, kind: f.kind, rows: append([]*series(nil), f.rows...)}
		fams = append(fams, cp)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.rows {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels, "", ""), s.ctr.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", ""), formatValue(s.gauge.Value()))
			case kindGaugeFunc:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", ""), formatValue(s.fn()))
			case kindHistogram:
				err = s.hist.writePrometheus(w, f.name, s.labels)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every series as a flat name{labels} → value map:
// counters and gauges by value, histograms as _count and _sum. It is
// the JSON-friendly view the /statusz handler and tests consume.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fams = append(fams, &family{name: f.name, kind: f.kind, rows: append([]*series(nil), f.rows...)})
	}
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.rows {
			key := f.name + formatLabels(s.labels, "", "")
			switch f.kind {
			case kindCounter:
				out[key] = float64(s.ctr.Value())
			case kindGauge:
				out[key] = s.gauge.Value()
			case kindGaugeFunc:
				out[key] = s.fn()
			case kindHistogram:
				snap := s.hist.Snapshot()
				out[key+"_count"] = float64(snap.Count)
				out[key+"_sum"] = snap.Sum
			}
		}
	}
	return out
}
