package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("parmonc_test_total", "A test counter.").Add(9)
	j, err := OpenJournal(filepath.Join(t.TempDir(), "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Record(Event{Kind: "run_start"})

	healthy := true
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Registry: reg,
		Health: func() error {
			if !healthy {
				return errors.New("collector wedged")
			}
			return nil
		},
		Status:  func() any { return map[string]int{"n": 42} },
		Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# HELP parmonc_test_total A test counter.",
		"# TYPE parmonc_test_total counter",
		"parmonc_test_total 9",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	healthy = false
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "collector wedged") {
		t.Fatalf("unhealthy /healthz: %d %q", code, body)
	}

	code, body = get(t, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz: %d", code)
	}
	var st struct {
		Status struct {
			N int `json:"n"`
		} `json:"status"`
		Journal struct {
			Written int64 `json:"written"`
			Dropped int64 `json:"dropped"`
		} `json:"journal"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if st.Status.N != 42 {
		t.Fatalf("statusz = %s", body)
	}

	// pprof index answers; the cheap cmdline endpoint proves the
	// profile family is wired without paying for a CPU profile here.
	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	if code, _ := get(t, fmt.Sprintf("%s/debug/pprof/heap?debug=1", base)); code != 200 {
		t.Fatal("heap profile unavailable")
	}
}

func TestServerNoStatus(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServerConfig{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/statusz"); code != 404 {
		t.Fatalf("statusz without Status func: %d", code)
	}
	if code, _ := get(t, "http://"+srv.Addr()+"/healthz"); code != 200 {
		t.Fatal("nil Health should be healthy")
	}
}

// TestServerRoutesAndURL: ServerConfig.Routes handlers mount alongside
// the built-ins, and URL() rewrites wildcard hosts to something
// dialable.
func TestServerRoutesAndURL(t *testing.T) {
	srv, err := Serve(":0", ServerConfig{
		Routes: map[string]http.Handler{
			"/runs": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusAccepted)
				fmt.Fprint(w, "mounted")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	url := srv.URL()
	if strings.Contains(url, "[::]") || strings.Contains(url, "0.0.0.0") {
		t.Fatalf("URL %q is not dialable", url)
	}
	resp, err := http.Get(url + "/runs")
	if err != nil {
		t.Fatalf("GET %s/runs via URL(): %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted || string(body) != "mounted" {
		t.Fatalf("mounted route: status %d body %q", resp.StatusCode, body)
	}
	// Built-ins still serve next to the mounted route.
	resp2, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp2.StatusCode)
	}
}
