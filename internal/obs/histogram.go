package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets, Prometheus-style:
// bucket i counts observations ≤ bounds[i], plus an implicit +Inf
// bucket. Observe is lock-free (one atomic add per observation plus an
// atomic CAS loop for the sum), so it is safe on the collector's push
// hot path and under concurrent workers.
//
// A snapshot taken concurrently with writers is mildly inconsistent
// (counts and sum race independently) but every individual value is
// well-formed — the usual Prometheus scrape contract.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, excluding +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	total   atomic.Int64
}

// DefDurationBuckets are the default latency buckets in seconds,
// exponential from 100 µs to ~26 s — wide enough for both a
// sub-millisecond in-memory save and a multi-second cluster save.
func DefDurationBuckets() []float64 {
	return ExpBuckets(1e-4, 2, 18)
}

// ExpBuckets returns n bucket bounds growing exponentially from start
// by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds from start in steps of width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 {
		panic("obs: LinearBuckets needs n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// NewHistogram creates a histogram with the given upper bounds; they
// are sorted and deduplicated. Nil or empty buckets mean
// DefDurationBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets()
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, 1) {
			continue // +Inf bucket is implicit
		}
		if i > 0 && len(dedup) > 0 && b == dedup[len(dedup)-1] {
			continue
		}
		dedup = append(dedup, b)
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, excluding +Inf
	Counts []int64   // per-bucket counts (same length as Bounds)
	Inf    int64     // observations above the last bound
	Count  int64     // total observations
	Sum    float64   // sum of observed values
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)),
		Inf:    h.inf.Load(),
		Count:  h.total.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the bucket containing the target rank, the
// standard Prometheus histogram_quantile estimator: the first bucket
// interpolates from 0, and a rank falling in the +Inf bucket returns
// the highest finite bound. With no observations it returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile is the estimator on a snapshot, so a consistent set of
// quantiles can be derived from one copy.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			if c == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-prev)/float64(c)
		}
	}
	// Rank lands in the +Inf bucket: the best defined answer is the
	// largest finite bound (matching histogram_quantile).
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return math.NaN()
}

// writePrometheus renders the histogram series for one family row.
func (h *Histogram) writePrometheus(w io.Writer, name string, labels []Label) error {
	s := h.Snapshot()
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		le := formatValue(b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(labels, "le", le), cum); err != nil {
			return err
		}
	}
	cum += s.Inf
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(labels, "", ""), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(labels, "", ""), s.Count)
	return err
}
