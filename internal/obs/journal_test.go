package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "run_start", Fields: map[string]any{"workers": 4}})
	j.Record(Event{Kind: "push", Worker: 3, Samples: 100, Seq: 7})
	j.Record(Event{Kind: "save", Elapsed: 5 * time.Millisecond})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Written() != 3 || j.Dropped() != 0 {
		t.Fatalf("written %d dropped %d", j.Written(), j.Dropped())
	}

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Kind != "run_start" || events[0].Fields["workers"] != float64(4) {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Worker != 3 || events[1].Samples != 100 || events[1].Seq != 7 {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if events[2].Elapsed != 5*time.Millisecond {
		t.Fatalf("event 2 = %+v", events[2])
	}
	// Monotonic timestamps never regress.
	for i := 1; i < len(events); i++ {
		if events[i].Mono < events[i-1].Mono {
			t.Fatalf("mono regressed: %d then %d", events[i-1].Mono, events[i].Mono)
		}
	}
}

// TestJournalAppend: reopening appends rather than truncating — a
// resumed run extends the same audit trail.
func TestJournalAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	for i := 0; i < 2; i++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		j.Record(Event{Kind: "run_start"})
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events after two runs", len(events))
	}
}

// TestJournalTornTail: a torn final line (crash mid-append) must not
// poison the replay of the intact prefix.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "push", Worker: 1})
	j.Record(Event{Kind: "push", Worker: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ts":"2026-01-01T00:00:00Z","event":"pu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events from torn journal", len(events))
	}
}

// TestJournalRecordAfterClose: a late Record is a counted drop, not a
// panic.
func TestJournalRecordAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "late"})
	if j.Dropped() != 1 {
		t.Fatalf("dropped = %d", j.Dropped())
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestJournalRotation: past the byte cap the file is renamed to
// events.<n>.jsonl and a fresh events.jsonl starts; no event is lost
// across the rotation boundary.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	j, err := OpenJournalRotating(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	const total = 100 // ~80 bytes each: several rotations
	for i := 0; i < total; i++ {
		j.Record(Event{Kind: "push", Worker: i, Samples: int64(i)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Rotations() < 2 {
		t.Fatalf("expected at least 2 rotations, got %d", j.Rotations())
	}
	if j.Written() != total || j.Dropped() != 0 {
		t.Fatalf("written %d dropped %d", j.Written(), j.Dropped())
	}

	var events []Event
	for n := 1; ; n++ {
		rot := filepath.Join(dir, fmt.Sprintf("events.%d.jsonl", n))
		if _, err := os.Stat(rot); err != nil {
			break
		}
		es, err := ReadJournal(rot)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, es...)
	}
	tail, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, tail...)
	if len(events) != total {
		t.Fatalf("recovered %d events across rotations, want %d", len(events), total)
	}
	for i, e := range events {
		if e.Worker != i {
			t.Fatalf("event %d out of order: worker %d", i, e.Worker)
		}
	}
	// Rotated files all respect the cap (plus at most one record).
	for n := int64(1); n <= j.Rotations(); n++ {
		st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("events.%d.jsonl", n)))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > 512+256 {
			t.Fatalf("rotated file %d is %d bytes, cap 512", n, st.Size())
		}
	}
}

// TestJournalRotationResumesIndices: a reopened journal continues the
// rotation numbering instead of clobbering rotated history.
func TestJournalRotationResumesIndices(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	for session := 0; session < 2; session++ {
		j, err := OpenJournalRotating(path, 256)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			j.Record(Event{Kind: "push", Worker: session*30 + i})
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if j.Rotations() == 0 {
			t.Fatalf("session %d: no rotation at this volume", session)
		}
	}
	var events []Event
	for n := 1; ; n++ {
		rot := filepath.Join(dir, fmt.Sprintf("events.%d.jsonl", n))
		if _, err := os.Stat(rot); err != nil {
			break
		}
		es, err := ReadJournal(rot)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, es...)
	}
	tail, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, tail...)
	if len(events) != 60 {
		t.Fatalf("recovered %d events over two sessions, want 60", len(events))
	}
	for i, e := range events {
		if e.Worker != i {
			t.Fatalf("event %d out of order: worker %d", i, e.Worker)
		}
	}
}

func TestJournalNoRotationWithoutCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		j.Record(Event{Kind: "push", Worker: i})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Rotations() != 0 {
		t.Fatalf("uncapped journal rotated %d times", j.Rotations())
	}
	if _, err := os.Stat(filepath.Join(dir, "events.1.jsonl")); err == nil {
		t.Fatal("uncapped journal produced a rotated file")
	}
}

// TestJournalRotationAtExactThreshold pins the boundary semantics:
// the size check runs after each write, so a file sitting exactly at
// the cap rotates on the next record — that record lands in the
// rotated file, and the fresh live file starts empty.
func TestJournalRotationAtExactThreshold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	pad := []byte(`{"event":"pad"}` + "\n")
	content := bytes.Repeat(pad, 8)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	// The cap equals the existing file size byte-for-byte: the journal
	// opens already at the threshold.
	j, err := OpenJournalRotating(path, int64(len(content)))
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "tip", Worker: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Rotations(); got != 1 {
		t.Fatalf("rotations = %d, want exactly 1", got)
	}
	rotated, err := ReadJournal(filepath.Join(dir, "events.1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rotated) != 9 || rotated[8].Kind != "tip" {
		t.Fatalf("rotated file has %d events (last %q), want 9 ending in the tipping record",
			len(rotated), rotated[len(rotated)-1].Kind)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("fresh live file is %d bytes, want empty", st.Size())
	}
}

// TestJournalRotationConcurrentWrites: rotations racing a fleet of
// recording goroutines lose nothing — every event lands exactly once,
// per-writer order is preserved across file boundaries, and the
// counters reconcile.
func TestJournalRotationConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	j, err := OpenJournalRotating(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 200 // 1600 < journalDepth: no drops possible
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Record(Event{Kind: "concurrent", Worker: w, Samples: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Rotations() < 2 {
		t.Fatalf("rotations = %d at this volume, want several", j.Rotations())
	}
	if j.Dropped() != 0 || j.Written() != writers*perWriter {
		t.Fatalf("written %d dropped %d, want %d written and none dropped",
			j.Written(), j.Dropped(), writers*perWriter)
	}
	var events []Event
	for n := 1; ; n++ {
		rot := filepath.Join(dir, fmt.Sprintf("events.%d.jsonl", n))
		if _, err := os.Stat(rot); err != nil {
			break
		}
		es, err := ReadJournal(rot)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, es...)
	}
	tail, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	events = append(events, tail...)
	if len(events) != writers*perWriter {
		t.Fatalf("recovered %d events, want %d", len(events), writers*perWriter)
	}
	next := make([]int64, writers)
	for _, e := range events {
		if e.Samples != next[e.Worker] {
			t.Fatalf("writer %d: sample %d out of order (want %d)", e.Worker, e.Samples, next[e.Worker])
		}
		next[e.Worker]++
	}
}
