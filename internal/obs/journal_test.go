package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "run_start", Fields: map[string]any{"workers": 4}})
	j.Record(Event{Kind: "push", Worker: 3, Samples: 100, Seq: 7})
	j.Record(Event{Kind: "save", Elapsed: 5 * time.Millisecond})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Written() != 3 || j.Dropped() != 0 {
		t.Fatalf("written %d dropped %d", j.Written(), j.Dropped())
	}

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events", len(events))
	}
	if events[0].Kind != "run_start" || events[0].Fields["workers"] != float64(4) {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Worker != 3 || events[1].Samples != 100 || events[1].Seq != 7 {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if events[2].Elapsed != 5*time.Millisecond {
		t.Fatalf("event 2 = %+v", events[2])
	}
	// Monotonic timestamps never regress.
	for i := 1; i < len(events); i++ {
		if events[i].Mono < events[i-1].Mono {
			t.Fatalf("mono regressed: %d then %d", events[i-1].Mono, events[i].Mono)
		}
	}
}

// TestJournalAppend: reopening appends rather than truncating — a
// resumed run extends the same audit trail.
func TestJournalAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	for i := 0; i < 2; i++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		j.Record(Event{Kind: "run_start"})
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events after two runs", len(events))
	}
}

// TestJournalTornTail: a torn final line (crash mid-append) must not
// poison the replay of the intact prefix.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "push", Worker: 1})
	j.Record(Event{Kind: "push", Worker: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ts":"2026-01-01T00:00:00Z","event":"pu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events from torn journal", len(events))
	}
}

// TestJournalRecordAfterClose: a late Record is a counted drop, not a
// panic.
func TestJournalRecordAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: "late"})
	if j.Dropped() != 1 {
		t.Fatalf("dropped = %d", j.Dropped())
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
