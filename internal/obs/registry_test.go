package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("parmonc_pushes_total", "Pushes received.").Add(42)
	r.Counter("parmonc_worker_retries_total", "", L("worker", "3")).Add(2)
	r.Counter("parmonc_worker_retries_total", "", L("worker", "7")).Inc()
	r.Gauge("parmonc_active_workers", "Attached workers.").Set(4)
	r.GaugeFunc("parmonc_samples_total", "Total sample volume.", func() float64 { return 1e6 })
	h := r.Histogram("parmonc_save_seconds", "Save latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# HELP parmonc_pushes_total Pushes received.",
		"# TYPE parmonc_pushes_total counter",
		"parmonc_pushes_total 42",
		`parmonc_worker_retries_total{worker="3"} 2`,
		`parmonc_worker_retries_total{worker="7"} 1`,
		"# TYPE parmonc_active_workers gauge",
		"parmonc_active_workers 4",
		"parmonc_samples_total 1000000",
		"# TYPE parmonc_save_seconds histogram",
		`parmonc_save_seconds_bucket{le="0.1"} 1`,
		`parmonc_save_seconds_bucket{le="1"} 2`,
		`parmonc_save_seconds_bucket{le="+Inf"} 3`,
		"parmonc_save_seconds_sum 5.55",
		"parmonc_save_seconds_count 3",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestRegistrationIdempotent: the same (name, labels) returns the same
// metric, so two subsystems share one series.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	l1 := r.Counter("y_total", "", L("w", "1"))
	l2 := r.Counter("y_total", "", L("w", "2"))
	if l1 == l2 {
		t.Fatal("distinct labels returned the same counter")
	}
	// Label order must not create a new series.
	m1 := r.Counter("z_total", "", L("a", "1"), L("b", "2"))
	m2 := r.Counter("z_total", "", L("b", "2"), L("a", "1"))
	if m1 != m2 {
		t.Fatal("label order created a second series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(5)
	r.Gauge("g", "", L("w", "1")).Set(2.5)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s["c_total"] != 5 {
		t.Fatalf("c_total = %v", s["c_total"])
	}
	if s[`g{w="1"}`] != 2.5 {
		t.Fatalf("gauge = %v", s)
	}
	if s["h_seconds_count"] != 1 || s["h_seconds_sum"] != 0.5 {
		t.Fatalf("histogram = %v", s)
	}
}

// TestConcurrentWritersAndScraper is the -race stress test: many
// goroutines hammer counters, gauges and histograms (some registering
// on the fly) while a reader scrapes the Prometheus exposition and
// snapshots concurrently.
func TestConcurrentWritersAndScraper(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})

	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // scraping reader
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := L("worker", string(rune('a'+w)))
			for i := 0; i < perWriter; i++ {
				r.Counter("stress_pushes_total", "").Inc()
				r.Counter("stress_per_worker_total", "", label).Inc()
				r.Gauge("stress_gauge", "").Set(float64(i))
				r.Histogram("stress_seconds", "", []float64{0.001, 0.01, 0.1}).Observe(float64(i) / perWriter)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := r.Counter("stress_pushes_total", "").Value(); got != writers*perWriter {
		t.Fatalf("pushes = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("stress_seconds", "", nil).Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d", got)
	}
}
