// Package turbulence implements the Langevin (Ornstein–Uhlenbeck) model
// of turbulent particle dispersion — the turbulence-theory application
// the paper lists in Sec. 2.1.
//
// A fluid particle's velocity follows the stationary OU process
//
//	dv = −v/T_L dt + σ_v·√(2/T_L) dw,
//
// where T_L is the Lagrangian integral time scale and σ_v² the velocity
// variance; its position is x' = v. Taylor's 1921 dispersion law is
// exact for this model:
//
//	σ_x²(t) = 2·σ_v²·T_L²·(t/T_L − 1 + e^{−t/T_L}),
//
// with the ballistic limit σ_x ∝ t for t ≪ T_L and the diffusive limit
// σ_x² ≈ 2σ_v²T_L·t for t ≫ T_L. The realization records the particle
// position at sample times, so the library's variance matrix estimates
// the dispersion curve directly against the exact law.
package turbulence

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Flow describes the homogeneous turbulence model.
type Flow struct {
	SigmaV float64 // rms velocity σ_v (> 0)
	TL     float64 // Lagrangian integral time scale (> 0)
	Dt     float64 // integration step (> 0, ≪ TL for accuracy)
}

// Validate checks the model parameters.
func (f Flow) Validate() error {
	if f.SigmaV <= 0 {
		return fmt.Errorf("turbulence: σ_v %g must be positive", f.SigmaV)
	}
	if f.TL <= 0 {
		return fmt.Errorf("turbulence: T_L %g must be positive", f.TL)
	}
	if f.Dt <= 0 {
		return fmt.Errorf("turbulence: step %g must be positive", f.Dt)
	}
	if f.Dt > f.TL/10 {
		return fmt.Errorf("turbulence: step %g too coarse for T_L %g (want ≤ T_L/10)", f.Dt, f.TL)
	}
	return nil
}

// Disperse simulates one particle released at x = 0 with a velocity
// drawn from the stationary distribution N(0, σ_v²) and records its
// position at each sample time (ascending, positive). out has
// len(times) entries.
//
// The velocity update uses the exact OU transition over one step
// (v ← ρ·v + σ_v·√(1−ρ²)·ξ with ρ = e^{−Δt/T_L}), so the only
// discretization error is in the trapezoidal position update.
func (f Flow) Disperse(src dist.Source, times []float64, out []float64) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if len(times) == 0 || len(out) != len(times) {
		return fmt.Errorf("turbulence: need len(out) == len(times) > 0")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return fmt.Errorf("turbulence: sample times must be ascending")
		}
	}
	if times[0] <= 0 {
		return fmt.Errorf("turbulence: sample times must be positive")
	}

	rho := math.Exp(-f.Dt / f.TL)
	kick := f.SigmaV * math.Sqrt(1-rho*rho)
	var normal dist.Normal

	v := f.SigmaV * normal.Sample(src) // stationary start
	x := 0.0
	t := 0.0
	next := 0
	for next < len(times) {
		vNew := rho*v + kick*normal.Sample(src)
		x += 0.5 * (v + vNew) * f.Dt // trapezoidal position update
		v = vNew
		t += f.Dt
		for next < len(times) && times[next] <= t+1e-12 {
			out[next] = x
			next++
		}
	}
	return nil
}

// TaylorVariance returns the exact dispersion σ_x²(t) of the model.
func (f Flow) TaylorVariance(t float64) float64 {
	r := t / f.TL
	return 2 * f.SigmaV * f.SigmaV * f.TL * f.TL * (r - 1 + math.Exp(-r))
}

// DiffusionCoefficient returns the long-time eddy diffusivity
// K = σ_v²·T_L (the slope of σ_x²/2 for t ≫ T_L).
func (f Flow) DiffusionCoefficient() float64 {
	return f.SigmaV * f.SigmaV * f.TL
}
