package turbulence

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testFlow() Flow {
	return Flow{SigmaV: 1.5, TL: 1, Dt: 0.02}
}

func TestValidate(t *testing.T) {
	if err := testFlow().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Flow{
		{SigmaV: 0, TL: 1, Dt: 0.01},
		{SigmaV: 1, TL: 0, Dt: 0.01},
		{SigmaV: 1, TL: 1, Dt: 0},
		{SigmaV: 1, TL: 1, Dt: 0.5}, // too coarse
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDisperseArguments(t *testing.T) {
	f := testFlow()
	s := stream(t)
	if err := f.Disperse(s, nil, nil); err == nil {
		t.Error("no times accepted")
	}
	if err := f.Disperse(s, []float64{2, 1}, make([]float64, 2)); err == nil {
		t.Error("descending times accepted")
	}
	if err := f.Disperse(s, []float64{0}, make([]float64, 1)); err == nil {
		t.Error("t=0 accepted")
	}
	if err := f.Disperse(s, []float64{1}, make([]float64, 2)); err == nil {
		t.Error("wrong out accepted")
	}
}

func TestTaylorLimits(t *testing.T) {
	f := testFlow()
	// Ballistic limit: σ_x²(t) → σ_v²·t² for t ≪ T_L.
	tSmall := 0.01
	if got, want := f.TaylorVariance(tSmall), f.SigmaV*f.SigmaV*tSmall*tSmall; math.Abs(got-want)/want > 0.01 {
		t.Errorf("ballistic limit: %g, want %g", got, want)
	}
	// Diffusive limit: σ_x²(t) ≈ 2K·t − 2K·T_L for t ≫ T_L.
	tBig := 100.0
	if got, want := f.TaylorVariance(tBig), 2*f.DiffusionCoefficient()*(tBig-f.TL); math.Abs(got-want)/want > 0.001 {
		t.Errorf("diffusive limit: %g, want %g", got, want)
	}
}

func TestDispersionMatchesTaylor(t *testing.T) {
	// Full pipeline: the variance matrix of the positions must follow
	// Taylor's law across ballistic → diffusive regimes.
	f := testFlow()
	times := []float64{0.2, 0.5, 1, 2, 5}
	cfg := core.Config{
		Nrow: len(times), Ncol: 1,
		MaxSamples: 4000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return f.Disperse(src, times, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		// E x(t) = 0 within error bounds.
		if got := res.Report.MeanAt(i, 0); math.Abs(got) > res.Report.AbsErrAt(i, 0)*4/3 {
			t.Errorf("E x(%g) = %g, want 0", tt, got)
		}
		want := f.TaylorVariance(tt)
		got := res.Report.VarAt(i, 0)
		// Variance estimate: allow 10% statistical + discretization slack.
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("σ_x²(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestVelocityStationarity(t *testing.T) {
	// The exact OU update keeps the velocity variance at σ_v² for all
	// times; indirectly visible through ballistic-regime dispersion, but
	// check directly via many short runs: var of x(dt)/dt ≈ σ_v².
	f := Flow{SigmaV: 2, TL: 1, Dt: 0.05}
	s := stream(t)
	out := make([]float64, 1)
	var sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		if err := f.Disperse(s, []float64{f.Dt}, out); err != nil {
			t.Fatal(err)
		}
		v := out[0] / f.Dt
		sum2 += v * v
	}
	got := sum2 / n
	want := f.SigmaV * f.SigmaV
	// The trapezoid averages consecutive velocities: var = σ²(1+ρ)/2 ≈ σ²·0.975.
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("initial velocity variance %g, want ≈ %g", got, want)
	}
}

func BenchmarkDisperse(b *testing.B) {
	f := testFlow()
	times := []float64{0.5, 1, 2, 5}
	out := make([]float64, len(times))
	s := stream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Disperse(s, times, out); err != nil {
			b.Fatal(err)
		}
	}
}
