package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/turbulence"
	"parmonc/internal/workload"
)

// dispersionTimes are the fixed observation times of the workload.
var dispersionTimes = []float64{0.2, 0.5, 1, 2, 5}

func init() {
	workload.Register(workload.Definition{
		Name:        "dispersion",
		Description: "turbulent dispersion σ_x(t) vs Taylor's law at 5 times",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "sigma_v", Description: "rms velocity σ_v", Kind: workload.Float, Default: 1.5, Positive: true},
				{Name: "tl", Description: "Lagrangian integral time scale", Kind: workload.Float, Default: 1, Positive: true},
				{Name: "dt", Description: "integration step (≪ tl for accuracy)", Kind: workload.Float, Default: 0.02, Positive: true},
			},
		},
		Dims:      fixed(len(dispersionTimes), 1),
		RowLabels: labels("t=0.2", "t=0.5", "t=1", "t=2", "t=5"),
		ColLabels: labels("x_squared"),
		Factory: func(v workload.Values) (core.Factory, error) {
			f := turbulence.Flow{
				SigmaV: v.Float("sigma_v"),
				TL:     v.Float("tl"),
				Dt:     v.Float("dt"),
			}
			if err := f.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return f.Disperse(src, dispersionTimes, out)
				}, nil
			}, nil
		},
	})
}
