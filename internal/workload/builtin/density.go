package builtin

import (
	"strconv"

	"parmonc/dist"
	"parmonc/internal/core"
	"parmonc/internal/histogram"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "density",
		Description: "histogram density of Exp(rate) with per-bin error bars",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "bins", Description: "number of equal-width bins", Kind: workload.Int, Default: 15, Min: workload.Bound(1)},
				{Name: "a", Description: "support interval lower edge", Kind: workload.Float, Default: 0},
				{Name: "b", Description: "support interval upper edge (> a)", Kind: workload.Float, Default: 3},
				{Name: "rate", Description: "exponential rate", Kind: workload.Float, Default: 1, Positive: true},
			},
		},
		Dims: func(v workload.Values) (int, int) { return 1, v.Int("bins") },
		ColLabels: func(v workload.Values) []string {
			ls := make([]string, v.Int("bins"))
			for i := range ls {
				ls[i] = "bin" + strconv.Itoa(i+1)
			}
			return ls
		},
		Factory: func(v workload.Values) (core.Factory, error) {
			spec := histogram.Spec{Bins: v.Int("bins"), A: v.Float("a"), B: v.Float("b")}
			rate := v.Float("rate")
			r, err := spec.Realization(func(src dist.Source) float64 {
				return dist.Exponential(src, rate)
			})
			if err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return r(src, out)
				}, nil
			}, nil
		},
	})
}
