package builtin

import (
	"fmt"

	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
	"parmonc/internal/wos"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "dirichlet",
		Description: "walk-on-spheres solution of Δu=0 on a disk, boundary x²−y²",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "radius", Description: "disk radius", Kind: workload.Float, Default: 1, Positive: true},
				{Name: "x", Description: "evaluation point x", Kind: workload.Float, Default: 0.3},
				{Name: "y", Description: "evaluation point y", Kind: workload.Float, Default: 0.2},
				{Name: "eps", Description: "boundary-capture shell thickness", Kind: workload.Float, Default: 1e-4, Positive: true},
			},
		},
		Dims:      fixed(1, 1),
		ColLabels: labels("u"),
		Factory: func(v workload.Values) (core.Factory, error) {
			solver := wos.Solver{
				Domain:   wos.Disk{Radius: v.Float("radius")},
				Boundary: func(p [2]float64) float64 { return p[0]*p[0] - p[1]*p[1] },
				Epsilon:  v.Float("eps"),
			}
			if err := solver.Validate(); err != nil {
				return nil, err
			}
			x0 := [2]float64{v.Float("x"), v.Float("y")}
			if !solver.Domain.Contains(x0) {
				return nil, fmt.Errorf("workload dirichlet: point (%g, %g) outside the disk of radius %g",
					x0[0], x0[1], v.Float("radius"))
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return solver.Walk(src, x0, out)
				}, nil
			}, nil
		},
	})
}
