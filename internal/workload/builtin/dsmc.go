package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/dsmc"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

// dsmcTimes are the fixed observation times of the workload.
var dsmcTimes = []float64{0.5, 1, 2, 4, 8}

func init() {
	workload.Register(workload.Definition{
		Name:        "dsmc",
		Description: "Boltzmann/DSMC Maxwell-gas temperature relaxation at 5 times",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "n", Description: "number of model particles", Kind: workload.Int, Default: 200, Min: workload.Bound(2)},
				{Name: "nu", Description: "per-particle collision frequency", Kind: workload.Float, Default: 1, Positive: true},
				{Name: "tx", Description: "initial x-component temperature", Kind: workload.Float, Default: 3, Positive: true},
				{Name: "ty", Description: "initial y/z-component temperature", Kind: workload.Float, Default: 1, Positive: true},
			},
		},
		Dims:      fixed(len(dsmcTimes), dsmc.NMoments),
		RowLabels: labels("t=0.5", "t=1", "t=2", "t=4", "t=8"),
		ColLabels: labels("temp_x", "temp_y", "temp_z"),
		Factory: func(v workload.Values) (core.Factory, error) {
			g := dsmc.Gas{
				N:  v.Int("n"),
				Nu: v.Float("nu"),
				Tx: v.Float("tx"),
				Ty: v.Float("ty"),
			}
			if err := g.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return g.Relax(src, dsmcTimes, out)
				}, nil
			}, nil
		},
	})
}
