package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "pi",
		Description: "estimate π/4 by rejection in the unit square",
		Schema:      workload.Schema{Version: 1},
		Dims:        fixed(1, 1),
		ColLabels:   labels("inside_quarter_disc"),
		Factory: func(workload.Values) (core.Factory, error) {
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					x, y := src.Float64(), src.Float64()
					if x*x+y*y < 1 {
						out[0] = 1
					}
					return nil
				}, nil
			}, nil
		},
	})
}
