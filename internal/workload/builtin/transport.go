package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/transport"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "transport",
		Description: "1-D slab transmission/reflection/absorption probabilities",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "thickness", Description: "slab width (mean free paths at sigma_t=1)", Kind: workload.Float, Default: 2, Positive: true},
				{Name: "sigma_t", Description: "total macroscopic cross-section", Kind: workload.Float, Default: 1, Positive: true},
				{Name: "sigma_s", Description: "scattering cross-section (0 ≤ sigma_s ≤ sigma_t)", Kind: workload.Float, Default: 0.8, Min: workload.Bound(0)},
				{Name: "mu0", Description: "incident direction cosine, in (0, 1]", Kind: workload.Float, Default: 1, Positive: true, Max: workload.Bound(1)},
			},
		},
		Dims:      fixed(1, transport.NOutcomes),
		ColLabels: labels("transmitted", "reflected", "absorbed"),
		Factory: func(v workload.Values) (core.Factory, error) {
			slab := transport.Slab{
				Thickness: v.Float("thickness"),
				SigmaT:    v.Float("sigma_t"),
				SigmaS:    v.Float("sigma_s"),
				Mu0:       v.Float("mu0"),
			}
			if err := slab.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return slab.History(src, out)
				}, nil
			}, nil
		},
	})
}
