package builtin

import (
	"parmonc/internal/branching"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "branching",
		Description: "Galton–Watson (Poisson offspring) population and extinction",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "mu", Description: "mean offspring count", Kind: workload.Float, Default: 1.5, Positive: true},
				{Name: "generations", Description: "generations simulated per lineage", Kind: workload.Int, Default: 40, Min: workload.Bound(1)},
				{Name: "popcap", Description: "explosion guard: population beyond this counts as survived", Kind: workload.Int, Default: 1_000_000, Min: workload.Bound(1)},
			},
		},
		Dims:      fixed(1, branching.NOutcomes),
		ColLabels: labels("final_population", "extinct"),
		Factory: func(v workload.Values) (core.Factory, error) {
			p := branching.Process{
				Mu:          v.Float("mu"),
				Generations: v.Int("generations"),
				PopCap:      v.Int64("popcap"),
			}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return p.Realize(src, out)
				}, nil
			}, nil
		},
	})
}
