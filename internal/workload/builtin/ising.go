package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/ising"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "ising",
		Description: "2-D Ising replica observables on an l×l lattice",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "l", Description: "lattice side", Kind: workload.Int, Default: 16, Min: workload.Bound(2)},
				{Name: "beta", Description: "inverse temperature β = J/kT", Kind: workload.Float, Default: 0.3, Min: workload.Bound(0)},
				{Name: "sweeps", Description: "Metropolis sweeps per replica", Kind: workload.Int, Default: 60, Min: workload.Bound(1)},
				{Name: "warmup", Description: "sweeps discarded before measuring", Kind: workload.Int, Default: 30, Min: workload.Bound(0)},
			},
		},
		Dims:      fixed(1, ising.NObservables),
		ColLabels: labels("energy_per_site", "abs_magnetization"),
		Factory: func(v workload.Values) (core.Factory, error) {
			m := ising.Model{
				L:      v.Int("l"),
				Beta:   v.Float("beta"),
				Sweeps: v.Int("sweeps"),
				Warmup: v.Int("warmup"),
			}
			if err := m.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return m.Replica(src, out)
				}, nil
			}, nil
		},
	})
}
