package builtin_test

import (
	"reflect"
	"testing"

	"parmonc/internal/rng"
	"parmonc/internal/workload"

	_ "parmonc/internal/workload/builtin"
)

// The 13 built-in workloads the CLI has always shipped.
var wantNames = []string{
	"branching", "chem", "coagulation", "density", "diffusion",
	"dirichlet", "dispersion", "dsmc", "ising", "mm1",
	"option", "pi", "transport",
}

func TestRegistryComplete(t *testing.T) {
	if got := workload.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("registry has %v, want %v", got, wantNames)
	}
}

// TestDefinitionsUsable exercises every registration end to end at its
// defaults: identity resolves, labels match the dimensions, the factory
// builds, and one realization fills a correctly-sized row with the same
// bits from the same substream.
func TestDefinitionsUsable(t *testing.T) {
	params := rng.DefaultParams()
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			id, err := d.Identity(nil)
			if err != nil {
				t.Fatal(err)
			}
			if id.Nrow <= 0 || id.Ncol <= 0 {
				t.Fatalf("default dims %d×%d", id.Nrow, id.Ncol)
			}
			if id.Digest == "" || id.Fingerprint() == d.Name {
				t.Fatalf("identity has no digest: %+v", id)
			}
			v := workload.Values(id.Params)
			if d.RowLabels != nil {
				if ls := d.RowLabels(v); len(ls) != id.Nrow {
					t.Fatalf("%d row labels for %d rows", len(ls), id.Nrow)
				}
			}
			if d.ColLabels != nil {
				if ls := d.ColLabels(v); len(ls) != id.Ncol {
					t.Fatalf("%d col labels for %d cols", len(ls), id.Ncol)
				}
			}
			factory, err := d.Factory(v)
			if err != nil {
				t.Fatal(err)
			}
			run := func() []float64 {
				realize, err := factory(1)
				if err != nil {
					t.Fatal(err)
				}
				src, err := rng.NewStream(params, rng.Coord{Processor: 1})
				if err != nil {
					t.Fatal(err)
				}
				out := make([]float64, id.Nrow*id.Ncol)
				if err := realize(src, out); err != nil {
					t.Fatal(err)
				}
				return out
			}
			if a, b := run(), run(); !reflect.DeepEqual(a, b) {
				t.Fatalf("realization not reproducible from the same substream:\n%v\n%v", a, b)
			}
		})
	}
}

// TestParameterizedDims: dimensions follow the parameters they depend
// on, and the identity digest moves with every parameter change.
func TestParameterizedDims(t *testing.T) {
	cases := []struct {
		name       string
		overrides  workload.Values
		nrow, ncol int
	}{
		{"density", workload.Values{"bins": 7}, 1, 7},
		{"diffusion", workload.Values{"nout": 5}, 5, 2},
		{"mm1", workload.Values{"lambda": 0.8}, 1, 1},
	}
	for _, tc := range cases {
		d, err := workload.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		id, err := d.Identity(tc.overrides)
		if err != nil {
			t.Fatal(err)
		}
		if id.Nrow != tc.nrow || id.Ncol != tc.ncol {
			t.Fatalf("%s %v: dims %d×%d, want %d×%d",
				tc.name, tc.overrides, id.Nrow, id.Ncol, tc.nrow, tc.ncol)
		}
		base, err := d.Identity(nil)
		if err != nil {
			t.Fatal(err)
		}
		if id.Digest == base.Digest {
			t.Fatalf("%s: override %v did not change the digest", tc.name, tc.overrides)
		}
	}
}

// TestInvalidParametersRejected: scenario-package invariants that span
// several parameters surface as factory errors, not bad simulations.
func TestInvalidParametersRejected(t *testing.T) {
	cases := []struct {
		name      string
		overrides workload.Values
	}{
		{"mm1", workload.Values{"lambda": 2}},             // unstable: lambda >= mu
		{"transport", workload.Values{"sigma_s": 5}},      // sigma_s > sigma_t
		{"ising", workload.Values{"warmup": 100}},         // warmup >= sweeps
		{"density", workload.Values{"a": 5}},              // a >= b
		{"dirichlet", workload.Values{"x": 2, "y": 2}},    // point outside the disk
		{"dispersion", workload.Values{"dt": 5, "tl": 1}}, // dt > tl, unusable mesh
	}
	for _, tc := range cases {
		d, err := workload.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		v, err := d.Schema.Resolve(tc.overrides)
		if err != nil {
			continue // rejected even earlier, by the schema — fine
		}
		if _, err := d.Factory(v); err == nil {
			t.Errorf("%s with %v built a factory", tc.name, tc.overrides)
		}
	}
}
