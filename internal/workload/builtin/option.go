package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/finance"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "option",
		Description: "European call/put payoffs under geometric Brownian motion",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "s0", Description: "spot price", Kind: workload.Float, Default: 100, Positive: true},
				{Name: "strike", Description: "strike K", Kind: workload.Float, Default: 105, Positive: true},
				{Name: "rate", Description: "risk-free rate r", Kind: workload.Float, Default: 0.05},
				{Name: "sigma", Description: "volatility σ", Kind: workload.Float, Default: 0.2, Positive: true},
				{Name: "t", Description: "maturity in years", Kind: workload.Float, Default: 1, Positive: true},
			},
		},
		Dims:      fixed(1, finance.NPayoffs),
		ColLabels: labels("call", "put"),
		Factory: func(v workload.Values) (core.Factory, error) {
			o := finance.Option{
				S0:     v.Float("s0"),
				Strike: v.Float("strike"),
				Rate:   v.Float("rate"),
				Sigma:  v.Float("sigma"),
				T:      v.Float("t"),
			}
			r, err := o.EuropeanRealization()
			if err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return r(src, out)
				}, nil
			}, nil
		},
	})
}
