// Package builtin registers the library's built-in workloads — the
// scenarios used in the paper's evaluation and this repository's
// examples — with the workload registry. Import it for side effects:
//
//	import _ "parmonc/internal/workload/builtin"
//
// Each scenario lives in its own file and contributes one
// workload.Definition: name, description, output dimensions, a typed
// parameter schema with defaults and bounds, and the factory producing
// per-worker realization routines. The cmd/parmonc CLI, the examples,
// the cross-transport conformance suite and the generated README table
// all consume these registrations; adding a scenario is one Register
// call in one new file.
package builtin

//go:generate go run parmonc/cmd/workload-docs -readme ../../../README.md

import "parmonc/internal/workload"

// fixed is a Dims function for workloads whose output shape does not
// depend on parameters.
func fixed(nrow, ncol int) func(workload.Values) (int, int) {
	return func(workload.Values) (int, int) { return nrow, ncol }
}

// labels is a constant label-list function.
func labels(ls ...string) func(workload.Values) []string {
	return func(workload.Values) []string { return ls }
}
