package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/queueing"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "mm1",
		Description: "M/M/1 queue batch-mean waiting time",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "lambda", Description: "arrival rate (< mu for stability)", Kind: workload.Float, Default: 0.6, Positive: true},
				{Name: "mu", Description: "service rate", Kind: workload.Float, Default: 1, Positive: true},
				{Name: "warmup", Description: "customers discarded before measuring", Kind: workload.Int, Default: 2000, Min: workload.Bound(0)},
				{Name: "batch", Description: "customers averaged per realization", Kind: workload.Int, Default: 2000, Min: workload.Bound(1)},
			},
		},
		Dims:      fixed(1, 1),
		ColLabels: labels("mean_wait"),
		Factory: func(v workload.Values) (core.Factory, error) {
			q := queueing.MM1{
				Lambda: v.Float("lambda"),
				Mu:     v.Float("mu"),
				Warmup: v.Int("warmup"),
				Batch:  v.Int("batch"),
			}
			if err := q.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return q.BatchMeanWait(src, out)
				}, nil
			}, nil
		},
	})
}
