package builtin

import (
	"parmonc/internal/chem"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/workload"
)

// chemTimes are the fixed observation times of the workload.
var chemTimes = []float64{0.3, 1, 2, 5}

func init() {
	workload.Register(workload.Definition{
		Name:        "chem",
		Description: "Gillespie SSA, reversible isomerization A⇌B at 4 times",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "k1", Description: "forward rate A→B", Kind: workload.Float, Default: 2, Positive: true},
				{Name: "k2", Description: "backward rate B→A", Kind: workload.Float, Default: 1, Positive: true},
				{Name: "a0", Description: "initial A molecules", Kind: workload.Int, Default: 150, Min: workload.Bound(0)},
				{Name: "b0", Description: "initial B molecules", Kind: workload.Int, Default: 0, Min: workload.Bound(0)},
			},
		},
		Dims:      fixed(len(chemTimes), 2),
		RowLabels: labels("t=0.3", "t=1", "t=2", "t=5"),
		ColLabels: labels("A", "B"),
		Factory: func(v workload.Values) (core.Factory, error) {
			net := chem.Isomerization(v.Float("k1"), v.Float("k2"), v.Int64("a0"), v.Int64("b0"))
			if err := net.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return net.Trajectory(src, chemTimes, []int{0, 1}, out)
				}, nil
			}, nil
		},
	})
}
