package builtin

import (
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/smoluchowski"
	"parmonc/internal/workload"
)

// coagulationTimes are the fixed observation times of the workload.
var coagulationTimes = []float64{0.5, 1, 2, 4}

func init() {
	workload.Register(workload.Definition{
		Name:        "coagulation",
		Description: "Smoluchowski constant-kernel cluster counts at 4 times",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "n0", Description: "initial monomer count", Kind: workload.Int, Default: 500, Min: workload.Bound(2)},
				{Name: "volume", Description: "system volume", Kind: workload.Float, Default: 500, Positive: true},
				{Name: "k0", Description: "constant kernel rate", Kind: workload.Float, Default: 1, Positive: true},
			},
		},
		Dims:      fixed(len(coagulationTimes), 1),
		RowLabels: labels("t=0.5", "t=1", "t=2", "t=4"),
		ColLabels: labels("clusters"),
		Factory: func(v workload.Values) (core.Factory, error) {
			sys := smoluchowski.System{
				N0:     v.Int("n0"),
				Volume: v.Float("volume"),
				Kernel: smoluchowski.ConstantKernel(v.Float("k0")),
				K0:     v.Float("k0"),
			}
			if err := sys.Validate(); err != nil {
				return nil, err
			}
			return func(int) (core.Realization, error) {
				return func(src *rng.Stream, out []float64) error {
					return sys.ClusterCounts(src, coagulationTimes, out)
				}, nil
			}, nil
		},
	})
}
