package builtin

import (
	"strconv"

	"parmonc/internal/core"
	"parmonc/internal/sde"
	"parmonc/internal/workload"
)

func init() {
	workload.Register(workload.Definition{
		Name:        "diffusion",
		Description: "the paper's Sec. 4 SDE test (scaled mesh): E y(t_i) on an nout×2 grid",
		Schema: workload.Schema{
			Version: 1,
			Params: []workload.Param{
				{Name: "h", Description: "Euler mesh size", Kind: workload.Float, Default: 1e-3, Positive: true},
				{Name: "tend", Description: "integration horizon", Kind: workload.Float, Default: 10, Positive: true},
				{Name: "nout", Description: "number of output times t_i = i·tend/nout", Kind: workload.Int, Default: 100, Min: workload.Bound(1)},
			},
		},
		Dims: func(v workload.Values) (int, int) { return v.Int("nout"), 2 },
		RowLabels: func(v workload.Values) []string {
			ls := make([]string, v.Int("nout"))
			for i := range ls {
				ls[i] = "t" + strconv.Itoa(i+1)
			}
			return ls
		},
		ColLabels: labels("y1", "y2"),
		Factory: func(v workload.Values) (core.Factory, error) {
			h, tEnd, nOut := v.Float("h"), v.Float("tend"), v.Int("nout")
			// The integrator carries per-call state; every worker gets a
			// fresh one, as every MPI rank runs its own user routine.
			return func(int) (core.Realization, error) {
				return sde.PaperRealization(h, tEnd, nOut)
			}, nil
		},
	})
}
