// Package workload makes simulation scenarios first-class: a workload
// is a named realization routine plus a typed parameter schema, and the
// package owns workload identity end to end — from the CLI's
// -set key=value flags and JSON scenario specs, through the registry
// every built-in scenario registers itself in, to the canonical
// parameter fingerprint the cluster transport checks at registration.
//
// The original PARMONC is a library: the user links an arbitrary
// realization routine and the RNG/collector machinery does the rest.
// This package is the Go-shaped version of that contract. A scenario
// package contributes one Definition (name, description, output
// dimensions, parameter schema, factory); everything else — CLI flags,
// report labels, machine-readable listings, cross-transport identity
// checks — is derived from it, so adding a scenario is one Register
// call instead of a multi-file edit.
package workload

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Kind is the type of a schema parameter.
type Kind string

const (
	// Float is an unconstrained real parameter (bounds aside).
	Float Kind = "float"
	// Int is an integer-valued parameter; overrides must be integral.
	Int Kind = "int"
)

// Param is one typed parameter of a workload schema.
type Param struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Kind        Kind     `json:"kind"`
	Default     float64  `json:"default"`
	Min         *float64 `json:"min,omitempty"` // inclusive lower bound
	Max         *float64 `json:"max,omitempty"` // inclusive upper bound
	// Positive requires the value to be strictly greater than zero —
	// the common "rate/size must be positive" constraint that an
	// inclusive Min cannot express.
	Positive bool `json:"positive,omitempty"`
}

// Bound returns a pointer to v, for authoring Param bounds inline.
func Bound(v float64) *float64 { return &v }

// Schema is the ordered, versioned parameter schema of a workload.
// Version participates in the identity fingerprint: bump it whenever a
// parameter is added, removed, renamed, or its meaning changes, so
// binaries built before and after the change cannot silently join the
// same cluster job.
type Schema struct {
	Version int     `json:"version"`
	Params  []Param `json:"params,omitempty"`
}

// Values holds resolved parameter values by name. Int-kind parameters
// are stored as integral float64s (the schema rejects anything else).
type Values map[string]float64

// Float returns the value of a parameter (which must exist — resolved
// Values always carry every schema parameter).
func (v Values) Float(name string) float64 { return v[name] }

// Int returns an Int-kind parameter as an int.
func (v Values) Int(name string) int { return int(v[name]) }

// Int64 returns an Int-kind parameter as an int64.
func (v Values) Int64(name string) int64 { return int64(v[name]) }

// Clone returns a copy of v.
func (v Values) Clone() Values {
	c := make(Values, len(v))
	for k, x := range v {
		c[k] = x
	}
	return c
}

// canonical renders the values as "k1=v1,k2=v2" with sorted keys and
// shortest-round-trip float formatting — the deterministic fragment of
// the identity fingerprint.
func (v Values) canonical() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v[k], 'g', -1, 64))
	}
	return b.String()
}

// paramName restricts schema parameter names (and therefore -set keys)
// to a shape that is unambiguous in canonical strings, JSON, and shell
// command lines.
var paramName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// validate checks the schema's own invariants (well-formed names, kinds
// and defaults); Register calls it so a broken schema fails at
// registration, not at first use.
func (s Schema) validate() error {
	if s.Version < 1 {
		return fmt.Errorf("workload: schema version %d must be >= 1", s.Version)
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if !paramName.MatchString(p.Name) {
			return fmt.Errorf("workload: invalid parameter name %q", p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("workload: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if p.Kind != Float && p.Kind != Int {
			return fmt.Errorf("workload: parameter %q has unknown kind %q", p.Name, p.Kind)
		}
		if err := s.checkValue(p, p.Default); err != nil {
			return fmt.Errorf("workload: default %w", err)
		}
	}
	return nil
}

// param looks a parameter up by name.
func (s Schema) param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// checkValue validates one value against its parameter's kind and
// bounds.
func (s Schema) checkValue(p Param, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("value of %q must be finite, got %g", p.Name, v)
	}
	if p.Kind == Int && v != math.Trunc(v) {
		return fmt.Errorf("value of %q must be an integer, got %g", p.Name, v)
	}
	if p.Positive && !(v > 0) {
		return fmt.Errorf("value of %q must be > 0, got %g", p.Name, v)
	}
	if p.Min != nil && v < *p.Min {
		return fmt.Errorf("value of %q must be >= %g, got %g", p.Name, *p.Min, v)
	}
	if p.Max != nil && v > *p.Max {
		return fmt.Errorf("value of %q must be <= %g, got %g", p.Name, *p.Max, v)
	}
	return nil
}

// Defaults returns the schema's default values.
func (s Schema) Defaults() Values {
	v := make(Values, len(s.Params))
	for _, p := range s.Params {
		v[p.Name] = p.Default
	}
	return v
}

// Resolve validates the overrides against the schema and returns the
// complete value set: defaults with the overrides applied. Unknown
// keys, non-integral Int values and out-of-bounds values are rejected
// with errors naming the offending parameter.
func (s Schema) Resolve(overrides Values) (Values, error) {
	v := s.Defaults()
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic first error
	for _, k := range keys {
		p, ok := s.param(k)
		if !ok {
			return nil, fmt.Errorf("workload: unknown parameter %q (have %s)", k, s.names())
		}
		if err := s.checkValue(p, overrides[k]); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		v[k] = overrides[k]
	}
	return v, nil
}

// names lists the schema's parameter names for error messages.
func (s Schema) names() string {
	if len(s.Params) == 0 {
		return "no parameters"
	}
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// ParseSet parses one -set argument of the form "key=value".
func ParseSet(arg string) (key string, val float64, err error) {
	eq := strings.IndexByte(arg, '=')
	if eq < 0 {
		return "", 0, fmt.Errorf("workload: -set %q is not of the form key=value", arg)
	}
	key = arg[:eq]
	if !paramName.MatchString(key) {
		return "", 0, fmt.Errorf("workload: -set key %q is not a valid parameter name", key)
	}
	val, perr := strconv.ParseFloat(arg[eq+1:], 64)
	if perr != nil {
		return "", 0, fmt.Errorf("workload: -set %s: bad value %q", key, arg[eq+1:])
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return "", 0, fmt.Errorf("workload: -set %s: value must be finite, got %g", key, val)
	}
	return key, val, nil
}

// ParseSets parses a list of -set arguments; a later assignment to the
// same key wins, as with repeated command-line flags.
func ParseSets(args []string) (Values, error) {
	v := Values{}
	for _, arg := range args {
		k, x, err := ParseSet(arg)
		if err != nil {
			return nil, err
		}
		v[k] = x
	}
	return v, nil
}

// FormatSet renders one assignment in -set form; ParseSet inverts it.
func FormatSet(key string, val float64) string {
	return key + "=" + strconv.FormatFloat(val, 'g', -1, 64)
}
