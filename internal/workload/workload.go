package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"parmonc/internal/core"
)

// Definition is everything the library needs to serve a scenario: its
// identity, its output shape, its typed parameters, and the factory
// producing per-worker realization routines. Scenario packages register
// one Definition each (see internal/workload/builtin); the CLI, the
// cluster protocol, the conformance suite and the generated docs all
// run off the registry.
type Definition struct {
	// Name is the registry key (same character set as parameter names).
	Name string
	// Description is the one-line human summary shown by `parmonc list`.
	Description string
	// Schema is the versioned parameter schema.
	Schema Schema
	// Dims returns the realization matrix dimensions for resolved
	// values — dimensions may depend on parameters (bin or output-time
	// counts).
	Dims func(v Values) (nrow, ncol int)
	// Factory builds the per-worker realization factory for resolved
	// values.
	Factory func(v Values) (core.Factory, error)
	// RowLabels and ColLabels, when non-nil, name the realization
	// matrix axes for reports and machine-readable listings.
	RowLabels func(v Values) []string
	ColLabels func(v Values) []string
}

// validate checks the definition invariants at registration time.
func (d Definition) validate() error {
	if !paramName.MatchString(d.Name) {
		return fmt.Errorf("workload: invalid name %q", d.Name)
	}
	if d.Description == "" {
		return fmt.Errorf("workload %q: empty description", d.Name)
	}
	if d.Dims == nil {
		return fmt.Errorf("workload %q: nil Dims", d.Name)
	}
	if d.Factory == nil {
		return fmt.Errorf("workload %q: nil Factory", d.Name)
	}
	if err := d.Schema.validate(); err != nil {
		return fmt.Errorf("workload %q: %w", d.Name, err)
	}
	nrow, ncol := d.Dims(d.Schema.Defaults())
	if nrow <= 0 || ncol <= 0 {
		return fmt.Errorf("workload %q: default dimensions %d×%d invalid", d.Name, nrow, ncol)
	}
	return nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Definition{}
)

// Register adds a definition to the registry. It panics on an invalid
// or duplicate definition: registration happens in package init
// functions, where a panic is a build-time bug, not a runtime
// condition.
func Register(d Definition) {
	if err := d.validate(); err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Errorf("workload: duplicate registration of %q", d.Name))
	}
	registry[d.Name] = d
}

// Lookup resolves a workload name; the error of an unknown name lists
// what is available.
func Lookup(name string) (Definition, error) {
	regMu.RLock()
	d, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Definition{}, fmt.Errorf("unknown workload %q; available: [%s]",
			name, strings.Join(Names(), " "))
	}
	return d, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered definition, sorted by name.
func All() []Definition {
	regMu.RLock()
	defer regMu.RUnlock()
	defs := make([]Definition, 0, len(registry))
	for _, d := range registry {
		defs = append(defs, d)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	return defs
}
