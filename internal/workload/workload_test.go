package workload

import (
	"strings"
	"testing"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func unitFactory(Values) (core.Factory, error) {
	return func(int) (core.Realization, error) {
		return func(src *rng.Stream, out []float64) error {
			out[0] = src.Float64()
			return nil
		}, nil
	}, nil
}

func testDef() Definition {
	return Definition{
		Name:        "unit",
		Description: "test workload",
		Schema: Schema{
			Version: 1,
			Params: []Param{
				{Name: "rate", Description: "a rate", Kind: Float, Default: 1, Positive: true},
				{Name: "bins", Description: "a count", Kind: Int, Default: 4, Min: Bound(1), Max: Bound(64)},
			},
		},
		Dims:    func(v Values) (int, int) { return 1, v.Int("bins") },
		Factory: unitFactory,
	}
}

func TestSchemaResolve(t *testing.T) {
	s := testDef().Schema
	cases := []struct {
		name      string
		overrides Values
		wantErr   string // substring, "" = success
	}{
		{"defaults", nil, ""},
		{"valid override", Values{"rate": 2.5}, ""},
		{"unknown key", Values{"nope": 1}, `unknown parameter "nope"`},
		{"non-integral int", Values{"bins": 2.5}, `must be an integer`},
		{"below min", Values{"bins": 0}, `must be >= 1`},
		{"above max", Values{"bins": 65}, `must be <= 64`},
		{"violates positive", Values{"rate": 0}, `must be > 0`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := s.Resolve(tc.overrides)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			// Resolved values carry every schema parameter.
			for _, p := range s.Params {
				if _, ok := v[p.Name]; !ok {
					t.Fatalf("resolved values lack %s", p.Name)
				}
			}
		})
	}
}

func TestIdentityDeterministic(t *testing.T) {
	d := testDef()
	a, err := d.Identity(Values{"rate": 0.125, "bins": 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Identity(Values{"bins": 8, "rate": 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("identity not deterministic: %q vs %q", a.Digest, b.Digest)
	}
	if a.Nrow != 1 || a.Ncol != 8 {
		t.Fatalf("dims %d×%d, want 1×8", a.Nrow, a.Ncol)
	}
	if want := "unit@v1/" + a.Digest[:12]; a.Fingerprint() != want {
		t.Fatalf("fingerprint %q, want %q", a.Fingerprint(), want)
	}

	// Any parameter change changes the digest.
	c, err := d.Identity(Values{"rate": 0.25, "bins": 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different parameters share a digest")
	}
}

func TestCheckWorkerMessages(t *testing.T) {
	d := testDef()
	job, err := d.Identity(nil)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Identity)) Identity {
		id, err := d.Identity(nil)
		if err != nil {
			t.Fatal(err)
		}
		f(&id)
		return id
	}
	paramChanged, err := d.Identity(Values{"rate": 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		worker Identity
		want   string // exact text, "" = accepted
	}{
		{"zero worker", Identity{}, ""},
		{"name-only worker", Named("unit"), ""},
		{"identical", job, ""},
		{"wrong name", Named("other"), `worker runs workload "other" but the job is "unit"`},
		{"schema version", mutate(func(id *Identity) { id.SchemaVersion = 9 }),
			`workload "unit": worker uses parameter schema v9 but the job uses v1`},
		{"dims", mutate(func(id *Identity) { id.Nrow = 7 }),
			`workload "unit": worker realization is 7×4 but the job is 1×4`},
		{"param value", paramChanged,
			`workload "unit": parameter rate mismatch: worker has 3, the job has 1`},
		{"param missing", mutate(func(id *Identity) { delete(id.Params, "rate") }),
			`workload "unit": worker lacks parameter rate (the job has rate=1)`},
		{"param extra", mutate(func(id *Identity) { id.Params["zeta"] = 1 }),
			`workload "unit": worker has parameter zeta=1 the job does not know`},
		{"digest only", mutate(func(id *Identity) { id.Digest = "feedbeef" }),
			`workload "unit": parameter fingerprint mismatch (worker unit@v1/feedbeef, job ` + job.Fingerprint() + `)`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := job.CheckWorker(tc.worker)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("accepted identity rejected: %v", err)
				}
				return
			}
			if err == nil || err.Error() != tc.want {
				t.Fatalf("got\n  %v\nwant\n  %s", err, tc.want)
			}
		})
	}

	// A zero job accepts anyone.
	if err := (Identity{}).CheckWorker(paramChanged); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := Spec{Workload: "unit", Params: Values{"rate": 0.125, "bins": 8}}
	c := s.Canonical()
	if strings.ContainsAny(c, " \t\n") {
		t.Fatalf("canonical spec contains whitespace: %q", c)
	}
	back, err := ParseSpec([]byte(c))
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != s.Workload || len(back.Params) != len(s.Params) {
		t.Fatalf("round trip changed the spec: %+v", back)
	}
	for k, v := range s.Params {
		if back.Params[k] != v {
			t.Fatalf("param %s: %g != %g", k, back.Params[k], v)
		}
	}
	if back.Canonical() != c {
		t.Fatalf("canonical not a fixed point: %q vs %q", back.Canonical(), c)
	}
}

func TestSpecRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown field", `{"workload":"unit","parms":{"rate":1}}`},
		{"no name", `{"params":{"rate":1}}`},
		{"bad name", `{"workload":"No Such!"}`},
		{"bad param key", `{"workload":"unit","params":{"Bad Key":1}}`},
		{"trailing data", `{"workload":"unit"}{"workload":"unit"}`},
		{"not json", `workload=unit`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpec([]byte(tc.data)); err == nil {
				t.Fatalf("malformed spec accepted: %s", tc.data)
			}
		})
	}
}

func TestParseSet(t *testing.T) {
	k, v, err := ParseSet("lambda=0.8")
	if err != nil || k != "lambda" || v != 0.8 {
		t.Fatalf("got %q %g %v", k, v, err)
	}
	for _, bad := range []string{"lambda", "=1", "Lambda=1", "lambda=", "lambda=x", "lambda=NaN", "lambda=+Inf", "0abc=1"} {
		if _, _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%q) accepted", bad)
		}
	}
	// Later assignment wins, as with repeated flags.
	v2, err := ParseSets([]string{"a=1", "b=2", "a=3"})
	if err != nil {
		t.Fatal(err)
	}
	if v2["a"] != 3 || v2["b"] != 2 {
		t.Fatalf("ParseSets: %v", v2)
	}
}

func TestFormatSetInvertsParseSet(t *testing.T) {
	for _, val := range []float64{0, 1, -1, 0.6, 1e-9, 12345678.90123, 1e300} {
		s := FormatSet("k", val)
		k, v, err := ParseSet(s)
		if err != nil || k != "k" || v != val {
			t.Fatalf("round trip of %g via %q: %q %g %v", val, s, k, v, err)
		}
	}
}

func TestRegisterLookup(t *testing.T) {
	d := testDef()
	d.Name = "unit_register_test"
	Register(d)
	got, err := Lookup(d.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != d.Description {
		t.Fatalf("lookup returned %+v", got)
	}
	if _, err := Lookup("no_such_workload"); err == nil ||
		!strings.Contains(err.Error(), "available") {
		t.Fatalf("unknown-workload error %v does not list what is available", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate registration did not panic")
			}
		}()
		Register(d)
	}()
}
