package workload

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseSet: whatever the input, ParseSet either rejects it or
// returns a key/value pair that FormatSet renders back to something
// ParseSet parses to the identical pair — the CLI's -set arguments and
// the canonical identity string agree on the value forever.
func FuzzParseSet(f *testing.F) {
	f.Add("lambda=0.8")
	f.Add("mu=1")
	f.Add("x=-1e300")
	f.Add("k=0x1p-3")
	f.Add("=5")
	f.Add("a==b")
	f.Add("bins=2.5")
	f.Add("rate=NaN")
	f.Fuzz(func(t *testing.T, arg string) {
		k, v, err := ParseSet(arg)
		if err != nil {
			return
		}
		if !paramName.MatchString(k) {
			t.Fatalf("accepted invalid key %q", k)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("accepted non-finite value %g", v)
		}
		k2, v2, err := ParseSet(FormatSet(k, v))
		if err != nil {
			t.Fatalf("FormatSet(%q, %g) = %q does not re-parse: %v", k, v, FormatSet(k, v), err)
		}
		if k2 != k || v2 != v {
			t.Fatalf("round trip changed %q=%g to %q=%g", k, v, k2, v2)
		}
	})
}

// FuzzParseSpec: scenario specs either fail to parse or round-trip
// through their canonical form bit-for-bit — the parmonc_exp.dat record
// of a run always reproduces the exact parameterization.
func FuzzParseSpec(f *testing.F) {
	f.Add(`{"workload":"mm1","params":{"lambda":0.8,"mu":1.2}}`)
	f.Add(`{"workload":"pi"}`)
	f.Add(`{"workload":"density","params":{"bins":15}}`)
	f.Add(`{"workload":"x","params":{"a":1e-300}}`)
	f.Add(`{"workload":"bad name"}`)
	f.Add(`{"workload":"mm1","unknown":1}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ParseSpec([]byte(data))
		if err != nil {
			return
		}
		c := s.Canonical()
		if strings.ContainsAny(c, " \t\n") {
			t.Fatalf("canonical form contains whitespace: %q", c)
		}
		back, err := ParseSpec([]byte(c))
		if err != nil {
			t.Fatalf("canonical form %q does not parse: %v", c, err)
		}
		if back.Canonical() != c {
			t.Fatalf("canonical not a fixed point: %q vs %q", back.Canonical(), c)
		}
		if back.Workload != s.Workload || len(back.Params) != len(s.Params) {
			t.Fatalf("round trip changed the spec: %+v vs %+v", back, s)
		}
		for k, v := range s.Params {
			bv, ok := back.Params[k]
			if !ok || (bv != v && !(math.IsNaN(bv) && math.IsNaN(v))) {
				t.Fatalf("param %s: %g != %g", k, bv, v)
			}
		}
	})
}
