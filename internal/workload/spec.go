package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Spec is a scenario specification: a workload name plus parameter
// overrides. It is the JSON payload of the CLI's -scenario flag, and
// its canonical form is stamped into parmonc_exp.dat alongside every
// run, so a stored experiment can be re-run exactly with
//
//	parmonc run -scenario <(grep ... parmonc_exp.dat)
//
// Specs round-trip: Canonical output parses back to an equal Spec.
type Spec struct {
	Workload string `json:"workload"`
	Params   Values `json:"params,omitempty"`
}

// ParseSpec decodes a scenario spec, rejecting unknown fields so a
// typo'd key fails loudly instead of silently running the defaults.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: invalid scenario spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	// Trailing garbage after the JSON document is a malformed file.
	if dec.More() {
		return Spec{}, fmt.Errorf("workload: invalid scenario spec: trailing data after JSON document")
	}
	return s, nil
}

// LoadSpec reads and parses a scenario spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: reading scenario spec: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec's shape (the workload need not be
// registered — a spec may describe a user-linked scenario).
func (s Spec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("workload: scenario spec has no workload name")
	}
	if !paramName.MatchString(s.Workload) {
		return fmt.Errorf("workload: scenario spec has invalid workload name %q", s.Workload)
	}
	for k, v := range s.Params {
		if !paramName.MatchString(k) {
			return fmt.Errorf("workload: scenario spec has invalid parameter name %q", k)
		}
		if _, _, err := ParseSet(FormatSet(k, v)); err != nil {
			return fmt.Errorf("workload: scenario spec parameter %s: non-finite value %g", k, v)
		}
	}
	return nil
}

// Canonical renders the spec as compact JSON with sorted parameter
// keys — a single token with no spaces, safe to embed in the
// space-separated parmonc_exp.dat line format. ParseSpec inverts it.
func (s Spec) Canonical() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Values are finite float64s and the struct has no unmarshalable
		// fields; Marshal cannot fail for a validated spec.
		panic(fmt.Errorf("workload: marshaling scenario spec: %w", err))
	}
	return string(b)
}

// Resolve looks the spec's workload up in the registry and resolves its
// parameters against the schema.
func (s Spec) Resolve() (Definition, Values, error) {
	def, err := Lookup(s.Workload)
	if err != nil {
		return Definition{}, nil, err
	}
	v, err := def.Schema.Resolve(s.Params)
	if err != nil {
		return Definition{}, nil, fmt.Errorf("workload %s: %w", s.Workload, err)
	}
	return def, v, nil
}
