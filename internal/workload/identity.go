package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
)

// Identity is the canonical, wire-transportable identity of a
// parameterized workload: the name, the schema version, the resolved
// output dimensions and parameter values, and a digest over all of
// them. It replaces the bare workload-name string in the cluster
// protocol, closing the hole where a worker running the same-named
// scenario with different parameters or dimensions would be accepted at
// registration and silently corrupt the merged statistics — the
// parallel-vs-serial divergence Lubachevsky warns about
// (arXiv:1104.0198).
//
// The zero Identity means "unnamed": no check is performed against it.
type Identity struct {
	Name          string             `json:"name"`
	SchemaVersion int                `json:"schema_version"`
	Nrow          int                `json:"nrow"`
	Ncol          int                `json:"ncol"`
	Params        map[string]float64 `json:"params,omitempty"`
	// Digest is the hex SHA-256 of the canonical identity string; it is
	// what journals and metrics label runs with, and the last-resort
	// equality check on the wire.
	Digest string `json:"digest"`
}

// Named returns a name-only identity — the legacy check level, where
// only the workload name is compared at registration.
func Named(name string) Identity { return Identity{Name: name} }

// Identity computes the canonical identity of the definition at the
// given resolved values (which must satisfy the schema).
func (d Definition) Identity(v Values) (Identity, error) {
	resolved, err := d.Schema.Resolve(v)
	if err != nil {
		return Identity{}, err
	}
	nrow, ncol := d.Dims(resolved)
	if nrow <= 0 || ncol <= 0 {
		return Identity{}, fmt.Errorf("workload %q: dimensions %d×%d invalid at %s",
			d.Name, nrow, ncol, resolved.canonical())
	}
	id := Identity{
		Name:          d.Name,
		SchemaVersion: d.Schema.Version,
		Nrow:          nrow,
		Ncol:          ncol,
		Params:        resolved,
	}
	sum := sha256.Sum256([]byte(id.canonical()))
	id.Digest = hex.EncodeToString(sum[:])
	return id, nil
}

// canonical renders the digest input: every identity-bearing field in a
// fixed order with deterministic number formatting, so the digest is
// identical across processes, architectures and map iteration orders.
func (id Identity) canonical() string {
	return id.Name + "|schema=" + strconv.Itoa(id.SchemaVersion) +
		"|dims=" + strconv.Itoa(id.Nrow) + "x" + strconv.Itoa(id.Ncol) +
		"|" + Values(id.Params).canonical()
}

// IsZero reports whether the identity is the unnamed zero value.
func (id Identity) IsZero() bool { return id.Name == "" }

// Fingerprint is the short human-facing form of the identity —
// "name@v1/0123456789ab" — used as the journal field and metrics label.
// A name-only identity has no digest and prints as just the name.
func (id Identity) Fingerprint() string {
	if id.IsZero() {
		return ""
	}
	if id.Digest == "" {
		return id.Name
	}
	short := id.Digest
	if len(short) > 12 {
		short = short[:12]
	}
	return fmt.Sprintf("%s@v%d/%s", id.Name, id.SchemaVersion, short)
}

// CheckWorker compares a worker's identity against the job's (the
// receiver), returning nil when the worker may join and a precise,
// operator-facing error otherwise: the error names the first field that
// differs and both sides' values, so a rejected registration says
// exactly which side to fix. When either side carries only a name (no
// digest), the comparison stops at the name — the legacy check level.
func (job Identity) CheckWorker(w Identity) error {
	if job.IsZero() || w.IsZero() {
		return nil
	}
	if w.Name != job.Name {
		return fmt.Errorf("worker runs workload %q but the job is %q", w.Name, job.Name)
	}
	if job.Digest == "" || w.Digest == "" {
		return nil // one side is name-only: nothing deeper to compare
	}
	if w.SchemaVersion != job.SchemaVersion {
		return fmt.Errorf("workload %q: worker uses parameter schema v%d but the job uses v%d",
			job.Name, w.SchemaVersion, job.SchemaVersion)
	}
	if w.Nrow != job.Nrow || w.Ncol != job.Ncol {
		return fmt.Errorf("workload %q: worker realization is %d×%d but the job is %d×%d",
			job.Name, w.Nrow, w.Ncol, job.Nrow, job.Ncol)
	}
	keys := map[string]bool{}
	for k := range job.Params {
		keys[k] = true
	}
	for k := range w.Params {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		jv, jok := job.Params[k]
		wv, wok := w.Params[k]
		switch {
		case jok && !wok:
			return fmt.Errorf("workload %q: worker lacks parameter %s (the job has %s=%g)",
				job.Name, k, k, jv)
		case wok && !jok:
			return fmt.Errorf("workload %q: worker has parameter %s=%g the job does not know",
				job.Name, k, wv)
		case jv != wv:
			return fmt.Errorf("workload %q: parameter %s mismatch: worker has %g, the job has %g",
				job.Name, k, wv, jv)
		}
	}
	if w.Digest != job.Digest {
		return fmt.Errorf("workload %q: parameter fingerprint mismatch (worker %s, job %s)",
			job.Name, w.Fingerprint(), job.Fingerprint())
	}
	return nil
}
