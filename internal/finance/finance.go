// Package finance implements Monte Carlo option pricing under geometric
// Brownian motion — the financial mathematics application of Sec. 2.1
// of the paper.
//
// Under the risk-neutral measure the asset follows
//
//	dS = r·S dt + σ·S dw,
//
// so S(T) = S₀·exp((r − σ²/2)T + σ√T·Z). European option prices have
// the Black–Scholes closed form, which makes the Monte Carlo estimators
// here exactly verifiable; Asian (arithmetic-average) options have no
// closed form and are priced by simulating the discretely monitored
// path — the realistic workload.
package finance

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Option describes a European or Asian option under GBM.
type Option struct {
	S0     float64 // spot price (> 0)
	Strike float64 // strike K (> 0)
	Rate   float64 // risk-free rate r
	Sigma  float64 // volatility σ (> 0)
	T      float64 // maturity in years (> 0)
}

// Validate checks the option parameters.
func (o Option) Validate() error {
	if o.S0 <= 0 {
		return fmt.Errorf("finance: spot %g must be positive", o.S0)
	}
	if o.Strike <= 0 {
		return fmt.Errorf("finance: strike %g must be positive", o.Strike)
	}
	if o.Sigma <= 0 {
		return fmt.Errorf("finance: volatility %g must be positive", o.Sigma)
	}
	if o.T <= 0 {
		return fmt.Errorf("finance: maturity %g must be positive", o.T)
	}
	return nil
}

// Payoff indexes the realization vector of EuropeanRealization.
const (
	Call = iota // discounted call payoff
	Put         // discounted put payoff
	NPayoffs
)

// EuropeanRealization returns a kernel writing one discounted
// (call, put) payoff sample into out — terminal value only, no path.
func (o Option) EuropeanRealization() (func(src dist.Source, out []float64) error, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	drift := (o.Rate - o.Sigma*o.Sigma/2) * o.T
	vol := o.Sigma * math.Sqrt(o.T)
	disc := math.Exp(-o.Rate * o.T)
	return func(src dist.Source, out []float64) error {
		if len(out) != NPayoffs {
			return fmt.Errorf("finance: out has length %d, want %d", len(out), NPayoffs)
		}
		z := dist.StdNormal(src)
		sT := o.S0 * math.Exp(drift+vol*z)
		if sT > o.Strike {
			out[Call] = disc * (sT - o.Strike)
		}
		if sT < o.Strike {
			out[Put] = disc * (o.Strike - sT)
		}
		return nil
	}, nil
}

// AsianRealization returns a kernel pricing a discretely monitored
// arithmetic-average Asian call with steps monitoring dates: the payoff
// is max(mean(S(t_i)) − K, 0) discounted.
func (o Option) AsianRealization(steps int) (func(src dist.Source, out []float64) error, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("finance: steps %d must be >= 1", steps)
	}
	dt := o.T / float64(steps)
	drift := (o.Rate - o.Sigma*o.Sigma/2) * dt
	vol := o.Sigma * math.Sqrt(dt)
	disc := math.Exp(-o.Rate * o.T)
	return func(src dist.Source, out []float64) error {
		if len(out) != 1 {
			return fmt.Errorf("finance: out has length %d, want 1", len(out))
		}
		s := o.S0
		var sum float64
		for k := 0; k < steps; k++ {
			s *= math.Exp(drift + vol*dist.StdNormal(src))
			sum += s
		}
		avg := sum / float64(steps)
		if avg > o.Strike {
			out[0] = disc * (avg - o.Strike)
		}
		return nil
	}, nil
}

// BlackScholesCall returns the exact European call price.
func (o Option) BlackScholesCall() float64 {
	d1, d2 := o.d1d2()
	return o.S0*phi(d1) - o.Strike*math.Exp(-o.Rate*o.T)*phi(d2)
}

// BlackScholesPut returns the exact European put price.
func (o Option) BlackScholesPut() float64 {
	d1, d2 := o.d1d2()
	return o.Strike*math.Exp(-o.Rate*o.T)*phi(-d2) - o.S0*phi(-d1)
}

func (o Option) d1d2() (d1, d2 float64) {
	volT := o.Sigma * math.Sqrt(o.T)
	d1 = (math.Log(o.S0/o.Strike) + (o.Rate+o.Sigma*o.Sigma/2)*o.T) / volT
	return d1, d1 - volT
}

// phi is the standard normal CDF.
func phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// GeometricAsianCall returns the closed-form price of the *geometric*
// average Asian call with the same monitoring dates — the classical
// control variate for the arithmetic Asian option (Kemna & Vorst).
func (o Option) GeometricAsianCall(steps int) float64 {
	n := float64(steps)
	dt := o.T / n
	// Mean and variance of log geometric average.
	// log G = log S0 + Σ_{i=1..n} (n+1-i)/n · (drift·dt + vol·√dt·Z_i)
	nu := o.Rate - o.Sigma*o.Sigma/2
	muG := math.Log(o.S0) + nu*dt*(n+1)/2
	var varG float64
	for i := 1; i <= steps; i++ {
		w := (n + 1 - float64(i)) / n
		varG += w * w
	}
	varG *= o.Sigma * o.Sigma * dt
	sigG := math.Sqrt(varG)
	d1 := (muG - math.Log(o.Strike) + varG) / sigG
	d2 := d1 - sigG
	fwd := math.Exp(muG + varG/2)
	return math.Exp(-o.Rate*o.T) * (fwd*phi(d1) - o.Strike*phi(d2))
}
