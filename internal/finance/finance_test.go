package finance

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testOption() Option {
	return Option{S0: 100, Strike: 105, Rate: 0.05, Sigma: 0.2, T: 1}
}

func TestValidate(t *testing.T) {
	if err := testOption().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Option){
		func(o *Option) { o.S0 = 0 },
		func(o *Option) { o.Strike = -1 },
		func(o *Option) { o.Sigma = 0 },
		func(o *Option) { o.T = 0 },
	}
	for i, mutate := range bad {
		o := testOption()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := testOption().AsianRealization(0); err == nil {
		t.Error("0 steps accepted")
	}
}

func TestBlackScholesKnownValue(t *testing.T) {
	// Standard textbook check: S0=100, K=100, r=5%, σ=20%, T=1 →
	// call ≈ 10.4506, put ≈ 5.5735 (call − put = S0 − K·e^{-rT}).
	o := Option{S0: 100, Strike: 100, Rate: 0.05, Sigma: 0.2, T: 1}
	if got := o.BlackScholesCall(); math.Abs(got-10.450583572185565) > 1e-9 {
		t.Fatalf("BS call = %.12f", got)
	}
	if got := o.BlackScholesPut(); math.Abs(got-5.573526022256971) > 1e-9 {
		t.Fatalf("BS put = %.12f", got)
	}
}

func TestPutCallParity(t *testing.T) {
	o := testOption()
	lhs := o.BlackScholesCall() - o.BlackScholesPut()
	rhs := o.S0 - o.Strike*math.Exp(-o.Rate*o.T)
	if math.Abs(lhs-rhs) > 1e-10 {
		t.Fatalf("parity violated: %g vs %g", lhs, rhs)
	}
}

func TestEuropeanMonteCarloMatchesBlackScholes(t *testing.T) {
	o := testOption()
	r, err := o.EuropeanRealization()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Nrow: 1, Ncol: NPayoffs,
		MaxSamples: 400000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return r(src, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCall := o.BlackScholesCall()
	wantPut := o.BlackScholesPut()
	if got := res.Report.MeanAt(0, Call); math.Abs(got-wantCall) > res.Report.AbsErrAt(0, Call)*4/3 {
		t.Fatalf("MC call %g, BS %g ± %g", got, wantCall, res.Report.AbsErrAt(0, Call))
	}
	if got := res.Report.MeanAt(0, Put); math.Abs(got-wantPut) > res.Report.AbsErrAt(0, Put)*4/3 {
		t.Fatalf("MC put %g, BS %g ± %g", got, wantPut, res.Report.AbsErrAt(0, Put))
	}
}

func TestEuropeanPayoffsNonNegative(t *testing.T) {
	o := testOption()
	r, err := o.EuropeanRealization()
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	out := make([]float64, NPayoffs)
	for i := 0; i < 10000; i++ {
		out[0], out[1] = 0, 0
		if err := r(s, out); err != nil {
			t.Fatal(err)
		}
		if out[Call] < 0 || out[Put] < 0 {
			t.Fatalf("negative payoff %v", out)
		}
		if out[Call] > 0 && out[Put] > 0 {
			t.Fatalf("both call and put in the money: %v", out)
		}
	}
}

func TestAsianBelowEuropean(t *testing.T) {
	// The arithmetic average is less volatile than the terminal price,
	// so the Asian call is cheaper than the European call.
	o := testOption()
	asian, err := o.AsianRealization(12)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	out := make([]float64, 1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		out[0] = 0
		if err := asian(s, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
	}
	asianPrice := sum / n
	euro := o.BlackScholesCall()
	if asianPrice >= euro {
		t.Fatalf("Asian %g not below European %g", asianPrice, euro)
	}
	if asianPrice <= 0 {
		t.Fatalf("Asian price %g", asianPrice)
	}
}

func TestAsianAboveGeometricControl(t *testing.T) {
	// AM ≥ GM: the arithmetic Asian call dominates the geometric one,
	// and for these parameters sits within ~10% of it.
	o := testOption()
	steps := 12
	asian, err := o.AsianRealization(steps)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	out := make([]float64, 1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		out[0] = 0
		if err := asian(s, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
	}
	arith := sum / n
	geo := o.GeometricAsianCall(steps)
	if arith < geo {
		t.Fatalf("arithmetic Asian %g below geometric %g", arith, geo)
	}
	if arith > geo*1.15 {
		t.Fatalf("arithmetic Asian %g implausibly far above geometric %g", arith, geo)
	}
}

func TestSingleStepAsianEqualsEuropeanTerminal(t *testing.T) {
	// With one monitoring date the average is S(T): price equals the
	// European call.
	o := testOption()
	asian, err := o.AsianRealization(1)
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	out := make([]float64, 1)
	var sum float64
	const n = 400000
	for i := 0; i < n; i++ {
		out[0] = 0
		if err := asian(s, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
	}
	if got, want := sum/n, o.BlackScholesCall(); math.Abs(got-want) > 0.1 {
		t.Fatalf("1-step Asian %g, European %g", got, want)
	}
	// And the geometric closed form degenerates to Black–Scholes too.
	if got, want := o.GeometricAsianCall(1), o.BlackScholesCall(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("1-step geometric %g, BS %g", got, want)
	}
}

func BenchmarkEuropean(b *testing.B) {
	r, err := testOption().EuropeanRealization()
	if err != nil {
		b.Fatal(err)
	}
	s := stream(b)
	out := make([]float64, NPayoffs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0], out[1] = 0, 0
		if err := r(s, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsian12(b *testing.B) {
	r, err := testOption().AsianRealization(12)
	if err != nil {
		b.Fatal(err)
	}
	s := stream(b)
	out := make([]float64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0] = 0
		if err := r(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
