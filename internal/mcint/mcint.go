// Package mcint provides Monte Carlo integration estimators over the
// unit hypercube, with the classical variance-reduction techniques. The
// paper frames all of stochastic simulation as estimating E ζ for
// ζ = ζ(α₁, …, α_k) (formula (2)); numerical integration is the
// archetype of that framing — ∫f = E f(α) — and the estimators here
// slot directly into the library: each is a Realization-shaped kernel
// whose sample mean converges to the integral, so the PARMONC driver
// parallelizes any of them unchanged.
//
// The techniques and their variance orderings (plain ≥ antithetic /
// stratified / importance, for suitable integrands) are the standard
// material of Mikhailov & Voytishek's and Rubinstein & Kroese's
// textbooks — the two references the paper gives for the Monte Carlo
// background.
package mcint

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Integrand is a function on the unit hypercube [0,1)^dim.
type Integrand func(x []float64) float64

// Plain estimates ∫f over [0,1)^dim with one uniform sample: the crude
// Monte Carlo realization. The returned kernel writes the single-sample
// estimate into out[0].
func Plain(f Integrand, dim int) (func(src dist.Source, out []float64) error, error) {
	if err := checkArgs(f, dim); err != nil {
		return nil, err
	}
	return func(src dist.Source, out []float64) error {
		if len(out) != 1 {
			return fmt.Errorf("mcint: out has length %d, want 1", len(out))
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = src.Float64()
		}
		out[0] = f(x)
		return nil
	}, nil
}

// Antithetic estimates ∫f with the antithetic-variates pair
// (f(x) + f(1−x))/2. For integrands monotone in each coordinate the
// pair's negative correlation strictly reduces variance at equal cost.
func Antithetic(f Integrand, dim int) (func(src dist.Source, out []float64) error, error) {
	if err := checkArgs(f, dim); err != nil {
		return nil, err
	}
	return func(src dist.Source, out []float64) error {
		if len(out) != 1 {
			return fmt.Errorf("mcint: out has length %d, want 1", len(out))
		}
		x := make([]float64, dim)
		xa := make([]float64, dim)
		for i := range x {
			x[i] = src.Float64()
			xa[i] = 1 - x[i]
		}
		out[0] = 0.5 * (f(x) + f(xa))
		return nil
	}, nil
}

// Stratified estimates ∫f by splitting each axis into strata cells and
// placing one uniform point in every cell of the grid, averaging the
// strata^dim evaluations. One realization is thus one complete
// stratified sweep; its variance is at most the plain variance and
// shrinks like O(n^{-1-2/dim}) for smooth f.
func Stratified(f Integrand, dim, strata int) (func(src dist.Source, out []float64) error, error) {
	if err := checkArgs(f, dim); err != nil {
		return nil, err
	}
	if strata < 1 {
		return nil, fmt.Errorf("mcint: strata %d must be >= 1", strata)
	}
	cells := 1
	for i := 0; i < dim; i++ {
		if cells > 1<<20/strata {
			return nil, fmt.Errorf("mcint: %d^%d cells is too many", strata, dim)
		}
		cells *= strata
	}
	return func(src dist.Source, out []float64) error {
		if len(out) != 1 {
			return fmt.Errorf("mcint: out has length %d, want 1", len(out))
		}
		x := make([]float64, dim)
		idx := make([]int, dim)
		var sum float64
		for c := 0; c < cells; c++ {
			// Decode cell c into per-axis stratum indices.
			v := c
			for i := 0; i < dim; i++ {
				idx[i] = v % strata
				v /= strata
			}
			for i := 0; i < dim; i++ {
				x[i] = (float64(idx[i]) + src.Float64()) / float64(strata)
			}
			sum += f(x)
		}
		out[0] = sum / float64(cells)
		return nil
	}, nil
}

// Importance estimates ∫f using samples from a product proposal density
// on [0,1): each coordinate is drawn from the Beta-like density
// g(t) ∝ t^(a−1) via inversion (X = U^(1/a)), and the estimate is the
// weighted f(x)/g(x). With a > 1 the proposal concentrates near 1; with
// a < 1 near 0 — matched to integrands whose mass sits at a boundary.
func Importance(f Integrand, dim int, a float64) (func(src dist.Source, out []float64) error, error) {
	if err := checkArgs(f, dim); err != nil {
		return nil, err
	}
	if a <= 0 {
		return nil, fmt.Errorf("mcint: importance exponent %g must be positive", a)
	}
	return func(src dist.Source, out []float64) error {
		if len(out) != 1 {
			return fmt.Errorf("mcint: out has length %d, want 1", len(out))
		}
		x := make([]float64, dim)
		weight := 1.0
		for i := range x {
			u := src.Float64()
			x[i] = math.Pow(u, 1/a)
			// density g(t) = a·t^(a−1)
			weight /= a * math.Pow(x[i], a-1)
		}
		out[0] = f(x) * weight
		return nil
	}, nil
}

// ControlVariate estimates ∫f using the control h with known integral
// hMean: the realization is f(x) − β(h(x) − hMean). With
// β = Cov(f,h)/Var(h) the variance reduction is 1−ρ²; the caller
// supplies β (estimate it from a pilot run).
func ControlVariate(f, h Integrand, dim int, hMean, beta float64) (func(src dist.Source, out []float64) error, error) {
	if err := checkArgs(f, dim); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("mcint: nil control function")
	}
	return func(src dist.Source, out []float64) error {
		if len(out) != 1 {
			return fmt.Errorf("mcint: out has length %d, want 1", len(out))
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = src.Float64()
		}
		out[0] = f(x) - beta*(h(x)-hMean)
		return nil
	}, nil
}

func checkArgs(f Integrand, dim int) error {
	if f == nil {
		return fmt.Errorf("mcint: nil integrand")
	}
	if dim < 1 {
		return fmt.Errorf("mcint: dimension %d must be >= 1", dim)
	}
	return nil
}

// Estimate runs n realizations of a kernel on src and returns the
// sample mean and the sample variance of the per-realization estimates —
// a convenience for variance-comparison studies; production runs go
// through the parmonc driver instead.
func Estimate(kernel func(src dist.Source, out []float64) error, src dist.Source, n int) (mean, variance float64, err error) {
	if n < 2 {
		return 0, 0, fmt.Errorf("mcint: n = %d must be >= 2", n)
	}
	out := make([]float64, 1)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		if err := kernel(src, out); err != nil {
			return 0, 0, err
		}
		sum += out[0]
		sum2 += out[0] * out[0]
	}
	fn := float64(n)
	mean = sum / fn
	variance = sum2/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance, nil
}
