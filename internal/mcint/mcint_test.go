package mcint

import (
	"math"
	"testing"

	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// integrands with known integrals over [0,1)^dim.
func expSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return math.Exp(s)
}

// ∫₀¹ e^t dt = e − 1; over dim coordinates: (e−1)^dim.
func expSumExact(dim int) float64 {
	return math.Pow(math.E-1, float64(dim))
}

func TestArgumentValidation(t *testing.T) {
	if _, err := Plain(nil, 1); err == nil {
		t.Error("nil integrand accepted")
	}
	if _, err := Plain(expSum, 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := Stratified(expSum, 1, 0); err == nil {
		t.Error("0 strata accepted")
	}
	if _, err := Stratified(expSum, 10, 100); err == nil {
		t.Error("astronomically many cells accepted")
	}
	if _, err := Importance(expSum, 1, 0); err == nil {
		t.Error("exponent 0 accepted")
	}
	if _, err := ControlVariate(expSum, nil, 1, 0, 0); err == nil {
		t.Error("nil control accepted")
	}
}

func TestKernelsRejectWrongOut(t *testing.T) {
	k, err := Plain(expSum, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := k(stream(t), make([]float64, 2)); err == nil {
		t.Fatal("wrong out length accepted")
	}
}

func TestEstimateValidation(t *testing.T) {
	k, _ := Plain(expSum, 1)
	if _, _, err := Estimate(k, stream(t), 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestAllEstimatorsConvergeTo2DExact(t *testing.T) {
	const dim = 2
	exact := expSumExact(dim)
	s := stream(t)

	plain, err := Plain(expSum, dim)
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Antithetic(expSum, dim)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := Stratified(expSum, dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Importance(expSum, dim, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Control: h = Σx with ∫h = dim/2; pilot-free β = 1 is reasonable
	// since f ≈ 1 + Σx + … for small x.
	ctrl, err := ControlVariate(expSum, func(x []float64) float64 {
		return x[0] + x[1]
	}, dim, 1.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		name string
		run  func() (float64, float64, error)
		n    int
	}{
		{"plain", func() (float64, float64, error) { return Estimate(plain, s, 100000) }, 100000},
		{"antithetic", func() (float64, float64, error) { return Estimate(anti, s, 100000) }, 100000},
		{"stratified", func() (float64, float64, error) { return Estimate(strat, s, 2000) }, 2000},
		{"importance", func() (float64, float64, error) { return Estimate(imp, s, 100000) }, 100000},
		{"control", func() (float64, float64, error) { return Estimate(ctrl, s, 100000) }, 100000},
	} {
		mean, variance, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		tol := 5*math.Sqrt(variance/float64(c.n)) + 1e-3
		if math.Abs(mean-exact) > tol {
			t.Errorf("%s: ∫ = %g, want %g ± %g", c.name, mean, exact, tol)
		}
	}
}

func TestAntitheticReducesVariance(t *testing.T) {
	// expSum is monotone in each coordinate, so antithetic pairing must
	// cut variance (per pair of evaluations) below plain.
	s := stream(t)
	plain, _ := Plain(expSum, 1)
	anti, _ := Antithetic(expSum, 1)
	_, vPlain, err := Estimate(plain, s, 200000)
	if err != nil {
		t.Fatal(err)
	}
	_, vAnti, err := Estimate(anti, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Antithetic uses 2 evaluations per realization; compare per-budget
	// variance: vAnti/2 vs vPlain... conservative check: vAnti < vPlain/2.
	if vAnti >= vPlain/2 {
		t.Fatalf("antithetic variance %g not below half of plain %g", vAnti, vPlain)
	}
}

func TestStratifiedReducesVariance(t *testing.T) {
	s := stream(t)
	plain, _ := Plain(expSum, 1)
	strat, _ := Stratified(expSum, 1, 16)
	_, vPlain, err := Estimate(plain, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	_, vStrat, err := Estimate(strat, s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// One stratified realization = 16 evaluations; per-budget comparison:
	// 16 plain evaluations have variance vPlain/16; stratified must beat it.
	if vStrat >= vPlain/16 {
		t.Fatalf("stratified variance %g not below plain/16 = %g", vStrat, vPlain/16)
	}
}

func TestImportanceMatchedToBoundaryMass(t *testing.T) {
	// f(x) = 3x² has mass near 1; importance with a = 3 samples there
	// (proposal g = 3t², the optimal proposal, giving ~zero variance).
	f := func(x []float64) float64 { return 3 * x[0] * x[0] }
	s := stream(t)
	plain, _ := Plain(f, 1)
	imp, _ := Importance(f, 1, 3)
	_, vPlain, err := Estimate(plain, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	mean, vImp, err := Estimate(imp, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1) > 1e-9 {
		t.Fatalf("optimal proposal mean %g, want exactly 1 per sample", mean)
	}
	if vImp > 1e-18 {
		t.Fatalf("optimal proposal variance %g, want ~0", vImp)
	}
	if vPlain < 0.1 {
		t.Fatalf("plain variance %g unexpectedly small", vPlain)
	}
}

func TestControlVariateReducesVariance(t *testing.T) {
	s := stream(t)
	f := func(x []float64) float64 { return math.Exp(x[0]) }
	h := func(x []float64) float64 { return x[0] }
	plain, _ := Plain(f, 1)
	// β* = Cov(e^U, U)/Var(U) ≈ 0.1409/0.0833 ≈ 1.69.
	ctrl, _ := ControlVariate(f, h, 1, 0.5, 1.69)
	_, vPlain, err := Estimate(plain, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	_, vCtrl, err := Estimate(ctrl, s, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if vCtrl >= vPlain/10 {
		t.Fatalf("control variance %g not ≪ plain %g", vCtrl, vPlain)
	}
}

func BenchmarkPlain2D(b *testing.B) {
	k, _ := Plain(expSum, 2)
	s := stream(b)
	out := make([]float64, 1)
	for i := 0; i < b.N; i++ {
		if err := k(s, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratified2D8(b *testing.B) {
	k, _ := Stratified(expSum, 2, 8)
	s := stream(b)
	out := make([]float64, 1)
	for i := 0; i < b.N; i++ {
		if err := k(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
