package transport

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	good := Slab{Thickness: 1, SigmaT: 1, SigmaS: 0.5, Mu0: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Slab{
		{Thickness: 0, SigmaT: 1, SigmaS: 0.5, Mu0: 1},
		{Thickness: 1, SigmaT: 0, SigmaS: 0, Mu0: 1},
		{Thickness: 1, SigmaT: 1, SigmaS: 2, Mu0: 1},
		{Thickness: 1, SigmaT: 1, SigmaS: -1, Mu0: 1},
		{Thickness: 1, SigmaT: 1, SigmaS: 0.5, Mu0: 0},
		{Thickness: 1, SigmaT: 1, SigmaS: 0.5, Mu0: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHistoryExactlyOneOutcome(t *testing.T) {
	slab := Slab{Thickness: 2, SigmaT: 1, SigmaS: 0.8, Mu0: 1}
	s := stream(t)
	out := make([]float64, NOutcomes)
	for i := 0; i < 10000; i++ {
		for j := range out {
			out[j] = 0
		}
		if err := slab.History(s, out); err != nil {
			t.Fatal(err)
		}
		if sum := out[0] + out[1] + out[2]; sum != 1 {
			t.Fatalf("outcome sum = %g, want 1 (%v)", sum, out)
		}
	}
}

func TestHistoryWrongOutLength(t *testing.T) {
	slab := Slab{Thickness: 1, SigmaT: 1, Mu0: 1}
	if err := slab.History(stream(t), make([]float64, 2)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestPureAbsorberMatchesExact(t *testing.T) {
	// With no scattering the transmission probability is exactly
	// exp(−Σ·T/μ₀); run the full pipeline and check the 3σ interval.
	slab := Slab{Thickness: 2, SigmaT: 1, SigmaS: 0, Mu0: 1}
	cfg := core.Config{
		Nrow: 1, Ncol: NOutcomes,
		MaxSamples: 50000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return slab.History(src, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := slab.UncollidedTransmission() // e^-2 ≈ 0.1353
	got := res.Report.MeanAt(0, Transmitted)
	if diff := math.Abs(got - want); diff > res.Report.AbsErrAt(0, Transmitted)*4/3 {
		t.Fatalf("P(transmit) = %g, want %g ± %g", got, want, res.Report.AbsErrAt(0, Transmitted))
	}
	// A pure absorber with μ₀ > 0 never reflects.
	if refl := res.Report.MeanAt(0, Reflected); refl != 0 {
		t.Fatalf("P(reflect) = %g, want 0", refl)
	}
	// Conservation.
	total := res.Report.MeanAt(0, 0) + res.Report.MeanAt(0, 1) + res.Report.MeanAt(0, 2)
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", total)
	}
}

func TestScatteringIncreasesTransmissionOverUncollided(t *testing.T) {
	// With scattering, some collided particles still cross, so the MC
	// transmission exceeds the uncollided estimate.
	slab := Slab{Thickness: 2, SigmaT: 1, SigmaS: 0.9, Mu0: 1}
	s := stream(t)
	out := make([]float64, NOutcomes)
	trans := 0
	const n = 20000
	for i := 0; i < n; i++ {
		for j := range out {
			out[j] = 0
		}
		if err := slab.History(s, out); err != nil {
			t.Fatal(err)
		}
		if out[Transmitted] == 1 {
			trans++
		}
	}
	got := float64(trans) / n
	if got <= slab.UncollidedTransmission() {
		t.Fatalf("P(transmit) = %g not above uncollided %g", got, slab.UncollidedTransmission())
	}
}

func TestObliqueIncidenceReducesTransmission(t *testing.T) {
	straight := Slab{Thickness: 1, SigmaT: 1, SigmaS: 0, Mu0: 1.0}
	oblique := Slab{Thickness: 1, SigmaT: 1, SigmaS: 0, Mu0: 0.5}
	if oblique.UncollidedTransmission() >= straight.UncollidedTransmission() {
		t.Fatal("oblique path should see more optical depth")
	}
}

func TestCollisionCapTriggers(t *testing.T) {
	// A pure scatterer with a tiny cap must hit the cap sometimes.
	slab := Slab{Thickness: 100, SigmaT: 5, SigmaS: 5, Mu0: 1, MaxColl: 3}
	s := stream(t)
	out := make([]float64, NOutcomes)
	sawErr := false
	for i := 0; i < 1000 && !sawErr; i++ {
		for j := range out {
			out[j] = 0
		}
		if err := slab.History(s, out); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("expected at least one capped history")
	}
}

func BenchmarkHistory(b *testing.B) {
	slab := Slab{Thickness: 2, SigmaT: 1, SigmaS: 0.8, Mu0: 1}
	s := stream(b)
	out := make([]float64, NOutcomes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out[0], out[1], out[2] = 0, 0, 0
		if err := slab.History(s, out); err != nil {
			b.Fatal(err)
		}
	}
}
