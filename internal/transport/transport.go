// Package transport implements a 1-D slab radiation-transfer Monte Carlo
// kernel — the application domain Monte Carlo was invented for and the
// first the paper lists (Sec. 2.1, "initially, Monte Carlo method ...
// was developed to solve problems of radiation transfer").
//
// A particle enters a homogeneous slab of optical thickness Thickness at
// x = 0 travelling in direction μ₀ ∈ (0, 1]. Between collisions it flies
// an exponential free path with total cross-section SigmaT. At each
// collision it scatters isotropically with probability c = SigmaS/SigmaT
// and is absorbed otherwise. The random object of interest is the triple
// (transmitted, reflected, absorbed) — an indicator realization whose
// sample mean estimates the three probabilities.
package transport

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Slab describes the transport problem.
type Slab struct {
	Thickness float64 // slab width (cm)
	SigmaT    float64 // total macroscopic cross-section (1/cm)
	SigmaS    float64 // scattering cross-section (0 ≤ SigmaS ≤ SigmaT)
	Mu0       float64 // incident direction cosine, in (0, 1]
	MaxColl   int     // safety cap on collisions per history (default 10_000)
}

// Validate checks the problem invariants.
func (s Slab) Validate() error {
	if s.Thickness <= 0 {
		return fmt.Errorf("transport: thickness %g must be positive", s.Thickness)
	}
	if s.SigmaT <= 0 {
		return fmt.Errorf("transport: SigmaT %g must be positive", s.SigmaT)
	}
	if s.SigmaS < 0 || s.SigmaS > s.SigmaT {
		return fmt.Errorf("transport: SigmaS %g outside [0, SigmaT=%g]", s.SigmaS, s.SigmaT)
	}
	if s.Mu0 <= 0 || s.Mu0 > 1 {
		return fmt.Errorf("transport: incident cosine %g outside (0, 1]", s.Mu0)
	}
	return nil
}

// Outcome indexes the realization vector.
const (
	Transmitted = iota
	Reflected
	Absorbed
	NOutcomes
)

// History simulates one particle history and writes the indicator
// realization into out (length NOutcomes: exactly one entry is 1).
func (s Slab) History(src dist.Source, out []float64) error {
	if len(out) != NOutcomes {
		return fmt.Errorf("transport: out has length %d, want %d", len(out), NOutcomes)
	}
	maxColl := s.MaxColl
	if maxColl == 0 {
		maxColl = 10000
	}
	c := s.SigmaS / s.SigmaT
	x := 0.0
	mu := s.Mu0
	for coll := 0; coll <= maxColl; coll++ {
		// Distance to next collision along the flight direction.
		path := dist.Exponential(src, s.SigmaT)
		x += mu * path
		if x >= s.Thickness {
			out[Transmitted] = 1
			return nil
		}
		if x < 0 {
			out[Reflected] = 1
			return nil
		}
		// Collision: absorbed with probability 1-c.
		if !dist.Bernoulli(src, c) {
			out[Absorbed] = 1
			return nil
		}
		// Isotropic scattering: new direction cosine uniform on [-1, 1].
		mu = dist.Uniform(src, -1, 1)
		if mu == 0 {
			mu = 1e-12 // avoid a zero-velocity particle
		}
	}
	return fmt.Errorf("transport: history exceeded %d collisions", maxColl)
}

// UncollidedTransmission returns the exact probability that a particle
// crosses the slab without any collision: exp(−SigmaT·Thickness/μ₀).
// For a pure absorber (SigmaS = 0) this is the exact transmission
// probability, which the tests and experiment harness verify against the
// Monte Carlo estimate.
func (s Slab) UncollidedTransmission() float64 {
	return math.Exp(-s.SigmaT * s.Thickness / s.Mu0)
}
