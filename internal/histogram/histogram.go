// Package histogram turns a scalar random variate into a PARMONC
// realization matrix of bin indicators, so that the library's ordinary
// sample-mean machinery estimates a probability density with per-bin
// confidence bounds.
//
// This is the canonical PARMONC idiom for estimating distributions
// rather than scalars: the "matrix realization" of Sec. 2.1 with one row
// and one column per bin, where entry j of a realization is
// 1/(bin width) if the variate landed in bin j and 0 otherwise. The
// sample mean of entry j then converges to the average density over bin
// j, and the automatic error matrices give honest per-bin error bars.
package histogram

import (
	"fmt"

	"parmonc/dist"
)

// Spec describes a fixed-bin histogram density estimator on [A, B).
type Spec struct {
	Bins int     // number of equal-width bins (>= 1)
	A, B float64 // support interval, A < B

	// Clamp controls out-of-range variates: when true they are counted
	// in the nearest edge bin; when false they are dropped (the density
	// estimate then integrates to the in-range probability).
	Clamp bool
}

// Validate checks the spec invariants.
func (s Spec) Validate() error {
	if s.Bins < 1 {
		return fmt.Errorf("histogram: bins %d must be >= 1", s.Bins)
	}
	if !(s.A < s.B) {
		return fmt.Errorf("histogram: invalid interval [%g, %g)", s.A, s.B)
	}
	return nil
}

// Width returns the bin width.
func (s Spec) Width() float64 { return (s.B - s.A) / float64(s.Bins) }

// Centers returns the bin midpoints (for plotting estimated densities
// against exact ones).
func (s Spec) Centers() []float64 {
	w := s.Width()
	cs := make([]float64, s.Bins)
	for i := range cs {
		cs[i] = s.A + (float64(i)+0.5)*w
	}
	return cs
}

// Realization wraps a variate sampler into a PARMONC realization that
// fills a 1×Bins indicator matrix scaled by 1/width, so sample means
// estimate the density directly.
func (s Spec) Realization(sample func(src dist.Source) float64) (func(src dist.Source, out []float64) error, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if sample == nil {
		return nil, fmt.Errorf("histogram: nil sampler")
	}
	invW := 1 / s.Width()
	return func(src dist.Source, out []float64) error {
		if len(out) != s.Bins {
			return fmt.Errorf("histogram: out has length %d, want %d", len(out), s.Bins)
		}
		v := sample(src)
		idx := int((v - s.A) * invW)
		switch {
		case v < s.A || idx < 0:
			if !s.Clamp {
				return nil
			}
			idx = 0
		case idx >= s.Bins:
			if !s.Clamp {
				return nil
			}
			idx = s.Bins - 1
		}
		out[idx] = invW
		return nil
	}, nil
}
