package histogram

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/dist"
	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (Spec{Bins: 10, A: 0, B: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Bins: 0, A: 0, B: 1},
		{Bins: 10, A: 1, B: 1},
		{Bins: 10, A: 2, B: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := (Spec{Bins: 10, A: 0, B: 1}).Realization(nil); err == nil {
		t.Error("nil sampler accepted")
	}
}

func TestWidthAndCenters(t *testing.T) {
	s := Spec{Bins: 4, A: 0, B: 2}
	if s.Width() != 0.5 {
		t.Fatalf("width %g", s.Width())
	}
	cs := s.Centers()
	want := []float64{0.25, 0.75, 1.25, 1.75}
	for i := range want {
		if math.Abs(cs[i]-want[i]) > 1e-15 {
			t.Fatalf("center %d = %g, want %g", i, cs[i], want[i])
		}
	}
}

func TestRealizationWrongOut(t *testing.T) {
	s := Spec{Bins: 4, A: 0, B: 1}
	r, err := s.Realization(func(src dist.Source) float64 { return src.Float64() })
	if err != nil {
		t.Fatal(err)
	}
	if err := r(stream(t), make([]float64, 3)); err == nil {
		t.Fatal("wrong out length accepted")
	}
}

func TestUniformDensityFlat(t *testing.T) {
	// Density of U(0,1) is 1 on every bin; run the full pipeline.
	spec := Spec{Bins: 20, A: 0, B: 1}
	r, err := spec.Realization(func(src dist.Source) float64 { return src.Float64() })
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Nrow: 1, Ncol: spec.Bins,
		MaxSamples: 100000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return r(src, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < spec.Bins; j++ {
		got := res.Report.MeanAt(0, j)
		if math.Abs(got-1) > res.Report.AbsErrAt(0, j)*4/3 {
			t.Errorf("bin %d density = %g, want 1 ± %g", j, got, res.Report.AbsErrAt(0, j))
		}
	}
}

func TestExponentialDensityShape(t *testing.T) {
	spec := Spec{Bins: 10, A: 0, B: 3}
	r, err := spec.Realization(func(src dist.Source) float64 { return dist.Exponential(src, 1) })
	if err != nil {
		t.Fatal(err)
	}
	s := stream(t)
	sums := make([]float64, spec.Bins)
	out := make([]float64, spec.Bins)
	const n = 200000
	for i := 0; i < n; i++ {
		for j := range out {
			out[j] = 0
		}
		if err := r(s, out); err != nil {
			t.Fatal(err)
		}
		for j := range out {
			sums[j] += out[j]
		}
	}
	w := spec.Width()
	for j, c := range spec.Centers() {
		got := sums[j] / n
		// Exact average density over the bin: (e^{-a} − e^{-b})/w.
		a, b := c-w/2, c+w/2
		want := (math.Exp(-a) - math.Exp(-b)) / w
		if math.Abs(got-want) > 0.05*want+0.01 {
			t.Errorf("bin %d: density %g, want %g", j, got, want)
		}
	}
}

func TestOutOfRangeDropped(t *testing.T) {
	spec := Spec{Bins: 2, A: 0, B: 1}
	r, err := spec.Realization(func(src dist.Source) float64 { return 5.0 })
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	if err := r(stream(t), out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("out-of-range variate counted: %v", out)
	}
}

func TestOutOfRangeClamped(t *testing.T) {
	spec := Spec{Bins: 2, A: 0, B: 1, Clamp: true}
	rHigh, err := spec.Realization(func(src dist.Source) float64 { return 5.0 })
	if err != nil {
		t.Fatal(err)
	}
	rLow, err := spec.Realization(func(src dist.Source) float64 { return -5.0 })
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	if err := rHigh(stream(t), out); err != nil {
		t.Fatal(err)
	}
	if out[1] == 0 {
		t.Fatal("high variate not clamped to last bin")
	}
	out[0], out[1] = 0, 0
	if err := rLow(stream(t), out); err != nil {
		t.Fatal(err)
	}
	if out[0] == 0 {
		t.Fatal("low variate not clamped to first bin")
	}
}

func TestBoundaryValueGoesToFirstBin(t *testing.T) {
	spec := Spec{Bins: 4, A: 0, B: 1}
	r, err := spec.Realization(func(src dist.Source) float64 { return 0.0 })
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 4)
	if err := r(stream(t), out); err != nil {
		t.Fatal(err)
	}
	if out[0] == 0 {
		t.Fatalf("v = A not counted in first bin: %v", out)
	}
}
