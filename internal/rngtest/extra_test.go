package rngtest

import (
	"testing"

	"parmonc/internal/lcg"
	"parmonc/internal/rng"
	"parmonc/internal/u128"
)

func TestCollisionLibraryPasses(t *testing.T) {
	v, err := CollisionTest(libStream(t, rng.Coord{}), 20000, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass(alpha) {
		t.Fatalf("library failed collision test: %s", v)
	}
}

func TestCollisionDetectsCoarseSource(t *testing.T) {
	// A source with only 256 distinct values slams the urns: vastly too
	// many collisions.
	coarse := &quantized{src: libStream(t, rng.Coord{}), levels: 256}
	v, err := CollisionTest(coarse, 20000, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("coarse source passed collision test: %s", v)
	}
}

// quantized rounds a source down to a fixed number of levels.
type quantized struct {
	src    Source
	levels int
}

func (q *quantized) Float64() float64 {
	v := q.src.Float64()
	return float64(int(v*float64(q.levels))) / float64(q.levels)
}

func TestCollisionParameterValidation(t *testing.T) {
	s := libStream(t, rng.Coord{})
	if _, err := CollisionTest(s, 10, 1<<24); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := CollisionTest(s, 20000, 4); err == nil {
		t.Error("tiny m accepted")
	}
	if _, err := CollisionTest(s, 1000, 1<<30); err == nil {
		t.Error("starved expectation accepted")
	}
}

func TestMaximumOfTLibraryPasses(t *testing.T) {
	v, err := MaximumOfT(libStream(t, rng.Coord{Processor: 2}), 20000, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass(alpha) {
		t.Fatalf("library failed max-of-t: %s", v)
	}
}

func TestMaximumOfTDetectsHalfRange(t *testing.T) {
	v, err := MaximumOfT(brokenHalf{libStream(t, rng.Coord{})}, 20000, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("half-range source passed max-of-t: %s", v)
	}
}

func TestMaximumOfTValidation(t *testing.T) {
	s := libStream(t, rng.Coord{})
	if _, err := MaximumOfT(s, 100, 1, 50); err == nil {
		t.Error("block size 1 accepted")
	}
	if _, err := MaximumOfT(s, 100, 5, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := MaximumOfT(s, 10, 5, 50); err == nil {
		t.Error("too few blocks accepted")
	}
}

// blockSplit mimics the naive alternative to leapfrog substreams: give
// each "processor" a contiguous block of the sequence starting right
// where the previous one ended after a *fixed small* block. If blocks
// are shorter than actual consumption, streams overlap — the failure
// mode the PARMONC leap hierarchy is designed to rule out.
func TestBlockSplitOverlapDetected(t *testing.T) {
	// Two "processors" with block length 1000, but the first draws 2000
	// numbers: its second thousand is exactly the second processor's
	// first thousand. Cross-correlating the overlapping stretches must
	// fail spectacularly.
	mkGen := func(offset uint64) Source {
		g := lcg.New()
		g.SkipAhead(u128.From64(offset))
		return genSource{g}
	}
	a := mkGen(1000) // processor 0's overflow region
	b := mkGen(1000) // processor 1's assigned block — identical!
	v, err := CrossCorrelation(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("overlapping block split not detected: %s", v)
	}

	// The PARMONC leap hierarchy at the same consumption level stays
	// independent: processor streams are 2^98 apart.
	pa := libStream(t, rng.Coord{Processor: 0})
	pb := libStream(t, rng.Coord{Processor: 1})
	for i := 0; i < 2000; i++ {
		pa.Float64() // heavy consumption on processor 0
	}
	v2, err := CrossCorrelation(pa, pb, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Pass(alpha) {
		t.Fatalf("leap substreams correlated after heavy consumption: %s", v2)
	}
}

type genSource struct{ g *lcg.Gen }

func (s genSource) Float64() float64 { return s.g.Float64() }
