package rngtest

import (
	"math/big"
	"testing"

	"parmonc/internal/lcg"
)

// bruteNu3 computes ν₃² for the consecutive-triples lattice by
// exhaustive search — feasible ground truth for small moduli.
func bruteNu3(a, m int64) int64 {
	a2 := (a * a) % m
	best := m * m // (0, m, 0) is in the lattice
	reduce := func(v int64) int64 {
		// representative of v mod m with smallest absolute value
		v %= m
		if v > m/2 {
			v -= m
		}
		if v < -m/2 {
			v += m
		}
		return v
	}
	for x := int64(1); x*x < best; x++ {
		y := reduce(a * x)
		z := reduce(a2 * x)
		// For each coordinate also try the neighbour representative,
		// since the closest may not be unique for even m.
		for _, yy := range []int64{y, y - m, y + m} {
			for _, zz := range []int64{z, z - m, z + m} {
				n := x*x + yy*yy + zz*zz
				if n < best {
					best = n
				}
			}
		}
	}
	return best
}

func TestSpectral3DMatchesBruteForce(t *testing.T) {
	cases := []struct{ a, m int64 }{
		{137, 256},
		{21, 64},
		{1229, 2048},
		{4093, 16384},
		{365, 1024},
		{5, 512},
	}
	for _, c := range cases {
		res, err := SpectralTest3D(big.NewInt(c.a), big.NewInt(c.m))
		if err != nil {
			t.Fatal(err)
		}
		want := bruteNu3(c.a, c.m)
		if res.Nu2Squared.Int64() != want {
			t.Errorf("a=%d m=%d: ν₃² = %s, brute force %d", c.a, c.m, res.Nu2Squared, want)
		}
	}
}

func TestSpectral3DValidation(t *testing.T) {
	if _, err := SpectralTest3D(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero modulus accepted")
	}
	if _, err := SpectralTest3D(big.NewInt(64), big.NewInt(64)); err == nil {
		t.Error("multiplier ≡ 0 accepted")
	}
}

func TestSpectral3DSmallMultiplierIsBad(t *testing.T) {
	// a = 5: triple (1, 5, 25) → ν₃² = 651, S₃ ≈ 0 for a large modulus.
	m := new(big.Int).Lsh(big.NewInt(1), 30)
	res, err := SpectralTest3D(big.NewInt(5), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nu2Squared.Int64() != 1+25+625 {
		t.Fatalf("ν₃² = %s, want 651", res.Nu2Squared)
	}
	if res.S2 > 0.05 {
		t.Fatalf("S₃ = %g for a tiny multiplier", res.S2)
	}
}

func TestSpectral3DLibraryMultiplier(t *testing.T) {
	a := new(big.Int)
	a.SetString(lcg.DefaultMultiplier.String(), 10)
	m := new(big.Int).Lsh(big.NewInt(1), 126)
	res, err := SpectralTest3D(a, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A = 5^101 mod 2^128: ν₃² = %s, S₃ = %.4f", res.Nu2Squared, res.S2)
	if res.S2 < 0.1 {
		t.Fatalf("library multiplier has degenerate 3-D spectral value S₃ = %g", res.S2)
	}
	if res.S2 > 1 {
		t.Fatalf("S₃ = %g exceeds the Hermite bound", res.S2)
	}
}

func TestSpectral3DNormalizedRangeSweep(t *testing.T) {
	m := big.NewInt(4096)
	for a := int64(3); a < 4096; a += 211 {
		res, err := SpectralTest3D(big.NewInt(a), m)
		if err != nil {
			t.Fatal(err)
		}
		if res.S2 <= 0 || res.S2 > 1 {
			t.Fatalf("a=%d: S₃ = %g outside (0,1]", a, res.S2)
		}
	}
}

func BenchmarkSpectral3D128(b *testing.B) {
	a := new(big.Int)
	a.SetString(lcg.DefaultMultiplier.String(), 10)
	m := new(big.Int).Lsh(big.NewInt(1), 126)
	for i := 0; i < b.N; i++ {
		if _, err := SpectralTest3D(a, m); err != nil {
			b.Fatal(err)
		}
	}
}
