package rngtest

import (
	"math/big"
	"testing"

	"parmonc/internal/lcg"
)

// TestSpectral3DLibraryAcrossModuli sweeps the library multiplier's 3-D
// spectral value over growing moduli: every value must be a valid
// normalized merit, and the reduction must stay exact (non-degenerate)
// all the way to the real period lattice m = 2^126.
func TestSpectral3DLibraryAcrossModuli(t *testing.T) {
	a := new(big.Int)
	a.SetString(lcg.DefaultMultiplier.String(), 10)
	for _, e := range []uint{20, 40, 60, 80, 100, 126} {
		m := new(big.Int).Lsh(big.NewInt(1), e)
		res, err := SpectralTest3D(a, m)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("m=2^%d: ν₃² bitlen=%d S₃=%.4f", e, res.Nu2Squared.BitLen(), res.S2)
		if res.S2 <= 0 || res.S2 > 1 {
			t.Fatalf("m=2^%d: S₃ = %g outside (0,1]", e, res.S2)
		}
		// ν₃ may not exceed the Hermite bound: ν₃² ≤ γ₃·(m²)^{2/3}.
		// Equivalent check: S₃ ≤ 1 (already asserted); also require the
		// reduced vector to be far below the trivial (0,m,0) vector.
		trivial := new(big.Int).Mul(m, m)
		if res.Nu2Squared.Cmp(trivial) >= 0 {
			t.Fatalf("m=2^%d: reduction failed, ν₃² = %s ≥ m²", e, res.Nu2Squared)
		}
	}
}
