package rngtest

import (
	"math/big"
	"testing"

	"parmonc/internal/lcg"
)

// bruteNu2 computes ν₂² by exhaustive search over lattice points with
// |x| ≤ m — feasible ground truth for small moduli.
func bruteNu2(a, m int64) int64 {
	best := m * m // (0, m) is always in the lattice
	for x := int64(1); x <= m; x++ {
		y := (a * x) % m
		for _, yy := range []int64{y, y - m} {
			n := x*x + yy*yy
			if n < best {
				best = n
			}
		}
		if x*x >= best {
			break // norms only grow beyond this x
		}
	}
	return best
}

func TestSpectralMatchesBruteForce(t *testing.T) {
	cases := []struct{ a, m int64 }{
		{137, 256},
		{3, 64},
		{21, 64},
		{4093, 16384},
		{1229, 2048},
		{5, 1024},
	}
	for _, c := range cases {
		res, err := SpectralTest2D(big.NewInt(c.a), big.NewInt(c.m))
		if err != nil {
			t.Fatal(err)
		}
		want := bruteNu2(c.a, c.m)
		if res.Nu2Squared.Int64() != want {
			t.Errorf("a=%d m=%d: ν₂² = %s, brute force %d", c.a, c.m, res.Nu2Squared, want)
		}
	}
}

func TestSpectralValidation(t *testing.T) {
	if _, err := SpectralTest2D(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero modulus accepted")
	}
	if _, err := SpectralTest2D(big.NewInt(0), big.NewInt(64)); err == nil {
		t.Error("zero multiplier accepted")
	}
	if _, err := SpectralTest2D(big.NewInt(128), big.NewInt(64)); err == nil {
		t.Error("multiplier ≡ 0 (mod m) accepted")
	}
	// Multipliers above m are reduced, not rejected.
	big1, err := SpectralTest2D(big.NewInt(137+256), big.NewInt(256))
	if err != nil {
		t.Fatal(err)
	}
	small, err := SpectralTest2D(big.NewInt(137), big.NewInt(256))
	if err != nil {
		t.Fatal(err)
	}
	if big1.Nu2Squared.Cmp(small.Nu2Squared) != 0 {
		t.Error("reduction mod m changed the lattice")
	}
}

func TestSpectralSmallMultiplierIsBad(t *testing.T) {
	// a = 5 mod 2^30: pairs lie on lines y = 5x, ν₂² = 26 → S₂ ≈ 0.
	m := new(big.Int).Lsh(big.NewInt(1), 30)
	res, err := SpectralTest2D(big.NewInt(5), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nu2Squared.Int64() != 26 {
		t.Fatalf("ν₂² = %s, want 26", res.Nu2Squared)
	}
	if res.S2 > 0.01 {
		t.Fatalf("S₂ = %g for a tiny multiplier; want ≈ 0", res.S2)
	}
}

func TestSpectralLibraryMultiplier(t *testing.T) {
	// The PARMONC multiplier A = 5^101 mod 2^128 against the period
	// lattice m = 2^126. A structurally sound multiplier scores a
	// non-degenerate S₂; tiny values would indicate lattice defects of
	// the kind the spectral test exists to catch.
	a := new(big.Int)
	a.SetString(lcg.DefaultMultiplier.String(), 10)
	m := new(big.Int).Lsh(big.NewInt(1), 126)
	res, err := SpectralTest2D(a, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A = 5^101 mod 2^128: ν₂² = %s, S₂ = %.4f", res.Nu2Squared, res.S2)
	if res.S2 < 0.1 {
		t.Fatalf("library multiplier has degenerate 2-D spectral value S₂ = %g", res.S2)
	}
	if res.S2 > 1 {
		t.Fatalf("S₂ = %g exceeds the Hermite bound", res.S2)
	}
}

func TestSpectralPerfectLattice(t *testing.T) {
	// a/m chosen so pairs form a near-square lattice: a = 8, m = 65 has
	// (1,8) and (-8, ...)? Instead verify upper bound: S₂ ≤ 1 for a
	// sweep of multipliers.
	m := big.NewInt(4096)
	for a := int64(3); a < 4096; a += 137 {
		res, err := SpectralTest2D(big.NewInt(a), m)
		if err != nil {
			t.Fatal(err)
		}
		if res.S2 > 1 || res.S2 <= 0 {
			t.Fatalf("a=%d: S₂ = %g outside (0,1]", a, res.S2)
		}
	}
}

func BenchmarkSpectral128(b *testing.B) {
	a := new(big.Int)
	a.SetString(lcg.DefaultMultiplier.String(), 10)
	m := new(big.Int).Lsh(big.NewInt(1), 126)
	for i := 0; i < b.N; i++ {
		if _, err := SpectralTest2D(a, m); err != nil {
			b.Fatal(err)
		}
	}
}
