// Package rngtest is a battery of statistical tests for uniform random
// number generators. The paper states that the PARMONC generator "was
// verified on parallel processors using rigorous statistical testing";
// this package reproduces that verification: classical empirical tests
// (Knuth TAoCP vol. 2, 3.3) applied both within a stream and across the
// parallel substreams the library hands to different processors.
//
// Every test returns a Verdict with the test statistic and its p-value
// under the null hypothesis "the source is i.i.d. uniform on (0,1)". A
// healthy generator produces p-values spread over (0,1); systematically
// tiny p-values indicate failure. The package takes a Source, so the
// same battery runs against the library generator, the 40-bit baseline
// generator, and deliberately broken sources in tests.
package rngtest

import (
	"fmt"
	"math"
	"sort"
)

// Source supplies base random numbers uniform on (0,1).
type Source interface {
	Float64() float64
}

// Verdict is the outcome of one statistical test.
type Verdict struct {
	Name string  // test identifier
	Stat float64 // test statistic
	P    float64 // p-value under the uniformity null
	N    int     // sample size consumed
}

// Pass reports whether the verdict is consistent with uniformity at
// significance level alpha (e.g. 0.001).
func (v Verdict) Pass(alpha float64) bool { return v.P >= alpha }

// String formats the verdict for reports.
func (v Verdict) String() string {
	return fmt.Sprintf("%-22s n=%-9d stat=%-12.4f p=%.6f", v.Name, v.N, v.Stat, v.P)
}

// ChiSquareUniformity bins n samples into bins equal cells and applies
// the chi-square goodness-of-fit test against the uniform distribution.
func ChiSquareUniformity(src Source, n, bins int) (Verdict, error) {
	if bins < 2 {
		return Verdict{}, fmt.Errorf("rngtest: bins %d must be >= 2", bins)
	}
	if n < 10*bins {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for %d bins (want >= %d)", n, bins, 10*bins)
	}
	counts := make([]int, bins)
	for i := 0; i < n; i++ {
		v := src.Float64()
		idx := int(v * float64(bins))
		if idx == bins {
			idx--
		}
		if idx < 0 || idx >= bins {
			return Verdict{}, fmt.Errorf("rngtest: sample %g outside [0,1)", v)
		}
		counts[idx]++
	}
	expected := float64(n) / float64(bins)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	p, err := ChiSquareP(chi2, bins-1)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Name: "chi2-uniformity", Stat: chi2, P: p, N: n}, nil
}

// KolmogorovSmirnov applies the one-sample KS test against U(0,1).
func KolmogorovSmirnov(src Source, n int) (Verdict, error) {
	if n < 100 {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for KS", n)
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
	}
	sort.Float64s(xs)
	var d float64
	for i, x := range xs {
		lo := x - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - x
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	sqn := math.Sqrt(float64(n))
	lambda := (sqn + 0.12 + 0.11/sqn) * d
	return Verdict{Name: "kolmogorov-smirnov", Stat: d, P: KSProb(lambda), N: n}, nil
}

// SerialPairs applies the serial test: non-overlapping pairs
// (α_{2i}, α_{2i+1}) must be uniform on the unit square. n is the number
// of pairs; the square is divided into g×g cells.
func SerialPairs(src Source, n, g int) (Verdict, error) {
	if g < 2 {
		return Verdict{}, fmt.Errorf("rngtest: grid %d must be >= 2", g)
	}
	cells := g * g
	if n < 10*cells {
		return Verdict{}, fmt.Errorf("rngtest: n = %d pairs too small for %d cells", n, cells)
	}
	counts := make([]int, cells)
	for i := 0; i < n; i++ {
		x := int(src.Float64() * float64(g))
		y := int(src.Float64() * float64(g))
		if x == g {
			x--
		}
		if y == g {
			y--
		}
		counts[x*g+y]++
	}
	expected := float64(n) / float64(cells)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	p, err := ChiSquareP(chi2, cells-1)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Name: "serial-pairs", Stat: chi2, P: p, N: 2 * n}, nil
}

// RunsUpDown counts maximal ascending/descending runs in n samples. For
// i.i.d. continuous samples, the run count is asymptotically normal with
// mean (2n−1)/3 and variance (16n−29)/90.
func RunsUpDown(src Source, n int) (Verdict, error) {
	if n < 1000 {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for runs test", n)
	}
	prev := src.Float64()
	cur := src.Float64()
	runs := 1
	up := cur > prev
	prev = cur
	for i := 2; i < n; i++ {
		cur = src.Float64()
		nowUp := cur > prev
		if nowUp != up {
			runs++
			up = nowUp
		}
		prev = cur
	}
	mean := (2*float64(n) - 1) / 3
	variance := (16*float64(n) - 29) / 90
	z := (float64(runs) - mean) / math.Sqrt(variance)
	return Verdict{Name: "runs-up-down", Stat: z, P: normalTailP(z), N: n}, nil
}

// GapTest examines the gaps between successive visits to the interval
// [a, b) ⊂ [0,1): gap lengths are geometric with p = b−a. It draws
// samples until ngaps gaps are observed, with gaps of length ≥ maxGap
// pooled into the final category.
func GapTest(src Source, ngaps int, a, b float64, maxGap int) (Verdict, error) {
	if !(0 <= a && a < b && b <= 1) {
		return Verdict{}, fmt.Errorf("rngtest: invalid gap interval [%g, %g)", a, b)
	}
	if maxGap < 2 {
		return Verdict{}, fmt.Errorf("rngtest: maxGap %d must be >= 2", maxGap)
	}
	if ngaps < 20*(maxGap+1) {
		return Verdict{}, fmt.Errorf("rngtest: ngaps = %d too small for maxGap %d", ngaps, maxGap)
	}
	p := b - a
	counts := make([]int, maxGap+1) // gap length 0..maxGap-1, plus >= maxGap
	drawn := 0
	for seen := 0; seen < ngaps; {
		gap := 0
		for {
			v := src.Float64()
			drawn++
			if v >= a && v < b {
				break
			}
			gap++
			if drawn > 1000*ngaps {
				return Verdict{}, fmt.Errorf("rngtest: gap test starving — source may avoid [%g,%g)", a, b)
			}
		}
		if gap >= maxGap {
			counts[maxGap]++
		} else {
			counts[gap]++
		}
		seen++
	}
	var chi2 float64
	for g := 0; g < maxGap; g++ {
		exp := float64(ngaps) * p * math.Pow(1-p, float64(g))
		d := float64(counts[g]) - exp
		chi2 += d * d / exp
	}
	expTail := float64(ngaps) * math.Pow(1-p, float64(maxGap))
	d := float64(counts[maxGap]) - expTail
	chi2 += d * d / expTail
	pv, err := ChiSquareP(chi2, maxGap)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Name: "gap", Stat: chi2, P: pv, N: drawn}, nil
}

// Autocorrelation estimates the lag-k autocorrelation of n samples; for
// i.i.d. uniforms it is asymptotically N(0, 1/n).
func Autocorrelation(src Source, n, lag int) (Verdict, error) {
	if lag < 1 {
		return Verdict{}, fmt.Errorf("rngtest: lag %d must be >= 1", lag)
	}
	if n < 1000+lag {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for lag %d", n, lag)
	}
	xs := make([]float64, n)
	var mean float64
	for i := range xs {
		xs[i] = src.Float64()
		mean += xs[i]
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	for i := 0; i < n; i++ {
		den += (xs[i] - mean) * (xs[i] - mean)
	}
	if den == 0 {
		return Verdict{Name: "autocorrelation", Stat: math.Inf(1), P: 0, N: n}, nil
	}
	r := num / den
	z := r * math.Sqrt(float64(n-lag))
	return Verdict{Name: "autocorrelation", Stat: z, P: normalTailP(z), N: n}, nil
}

// PermutationTest examines the relative ordering of non-overlapping
// triples: all 6 orderings must be equally likely. n is the number of
// triples.
func PermutationTest(src Source, n int) (Verdict, error) {
	if n < 120 {
		return Verdict{}, fmt.Errorf("rngtest: n = %d triples too small", n)
	}
	counts := make([]int, 6)
	for i := 0; i < n; i++ {
		a, b, c := src.Float64(), src.Float64(), src.Float64()
		counts[orderIndex(a, b, c)]++
	}
	expected := float64(n) / 6
	var chi2 float64
	for _, cnt := range counts {
		d := float64(cnt) - expected
		chi2 += d * d / expected
	}
	p, err := ChiSquareP(chi2, 5)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Name: "permutation-3", Stat: chi2, P: p, N: 3 * n}, nil
}

// orderIndex maps the ordering pattern of (a,b,c) to 0..5. Ties have
// probability zero for continuous sources and fold arbitrarily.
func orderIndex(a, b, c float64) int {
	switch {
	case a <= b && b <= c:
		return 0
	case a <= c && c < b:
		return 1
	case b < a && a <= c:
		return 2
	case b <= c && c < a:
		return 3
	case c < a && a <= b:
		return 4
	default:
		return 5
	}
}

// CrossCorrelation measures the sample correlation between two sources
// (e.g. two processor substreams); for independent uniform streams it is
// asymptotically N(0, 1/n). This is the key property the PARMONC
// substream hierarchy must deliver: streams on different processors must
// be independent.
func CrossCorrelation(a, b Source, n int) (Verdict, error) {
	if n < 1000 {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for cross-correlation", n)
	}
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	fn := float64(n)
	cov := sab/fn - (sa/fn)*(sb/fn)
	va := saa/fn - (sa/fn)*(sa/fn)
	vb := sbb/fn - (sb/fn)*(sb/fn)
	if va <= 0 || vb <= 0 {
		return Verdict{Name: "cross-correlation", Stat: math.Inf(1), P: 0, N: 2 * n}, nil
	}
	r := cov / math.Sqrt(va*vb)
	z := r * math.Sqrt(fn)
	return Verdict{Name: "cross-correlation", Stat: z, P: normalTailP(z), N: 2 * n}, nil
}

// MomentsCheck verifies the first two moments: mean 1/2 and variance
// 1/12, combining both deviations into a chi-square statistic with 2
// degrees of freedom.
func MomentsCheck(src Source, n int) (Verdict, error) {
	if n < 1000 {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for moment check", n)
	}
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := src.Float64()
		sum += v
		sum2 += v * v
	}
	fn := float64(n)
	mean := sum / fn
	m2 := sum2 / fn
	// Var(mean) = 1/(12n); Var(m2 estimator) = (E α⁴ − (E α²)²)/n = (1/5 − 1/9)/n.
	zMean := (mean - 0.5) / math.Sqrt(1.0/(12*fn))
	zM2 := (m2 - 1.0/3) / math.Sqrt((1.0/5-1.0/9)/fn)
	chi2 := zMean*zMean + zM2*zM2
	p, err := ChiSquareP(chi2, 2)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Name: "moments", Stat: chi2, P: p, N: n}, nil
}

// BatterySize is the number of tests Battery runs.
const BatterySize = 7

// Battery runs the full within-stream battery at size n and returns all
// verdicts. Tests consume independent stretches of the source in
// sequence.
func Battery(src Source, n int) ([]Verdict, error) {
	var out []Verdict
	run := func(v Verdict, err error) error {
		if err != nil {
			return err
		}
		out = append(out, v)
		return nil
	}
	if err := run(ChiSquareUniformity(src, n, 100)); err != nil {
		return nil, err
	}
	if err := run(KolmogorovSmirnov(src, n)); err != nil {
		return nil, err
	}
	if err := run(SerialPairs(src, n/2, 10)); err != nil {
		return nil, err
	}
	if err := run(RunsUpDown(src, n)); err != nil {
		return nil, err
	}
	if err := run(GapTest(src, n/4, 0, 0.5, 8)); err != nil {
		return nil, err
	}
	if err := run(Autocorrelation(src, n, 1)); err != nil {
		return nil, err
	}
	if err := run(MomentsCheck(src, n)); err != nil {
		return nil, err
	}
	return out, nil
}
