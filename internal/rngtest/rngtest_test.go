package rngtest

import (
	"math"
	"testing"

	"parmonc/internal/rng"
)

const alpha = 1e-4 // significance for "must pass" assertions

func libStream(t testing.TB, c rng.Coord) Source {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// brokenConst always returns the same value.
type brokenConst struct{ v float64 }

func (b brokenConst) Float64() float64 { return b.v }

// brokenSaw returns a deterministic sawtooth — strongly autocorrelated.
type brokenSaw struct{ i int }

func (b *brokenSaw) Float64() float64 {
	b.i++
	return float64(b.i%100) / 100.0
}

// brokenHalf is uniform but only on (0, 0.5).
type brokenHalf struct{ src Source }

func (b brokenHalf) Float64() float64 { return b.src.Float64() / 2 }

func TestChiSquarePKnownValues(t *testing.T) {
	// χ²=0 → p=1; median of χ²(1) ≈ 0.455 → p ≈ 0.5.
	p, err := ChiSquareP(0, 5)
	if err != nil || math.Abs(p-1) > 1e-12 {
		t.Fatalf("p(0) = %g, err %v", p, err)
	}
	p, err = ChiSquareP(0.455, 1)
	if err != nil || math.Abs(p-0.5) > 0.01 {
		t.Fatalf("p(median χ²₁) = %g", p)
	}
	// 95th percentile of χ²(10) is 18.307.
	p, err = ChiSquareP(18.307, 10)
	if err != nil || math.Abs(p-0.05) > 0.001 {
		t.Fatalf("p(18.307; 10) = %g", p)
	}
	if _, err := ChiSquareP(1, 0); err == nil {
		t.Fatal("dof 0: expected error")
	}
}

func TestKSProbLimits(t *testing.T) {
	if got := KSProb(0); got != 1 {
		t.Fatalf("KSProb(0) = %g", got)
	}
	if got := KSProb(10); got > 1e-10 {
		t.Fatalf("KSProb(10) = %g", got)
	}
	// Known value: Q_KS(1.0) ≈ 0.27.
	if got := KSProb(1.0); math.Abs(got-0.27) > 0.01 {
		t.Fatalf("KSProb(1) = %g", got)
	}
}

func TestLibraryGeneratorPassesBattery(t *testing.T) {
	verdicts, err := Battery(libStream(t, rng.Coord{}), 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != BatterySize {
		t.Fatalf("battery ran %d tests, want %d", len(verdicts), BatterySize)
	}
	for _, v := range verdicts {
		if !v.Pass(alpha) {
			t.Errorf("FAILED %s", v)
		}
	}
}

func TestSubstreamsPassBattery(t *testing.T) {
	// The paper's parallel claim: substreams handed to different
	// processors are individually sound.
	for _, c := range []rng.Coord{
		{Processor: 1},
		{Processor: 1000},
		{Experiment: 5, Processor: 77},
		{Processor: 3, Realization: 123456},
	} {
		verdicts, err := Battery(libStream(t, c), 100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range verdicts {
			if !v.Pass(alpha) {
				t.Errorf("coord %+v: FAILED %s", c, v)
			}
		}
	}
}

func TestCrossStreamIndependence(t *testing.T) {
	// Streams on different processors must be uncorrelated; likewise
	// different experiments and far-apart realizations.
	pairs := [][2]rng.Coord{
		{{Processor: 0}, {Processor: 1}},
		{{Processor: 0}, {Processor: 65535}},
		{{Experiment: 0}, {Experiment: 1}},
		{{Realization: 0}, {Realization: 1}},
		{{Processor: 2}, {Experiment: 1, Processor: 2}},
	}
	for _, pc := range pairs {
		a := libStream(t, pc[0])
		b := libStream(t, pc[1])
		v, err := CrossCorrelation(a, b, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Pass(alpha) {
			t.Errorf("streams %+v vs %+v: %s", pc[0], pc[1], v)
		}
	}
}

func TestConstSourceFailsUniformity(t *testing.T) {
	v, err := ChiSquareUniformity(brokenConst{0.3}, 10000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("constant source passed: %s", v)
	}
}

func TestHalfRangeSourceFailsKS(t *testing.T) {
	v, err := KolmogorovSmirnov(brokenHalf{libStream(t, rng.Coord{})}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("half-range source passed KS: %s", v)
	}
}

func TestSawtoothFailsAutocorrelation(t *testing.T) {
	v, err := Autocorrelation(&brokenSaw{}, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("sawtooth passed autocorrelation: %s", v)
	}
}

func TestSawtoothFailsRuns(t *testing.T) {
	v, err := RunsUpDown(&brokenSaw{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("sawtooth passed runs test: %s", v)
	}
}

func TestIdenticalStreamsFailCrossCorrelation(t *testing.T) {
	a := libStream(t, rng.Coord{Processor: 7})
	b := libStream(t, rng.Coord{Processor: 7})
	v, err := CrossCorrelation(a, b, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("identical streams passed cross-correlation: %s", v)
	}
}

func TestConstantSourceDegenerateCrossCorrelation(t *testing.T) {
	v, err := CrossCorrelation(brokenConst{0.5}, brokenConst{0.5}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if v.P != 0 {
		t.Fatalf("degenerate correlation p = %g, want 0", v.P)
	}
}

func TestHalfRangeFailsMoments(t *testing.T) {
	v, err := MomentsCheck(brokenHalf{libStream(t, rng.Coord{})}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass(alpha) {
		t.Fatalf("half-range source passed moments: %s", v)
	}
}

func TestGapTestDetectsAvoidance(t *testing.T) {
	// A source that never lands in [0, 0.5) must make the gap test
	// starve out with an error rather than loop forever.
	if _, err := GapTest(brokenConst{0.9}, 2000, 0, 0.5, 8); err == nil {
		t.Fatal("expected starvation error")
	}
}

func TestPermutationBalanced(t *testing.T) {
	v, err := PermutationTest(libStream(t, rng.Coord{Processor: 4}), 60000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass(alpha) {
		t.Fatalf("library failed permutation test: %s", v)
	}
}

func TestOrderIndexCoversAllSix(t *testing.T) {
	cases := []struct {
		a, b, c float64
		want    int
	}{
		{1, 2, 3, 0},
		{1, 3, 2, 1},
		{2, 1, 3, 2},
		{3, 1, 2, 3},
		{2, 3, 1, 4},
		{3, 2, 1, 5},
	}
	for _, c := range cases {
		if got := orderIndex(c.a, c.b, c.c); got != c.want {
			t.Errorf("orderIndex(%g,%g,%g) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestParameterValidation(t *testing.T) {
	s := libStream(t, rng.Coord{})
	if _, err := ChiSquareUniformity(s, 10, 100); err == nil {
		t.Error("tiny n accepted")
	}
	if _, err := ChiSquareUniformity(s, 1000, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := KolmogorovSmirnov(s, 5); err == nil {
		t.Error("tiny KS n accepted")
	}
	if _, err := SerialPairs(s, 5, 10); err == nil {
		t.Error("tiny serial n accepted")
	}
	if _, err := RunsUpDown(s, 10); err == nil {
		t.Error("tiny runs n accepted")
	}
	if _, err := GapTest(s, 10, 0.5, 0.2, 8); err == nil {
		t.Error("inverted gap interval accepted")
	}
	if _, err := Autocorrelation(s, 10, 1); err == nil {
		t.Error("tiny autocorrelation n accepted")
	}
	if _, err := Autocorrelation(s, 100000, 0); err == nil {
		t.Error("lag 0 accepted")
	}
	if _, err := PermutationTest(s, 5); err == nil {
		t.Error("tiny permutation n accepted")
	}
	if _, err := CrossCorrelation(s, s, 5); err == nil {
		t.Error("tiny cross-correlation n accepted")
	}
	if _, err := MomentsCheck(s, 5); err == nil {
		t.Error("tiny moments n accepted")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Name: "x", Stat: 1.5, P: 0.25, N: 100}
	if v.String() == "" {
		t.Fatal("empty string")
	}
	if !v.Pass(0.05) {
		t.Fatal("p=0.25 should pass at 0.05")
	}
	if v.Pass(0.3) {
		t.Fatal("p=0.25 should fail at 0.3")
	}
}

func BenchmarkBattery100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := libStream(b, rng.Coord{})
		if _, err := Battery(s, 100000); err != nil {
			b.Fatal(err)
		}
	}
}
