package rngtest

import (
	"fmt"
	"math"
	"math/big"
)

// SpectralResult is the outcome of the 2-D spectral test of an LCG
// multiplier: ν₂ is the length of the shortest nonzero vector of the
// lattice of consecutive pairs, and S₂ = ν₂/(γ₂^{1/2}·m^{1/2}) ∈ (0, 1]
// the normalized figure of merit (γ₂ = 2/√3, the planar Hermite
// constant). Good multipliers have S₂ close to 1; a structurally bad
// multiplier (e.g. a small one, whose pairs (k, a·k) lie on a few
// lines) scores near 0.
//
// This is the selection criterion of Dyadkin & Hamilton's study of
// 128-bit multipliers (Comput. Phys. Comm. 125, 2000), the paper's
// reference [14] for the generator parameters.
type SpectralResult struct {
	Nu2Squared *big.Int // ν₂², exact
	S2         float64  // normalized merit in (0, 1]
}

// SpectralTest2D computes the exact 2-D spectral test of the lattice
//
//	L = {(x, y) : y ≡ a·x (mod m)}
//
// by Lagrange–Gauss reduction of the basis (1, a), (0, m). For a
// maximal-period multiplicative generator mod 2^e (states ≡ 1 mod 4
// cycling with period 2^{e-2}), pass m = 2^{e-2} (Knuth 3.3.4).
func SpectralTest2D(a, m *big.Int) (SpectralResult, error) {
	if m.Sign() <= 0 {
		return SpectralResult{}, fmt.Errorf("rngtest: modulus must be positive")
	}
	aa := new(big.Int).Mod(a, m) // the lattice depends on a only mod m
	if aa.Sign() == 0 {
		return SpectralResult{}, fmt.Errorf("rngtest: multiplier ≡ 0 (mod m)")
	}

	u := [2]*big.Int{big.NewInt(1), aa}
	v := [2]*big.Int{big.NewInt(0), new(big.Int).Set(m)}

	normSq := func(w [2]*big.Int) *big.Int {
		n := new(big.Int).Mul(w[0], w[0])
		return n.Add(n, new(big.Int).Mul(w[1], w[1]))
	}
	dot := func(p, q [2]*big.Int) *big.Int {
		d := new(big.Int).Mul(p[0], q[0])
		return d.Add(d, new(big.Int).Mul(p[1], q[1]))
	}

	// Lagrange–Gauss reduction: ensure |u| ≤ |v|, then reduce v by the
	// rounded projection onto u until no improvement.
	if normSq(u).Cmp(normSq(v)) > 0 {
		u, v = v, u
	}
	for i := 0; i < 4*128; i++ { // convergence is fast; bound defensively
		// q = round(⟨u,v⟩ / ⟨u,u⟩)
		num := dot(u, v)
		den := normSq(u)
		q := roundDiv(num, den)
		if q.Sign() != 0 {
			v[0] = new(big.Int).Sub(v[0], new(big.Int).Mul(q, u[0]))
			v[1] = new(big.Int).Sub(v[1], new(big.Int).Mul(q, u[1]))
		}
		if normSq(v).Cmp(normSq(u)) >= 0 {
			break
		}
		u, v = v, u
	}

	nu2 := normSq(u)
	// S₂ = ν₂ / sqrt(γ₂·m), γ₂ = 2/√3.
	nu := new(big.Float).SetInt(nu2)
	nuF, _ := nu.Float64()
	mF, _ := new(big.Float).SetInt(m).Float64()
	s2 := math.Sqrt(nuF) / math.Sqrt(2/math.Sqrt(3)*mF)
	if s2 > 1 {
		s2 = 1 // float rounding guard at the Hermite bound
	}
	return SpectralResult{Nu2Squared: nu2, S2: s2}, nil
}

// roundDiv returns round(n/d) for d > 0.
func roundDiv(n, d *big.Int) *big.Int {
	two := big.NewInt(2)
	half := new(big.Int).Quo(d, two)
	adj := new(big.Int)
	if n.Sign() >= 0 {
		adj.Add(n, half)
	} else {
		adj.Sub(n, half)
	}
	return adj.Quo(adj, d)
}
