package rngtest

import (
	"fmt"
	"math"
)

// ChiSquareP returns the upper-tail p-value P(X > x) for a chi-square
// variable with k degrees of freedom: Q(k/2, x/2), the regularized upper
// incomplete gamma function.
func ChiSquareP(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("rngtest: chi-square dof %d must be positive", k)
	}
	if x < 0 {
		return 1, nil
	}
	return regIncGammaQ(float64(k)/2, x/2)
}

// regIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a,x)/Γ(a) using the series for x < a+1 and the continued
// fraction otherwise (Numerical Recipes 6.2).
func regIncGammaQ(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("rngtest: gamma parameter a = %g must be positive", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("rngtest: gamma argument x = %g must be non-negative", x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeriesP(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContFracQ(a, x)
}

// gammaSeriesP computes P(a, x) by the power series.
func gammaSeriesP(a, x float64) (float64, error) {
	const (
		maxIter = 1000
		eps     = 1e-14
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("rngtest: gamma series did not converge for a=%g, x=%g", a, x)
}

// gammaContFracQ computes Q(a, x) by the modified Lentz continued
// fraction.
func gammaContFracQ(a, x float64) (float64, error) {
	const (
		maxIter = 1000
		eps     = 1e-14
		fpmin   = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("rngtest: gamma continued fraction did not converge for a=%g, x=%g", a, x)
}

// KSProb returns the asymptotic Kolmogorov–Smirnov tail probability
// Q_KS(λ) = 2 Σ (−1)^{j−1} exp(−2 j² λ²).
func KSProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const eps1, eps2 = 1e-6, 1e-16
	a2 := -2 * lambda * lambda
	sum, fac, prevTerm := 0.0, 2.0, 0.0
	for j := 1; j <= 100; j++ {
		term := fac * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= eps1*prevTerm || math.Abs(term) <= eps2*sum {
			return clamp01(sum)
		}
		fac = -fac
		prevTerm = math.Abs(term)
	}
	return 1 // failed to converge: no evidence against H0
}

// normalTailP returns the two-sided p-value of a standard normal z.
func normalTailP(z float64) float64 {
	return clamp01(math.Erfc(math.Abs(z) / math.Sqrt2))
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
