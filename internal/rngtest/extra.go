package rngtest

import (
	"fmt"
	"math"
)

// CollisionTest throws n balls into m ≫ n urns (derived from
// consecutive samples) and compares the observed collision count with
// its distribution under uniformity (Knuth 3.3.2.I). The statistic is
// the normal approximation z of the collision count; for n²/(2m)
// expected collisions the count is approximately Poisson.
func CollisionTest(src Source, n, m int) (Verdict, error) {
	if m < 16 {
		return Verdict{}, fmt.Errorf("rngtest: urn count %d too small", m)
	}
	if n < 100 {
		return Verdict{}, fmt.Errorf("rngtest: n = %d too small for collision test", n)
	}
	expected := float64(n) * float64(n) / (2 * float64(m))
	if expected < 5 || expected > float64(n)/4 {
		return Verdict{}, fmt.Errorf("rngtest: n=%d, m=%d gives %g expected collisions; pick parameters with 5 ≤ E ≤ n/4", n, m, expected)
	}
	urns := make(map[int]bool, n)
	collisions := 0
	for i := 0; i < n; i++ {
		u := int(src.Float64() * float64(m))
		if u == m {
			u--
		}
		if urns[u] {
			collisions++
		} else {
			urns[u] = true
		}
	}
	// Collision count ≈ Poisson(expected) for sparse occupancy.
	z := (float64(collisions) - expected) / math.Sqrt(expected)
	return Verdict{Name: "collision", Stat: z, P: normalTailP(z), N: n}, nil
}

// MaximumOfT groups samples into n blocks of t and tests that the block
// maxima follow the distribution F(x) = x^t, by transforming each
// maximum through F (giving uniforms) and applying a chi-square test
// with bins cells (Knuth 3.3.2.E).
func MaximumOfT(src Source, n, t, bins int) (Verdict, error) {
	if t < 2 {
		return Verdict{}, fmt.Errorf("rngtest: block size %d must be >= 2", t)
	}
	if bins < 2 {
		return Verdict{}, fmt.Errorf("rngtest: bins %d must be >= 2", bins)
	}
	if n < 10*bins {
		return Verdict{}, fmt.Errorf("rngtest: n = %d blocks too small for %d bins", n, bins)
	}
	counts := make([]int, bins)
	for i := 0; i < n; i++ {
		maxV := 0.0
		for j := 0; j < t; j++ {
			if v := src.Float64(); v > maxV {
				maxV = v
			}
		}
		u := math.Pow(maxV, float64(t)) // uniform under H0
		idx := int(u * float64(bins))
		if idx == bins {
			idx--
		}
		counts[idx]++
	}
	expected := float64(n) / float64(bins)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	p, err := ChiSquareP(chi2, bins-1)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Name: fmt.Sprintf("max-of-%d", t), Stat: chi2, P: p, N: n * t}, nil
}
