// Package chem implements Gillespie's stochastic simulation algorithm
// (SSA) for well-mixed chemical reaction networks — the "modeling the
// chemical reactions" application of Sec. 2.1 of the paper.
//
// A network is a set of species and reactions with mass-action
// propensities. One realization simulates the exact jump process from
// the initial counts and records selected species at sample times. Two
// classical networks with closed-form mean solutions are provided for
// verification:
//
//   - Decay A → ∅ at rate k: E A(t) = A₀·e^{−kt}.
//   - Reversible isomerization A ⇌ B (k₁, k₂): the equilibrium mean of
//     A is (A₀+B₀)·k₂/(k₁+k₂), approached exponentially at rate k₁+k₂.
package chem

import (
	"fmt"
	"math"

	"parmonc/dist"
)

// Reaction is one channel of a network: when it fires, Delta is added
// to the species counts; its propensity is Rate times the mass-action
// combinatorial factor of the (at most two) reactant species.
type Reaction struct {
	Rate float64 // stochastic rate constant (> 0)
	// Reactants lists species indices consumed (length 0, 1 or 2; a
	// dimerization uses the same index twice).
	Reactants []int
	// Delta is the state change applied when the reaction fires; its
	// length equals the number of species.
	Delta []int64
}

// Network is a chemical reaction network.
type Network struct {
	Species   int
	Reactions []Reaction
	Init      []int64 // initial counts, length Species
}

// Validate checks the structural invariants.
func (n Network) Validate() error {
	if n.Species < 1 {
		return fmt.Errorf("chem: species count %d must be >= 1", n.Species)
	}
	if len(n.Init) != n.Species {
		return fmt.Errorf("chem: init has %d entries, want %d", len(n.Init), n.Species)
	}
	for i, c := range n.Init {
		if c < 0 {
			return fmt.Errorf("chem: negative initial count for species %d", i)
		}
	}
	if len(n.Reactions) == 0 {
		return fmt.Errorf("chem: network has no reactions")
	}
	for r, rx := range n.Reactions {
		if rx.Rate <= 0 {
			return fmt.Errorf("chem: reaction %d has non-positive rate %g", r, rx.Rate)
		}
		if len(rx.Reactants) > 2 {
			return fmt.Errorf("chem: reaction %d has %d reactants; at most 2 supported", r, len(rx.Reactants))
		}
		for _, s := range rx.Reactants {
			if s < 0 || s >= n.Species {
				return fmt.Errorf("chem: reaction %d references species %d of %d", r, s, n.Species)
			}
		}
		if len(rx.Delta) != n.Species {
			return fmt.Errorf("chem: reaction %d delta has %d entries, want %d", r, len(rx.Delta), n.Species)
		}
	}
	return nil
}

// propensity returns the mass-action propensity of reaction rx in state x.
func propensity(rx Reaction, x []int64) float64 {
	a := rx.Rate
	switch len(rx.Reactants) {
	case 0:
		return a
	case 1:
		return a * float64(x[rx.Reactants[0]])
	default:
		i, j := rx.Reactants[0], rx.Reactants[1]
		if i == j {
			// Dimerization: x(x−1)/2 ordered pairs... combinatorial factor.
			return a * float64(x[i]) * float64(x[i]-1) / 2
		}
		return a * float64(x[i]) * float64(x[j])
	}
}

// Trajectory simulates one exact SSA realization and records the counts
// of the watch species at each sample time (ascending). out is
// row-major len(times)×len(watch).
func (n Network) Trajectory(src dist.Source, times []float64, watch []int, out []float64) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if len(times) == 0 {
		return fmt.Errorf("chem: no sample times")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return fmt.Errorf("chem: sample times must be ascending")
		}
	}
	if times[0] < 0 {
		return fmt.Errorf("chem: negative sample time")
	}
	if len(watch) == 0 {
		return fmt.Errorf("chem: no watch species")
	}
	for _, s := range watch {
		if s < 0 || s >= n.Species {
			return fmt.Errorf("chem: watch species %d out of range", s)
		}
	}
	if len(out) != len(times)*len(watch) {
		return fmt.Errorf("chem: out has %d entries, want %d×%d", len(out), len(times), len(watch))
	}

	x := make([]int64, n.Species)
	copy(x, n.Init)
	props := make([]float64, len(n.Reactions))

	t := 0.0
	next := 0
	record := func() {
		for w, s := range watch {
			out[next*len(watch)+w] = float64(x[s])
		}
		next++
	}

	for next < len(times) {
		var total float64
		for r, rx := range n.Reactions {
			props[r] = propensity(rx, x)
			total += props[r]
		}
		if total <= 0 {
			// Absorbing state: all remaining sample times see it.
			for next < len(times) {
				record()
			}
			return nil
		}
		dt := dist.Exponential(src, total)
		for next < len(times) && times[next] <= t+dt {
			record()
		}
		t += dt
		if next >= len(times) {
			return nil
		}
		// Pick the firing channel proportionally to propensity.
		u := src.Float64() * total
		r := 0
		for ; r < len(props)-1; r++ {
			if u < props[r] {
				break
			}
			u -= props[r]
		}
		for s, d := range n.Reactions[r].Delta {
			x[s] += d
			if x[s] < 0 {
				return fmt.Errorf("chem: species %d went negative firing reaction %d", s, r)
			}
		}
	}
	return nil
}

// Decay returns the network A → ∅ with rate k and A(0) = a0.
func Decay(k float64, a0 int64) Network {
	return Network{
		Species: 1,
		Init:    []int64{a0},
		Reactions: []Reaction{
			{Rate: k, Reactants: []int{0}, Delta: []int64{-1}},
		},
	}
}

// Isomerization returns the reversible network A ⇌ B with forward rate
// k1, backward rate k2 and initial counts (a0, b0).
func Isomerization(k1, k2 float64, a0, b0 int64) Network {
	return Network{
		Species: 2,
		Init:    []int64{a0, b0},
		Reactions: []Reaction{
			{Rate: k1, Reactants: []int{0}, Delta: []int64{-1, 1}},
			{Rate: k2, Reactants: []int{1}, Delta: []int64{1, -1}},
		},
	}
}

// DecayMean returns E A(t) = a0·e^{−kt} for the Decay network.
func DecayMean(k float64, a0 int64, t float64) float64 {
	return float64(a0) * expNeg(k*t)
}

// IsomerizationMeanA returns E A(t) for the Isomerization network:
// A(∞) + (A(0) − A(∞))·e^{−(k1+k2)t}, with A(∞) = (a0+b0)·k2/(k1+k2).
func IsomerizationMeanA(k1, k2 float64, a0, b0 int64, t float64) float64 {
	total := float64(a0 + b0)
	aInf := total * k2 / (k1 + k2)
	return aInf + (float64(a0)-aInf)*expNeg((k1+k2)*t)
}

func expNeg(x float64) float64 {
	return math.Exp(-x)
}
