package chem

import (
	"context"
	"math"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
)

func stream(t testing.TB) *rng.Stream {
	t.Helper()
	s, err := rng.NewStream(rng.DefaultParams(), rng.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := Decay(1, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Network{
		{Species: 0},
		{Species: 1, Init: []int64{1}},    // no reactions
		{Species: 1, Init: []int64{1, 2}}, // wrong init length
		{Species: 1, Init: []int64{-1}, Reactions: []Reaction{{Rate: 1, Delta: []int64{0}}}},
		{Species: 1, Init: []int64{1}, Reactions: []Reaction{{Rate: 0, Delta: []int64{0}}}},
		{Species: 1, Init: []int64{1}, Reactions: []Reaction{{Rate: 1, Reactants: []int{5}, Delta: []int64{0}}}},
		{Species: 1, Init: []int64{1}, Reactions: []Reaction{{Rate: 1, Delta: []int64{0, 0}}}},
		{Species: 1, Init: []int64{1}, Reactions: []Reaction{{Rate: 1, Reactants: []int{0, 0, 0}, Delta: []int64{0}}}},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTrajectoryArguments(t *testing.T) {
	n := Decay(1, 10)
	s := stream(t)
	if err := n.Trajectory(s, nil, []int{0}, nil); err == nil {
		t.Error("no times accepted")
	}
	if err := n.Trajectory(s, []float64{1, 0.5}, []int{0}, make([]float64, 2)); err == nil {
		t.Error("descending times accepted")
	}
	if err := n.Trajectory(s, []float64{1}, nil, make([]float64, 1)); err == nil {
		t.Error("no watch species accepted")
	}
	if err := n.Trajectory(s, []float64{1}, []int{3}, make([]float64, 1)); err == nil {
		t.Error("bad watch species accepted")
	}
	if err := n.Trajectory(s, []float64{1}, []int{0}, make([]float64, 5)); err == nil {
		t.Error("wrong out length accepted")
	}
	if err := n.Trajectory(s, []float64{-1}, []int{0}, make([]float64, 1)); err == nil {
		t.Error("negative time accepted")
	}
}

func TestDecayMatchesExponential(t *testing.T) {
	// Full pipeline: E A(t) = A0·e^{-kt}.
	const (
		k  = 0.7
		a0 = 200
	)
	net := Decay(k, a0)
	times := []float64{0.5, 1, 2, 4}
	cfg := core.Config{
		Nrow: len(times), Ncol: 1,
		MaxSamples: 3000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return net.Trajectory(src, times, []int{0}, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := DecayMean(k, a0, tt)
		got := res.Report.MeanAt(i, 0)
		if math.Abs(got-want) > res.Report.AbsErrAt(i, 0)*4/3+0.5 {
			t.Errorf("E A(%g) = %g, want %g ± %g", tt, got, want, res.Report.AbsErrAt(i, 0))
		}
	}
}

func TestDecayVarianceBinomial(t *testing.T) {
	// Pure death from fixed A0: A(t) ~ Binomial(A0, e^{-kt}), so
	// Var A(t) = A0·p·(1-p).
	const (
		k  = 1.0
		a0 = 100
		tt = 1.0
	)
	net := Decay(k, a0)
	s := stream(t)
	out := make([]float64, 1)
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		if err := net.Trajectory(s, []float64{tt}, []int{0}, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
		sum2 += out[0] * out[0]
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	p := math.Exp(-k * tt)
	wantVar := float64(a0) * p * (1 - p)
	if math.Abs(variance-wantVar)/wantVar > 0.1 {
		t.Fatalf("Var A(1) = %g, want %g", variance, wantVar)
	}
}

func TestIsomerizationEquilibrium(t *testing.T) {
	const (
		k1, k2 = 2.0, 1.0
		a0, b0 = 150, 0
	)
	net := Isomerization(k1, k2, a0, b0)
	times := []float64{0.3, 1, 5}
	cfg := core.Config{
		Nrow: len(times), Ncol: 2,
		MaxSamples: 3000,
		Workers:    4,
		WorkDir:    t.TempDir(),
		PassPeriod: time.Millisecond,
		AverPeriod: 2 * time.Millisecond,
	}
	res, err := core.Run(context.Background(), cfg, func(src *rng.Stream, out []float64) error {
		return net.Trajectory(src, times, []int{0, 1}, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		wantA := IsomerizationMeanA(k1, k2, a0, b0, tt)
		gotA := res.Report.MeanAt(i, 0)
		if math.Abs(gotA-wantA) > res.Report.AbsErrAt(i, 0)*4/3+0.5 {
			t.Errorf("E A(%g) = %g, want %g", tt, gotA, wantA)
		}
		// Conservation: A + B = 150 exactly in every realization, so
		// the means must sum to 150 to fp precision.
		if sum := gotA + res.Report.MeanAt(i, 1); math.Abs(sum-150) > 1e-9 {
			t.Errorf("A+B = %g at t=%g, want 150", sum, tt)
		}
	}
	// Equilibrium value at t = 5 (rate 3 → e^{-15} ≈ 0): A(∞) = 150/3 = 50.
	if got := res.Report.MeanAt(2, 0); math.Abs(got-50) > 1.5 {
		t.Errorf("A(∞) = %g, want 50", got)
	}
}

func TestAbsorbingStateRecorded(t *testing.T) {
	// Fast decay: by t = 1000 the population is surely 0, including for
	// sample times far past the last event.
	net := Decay(5, 10)
	s := stream(t)
	out := make([]float64, 2)
	if err := net.Trajectory(s, []float64{1000, 2000}, []int{0}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("absorbing state not recorded: %v", out)
	}
}

func TestDimerizationPropensity(t *testing.T) {
	// 2A → ∅: propensity k·x(x−1)/2.
	rx := Reaction{Rate: 2, Reactants: []int{0, 0}, Delta: []int64{-2}}
	if got := propensity(rx, []int64{5}); got != 2*5*4/2 {
		t.Fatalf("dimer propensity = %g, want 20", got)
	}
	// A + B → C: k·xA·xB.
	rx2 := Reaction{Rate: 3, Reactants: []int{0, 1}, Delta: []int64{-1, -1, 1}}
	if got := propensity(rx2, []int64{4, 5, 0}); got != 60 {
		t.Fatalf("bimolecular propensity = %g, want 60", got)
	}
	// Source reaction ∅ → A: constant.
	rx3 := Reaction{Rate: 7, Delta: []int64{1}}
	if got := propensity(rx3, []int64{123}); got != 7 {
		t.Fatalf("source propensity = %g, want 7", got)
	}
}

func TestBirthDeathStationaryPoisson(t *testing.T) {
	// ∅ → A at rate λ, A → ∅ at rate μ per molecule: stationary
	// distribution Poisson(λ/μ) — mean and variance both λ/μ.
	const (
		lambda = 20.0
		mu     = 1.0
	)
	net := Network{
		Species: 1,
		Init:    []int64{0},
		Reactions: []Reaction{
			{Rate: lambda, Delta: []int64{1}},
			{Rate: mu, Reactants: []int{0}, Delta: []int64{-1}},
		},
	}
	s := stream(t)
	out := make([]float64, 1)
	var sum, sum2 float64
	const n = 5000
	for i := 0; i < n; i++ {
		if err := net.Trajectory(s, []float64{15}, []int{0}, out); err != nil {
			t.Fatal(err)
		}
		sum += out[0]
		sum2 += out[0] * out[0]
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-20) > 0.5 {
		t.Fatalf("stationary mean %g, want 20", mean)
	}
	if math.Abs(variance-20)/20 > 0.15 {
		t.Fatalf("stationary variance %g, want 20", variance)
	}
}

func BenchmarkDecayTrajectory(b *testing.B) {
	net := Decay(1, 200)
	times := []float64{0.5, 1, 2, 4}
	out := make([]float64, len(times))
	s := stream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Trajectory(s, times, []int{0}, out); err != nil {
			b.Fatal(err)
		}
	}
}
