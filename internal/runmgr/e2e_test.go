package runmgr

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/obs"
	"parmonc/internal/workload"
	_ "parmonc/internal/workload/builtin"
)

// httpJSON drives the control API the way an operator's tooling would.
func httpJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// TestE2EServeRuns is the acceptance scenario: a run manager serving
// its control API on the ops HTTP server, a shared 4-worker TCP fleet,
// three concurrent runs of different workloads driven to completion
// through the API, each final report bit-identical to its isolated
// counterpart — plus a large fourth run canceled mid-flight, whose
// lease capacity must flow back to the survivors.
func TestE2EServeRuns(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(t)
	cfg.LeaseTimeout = 5 * time.Second
	cfg.Registry = reg
	m := newManager(t, cfg)

	// Control plane on the ops server, alongside /metrics and /statusz.
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{
		Registry: reg,
		Status:   func() any { return m.Status() },
		Routes: map[string]http.Handler{
			"/runs":  m.Handler(),
			"/runs/": m.Handler(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	// Data plane: a 4-worker fleet over TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ServeFleet(ln); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := RunFleetWorker(ctx, ln.Addr().String(), FleetWorkerConfig{
				Poll:  5 * time.Millisecond,
				Retry: cluster.RetryPolicy{BaseDelay: 5 * time.Millisecond, CallTimeout: 10 * time.Second},
			})
			workerDone <- err
		}()
	}

	// The big cancelable run goes first so it is holding capacity when
	// the real runs arrive; huge windows and a sparse push cadence mean
	// it will be mid-window when canceled.
	big := Submission{
		Scenario:   workload.Spec{Workload: "pi"},
		MaxSamples: 8_000_000,
		SeqNum:     30,
		PassEvery:  50_000,
		LeaseSize:  2_000_000,
	}
	var bigSt RunStatus
	if code, raw := httpJSON(t, "POST", base+"/runs", big, &bigSt); code != http.StatusAccepted {
		t.Fatalf("POST big run: %d %s", code, raw)
	}

	subs := []Submission{
		{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 20_000, SeqNum: 31, PassEvery: 100, LeaseSize: 1_500},
		{Scenario: workload.Spec{Workload: "mm1", Params: workload.Values{"lambda": 0.5}}, MaxSamples: 6_000, SeqNum: 32, PassEvery: 50, LeaseSize: 1_000},
		{Scenario: workload.Spec{Workload: "option"}, MaxSamples: 10_000, SeqNum: 33, PassEvery: 100, LeaseSize: 900},
	}
	ids := make([]string, len(subs))
	for i, sub := range subs {
		var st RunStatus
		if code, raw := httpJSON(t, "POST", base+"/runs", sub, &st); code != http.StatusAccepted {
			t.Fatalf("POST run %d: %d %s", i, code, raw)
		}
		if st.State != StateAdmitted && st.State != StateRunning {
			t.Fatalf("run %s submitted into state %s", st.ID, st.State)
		}
		ids[i] = st.ID
	}

	// All four runs visible in the listing.
	var listing struct {
		Runs []RunStatus `json:"runs"`
	}
	if code, raw := httpJSON(t, "GET", base+"/runs", nil, &listing); code != http.StatusOK || len(listing.Runs) != 4 {
		t.Fatalf("GET /runs: %d, %d runs (%s)", code, len(listing.Runs), raw)
	}

	// Give the fleet a moment to spread across the runs, then cancel
	// the big one over the API.
	waitHTTPState := func(id string, want State, timeout time.Duration) RunStatus {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			var st RunStatus
			if code, raw := httpJSON(t, "GET", base+"/runs/"+id, nil, &st); code != http.StatusOK {
				t.Fatalf("GET /runs/%s: %d %s", id, code, raw)
			}
			if st.State == want {
				return st
			}
			if st.State.Terminal() {
				t.Fatalf("run %s reached %s (%s), want %s", id, st.State, st.Error, want)
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s stuck in %s, want %s", id, st.State, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	bigRunning := waitHTTPState(bigSt.ID, StateRunning, 30*time.Second)
	if bigRunning.Leases.Outstanding == 0 {
		t.Fatalf("big run running with no outstanding leases: %+v", bigRunning.Leases)
	}
	var canceled RunStatus
	if code, raw := httpJSON(t, "DELETE", base+"/runs/"+bigSt.ID, nil, &canceled); code != http.StatusOK {
		t.Fatalf("DELETE big run: %d %s", code, raw)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("canceled run state = %s", canceled.State)
	}
	// The canceled run must hold no fleet capacity: every grant fenced,
	// nothing pending.
	if canceled.Leases.Outstanding != 0 || canceled.Leases.Pending != 0 {
		t.Fatalf("canceled run still holds capacity: %+v", canceled.Leases)
	}
	// Canceling again is a conflict, not a success.
	if code, _ := httpJSON(t, "DELETE", base+"/runs/"+bigSt.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("second DELETE: %d, want 409", code)
	}

	// The survivors absorb the freed capacity and run to completion.
	for _, id := range ids {
		st := waitHTTPState(id, StateDone, 180*time.Second)
		if st.Leases.Completed != int64(st.Leases.Total) {
			t.Fatalf("run %s done with %d/%d leases completed", id, st.Leases.Completed, st.Leases.Total)
		}
	}

	// Reports over the API, bit-identical to isolated execution.
	for i, id := range ids {
		var got ReportPayload
		if code, raw := httpJSON(t, "GET", base+"/runs/"+id+"/report", nil, &got); code != http.StatusOK {
			t.Fatalf("GET report %s: %d %s", id, code, raw)
		}
		want := runIsolated(t, subs[i])
		compareReports(t, fmt.Sprintf("e2e/%s", subs[i].Scenario.Workload), got, want)
	}

	// The canceled run still serves its partial report — cancellation
	// saves what was accumulated, like an interrupted single run.
	var partial ReportPayload
	if code, raw := httpJSON(t, "GET", base+"/runs/"+bigSt.ID+"/report", nil, &partial); code != http.StatusOK {
		t.Fatalf("report of canceled run: %d %s", code, raw)
	}
	if partial.State != StateCanceled || partial.N >= big.MaxSamples {
		t.Fatalf("canceled report: state %s, N %d", partial.State, partial.N)
	}
	// Unknown run is a 404.
	if code, _ := httpJSON(t, "GET", base+"/runs/r9999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", code)
	}

	// The shared registry carries the per-run labeled series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"parmonc_runs_active", "parmonc_run_samples", `run="` + ids[0] + `"`} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("/metrics lacks %q", series)
		}
	}

	cancel()
	for i := 0; i < 4; i++ {
		if err := <-workerDone; err != nil {
			t.Errorf("worker exit: %v", err)
		}
	}
}
