package runmgr

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parmonc/internal/store"
	"parmonc/internal/workload"
)

func walRec(seq uint64, kind, run string) store.WALRecord {
	return store.WALRecord{Seq: seq, Epoch: 1, Kind: kind, Run: run}
}

// TestReplayWAL drives the pure transition-fold over the edge cases a
// real WAL accumulates: at-least-once duplicates, records that look
// out of order behind a torn tail, and cancel-vs-done races where the
// crash landed between two terminal writes.
func TestReplayWAL(t *testing.T) {
	cases := []struct {
		name  string
		recs  []store.WALRecord
		want  map[string]State
		stats replayStats
	}{
		{
			name: "normal lifecycle",
			recs: []store.WALRecord{
				walRec(1, walSubmit, "r0001"), walRec(2, walAdmit, "r0001"),
				walRec(3, walStart, "r0001"), walRec(4, walDone, "r0001"),
			},
			want: map[string]State{"r0001": StateDone},
		},
		{
			name: "duplicate transitions are idempotent",
			recs: []store.WALRecord{
				walRec(1, walSubmit, "r0001"), walRec(2, walSubmit, "r0001"),
				walRec(3, walAdmit, "r0001"), walRec(4, walAdmit, "r0001"),
			},
			want:  map[string]State{"r0001": StateAdmitted},
			stats: replayStats{Duplicates: 2},
		},
		{
			name: "backwards transition ignored",
			recs: []store.WALRecord{
				walRec(1, walSubmit, "r0001"), walRec(2, walStart, "r0001"),
				walRec(3, walAdmit, "r0001"), // stale record after a torn tail rewrite
			},
			want:  map[string]State{"r0001": StateRunning},
			stats: replayStats{OutOfOrder: 1},
		},
		{
			name: "cancel-vs-done race: first terminal wins",
			recs: []store.WALRecord{
				walRec(1, walSubmit, "r0001"), walRec(2, walCanceled, "r0001"),
				walRec(3, walDone, "r0001"),
			},
			want:  map[string]State{"r0001": StateCanceled},
			stats: replayStats{Conflicts: 1},
		},
		{
			name: "done-vs-cancel race the other way",
			recs: []store.WALRecord{
				walRec(1, walDone, "r0001"), walRec(2, walCanceled, "r0001"),
			},
			want:  map[string]State{"r0001": StateDone},
			stats: replayStats{Conflicts: 1},
		},
		{
			name: "non-transition kinds and runless records skipped",
			recs: []store.WALRecord{
				{Seq: 1, Epoch: 1, Kind: store.WALKindEpoch},
				walRec(2, walSubmit, "r0001"),
				{Seq: 3, Epoch: 1, Kind: walRecover},
				{Seq: 4, Epoch: 1, Kind: walSuspend, Run: "r0001"},
				{Seq: 5, Epoch: 1, Kind: walDone}, // no run ID: dropped
				{Seq: 6, Epoch: 1, Kind: store.WALKindShutdown},
			},
			want: map[string]State{"r0001": StateQueued},
		},
		{
			name: "independent runs fold independently",
			recs: []store.WALRecord{
				walRec(1, walSubmit, "r0001"), walRec(2, walSubmit, "r0002"),
				walRec(3, walAdmit, "r0001"), walRec(4, walCanceled, "r0002"),
			},
			want: map[string]State{"r0001": StateAdmitted, "r0002": StateCanceled},
		},
		{
			name: "empty log",
			recs: nil,
			want: map[string]State{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, stats := replayWAL(tc.recs)
			if len(got) != len(tc.want) {
				t.Fatalf("states = %v, want %v", got, tc.want)
			}
			for id, st := range tc.want {
				if got[id] != st {
					t.Errorf("run %s folded to %s, want %s", id, got[id], st)
				}
			}
			if stats != tc.stats {
				t.Errorf("stats = %+v, want %+v", stats, tc.stats)
			}
		})
	}
}

func TestFreshStartEmptyDataRoot(t *testing.T) {
	root := t.TempDir()
	m := newManager(t, Config{DataRoot: root, AverPeriod: 20 * time.Millisecond})
	info := m.Recovery()
	if info.Epoch != 1 {
		t.Errorf("first incarnation epoch = %d, want 1", info.Epoch)
	}
	if info.CleanShutdown || info.WALRecords != 0 || info.Terminal != 0 || info.Requeued != 0 {
		t.Errorf("fresh start recovered state: %+v", info)
	}
	if _, err := os.Stat(filepath.Join(root, store.WALFile)); err != nil {
		t.Errorf("fresh start did not create the service WAL: %v", err)
	}
}

// waitSamples polls until the run has merged at least n samples.
func waitSamples(t *testing.T, m *Manager, id string, n int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := m.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.N >= n {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("run %s went %s at N=%d before reaching %d", id, st.State, st.N, n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck at N=%d after %v, want %d", id, st.N, timeout, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitRecoveryImage polls until the run's periodic save has written a
// recovery image to disk.
func waitRecoveryImage(t *testing.T, root, id string, timeout time.Duration) {
	t.Helper()
	d, err := store.Open(filepath.Join(root, id))
	if err != nil {
		t.Fatal(err)
	}
	path := d.RecoveryPath()
	deadline := time.Now().Add(timeout)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery image at %s after %v", path, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulShutdownResumeNoReplay is the drained-shutdown
// regression: SIGTERM-style Shutdown leaves a clean WAL, so the next
// incarnation replays nothing, requeues the suspended run in place,
// restores its samples, and finishes it bit-identical to a run that
// was never interrupted.
func TestGracefulShutdownResumeNoReplay(t *testing.T) {
	sub := Submission{
		Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 400_000,
		SeqNum: 51, PassEvery: 100, LeaseSize: 20_000,
	}
	want := runIsolated(t, sub)

	root := t.TempDir()
	cfg := Config{DataRoot: root, AverPeriod: 20 * time.Millisecond}
	m1 := newManager(t, cfg)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	m1.StartLocalWorkers(ctx1, 2, FleetWorkerConfig{})
	st, err := m1.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitSamples(t, m1, st.ID, 10_000, 60*time.Second)
	if err := m1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	cancel1()

	m2 := newManager(t, cfg)
	info := m2.Recovery()
	if !info.CleanShutdown {
		t.Error("drained shutdown not recognized as clean")
	}
	if info.Replayed != 0 {
		t.Errorf("clean shutdown replayed %d runs, want 0", info.Replayed)
	}
	if info.Requeued != 1 || info.Resumed != 1 {
		t.Errorf("requeued/resumed = %d/%d, want 1/1", info.Requeued, info.Resumed)
	}
	if info.SamplesRestored <= 0 {
		t.Errorf("SamplesRestored = %d, want > 0", info.SamplesRestored)
	}
	if info.Epoch != 2 {
		t.Errorf("second incarnation epoch = %d, want 2", info.Epoch)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2.StartLocalWorkers(ctx2, 2, FleetWorkerConfig{})
	waitState(t, m2, st.ID, StateDone, 120*time.Second)
	got, err := m2.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "graceful-restart", got, want)
}

// TestKillRecoveryBitIdentical: the deterministic core of the tentpole
// — kill the service mid-flight (no drain, no final save), restart on
// the same data root, and the resumed run must still finish with a
// report bit-identical to uninterrupted execution, because recovery
// restores the per-shard accumulators and re-derives the outstanding
// lease remainders from the merged-prefix ledger.
func TestKillRecoveryBitIdentical(t *testing.T) {
	sub := Submission{
		Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 400_000,
		SeqNum: 52, PassEvery: 100, LeaseSize: 20_000,
	}
	want := runIsolated(t, sub)

	root := t.TempDir()
	cfg := Config{DataRoot: root, AverPeriod: 20 * time.Millisecond}
	m1 := newManager(t, cfg)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	m1.StartLocalWorkers(ctx1, 2, FleetWorkerConfig{})
	st, err := m1.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitSamples(t, m1, st.ID, 10_000, 60*time.Second)
	waitRecoveryImage(t, root, st.ID, 30*time.Second)
	m1.kill()
	cancel1()

	m2 := newManager(t, cfg)
	info := m2.Recovery()
	if info.CleanShutdown {
		t.Error("a kill must not read as a clean shutdown")
	}
	if info.Requeued != 1 {
		t.Errorf("requeued = %d, want 1", info.Requeued)
	}
	if info.Resumed != 1 || info.SamplesRestored <= 0 {
		t.Errorf("resumed/samples = %d/%d, want 1/>0", info.Resumed, info.SamplesRestored)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2.StartLocalWorkers(ctx2, 2, FleetWorkerConfig{})
	waitState(t, m2, st.ID, StateDone, 120*time.Second)
	got, err := m2.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "kill-restart", got, want)
}

// TestTerminalRunsListedAfterRestart: done runs come back read-only
// from their manifests — same state, and a report that is bitwise the
// one the run finished with. Their experiment subsequences stay
// reserved across the restart.
func TestTerminalRunsListedAfterRestart(t *testing.T) {
	sub := Submission{
		Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 5_000,
		SeqNum: 53, PassEvery: 100, LeaseSize: 1_000,
	}
	root := t.TempDir()
	cfg := Config{DataRoot: root, AverPeriod: 20 * time.Millisecond}
	m1 := newManager(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m1.StartLocalWorkers(ctx, 1, FleetWorkerConfig{})
	st, err := m1.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, StateDone, 60*time.Second)
	want, err := m1.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, cfg)
	if info := m2.Recovery(); info.Terminal != 1 || info.Requeued != 0 {
		t.Fatalf("terminal/requeued = %d/%d, want 1/0", info.Terminal, info.Requeued)
	}
	rst, err := m2.Run(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rst.State != StateDone {
		t.Fatalf("restored state = %s, want done", rst.State)
	}
	got, err := m2.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "terminal-restart", got, want)

	if _, err := m2.Submit(sub); err == nil {
		t.Fatal("restart forgot the terminal run's experiment subsequence")
	}
}

// TestRecoverPolicyManifest: strict refuses to start over a corrupt
// manifest; discard quarantines it and continues without the run.
func TestRecoverPolicyManifest(t *testing.T) {
	root := t.TempDir()
	runDir := filepath.Join(root, "r0001")
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(runDir, store.ManifestFile)
	writeGarbage := func() {
		if err := os.WriteFile(mpath, []byte("not a manifest"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeGarbage()
	if _, err := New(Config{DataRoot: root, AverPeriod: 20 * time.Millisecond}); err == nil {
		t.Fatal("strict recovery started over a corrupt manifest")
	}

	writeGarbage()
	m := newManager(t, Config{
		DataRoot: root, AverPeriod: 20 * time.Millisecond, Recover: RecoverDiscard,
	})
	info := m.Recovery()
	if info.CorruptManifests != 1 {
		t.Errorf("CorruptManifests = %d, want 1", info.CorruptManifests)
	}
	if info.Terminal+info.Requeued != 0 {
		t.Errorf("discard policy resurrected the corrupt run: %+v", info)
	}
	if _, err := os.Stat(mpath + store.QuarantineSuffix); err != nil {
		t.Errorf("corrupt manifest not quarantined: %v", err)
	}
}

// TestRecoverPolicyWAL: same policy split for the service WAL, and
// epochs never move backwards even when the WAL is lost — the highest
// manifest epoch seeds the new one.
func TestRecoverPolicyWAL(t *testing.T) {
	root := t.TempDir()
	wpath := filepath.Join(root, store.WALFile)
	writeGarbage := func() {
		if err := os.WriteFile(wpath, []byte("not a wal\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeGarbage()
	if _, err := New(Config{DataRoot: root, AverPeriod: 20 * time.Millisecond}); err == nil {
		t.Fatal("strict recovery started over a corrupt WAL")
	}

	writeGarbage()
	m := newManager(t, Config{
		DataRoot: root, AverPeriod: 20 * time.Millisecond, Recover: RecoverDiscard,
	})
	info := m.Recovery()
	if !info.CorruptWAL {
		t.Error("CorruptWAL not reported")
	}
	if info.Epoch != 1 {
		t.Errorf("epoch after WAL loss = %d, want 1 (no manifests to seed from)", info.Epoch)
	}
}

func TestServiceEpochMonotonic(t *testing.T) {
	root := t.TempDir()
	cfg := Config{DataRoot: root, AverPeriod: 20 * time.Millisecond}
	for want := uint64(1); want <= 3; want++ {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Recovery().Epoch; got != want {
			t.Fatalf("incarnation %d has epoch %d", want, got)
		}
		m.kill()
	}
}

func TestUnknownRecoverPolicyRejected(t *testing.T) {
	_, err := New(Config{DataRoot: t.TempDir(), Recover: RecoverPolicy("yolo")})
	if err == nil {
		t.Fatal("unknown -recover policy accepted")
	}
}

// TestRecoveryGate503: while startup recovery is replaying, the
// control API answers 503 with Retry-After instead of serving from a
// half-rebuilt registry.
func TestRecoveryGate503(t *testing.T) {
	m := newManager(t, testConfig(t))
	h := m.Handler()

	m.recovering.Store(true)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/runs", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status during recovery = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	m.recovering.Store(false)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/runs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status after recovery = %d, want 200", rec.Code)
	}
}

// TestSubmitBodyLimit: a run submission is a small JSON object; a
// multi-megabyte body is rejected with 413 before it is buffered.
func TestSubmitBodyLimit(t *testing.T) {
	m := newManager(t, testConfig(t))
	h := m.Handler()
	huge := `{"scenario":{"workload":"pi"},"junk":"` + strings.Repeat("a", 2<<20) + `"}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/runs", strings.NewReader(huge)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission = %d, want 413", rec.Code)
	}
}
