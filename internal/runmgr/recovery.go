package runmgr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// Service recovery: on startup the manager rehydrates its registry
// from the durable state the previous incarnation left at DataRoot —
// one manifest.json per run (what the run is, where its lifecycle
// stands) plus the append-only service WAL (the transition log, which
// may run ahead of the manifests by the one transition that was in
// flight when the process died). Terminal runs are listed read-only
// from their manifests; every other run re-enters the admission queue
// in original submission order, and on admission re-opens its
// collector from the per-shard recovery image so its report stays
// bit-identical to an uninterrupted run. The whole recovery is fenced
// by the service epoch: grants minted by a previous incarnation carry
// its epoch in their lease IDs, so a zombie push can never double-merge.

// RecoverPolicy selects how recovery treats corrupt durable state.
type RecoverPolicy string

const (
	// RecoverStrict (the default) refuses to start on a corrupt WAL or
	// manifest — the operator inspects the quarantined file and decides.
	RecoverStrict RecoverPolicy = "strict"
	// RecoverDiscard quarantines corrupt files and continues with what
	// remains: a run whose manifest is lost disappears from the
	// registry (its data tree stays on disk); a run whose recovery
	// image is lost recomputes from scratch (correct, just wasteful).
	RecoverDiscard RecoverPolicy = "discard"
)

// RecoveryInfo summarizes one startup recovery — exposed on /statusz
// and asserted by the regression tests (a drained shutdown must show
// CleanShutdown with nothing replayed).
type RecoveryInfo struct {
	Epoch         uint64 `json:"epoch"`          // this incarnation's service epoch
	CleanShutdown bool   `json:"clean_shutdown"` // previous incarnation drained and closed
	WALRecords    int    `json:"wal_records"`    // records replayed from the WAL
	WALTornTail   bool   `json:"wal_torn_tail"`  // final record torn mid-append (dropped)
	CorruptWAL    bool   `json:"corrupt_wal"`    // WAL quarantined (discard policy)

	Terminal int `json:"terminal"` // runs listed read-only from terminal manifests
	Requeued int `json:"requeued"` // non-terminal runs re-entered into the queue
	Resumed  int `json:"resumed"`  // of those, runs with a recovery image to restore
	Replayed int `json:"replayed"` // runs whose manifest lagged the WAL (reconciled)

	CorruptManifests int   `json:"corrupt_manifests"` // manifests quarantined (discard policy)
	SamplesRestored  int64 `json:"samples_restored"`  // sample volume carried across the restart
}

// runManifest is the durable JSON body of DataRoot/<runID>/manifest.json.
type runManifest struct {
	ID          string     `json:"id"`
	Seq         int        `json:"seq"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Workload    string     `json:"workload"`
	Fingerprint string     `json:"fingerprint"`
	Scenario    string     `json:"scenario"`
	Nrow        int        `json:"nrow"`
	Ncol        int        `json:"ncol"`
	Submission  Submission `json:"submission"`
	Epoch       uint64     `json:"epoch"` // service epoch that last wrote this manifest

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`

	// Report is present on done (and saved-partial canceled/failed)
	// runs: the final statistics, exactly as GET /runs/{id}/report
	// serves them. JSON float64 round-trips are exact (shortest
	// representation), so a report listed from a manifest is bitwise
	// the report the run finished with.
	Report *ReportPayload `json:"report,omitempty"`
}

// manifestLocked builds r's manifest body. Caller holds m.mu.
func (m *Manager) manifestLocked(r *run) runManifest {
	mf := runManifest{
		ID:          r.id,
		Seq:         r.seq,
		State:       r.state,
		Error:       r.errMsg,
		Workload:    r.workloadN,
		Fingerprint: r.fingerprint,
		Scenario:    r.scenario,
		Nrow:        r.nrow,
		Ncol:        r.ncol,
		Submission:  r.sub,
		Epoch:       m.epoch,
		SubmittedAt: r.submitted,
		StartedAt:   r.started,
		FinishedAt:  r.finished,
	}
	if r.hasReport {
		rep := reportPayload(r.id, r.state, r.workloadN, r.fingerprint, r.rep)
		mf.Report = &rep
	}
	return mf
}

// runFromManifest rebuilds the in-memory run record.
func runFromManifest(mf runManifest) *run {
	r := &run{
		id:          mf.ID,
		seq:         mf.Seq,
		sub:         mf.Submission,
		workloadN:   mf.Workload,
		fingerprint: mf.Fingerprint,
		scenario:    mf.Scenario,
		nrow:        mf.Nrow,
		ncol:        mf.Ncol,
		state:       mf.State,
		errMsg:      mf.Error,
		outstanding: map[uint64]*grant{},
		granted:     map[uint64]collect.Lease{},
		incompat:    map[int]bool{},
		submitted:   mf.SubmittedAt,
		started:     mf.StartedAt,
		finished:    mf.FinishedAt,
	}
	if mf.Report != nil {
		r.rep = payloadToReport(*mf.Report)
		r.hasReport = true
	}
	return r
}

// payloadToReport inverts reportPayload. The float64s round-trip
// bitwise (ReportPayload marshals shortest-representation JSON and
// JSONFloat handles the IEEE specials), so a report that crossed a
// manifest compares bit-identical to the original.
func payloadToReport(p ReportPayload) stat.Report {
	floats := func(xs []JSONFloat) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out
	}
	return stat.Report{
		Nrow:        p.Nrow,
		Ncol:        p.Ncol,
		N:           p.N,
		Mean:        floats(p.Mean),
		Var:         floats(p.Var),
		AbsErr:      floats(p.AbsErr),
		RelErr:      floats(p.RelErr),
		MaxAbsErr:   float64(p.MaxAbsErr),
		MaxRelErr:   float64(p.MaxRelErr),
		MaxVar:      float64(p.MaxVar),
		Gamma:       p.Gamma,
		MeanSimTime: time.Duration(p.MeanSimTime),
	}
}

// WAL lifecycle kinds the manager appends (beyond the store's own
// epoch/shutdown records). The record's Run field carries the run ID.
const (
	walSubmit   = "submit"
	walAdmit    = "admit"
	walStart    = "start"
	walDone     = "done"
	walFailed   = "failed"
	walCanceled = "canceled"
	walRecover  = "recover"
	walSuspend  = "suspend"
)

// walKindState maps a WAL transition kind onto the lifecycle state it
// establishes; ok is false for non-transition kinds (epoch, shutdown,
// recover, suspend).
func walKindState(kind string) (State, bool) {
	switch kind {
	case walSubmit:
		return StateQueued, true
	case walAdmit:
		return StateAdmitted, true
	case walStart:
		return StateRunning, true
	case walDone:
		return StateDone, true
	case walFailed:
		return StateFailed, true
	case walCanceled:
		return StateCanceled, true
	}
	return "", false
}

func stateRank(s State) int {
	switch s {
	case StateQueued:
		return 0
	case StateAdmitted:
		return 1
	case StateRunning:
		return 2
	}
	return 3 // terminal
}

// replayStats counts the anomalies replay tolerated.
type replayStats struct {
	Duplicates int // the same transition recorded twice (at-least-once writers)
	Conflicts  int // two different terminal states raced across a crash: first wins
	OutOfOrder int // a transition that would move the lifecycle backwards: ignored
}

// replayWAL folds the transition records into each run's final
// lifecycle state. It is a pure function so the edge cases — duplicate
// transitions, out-of-order records behind a torn tail, cancel-vs-done
// races recorded across a crash — are unit-testable without a disk.
//
// Rules: the lifecycle only moves forward (queued < admitted < running
// < terminal); a repeated state is a duplicate; once terminal, a
// different terminal state is a conflict and the first one recorded
// wins (the manager serialized the real transition under its lock, so
// the first record is the one that actually happened).
func replayWAL(recs []store.WALRecord) (map[string]State, replayStats) {
	states := map[string]State{}
	var stats replayStats
	for _, rec := range recs {
		next, ok := walKindState(rec.Kind)
		if !ok || rec.Run == "" {
			continue
		}
		cur, seen := states[rec.Run]
		if !seen {
			states[rec.Run] = next
			continue
		}
		switch {
		case next == cur:
			stats.Duplicates++
		case cur.Terminal() && next.Terminal():
			stats.Conflicts++
		case stateRank(next) < stateRank(cur):
			stats.OutOfOrder++
		default:
			states[rec.Run] = next
		}
	}
	return states, stats
}

// persistRunLocked appends the transition to the WAL and rewrites r's
// manifest — WAL first, so on a crash between the two writes the WAL
// is ahead of the manifest, never behind. Persistence failures are
// journaled, not fatal: the in-memory service keeps serving (exactly
// what the pre-durability manager did), it just recovers less after a
// crash. Caller holds m.mu.
func (m *Manager) persistRunLocked(r *run, kind string) {
	if err := m.persistRunErrLocked(r, kind); err != nil {
		m.jevent("persist_error", map[string]any{"run": r.id, "kind": kind, "err": err.Error()})
	}
}

// persistRunErrLocked is persistRunLocked surfacing the error — the
// submit path rejects a submission it could not make durable.
func (m *Manager) persistRunErrLocked(r *run, kind string) error {
	if m.wal != nil && kind != "" {
		if err := m.wal.Append(kind, r.id, m.now(), nil); err != nil {
			return err
		}
	}
	dir := filepath.Join(m.cfg.DataRoot, r.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return store.SaveManifest(filepath.Join(dir, store.ManifestFile), m.manifestLocked(r))
}

// remainingLeases derives the work a restored run still owes: the
// original lease partition minus each processor's merged prefix from
// the recovery image. Incomplete remainders go to the front of the
// queue (the reissue convention), untouched leases follow in partition
// order — the same windows, in the same per-processor positions, as an
// uninterrupted run would compute.
func remainingLeases(partition []collect.Lease, rs *store.RecoveryState) (pending []collect.Lease, completed int64) {
	merged := map[uint64]uint64{} // processor → absolute end of its merged prefix
	for _, sh := range rs.Shards {
		for _, le := range sh.Leases {
			if end := le.Start + uint64(le.Done); end > merged[le.Proc] {
				merged[le.Proc] = end
			}
		}
	}
	var rem, untouched []collect.Lease
	for _, pl := range partition {
		end := pl.Start + uint64(pl.Count)
		mp := merged[pl.Proc]
		switch {
		case mp >= end:
			completed++
		case mp <= pl.Start:
			untouched = append(untouched, pl)
		default:
			rem = append(rem, collect.Lease{Proc: pl.Proc, Start: mp, Count: int64(end - mp)})
		}
	}
	return append(rem, untouched...), completed
}

// recover rehydrates the registry from DataRoot. Called once from New,
// before anything else can touch the manager, so it runs lock-free.
func (m *Manager) recover() error {
	root := m.cfg.DataRoot
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	info := &m.recInfo

	// Pass 1: the manifests. Collected before the WAL opens so the new
	// service epoch also clears the highest epoch any manifest has seen
	// — even if the WAL itself was lost, epochs never move backwards.
	var manifests []runManifest
	images := map[string]*store.RecoveryState{}
	var maxEpoch uint64
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		mpath := filepath.Join(root, e.Name(), store.ManifestFile)
		var mf runManifest
		if lerr := store.LoadManifest(mpath, &mf); lerr != nil {
			if os.IsNotExist(lerr) {
				continue // not a run directory
			}
			if errors.Is(lerr, store.ErrCorrupt) {
				info.CorruptManifests++
				if m.countCorrupt(mpath, lerr); m.cfg.Recover != RecoverDiscard {
					return fmt.Errorf("runmgr: recovery (use -recover=discard to quarantine and continue): %w", lerr)
				}
				continue
			}
			return lerr
		}
		if mf.ID != e.Name() {
			info.CorruptManifests++
			if m.countCorrupt(mpath, fmt.Errorf("manifest claims run %q", mf.ID)); m.cfg.Recover != RecoverDiscard {
				return fmt.Errorf("runmgr: recovery: manifest %s claims run %q (use -recover=discard to skip it)", mpath, mf.ID)
			}
			continue
		}
		if mf.Epoch > maxEpoch {
			maxEpoch = mf.Epoch
		}
		manifests = append(manifests, mf)
	}

	// Pass 2: the WAL — it names this incarnation's epoch and may know
	// transitions the manifests missed.
	walPath := filepath.Join(root, store.WALFile)
	wal, replay, err := store.OpenWAL(walPath, maxEpoch, m.now())
	if err != nil {
		if !errors.Is(err, store.ErrCorrupt) || m.cfg.Recover != RecoverDiscard {
			return fmt.Errorf("runmgr: service WAL (use -recover=discard to quarantine and continue): %w", err)
		}
		info.CorruptWAL = true
		m.countCorrupt(walPath, err)
		wal, replay, err = store.OpenWAL(walPath, maxEpoch, m.now())
		if err != nil {
			return fmt.Errorf("runmgr: service WAL: %w", err)
		}
	}
	m.wal = wal
	m.epoch = wal.Epoch()
	info.Epoch = m.epoch
	info.WALRecords = len(replay.Records)
	info.WALTornTail = replay.Torn
	info.CleanShutdown = replay.CleanShutdown()
	walStates, _ := replayWAL(replay.Records)

	// Pass 3: rebuild the registry in submission order.
	sort.Slice(manifests, func(i, j int) bool { return manifests[i].Seq < manifests[j].Seq })
	var wasActive, wasQueued []*run
	for _, mf := range manifests {
		r := runFromManifest(mf)
		if ws, ok := walStates[r.id]; ok && ws != mf.State {
			info.Replayed++
			if ws.Terminal() && !mf.State.Terminal() && ws != StateDone {
				// The WAL committed a cancel/fail whose manifest write
				// the crash swallowed. Honor it — finishing the run
				// instead would resurrect work the user ended.
				r.state = ws
				if r.errMsg == "" {
					r.errMsg = "recovered: service stopped while finishing this run as " + string(ws)
				}
				if r.finished.IsZero() {
					r.finished = m.now()
				}
			}
			// A WAL "done" (or a mere admit/start) ahead of the manifest
			// needs no forcing: the run re-admits below, its restored
			// collector already holds the merged samples, and the usual
			// completion check finishes it with bit-identical results.
		}
		m.runs[r.id] = r
		m.order = append(m.order, r)
		if r.seq > m.nextRunID {
			m.nextRunID = r.seq
		}
		if r.sub.SeqNum != 0 {
			m.usedSeq[r.sub.SeqNum] = r.id
		}
		m.registerRunGauges(r.id)
		if r.state.Terminal() {
			info.Terminal++
			if r.state != mf.State {
				m.persistRunLocked(r, string(r.state))
			}
			continue
		}
		// Pre-load the recovery image so a corrupt one surfaces now,
		// under the policy, rather than at whatever later moment the
		// admission queue reaches this run.
		d, derr := store.Open(filepath.Join(root, r.id))
		if derr != nil {
			return derr
		}
		rs, lerr := d.LoadRecovery()
		switch {
		case lerr == nil:
			images[r.id] = &rs
			info.Resumed++
			for _, sh := range rs.Shards {
				info.SamplesRestored += sh.Snap.N
			}
		case os.IsNotExist(lerr):
			// Never saved (queued, or crashed before the first save):
			// the run recomputes from its start. Correct either way.
		case errors.Is(lerr, store.ErrCorrupt):
			m.countCorrupt(d.RecoveryPath(), lerr)
			if m.cfg.Recover != RecoverDiscard {
				return fmt.Errorf("runmgr: recovery image of %s (use -recover=discard to quarantine and recompute): %w", r.id, lerr)
			}
		default:
			return lerr
		}
		// Previously-active runs re-admit ahead of the queued ones;
		// within each class original submission order holds (seq order,
		// already sorted).
		active := r.state == StateAdmitted || r.state == StateRunning
		r.state = StateQueued
		if active {
			wasActive = append(wasActive, r)
		} else {
			wasQueued = append(wasQueued, r)
		}
		info.Requeued++
	}
	m.queue = append(wasActive, wasQueued...)
	for _, r := range m.queue {
		r.restoreImg = images[r.id]
		m.persistRunLocked(r, "")
	}
	m.admitLocked()
	_ = m.wal.Append(walRecover, "", m.now(), info)
	if len(manifests) > 0 || info.WALRecords > 0 {
		m.jevent("service_recover", map[string]any{
			"epoch": m.epoch, "terminal": info.Terminal, "requeued": info.Requeued,
			"resumed": info.Resumed, "replayed": info.Replayed, "clean_shutdown": info.CleanShutdown,
			"samples_restored": info.SamplesRestored,
		})
	}
	return nil
}

// countCorrupt records one quarantined file in metrics and the journal.
func (m *Manager) countCorrupt(path string, err error) {
	if m.mRecCorrupt != nil {
		m.mRecCorrupt.Inc()
	}
	m.jevent("recover_corrupt", map[string]any{"file": path, "err": err.Error()})
}

// Recovery returns the startup-recovery summary of this incarnation.
func (m *Manager) Recovery() RecoveryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recInfo
}
