package runmgr

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parmonc/internal/workload"
	_ "parmonc/internal/workload/builtin"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		DataRoot:   t.TempDir(),
		AverPeriod: 20 * time.Millisecond,
	}
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func piSubmission(maxsv int64, seq uint64) Submission {
	return Submission{
		Scenario:   workload.Spec{Workload: "pi"},
		MaxSamples: maxsv,
		SeqNum:     seq,
		PassEvery:  100,
		LeaseSize:  1000,
	}
}

// waitState polls until the run reaches a terminal state or the state
// in want, failing the test on timeout.
func waitState(t *testing.T, m *Manager, id string, want State, timeout time.Duration) RunStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := m.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("run %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s after %v, want %s", id, st.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, testConfig(t))
	cases := []struct {
		name string
		sub  Submission
		frag string
	}{
		{"no workload", Submission{MaxSamples: 100}, "no workload name"},
		{"unknown workload", Submission{Scenario: workload.Spec{Workload: "nosuch"}, MaxSamples: 100}, "nosuch"},
		{"no target", Submission{Scenario: workload.Spec{Workload: "pi"}}, "positive realization target"},
		{"bad param", Submission{Scenario: workload.Spec{Workload: "pi", Params: workload.Values{"bogus": 1}}, MaxSamples: 100}, "bogus"},
		{"negative pass-every", Submission{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 100, PassEvery: -1}, "pass-every"},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.sub); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.frag)
		}
	}
}

func TestSubmitBudget(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRealizations = 5000
	m := newManager(t, cfg)
	if _, err := m.Submit(piSubmission(5001, 1)); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget submit: err = %v", err)
	}
	if _, err := m.Submit(piSubmission(5000, 2)); err != nil {
		t.Fatalf("at-budget submit: %v", err)
	}
}

func TestAdmissionQueueBounds(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxActive = 1
	cfg.MaxQueued = 2
	m := newManager(t, cfg)

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := m.Submit(piSubmission(2000, uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := m.Submit(piSubmission(2000, 9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: err = %v, want ErrQueueFull", err)
	}
	if st, _ := m.Run(ids[0]); st.State != StateAdmitted {
		t.Fatalf("first run is %s, want admitted", st.State)
	}
	for _, id := range ids[1:] {
		if st, _ := m.Run(id); st.State != StateQueued {
			t.Fatalf("run %s is %s, want queued", id, st.State)
		}
	}

	// Canceling the active run frees its slot to the head of the queue,
	// and the freed queue slot accepts a new submission.
	if _, err := m.Cancel(ids[0]); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Run(ids[1]); st.State != StateAdmitted {
		t.Fatalf("after cancel, second run is %s, want admitted", st.State)
	}
	if _, err := m.Submit(piSubmission(2000, 9)); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
}

func TestSeqNumAssignment(t *testing.T) {
	m := newManager(t, testConfig(t))
	a, err := m.Submit(Submission{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(Submission{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if a.SeqNum == b.SeqNum {
		t.Fatalf("auto-assigned subsequences collide: %d", a.SeqNum)
	}
	// An explicit number already in use is rejected: two hosted runs
	// must never share base random numbers.
	if _, err := m.Submit(piSubmission(1000, a.SeqNum)); err == nil {
		t.Fatalf("duplicate explicit seqnum %d accepted", a.SeqNum)
	}
	c, err := m.Submit(piSubmission(1000, 77))
	if err != nil {
		t.Fatal(err)
	}
	if c.SeqNum != 77 {
		t.Fatalf("explicit seqnum: got %d, want 77", c.SeqNum)
	}
	// Auto-assignment skips explicitly taken numbers.
	d, err := m.Submit(Submission{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, prev := range []uint64{a.SeqNum, b.SeqNum, 77} {
		if d.SeqNum == prev {
			t.Fatalf("auto seqnum %d collides with used %d", d.SeqNum, prev)
		}
	}
}

// TestFairSharePull drives the scheduler directly through the fleet
// protocol: with two active runs, consecutive grants alternate between
// them (grant to the run with the fewest outstanding leases).
func TestFairSharePull(t *testing.T) {
	m := newManager(t, testConfig(t))
	a, err := m.Submit(piSubmission(4000, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(piSubmission(4000, 2))
	if err != nil {
		t.Fatal(err)
	}
	at, err := m.attach(AttachArgs{Hostname: "test"})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 4; i++ {
		pr, err := m.pullTask(context.Background(), PullArgs{Worker: at.Worker})
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Granted {
			t.Fatalf("pull %d: nothing granted", i)
		}
		got = append(got, pr.Task.RunID)
	}
	want := []string{a.ID, b.ID, a.ID, b.ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestProtocolNack: a worker that cannot serve a run is excluded from
// it and the lease window is regranted intact to another worker.
func TestProtocolNack(t *testing.T) {
	m := newManager(t, testConfig(t))
	st, err := m.Submit(piSubmission(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := m.attach(AttachArgs{Hostname: "w1"})
	w2, _ := m.attach(AttachArgs{Hostname: "w2"})

	pr, err := m.pullTask(context.Background(), PullArgs{Worker: w1.Worker})
	if err != nil || !pr.Granted {
		t.Fatalf("pull: granted=%v err=%v", pr.Granted, err)
	}
	first := pr.Task.Lease
	if err := m.nackTask(NackArgs{Worker: w1.Worker, RunID: st.ID, LeaseID: first.ID, Reason: "not linked here"}); err != nil {
		t.Fatal(err)
	}
	// The nacking worker never sees this run again.
	if pr, _ := m.pullTask(context.Background(), PullArgs{Worker: w1.Worker}); pr.Granted {
		t.Fatalf("nacking worker was granted %s again", pr.Task.RunID)
	}
	// Another worker gets the same window back under a fresh grant ID.
	pr2, err := m.pullTask(context.Background(), PullArgs{Worker: w2.Worker})
	if err != nil || !pr2.Granted {
		t.Fatalf("pull from w2: granted=%v err=%v", pr2.Granted, err)
	}
	re := pr2.Task.Lease
	if re.Proc != first.Proc || re.Start != first.Start || re.Count != first.Count {
		t.Fatalf("reissued lease %+v, want window of %+v", re, first)
	}
	if re.ID == first.ID {
		t.Fatalf("reissued lease kept grant ID %d", re.ID)
	}
	rs, _ := m.Run(st.ID)
	if rs.Leases.Nacks != 1 || rs.Leases.Reissued != 1 {
		t.Fatalf("counters = %+v, want 1 nack, 1 reissue", rs.Leases)
	}
}

// TestProtocolFail: a definitive realization failure fails the run and
// saves partial results.
func TestProtocolFail(t *testing.T) {
	m := newManager(t, testConfig(t))
	st, err := m.Submit(piSubmission(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.attach(AttachArgs{Hostname: "w"})
	pr, _ := m.pullTask(context.Background(), PullArgs{Worker: w.Worker})
	if !pr.Granted {
		t.Fatal("no grant")
	}
	if err := m.failTask(FailArgs{Worker: w.Worker, RunID: st.ID, LeaseID: pr.Task.Lease.ID, Reason: "boom"}); err != nil {
		t.Fatal(err)
	}
	rs, _ := m.Run(st.ID)
	if rs.State != StateFailed || !strings.Contains(rs.Error, "boom") {
		t.Fatalf("run = %s (%q), want failed/boom", rs.State, rs.Error)
	}
	// The failed run's slot is free again.
	if next, err := m.Submit(piSubmission(1000, 2)); err != nil {
		t.Fatal(err)
	} else if s, _ := m.Run(next.ID); s.State != StateAdmitted {
		t.Fatalf("post-failure submit is %s, want admitted", s.State)
	}
}

// TestLocalWorkersRunToCompletion: the end-to-end happy path on the
// in-process transport, including the final report.
func TestLocalWorkersRunToCompletion(t *testing.T) {
	m := newManager(t, testConfig(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := m.StartLocalWorkers(ctx, 3, FleetWorkerConfig{})

	st, err := m.Submit(piSubmission(5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateDone, 30*time.Second)
	if final.N != 5000 {
		t.Fatalf("final N = %d, want 5000", final.N)
	}
	if final.Leases.Completed != int64(final.Leases.Total) || final.Leases.Outstanding != 0 || final.Leases.Pending != 0 {
		t.Fatalf("lease counters not drained: %+v", final.Leases)
	}
	rep, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 5000 || len(rep.Mean) != rep.Nrow*rep.Ncol {
		t.Fatalf("report N=%d dims=%dx%d len=%d", rep.N, rep.Nrow, rep.Ncol, len(rep.Mean))
	}
	// π/4 ≈ 0.785: the estimate should at least be in the ballpark.
	if rep.Mean[0] < 0.7 || rep.Mean[0] > 0.9 {
		t.Fatalf("pi estimate %g out of range", float64(rep.Mean[0]))
	}
	cancel()
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestStopRuleCompletesEarly: a run with a relative-error target
// finishes as done before exhausting its realization budget.
func TestStopRuleCompletesEarly(t *testing.T) {
	m := newManager(t, testConfig(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartLocalWorkers(ctx, 2, FleetWorkerConfig{})

	st, err := m.Submit(Submission{
		Scenario:     workload.Spec{Workload: "pi"},
		MaxSamples:   2_000_000,
		SeqNum:       1,
		PassEvery:    100,
		LeaseSize:    10_000,
		TargetRelErr: 25, // generous: satisfied after ~a thousand samples
		MinSamples:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateDone, 60*time.Second)
	if final.N < 1000 {
		t.Fatalf("stopped below the sample floor: N = %d", final.N)
	}
	if final.N >= 2_000_000 {
		t.Fatalf("stop rule never fired: N = %d", final.N)
	}
}

// TestManagerCloseCancelsRuns: Close drives every live run terminal
// and stops local workers via the Stop flag.
func TestManagerCloseCancelsRuns(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxActive = 1
	m := newManager(t, cfg)
	a, err := m.Submit(piSubmission(1_000_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(piSubmission(1_000_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		st, err := m.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Fatalf("run %s is %s after Close, want canceled", id, st.State)
		}
	}
	if _, err := m.Submit(piSubmission(1000, 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v", err)
	}
}

// TestLeaseTimeoutReissue: a worker that pulls a lease and goes silent
// has it reissued to a live worker; the run still completes exactly.
func TestLeaseTimeoutReissue(t *testing.T) {
	cfg := testConfig(t)
	cfg.LeaseTimeout = 100 * time.Millisecond
	m := newManager(t, cfg)

	st, err := m.Submit(piSubmission(3000, 1))
	if err != nil {
		t.Fatal(err)
	}
	// A zombie worker takes a lease and never comes back.
	zw, _ := m.attach(AttachArgs{Hostname: "zombie"})
	pr, _ := m.pullTask(context.Background(), PullArgs{Worker: zw.Worker})
	if !pr.Granted {
		t.Fatal("zombie got no grant")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartLocalWorkers(ctx, 2, FleetWorkerConfig{})
	final := waitState(t, m, st.ID, StateDone, 30*time.Second)
	if final.N != 3000 {
		t.Fatalf("final N = %d, want 3000 (reissued window included exactly once)", final.N)
	}
	if final.Leases.Reissued == 0 {
		t.Fatal("no lease was reissued despite the zombie")
	}
}
