package runmgr

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"parmonc/internal/stat"
)

// JSONFloat marshals like a float64 except that the IEEE specials —
// which encoding/json refuses outright — become strings: "+Inf",
// "-Inf", "NaN". The relative error of a zero-mean estimate is +Inf by
// definition (see stat.Report), so run reports must survive it.
type JSONFloat float64

func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = JSONFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "+Inf", "Inf":
		*f = JSONFloat(math.Inf(1))
	case "-Inf":
		*f = JSONFloat(math.Inf(-1))
	case "NaN":
		*f = JSONFloat(math.NaN())
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("runmgr: invalid float %q", s)
		}
		*f = JSONFloat(v)
	}
	return nil
}

func jsonFloats(xs []float64) []JSONFloat {
	out := make([]JSONFloat, len(xs))
	for i, x := range xs {
		out[i] = JSONFloat(x)
	}
	return out
}

// LeaseCounters is the scheduling view of one run.
type LeaseCounters struct {
	Total       int   `json:"total"`       // leases in the partition
	Granted     int64 `json:"granted"`     // grants ever made (incl. reissues)
	Outstanding int   `json:"outstanding"` // granted, incomplete
	Pending     int   `json:"pending"`     // waiting to be granted
	Completed   int64 `json:"completed"`   // fully merged
	Reissued    int64 `json:"reissued"`    // requeued after detach/nack/timeout
	Nacks       int64 `json:"nacks"`       // workers that could not serve the run
}

// RunStatus is the JSON view of one run: GET /runs/{id}, the elements
// of GET /runs, and the body returned by POST /runs and DELETE.
type RunStatus struct {
	ID          string          `json:"id"`
	State       State           `json:"state"`
	Error       string          `json:"error,omitempty"`
	Workload    string          `json:"workload"`
	Fingerprint string          `json:"fingerprint"`
	Scenario    json.RawMessage `json:"scenario"`
	SeqNum      uint64          `json:"seqnum"`
	MaxSamples  int64           `json:"maxsv"`
	PassEvery   int64           `json:"pass_every"`
	LeaseSize   int64           `json:"lease_size"`

	N         int64         `json:"n"`
	MaxRelErr JSONFloat     `json:"max_rel_err_pct"`
	Leases    LeaseCounters `json:"leases"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// ReportPayload is GET /runs/{id}/report: the final averaged
// statistics of a terminal run, Inf-safe for JSON.
type ReportPayload struct {
	ID          string      `json:"id"`
	State       State       `json:"state"`
	Workload    string      `json:"workload"`
	Fingerprint string      `json:"fingerprint"`
	Nrow        int         `json:"nrow"`
	Ncol        int         `json:"ncol"`
	N           int64       `json:"n"`
	Mean        []JSONFloat `json:"mean"`
	Var         []JSONFloat `json:"var"`
	AbsErr      []JSONFloat `json:"abs_err"`
	RelErr      []JSONFloat `json:"rel_err_pct"`
	MaxAbsErr   JSONFloat   `json:"max_abs_err"`
	MaxRelErr   JSONFloat   `json:"max_rel_err_pct"`
	MaxVar      JSONFloat   `json:"max_var"`
	Gamma       float64     `json:"gamma"`
	MeanSimTime int64       `json:"mean_sim_time_ns"`
}

func reportPayload(id string, state State, workloadN, fp string, rep stat.Report) ReportPayload {
	return ReportPayload{
		ID:          id,
		State:       state,
		Workload:    workloadN,
		Fingerprint: fp,
		Nrow:        rep.Nrow,
		Ncol:        rep.Ncol,
		N:           rep.N,
		Mean:        jsonFloats(rep.Mean),
		Var:         jsonFloats(rep.Var),
		AbsErr:      jsonFloats(rep.AbsErr),
		RelErr:      jsonFloats(rep.RelErr),
		MaxAbsErr:   JSONFloat(rep.MaxAbsErr),
		MaxRelErr:   JSONFloat(rep.MaxRelErr),
		MaxVar:      JSONFloat(rep.MaxVar),
		Gamma:       rep.Gamma,
		MeanSimTime: rep.MeanSimTime.Nanoseconds(),
	}
}

// statusLocked builds r's status snapshot. Caller holds m.mu.
func (m *Manager) statusLocked(r *run) RunStatus {
	st := RunStatus{
		ID:          r.id,
		State:       r.state,
		Error:       r.errMsg,
		Workload:    r.workloadN,
		Fingerprint: r.fingerprint,
		Scenario:    json.RawMessage(r.scenario),
		SeqNum:      r.sub.SeqNum,
		MaxSamples:  r.sub.MaxSamples,
		PassEvery:   r.sub.PassEvery,
		LeaseSize:   r.sub.LeaseSize,
		Leases: LeaseCounters{
			Total:       r.leaseTotal,
			Granted:     r.nGranted,
			Outstanding: len(r.outstanding),
			Pending:     len(r.pending),
			Completed:   r.nCompleted,
			Reissued:    r.nReissued,
			Nacks:       r.nNacks,
		},
		SubmittedAt: r.submitted,
	}
	if !r.started.IsZero() {
		t := r.started
		st.StartedAt = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.FinishedAt = &t
	}
	switch {
	case r.hasReport:
		st.N = r.rep.N
		st.MaxRelErr = JSONFloat(r.rep.MaxRelErr)
	case r.eng != nil:
		p := r.eng.Progress()
		st.N = p.N
		st.MaxRelErr = JSONFloat(p.MaxRelErr)
	}
	return st
}

// Runs returns every run's status, newest submission last.
func (m *Manager) Runs() []RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunStatus, 0, len(m.order))
	for _, r := range m.order {
		out = append(out, m.statusLocked(r))
	}
	return out
}

// Run returns one run's status.
func (m *Manager) Run(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.runs[id]
	if r == nil {
		return RunStatus{}, ErrNotFound
	}
	return m.statusLocked(r), nil
}

// Report returns the final report of a terminal run that produced one.
func (m *Manager) Report(id string) (ReportPayload, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.runs[id]
	if r == nil {
		return ReportPayload{}, ErrNotFound
	}
	if !r.state.Terminal() || !r.hasReport {
		return ReportPayload{}, ErrNotDone
	}
	return reportPayload(r.id, r.state, r.workloadN, r.fingerprint, r.rep), nil
}

// ServiceStatus is the manager's /statusz contribution.
type ServiceStatus struct {
	Runs     int            `json:"runs"`
	Active   int            `json:"active"`
	Queued   int            `json:"queued"`
	Workers  int            `json:"workers"`
	States   map[string]int `json:"states"`
	Epoch    uint64         `json:"epoch"`
	Recovery RecoveryInfo   `json:"recovery"`
}

// Status summarizes the service for /statusz.
func (m *Manager) Status() ServiceStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := ServiceStatus{
		Runs:     len(m.order),
		Active:   m.active,
		Queued:   len(m.queue),
		Workers:  len(m.workers),
		States:   map[string]int{},
		Epoch:    m.epoch,
		Recovery: m.recInfo,
	}
	for _, r := range m.order {
		st.States[string(r.state)]++
	}
	return st
}

// httpError maps manager errors onto statuses and writes a JSON body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrTerminal):
		code = http.StatusConflict
	case errors.Is(err, ErrNotDone):
		code = http.StatusConflict
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// methodNotAllowed answers 405 with the route's Allow header and the
// same JSON error envelope every other API error uses — ServeMux's
// built-in method matching would answer in plain text without Allow,
// so the routes below dispatch methods by hand.
func methodNotAllowed(w http.ResponseWriter, r *http.Request, allow string) {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed,
		map[string]string{"error": fmt.Sprintf("runmgr: method %s not allowed (allow: %s)", r.Method, allow)})
}

// Handler returns the run-control API:
//
//	POST   /runs             submit a Submission        → 202 RunStatus
//	GET    /runs             list runs                  → 200 {"runs": [...]}
//	GET    /runs/{id}        one run's status           → 200 RunStatus
//	GET    /runs/{id}/report final report               → 200 ReportPayload
//	DELETE /runs/{id}        cancel                     → 200 RunStatus
//
// Mount it on the ops server via obs.ServerConfig.Routes so one
// listener serves /metrics, /statusz and the control plane.
//
// Every error — wrong method (405 + Allow), unknown path (404), bad
// body, manager rejection — is the same JSON envelope:
// {"error": "..."}. While startup recovery is replaying, every route
// answers 503 with a Retry-After header; submission bodies are capped
// at 1 MiB (413).
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			m.handleSubmit(w, r)
		case http.MethodGet, http.MethodHead:
			runs := m.Runs()
			sort.SliceStable(runs, func(i, j int) bool { return runs[i].ID < runs[j].ID })
			writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
		default:
			methodNotAllowed(w, r, "GET, HEAD, POST")
		}
	})
	mux.HandleFunc("/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			st, err := m.Run(r.PathValue("id"))
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		case http.MethodDelete:
			st, err := m.Cancel(r.PathValue("id"))
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		default:
			methodNotAllowed(w, r, "DELETE, GET, HEAD")
		}
	})
	mux.HandleFunc("/runs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			rep, err := m.Report(r.PathValue("id"))
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, rep)
		default:
			methodNotAllowed(w, r, "GET, HEAD")
		}
	})
	// Everything else under this handler is an unknown route; answer in
	// the API's JSON envelope instead of ServeMux's plain-text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("runmgr: no such route %s", r.URL.Path)})
	})
	return m.recoveryGate(mux)
}

// handleSubmit decodes and submits POST /runs.
func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmissionBytes)
	var sub Submission
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("runmgr: submission exceeds %d bytes", tooBig.Limit)})
			return
		}
		httpError(w, fmt.Errorf("runmgr: invalid submission: %w", err))
		return
	}
	st, err := m.Submit(sub)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// maxSubmissionBytes caps POST /runs bodies: a submission is a small
// scenario document, and an unbounded read is a trivial way to wedge
// the coordinator's ops listener.
const maxSubmissionBytes = 1 << 20

// recoveryGate answers 503 with Retry-After while startup recovery is
// still replaying durable state — clients see a retriable condition
// instead of a half-rehydrated registry.
func (m *Manager) recoveryGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m.recovering.Load() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "runmgr: service recovery in progress, retry shortly"})
			return
		}
		next.ServeHTTP(w, r)
	})
}
