package runmgr

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/workload"
)

// FleetServiceName is the RPC service the run manager exposes to its
// worker fleet. It is distinct from the single-run cluster protocol
// (cluster.ServiceName): a fleet worker serves many runs and pulls
// work instead of being bound to one job at registration.
const FleetServiceName = "ParmoncFleet"

// AttachArgs/AttachReply: a fleet worker joins the pool. ClientID makes
// the attach idempotent across at-least-once retries — a retried attach
// with the same ClientID returns the original worker index.
type AttachArgs struct {
	Hostname string
	ClientID string
}

type AttachReply struct {
	Worker int
	// Epoch is the service epoch of the incarnation that admitted the
	// worker. The worker echoes it on every subsequent call; after a
	// coordinator restart the echo no longer matches and the call is
	// fenced (pushes) or redirected to re-attach (pulls) — the guarantee
	// that a grant from a dead incarnation can never double-merge.
	Epoch uint64
}

// PullArgs/PullReply: a worker asks the fair-share scheduler for work.
// Granted=false means "nothing for you right now"; Stop means the
// service is shutting down; Reattach means the worker's incarnation
// died and it should attach again (keeping its caches). Epoch zero on
// any args means unfenced — the in-process protocol tests predate
// epochs and a direct caller opts out of fencing.
//
// Wait is the long-poll ask: how long the worker is willing to have
// the coordinator hold an ungranted pull open waiting for work. The
// effective hold is the smaller of Wait and the coordinator's
// Config.PullWait; zero asks for the legacy immediate answer. Waited
// in the reply tells the worker whether the coordinator honored a
// hold — when it did, pulling again immediately is the intended
// cadence; when it did not (long-poll disabled server-side), the
// worker falls back to jittered polling.
type PullArgs struct {
	Worker int
	Epoch  uint64
	Wait   time.Duration
}

type PullReply struct {
	Granted  bool
	Stop     bool
	Reattach bool
	Waited   bool
	Task     Task
}

// Task is one granted lease plus everything a worker needs to execute
// it without any local state about the run: the canonical scenario (the
// worker resolves it against its own registry and must reproduce the
// coordinator's fingerprint bit-for-bit), the matrix dimensions, the
// RNG parameters and experiment subsequence, and the push cadence.
type Task struct {
	RunID       string
	Scenario    string // canonical workload.Spec JSON
	Fingerprint string
	Nrow, Ncol  int
	SeqNum      uint64
	Params      rng.Params
	Gamma       float64
	PassEvery   int64
	Lease       collect.Lease
}

// TaskPushArgs/TaskPushReply: one subtotal push. Done is cumulative
// within the granted lease window. Fenced tells the worker its grant
// was revoked (abandon the task, pull again); Final tells it the run
// finished (same reaction).
type TaskPushArgs struct {
	Worker  int
	Epoch   uint64
	RunID   string
	LeaseID uint64
	Done    int64
	Snap    stat.Snapshot
}

type TaskPushReply struct {
	Fenced bool
	Final  bool
}

// PushEntry is one completed push window inside a PushBatch: the same
// payload as a TaskPushArgs, minus the per-call worker identity that
// the batch envelope carries once.
type PushEntry struct {
	RunID   string
	LeaseID uint64
	Done    int64
	Snap    stat.Snapshot
}

// PushBatchArgs/PushBatchReply: the coalesced push path. A worker
// batches the windows it completed — possibly across several runs and
// leases — into one RPC; the coordinator applies them in order, so for
// any single lease the done ledger sees the same strictly-increasing
// window sequence it would from unbatched pushes, and dedups each
// entry on the same absolute substream position. Entries answers
// verdicts positionally; Err carries an application-level rejection of
// that entry alone (the rest of the batch still lands).
//
// RetryAfter is soft backpressure: when positive, some pushed run's
// collector saves are falling behind its averaging period, and the
// worker should stretch its flush cadence by at least this much
// instead of piling more windows on. It is advisory — ignoring it
// costs throughput, never correctness.
type PushBatchArgs struct {
	Worker  int
	Epoch   uint64
	Entries []PushEntry
}

type PushEntryReply struct {
	Fenced bool
	Final  bool
	Err    string
}

type PushBatchReply struct {
	Entries    []PushEntryReply
	RetryAfter time.Duration
}

// NackArgs: the worker cannot serve this task's scenario (workload not
// registered, or it resolves to a different fingerprint). The lease is
// requeued for other workers and this worker is excluded from the run.
type NackArgs struct {
	Worker  int
	Epoch   uint64
	RunID   string
	LeaseID uint64
	Reason  string
}

type NackReply struct{}

// FailArgs: a realization failed definitively; the run fails. Epoch is
// captured when the task starts: a failure detected against a dead
// incarnation (e.g. its push path went down with it) is ignored by the
// restarted service instead of killing a recovering run.
type FailArgs struct {
	Worker  int
	Epoch   uint64
	RunID   string
	LeaseID uint64
	Reason  string
}

type FailReply struct{}

// DetachArgs: the worker leaves the pool; its leases are reissued.
type DetachArgs struct {
	Worker int
	Epoch  uint64
}

type DetachReply struct{}

// fleetAPI is the transport-neutral fleet protocol: implemented by
// localFleet (direct method calls, the in-process fleet) and rpcFleet
// (net/rpc over TCP through a ResilientClient). The worker loop is
// written against this interface once, so both transports execute
// byte-identical work.
type fleetAPI interface {
	Attach(ctx context.Context, a AttachArgs) (AttachReply, error)
	Pull(ctx context.Context, a PullArgs) (PullReply, error)
	Push(ctx context.Context, a TaskPushArgs) (TaskPushReply, error)
	PushBatch(ctx context.Context, a PushBatchArgs) (PushBatchReply, error)
	Nack(ctx context.Context, a NackArgs) error
	Fail(ctx context.Context, a FailArgs) error
	Detach(ctx context.Context, a DetachArgs) error
}

// localFleet calls the manager directly — the in-process transport.
type localFleet struct{ m *Manager }

func (lf localFleet) Attach(_ context.Context, a AttachArgs) (AttachReply, error) {
	return lf.m.attach(a)
}
func (lf localFleet) Pull(ctx context.Context, a PullArgs) (PullReply, error) {
	// The worker's context reaches the long-poll, so a canceled local
	// worker unparks immediately instead of riding out the hold.
	return lf.m.pullTask(ctx, a)
}
func (lf localFleet) Push(_ context.Context, a TaskPushArgs) (TaskPushReply, error) {
	return lf.m.pushTask(a)
}
func (lf localFleet) PushBatch(_ context.Context, a PushBatchArgs) (PushBatchReply, error) {
	return lf.m.pushBatch(a)
}
func (lf localFleet) Nack(_ context.Context, a NackArgs) error { return lf.m.nackTask(a) }
func (lf localFleet) Fail(_ context.Context, a FailArgs) error { return lf.m.failTask(a) }
func (lf localFleet) Detach(_ context.Context, a DetachArgs) error {
	return lf.m.detach(a)
}

// fleetService adapts the manager to net/rpc method shapes.
type fleetService struct{ m *Manager }

func (s *fleetService) Attach(a AttachArgs, r *AttachReply) error {
	rep, err := s.m.attach(a)
	*r = rep
	return err
}

func (s *fleetService) Pull(a PullArgs, r *PullReply) error {
	// No per-call context over net/rpc; a parked pull is unblocked by
	// its deadline or by the manager waking/stopping it.
	rep, err := s.m.pullTask(context.Background(), a)
	*r = rep
	return err
}

func (s *fleetService) Push(a TaskPushArgs, r *TaskPushReply) error {
	rep, err := s.m.pushTask(a)
	*r = rep
	return err
}

func (s *fleetService) PushBatch(a PushBatchArgs, r *PushBatchReply) error {
	rep, err := s.m.pushBatch(a)
	*r = rep
	return err
}

func (s *fleetService) Nack(a NackArgs, _ *NackReply) error { return s.m.nackTask(a) }

func (s *fleetService) Fail(a FailArgs, _ *FailReply) error { return s.m.failTask(a) }

func (s *fleetService) Detach(a DetachArgs, _ *DetachReply) error { return s.m.detach(a) }

// ServeFleet exposes the fleet protocol on ln. Multiple listeners may
// serve one manager; all close with the manager.
func (m *Manager) ServeFleet(ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(FleetServiceName, &fleetService{m}); err != nil {
		return err
	}
	m.lnMu.Lock()
	if m.lnClosed {
		m.lnMu.Unlock()
		ln.Close()
		return ErrClosed
	}
	m.lns = append(m.lns, ln)
	m.lnMu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			m.lnMu.Lock()
			if m.lnClosed {
				m.lnMu.Unlock()
				conn.Close()
				return
			}
			m.conns[conn] = struct{}{}
			m.lnMu.Unlock()
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				srv.ServeConn(conn)
				m.lnMu.Lock()
				delete(m.conns, conn)
				m.lnMu.Unlock()
				conn.Close()
			}()
		}
	}()
	return nil
}

// rpcFleet is the TCP transport: every call goes through a
// ResilientClient, so transport faults are retried with backoff and
// reconnect while application rejections (rpc.ServerError) stay
// definitive. The protocol is retry-safe by construction: Attach is
// idempotent per ClientID, Push and PushBatch dedup on the absolute
// substream sequence, and Nack/Fail/Detach are no-ops once applied.
type rpcFleet struct{ rc *cluster.ResilientClient }

func (rf rpcFleet) Attach(ctx context.Context, a AttachArgs) (AttachReply, error) {
	var r AttachReply
	err := rf.rc.Call(ctx, FleetServiceName+".Attach", a, &r)
	return r, err
}

func (rf rpcFleet) Pull(ctx context.Context, a PullArgs) (PullReply, error) {
	var r PullReply
	// A long-polled pull is parked server-side on purpose; budget the
	// attempt for the requested hold plus the normal call headroom so
	// the resilient client does not tear down a healthy parked call.
	timeout := rf.rc.Policy().CallTimeout + a.Wait
	err := rf.rc.CallWithDeadline(ctx, FleetServiceName+".Pull", a, &r, timeout)
	return r, err
}

func (rf rpcFleet) Push(ctx context.Context, a TaskPushArgs) (TaskPushReply, error) {
	var r TaskPushReply
	err := rf.rc.Call(ctx, FleetServiceName+".Push", a, &r)
	return r, err
}

func (rf rpcFleet) PushBatch(ctx context.Context, a PushBatchArgs) (PushBatchReply, error) {
	var r PushBatchReply
	err := rf.rc.Call(ctx, FleetServiceName+".PushBatch", a, &r)
	return r, err
}

func (rf rpcFleet) Nack(ctx context.Context, a NackArgs) error {
	var r NackReply
	return rf.rc.Call(ctx, FleetServiceName+".Nack", a, &r)
}

func (rf rpcFleet) Fail(ctx context.Context, a FailArgs) error {
	var r FailReply
	return rf.rc.Call(ctx, FleetServiceName+".Fail", a, &r)
}

func (rf rpcFleet) Detach(ctx context.Context, a DetachArgs) error {
	var r DetachReply
	return rf.rc.Call(ctx, FleetServiceName+".Detach", a, &r)
}

// FleetWorkerConfig tunes one fleet worker.
type FleetWorkerConfig struct {
	// Hostname labels the worker in journals; default os.Hostname.
	Hostname string
	// ClientID makes attach idempotent across retries; default a
	// process-unique string.
	ClientID string
	// Poll is the base idle period of the polling fallback, used when
	// long-poll is disabled (and as the first step of its jittered
	// exponential backoff). Default 50 ms.
	Poll time.Duration
	// PullWait asks the coordinator to hold an ungranted pull open this
	// long waiting for work (long-poll); the coordinator may cap it.
	// Zero selects 10 s; negative disables long-poll and the worker
	// polls at Poll cadence with jittered backoff.
	PullWait time.Duration
	// FlushInterval is the target push cadence: completed push windows
	// are coalesced into one PushBatch until this much time has passed
	// since the last flush (the batch also flushes at MaxBatch, and
	// always before the next pull). Zero selects 50 ms; negative
	// disables coalescing — every window is pushed in its own RPC, the
	// legacy protocol.
	FlushInterval time.Duration
	// MaxBatch caps the windows one PushBatch may carry. Default 64.
	MaxBatch int
	// Retry tunes the TCP transport (ignored by local workers).
	Retry cluster.RetryPolicy
}

var fleetClientSeq atomic.Int64

func (cfg FleetWorkerConfig) withDefaults() FleetWorkerConfig {
	if cfg.Hostname == "" {
		cfg.Hostname, _ = os.Hostname()
	}
	if cfg.ClientID == "" {
		cfg.ClientID = fmt.Sprintf("%s-%d-%d", cfg.Hostname, os.Getpid(), fleetClientSeq.Add(1))
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.PullWait == 0 {
		cfg.PullWait = 10 * time.Second
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 50 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	return cfg
}

// FleetWorkerReport summarizes one worker's service.
type FleetWorkerReport struct {
	Worker       int
	Realizations int64
	Pushes       int64 // push windows delivered (batched or not)
	Batches      int64 // PushBatch RPCs sent (coalesced mode only)
	Nacks        int64
	Retries      int64 // transport retries (TCP workers only)
	Reconnects   int64 // redials after connection loss (TCP workers only)
}

// maxReattachStreak bounds consecutive Reattach redirects: a
// coordinator stuck answering Reattach (e.g. crash-looping through
// recovery) must not hold the worker in an infinite attach cycle.
const maxReattachStreak = 5

// pollBackoff is the reusable idle timer: one time.Timer for the
// worker's lifetime (instead of a fresh time.After channel every
// round) plus jittered exponential growth, so a fleet of idle workers
// neither allocates per poll nor thunders in lockstep.
type pollBackoff struct {
	base, max time.Duration
	streak    int
	timer     *time.Timer
	rnd       *rand.Rand
}

func newPollBackoff(base time.Duration, seed int64) *pollBackoff {
	if seed == 0 {
		seed = int64(os.Getpid()) + fleetClientSeq.Load() + 1
	}
	max := 16 * base
	if max > time.Second {
		max = time.Second
	}
	if max < base {
		max = base
	}
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &pollBackoff{base: base, max: max, timer: t, rnd: rand.New(rand.NewSource(seed))}
}

// next returns the jittered delay for the current idle streak and
// advances the streak: base, 2·base, 4·base, ... capped, ±10%.
func (p *pollBackoff) next() time.Duration {
	d := float64(p.base)
	for i := 0; i < p.streak && d < float64(p.max); i++ {
		d *= 2
	}
	if d > float64(p.max) {
		d = float64(p.max)
	}
	if p.streak < 30 {
		p.streak++
	}
	d *= 0.9 + 0.2*p.rnd.Float64()
	return time.Duration(d)
}

func (p *pollBackoff) reset() { p.streak = 0 }

// sleep waits out the next backoff step on the reused timer; false
// means the context was canceled first.
func (p *pollBackoff) sleep(ctx context.Context) bool {
	p.timer.Reset(p.next())
	select {
	case <-ctx.Done():
		if !p.timer.Stop() {
			<-p.timer.C
		}
		return false
	case <-p.timer.C:
		return true
	}
}

func (p *pollBackoff) stop() { p.timer.Stop() }

// leaseKey identifies one grant across runs (lease IDs are only unique
// within a run).
type leaseKey struct {
	run string
	id  uint64
}

// pushBatcher coalesces completed push windows into PushBatch RPCs.
// Windows accumulate across tasks (and runs) and flush when the batch
// is full, when the cadence interval has elapsed, and always before
// the worker pulls again — a long-poll may park the worker for
// seconds, and a buffered window may be exactly the one its run's
// completion is waiting on. Buffering snapshots is safe because
// stat.Accumulator.Snapshot is a deep copy: the worker resets its
// local accumulator and keeps simulating while windows wait.
//
// The reply's RetryAfter stretches the cadence (backpressure from a
// collector whose saves are falling behind); replies without it decay
// the cadence back toward the configured interval.
type pushBatcher struct {
	api     fleetAPI
	cfg     FleetWorkerConfig
	rep     *FleetWorkerReport
	entries []PushEntry
	last    time.Time
	cadence time.Duration
	ended   map[leaseKey]bool // leases fenced, finalized or rejected by a flush
}

func newPushBatcher(api fleetAPI, cfg FleetWorkerConfig, rep *FleetWorkerReport) *pushBatcher {
	return &pushBatcher{
		api:     api,
		cfg:     cfg,
		rep:     rep,
		last:    time.Now(),
		cadence: cfg.FlushInterval,
		ended:   map[leaseKey]bool{},
	}
}

// add appends one completed window and flushes when the batch is full
// or the cadence elapsed. The returned error reflects a failed flush;
// callers also check done() for their own lease's verdict.
func (b *pushBatcher) add(ctx context.Context, worker int, epoch uint64, e PushEntry) error {
	b.entries = append(b.entries, e)
	if len(b.entries) >= b.cfg.MaxBatch || time.Since(b.last) >= b.cadence {
		return b.flush(ctx, worker, epoch)
	}
	return nil
}

// done reports whether a flush ended the given lease: fenced, run
// finished, or the entry was rejected.
func (b *pushBatcher) done(runID string, leaseID uint64) bool {
	return b.ended[leaseKey{runID, leaseID}]
}

// flush sends the buffered windows as one PushBatch and applies the
// per-entry verdicts. A transport failure (or a rejected batch call)
// fails each affected lease the way an unbatched push failure would:
// report via Fail and abandon — an unreachable coordinator ignores the
// report and the leases time out and reissue.
func (b *pushBatcher) flush(ctx context.Context, worker int, epoch uint64) error {
	if len(b.entries) == 0 {
		return nil
	}
	args := PushBatchArgs{Worker: worker, Epoch: epoch, Entries: b.entries}
	b.entries = nil
	b.last = time.Now()
	r, err := b.api.PushBatch(ctx, args)
	if err != nil {
		if ctx.Err() != nil {
			return err
		}
		seen := map[leaseKey]bool{}
		for _, e := range args.Entries {
			k := leaseKey{e.RunID, e.LeaseID}
			b.ended[k] = true
			if seen[k] {
				continue
			}
			seen[k] = true
			_ = b.api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: e.RunID, LeaseID: e.LeaseID, Reason: err.Error()})
		}
		return err
	}
	b.rep.Pushes += int64(len(args.Entries))
	b.rep.Batches++
	for i, er := range r.Entries {
		if i >= len(args.Entries) {
			break
		}
		e := args.Entries[i]
		switch {
		case er.Err != "":
			b.ended[leaseKey{e.RunID, e.LeaseID}] = true
			_ = b.api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: e.RunID, LeaseID: e.LeaseID, Reason: er.Err})
		case er.Fenced || er.Final:
			b.ended[leaseKey{e.RunID, e.LeaseID}] = true
		}
	}
	if r.RetryAfter > b.cfg.FlushInterval {
		b.cadence = r.RetryAfter
	} else if b.cadence > b.cfg.FlushInterval {
		b.cadence = b.cfg.FlushInterval + (b.cadence-b.cfg.FlushInterval)/2
	}
	return nil
}

// runFleetLoop is the worker side of the fleet protocol, shared by
// both transports: attach once, then pull → execute → push until the
// service says Stop or the context is canceled.
func runFleetLoop(ctx context.Context, api fleetAPI, cfg FleetWorkerConfig) (FleetWorkerReport, error) {
	cfg = cfg.withDefaults()
	var rep FleetWorkerReport
	at, err := api.Attach(ctx, AttachArgs{Hostname: cfg.Hostname, ClientID: cfg.ClientID})
	if err != nil {
		return rep, fmt.Errorf("runmgr: fleet attach: %w", err)
	}
	rep.Worker = at.Worker
	defer func() {
		// Detach even when the context is already canceled, so the
		// scheduler reissues our leases immediately instead of waiting
		// for the lease timeout.
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = api.Detach(dctx, DetachArgs{Worker: at.Worker, Epoch: at.Epoch})
	}()
	realizers := map[string]core.Realization{}
	var batcher *pushBatcher
	if cfg.FlushInterval >= 0 {
		batcher = newPushBatcher(api, cfg, &rep)
	}
	idle := newPollBackoff(cfg.Poll, cfg.Retry.Seed)
	defer idle.stop()
	reattach := newPollBackoff(cfg.Poll, cfg.Retry.Seed+1)
	defer reattach.stop()
	reattaches := 0
	wait := cfg.PullWait
	if wait < 0 {
		wait = 0
	}
	for {
		if ctx.Err() != nil {
			return rep, nil
		}
		// Flush coalesced windows before asking for more work: the pull
		// may park in the coordinator's long-poll, and a buffered window
		// may be the one its run's completion is waiting on.
		if batcher != nil {
			_ = batcher.flush(ctx, at.Worker, at.Epoch)
			if ctx.Err() != nil {
				return rep, nil
			}
		}
		pr, err := api.Pull(ctx, PullArgs{Worker: at.Worker, Epoch: at.Epoch, Wait: wait})
		if err != nil {
			if ctx.Err() != nil {
				return rep, nil
			}
			return rep, fmt.Errorf("runmgr: fleet pull: %w", err)
		}
		if pr.Stop {
			return rep, nil
		}
		if pr.Reattach {
			// The coordinator restarted under a new epoch. Re-attach and
			// keep serving — realizer caches stay valid (same scenarios),
			// only the worker identity and epoch are reissued. A
			// coordinator mid-recovery can keep answering Reattach, so
			// back off between attempts and give up after a bounded
			// streak instead of retrying in a tight storm.
			reattaches++
			if reattaches > maxReattachStreak {
				return rep, fmt.Errorf("runmgr: fleet worker %d: %d consecutive re-attach redirects, coordinator not converging", at.Worker, reattaches)
			}
			if !reattach.sleep(ctx) {
				return rep, nil
			}
			at, err = api.Attach(ctx, AttachArgs{Hostname: cfg.Hostname, ClientID: cfg.ClientID})
			if err != nil {
				if ctx.Err() != nil {
					return rep, nil
				}
				return rep, fmt.Errorf("runmgr: fleet re-attach: %w", err)
			}
			rep.Worker = at.Worker
			continue
		}
		reattaches = 0
		reattach.reset()
		if !pr.Granted {
			if pr.Waited {
				// The coordinator already held this pull for the long-poll
				// window; pulling right back is the intended ~1 RPC per
				// wait window cadence.
				idle.reset()
				continue
			}
			if !idle.sleep(ctx) {
				return rep, nil
			}
			continue
		}
		idle.reset()
		executeTask(ctx, api, at.Worker, at.Epoch, pr.Task, realizers, batcher, &rep)
	}
}

// executeTask simulates one granted lease window, recording subtotals
// at PassEvery boundaries and at the window end — into the batcher
// when coalescing, as one Push RPC each otherwise. It never flushes a
// partial window: an abandoned task (cancellation, fencing, run
// completion) leaves the done ledger at the last acked boundary and the
// remainder is recomputed from there — that discipline is what makes
// each processor shard's push-window sequence a pure function of the
// lease partition and PassEvery, and so the report bit-identical no
// matter how execution interleaves or how windows are batched.
func executeTask(ctx context.Context, api fleetAPI, worker int, epoch uint64, task Task, realizers map[string]core.Realization, batcher *pushBatcher, rep *FleetWorkerReport) {
	realize, ok := realizers[task.RunID]
	if !ok {
		r, err := resolveTask(task, worker)
		if err != nil {
			rep.Nacks++
			_ = api.Nack(ctx, NackArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: task.Lease.ID, Reason: err.Error()})
			return
		}
		realize = r
		realizers[task.RunID] = realize
	}
	l := task.Lease
	stream, err := rng.NewStream(task.Params, rng.Coord{
		Experiment: task.SeqNum, Processor: l.Proc, Realization: l.Start,
	})
	if err != nil {
		_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
		return
	}
	local := stat.New(task.Nrow, task.Ncol)
	out := make([]float64, task.Nrow*task.Ncol)
	var done int64
	for k := int64(0); k < l.Count; k++ {
		if ctx.Err() != nil {
			return // abandon mid-window; nothing partial leaves this worker
		}
		if k > 0 {
			if err := stream.NextRealization(); err != nil {
				_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
				return
			}
		}
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := callRealization(realize, stream, out); err != nil {
			_ = api.Fail(ctx, FailArgs{
				Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID,
				Reason: fmt.Sprintf("realization %d: %v", uint64(k)+l.Start, err),
			})
			return
		}
		if err := local.AddTimed(out, time.Since(t0)); err != nil {
			_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
			return
		}
		rep.Realizations++
		if local.N() >= task.PassEvery || k == l.Count-1 {
			done += local.N()
			if batcher != nil {
				// Coalesced path: buffer the window (Snapshot is a deep
				// copy) and keep simulating; the batcher decides when the
				// wire sees it. A flush verdict that ended this lease —
				// fenced, run finished, entry rejected — abandons the task
				// exactly as an unbatched reply would.
				if err := batcher.add(ctx, worker, epoch, PushEntry{
					RunID: task.RunID, LeaseID: l.ID, Done: done, Snap: local.Snapshot(),
				}); err != nil {
					return
				}
				if batcher.done(task.RunID, l.ID) {
					return
				}
				local.Reset()
				continue
			}
			pres, err := api.Push(ctx, TaskPushArgs{
				Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Done: done, Snap: local.Snapshot(),
			})
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				// Either the coordinator definitively rejected the
				// snapshot or the transport gave up; in both cases this
				// worker cannot advance the run. Report and abandon —
				// an unreachable coordinator ignores the report and the
				// lease times out.
				_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
				return
			}
			rep.Pushes++
			if pres.Fenced || pres.Final {
				return
			}
			local.Reset()
		}
	}
}

// resolveTask resolves the task's scenario against this process's
// workload registry and verifies the fingerprint matches the
// coordinator's — the cluster identity check, extended to a fleet that
// serves many scenarios.
func resolveTask(task Task, worker int) (core.Realization, error) {
	spec, err := workload.ParseSpec([]byte(task.Scenario))
	if err != nil {
		return nil, err
	}
	def, v, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	id, err := def.Identity(v)
	if err != nil {
		return nil, err
	}
	if fp := id.Fingerprint(); fp != task.Fingerprint {
		return nil, fmt.Errorf("workload %s resolves to %s here, but the run wants %s",
			spec.Workload, fp, task.Fingerprint)
	}
	if id.Nrow != task.Nrow || id.Ncol != task.Ncol {
		return nil, fmt.Errorf("workload %s is %d×%d here, but the run is %d×%d",
			spec.Workload, id.Nrow, id.Ncol, task.Nrow, task.Ncol)
	}
	factory, err := def.Factory(v)
	if err != nil {
		return nil, err
	}
	return factory(worker)
}

// callRealization converts a panicking user routine into an error, as
// the single-run engine does — one bad realization fails its run
// cleanly instead of taking the whole fleet worker down.
func callRealization(r core.Realization, stream *rng.Stream, out []float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runmgr: realization panicked: %v", p)
		}
	}()
	return r(stream, out)
}

// FleetGroup is a set of running fleet workers.
type FleetGroup struct {
	wg      sync.WaitGroup
	mu      sync.Mutex
	reports []FleetWorkerReport
	errs    []error
}

// Wait blocks until every worker in the group has exited and returns
// their reports and the first error, if any.
func (g *FleetGroup) Wait() ([]FleetWorkerReport, error) {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	var err error
	if len(g.errs) > 0 {
		err = g.errs[0]
	}
	return g.reports, err
}

// StartLocalWorkers runs n in-process fleet workers against the
// manager — the goroutine transport. They exit when ctx is canceled or
// the manager closes.
func (m *Manager) StartLocalWorkers(ctx context.Context, n int, cfg FleetWorkerConfig) *FleetGroup {
	g := &FleetGroup{}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond // in-process polling is cheap
	}
	for i := 0; i < n; i++ {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			c := cfg
			c.ClientID = "" // each worker gets its own identity
			rep, err := runFleetLoop(ctx, localFleet{m}, c)
			g.mu.Lock()
			defer g.mu.Unlock()
			g.reports = append(g.reports, rep)
			if err != nil {
				g.errs = append(g.errs, err)
			}
		}()
	}
	return g
}

// RunFleetWorker serves the manager at addr over TCP until ctx is
// canceled or the service stops — the `parmonc worker -service` loop.
func RunFleetWorker(ctx context.Context, addr string, cfg FleetWorkerConfig) (FleetWorkerReport, error) {
	cfg = cfg.withDefaults()
	rc := cluster.NewResilientClient(addr, cfg.Retry)
	defer rc.Close()
	rep, err := runFleetLoop(ctx, rpcFleet{rc}, cfg)
	stats := rc.Stats()
	rep.Retries = stats.Retries
	rep.Reconnects = stats.Reconnects
	return rep, err
}
