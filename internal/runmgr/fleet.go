package runmgr

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/workload"
)

// FleetServiceName is the RPC service the run manager exposes to its
// worker fleet. It is distinct from the single-run cluster protocol
// (cluster.ServiceName): a fleet worker serves many runs and pulls
// work instead of being bound to one job at registration.
const FleetServiceName = "ParmoncFleet"

// AttachArgs/AttachReply: a fleet worker joins the pool. ClientID makes
// the attach idempotent across at-least-once retries — a retried attach
// with the same ClientID returns the original worker index.
type AttachArgs struct {
	Hostname string
	ClientID string
}

type AttachReply struct {
	Worker int
	// Epoch is the service epoch of the incarnation that admitted the
	// worker. The worker echoes it on every subsequent call; after a
	// coordinator restart the echo no longer matches and the call is
	// fenced (pushes) or redirected to re-attach (pulls) — the guarantee
	// that a grant from a dead incarnation can never double-merge.
	Epoch uint64
}

// PullArgs/PullReply: a worker asks the fair-share scheduler for work.
// Granted=false means "nothing for you right now, poll again"; Stop
// means the service is shutting down; Reattach means the worker's
// incarnation died and it should attach again (keeping its caches).
// Epoch zero on any args means unfenced — the in-process protocol tests
// predate epochs and a direct caller opts out of fencing.
type PullArgs struct {
	Worker int
	Epoch  uint64
}

type PullReply struct {
	Granted  bool
	Stop     bool
	Reattach bool
	Task     Task
}

// Task is one granted lease plus everything a worker needs to execute
// it without any local state about the run: the canonical scenario (the
// worker resolves it against its own registry and must reproduce the
// coordinator's fingerprint bit-for-bit), the matrix dimensions, the
// RNG parameters and experiment subsequence, and the push cadence.
type Task struct {
	RunID       string
	Scenario    string // canonical workload.Spec JSON
	Fingerprint string
	Nrow, Ncol  int
	SeqNum      uint64
	Params      rng.Params
	Gamma       float64
	PassEvery   int64
	Lease       collect.Lease
}

// TaskPushArgs/TaskPushReply: one subtotal push. Done is cumulative
// within the granted lease window. Fenced tells the worker its grant
// was revoked (abandon the task, pull again); Final tells it the run
// finished (same reaction).
type TaskPushArgs struct {
	Worker  int
	Epoch   uint64
	RunID   string
	LeaseID uint64
	Done    int64
	Snap    stat.Snapshot
}

type TaskPushReply struct {
	Fenced bool
	Final  bool
}

// NackArgs: the worker cannot serve this task's scenario (workload not
// registered, or it resolves to a different fingerprint). The lease is
// requeued for other workers and this worker is excluded from the run.
type NackArgs struct {
	Worker  int
	Epoch   uint64
	RunID   string
	LeaseID uint64
	Reason  string
}

type NackReply struct{}

// FailArgs: a realization failed definitively; the run fails. Epoch is
// captured when the task starts: a failure detected against a dead
// incarnation (e.g. its push path went down with it) is ignored by the
// restarted service instead of killing a recovering run.
type FailArgs struct {
	Worker  int
	Epoch   uint64
	RunID   string
	LeaseID uint64
	Reason  string
}

type FailReply struct{}

// DetachArgs: the worker leaves the pool; its leases are reissued.
type DetachArgs struct {
	Worker int
	Epoch  uint64
}

type DetachReply struct{}

// fleetAPI is the transport-neutral fleet protocol: implemented by
// localFleet (direct method calls, the in-process fleet) and rpcFleet
// (net/rpc over TCP through a ResilientClient). The worker loop is
// written against this interface once, so both transports execute
// byte-identical work.
type fleetAPI interface {
	Attach(ctx context.Context, a AttachArgs) (AttachReply, error)
	Pull(ctx context.Context, a PullArgs) (PullReply, error)
	Push(ctx context.Context, a TaskPushArgs) (TaskPushReply, error)
	Nack(ctx context.Context, a NackArgs) error
	Fail(ctx context.Context, a FailArgs) error
	Detach(ctx context.Context, a DetachArgs) error
}

// localFleet calls the manager directly — the in-process transport.
type localFleet struct{ m *Manager }

func (lf localFleet) Attach(_ context.Context, a AttachArgs) (AttachReply, error) {
	return lf.m.attach(a)
}
func (lf localFleet) Pull(_ context.Context, a PullArgs) (PullReply, error) {
	return lf.m.pullTask(a)
}
func (lf localFleet) Push(_ context.Context, a TaskPushArgs) (TaskPushReply, error) {
	return lf.m.pushTask(a)
}
func (lf localFleet) Nack(_ context.Context, a NackArgs) error { return lf.m.nackTask(a) }
func (lf localFleet) Fail(_ context.Context, a FailArgs) error { return lf.m.failTask(a) }
func (lf localFleet) Detach(_ context.Context, a DetachArgs) error {
	return lf.m.detach(a)
}

// fleetService adapts the manager to net/rpc method shapes.
type fleetService struct{ m *Manager }

func (s *fleetService) Attach(a AttachArgs, r *AttachReply) error {
	rep, err := s.m.attach(a)
	*r = rep
	return err
}

func (s *fleetService) Pull(a PullArgs, r *PullReply) error {
	rep, err := s.m.pullTask(a)
	*r = rep
	return err
}

func (s *fleetService) Push(a TaskPushArgs, r *TaskPushReply) error {
	rep, err := s.m.pushTask(a)
	*r = rep
	return err
}

func (s *fleetService) Nack(a NackArgs, _ *NackReply) error { return s.m.nackTask(a) }

func (s *fleetService) Fail(a FailArgs, _ *FailReply) error { return s.m.failTask(a) }

func (s *fleetService) Detach(a DetachArgs, _ *DetachReply) error { return s.m.detach(a) }

// ServeFleet exposes the fleet protocol on ln. Multiple listeners may
// serve one manager; all close with the manager.
func (m *Manager) ServeFleet(ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(FleetServiceName, &fleetService{m}); err != nil {
		return err
	}
	m.lnMu.Lock()
	if m.lnClosed {
		m.lnMu.Unlock()
		ln.Close()
		return ErrClosed
	}
	m.lns = append(m.lns, ln)
	m.lnMu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			m.lnMu.Lock()
			if m.lnClosed {
				m.lnMu.Unlock()
				conn.Close()
				return
			}
			m.conns[conn] = struct{}{}
			m.lnMu.Unlock()
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				srv.ServeConn(conn)
				m.lnMu.Lock()
				delete(m.conns, conn)
				m.lnMu.Unlock()
				conn.Close()
			}()
		}
	}()
	return nil
}

// rpcFleet is the TCP transport: every call goes through a
// ResilientClient, so transport faults are retried with backoff and
// reconnect while application rejections (rpc.ServerError) stay
// definitive. The protocol is retry-safe by construction: Attach is
// idempotent per ClientID, Push dedups on the absolute substream
// sequence, and Nack/Fail/Detach are no-ops once applied.
type rpcFleet struct{ rc *cluster.ResilientClient }

func (rf rpcFleet) Attach(ctx context.Context, a AttachArgs) (AttachReply, error) {
	var r AttachReply
	err := rf.rc.Call(ctx, FleetServiceName+".Attach", a, &r)
	return r, err
}

func (rf rpcFleet) Pull(ctx context.Context, a PullArgs) (PullReply, error) {
	var r PullReply
	err := rf.rc.Call(ctx, FleetServiceName+".Pull", a, &r)
	return r, err
}

func (rf rpcFleet) Push(ctx context.Context, a TaskPushArgs) (TaskPushReply, error) {
	var r TaskPushReply
	err := rf.rc.Call(ctx, FleetServiceName+".Push", a, &r)
	return r, err
}

func (rf rpcFleet) Nack(ctx context.Context, a NackArgs) error {
	var r NackReply
	return rf.rc.Call(ctx, FleetServiceName+".Nack", a, &r)
}

func (rf rpcFleet) Fail(ctx context.Context, a FailArgs) error {
	var r FailReply
	return rf.rc.Call(ctx, FleetServiceName+".Fail", a, &r)
}

func (rf rpcFleet) Detach(ctx context.Context, a DetachArgs) error {
	var r DetachReply
	return rf.rc.Call(ctx, FleetServiceName+".Detach", a, &r)
}

// FleetWorkerConfig tunes one fleet worker.
type FleetWorkerConfig struct {
	// Hostname labels the worker in journals; default os.Hostname.
	Hostname string
	// ClientID makes attach idempotent across retries; default a
	// process-unique string.
	ClientID string
	// Poll is how long the worker sleeps when the scheduler has nothing
	// for it. Default 50 ms.
	Poll time.Duration
	// Retry tunes the TCP transport (ignored by local workers).
	Retry cluster.RetryPolicy
}

var fleetClientSeq atomic.Int64

func (cfg FleetWorkerConfig) withDefaults() FleetWorkerConfig {
	if cfg.Hostname == "" {
		cfg.Hostname, _ = os.Hostname()
	}
	if cfg.ClientID == "" {
		cfg.ClientID = fmt.Sprintf("%s-%d-%d", cfg.Hostname, os.Getpid(), fleetClientSeq.Add(1))
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	return cfg
}

// FleetWorkerReport summarizes one worker's service.
type FleetWorkerReport struct {
	Worker       int
	Realizations int64
	Pushes       int64
	Nacks        int64
	Retries      int64 // transport retries (TCP workers only)
	Reconnects   int64 // redials after connection loss (TCP workers only)
}

// runFleetLoop is the worker side of the fleet protocol, shared by
// both transports: attach once, then pull → execute → push until the
// service says Stop or the context is canceled.
func runFleetLoop(ctx context.Context, api fleetAPI, cfg FleetWorkerConfig) (FleetWorkerReport, error) {
	cfg = cfg.withDefaults()
	var rep FleetWorkerReport
	at, err := api.Attach(ctx, AttachArgs{Hostname: cfg.Hostname, ClientID: cfg.ClientID})
	if err != nil {
		return rep, fmt.Errorf("runmgr: fleet attach: %w", err)
	}
	rep.Worker = at.Worker
	defer func() {
		// Detach even when the context is already canceled, so the
		// scheduler reissues our leases immediately instead of waiting
		// for the lease timeout.
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = api.Detach(dctx, DetachArgs{Worker: at.Worker, Epoch: at.Epoch})
	}()
	realizers := map[string]core.Realization{}
	for {
		if ctx.Err() != nil {
			return rep, nil
		}
		pr, err := api.Pull(ctx, PullArgs{Worker: at.Worker, Epoch: at.Epoch})
		if err != nil {
			if ctx.Err() != nil {
				return rep, nil
			}
			return rep, fmt.Errorf("runmgr: fleet pull: %w", err)
		}
		if pr.Stop {
			return rep, nil
		}
		if pr.Reattach {
			// The coordinator restarted under a new epoch. Re-attach and
			// keep serving — realizer caches stay valid (same scenarios),
			// only the worker identity and epoch are reissued.
			at, err = api.Attach(ctx, AttachArgs{Hostname: cfg.Hostname, ClientID: cfg.ClientID})
			if err != nil {
				if ctx.Err() != nil {
					return rep, nil
				}
				return rep, fmt.Errorf("runmgr: fleet re-attach: %w", err)
			}
			rep.Worker = at.Worker
			continue
		}
		if !pr.Granted {
			select {
			case <-ctx.Done():
				return rep, nil
			case <-time.After(cfg.Poll):
			}
			continue
		}
		executeTask(ctx, api, at.Worker, at.Epoch, pr.Task, realizers, &rep)
	}
}

// executeTask simulates one granted lease window, pushing subtotals at
// PassEvery boundaries and at the window end. It never flushes a
// partial window: an abandoned task (cancellation, fencing, run
// completion) leaves the done ledger at the last acked boundary and the
// remainder is recomputed from there — that discipline is what makes
// each processor shard's push-window sequence a pure function of the
// lease partition and PassEvery, and so the report bit-identical no
// matter how execution interleaves.
func executeTask(ctx context.Context, api fleetAPI, worker int, epoch uint64, task Task, realizers map[string]core.Realization, rep *FleetWorkerReport) {
	realize, ok := realizers[task.RunID]
	if !ok {
		r, err := resolveTask(task, worker)
		if err != nil {
			rep.Nacks++
			_ = api.Nack(ctx, NackArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: task.Lease.ID, Reason: err.Error()})
			return
		}
		realize = r
		realizers[task.RunID] = realize
	}
	l := task.Lease
	stream, err := rng.NewStream(task.Params, rng.Coord{
		Experiment: task.SeqNum, Processor: l.Proc, Realization: l.Start,
	})
	if err != nil {
		_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
		return
	}
	local := stat.New(task.Nrow, task.Ncol)
	out := make([]float64, task.Nrow*task.Ncol)
	var done int64
	for k := int64(0); k < l.Count; k++ {
		if ctx.Err() != nil {
			return // abandon mid-window; nothing partial leaves this worker
		}
		if k > 0 {
			if err := stream.NextRealization(); err != nil {
				_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
				return
			}
		}
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := callRealization(realize, stream, out); err != nil {
			_ = api.Fail(ctx, FailArgs{
				Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID,
				Reason: fmt.Sprintf("realization %d: %v", uint64(k)+l.Start, err),
			})
			return
		}
		if err := local.AddTimed(out, time.Since(t0)); err != nil {
			_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
			return
		}
		rep.Realizations++
		if local.N() >= task.PassEvery || k == l.Count-1 {
			done += local.N()
			pres, err := api.Push(ctx, TaskPushArgs{
				Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Done: done, Snap: local.Snapshot(),
			})
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				// Either the coordinator definitively rejected the
				// snapshot or the transport gave up; in both cases this
				// worker cannot advance the run. Report and abandon —
				// an unreachable coordinator ignores the report and the
				// lease times out.
				_ = api.Fail(ctx, FailArgs{Worker: worker, Epoch: epoch, RunID: task.RunID, LeaseID: l.ID, Reason: err.Error()})
				return
			}
			rep.Pushes++
			if pres.Fenced || pres.Final {
				return
			}
			local.Reset()
		}
	}
}

// resolveTask resolves the task's scenario against this process's
// workload registry and verifies the fingerprint matches the
// coordinator's — the cluster identity check, extended to a fleet that
// serves many scenarios.
func resolveTask(task Task, worker int) (core.Realization, error) {
	spec, err := workload.ParseSpec([]byte(task.Scenario))
	if err != nil {
		return nil, err
	}
	def, v, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	id, err := def.Identity(v)
	if err != nil {
		return nil, err
	}
	if fp := id.Fingerprint(); fp != task.Fingerprint {
		return nil, fmt.Errorf("workload %s resolves to %s here, but the run wants %s",
			spec.Workload, fp, task.Fingerprint)
	}
	if id.Nrow != task.Nrow || id.Ncol != task.Ncol {
		return nil, fmt.Errorf("workload %s is %d×%d here, but the run is %d×%d",
			spec.Workload, id.Nrow, id.Ncol, task.Nrow, task.Ncol)
	}
	factory, err := def.Factory(v)
	if err != nil {
		return nil, err
	}
	return factory(worker)
}

// callRealization converts a panicking user routine into an error, as
// the single-run engine does — one bad realization fails its run
// cleanly instead of taking the whole fleet worker down.
func callRealization(r core.Realization, stream *rng.Stream, out []float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runmgr: realization panicked: %v", p)
		}
	}()
	return r(stream, out)
}

// FleetGroup is a set of running fleet workers.
type FleetGroup struct {
	wg      sync.WaitGroup
	mu      sync.Mutex
	reports []FleetWorkerReport
	errs    []error
}

// Wait blocks until every worker in the group has exited and returns
// their reports and the first error, if any.
func (g *FleetGroup) Wait() ([]FleetWorkerReport, error) {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	var err error
	if len(g.errs) > 0 {
		err = g.errs[0]
	}
	return g.reports, err
}

// StartLocalWorkers runs n in-process fleet workers against the
// manager — the goroutine transport. They exit when ctx is canceled or
// the manager closes.
func (m *Manager) StartLocalWorkers(ctx context.Context, n int, cfg FleetWorkerConfig) *FleetGroup {
	g := &FleetGroup{}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond // in-process polling is cheap
	}
	for i := 0; i < n; i++ {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			c := cfg
			c.ClientID = "" // each worker gets its own identity
			rep, err := runFleetLoop(ctx, localFleet{m}, c)
			g.mu.Lock()
			defer g.mu.Unlock()
			g.reports = append(g.reports, rep)
			if err != nil {
				g.errs = append(g.errs, err)
			}
		}()
	}
	return g
}

// RunFleetWorker serves the manager at addr over TCP until ctx is
// canceled or the service stops — the `parmonc worker -service` loop.
func RunFleetWorker(ctx context.Context, addr string, cfg FleetWorkerConfig) (FleetWorkerReport, error) {
	cfg = cfg.withDefaults()
	rc := cluster.NewResilientClient(addr, cfg.Retry)
	defer rc.Close()
	rep, err := runFleetLoop(ctx, rpcFleet{rc}, cfg)
	stats := rc.Stats()
	rep.Retries = stats.Retries
	rep.Reconnects = stats.Reconnects
	return rep, err
}
