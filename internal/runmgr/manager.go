// Package runmgr hosts many concurrent simulation runs on one
// coordinator process — the serving layer of the library.
//
// PARMONC was built as a shared facility: many users submit independent
// Monte Carlo applications to one cluster, and the library distributes,
// averages and resumes each of them. The single-run transports
// (internal/core, internal/cluster) execute exactly one simulation per
// process; this package adds the multi-tenant surface on top of the
// same collector engine: a run registry with a lifecycle state machine
// (queued → admitted → running → done/failed/canceled), a bounded
// admission queue with per-run realization budgets, and a fair-share
// scheduler that hands out collect.PartitionLeases capacity across the
// active runs on one shared worker fleet.
//
// # Isolation and bit-identity
//
// Each admitted run owns a private collect.Collector, its own data
// directory (DataRoot/<runID>/parmonc_data) and its own run-event
// journal, so its report is derived from exactly the state an isolated
// single-run execution would hold. The scheduling trick that keeps the
// report *bit-identical* no matter how the fleet interleaves runs is to
// register processor subsequences — not physical workers — as the
// collector's shards: lease i of a run lives on processor subsequence
// i+1 (collect.PartitionLeases), and every push for that lease merges
// into shard i+1, whichever fleet worker happened to execute it.
// Realizations are substream-addressed (Mertens: concurrent simulations
// must keep their RNG substreams disjoint), workers never flush partial
// push windows (an abandoned window is recomputed from the last acked
// boundary), and the per-lease done ledger admits windows strictly in
// order — so each shard receives the same byte-identical snapshot
// sequence as a serial run, and the ascending-shard fold (see
// internal/stat/shard.go) produces the same report bits (Lubachevsky:
// parallel execution must not silently change results).
package runmgr

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
	"parmonc/internal/workload"
)

// State is a run's position in the lifecycle state machine:
//
//	queued ──→ admitted ──→ running ──→ done
//	   │           │            ├─────→ failed
//	   └───────────┴────────────┴─────→ canceled
type State string

const (
	StateQueued   State = "queued"   // accepted, waiting for an active slot
	StateAdmitted State = "admitted" // slot held: collector, directory and leases exist
	StateRunning  State = "running"  // at least one lease granted to the fleet
	StateDone     State = "done"     // target reached (or stop rule fired), report final
	StateFailed   State = "failed"   // admission or a realization failed; partial results saved
	StateCanceled State = "canceled" // canceled by request or service shutdown
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Errors mapped to HTTP statuses by the control API.
var (
	ErrQueueFull = errors.New("runmgr: admission queue full")
	ErrNotFound  = errors.New("runmgr: no such run")
	ErrNotDone   = errors.New("runmgr: run has no final report yet")
	ErrTerminal  = errors.New("runmgr: run already finished")
	ErrClosed    = errors.New("runmgr: manager is shut down")
)

// Config tunes a Manager. Zero values select documented defaults.
type Config struct {
	// DataRoot is the directory that receives one subdirectory per run
	// (DataRoot/<runID>/parmonc_data, the standard store layout).
	// Required.
	DataRoot string

	// MaxActive bounds how many runs hold collectors and receive fleet
	// capacity at once; further submissions queue. Default 4.
	MaxActive int

	// MaxQueued bounds the admission queue; a submission beyond it is
	// rejected with ErrQueueFull. Default 16.
	MaxQueued int

	// MaxRealizations is the per-run realization budget: a submission
	// asking for more is rejected at admission. Default 100_000_000.
	MaxRealizations int64

	// AverPeriod is every run's collector averaging/save period
	// (collect.Config.AverPeriod). Zero disables periodic saves — runs
	// still save at completion.
	AverPeriod time.Duration

	// LeaseTimeout, when positive, reissues a granted lease whose
	// holder has not pushed for this long: the remainder goes back to
	// the front of the run's queue and the stale grant is fenced, so a
	// hung fleet worker cannot strand a run. Zero disables the reaper
	// (a detaching worker still returns its leases).
	LeaseTimeout time.Duration

	// JournalMaxBytes is the size-rotation cap of each run's event
	// journal (obs.OpenJournalRotating). Zero disables rotation.
	JournalMaxBytes int64

	// PullWait caps how long an ungranted fleet Pull may be held open
	// server-side waiting for work (long-poll). Each pull carries the
	// worker's own ask (PullArgs.Wait) and the effective hold is the
	// smaller of the two; a pull asking for zero gets the legacy
	// immediate answer. Zero selects 30s; negative disables long-poll
	// entirely — every pull answers immediately and workers fall back
	// to jittered polling.
	PullWait time.Duration

	// Params are the parallel RNG leap exponents shared by every run;
	// the zero value means rng.DefaultParams. Runs are kept disjoint by
	// experiment subsequence number, so one parameter set serves all.
	Params rng.Params

	// Registry, if non-nil, receives the service-level series
	// (parmonc_runs_*, worker/queue gauges) and the per-run labeled
	// parmonc_run_* gauges. Each run's collector keeps its own private
	// registry — two runs must never share fixed-name counters.
	Registry *obs.Registry

	// Journal, if non-nil, receives service-level events (run_submit,
	// run_admit, worker_attach, ...). Each run additionally writes its
	// own journal under its data directory.
	Journal *obs.Journal

	// Now supplies the clock; nil means time.Now.
	Now func() time.Time

	// Recover selects how startup recovery treats corrupt durable state
	// found under DataRoot: RecoverStrict (the default) refuses to
	// start, RecoverDiscard quarantines the file and continues.
	Recover RecoverPolicy
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.DataRoot == "" {
		return cfg, errors.New("runmgr: Config.DataRoot is required")
	}
	if cfg.MaxActive == 0 {
		cfg.MaxActive = 4
	}
	if cfg.MaxActive < 0 {
		return cfg, fmt.Errorf("runmgr: negative MaxActive %d", cfg.MaxActive)
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 16
	}
	if cfg.MaxQueued < 0 {
		return cfg, fmt.Errorf("runmgr: negative MaxQueued %d", cfg.MaxQueued)
	}
	if cfg.MaxRealizations == 0 {
		cfg.MaxRealizations = 100_000_000
	}
	if cfg.MaxRealizations < 0 {
		return cfg, fmt.Errorf("runmgr: negative MaxRealizations %d", cfg.MaxRealizations)
	}
	if cfg.PullWait == 0 {
		cfg.PullWait = 30 * time.Second
	}
	if cfg.Params == (rng.Params{}) {
		cfg.Params = rng.DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return cfg, err
	}
	switch cfg.Recover {
	case "":
		cfg.Recover = RecoverStrict
	case RecoverStrict, RecoverDiscard:
	default:
		return cfg, fmt.Errorf("runmgr: unknown recover policy %q (want %q or %q)", cfg.Recover, RecoverStrict, RecoverDiscard)
	}
	return cfg, nil
}

// Submission describes one run a client asks the service to execute.
// It is the JSON body of POST /runs.
type Submission struct {
	// Scenario selects and parameterizes a registered workload.
	Scenario workload.Spec `json:"scenario"`

	// MaxSamples is the run's realization target (the paper's maxsv).
	// Required, positive, and at most the service's MaxRealizations
	// budget — a hosted service cannot offer the paper's "endless
	// simulation" mode.
	MaxSamples int64 `json:"maxsv"`

	// SeqNum is the experiments subsequence the run draws its base
	// random numbers from. Zero auto-assigns the lowest unused number
	// (starting at 1 — subsequence 0 always means "auto" here); an
	// explicit number already taken by another run is rejected, so two
	// hosted runs can never share base random numbers.
	SeqNum uint64 `json:"seqnum,omitempty"`

	// PassEvery is how many realizations a fleet worker simulates
	// between subtotal pushes. Default 100.
	PassEvery int64 `json:"pass_every,omitempty"`

	// LeaseSize is the realization-window size of the run's substream
	// leases. Zero picks a PassEvery-aligned size splitting the run
	// into roughly 16 leases.
	LeaseSize int64 `json:"lease_size,omitempty"`

	// Gamma is the confidence coefficient of the error matrices.
	// Default 3 (λ = 0.997).
	Gamma float64 `json:"gamma,omitempty"`

	// TargetRelErr, when positive, completes the run early once the
	// maximal relative error drops below this bound (percent) — the
	// collect.TargetRelErr stop rule as a per-run completion criterion.
	TargetRelErr float64 `json:"target_rel_err_pct,omitempty"`

	// MinSamples is the floor below which TargetRelErr never fires
	// (<= 0 selects the rule's default of 1000).
	MinSamples int64 `json:"min_samples,omitempty"`
}

// defaultLeaseSize mirrors the cluster transport's heuristic: a
// PassEvery-aligned lease size splitting the run into roughly 16
// leases, so losing a worker loses little but grant traffic stays
// negligible next to pushes.
func defaultLeaseSize(maxSamples, passEvery int64) int64 {
	k := maxSamples / (16 * passEvery)
	if k < 1 {
		k = 1
	}
	return passEvery * k
}

// grant is one outstanding lease: which fleet worker holds it and when
// it last pushed (monotonic clock, for the reissue reaper).
type grant struct {
	lease      collect.Lease
	worker     int
	lastActive time.Duration
}

// run is the manager-side state of one hosted simulation.
type run struct {
	id  string
	seq int // admission order, the fair-share tie-breaker

	sub         Submission // normalized: all defaults resolved
	workloadN   string
	fingerprint string
	scenario    string // canonical compact-JSON spec
	nrow, ncol  int

	state  State
	errMsg string

	dir     string
	eng     *collect.Collector
	journal *obs.Journal

	pending     []collect.Lease          // not yet granted (front = next)
	outstanding map[uint64]*grant        // granted, incomplete, by lease ID
	granted     map[uint64]collect.Lease // every grant ever made, by ID
	nextLease   uint64
	leaseTotal  int
	nGranted    int64
	nCompleted  int64
	nReissued   int64
	nNacks      int64
	incompat    map[int]bool // fleet workers that cannot serve this scenario

	submitted, started, finished time.Time

	rep       stat.Report
	hasReport bool

	// restoreImg is the recovery image pre-loaded at startup for a run
	// that survived a restart; admission consumes it (Config.Restore)
	// and clears it.
	restoreImg *store.RecoveryState
}

// fleetWorker is one attached fleet member.
type fleetWorker struct {
	id       int
	clientID string
	hostname string
}

// Manager is the multi-run coordinator. All exported methods are safe
// for concurrent use.
type Manager struct {
	cfg Config

	mu         sync.Mutex
	runs       map[string]*run
	order      []*run // submission order
	queue      []*run // admission queue (front = next)
	active     int
	nextRunID  int
	usedSeq    map[uint64]string // experiment subsequence → run ID
	workers    map[int]*fleetWorker
	byClient   map[string]int
	nextWorker int
	closed     bool
	draining   bool // Shutdown in progress: pulls see Stop, pushes still land

	// Durable service state. The WAL and the per-run manifests survive
	// the process; epoch is this incarnation's service epoch (strictly
	// increasing across restarts — the fence against zombie grants).
	wal     *store.WAL
	epoch   uint64
	recInfo RecoveryInfo

	inflight   atomic.Int64 // fleet pushes currently executing (drain barrier)
	recovering atomic.Bool  // startup recovery replaying: control API answers 503

	// pullWake is the long-poll wake signal: parked ungranted pulls
	// select on the current channel, and any event that could make work
	// grantable (submission, lease reissue, freed capacity, shutdown)
	// closes and replaces it under m.mu — a lost-wakeup-free broadcast.
	pullWake chan struct{}
	parked   atomic.Int64 // pulls currently parked in the long-poll
	pullBusy atomic.Int64 // Pull handlers in flight (shutdown drain barrier)

	fleetCalls atomic.Int64 // fleet RPCs of any kind (benchmarks read this)
	pullCalls  atomic.Int64 // Pull RPCs alone (idle-rate accounting)

	mono func() time.Duration

	// fleet listener state (ServeFleet)
	lnMu     sync.Mutex
	lnClosed bool
	lns      []interface{ Close() error }
	conns    map[interface{ Close() error }]struct{}
	wg       sync.WaitGroup

	reaperStop chan struct{}
	reaperDone chan struct{}

	mSubmitted *obs.Counter
	mRejected  *obs.Counter
	mDone      *obs.Counter
	mFailed    *obs.Counter
	mCanceled  *obs.Counter
	mReissued  *obs.Counter

	mStale *obs.Counter // fleet calls carrying a previous incarnation's epoch
	hBatch *obs.Histogram

	mRecCorrupt  *obs.Counter
	mRecResumed  *obs.Counter
	mRecRequeued *obs.Counter
	mRecTerminal *obs.Counter
	mRecReplayed *obs.Counter
}

// New creates a Manager. Close releases it.
func New(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		runs:     map[string]*run{},
		usedSeq:  map[uint64]string{},
		workers:  map[int]*fleetWorker{},
		byClient: map[string]int{},
		conns:    map[interface{ Close() error }]struct{}{},
		pullWake: make(chan struct{}),
	}
	base := m.now()
	m.mono = func() time.Duration { return m.now().Sub(base) }
	if reg := cfg.Registry; reg != nil {
		m.mSubmitted = reg.Counter("parmonc_runs_submitted_total", "Runs accepted into the service.")
		m.mRejected = reg.Counter("parmonc_runs_rejected_total", "Submissions rejected (validation, budget, full queue).")
		m.mDone = reg.Counter("parmonc_runs_finished_total", "Runs finished, by final state.", obs.L("state", "done"))
		m.mFailed = reg.Counter("parmonc_runs_finished_total", "Runs finished, by final state.", obs.L("state", "failed"))
		m.mCanceled = reg.Counter("parmonc_runs_finished_total", "Runs finished, by final state.", obs.L("state", "canceled"))
		m.mReissued = reg.Counter("parmonc_run_leases_reissued_total", "Leases reissued after worker detach, nack or timeout.")
		reg.GaugeFunc("parmonc_runs_active", "Runs currently holding an active slot.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.active)
		})
		reg.GaugeFunc("parmonc_runs_queued", "Runs waiting in the admission queue.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.queue))
		})
		reg.GaugeFunc("parmonc_fleet_workers", "Fleet workers currently attached.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.workers))
		})
		m.mStale = reg.Counter("parmonc_fleet_stale_epoch_total", "Fleet calls fenced or ignored for carrying a previous incarnation's epoch.")
		reg.GaugeFunc("parmonc_fleet_pull_parked", "Fleet pulls currently parked in the coordinator-side long-poll.", func() float64 {
			return float64(m.parked.Load())
		})
		m.hBatch = reg.Histogram("parmonc_fleet_batch_size", "Push windows carried per PushBatch RPC.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128})
		m.mRecCorrupt = reg.Counter("parmonc_recovery_corrupt_files_total", "Durable state files quarantined during startup recovery.")
		m.mRecResumed = reg.Counter("parmonc_recovery_runs_total", "Runs rehydrated at startup, by outcome.", obs.L("outcome", "resumed"))
		m.mRecRequeued = reg.Counter("parmonc_recovery_runs_total", "Runs rehydrated at startup, by outcome.", obs.L("outcome", "requeued"))
		m.mRecTerminal = reg.Counter("parmonc_recovery_runs_total", "Runs rehydrated at startup, by outcome.", obs.L("outcome", "terminal"))
		m.mRecReplayed = reg.Counter("parmonc_recovery_replayed_total", "Recovered runs whose manifest lagged the WAL (transition reconciled from the log).")
		reg.GaugeFunc("parmonc_service_epoch", "Service epoch of this incarnation (increases on every restart).", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.epoch)
		})
		reg.GaugeFunc("parmonc_recovery_samples_restored", "Sample volume carried across the last restart.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.recInfo.SamplesRestored)
		})
	}
	m.recovering.Store(true)
	err = m.recover()
	m.recovering.Store(false)
	if err != nil {
		if m.wal != nil {
			m.wal.Close()
		}
		return nil, err
	}
	if m.mRecResumed != nil {
		m.mRecResumed.Add(int64(m.recInfo.Resumed))
		m.mRecRequeued.Add(int64(m.recInfo.Requeued))
		m.mRecTerminal.Add(int64(m.recInfo.Terminal))
		m.mRecReplayed.Add(int64(m.recInfo.Replayed))
	}
	if cfg.LeaseTimeout > 0 {
		m.reaperStop = make(chan struct{})
		m.reaperDone = make(chan struct{})
		go m.reapLoop()
	}
	return m, nil
}

func (m *Manager) now() time.Time {
	if m.cfg.Now != nil {
		return m.cfg.Now()
	}
	return time.Now()
}

// jevent writes a service-journal event.
func (m *Manager) jevent(kind string, fields map[string]any) {
	if m.cfg.Journal != nil {
		m.cfg.Journal.Record(obs.Event{Kind: kind, Fields: fields})
	}
}

// revent writes an event to r's own journal (and mirrors run lifecycle
// transitions to the service journal).
func (r *run) revent(kind string, fields map[string]any) {
	if r.journal != nil {
		r.journal.Record(obs.Event{Kind: kind, Fields: fields})
	}
}

// Submit validates sub, assigns a run ID and experiment subsequence,
// and queues or immediately admits the run. It returns the run's
// status snapshot.
func (m *Manager) Submit(sub Submission) (RunStatus, error) {
	norm, id, scenario, err := m.normalize(sub)
	if err != nil {
		if m.mRejected != nil {
			m.mRejected.Inc()
		}
		return RunStatus{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return RunStatus{}, ErrClosed
	}
	if m.active >= m.cfg.MaxActive && len(m.queue) >= m.cfg.MaxQueued {
		if m.mRejected != nil {
			m.mRejected.Inc()
		}
		return RunStatus{}, fmt.Errorf("%w (%d active, %d queued)", ErrQueueFull, m.active, len(m.queue))
	}
	// Experiment subsequences keep hosted runs' base random numbers
	// disjoint; they are never reused for the manager's lifetime.
	// Zero means auto-assign (from 1 up), so subsequence 0 is never
	// used by a hosted run.
	if norm.SeqNum == 0 {
		s := uint64(1)
		for m.usedSeq[s] != "" {
			s++
		}
		norm.SeqNum = s
	} else if holder := m.usedSeq[norm.SeqNum]; holder != "" {
		if m.mRejected != nil {
			m.mRejected.Inc()
		}
		return RunStatus{}, fmt.Errorf("runmgr: experiment subsequence %d is already used by run %s: %w",
			norm.SeqNum, holder, ErrTerminal)
	}
	if err := m.checkRNGFit(norm); err != nil {
		if m.mRejected != nil {
			m.mRejected.Inc()
		}
		return RunStatus{}, err
	}

	m.nextRunID++
	r := &run{
		id:          fmt.Sprintf("r%04d", m.nextRunID),
		seq:         m.nextRunID,
		sub:         norm,
		workloadN:   id.Name,
		fingerprint: id.Fingerprint(),
		scenario:    scenario,
		nrow:        id.Nrow,
		ncol:        id.Ncol,
		state:       StateQueued,
		outstanding: map[uint64]*grant{},
		granted:     map[uint64]collect.Lease{},
		incompat:    map[int]bool{},
		submitted:   m.now(),
	}
	// A submission the service cannot make durable is rejected outright:
	// accepting it would mean silently forgetting it on the next restart.
	if err := m.persistRunErrLocked(r, walSubmit); err != nil {
		m.nextRunID--
		if m.mRejected != nil {
			m.mRejected.Inc()
		}
		return RunStatus{}, fmt.Errorf("runmgr: persisting submission: %w", err)
	}
	m.usedSeq[norm.SeqNum] = r.id
	m.runs[r.id] = r
	m.order = append(m.order, r)
	m.queue = append(m.queue, r)
	if m.mSubmitted != nil {
		m.mSubmitted.Inc()
	}
	m.registerRunGauges(r.id)
	m.jevent("run_submit", map[string]any{
		"run": r.id, "workload": r.fingerprint, "maxsv": norm.MaxSamples, "seqnum": norm.SeqNum,
	})
	m.admitLocked()
	// New work may now be grantable: unpark long-polled pulls.
	m.wakePullersLocked()
	return m.statusLocked(r), nil
}

// normalize resolves the scenario against the workload registry and
// fills the submission's defaults. It runs without the manager lock.
func (m *Manager) normalize(sub Submission) (Submission, workload.Identity, string, error) {
	if err := sub.Scenario.Validate(); err != nil {
		return sub, workload.Identity{}, "", err
	}
	def, err := workload.Lookup(sub.Scenario.Workload)
	if err != nil {
		return sub, workload.Identity{}, "", fmt.Errorf("runmgr: %w", err)
	}
	id, err := def.Identity(sub.Scenario.Params)
	if err != nil {
		return sub, workload.Identity{}, "", fmt.Errorf("runmgr: %w", err)
	}
	scenario := workload.Spec{Workload: def.Name, Params: workload.Values(id.Params)}.Canonical()
	if sub.MaxSamples <= 0 {
		return sub, id, "", fmt.Errorf("runmgr: submission needs a positive realization target (maxsv), got %d", sub.MaxSamples)
	}
	if sub.MaxSamples > m.cfg.MaxRealizations {
		return sub, id, "", fmt.Errorf("runmgr: realization target %d exceeds the per-run budget %d",
			sub.MaxSamples, m.cfg.MaxRealizations)
	}
	if sub.PassEvery == 0 {
		sub.PassEvery = 100
	}
	if sub.PassEvery < 0 {
		return sub, id, "", fmt.Errorf("runmgr: negative pass-every %d", sub.PassEvery)
	}
	if sub.Gamma == 0 {
		sub.Gamma = stat.DefaultConfidenceCoefficient
	}
	if sub.Gamma < 0 {
		return sub, id, "", fmt.Errorf("runmgr: negative confidence coefficient %g", sub.Gamma)
	}
	if sub.LeaseSize == 0 {
		sub.LeaseSize = defaultLeaseSize(sub.MaxSamples, sub.PassEvery)
	}
	if sub.LeaseSize < 0 {
		return sub, id, "", fmt.Errorf("runmgr: negative lease size %d", sub.LeaseSize)
	}
	if sub.TargetRelErr < 0 {
		return sub, id, "", fmt.Errorf("runmgr: negative relative-error target %g", sub.TargetRelErr)
	}
	return sub, id, scenario, nil
}

// checkRNGFit rejects a run whose lease partition does not fit the RNG
// substream hierarchy. Called with mu held (after SeqNum assignment).
func (m *Manager) checkRNGFit(sub Submission) error {
	leases := collect.PartitionLeases(sub.MaxSamples, sub.LeaseSize)
	if len(leases) == 0 {
		return fmt.Errorf("runmgr: empty lease partition for maxsv %d", sub.MaxSamples)
	}
	last := leases[len(leases)-1]
	var maxReal uint64
	if sub.LeaseSize > 1 {
		maxReal = uint64(sub.LeaseSize - 1)
	}
	if err := m.cfg.Params.CheckCoord(rng.Coord{
		Experiment: sub.SeqNum, Processor: last.Proc, Realization: maxReal,
	}); err != nil {
		return fmt.Errorf("runmgr: run does not fit the RNG hierarchy (%d leases of %d): %w",
			len(leases), sub.LeaseSize, err)
	}
	return nil
}

// registerRunGauges publishes the per-run labeled series. The closures
// look the run up under the manager lock at scrape time, so they stay
// valid for the manager's lifetime. Called with mu held.
func (m *Manager) registerRunGauges(id string) {
	reg := m.cfg.Registry
	if reg == nil {
		return
	}
	l := obs.L("run", id)
	reg.GaugeFunc("parmonc_run_samples", "Sample volume merged so far, per run.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		r := m.runs[id]
		if r == nil || r.eng == nil {
			return 0
		}
		return float64(r.eng.N())
	}, l)
	reg.GaugeFunc("parmonc_run_leases_outstanding", "Granted, incomplete leases, per run.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		r := m.runs[id]
		if r == nil {
			return 0
		}
		return float64(len(r.outstanding))
	}, l)
	reg.GaugeFunc("parmonc_run_leases_pending", "Leases not yet granted, per run.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		r := m.runs[id]
		if r == nil {
			return 0
		}
		return float64(len(r.pending))
	}, l)
	reg.GaugeFunc("parmonc_run_state", "Lifecycle state, per run (0 queued, 1 admitted, 2 running, 3 done, 4 failed, 5 canceled).", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		r := m.runs[id]
		if r == nil {
			return -1
		}
		switch r.state {
		case StateQueued:
			return 0
		case StateAdmitted:
			return 1
		case StateRunning:
			return 2
		case StateDone:
			return 3
		case StateFailed:
			return 4
		default:
			return 5
		}
	}, l)
}

// admitLocked promotes queued runs into free active slots.
func (m *Manager) admitLocked() {
	for !m.closed && m.active < m.cfg.MaxActive && len(m.queue) > 0 {
		r := m.queue[0]
		m.queue = m.queue[1:]
		if err := m.admitRunLocked(r); err != nil {
			r.state = StateFailed
			r.errMsg = err.Error()
			r.finished = m.now()
			if m.mFailed != nil {
				m.mFailed.Inc()
			}
			m.persistRunLocked(r, walFailed)
			m.jevent("run_failed", map[string]any{"run": r.id, "err": err.Error()})
		}
	}
}

// admitRunLocked gives r an active slot: data directory, journal,
// collector, lease partition.
func (m *Manager) admitRunLocked(r *run) error {
	r.dir = filepath.Join(m.cfg.DataRoot, r.id)
	d, err := store.Open(r.dir)
	if err != nil {
		return err
	}
	j, err := obs.OpenJournalRotating(d.JournalPath(), m.cfg.JournalMaxBytes)
	if err != nil {
		return err
	}
	var stop collect.StopRule
	if r.sub.TargetRelErr > 0 {
		stop = collect.TargetRelErr(r.sub.TargetRelErr, r.sub.MinSamples)
	}
	meta := store.RunMeta{
		SeqNum:      r.sub.SeqNum,
		Nrow:        r.nrow,
		Ncol:        r.ncol,
		MaxSV:       r.sub.MaxSamples,
		Params:      m.cfg.Params,
		Gamma:       r.sub.Gamma,
		StartedAt:   m.now(),
		Workload:    r.workloadN,
		Fingerprint: r.fingerprint,
		Scenario:    r.scenario,
	}
	restore := r.restoreImg
	r.restoreImg = nil
	eng, err := collect.New(d, meta, collect.Config{
		AverPeriod: m.cfg.AverPeriod,
		Stop:       stop,
		Hook:       collect.JournalHook(j),
		Now:        m.cfg.Now,
		// Restore rebuilds the collector's shards and lease ledgers from
		// the recovery image when the run survived a service restart —
		// the fold topology is preserved, so the final report stays
		// bit-identical to an uninterrupted run. PersistRecovery keeps
		// that image fresh at every periodic save.
		Restore:         restore,
		PersistRecovery: true,
		// Registry stays nil on purpose: the collector registers
		// fixed-name series, and two runs must not share counters. The
		// manager's labeled parmonc_run_* gauges are the shared view.
	})
	if err != nil {
		j.Close()
		return err
	}
	r.journal = j
	r.eng = eng
	partition := collect.PartitionLeases(r.sub.MaxSamples, r.sub.LeaseSize)
	r.leaseTotal = len(partition)
	if restore != nil {
		r.pending, r.nCompleted = remainingLeases(partition, restore)
	} else {
		r.pending = partition
	}
	r.state = StateAdmitted
	m.active++
	m.persistRunLocked(r, walAdmit)
	r.revent("run_admit", map[string]any{
		"run": r.id, "workload": r.fingerprint, "scenario": r.scenario,
		"maxsv": r.sub.MaxSamples, "seqnum": r.sub.SeqNum, "leases": r.leaseTotal,
	})
	m.jevent("run_admit", map[string]any{"run": r.id, "leases": r.leaseTotal})
	if restore != nil {
		r.revent("run_restore", map[string]any{
			"run": r.id, "n": eng.N(), "pending": len(r.pending), "completed": r.nCompleted,
		})
		// A run that crashed after its last lease merged but before the
		// completion transition was recorded finishes right here, with
		// the report computed from the restored shards — same bits.
		if eng.TargetReached() || eng.EvalStop() {
			m.finishRunLocked(r, StateDone, "")
		}
	}
	return nil
}

// wakePullersLocked unparks every pull waiting in the long-poll by
// closing the current wake channel and installing a fresh one. Called
// with m.mu held by any transition that could make work grantable —
// submission/admission, lease reissue, a freed slot — or that must
// unpark pullers to answer Stop (close, drain, kill). Because parked
// pullers capture the channel under the same lock that state changes
// hold, a wakeup can never be lost: either the puller saw the new
// state, or it parked on a channel the change closed.
func (m *Manager) wakePullersLocked() {
	close(m.pullWake)
	m.pullWake = make(chan struct{})
}

// pullTask answers one fleet Pull. When nothing is grantable and the
// worker asked for a long-poll, the call parks — off the manager lock —
// until a wake or its deadline, so an idle fleet costs ~1 RPC per
// worker per wait window instead of a fixed-rate poll storm.
func (m *Manager) pullTask(ctx context.Context, a PullArgs) (PullReply, error) {
	m.fleetCalls.Add(1)
	m.pullCalls.Add(1)
	m.pullBusy.Add(1)
	defer m.pullBusy.Add(-1)
	wait := a.Wait
	if wait > m.cfg.PullWait {
		wait = m.cfg.PullWait
	}
	if wait < 0 || m.cfg.PullWait < 0 {
		wait = 0
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		m.mu.Lock()
		reply, err, decided := m.tryPullLocked(a)
		if decided || wait <= 0 {
			m.mu.Unlock()
			reply.Waited = wait > 0
			return reply, err
		}
		// Nothing grantable: park on the wake channel captured under the
		// same lock the scheduler state changes hold. The overall hold is
		// bounded by the single timer across wake/retry rounds.
		wake := m.pullWake
		m.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(wait)
		}
		m.parked.Add(1)
		select {
		case <-wake:
			m.parked.Add(-1)
		case <-timer.C:
			m.parked.Add(-1)
			return PullReply{Waited: true}, nil
		case <-ctx.Done():
			m.parked.Add(-1)
			return PullReply{Waited: true}, nil
		}
	}
}

// tryPullLocked implements the fair-share scheduler: among the active
// runs with pending leases that this worker can serve, pick the one
// with the fewest outstanding grants (earliest-submitted wins ties) —
// every active run converges to an equal share of the fleet, and
// capacity freed by a canceled run flows to the survivors on their
// next pull. The third result is false only for the "nothing grantable
// right now" answer — the one a long-poll may park on.
func (m *Manager) tryPullLocked(a PullArgs) (PullReply, error, bool) {
	if m.closed || m.draining {
		return PullReply{Stop: true}, nil, true
	}
	if a.Epoch != 0 && a.Epoch != m.epoch {
		// A worker attached to a previous incarnation: tell it to
		// re-attach rather than erroring — it keeps its realizer cache
		// and rejoins the fleet under the current epoch.
		m.staleLocked("pull", a.Epoch)
		return PullReply{Reattach: true}, nil, true
	}
	if m.workers[a.Worker] == nil {
		if a.Epoch != 0 {
			// Correct epoch but unknown index can still happen when the
			// service restarted twice between two polls; re-attach.
			m.staleLocked("pull", a.Epoch)
			return PullReply{Reattach: true}, nil, true
		}
		return PullReply{}, fmt.Errorf("runmgr: pull from unattached worker %d", a.Worker), true
	}
	var best *run
	for _, r := range m.order {
		if r.state != StateAdmitted && r.state != StateRunning {
			continue
		}
		if len(r.pending) == 0 || r.incompat[a.Worker] {
			continue
		}
		if best == nil || len(r.outstanding) < len(best.outstanding) {
			best = r
		}
	}
	if best == nil {
		return PullReply{}, nil, false
	}
	l := best.pending[0]
	best.pending = best.pending[1:]
	best.nextLease++
	// The service epoch occupies the lease ID's high bits, so an ID
	// minted by this incarnation can never collide with a grant restored
	// from a previous one — the ledger stays collision-free across
	// restarts without any coordination.
	l.ID = m.epoch<<32 | best.nextLease
	proc := int(l.Proc)
	// The processor subsequence is the shard: fold order — and so the
	// report bits — cannot depend on which fleet worker executes what.
	best.eng.Register(proc)
	if err := best.eng.GrantLease(proc, l); err != nil {
		// A duplicate lease ID here is a manager bug; fail the run
		// loudly rather than corrupt its ledger. Answer "nothing granted"
		// decisively — another run may have work on the next pull.
		m.finishRunLocked(best, StateFailed, fmt.Sprintf("lease grant: %v", err))
		return PullReply{}, nil, true
	}
	best.outstanding[l.ID] = &grant{lease: l, worker: a.Worker, lastActive: m.mono()}
	best.granted[l.ID] = l
	best.nGranted++
	if best.state == StateAdmitted {
		best.state = StateRunning
		if best.started.IsZero() {
			best.started = m.now()
		}
		m.persistRunLocked(best, walStart)
		best.revent("run_start", map[string]any{"run": best.id})
		m.jevent("run_start", map[string]any{"run": best.id})
	}
	best.revent("lease_grant", map[string]any{
		"run": best.id, "lease": l.ID, "proc": l.Proc, "start": l.Start,
		"count": l.Count, "fleet_worker": a.Worker,
	})
	return PullReply{Granted: true, Task: Task{
		RunID:       best.id,
		Scenario:    best.scenario,
		Fingerprint: best.fingerprint,
		Nrow:        best.nrow,
		Ncol:        best.ncol,
		SeqNum:      best.sub.SeqNum,
		Params:      m.cfg.Params,
		Gamma:       best.sub.Gamma,
		PassEvery:   best.sub.PassEvery,
		Lease:       l,
	}}, nil, true
}

// pushTask merges one subtotal push from the fleet — the unbatched
// protocol, one RPC per window.
func (m *Manager) pushTask(a TaskPushArgs) (TaskPushReply, error) {
	m.fleetCalls.Add(1)
	return m.pushOne(a)
}

// pushBatch fans one worker's coalesced push windows out to the
// per-run collectors. Entries are applied sequentially in wire order:
// the worker appended each lease's windows in completion order, so
// every per-lease done ledger sees the same strictly-increasing
// sequence it would from unbatched pushes, each entry dedups on the
// same absolute substream position, and the merged bytes — and so the
// report — are bit-identical. Each entry gets its own verdict; an
// application-level rejection rides in Err so one bad entry cannot
// take down the rest of the batch.
func (m *Manager) pushBatch(a PushBatchArgs) (PushBatchReply, error) {
	m.fleetCalls.Add(1)
	if m.hBatch != nil {
		m.hBatch.Observe(float64(len(a.Entries)))
	}
	rep := PushBatchReply{Entries: make([]PushEntryReply, len(a.Entries))}
	runIDs := make(map[string]struct{}, 1)
	for i, e := range a.Entries {
		runIDs[e.RunID] = struct{}{}
		one, err := m.pushOne(TaskPushArgs{
			Worker: a.Worker, Epoch: a.Epoch,
			RunID: e.RunID, LeaseID: e.LeaseID, Done: e.Done, Snap: e.Snap,
		})
		if err != nil {
			rep.Entries[i] = PushEntryReply{Err: err.Error()}
			continue
		}
		rep.Entries[i] = PushEntryReply{Fenced: one.Fenced, Final: one.Final}
	}
	rep.RetryAfter = m.retryAfter(runIDs)
	return rep, nil
}

// retryAfter computes the soft backpressure delay for a batch that
// touched the given runs: the worst collector save lag among them,
// when it exceeds the averaging period (saves falling behind the
// cadence they are supposed to run at), capped so a stretched worker
// cadence can never approach the lease timeout.
func (m *Manager) retryAfter(runIDs map[string]struct{}) time.Duration {
	if m.cfg.AverPeriod <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var worst time.Duration
	for id := range runIDs {
		r := m.runs[id]
		if r == nil || r.eng == nil || r.state.Terminal() {
			continue
		}
		if lag := r.eng.SaveLag(); lag > m.cfg.AverPeriod && lag > worst {
			worst = lag
		}
	}
	limit := m.cfg.LeaseTimeout / 4
	if limit <= 0 || limit > time.Second {
		limit = time.Second
	}
	if worst > limit {
		worst = limit
	}
	return worst
}

// pushOne applies one push window. The engine merge runs outside the
// manager lock — pushes for different runs (and different procs of one
// run) proceed concurrently, exactly as the sharded collector is
// designed to be fed.
func (m *Manager) pushOne(a TaskPushArgs) (TaskPushReply, error) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	m.mu.Lock()
	if a.Epoch != 0 && a.Epoch != m.epoch {
		// A zombie push: the grant was minted by a previous incarnation
		// and its lease ledger was restored revoked. Fencing here (and
		// in the ledger itself, belt and braces) is what makes a restart
		// unable to double-merge a window.
		m.staleLocked("push", a.Epoch)
		m.mu.Unlock()
		return TaskPushReply{Fenced: true}, nil
	}
	r := m.runs[a.RunID]
	if r == nil {
		m.mu.Unlock()
		return TaskPushReply{Final: true}, nil
	}
	if r.state.Terminal() {
		m.mu.Unlock()
		return TaskPushReply{Final: true}, nil
	}
	gl, known := r.granted[a.LeaseID]
	if !known || a.Done <= 0 || a.Done > gl.Count {
		// A grant this manager never made (or an impossible claim):
		// fence the sender so it abandons the task.
		m.mu.Unlock()
		return TaskPushReply{Fenced: true}, nil
	}
	eng := r.eng
	origin := collect.PushOrigin{
		Worker: int(gl.Proc),
		// The push sequence is the absolute position in the processor
		// substream: strictly increasing across grants and reissues of
		// the same proc, so at-least-once retries dedup exactly.
		Seq:   gl.Start + uint64(a.Done),
		Lease: a.LeaseID,
		Done:  a.Done,
	}
	m.mu.Unlock()

	err := eng.PushFrom(origin, a.Snap)
	if errors.Is(err, collect.ErrFenced) {
		return TaskPushReply{Fenced: true}, nil
	}
	if err != nil {
		return TaskPushReply{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if r.state.Terminal() {
		return TaskPushReply{Final: true}, nil
	}
	if g := r.outstanding[a.LeaseID]; g != nil {
		g.lastActive = m.mono()
		if a.Done == g.lease.Count {
			delete(r.outstanding, a.LeaseID)
			r.nCompleted++
		}
	}
	if eng.TargetReached() || eng.EvalStop() {
		m.finishRunLocked(r, StateDone, "")
		return TaskPushReply{Final: true}, nil
	}
	return TaskPushReply{}, nil
}

// nackTask handles a worker that cannot serve a run's scenario (not
// registered there, or resolving to a different fingerprint): the
// lease remainder goes back to the front of the run's queue and the
// worker is excluded from that run.
func (m *Manager) nackTask(a NackArgs) error {
	m.fleetCalls.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.Epoch != 0 && a.Epoch != m.epoch {
		m.staleLocked("nack", a.Epoch)
		return nil
	}
	r := m.runs[a.RunID]
	if r == nil || r.state.Terminal() {
		return nil
	}
	r.incompat[a.Worker] = true
	r.nNacks++
	m.reclaimGrantLocked(r, a.LeaseID, "nack: "+a.Reason)
	if len(r.incompat) >= len(m.workers) && len(m.workers) > 0 && len(r.outstanding) == 0 {
		// No attached worker can serve this scenario at all.
		m.finishRunLocked(r, StateFailed, "no attached fleet worker can serve this workload: "+a.Reason)
	}
	return nil
}

// failTask handles a definitive realization failure: the run fails,
// partial results are saved.
func (m *Manager) failTask(a FailArgs) error {
	m.fleetCalls.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.Epoch != 0 && a.Epoch != m.epoch {
		// The failure happened against a previous incarnation (e.g. its
		// push path died with the service). The restarted run recomputes
		// that window; failing it now would kill a healthy recovery.
		m.staleLocked("fail", a.Epoch)
		return nil
	}
	r := m.runs[a.RunID]
	if r == nil || r.state.Terminal() {
		return nil
	}
	m.finishRunLocked(r, StateFailed, a.Reason)
	return nil
}

// staleLocked counts one fleet call fenced or ignored for carrying a
// previous incarnation's service epoch. Caller holds m.mu.
func (m *Manager) staleLocked(op string, epoch uint64) {
	if m.mStale != nil {
		m.mStale.Inc()
	}
	m.jevent("stale_epoch", map[string]any{"op": op, "epoch": epoch, "service_epoch": m.epoch})
}

// reclaimGrantLocked revokes one outstanding grant, requeues its
// uncomputed remainder at the front, and counts a reissue.
func (m *Manager) reclaimGrantLocked(r *run, leaseID uint64, why string) {
	g := r.outstanding[leaseID]
	if g == nil {
		return
	}
	delete(r.outstanding, leaseID)
	rem := r.eng.ReclaimLeases(int(g.lease.Proc))
	if len(rem) > 0 {
		r.pending = append(rem, r.pending...)
		r.nReissued += int64(len(rem))
		if m.mReissued != nil {
			m.mReissued.Add(int64(len(rem)))
		}
		// Reissued leases are grantable immediately; an idle fleet parked
		// in the long-poll should not wait out its deadline to claim them.
		m.wakePullersLocked()
	}
	r.revent("lease_reissue", map[string]any{
		"run": r.id, "lease": leaseID, "proc": g.lease.Proc, "why": why,
	})
}

// finishRunLocked drives r to a terminal state: every outstanding
// grant is revoked (fencing stragglers), the collector finalizes (the
// last averaging + save — partial results are saved even for canceled
// and failed runs), and the freed slot admits the next queued run.
func (m *Manager) finishRunLocked(r *run, state State, errMsg string) {
	if r.state.Terminal() {
		return
	}
	heldSlot := r.state == StateAdmitted || r.state == StateRunning
	for id := range r.outstanding {
		g := r.outstanding[id]
		delete(r.outstanding, id)
		r.eng.ReclaimLeases(int(g.lease.Proc))
	}
	r.pending = nil
	if r.eng != nil {
		rep, err := r.eng.Finalize()
		if err != nil {
			if state == StateDone {
				state = StateFailed
				errMsg = err.Error()
			}
		} else {
			r.rep = rep
			r.hasReport = true
		}
	}
	r.state = state
	r.errMsg = errMsg
	r.finished = m.now()
	m.persistRunLocked(r, string(state))
	fields := map[string]any{"run": r.id, "state": string(state)}
	if r.eng != nil {
		fields["n"] = r.eng.N()
	}
	if errMsg != "" {
		fields["err"] = errMsg
	}
	r.revent("run_finish", fields)
	m.jevent("run_finish", fields)
	if r.journal != nil {
		r.journal.Close()
	}
	switch state {
	case StateDone:
		if m.mDone != nil {
			m.mDone.Inc()
		}
	case StateFailed:
		if m.mFailed != nil {
			m.mFailed.Inc()
		}
	case StateCanceled:
		if m.mCanceled != nil {
			m.mCanceled.Inc()
		}
	}
	if heldSlot {
		m.active--
		m.admitLocked()
	}
	// The freed slot may have admitted a queued run (new pending
	// leases), and parked pullers must re-evaluate in any case.
	m.wakePullersLocked()
}

// Cancel cancels a run: a queued run simply leaves the queue; an
// active run has its grants fenced, saves what it accumulated, and its
// slot and fleet capacity flow to the remaining runs.
func (m *Manager) Cancel(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.runs[id]
	if r == nil {
		return RunStatus{}, ErrNotFound
	}
	if r.state.Terminal() {
		return m.statusLocked(r), ErrTerminal
	}
	if r.state == StateQueued {
		for i, q := range m.queue {
			if q == r {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
	}
	m.finishRunLocked(r, StateCanceled, "canceled by request")
	return m.statusLocked(r), nil
}

// attach admits a fleet worker, idempotently per ClientID: a retried
// attach (lost reply) returns the same worker index.
func (m *Manager) attach(a AttachArgs) (AttachReply, error) {
	m.fleetCalls.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return AttachReply{}, ErrClosed
	}
	if a.ClientID != "" {
		if id, ok := m.byClient[a.ClientID]; ok {
			return AttachReply{Worker: id, Epoch: m.epoch}, nil
		}
	}
	m.nextWorker++
	w := &fleetWorker{id: m.nextWorker, clientID: a.ClientID, hostname: a.Hostname}
	m.workers[w.id] = w
	if a.ClientID != "" {
		m.byClient[a.ClientID] = w.id
	}
	m.jevent("worker_attach", map[string]any{"fleet_worker": w.id, "host": a.Hostname})
	return AttachReply{Worker: w.id, Epoch: m.epoch}, nil
}

// detach removes a fleet worker; leases it still holds are reissued.
func (m *Manager) detach(a DetachArgs) error {
	m.fleetCalls.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.Epoch != 0 && a.Epoch != m.epoch {
		// The worker index belongs to a previous incarnation — possibly
		// to a different worker now. Ignore rather than detach a stranger.
		m.staleLocked("detach", a.Epoch)
		return nil
	}
	m.detachWorkerLocked(a.Worker)
	return nil
}

func (m *Manager) detachWorkerLocked(id int) {
	w := m.workers[id]
	if w == nil {
		return
	}
	delete(m.workers, id)
	if w.clientID != "" {
		delete(m.byClient, w.clientID)
	}
	for _, r := range m.order {
		if r.state.Terminal() {
			continue
		}
		for leaseID, g := range r.outstanding {
			if g.worker == id {
				m.reclaimGrantLocked(r, leaseID, "worker detached")
			}
		}
	}
	m.jevent("worker_detach", map[string]any{"fleet_worker": id})
}

// reapLoop reissues leases whose holders have gone silent for longer
// than LeaseTimeout.
func (m *Manager) reapLoop() {
	defer close(m.reaperDone)
	period := m.cfg.LeaseTimeout / 2
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.reaperStop:
			return
		case <-tick.C:
			m.mu.Lock()
			cut := m.mono() - m.cfg.LeaseTimeout
			for _, r := range m.order {
				if r.state != StateRunning && r.state != StateAdmitted {
					continue
				}
				for leaseID, g := range r.outstanding {
					if g.lastActive < cut {
						m.reclaimGrantLocked(r, leaseID, "lease timeout")
					}
				}
			}
			m.mu.Unlock()
		}
	}
}

// Close shuts the service down: queued runs are canceled, active runs
// finalize (saving partial results) as canceled, fleet listeners and
// connections close, and attached local workers see Stop on their next
// pull.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.queue = nil
	for _, r := range m.order {
		if !r.state.Terminal() {
			m.finishRunLocked(r, StateCanceled, "service shutting down")
		}
	}
	// Unpark long-polled pulls so they answer Stop now, not at their
	// deadline — local workers block Close's wg.Wait otherwise.
	m.wakePullersLocked()
	m.mu.Unlock()

	if m.reaperStop != nil {
		close(m.reaperStop)
		<-m.reaperDone
	}
	m.lnMu.Lock()
	m.lnClosed = true
	for _, ln := range m.lns {
		ln.Close()
	}
	m.lns = nil
	for c := range m.conns {
		c.Close()
	}
	m.conns = map[interface{ Close() error }]struct{}{}
	m.lnMu.Unlock()
	m.wg.Wait()
	if m.wal != nil {
		m.wal.Close()
	}
	return nil
}

// Shutdown drains the service gracefully: fleet pulls see Stop,
// in-flight pushes land, every active run saves a final checkpoint and
// recovery image, manifests and the WAL record a clean shutdown, and
// all resources close. Runs are left running/queued in their durable
// state — the next incarnation resumes them with nothing to replay
// (the regression the clean-shutdown test pins down).
func (m *Manager) Shutdown() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	// Parked pulls must re-check and see Stop before the drain barrier.
	m.wakePullersLocked()
	m.mu.Unlock()

	// Drain: pushes already past the door finish merging (bounded wait —
	// a wedged fleet must not block shutdown forever).
	for i := 0; i < 400 && m.inflight.Load() > 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	// The woken pulls need the lock back to observe draining and carry
	// their Stop replies out; with long-polling an idle fleet has a pull
	// in flight almost always, so closing connections without this
	// barrier would turn nearly every graceful shutdown into worker-side
	// retry errors instead of clean stops. Bounded like the push drain.
	for i := 0; i < 400 && m.pullBusy.Load() > 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	m.mu.Lock()
	m.closed = true
	for _, r := range m.order {
		if r.state.Terminal() || r.eng == nil {
			continue
		}
		// Save folds the shards into a fresh checkpoint and, with
		// PersistRecovery, rewrites the recovery image — the state the
		// next incarnation restores bit-identically.
		if err := r.eng.Save(); err != nil {
			r.revent("suspend_save_error", map[string]any{"run": r.id, "err": err.Error()})
		}
		r.revent("run_suspend", map[string]any{"run": r.id, "n": r.eng.N()})
		if r.journal != nil {
			r.journal.Close()
		}
		m.persistRunLocked(r, walSuspend)
	}
	if m.wal != nil {
		if err := m.wal.Append(store.WALKindShutdown, "", m.now(), nil); err != nil {
			m.jevent("persist_error", map[string]any{"kind": "shutdown", "err": err.Error()})
		}
		m.wal.Close()
	}
	m.mu.Unlock()

	if m.reaperStop != nil {
		close(m.reaperStop)
		<-m.reaperDone
	}
	m.lnMu.Lock()
	m.lnClosed = true
	for _, ln := range m.lns {
		ln.Close()
	}
	m.lns = nil
	for c := range m.conns {
		c.Close()
	}
	m.conns = map[interface{ Close() error }]struct{}{}
	m.lnMu.Unlock()
	m.wg.Wait()
	m.jevent("service_shutdown", map[string]any{"drained": true})
	return nil
}

// kill simulates a crash for the chaos tests: listeners and
// connections drop and goroutines stop, but nothing drains, saves,
// finalizes or records a shutdown — the durable state left behind is
// exactly what a SIGKILLed process leaves (any prefix of the periodic
// saves, plus whatever the WAL had already been told).
func (m *Manager) kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	// Even a "crash" must unpark long-polls: the goroutines parked in
	// pullTask belong to this process and would otherwise outlive the
	// simulated kill until their deadlines.
	m.wakePullersLocked()
	m.mu.Unlock()

	m.lnMu.Lock()
	m.lnClosed = true
	for _, ln := range m.lns {
		ln.Close()
	}
	m.lns = nil
	for c := range m.conns {
		c.Close()
	}
	m.conns = map[interface{ Close() error }]struct{}{}
	m.lnMu.Unlock()
	if m.reaperStop != nil {
		close(m.reaperStop)
		<-m.reaperDone
	}
	m.wg.Wait()

	// Only fd hygiene below — the in-memory state is abandoned, not
	// persisted. The WAL's appends already reached the OS.
	m.mu.Lock()
	if m.wal != nil {
		m.wal.Close()
	}
	for _, r := range m.order {
		if r.journal != nil && !r.state.Terminal() {
			r.journal.Close()
		}
	}
	m.mu.Unlock()
}
