package runmgr

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/faultnet"
	"parmonc/internal/workload"
	_ "parmonc/internal/workload/builtin"
)

// chaosSubs are the survivor runs every chaos seed must complete with
// bit-identical reports; the third submission is canceled mid-flight
// to exercise fencing under faults.
func chaosSubs() []Submission {
	return []Submission{
		{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 10_000, SeqNum: 41, PassEvery: 100, LeaseSize: 1_000},
		{Scenario: workload.Spec{Workload: "option"}, MaxSamples: 5_000, SeqNum: 42, PassEvery: 100, LeaseSize: 700},
	}
}

// TestRunMgrChaos: the multi-run service under a faulty network. Fleet
// connections are wrapped in seeded faultnet chaos (refused dials,
// latency, byte-budget closes, one-way partitions); workers are
// supervised — when one's retry budget exhausts it is restarted, like
// a crashed process respawning. The survivor runs must still complete
// with reports bit-identical to fault-free isolated execution:
// at-least-once delivery plus sequence dedup plus lease fencing must
// turn every redelivery, reissue and zombie push into exactly-once
// merges.
func TestRunMgrChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}
	subs := chaosSubs()
	want := make([]ReportPayload, len(subs))
	for i, sub := range subs {
		want[i] = runIsolated(t, sub)
	}

	var totalRetries, totalReissues int64
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("", func(t *testing.T) {
			cfg := testConfig(t)
			cfg.LeaseTimeout = 300 * time.Millisecond
			m := newManager(t, cfg)

			raw, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ln := faultnet.Wrap(raw, faultnet.RandomPlanner(seed, 0.8, 128, 4096))
			if err := m.ServeFleet(ln); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var retries atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Supervise: a worker whose retry budget exhausts is
					// replaced by a fresh one, as a process supervisor
					// would. Its leases reissue via the timeout reaper.
					for ctx.Err() == nil {
						rep, err := RunFleetWorker(ctx, raw.Addr().String(), FleetWorkerConfig{
							Poll: 5 * time.Millisecond,
							Retry: cluster.RetryPolicy{
								MaxAttempts: 6,
								BaseDelay:   2 * time.Millisecond,
								CallTimeout: 2 * time.Second,
								Seed:        seed,
							},
						})
						retries.Add(rep.Retries)
						if err == nil {
							return
						}
					}
				}()
			}

			var ids []string
			for _, sub := range subs {
				st, err := m.Submit(sub)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, st.ID)
			}
			// A third run is canceled while the fleet is mid-fault:
			// fencing must hold even when the cancel races reissues.
			victim, err := m.Submit(Submission{
				Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 4_000_000,
				SeqNum: 43, PassEvery: 20_000, LeaseSize: 1_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(50 * time.Millisecond)
			if _, err := m.Cancel(victim.ID); err != nil {
				t.Fatal(err)
			}

			for _, id := range ids {
				waitState(t, m, id, StateDone, 120*time.Second)
			}
			for i, id := range ids {
				got, err := m.Report(id)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, subs[i].Scenario.Workload+"/chaos", got, want[i])
			}
			vs, _ := m.Run(victim.ID)
			if vs.State != StateCanceled || vs.Leases.Outstanding != 0 {
				t.Fatalf("victim: state %s, %d outstanding", vs.State, vs.Leases.Outstanding)
			}
			for _, id := range ids {
				st, _ := m.Run(id)
				totalReissues += st.Leases.Reissued
			}

			cancel()
			wg.Wait()
			totalRetries += retries.Load()
		})
	}
	// Across all seeds the chaos must actually have bitten — otherwise
	// the suite silently degenerates into the happy path.
	if totalRetries == 0 {
		t.Error("no transport retries across any seed: faults never reached the fleet")
	}
	t.Logf("chaos totals: %d transport retries, %d lease reissues", totalRetries, totalReissues)
}
