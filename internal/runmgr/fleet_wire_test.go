package runmgr

// Wire-efficiency suite for the fleet protocol: the coordinator-side
// long-poll, the coalesced PushBatch path, backpressure, and the
// benchmarks that pin the RPC-per-realization budget.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parmonc/internal/stat"
	"parmonc/internal/workload"
)

// windowSnap builds one valid push-window snapshot of n realizations.
func windowSnap(tb testing.TB, nrow, ncol int, n int64) stat.Snapshot {
	tb.Helper()
	acc := stat.New(nrow, ncol)
	out := make([]float64, nrow*ncol)
	for i := range out {
		out[i] = 0.5
	}
	for i := int64(0); i < n; i++ {
		if err := acc.AddTimed(out, time.Microsecond); err != nil {
			tb.Fatal(err)
		}
	}
	return acc.Snapshot()
}

// runFleetCountingRPCs completes one hosted run on a local fleet with
// the given worker config and returns the coordinator RPCs spent per
// merged realization.
func runFleetCountingRPCs(tb testing.TB, workers int, wcfg FleetWorkerConfig) float64 {
	tb.Helper()
	cfg := Config{DataRoot: tb.TempDir(), AverPeriod: 20 * time.Millisecond}
	m, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := m.StartLocalWorkers(ctx, workers, wcfg)
	const maxsv = 4000
	st, err := m.Submit(Submission{
		Scenario:   workload.Spec{Workload: "pi"},
		MaxSamples: maxsv,
		PassEvery:  25,
		LeaseSize:  500,
	})
	if err != nil {
		tb.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		s, err := m.Run(st.ID)
		if err != nil {
			tb.Fatal(err)
		}
		if s.State == StateDone {
			break
		}
		if s.State.Terminal() {
			tb.Fatalf("run ended %s: %s", s.State, s.Error)
		}
		if time.Now().After(deadline) {
			tb.Fatalf("run stuck in %s", s.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	calls := m.fleetCalls.Load()
	cancel()
	if _, err := g.Wait(); err != nil {
		tb.Fatal(err)
	}
	return float64(calls) / float64(maxsv)
}

// legacyWorkerConfig reproduces the pre-batching protocol: immediate
// pulls, one Push RPC per completed window.
func legacyWorkerConfig() FleetWorkerConfig {
	return FleetWorkerConfig{
		Poll:          time.Millisecond,
		PullWait:      -1, // no long-poll: poll-loop fallback
		FlushInterval: -1, // no coalescing: one RPC per window
	}
}

func batchedWorkerConfig() FleetWorkerConfig {
	return FleetWorkerConfig{
		PullWait:      time.Second,
		FlushInterval: 10 * time.Millisecond,
	}
}

// TestFleetRPCReduction pins the tentpole's acceptance bound: the
// batched + long-polled protocol spends at least 2× fewer coordinator
// RPCs per merged realization than the legacy per-window protocol on
// the same run.
func TestFleetRPCReduction(t *testing.T) {
	legacy := runFleetCountingRPCs(t, 4, legacyWorkerConfig())
	batched := runFleetCountingRPCs(t, 4, batchedWorkerConfig())
	t.Logf("rpcs/realization: legacy %.4f, batched %.4f (%.1fx)", legacy, batched, legacy/batched)
	if batched*2 > legacy {
		t.Fatalf("batched protocol spends %.4f RPCs/realization, legacy %.4f — want ≥2x reduction", batched, legacy)
	}
}

// TestIdleFleetPullRate: an 8-worker fleet with nothing to do must
// cost at most 2 Pull RPC/s/worker — the long-poll parks each worker
// for the wait window instead of letting it spin on the poll timer.
func TestIdleFleetPullRate(t *testing.T) {
	m := newManager(t, testConfig(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const workers = 8
	window := 2 * time.Second
	g := m.StartLocalWorkers(ctx, workers, FleetWorkerConfig{PullWait: time.Second})
	time.Sleep(window)
	pulls := m.pullCalls.Load()
	cancel()
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	budget := int64(2 * workers * int(window/time.Second)) // 2 RPC/s/worker
	if pulls > budget {
		t.Fatalf("idle fleet issued %d pulls in %v (budget %d): long-poll not parking", pulls, window, budget)
	}
	if pulls < workers {
		t.Fatalf("only %d pulls from %d workers — fleet never polled at all", pulls, workers)
	}
}

// TestLongPollWakeOnSubmit: a pull parked in the long-poll is granted
// work as soon as a submission makes some — not at its deadline.
func TestLongPollWakeOnSubmit(t *testing.T) {
	m := newManager(t, testConfig(t))
	at, err := m.attach(AttachArgs{ClientID: "longpoll"})
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan PullReply, 1)
	go func() {
		pr, _ := m.pullTask(context.Background(), PullArgs{Worker: at.Worker, Wait: 10 * time.Second})
		parked <- pr
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case pr := <-parked:
		t.Fatalf("pull answered %+v before any work existed", pr)
	default:
	}
	t0 := time.Now()
	if _, err := m.Submit(piSubmission(2000, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case pr := <-parked:
		if !pr.Granted {
			t.Fatalf("woken pull got %+v, want a grant", pr)
		}
		if el := time.Since(t0); el > 2*time.Second {
			t.Fatalf("submission took %v to wake the parked pull", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pull still parked long after submission")
	}
}

// TestPushBatchOrdering: a batch carrying several in-order windows of
// one lease merges entirely — the per-lease done ledger accepts the
// same strictly-increasing sequence it would see unbatched.
func TestPushBatchOrdering(t *testing.T) {
	m := newManager(t, testConfig(t))
	if _, err := m.Submit(piSubmission(100_000, 1)); err != nil {
		t.Fatal(err)
	}
	at, err := m.attach(AttachArgs{ClientID: "order"})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := m.pullTask(context.Background(), PullArgs{Worker: at.Worker})
	if err != nil || !pr.Granted {
		t.Fatalf("pull: %+v, %v", pr, err)
	}
	task := pr.Task
	snap := windowSnap(t, task.Nrow, task.Ncol, task.PassEvery)
	var entries []PushEntry
	for i := int64(1); i <= 4; i++ {
		entries = append(entries, PushEntry{
			RunID: task.RunID, LeaseID: task.Lease.ID, Done: i * task.PassEvery, Snap: snap,
		})
	}
	rep, err := m.pushBatch(PushBatchArgs{Worker: at.Worker, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	for i, er := range rep.Entries {
		if er.Err != "" || er.Fenced || er.Final {
			t.Fatalf("entry %d rejected: %+v", i, er)
		}
	}
	st, err := m.Run(task.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * task.PassEvery; st.N != want {
		t.Fatalf("merged N = %d after batch, want %d", st.N, want)
	}
	// A replayed (duplicate) batch must dedup to nothing: same absolute
	// substream positions, already merged.
	rep, err = m.pushBatch(PushBatchArgs{Worker: at.Worker, Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	for i, er := range rep.Entries {
		if er.Err != "" {
			t.Fatalf("replayed entry %d errored: %q", i, er.Err)
		}
	}
	if st, _ = m.Run(task.RunID); st.N != 4*task.PassEvery {
		t.Fatalf("duplicate batch changed N to %d", st.N)
	}
}

// TestPushBatchBackpressure: when a run's collector saves take longer
// than the averaging period, batched pushes answer a positive
// RetryAfter so workers stretch their cadence. The clock is a stepping
// fake — every read advances it 30ms, so each save cycle "takes" at
// least one step against a 1ms averaging period.
func TestPushBatchBackpressure(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	cfg := testConfig(t)
	cfg.AverPeriod = time.Millisecond
	cfg.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(30 * time.Millisecond)
		return now
	}
	m := newManager(t, cfg)
	if _, err := m.Submit(piSubmission(100_000, 1)); err != nil {
		t.Fatal(err)
	}
	at, err := m.attach(AttachArgs{ClientID: "bp"})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := m.pullTask(context.Background(), PullArgs{Worker: at.Worker})
	if err != nil || !pr.Granted {
		t.Fatalf("pull: %+v, %v", pr, err)
	}
	task := pr.Task
	snap := windowSnap(t, task.Nrow, task.Ncol, task.PassEvery)
	var rep PushBatchReply
	for i := int64(1); i <= 3; i++ {
		rep, err = m.pushBatch(PushBatchArgs{Worker: at.Worker, Entries: []PushEntry{{
			RunID: task.RunID, LeaseID: task.Lease.ID, Done: i * task.PassEvery, Snap: snap,
		}}})
		if err != nil {
			t.Fatal(err)
		}
		if e := rep.Entries[0]; e.Err != "" || e.Fenced {
			t.Fatalf("push %d rejected: %+v", i, e)
		}
	}
	if rep.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v with lagging saves, want > 0", rep.RetryAfter)
	}
	if rep.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want capped at 1s", rep.RetryAfter)
	}
}

// TestDetachReissuesLeases: canceling a worker's context detaches it
// and reissues its leases immediately. The lease timeout is an hour,
// so any reissue observed here can only have come from the detach.
func TestDetachReissuesLeases(t *testing.T) {
	cfg := testConfig(t)
	cfg.LeaseTimeout = time.Hour
	m := newManager(t, cfg)
	st, err := m.Submit(Submission{
		Scenario:   workload.Spec{Workload: "pi"},
		MaxSamples: 10_000_000,
		PassEvery:  1000,
		LeaseSize:  500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := m.StartLocalWorkers(ctx, 2, FleetWorkerConfig{})
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := m.Run(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.Leases.Outstanding > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease ever granted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	s, err := m.Run(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s.Leases.Outstanding != 0 {
		t.Fatalf("%d leases still outstanding after all workers detached", s.Leases.Outstanding)
	}
	if s.Leases.Reissued == 0 {
		t.Fatal("no lease reissued on detach — remainder would wait out the 1h timeout")
	}
}

// TestRunsAPIMethodDispatch: every /runs route enforces its method set
// with 405 + Allow, and every error answer — including unknown routes —
// is the same JSON envelope {"error": "..."}.
func TestRunsAPIMethodDispatch(t *testing.T) {
	m := newManager(t, testConfig(t))
	st, err := m.Submit(piSubmission(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	h := m.Handler()
	cases := []struct {
		name      string
		method    string
		path      string
		wantCode  int
		wantAllow string
	}{
		{"put runs", http.MethodPut, "/runs", http.StatusMethodNotAllowed, "GET, HEAD, POST"},
		{"delete collection", http.MethodDelete, "/runs", http.StatusMethodNotAllowed, "GET, HEAD, POST"},
		{"patch runs", http.MethodPatch, "/runs", http.StatusMethodNotAllowed, "GET, HEAD, POST"},
		{"post run id", http.MethodPost, "/runs/" + st.ID, http.StatusMethodNotAllowed, "DELETE, GET, HEAD"},
		{"put run id", http.MethodPut, "/runs/" + st.ID, http.StatusMethodNotAllowed, "DELETE, GET, HEAD"},
		{"post report", http.MethodPost, "/runs/" + st.ID + "/report", http.StatusMethodNotAllowed, "GET, HEAD"},
		{"delete report", http.MethodDelete, "/runs/" + st.ID + "/report", http.StatusMethodNotAllowed, "GET, HEAD"},
		{"unknown route", http.MethodGet, "/nope", http.StatusNotFound, ""},
		{"trailing slash", http.MethodGet, "/runs/", http.StatusNotFound, ""},
		{"get runs ok", http.MethodGet, "/runs", http.StatusOK, ""},
		{"get run ok", http.MethodGet, "/runs/" + st.ID, http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
			if rec.Code != tc.wantCode {
				t.Fatalf("%s %s = %d, want %d (body %q)", tc.method, tc.path, rec.Code, tc.wantCode, rec.Body.String())
			}
			if got := rec.Header().Get("Allow"); got != tc.wantAllow {
				t.Fatalf("Allow = %q, want %q", got, tc.wantAllow)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
				t.Fatalf("Content-Type = %q, want JSON", ct)
			}
			if tc.wantCode >= 400 {
				var envelope struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error == "" {
					t.Fatalf("error body %q is not the JSON envelope (err %v)", rec.Body.String(), err)
				}
			}
		})
	}
}

// BenchmarkFleetRPCPerRealization measures coordinator RPCs per merged
// realization for the legacy per-window protocol and the batched +
// long-polled one — the tentpole's headline number, reported as
// rpcs/real alongside the usual ns/op.
func BenchmarkFleetRPCPerRealization(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  FleetWorkerConfig
	}{
		{"legacy", legacyWorkerConfig()},
		{"batched", batchedWorkerConfig()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total += runFleetCountingRPCs(b, 4, tc.cfg)
			}
			b.ReportMetric(total/float64(b.N), "rpcs/real")
		})
	}
}

// BenchmarkPushBatch drives the coordinator's batch-merge entry point
// directly: 16 in-order windows per RPC against one long lease.
func BenchmarkPushBatch(b *testing.B) {
	cfg := Config{DataRoot: b.TempDir(), MaxRealizations: 100_000_000}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	const (
		maxsv     = int64(80_000_000)
		passEvery = int64(100)
		perBatch  = 16
	)
	at, err := m.attach(AttachArgs{ClientID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	// One huge lease per run keeps grant traffic off the hot path; when
	// a long -benchtime drains it, submit a fresh run and keep going
	// (the re-lease cost is amortized over tens of thousands of ops).
	newTask := func() Task {
		if _, err := m.Submit(Submission{
			Scenario:   workload.Spec{Workload: "pi"},
			MaxSamples: maxsv,
			PassEvery:  passEvery,
			LeaseSize:  maxsv,
		}); err != nil {
			b.Fatal(err)
		}
		pr, err := m.pullTask(context.Background(), PullArgs{Worker: at.Worker})
		if err != nil || !pr.Granted {
			b.Fatalf("pull: %+v, %v", pr, err)
		}
		return pr.Task
	}
	task := newTask()
	snap := windowSnap(b, task.Nrow, task.Ncol, passEvery)
	batchesLeft := task.Lease.Count / passEvery / perBatch
	entries := make([]PushEntry, perBatch)
	done := int64(0)
	// Warm the merge path (collector shards, journal buffers) so a
	// low-N run measures steady-state batch application, not setup.
	for k := range entries {
		done += passEvery
		entries[k] = PushEntry{RunID: task.RunID, LeaseID: task.Lease.ID, Done: done, Snap: snap}
	}
	if _, err := m.pushBatch(PushBatchArgs{Worker: at.Worker, Entries: entries}); err != nil {
		b.Fatal(err)
	}
	batchesLeft--
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batchesLeft == 0 {
			task = newTask()
			batchesLeft = task.Lease.Count / passEvery / perBatch
			done = 0
		}
		batchesLeft--
		for k := range entries {
			done += passEvery
			entries[k] = PushEntry{RunID: task.RunID, LeaseID: task.Lease.ID, Done: done, Snap: snap}
		}
		rep, err := m.pushBatch(PushBatchArgs{Worker: at.Worker, Entries: entries})
		if err != nil {
			b.Fatal(err)
		}
		if e := rep.Entries[0]; e.Err != "" || e.Fenced || e.Final {
			b.Fatalf("batch %d rejected: %+v", i, e)
		}
	}
	b.ReportMetric(float64(perBatch), "windows/op")
}
