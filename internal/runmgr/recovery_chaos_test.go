package runmgr

import (
	"context"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/faultnet"
	"parmonc/internal/obs"
	"parmonc/internal/workload"
	_ "parmonc/internal/workload/builtin"
)

// recoveryChaosSubs are the runs every kill-restart seed must carry
// across service crashes and still finish bit-identically.
func recoveryChaosSubs() []Submission {
	return []Submission{
		{Scenario: workload.Spec{Workload: "pi"}, MaxSamples: 150_000, SeqNum: 61, PassEvery: 100, LeaseSize: 5_000},
		{Scenario: workload.Spec{Workload: "option"}, MaxSamples: 80_000, SeqNum: 62, PassEvery: 100, LeaseSize: 4_000},
	}
}

// TestKillRestartChaos is the headline proof of durable service state:
// the coordinator is killed at random points mid-flight (no drain, no
// final save — exactly a SIGKILL) and restarted against the same data
// root while fleet workers keep hammering the same endpoint through a
// faulty network. Every incarnation recovers from manifests + WAL +
// recovery images; zombie calls carrying a dead incarnation's epoch
// must fence, never double-merge; and the final reports must be
// bit-identical to uninterrupted isolated execution.
func TestKillRestartChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart chaos suite is slow")
	}
	subs := recoveryChaosSubs()
	want := make([]ReportPayload, len(subs))
	for i, sub := range subs {
		want[i] = runIsolated(t, sub)
	}

	var totalStale, totalResumed, totalRetries, totalKills int64
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("", func(t *testing.T) {
			root := t.TempDir()
			rnd := rand.New(rand.NewSource(seed))
			cfg := Config{
				DataRoot:     root,
				AverPeriod:   10 * time.Millisecond,
				LeaseTimeout: 300 * time.Millisecond,
			}

			// The fleet endpoint must survive restarts at the same address
			// so supervised workers reconnect to each new incarnation.
			raw, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := raw.Addr().String()

			boot := func(raw net.Listener, incarnation int64) *Manager {
				cfg.Registry = obs.NewRegistry()
				m, err := New(cfg)
				if err != nil {
					t.Fatalf("incarnation %d: %v", incarnation, err)
				}
				ln := faultnet.Wrap(raw, faultnet.RandomPlanner(seed*100+incarnation, 0.8, 128, 4096))
				if err := m.ServeFleet(ln); err != nil {
					t.Fatal(err)
				}
				return m
			}
			m := boot(raw, 0)
			t.Cleanup(func() { m.Close() })

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var retries atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Supervised workers: when a retry budget exhausts — the
					// network bit, or the service was dead between kill and
					// restart — a fresh worker replaces it, carrying no state
					// but possibly racing calls from its predecessor.
					for ctx.Err() == nil {
						wcfg := FleetWorkerConfig{
							Poll: 5 * time.Millisecond,
							Retry: cluster.RetryPolicy{
								MaxAttempts: 8,
								BaseDelay:   2 * time.Millisecond,
								CallTimeout: 2 * time.Second,
								Seed:        seed,
							},
						}
						if os.Getenv("PARMONC_CHAOS_BATCH") == "1" {
							// CI runs the suite a second time with coalesced
							// pushes and short long-polls forced on, so crashes
							// land mid-batch and mid-park too.
							wcfg.PullWait = 250 * time.Millisecond
							wcfg.FlushInterval = 10 * time.Millisecond
							wcfg.MaxBatch = 8
						}
						rep, err := RunFleetWorker(ctx, addr, wcfg)
						retries.Add(rep.Retries)
						if err == nil {
							return
						}
					}
				}()
			}

			var ids []string
			for _, sub := range subs {
				st, err := m.Submit(sub)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, st.ID)
			}

			// Kill-restart loop: let the fleet make some progress, then
			// yank the coordinator and boot a successor on the same root
			// and the same endpoint.
			for kill := int64(1); kill <= 5; kill++ {
				time.Sleep(time.Duration(50+rnd.Intn(250)) * time.Millisecond)
				done := true
				for _, id := range ids {
					st, err := m.Run(id)
					if err != nil {
						t.Fatal(err)
					}
					done = done && st.State.Terminal()
				}
				if done {
					break
				}
				if m.mStale != nil {
					totalStale += m.mStale.Value()
				}
				m.kill()
				totalKills++

				raw = rebind(t, addr)
				m = boot(raw, kill)
				mm := m
				t.Cleanup(func() { mm.Close() })
				info := m.Recovery()
				totalResumed += int64(info.Resumed)
				if info.CleanShutdown {
					t.Error("a killed incarnation read as a clean shutdown")
				}
			}

			for _, id := range ids {
				waitState(t, m, id, StateDone, 120*time.Second)
			}
			for i, id := range ids {
				got, err := m.Report(id)
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, subs[i].Scenario.Workload+"/kill-restart", got, want[i])
			}
			if m.mStale != nil {
				totalStale += m.mStale.Value()
			}

			cancel()
			wg.Wait()
			totalRetries += retries.Load()
		})
	}
	// The chaos must actually have bitten, and recovery must actually
	// have carried state across at least one crash — otherwise the suite
	// silently degenerates into the happy path.
	if totalKills == 0 {
		t.Error("no incarnation was ever killed: runs finished before the first kill window")
	}
	if totalResumed == 0 {
		t.Error("no run ever resumed from a recovery image across any seed")
	}
	if totalStale == 0 {
		t.Error("no stale-epoch call was ever fenced across any seed")
	}
	if totalRetries == 0 {
		t.Error("no transport retries across any seed: faults never reached the fleet")
	}
	t.Logf("kill-restart totals: %d kills, %d resumed runs, %d stale-epoch fences, %d transport retries",
		totalKills, totalResumed, totalStale, totalRetries)
}

// rebind re-listens on addr, retrying while the previous incarnation's
// socket drains out of the kernel.
func rebind(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
