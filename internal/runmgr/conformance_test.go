package runmgr

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"parmonc/internal/cluster"
	"parmonc/internal/workload"
	_ "parmonc/internal/workload/builtin"
)

// The multi-run conformance contract: a run executed on a shared fleet
// alongside other runs produces a report bit-identical to the same
// submission executed alone. The shard layout is the lease partition
// (a pure function of maxsv and lease size), realizations are
// substream-addressed, and push windows are a pure function of the
// partition and PassEvery — so neither the number of fleet workers nor
// the interleaving with other runs can move a single bit.
//
// MeanSimTime is wall-clock derived and excluded by construction (it
// is not part of the compared fields).

// conformanceSubs are the submissions every conformance test runs:
// different workloads, sizes, and cadences, with pinned subsequences
// so the isolated counterpart draws identical random numbers.
func conformanceSubs() []Submission {
	return []Submission{
		{
			Scenario:   workload.Spec{Workload: "pi"},
			MaxSamples: 20_000,
			SeqNum:     11,
			PassEvery:  100,
			LeaseSize:  1_500, // deliberately not a multiple of PassEvery
		},
		{
			Scenario:   workload.Spec{Workload: "mm1", Params: workload.Values{"lambda": 0.5}},
			MaxSamples: 6_000,
			SeqNum:     12,
			PassEvery:  50,
			LeaseSize:  1_000,
		},
	}
}

// runIsolated executes sub alone: a dedicated manager, one local
// worker, nothing else competing — the reference a shared-fleet run
// must reproduce exactly.
func runIsolated(t *testing.T, sub Submission) ReportPayload {
	t.Helper()
	m := newManager(t, testConfig(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartLocalWorkers(ctx, 1, FleetWorkerConfig{})
	st, err := m.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone, 120*time.Second)
	rep, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// sameBits compares float64s exactly, treating identical NaN payloads
// as equal (== would reject NaN == NaN).
func sameBits(a, b JSONFloat) bool {
	return math.Float64bits(float64(a)) == math.Float64bits(float64(b))
}

func compareReports(t *testing.T, label string, got, want ReportPayload) {
	t.Helper()
	if got.N != want.N {
		t.Errorf("%s: N = %d, want %d", label, got.N, want.N)
	}
	if got.Nrow != want.Nrow || got.Ncol != want.Ncol {
		t.Fatalf("%s: dims %dx%d, want %dx%d", label, got.Nrow, got.Ncol, want.Nrow, want.Ncol)
	}
	matrices := []struct {
		name     string
		got, ref []JSONFloat
	}{
		{"mean", got.Mean, want.Mean},
		{"var", got.Var, want.Var},
		{"abs_err", got.AbsErr, want.AbsErr},
		{"rel_err", got.RelErr, want.RelErr},
	}
	for _, mx := range matrices {
		if len(mx.got) != len(mx.ref) {
			t.Fatalf("%s: %s has %d entries, want %d", label, mx.name, len(mx.got), len(mx.ref))
		}
		for i := range mx.got {
			if !sameBits(mx.got[i], mx.ref[i]) {
				t.Errorf("%s: %s[%d] = %v (bits %x), want %v (bits %x)",
					label, mx.name, i,
					float64(mx.got[i]), math.Float64bits(float64(mx.got[i])),
					float64(mx.ref[i]), math.Float64bits(float64(mx.ref[i])))
			}
		}
	}
	for _, s := range []struct {
		name     string
		got, ref JSONFloat
	}{
		{"max_abs_err", got.MaxAbsErr, want.MaxAbsErr},
		{"max_rel_err", got.MaxRelErr, want.MaxRelErr},
		{"max_var", got.MaxVar, want.MaxVar},
	} {
		if !sameBits(s.got, s.ref) {
			t.Errorf("%s: %s = %v, want %v", label, s.name, float64(s.got), float64(s.ref))
		}
	}
}

// TestConformanceConcurrentLocal: two runs sharing a 4-worker
// in-process fleet, each bit-identical to its isolated counterpart.
func TestConformanceConcurrentLocal(t *testing.T) {
	subs := conformanceSubs()

	m := newManager(t, testConfig(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartLocalWorkers(ctx, 4, FleetWorkerConfig{})

	var ids []string
	for _, sub := range subs {
		st, err := m.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone, 120*time.Second)
	}
	for i, id := range ids {
		got, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		want := runIsolated(t, subs[i])
		compareReports(t, subs[i].Scenario.Workload+"/local", got, want)
	}
}

// TestConformanceConcurrentTCP: the same contract over the TCP fleet
// transport — gob encoding, resilient clients, real sockets.
func TestConformanceConcurrentTCP(t *testing.T) {
	subs := conformanceSubs()

	m := newManager(t, testConfig(t))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ServeFleet(ln); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := RunFleetWorker(ctx, ln.Addr().String(), FleetWorkerConfig{
				Poll:  5 * time.Millisecond,
				Retry: cluster.RetryPolicy{BaseDelay: 5 * time.Millisecond, CallTimeout: 10 * time.Second},
			})
			workerDone <- err
		}()
	}

	var ids []string
	for _, sub := range subs {
		st, err := m.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone, 120*time.Second)
	}
	for i, id := range ids {
		got, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		want := runIsolated(t, subs[i])
		compareReports(t, subs[i].Scenario.Workload+"/tcp", got, want)
	}

	cancel()
	for i := 0; i < 4; i++ {
		if err := <-workerDone; err != nil {
			t.Errorf("worker exit: %v", err)
		}
	}
}

// TestConformanceWorkerCountInvariance: 1, 2, and 5 local workers all
// produce the same bits for the same submission.
func TestConformanceWorkerCountInvariance(t *testing.T) {
	sub := Submission{
		Scenario:   workload.Spec{Workload: "option"},
		MaxSamples: 8_000,
		SeqNum:     21,
		PassEvery:  100,
		LeaseSize:  900,
	}
	var ref ReportPayload
	for i, workers := range []int{1, 2, 5} {
		m := newManager(t, testConfig(t))
		ctx, cancel := context.WithCancel(context.Background())
		m.StartLocalWorkers(ctx, workers, FleetWorkerConfig{})
		st, err := m.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, st.ID, StateDone, 120*time.Second)
		rep, err := m.Report(st.ID)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = rep
			continue
		}
		compareReports(t, "option/workers", rep, ref)
	}
}
