package stat

import (
	"fmt"
	"math"
	"time"
)

// StableAccumulator is a numerically robust alternative to Accumulator:
// it tracks running means and centered second moments (Welford's
// algorithm) instead of raw sums Σζ and Σζ², and merges partial results
// with the exact parallel combination of Chan, Golub & LeVeque (1983).
//
// The original PARMONC stores raw sums, which is exactly what
// Accumulator reproduces — but raw sums lose precision catastrophically
// when |Eζ| ≫ σ (the variance appears as the difference of two huge
// numbers). StableAccumulator computes the same statistics with
// relative error near machine epsilon in that regime, at ~2× the
// arithmetic cost per entry. Use it for workloads with large means and
// small fluctuations; the wire format is shared (Snapshot carries raw
// sums, converted on the way in and out, so a stable collector can
// merge plain workers and vice versa — at the cost of reintroducing the
// raw-sum rounding for data that crossed the wire in that form).
type StableAccumulator struct {
	nrow, ncol int
	mean       []float64 // running means
	m2         []float64 // Σ (ζ − mean)², centered
	n          int64
	simTime    time.Duration
}

// NewStable returns an empty stable accumulator for nrow×ncol
// realization matrices.
func NewStable(nrow, ncol int) *StableAccumulator {
	if nrow <= 0 || ncol <= 0 {
		panic(fmt.Sprintf("stat: invalid dimensions %d×%d", nrow, ncol))
	}
	return &StableAccumulator{
		nrow: nrow,
		ncol: ncol,
		mean: make([]float64, nrow*ncol),
		m2:   make([]float64, nrow*ncol),
	}
}

// Rows returns the number of realization matrix rows.
func (a *StableAccumulator) Rows() int { return a.nrow }

// Cols returns the number of realization matrix columns.
func (a *StableAccumulator) Cols() int { return a.ncol }

// N returns the accumulated sample volume.
func (a *StableAccumulator) N() int64 { return a.n }

// Add accumulates one realization (Welford update).
func (a *StableAccumulator) Add(realization []float64) error {
	if len(realization) != len(a.mean) {
		return fmt.Errorf("stat: realization has %d entries, accumulator wants %d", len(realization), len(a.mean))
	}
	a.n++
	inv := 1 / float64(a.n)
	for i, v := range realization {
		delta := v - a.mean[i]
		a.mean[i] += delta * inv
		a.m2[i] += delta * (v - a.mean[i])
	}
	return nil
}

// AddTimed accumulates one realization with its simulation time.
func (a *StableAccumulator) AddTimed(realization []float64, elapsed time.Duration) error {
	if err := a.Add(realization); err != nil {
		return err
	}
	a.simTime += elapsed
	return nil
}

// MergeStable combines another stable accumulator into this one using
// the exact parallel update:
//
//	δ = mean_b − mean_a
//	mean = mean_a + δ·n_b/n
//	M2   = M2_a + M2_b + δ²·n_a·n_b/n
func (a *StableAccumulator) MergeStable(b *StableAccumulator) error {
	if b.nrow != a.nrow || b.ncol != a.ncol {
		return fmt.Errorf("stat: cannot merge %d×%d into %d×%d", b.nrow, b.ncol, a.nrow, a.ncol)
	}
	if b.n == 0 {
		return nil
	}
	if a.n == 0 {
		copy(a.mean, b.mean)
		copy(a.m2, b.m2)
		a.n = b.n
		a.simTime = b.simTime
		return nil
	}
	na, nb := float64(a.n), float64(b.n)
	n := na + nb
	for i := range a.mean {
		delta := b.mean[i] - a.mean[i]
		a.mean[i] += delta * nb / n
		a.m2[i] += b.m2[i] + delta*delta*na*nb/n
	}
	a.n += b.n
	a.simTime += b.simTime
	return nil
}

// Merge folds a raw-sum Snapshot into the stable accumulator by
// converting it to (mean, M2) form first. Precision already lost in the
// snapshot's raw sums is not recoverable, but no further loss occurs.
func (a *StableAccumulator) Merge(s Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return a.MergeTrusted(s)
}

// MergeTrusted is Merge without the snapshot revalidation, for callers
// that already validated s at their boundary; see
// Accumulator.MergeTrusted.
func (a *StableAccumulator) MergeTrusted(s Snapshot) error {
	if s.Nrow != a.nrow || s.Ncol != a.ncol {
		return fmt.Errorf("stat: cannot merge %d×%d snapshot into %d×%d accumulator", s.Nrow, s.Ncol, a.nrow, a.ncol)
	}
	if s.N == 0 {
		return nil
	}
	b := NewStable(s.Nrow, s.Ncol)
	b.n = s.N
	b.simTime = time.Duration(s.SimTimeNS)
	l := float64(s.N)
	for i := range b.mean {
		mean := s.Sum[i] / l
		b.mean[i] = mean
		m2 := s.Sum2[i] - l*mean*mean
		if m2 < 0 {
			m2 = 0
		}
		b.m2[i] = m2
	}
	return a.MergeStable(b)
}

// Snapshot converts the stable state back to the shared raw-sum wire
// format.
func (a *StableAccumulator) Snapshot() Snapshot {
	s := Snapshot{
		Nrow:      a.nrow,
		Ncol:      a.ncol,
		Sum:       make([]float64, len(a.mean)),
		Sum2:      make([]float64, len(a.mean)),
		N:         a.n,
		SimTimeNS: int64(a.simTime),
	}
	l := float64(a.n)
	for i := range a.mean {
		s.Sum[i] = a.mean[i] * l
		s.Sum2[i] = a.m2[i] + l*a.mean[i]*a.mean[i]
	}
	return s
}

// Report computes the derived statistics, matching Accumulator.Report's
// conventions (population variance, γ·σ̄·L^{-1/2} errors).
func (a *StableAccumulator) Report(gamma float64) Report {
	r := Report{
		Nrow:   a.nrow,
		Ncol:   a.ncol,
		N:      a.n,
		Mean:   make([]float64, len(a.mean)),
		Var:    make([]float64, len(a.mean)),
		AbsErr: make([]float64, len(a.mean)),
		RelErr: make([]float64, len(a.mean)),
		Gamma:  gamma,
	}
	if a.n == 0 {
		return r
	}
	l := float64(a.n)
	sqrtL := math.Sqrt(l)
	for i := range a.mean {
		mean := a.mean[i]
		variance := a.m2[i] / l
		if variance < 0 {
			variance = 0
		}
		abs := gamma * math.Sqrt(variance) / sqrtL
		r.Mean[i] = mean
		r.Var[i] = variance
		r.AbsErr[i] = abs
		switch {
		case mean != 0:
			r.RelErr[i] = abs / math.Abs(mean) * 100
		case abs > 0:
			r.RelErr[i] = math.Inf(1)
		default:
			r.RelErr[i] = 0
		}
		if r.AbsErr[i] > r.MaxAbsErr {
			r.MaxAbsErr = r.AbsErr[i]
		}
		if r.RelErr[i] > r.MaxRelErr {
			r.MaxRelErr = r.RelErr[i]
		}
		if r.Var[i] > r.MaxVar {
			r.MaxVar = r.Var[i]
		}
	}
	r.MeanSimTime = time.Duration(int64(a.simTime) / a.n)
	return r
}
