package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, d := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d): expected panic", d[0], d[1])
				}
			}()
			New(d[0], d[1])
		}()
	}
}

func TestAddWrongLength(t *testing.T) {
	a := New(2, 3)
	if err := a.Add([]float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if err := a.Add(make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestScalarMoments(t *testing.T) {
	a := New(1, 1)
	vals := []float64{1, 2, 3, 4, 5}
	for _, v := range vals {
		if err := a.Add([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Report(DefaultConfidenceCoefficient)
	if r.N != 5 {
		t.Fatalf("N = %d", r.N)
	}
	if got := r.MeanAt(0, 0); got != 3 {
		t.Fatalf("mean = %g, want 3", got)
	}
	// Population variance of {1..5} is 2.
	if got := r.VarAt(0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("var = %g, want 2", got)
	}
	wantAbs := 3 * math.Sqrt(2) / math.Sqrt(5)
	if got := r.AbsErrAt(0, 0); math.Abs(got-wantAbs) > 1e-12 {
		t.Fatalf("abserr = %g, want %g", got, wantAbs)
	}
	wantRel := wantAbs / 3 * 100
	if got := r.RelErrAt(0, 0); math.Abs(got-wantRel) > 1e-12 {
		t.Fatalf("relerr = %g, want %g", got, wantRel)
	}
}

func TestMatrixLayoutRowMajor(t *testing.T) {
	a := New(2, 3)
	if err := a.Add([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	r := a.Report(3)
	if got := r.MeanAt(0, 2); got != 3 {
		t.Fatalf("(0,2) = %g, want 3", got)
	}
	if got := r.MeanAt(1, 0); got != 4 {
		t.Fatalf("(1,0) = %g, want 4", got)
	}
}

func TestEmptyReportZeros(t *testing.T) {
	r := New(2, 2).Report(3)
	if r.N != 0 || r.MaxAbsErr != 0 || r.MaxRelErr != 0 || r.MaxVar != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	for _, v := range r.Mean {
		if v != 0 {
			t.Fatal("empty mean nonzero")
		}
	}
}

func TestConstantEntriesZeroVariance(t *testing.T) {
	a := New(1, 2)
	for i := 0; i < 100; i++ {
		if err := a.Add([]float64{7, 0}); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Report(3)
	if got := r.VarAt(0, 0); got != 0 {
		t.Fatalf("var of constant = %g", got)
	}
	if got := r.AbsErrAt(0, 0); got != 0 {
		t.Fatalf("abserr of constant = %g", got)
	}
	// Identically-zero entry: relative error 0 by convention.
	if got := r.RelErrAt(0, 1); got != 0 {
		t.Fatalf("relerr of zero entry = %g", got)
	}
}

func TestRelErrInfForZeroMeanNoise(t *testing.T) {
	a := New(1, 1)
	a.Add([]float64{1})
	a.Add([]float64{-1})
	r := a.Report(3)
	if got := r.MeanAt(0, 0); got != 0 {
		t.Fatalf("mean = %g", got)
	}
	if got := r.RelErrAt(0, 0); !math.IsInf(got, 1) {
		t.Fatalf("relerr = %g, want +Inf", got)
	}
}

func TestMaxima(t *testing.T) {
	a := New(1, 3)
	// Entry 0: constant; entry 1: small spread; entry 2: big spread.
	a.Add([]float64{5, 1.0, 10})
	a.Add([]float64{5, 1.2, 30})
	r := a.Report(3)
	if r.MaxVar != r.VarAt(0, 2) {
		t.Fatalf("MaxVar = %g, want entry 2's %g", r.MaxVar, r.VarAt(0, 2))
	}
	if r.MaxAbsErr != r.AbsErrAt(0, 2) {
		t.Fatal("MaxAbsErr wrong")
	}
	if r.MaxRelErr != math.Max(r.RelErrAt(0, 1), r.RelErrAt(0, 2)) {
		t.Fatal("MaxRelErr wrong")
	}
}

func TestMergeEqualsPooledAccumulation(t *testing.T) {
	// Merging M partial accumulators must give exactly the same report
	// as accumulating everything in one: the collector correctness
	// property, formula (5).
	rng := rand.New(rand.NewSource(42))
	pooled := New(3, 2)
	parts := make([]*Accumulator, 4)
	for m := range parts {
		parts[m] = New(3, 2)
	}
	for i := 0; i < 1000; i++ {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.NormFloat64()*3 + float64(j)
		}
		if err := pooled.Add(row); err != nil {
			t.Fatal(err)
		}
		if err := parts[i%4].Add(row); err != nil {
			t.Fatal(err)
		}
	}
	merged := New(3, 2)
	for _, p := range parts {
		if err := merged.Merge(p.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	rp, rm := pooled.Report(3), merged.Report(3)
	if rp.N != rm.N {
		t.Fatalf("N: %d vs %d", rp.N, rm.N)
	}
	for i := range rp.Mean {
		if math.Abs(rp.Mean[i]-rm.Mean[i]) > 1e-9 {
			t.Fatalf("mean[%d]: %g vs %g", i, rp.Mean[i], rm.Mean[i])
		}
		if math.Abs(rp.Var[i]-rm.Var[i]) > 1e-9 {
			t.Fatalf("var[%d]: %g vs %g", i, rp.Var[i], rm.Var[i])
		}
	}
}

func TestMergeCommutative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		a1, a2 := New(1, 1), New(1, 1)
		sa, sb := New(1, 1), New(1, 1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			sa.Add([]float64{x})
		}
		for _, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return true
			}
			sb.Add([]float64{y})
		}
		a1.Merge(sa.Snapshot())
		a1.Merge(sb.Snapshot())
		a2.Merge(sb.Snapshot())
		a2.Merge(sa.Snapshot())
		r1, r2 := a1.Report(3), a2.Report(3)
		return r1.N == r2.N && r1.Mean[0] == r2.Mean[0] && r1.Var[0] == r2.Var[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDimensionMismatch(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	if err := a.Merge(b.Snapshot()); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSnapshotValidate(t *testing.T) {
	good := New(2, 2).Snapshot()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Snapshot{
		{Nrow: 0, Ncol: 2},
		{Nrow: 2, Ncol: 2, Sum: make([]float64, 3), Sum2: make([]float64, 4)},
		{Nrow: 1, Ncol: 1, Sum: []float64{1}, Sum2: []float64{1}, N: -1},
		{Nrow: 1, Ncol: 1, Sum: []float64{math.NaN()}, Sum2: []float64{1}, N: 1},
		{Nrow: 1, Ncol: 1, Sum: []float64{1}, Sum2: []float64{-1}, N: 1},
		{Nrow: 1, Ncol: 1, Sum: []float64{1}, Sum2: []float64{math.Inf(1)}, N: 1},
		{Nrow: 1, Ncol: 1, Sum: []float64{1}, Sum2: []float64{1}, N: 1, SimTimeNS: -5},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestFromSnapshotRoundTrip(t *testing.T) {
	a := New(2, 2)
	a.AddTimed([]float64{1, 2, 3, 4}, time.Second)
	a.AddTimed([]float64{4, 3, 2, 1}, 3*time.Second)
	b, err := FromSnapshot(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Report(3), b.Report(3)
	if ra.N != rb.N || ra.MeanSimTime != rb.MeanSimTime {
		t.Fatal("round trip lost volume or timing")
	}
	for i := range ra.Mean {
		if ra.Mean[i] != rb.Mean[i] || ra.Var[i] != rb.Var[i] {
			t.Fatal("round trip lost moments")
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	a := New(1, 1)
	a.Add([]float64{1})
	s := a.Snapshot()
	a.Add([]float64{100})
	if s.Sum[0] != 1 || s.N != 1 {
		t.Fatal("snapshot aliases accumulator storage")
	}
}

func TestMeanSimTime(t *testing.T) {
	a := New(1, 1)
	a.AddTimed([]float64{0}, 2*time.Second)
	a.AddTimed([]float64{0}, 4*time.Second)
	r := a.Report(3)
	if r.MeanSimTime != 3*time.Second {
		t.Fatalf("MeanSimTime = %v, want 3s", r.MeanSimTime)
	}
}

func TestReset(t *testing.T) {
	a := New(1, 1)
	a.AddTimed([]float64{5}, time.Second)
	a.Reset()
	if a.N() != 0 || a.SimTime() != 0 {
		t.Fatal("reset incomplete")
	}
	r := a.Report(3)
	if r.Mean[0] != 0 {
		t.Fatal("reset left moments behind")
	}
}

func TestConvergenceToExpectation(t *testing.T) {
	// Law of large numbers sanity: the 3σ error bound actually contains
	// the true mean for a uniform variable with overwhelming probability.
	rng := rand.New(rand.NewSource(7))
	a := New(1, 1)
	const n = 200000
	for i := 0; i < n; i++ {
		a.Add([]float64{rng.Float64()})
	}
	r := a.Report(DefaultConfidenceCoefficient)
	if diff := math.Abs(r.MeanAt(0, 0) - 0.5); diff > r.AbsErrAt(0, 0) {
		t.Fatalf("|mean-0.5| = %g exceeds 3σ bound %g", diff, r.AbsErrAt(0, 0))
	}
	// Variance of U(0,1) is 1/12 ≈ 0.0833.
	if got := r.VarAt(0, 0); math.Abs(got-1.0/12) > 0.002 {
		t.Fatalf("var = %g, want ≈ 1/12", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	r := New(2, 2).Report(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.At(2, 0)
}

func BenchmarkAdd1000x2(b *testing.B) {
	a := New(1000, 2)
	row := make([]float64, 2000)
	for i := range row {
		row[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Add(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge1000x2(b *testing.B) {
	a := New(1000, 2)
	s := New(1000, 2)
	s.Add(make([]float64, 2000))
	snap := s.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(snap); err != nil {
			b.Fatal(err)
		}
	}
}
