package stat

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestStableMatchesNaiveOnBenignData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	naive := New(2, 2)
	stable := NewStable(2, 2)
	row := make([]float64, 4)
	for i := 0; i < 5000; i++ {
		for j := range row {
			row[j] = rng.NormFloat64()*2 + float64(j)
		}
		if err := naive.Add(row); err != nil {
			t.Fatal(err)
		}
		if err := stable.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	rn, rs := naive.Report(3), stable.Report(3)
	if rn.N != rs.N {
		t.Fatal("volumes differ")
	}
	for i := range rn.Mean {
		if math.Abs(rn.Mean[i]-rs.Mean[i]) > 1e-12 {
			t.Fatalf("mean[%d]: %g vs %g", i, rn.Mean[i], rs.Mean[i])
		}
		if math.Abs(rn.Var[i]-rs.Var[i]) > 1e-9 {
			t.Fatalf("var[%d]: %g vs %g", i, rn.Var[i], rs.Var[i])
		}
	}
}

func TestStableSurvivesIllConditionedData(t *testing.T) {
	// Mean 10^9, standard deviation 10^-3: raw sums lose the variance
	// entirely (Σζ² ≈ 10^18·L, fluctuations ≈ 10^3 — below the float64
	// resolution of 10^18·L), while Welford keeps it.
	const (
		mean  = 1e9
		sigma = 1e-3
		n     = 100000
	)
	rng := rand.New(rand.NewSource(5))
	naive := New(1, 1)
	stable := NewStable(1, 1)
	for i := 0; i < n; i++ {
		v := mean + sigma*rng.NormFloat64()
		naive.Add([]float64{v})
		stable.Add([]float64{v})
	}
	wantVar := sigma * sigma
	gotStable := stable.Report(3).VarAt(0, 0)
	gotNaive := naive.Report(3).VarAt(0, 0)
	if math.Abs(gotStable-wantVar)/wantVar > 0.05 {
		t.Fatalf("stable variance %g, want %g", gotStable, wantVar)
	}
	// Document the failure mode being fixed: the naive estimate is off
	// by orders of magnitude (usually clamped to 0 or wildly wrong).
	if math.Abs(gotNaive-wantVar)/wantVar < 1 {
		t.Logf("note: naive accumulator happened to survive (%g); test data may be too easy", gotNaive)
	}
}

func TestStableMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pooled := NewStable(1, 2)
	parts := []*StableAccumulator{NewStable(1, 2), NewStable(1, 2), NewStable(1, 2)}
	row := make([]float64, 2)
	for i := 0; i < 3000; i++ {
		row[0] = rng.Float64() * 10
		row[1] = rng.ExpFloat64()
		pooled.Add(row)
		parts[i%3].Add(row)
	}
	merged := NewStable(1, 2)
	for _, p := range parts {
		if err := merged.MergeStable(p); err != nil {
			t.Fatal(err)
		}
	}
	rp, rm := pooled.Report(3), merged.Report(3)
	for i := range rp.Mean {
		if math.Abs(rp.Mean[i]-rm.Mean[i]) > 1e-11 {
			t.Fatalf("mean[%d]: %g vs %g", i, rp.Mean[i], rm.Mean[i])
		}
		if math.Abs(rp.Var[i]-rm.Var[i]) > 1e-10 {
			t.Fatalf("var[%d]: %g vs %g", i, rp.Var[i], rm.Var[i])
		}
	}
}

func TestStableMergeEmptySides(t *testing.T) {
	a := NewStable(1, 1)
	b := NewStable(1, 1)
	b.AddTimed([]float64{2}, time.Second)
	if err := a.MergeStable(b); err != nil { // empty ← full
		t.Fatal(err)
	}
	if a.N() != 1 || a.Report(3).MeanAt(0, 0) != 2 {
		t.Fatal("merge into empty failed")
	}
	c := NewStable(1, 1)
	if err := a.MergeStable(c); err != nil { // full ← empty
		t.Fatal(err)
	}
	if a.N() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestStableMergeDimensionMismatch(t *testing.T) {
	a := NewStable(1, 1)
	b := NewStable(1, 2)
	if err := a.MergeStable(b); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := a.Merge(New(2, 2).Snapshot()); err == nil {
		t.Fatal("expected snapshot dimension error")
	}
}

func TestStableSnapshotInterop(t *testing.T) {
	// A stable collector must interoperate with plain workers through
	// the shared raw-sum wire format, and vice versa.
	rng := rand.New(rand.NewSource(31))
	worker := New(1, 1) // plain worker
	for i := 0; i < 1000; i++ {
		worker.Add([]float64{rng.Float64()})
	}
	collector := NewStable(1, 1)
	if err := collector.Merge(worker.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := worker.Report(3)
	got := collector.Report(3)
	if math.Abs(got.MeanAt(0, 0)-want.MeanAt(0, 0)) > 1e-12 {
		t.Fatalf("mean %g vs %g", got.MeanAt(0, 0), want.MeanAt(0, 0))
	}
	if math.Abs(got.VarAt(0, 0)-want.VarAt(0, 0)) > 1e-9 {
		t.Fatalf("var %g vs %g", got.VarAt(0, 0), want.VarAt(0, 0))
	}

	// Round-trip the stable state through a Snapshot into a plain
	// accumulator.
	plain := New(1, 1)
	if err := plain.Merge(collector.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if plain.N() != collector.N() {
		t.Fatal("snapshot lost volume")
	}
	if math.Abs(plain.Report(3).MeanAt(0, 0)-got.MeanAt(0, 0)) > 1e-12 {
		t.Fatal("snapshot lost mean")
	}
}

func TestStableAddWrongLength(t *testing.T) {
	a := NewStable(1, 2)
	if err := a.Add([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestNewStablePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStable(0, 1)
}

func TestStableEmptyReport(t *testing.T) {
	r := NewStable(2, 2).Report(3)
	if r.N != 0 || r.MaxAbsErr != 0 {
		t.Fatal("empty stable accumulator must report zeros")
	}
}

func TestStableTimedMeanSimTime(t *testing.T) {
	a := NewStable(1, 1)
	a.AddTimed([]float64{1}, 2*time.Second)
	a.AddTimed([]float64{2}, 4*time.Second)
	if got := a.Report(3).MeanSimTime; got != 3*time.Second {
		t.Fatalf("MeanSimTime = %v", got)
	}
}

func BenchmarkStableAdd1000x2(b *testing.B) {
	a := NewStable(1000, 2)
	row := make([]float64, 2000)
	for i := range row {
		row[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Add(row); err != nil {
			b.Fatal(err)
		}
	}
}
