package stat

// Deterministic shard reduction for the sharded collector.
//
// The sharded collector stages each worker's subtotal pushes in a
// per-worker accumulator and only folds the shards into a global total
// when a report is actually needed (save, finalize, status). Floating-
// point addition is not associative, so the fold must happen in a fixed
// order for the result to be reproducible: base moments first, then the
// shards in ascending worker-index order, each folded with one
// left-to-right Merge. Two runs that hand each worker the same pushes
// in the same per-worker order then produce bit-identical reports no
// matter how the pushes interleaved across workers in real time — the
// property Lubachevsky's "Why The Results of Parallel and Serial Monte
// Carlo Simulations May Differ" demands of a parallel collector.
//
// Within one shard the staging accumulator applies pushes strictly in
// arrival order, so the fold is a left fold at both levels. For raw
// sums that left fold has an exact regrouping property: pre-merging any
// prefix of a push sequence into a composite snapshot and then merging
// the rest is bit-identical to merging the sequence one by one, because
// both perform the same pairwise additions in the same order. That is
// the "associative under the fixed reduction tree" contract the
// property tests in shard_prop_test.go pin.

// Fold merges base and then each shard snapshot, in slice order, into a
// fresh raw-sum accumulator — the canonical reduction the sharded
// collector performs with live accumulators (Accumulator.MergeFrom,
// which is bitwise the same arithmetic without the snapshot copies).
// Callers wanting the collector's deterministic order pass shards
// sorted by worker index.
func Fold(nrow, ncol int, base Snapshot, shards []Snapshot) (*Accumulator, error) {
	total := New(nrow, ncol)
	if err := total.Merge(base); err != nil {
		return nil, err
	}
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// FoldStable is Fold for the Welford/Chan scheme: base and shards are
// converted from the raw-sum wire format and combined with the exact
// parallel update, in slice order.
func FoldStable(nrow, ncol int, base Snapshot, shards []Snapshot) (*StableAccumulator, error) {
	total := NewStable(nrow, ncol)
	if err := total.Merge(base); err != nil {
		return nil, err
	}
	for _, s := range shards {
		if err := total.Merge(s); err != nil {
			return nil, err
		}
	}
	return total, nil
}
