package stat

import "testing"

// Micro-benchmarks for the two functions on the collector's push hot
// path: every push validates its snapshot once and then folds it into a
// shard accumulator, so per-element costs here multiply directly into
// collector throughput (see BenchmarkCollectorPushContended at the repo
// root). The 1000×2 shape matches that benchmark's run geometry.

func benchSnapshot() Snapshot {
	a := New(1000, 2)
	row := make([]float64, 1000*2)
	for i := range row {
		row[i] = float64(i)
	}
	if err := a.Add(row); err != nil {
		panic(err)
	}
	return a.Snapshot()
}

func BenchmarkSnapshotValidate(b *testing.B) {
	s := benchSnapshot()
	b.SetBytes(int64(16 * len(s.Sum)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulatorMergeTrusted(b *testing.B) {
	s := benchSnapshot()
	a := New(1000, 2)
	b.SetBytes(int64(16 * len(s.Sum)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.MergeTrusted(s); err != nil {
			b.Fatal(err)
		}
	}
}
