package stat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// Property tests for the deterministic shard reduction (shard.go):
// randomized snapshot sequences, seeded generators, bitwise assertions.
// These pin the exact floating-point contracts the sharded collector
// relies on — tolerance comparisons would not catch a reordered
// addition, which is precisely the bug class "Why The Results of
// Parallel and Serial Monte Carlo Simulations May Differ" warns about.

// genSnapshot draws a random but internally consistent snapshot:
// accumulate volume realizations so Sum/Sum2/N always describe real
// data (Validate-clean by construction).
func genSnapshot(r *rand.Rand, nrow, ncol int, volume int) Snapshot {
	a := New(nrow, ncol)
	row := make([]float64, nrow*ncol)
	for k := 0; k < volume; k++ {
		for i := range row {
			// Spread magnitudes across ~6 decades so regrouping bugs
			// that only bite with mixed exponents are exercised.
			row[i] = (r.Float64() - 0.25) * math.Pow(10, float64(r.Intn(7)-3))
		}
		if err := a.AddTimed(row, time.Duration(r.Intn(1000))*time.Microsecond); err != nil {
			panic(err)
		}
	}
	return a.Snapshot()
}

// bitsEqual compares two snapshots for exact bit identity.
func bitsEqual(a, b Snapshot) bool {
	if a.Nrow != b.Nrow || a.Ncol != b.Ncol || a.N != b.N || a.SimTimeNS != b.SimTimeNS {
		return false
	}
	for i := range a.Sum {
		if math.Float64bits(a.Sum[i]) != math.Float64bits(b.Sum[i]) ||
			math.Float64bits(a.Sum2[i]) != math.Float64bits(b.Sum2[i]) {
			return false
		}
	}
	return true
}

func requireBitsEqual(t *testing.T, got, want Snapshot, what string) {
	t.Helper()
	if !bitsEqual(got, want) {
		t.Fatalf("%s: snapshots are not bit-identical\n got: %+v\nwant: %+v", what, got, want)
	}
}

// TestFoldMatchesSequentialMerge: folding base + shards with Fold is
// bit-identical to sequentially Merge-ing the same snapshots, in the
// same order, into one accumulator — Fold introduces no regrouping.
func TestFoldMatchesSequentialMerge(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 20260808} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			nrow, ncol := 1+r.Intn(4), 1+r.Intn(4)
			base := genSnapshot(r, nrow, ncol, r.Intn(20))
			shards := make([]Snapshot, 1+r.Intn(8))
			for i := range shards {
				shards[i] = genSnapshot(r, nrow, ncol, r.Intn(30))
			}

			folded, err := Fold(nrow, ncol, base, shards)
			if err != nil {
				t.Fatal(err)
			}
			seq := New(nrow, ncol)
			if err := seq.Merge(base); err != nil {
				t.Fatal(err)
			}
			for _, s := range shards {
				if err := seq.Merge(s); err != nil {
					t.Fatal(err)
				}
			}
			requireBitsEqual(t, folded.Snapshot(), seq.Snapshot(), "Fold vs sequential Merge")

			stable, err := FoldStable(nrow, ncol, base, shards)
			if err != nil {
				t.Fatal(err)
			}
			seqStable := NewStable(nrow, ncol)
			if err := seqStable.Merge(base); err != nil {
				t.Fatal(err)
			}
			for _, s := range shards {
				if err := seqStable.Merge(s); err != nil {
					t.Fatal(err)
				}
			}
			requireBitsEqual(t, stable.Snapshot(), seqStable.Snapshot(), "FoldStable vs sequential stable Merge")
		})
	}
}

// TestMergeFromMatchesMergeSnapshot: folding a live accumulator with
// MergeFrom is bitwise the same arithmetic as round-tripping it through
// a Snapshot — the collector's live-shard fold cannot drift from the
// wire-format semantics.
func TestMergeFromMatchesMergeSnapshot(t *testing.T) {
	for _, seed := range []int64{3, 99, 31337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			nrow, ncol := 1+r.Intn(3), 1+r.Intn(3)

			shard := New(nrow, ncol)
			for k := 0; k < 1+r.Intn(10); k++ {
				if err := shard.MergeTrusted(genSnapshot(r, nrow, ncol, 1+r.Intn(10))); err != nil {
					t.Fatal(err)
				}
			}
			base := genSnapshot(r, nrow, ncol, r.Intn(10))

			viaFrom := New(nrow, ncol)
			if err := viaFrom.Merge(base); err != nil {
				t.Fatal(err)
			}
			if err := viaFrom.MergeFrom(shard); err != nil {
				t.Fatal(err)
			}
			viaSnap := New(nrow, ncol)
			if err := viaSnap.Merge(base); err != nil {
				t.Fatal(err)
			}
			if err := viaSnap.Merge(shard.Snapshot()); err != nil {
				t.Fatal(err)
			}
			requireBitsEqual(t, viaFrom.Snapshot(), viaSnap.Snapshot(), "MergeFrom vs Merge(Snapshot())")
		})
	}
}

// TestMergeTrustedMatchesMerge: skipping revalidation changes nothing
// about the arithmetic.
func TestMergeTrustedMatchesMerge(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nrow, ncol := 1+r.Intn(3), 1+r.Intn(3)
		a, b := New(nrow, ncol), New(nrow, ncol)
		for k := 0; k < 1+r.Intn(6); k++ {
			s := genSnapshot(r, nrow, ncol, 1+r.Intn(8))
			if err := a.Merge(s); err != nil {
				t.Fatal(err)
			}
			if err := b.MergeTrusted(s); err != nil {
				t.Fatal(err)
			}
		}
		requireBitsEqual(t, b.Snapshot(), a.Snapshot(), "MergeTrusted vs Merge")
	}
}

// TestPrefixStagingBitIdentical pins the associativity the sharded
// collector's reduction tree actually needs: accumulating any prefix of
// a push sequence into a staging accumulator first, then folding the
// stage into a fresh total and merging the remaining pushes one by one,
// is bit-identical to merging the whole sequence one by one. Both
// orderings perform the same pairwise additions in the same left-fold
// order — the fixed reduction tree — so staging is exact, which is why
// a single worker's run reports identical bits whether its pushes were
// staged in a shard or merged directly.
func TestPrefixStagingBitIdentical(t *testing.T) {
	for _, seed := range []int64{5, 17, 271828} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			nrow, ncol := 1+r.Intn(3), 1+r.Intn(3)
			pushes := make([]Snapshot, 2+r.Intn(10))
			for i := range pushes {
				pushes[i] = genSnapshot(r, nrow, ncol, 1+r.Intn(6))
			}

			direct := New(nrow, ncol)
			for _, p := range pushes {
				if err := direct.Merge(p); err != nil {
					t.Fatal(err)
				}
			}

			for cut := 0; cut <= len(pushes); cut++ {
				stage := New(nrow, ncol)
				for _, p := range pushes[:cut] {
					if err := stage.MergeTrusted(p); err != nil {
						t.Fatal(err)
					}
				}
				total := New(nrow, ncol)
				if err := total.MergeFrom(stage); err != nil {
					t.Fatal(err)
				}
				for _, p := range pushes[cut:] {
					if err := total.MergeTrusted(p); err != nil {
						t.Fatal(err)
					}
				}
				requireBitsEqual(t, total.Snapshot(), direct.Snapshot(),
					fmt.Sprintf("staged prefix of %d vs direct", cut))
			}
		})
	}
}

// TestFoldDeterministicUnderShardArrivalOrder: the fold is a function
// of (worker index → shard content) only. Build the same shard set in
// several seeded-shuffled construction orders, fold in ascending worker
// index, and require identical bits every time — arrival order across
// workers must not leak into the report.
func TestFoldDeterministicUnderShardArrivalOrder(t *testing.T) {
	const workers = 6
	r := rand.New(rand.NewSource(404))
	nrow, ncol := 2, 3
	base := genSnapshot(r, nrow, ncol, 5)
	// Each worker's deterministic push list.
	pushes := make([][]Snapshot, workers)
	for w := range pushes {
		wr := rand.New(rand.NewSource(1000 + int64(w)))
		pushes[w] = make([]Snapshot, 1+wr.Intn(5))
		for i := range pushes[w] {
			pushes[w][i] = genSnapshot(wr, nrow, ncol, 1+wr.Intn(4))
		}
	}

	var reference Snapshot
	for trial := 0; trial < 8; trial++ {
		// A seeded random global arrival order of (worker, push) moves
		// that preserves each worker's own push order: repeatedly pick a
		// worker with pushes left and deliver its next one.
		type move struct{ w, i int }
		var schedule []move
		cursor := make([]int, workers)
		remaining := 0
		for w := range pushes {
			remaining += len(pushes[w])
		}
		sr := rand.New(rand.NewSource(int64(trial)*77 + 1))
		for remaining > 0 {
			w := sr.Intn(workers)
			if cursor[w] >= len(pushes[w]) {
				continue
			}
			schedule = append(schedule, move{w, cursor[w]})
			cursor[w]++
			remaining--
		}

		shards := make([]*Accumulator, workers)
		for w := range shards {
			shards[w] = New(nrow, ncol)
		}
		for _, m := range schedule {
			if err := shards[m.w].MergeTrusted(pushes[m.w][m.i]); err != nil {
				t.Fatal(err)
			}
		}
		total := New(nrow, ncol)
		if err := total.MergeTrusted(base); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ { // ascending worker index: the fixed fold order
			if err := total.MergeFrom(shards[w]); err != nil {
				t.Fatal(err)
			}
		}
		snap := total.Snapshot()
		if trial == 0 {
			reference = snap
			continue
		}
		requireBitsEqual(t, snap, reference, fmt.Sprintf("trial %d vs trial 0", trial))
	}
}
