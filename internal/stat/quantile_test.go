package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.8413447460685429, 1}, // Φ(1)
		{0.9772498680518208, 2}, // Φ(2)
		{0.9986501019683699, 3}, // Φ(3)
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.0013498980316301035, -3}, // Φ(-3)
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("NormalQuantile(%g) = %.15g, want %.15g", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if got := NormalQuantile(0); !math.IsInf(got, -1) {
		t.Errorf("NormalQuantile(0) = %g, want -Inf", got)
	}
	if got := NormalQuantile(1); !math.IsInf(got, 1) {
		t.Errorf("NormalQuantile(1) = %g, want +Inf", got)
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if got := NormalQuantile(p); !math.IsNaN(got) {
			t.Errorf("NormalQuantile(%g) = %g, want NaN", p, got)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		// Map raw into a well-conditioned open interval.
		p := 0.0001 + math.Mod(math.Abs(raw), 0.9998)
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.4} {
		if got := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(got) > 1e-12 {
			t.Errorf("Φ⁻¹(%g)+Φ⁻¹(%g) = %g, want 0", p, 1-p, got)
		}
	}
}

func TestConfidenceCoefficientPaperValue(t *testing.T) {
	// γ(0.997) ≈ 3 — the paper's "according to tables of a standard
	// normal distribution, γ(λ) = 3 for λ = 0.997".
	// The paper quotes the rounded table value; the exact coefficient
	// for λ = 0.997 is 2.968, and γ = 3 corresponds to λ = 0.9973.
	g, err := ConfidenceCoefficient(0.997)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-3) > 0.05 {
		t.Fatalf("γ(0.997) = %g, want ≈ 3", g)
	}
	g3sigma, err := ConfidenceCoefficient(0.9973002039367398) // λ = P(|Z|<3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g3sigma-3) > 1e-9 {
		t.Fatalf("γ(0.9973) = %.12g, want 3", g3sigma)
	}
	g95, err := ConfidenceCoefficient(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g95-1.96) > 0.001 {
		t.Fatalf("γ(0.95) = %g, want ≈ 1.96", g95)
	}
}

func TestConfidenceCoefficientRejectsBadLevel(t *testing.T) {
	for _, l := range []float64{0, 1, -0.5, 1.5} {
		if _, err := ConfidenceCoefficient(l); err == nil {
			t.Errorf("ConfidenceCoefficient(%g): expected error", l)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if got := NormalCDF(0); got != 0.5 {
		t.Errorf("Φ(0) = %g", got)
	}
	if got := NormalCDF(1.959963984540054); math.Abs(got-0.975) > 1e-12 {
		t.Errorf("Φ(1.96) = %g", got)
	}
}
