// Package stat implements the PARMONC sample-moment machinery of
// Sec. 2.1–2.2 of the paper.
//
// A realization of a random object is a matrix [ζ_ij], 1 ≤ i ≤ nrow,
// 1 ≤ j ≤ ncol. The library accumulates, per entry, the running sums
// Σζ_ij and Σζ_ij² together with the sample volume L, from which it
// computes
//
//   - the matrix of sample means        ζ̄_ij = L⁻¹ Σ ζ_ij,
//   - the matrix of sample variances    σ̄²_ij = ξ̄_ij − ζ̄²_ij,
//   - the matrix of absolute errors     ε_ij = γ(λ)·σ̄_ij·L^{-1/2},
//   - the matrix of relative errors     ρ_ij = ε_ij/|ζ̄_ij|·100%,
//
// and the upper bounds ε_max, ρ_max, σ̄²_max over all entries. The default
// confidence coefficient is γ = 3, corresponding to confidence level
// λ = 0.997 of the normal distribution, exactly as in formula (3) of the
// paper.
//
// Accumulators merge by adding sums and sample volumes (formula (5)),
// which is what the collector processor does with the subtotal moments
// pushed by workers, and what resumption does with the moments loaded
// from a previous simulation's files.
package stat

import (
	"fmt"
	"math"
	"time"
)

// DefaultConfidenceCoefficient is γ(0.997) = 3, the paper's default.
const DefaultConfidenceCoefficient = 3.0

// Accumulator collects running first and second moments of a matrix-
// valued random variable. The zero value is unusable; construct with
// New. Accumulator is not safe for concurrent use: in the PARMONC
// design each worker owns one and the collector owns one, merged via
// snapshots.
type Accumulator struct {
	nrow, ncol int
	sum        []float64 // Σ ζ_ij, row-major
	sum2       []float64 // Σ ζ_ij², row-major
	n          int64     // sample volume L
	simTime    time.Duration
}

// New returns an empty accumulator for nrow×ncol realization matrices.
// It panics if either dimension is not positive (a programming error,
// not a runtime condition).
func New(nrow, ncol int) *Accumulator {
	if nrow <= 0 || ncol <= 0 {
		panic(fmt.Sprintf("stat: invalid dimensions %d×%d", nrow, ncol))
	}
	return &Accumulator{
		nrow: nrow,
		ncol: ncol,
		sum:  make([]float64, nrow*ncol),
		sum2: make([]float64, nrow*ncol),
	}
}

// Rows returns the number of realization matrix rows.
func (a *Accumulator) Rows() int { return a.nrow }

// Cols returns the number of realization matrix columns.
func (a *Accumulator) Cols() int { return a.ncol }

// N returns the accumulated sample volume L.
func (a *Accumulator) N() int64 { return a.n }

// SimTime returns the total simulation time accumulated via AddTimed.
func (a *Accumulator) SimTime() time.Duration { return a.simTime }

// Add accumulates one realization given as a row-major nrow×ncol slice.
// It returns an error if the slice has the wrong length.
func (a *Accumulator) Add(realization []float64) error {
	if len(realization) != len(a.sum) {
		return fmt.Errorf("stat: realization has %d entries, accumulator wants %d×%d=%d",
			len(realization), a.nrow, a.ncol, len(a.sum))
	}
	for i, v := range realization {
		a.sum[i] += v
		a.sum2[i] += v * v
	}
	a.n++
	return nil
}

// AddTimed accumulates one realization together with the wall time it
// took to simulate, feeding the mean-time-per-realization statistic in
// the log report.
func (a *Accumulator) AddTimed(realization []float64, elapsed time.Duration) error {
	if err := a.Add(realization); err != nil {
		return err
	}
	a.simTime += elapsed
	return nil
}

// Reset empties the accumulator in place, retaining dimensions.
func (a *Accumulator) Reset() {
	for i := range a.sum {
		a.sum[i] = 0
		a.sum2[i] = 0
	}
	a.n = 0
	a.simTime = 0
}

// Snapshot is the serializable state of an accumulator: the subtotal
// moments a worker pushes to the collector, and the on-disk checkpoint
// format's payload.
type Snapshot struct {
	Nrow, Ncol int
	Sum        []float64
	Sum2       []float64
	N          int64
	SimTimeNS  int64
}

// Snapshot returns a deep copy of the accumulator state.
func (a *Accumulator) Snapshot() Snapshot {
	s := Snapshot{
		Nrow:      a.nrow,
		Ncol:      a.ncol,
		Sum:       make([]float64, len(a.sum)),
		Sum2:      make([]float64, len(a.sum2)),
		N:         a.n,
		SimTimeNS: int64(a.simTime),
	}
	copy(s.Sum, a.sum)
	copy(s.Sum2, a.sum2)
	return s
}

// Validate checks internal consistency of a snapshot (dimensions, slice
// lengths, non-negative volume, finite moments).
func (s Snapshot) Validate() error {
	if s.Nrow <= 0 || s.Ncol <= 0 {
		return fmt.Errorf("stat: snapshot has invalid dimensions %d×%d", s.Nrow, s.Ncol)
	}
	want := s.Nrow * s.Ncol
	if len(s.Sum) != want || len(s.Sum2) != want {
		return fmt.Errorf("stat: snapshot slices have lengths %d/%d, want %d", len(s.Sum), len(s.Sum2), want)
	}
	if s.N < 0 {
		return fmt.Errorf("stat: snapshot has negative sample volume %d", s.N)
	}
	if s.SimTimeNS < 0 {
		return fmt.Errorf("stat: snapshot has negative simulation time %d", s.SimTimeNS)
	}
	for i, v := range s.Sum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stat: snapshot Sum[%d] = %g is not finite", i, v)
		}
	}
	for i, v := range s.Sum2 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stat: snapshot Sum2[%d] = %g is not finite", i, v)
		}
		if v < 0 {
			return fmt.Errorf("stat: snapshot Sum2[%d] = %g is negative", i, v)
		}
	}
	return nil
}

// FromSnapshot reconstructs an accumulator from a snapshot.
func FromSnapshot(s Snapshot) (*Accumulator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	a := New(s.Nrow, s.Ncol)
	copy(a.sum, s.Sum)
	copy(a.sum2, s.Sum2)
	a.n = s.N
	a.simTime = time.Duration(s.SimTimeNS)
	return a, nil
}

// Merge adds the moments of a snapshot into the accumulator — formula
// (5): ζ̄ = l⁻¹ Σ_m l_m ζ̄^(m) expressed on raw sums. Dimensions must
// match.
func (a *Accumulator) Merge(s Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Nrow != a.nrow || s.Ncol != a.ncol {
		return fmt.Errorf("stat: cannot merge %d×%d snapshot into %d×%d accumulator",
			s.Nrow, s.Ncol, a.nrow, a.ncol)
	}
	for i := range a.sum {
		a.sum[i] += s.Sum[i]
		a.sum2[i] += s.Sum2[i]
	}
	a.n += s.N
	a.simTime += time.Duration(s.SimTimeNS)
	return nil
}

// Moments is the collector-side accumulator contract: everything the
// 0-th processor needs to merge subtotal snapshots (formula (5)) and
// derive the error matrices. It is satisfied by both Accumulator (raw
// sums, the paper's scheme) and StableAccumulator (Welford/Chan), which
// lets the collector engine switch accumulation schemes without
// changing any transport.
type Moments interface {
	Merge(Snapshot) error
	Snapshot() Snapshot
	Report(gamma float64) Report
	N() int64
	Rows() int
	Cols() int
}

var (
	_ Moments = (*Accumulator)(nil)
	_ Moments = (*StableAccumulator)(nil)
)

// Report holds the derived statistics of an accumulator at a point in
// time: the four matrices the paper saves to files plus their upper
// bounds and timing information.
type Report struct {
	Nrow, Ncol int
	N          int64     // total sample volume L
	Mean       []float64 // ζ̄_ij, row-major
	Var        []float64 // σ̄²_ij
	AbsErr     []float64 // ε_ij = γ σ̄_ij L^{-1/2}
	RelErr     []float64 // ρ_ij = ε_ij/|ζ̄_ij| · 100%

	MaxAbsErr float64 // ε_max
	MaxRelErr float64 // ρ_max
	MaxVar    float64 // σ̄²_max

	Gamma       float64       // confidence coefficient used
	MeanSimTime time.Duration // mean computer time per realization (τ_ζ)
}

// Report computes the derived statistics with confidence coefficient γ
// (use DefaultConfidenceCoefficient for the paper's 3σ intervals). With
// L = 0 all matrices are zero and errors are zero.
//
// Relative error for a zero sample mean is reported as +Inf when the
// absolute error is positive (the estimate carries no relative accuracy)
// and 0 when the entry is identically zero.
func (a *Accumulator) Report(gamma float64) Report {
	r := Report{
		Nrow:   a.nrow,
		Ncol:   a.ncol,
		N:      a.n,
		Mean:   make([]float64, len(a.sum)),
		Var:    make([]float64, len(a.sum)),
		AbsErr: make([]float64, len(a.sum)),
		RelErr: make([]float64, len(a.sum)),
		Gamma:  gamma,
	}
	if a.n == 0 {
		return r
	}
	l := float64(a.n)
	sqrtL := math.Sqrt(l)
	for i := range a.sum {
		mean := a.sum[i] / l
		second := a.sum2[i] / l
		variance := second - mean*mean
		if variance < 0 { // numerical noise for near-constant entries
			variance = 0
		}
		abs := gamma * math.Sqrt(variance) / sqrtL
		r.Mean[i] = mean
		r.Var[i] = variance
		r.AbsErr[i] = abs
		switch {
		case mean != 0:
			r.RelErr[i] = abs / math.Abs(mean) * 100
		case abs > 0:
			r.RelErr[i] = math.Inf(1)
		default:
			r.RelErr[i] = 0
		}
		if r.AbsErr[i] > r.MaxAbsErr {
			r.MaxAbsErr = r.AbsErr[i]
		}
		if r.RelErr[i] > r.MaxRelErr {
			r.MaxRelErr = r.RelErr[i]
		}
		if r.Var[i] > r.MaxVar {
			r.MaxVar = r.Var[i]
		}
	}
	r.MeanSimTime = time.Duration(int64(a.simTime) / a.n)
	return r
}

// At returns the row-major index of entry (i, j); it panics on
// out-of-range indices (programming error).
func (r Report) At(i, j int) int {
	if i < 0 || i >= r.Nrow || j < 0 || j >= r.Ncol {
		panic(fmt.Sprintf("stat: index (%d,%d) out of range %d×%d", i, j, r.Nrow, r.Ncol))
	}
	return i*r.Ncol + j
}

// MeanAt returns ζ̄_ij.
func (r Report) MeanAt(i, j int) float64 { return r.Mean[r.At(i, j)] }

// VarAt returns σ̄²_ij.
func (r Report) VarAt(i, j int) float64 { return r.Var[r.At(i, j)] }

// AbsErrAt returns ε_ij.
func (r Report) AbsErrAt(i, j int) float64 { return r.AbsErr[r.At(i, j)] }

// RelErrAt returns ρ_ij in percent.
func (r Report) RelErrAt(i, j int) float64 { return r.RelErr[r.At(i, j)] }
