// Package stat implements the PARMONC sample-moment machinery of
// Sec. 2.1–2.2 of the paper.
//
// A realization of a random object is a matrix [ζ_ij], 1 ≤ i ≤ nrow,
// 1 ≤ j ≤ ncol. The library accumulates, per entry, the running sums
// Σζ_ij and Σζ_ij² together with the sample volume L, from which it
// computes
//
//   - the matrix of sample means        ζ̄_ij = L⁻¹ Σ ζ_ij,
//   - the matrix of sample variances    σ̄²_ij = ξ̄_ij − ζ̄²_ij,
//   - the matrix of absolute errors     ε_ij = γ(λ)·σ̄_ij·L^{-1/2},
//   - the matrix of relative errors     ρ_ij = ε_ij/|ζ̄_ij|·100%,
//
// and the upper bounds ε_max, ρ_max, σ̄²_max over all entries. The default
// confidence coefficient is γ = 3, corresponding to confidence level
// λ = 0.997 of the normal distribution, exactly as in formula (3) of the
// paper.
//
// Accumulators merge by adding sums and sample volumes (formula (5)),
// which is what the collector processor does with the subtotal moments
// pushed by workers, and what resumption does with the moments loaded
// from a previous simulation's files.
package stat

import (
	"fmt"
	"math"
	"time"
)

// DefaultConfidenceCoefficient is γ(0.997) = 3, the paper's default.
const DefaultConfidenceCoefficient = 3.0

// Accumulator collects running first and second moments of a matrix-
// valued random variable. The zero value is unusable; construct with
// New. Accumulator is not safe for concurrent use: in the PARMONC
// design each worker owns one and the collector owns one, merged via
// snapshots.
type Accumulator struct {
	nrow, ncol int
	sum        []float64 // Σ ζ_ij, row-major
	sum2       []float64 // Σ ζ_ij², row-major
	n          int64     // sample volume L
	simTime    time.Duration
}

// New returns an empty accumulator for nrow×ncol realization matrices.
// It panics if either dimension is not positive (a programming error,
// not a runtime condition).
func New(nrow, ncol int) *Accumulator {
	if nrow <= 0 || ncol <= 0 {
		panic(fmt.Sprintf("stat: invalid dimensions %d×%d", nrow, ncol))
	}
	return &Accumulator{
		nrow: nrow,
		ncol: ncol,
		sum:  make([]float64, nrow*ncol),
		sum2: make([]float64, nrow*ncol),
	}
}

// Rows returns the number of realization matrix rows.
func (a *Accumulator) Rows() int { return a.nrow }

// Cols returns the number of realization matrix columns.
func (a *Accumulator) Cols() int { return a.ncol }

// N returns the accumulated sample volume L.
func (a *Accumulator) N() int64 { return a.n }

// SimTime returns the total simulation time accumulated via AddTimed.
func (a *Accumulator) SimTime() time.Duration { return a.simTime }

// Add accumulates one realization given as a row-major nrow×ncol slice.
// It returns an error if the slice has the wrong length.
func (a *Accumulator) Add(realization []float64) error {
	if len(realization) != len(a.sum) {
		return fmt.Errorf("stat: realization has %d entries, accumulator wants %d×%d=%d",
			len(realization), a.nrow, a.ncol, len(a.sum))
	}
	for i, v := range realization {
		a.sum[i] += v
		a.sum2[i] += v * v
	}
	a.n++
	return nil
}

// AddTimed accumulates one realization together with the wall time it
// took to simulate, feeding the mean-time-per-realization statistic in
// the log report.
func (a *Accumulator) AddTimed(realization []float64, elapsed time.Duration) error {
	if err := a.Add(realization); err != nil {
		return err
	}
	a.simTime += elapsed
	return nil
}

// Reset empties the accumulator in place, retaining dimensions.
func (a *Accumulator) Reset() {
	for i := range a.sum {
		a.sum[i] = 0
		a.sum2[i] = 0
	}
	a.n = 0
	a.simTime = 0
}

// Snapshot is the serializable state of an accumulator: the subtotal
// moments a worker pushes to the collector, and the on-disk checkpoint
// format's payload.
type Snapshot struct {
	Nrow, Ncol int
	Sum        []float64
	Sum2       []float64
	N          int64
	SimTimeNS  int64
}

// Snapshot returns a deep copy of the accumulator state.
func (a *Accumulator) Snapshot() Snapshot {
	s := Snapshot{
		Nrow:      a.nrow,
		Ncol:      a.ncol,
		Sum:       make([]float64, len(a.sum)),
		Sum2:      make([]float64, len(a.sum2)),
		N:         a.n,
		SimTimeNS: int64(a.simTime),
	}
	copy(s.Sum, a.sum)
	copy(s.Sum2, a.sum2)
	return s
}

// Validate checks internal consistency of a snapshot (dimensions, slice
// lengths, non-negative volume, finite moments, and moments consistent
// with a zero sample volume).
//
// Validation sits on every transport's merge path, so the finiteness
// scan is aggregate-first: four-way striped running sums detect any
// NaN/Inf in one pass (a non-finite element always poisons the total,
// since Inf never cancels back to a finite value), and the per-element
// scan that names the offending index runs only once something looks
// wrong. The striped pass can fire falsely when finite values overflow
// the aggregate; the precise pass then finds nothing and the snapshot
// is accepted.
func (s Snapshot) Validate() error {
	if s.Nrow <= 0 || s.Ncol <= 0 {
		return fmt.Errorf("stat: snapshot has invalid dimensions %d×%d", s.Nrow, s.Ncol)
	}
	want := s.Nrow * s.Ncol
	if len(s.Sum) != want || len(s.Sum2) != want {
		return fmt.Errorf("stat: snapshot slices have lengths %d/%d, want %d", len(s.Sum), len(s.Sum2), want)
	}
	if s.N < 0 {
		return fmt.Errorf("stat: snapshot has negative sample volume %d", s.N)
	}
	if s.SimTimeNS < 0 {
		return fmt.Errorf("stat: snapshot has negative simulation time %d", s.SimTimeNS)
	}
	if !momentsLookValid(s.Sum, s.Sum2) {
		if err := s.validateElements(); err != nil {
			return err
		}
	}
	if s.N == 0 {
		for i, v := range s.Sum {
			if v != 0 || s.Sum2[i] != 0 {
				return fmt.Errorf("stat: snapshot has zero sample volume but nonzero moment sums (Sum[%d] = %g, Sum2[%d] = %g)", i, v, i, s.Sum2[i])
			}
		}
	}
	return nil
}

// momentsLookValid reports whether every element of sum is finite and
// every element of sum2 is finite and non-negative, by checking striped
// aggregates: a running total is finite iff every addend was (t-t == 0
// iff t is finite — Inf never cancels back), and a striped running
// minimum catches negative Sum2 entries in the same pass (a NaN there
// fails the total instead, since NaN < x is always false). Both arrays
// are walked in one fused loop with the subslice-advance pattern so the
// loads run without bounds checks. May return false on finite inputs
// whose aggregate overflows; never returns true when a NaN, Inf, or
// negative second moment is present. Callers guarantee equal lengths.
func momentsLookValid(sum, sum2 []float64) bool {
	sum2 = sum2[:len(sum)]
	var t0, t1, t2, t3 float64
	var m0, m1, m2, m3 float64
	for len(sum) >= 8 {
		s, q := sum[:8], sum2[:8]
		t0 += s[0]
		t1 += s[1]
		t2 += s[2]
		t3 += s[3]
		t0 += s[4]
		t1 += s[5]
		t2 += s[6]
		t3 += s[7]
		v0, v1, v2, v3 := q[0], q[1], q[2], q[3]
		v4, v5, v6, v7 := q[4], q[5], q[6], q[7]
		t0 += v0
		t1 += v1
		t2 += v2
		t3 += v3
		t0 += v4
		t1 += v5
		t2 += v6
		t3 += v7
		if v0 < m0 {
			m0 = v0
		}
		if v1 < m1 {
			m1 = v1
		}
		if v2 < m2 {
			m2 = v2
		}
		if v3 < m3 {
			m3 = v3
		}
		if v4 < m0 {
			m0 = v4
		}
		if v5 < m1 {
			m1 = v5
		}
		if v6 < m2 {
			m2 = v6
		}
		if v7 < m3 {
			m3 = v7
		}
		sum, sum2 = sum[8:], sum2[8:]
	}
	for i, v := range sum {
		t0 += v
		w := sum2[i]
		t0 += w
		if w < m0 {
			m0 = w
		}
	}
	t := t0 + t1 + t2 + t3
	return t-t == 0 && m0 >= 0 && m1 >= 0 && m2 >= 0 && m3 >= 0
}

// validateElements is the precise per-element scan behind Validate's
// aggregate fast path; it names the first offending index.
func (s Snapshot) validateElements() error {
	for i, v := range s.Sum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stat: snapshot Sum[%d] = %g is not finite", i, v)
		}
	}
	for i, v := range s.Sum2 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stat: snapshot Sum2[%d] = %g is not finite", i, v)
		}
		if v < 0 {
			return fmt.Errorf("stat: snapshot Sum2[%d] = %g is negative", i, v)
		}
	}
	return nil
}

// addInto adds src into dst elementwise: dst[i] += src[i]. Every merge
// funnels through here — it sits on the collector's push hot path, so
// it is tuned: the up-front reslice makes the equal-length guarantee
// (established by the callers' dimension checks) visible to the
// compiler, and the eight-way unrolled body advances both subslices so
// the adds run without bounds checks. Each element receives exactly one
// addition — no reassociation — so the result is bit-identical to the
// naive indexed loop.
func addInto(dst, src []float64) {
	dst = dst[:len(src)]
	for len(src) >= 8 {
		d, s := dst[:8], src[:8]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
		dst, src = dst[8:], src[8:]
	}
	for i, v := range src {
		dst[i] += v
	}
}

// FromSnapshot reconstructs an accumulator from a snapshot.
func FromSnapshot(s Snapshot) (*Accumulator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	a := New(s.Nrow, s.Ncol)
	copy(a.sum, s.Sum)
	copy(a.sum2, s.Sum2)
	a.n = s.N
	a.simTime = time.Duration(s.SimTimeNS)
	return a, nil
}

// Merge adds the moments of a snapshot into the accumulator — formula
// (5): ζ̄ = l⁻¹ Σ_m l_m ζ̄^(m) expressed on raw sums. Dimensions must
// match.
func (a *Accumulator) Merge(s Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Nrow != a.nrow || s.Ncol != a.ncol {
		return fmt.Errorf("stat: cannot merge %d×%d snapshot into %d×%d accumulator",
			s.Nrow, s.Ncol, a.nrow, a.ncol)
	}
	addInto(a.sum, s.Sum)
	addInto(a.sum2, s.Sum2)
	a.n += s.N
	a.simTime += time.Duration(s.SimTimeNS)
	return nil
}

// MergeTrusted is Merge without the snapshot revalidation — the same
// arithmetic, for callers that already validated s at their boundary
// (the collector validates each push exactly once and then folds it
// through staging accumulators). Only the dimension check remains,
// because merging mismatched shapes corrupts state rather than
// statistics.
func (a *Accumulator) MergeTrusted(s Snapshot) error {
	if s.Nrow != a.nrow || s.Ncol != a.ncol {
		return fmt.Errorf("stat: cannot merge %d×%d snapshot into %d×%d accumulator",
			s.Nrow, s.Ncol, a.nrow, a.ncol)
	}
	addInto(a.sum, s.Sum)
	addInto(a.sum2, s.Sum2)
	a.n += s.N
	a.simTime += time.Duration(s.SimTimeNS)
	return nil
}

// MergeFrom adds another accumulator's moments directly — bitwise the
// same result as MergeTrusted(b.Snapshot()) without materializing the
// snapshot copy. This is the reduction step of the sharded collector's
// deterministic fold.
func (a *Accumulator) MergeFrom(b *Accumulator) error {
	if b.nrow != a.nrow || b.ncol != a.ncol {
		return fmt.Errorf("stat: cannot merge %d×%d into %d×%d", b.nrow, b.ncol, a.nrow, a.ncol)
	}
	addInto(a.sum, b.sum)
	addInto(a.sum2, b.sum2)
	a.n += b.n
	a.simTime += b.simTime
	return nil
}

// Moments is the collector-side accumulator contract: everything the
// 0-th processor needs to merge subtotal snapshots (formula (5)) and
// derive the error matrices. It is satisfied by both Accumulator (raw
// sums, the paper's scheme) and StableAccumulator (Welford/Chan), which
// lets the collector engine switch accumulation schemes without
// changing any transport.
type Moments interface {
	Merge(Snapshot) error
	MergeTrusted(Snapshot) error
	Snapshot() Snapshot
	Report(gamma float64) Report
	N() int64
	Rows() int
	Cols() int
}

var (
	_ Moments = (*Accumulator)(nil)
	_ Moments = (*StableAccumulator)(nil)
)

// Report holds the derived statistics of an accumulator at a point in
// time: the four matrices the paper saves to files plus their upper
// bounds and timing information.
type Report struct {
	Nrow, Ncol int
	N          int64     // total sample volume L
	Mean       []float64 // ζ̄_ij, row-major
	Var        []float64 // σ̄²_ij
	AbsErr     []float64 // ε_ij = γ σ̄_ij L^{-1/2}
	RelErr     []float64 // ρ_ij = ε_ij/|ζ̄_ij| · 100%

	MaxAbsErr float64 // ε_max
	MaxRelErr float64 // ρ_max
	MaxVar    float64 // σ̄²_max

	Gamma       float64       // confidence coefficient used
	MeanSimTime time.Duration // mean computer time per realization (τ_ζ)
}

// Report computes the derived statistics with confidence coefficient γ
// (use DefaultConfidenceCoefficient for the paper's 3σ intervals). With
// L = 0 all matrices are zero and errors are zero.
//
// Relative error for a zero sample mean is reported as +Inf when the
// absolute error is positive (the estimate carries no relative accuracy)
// and 0 when the entry is identically zero.
func (a *Accumulator) Report(gamma float64) Report {
	r := Report{
		Nrow:   a.nrow,
		Ncol:   a.ncol,
		N:      a.n,
		Mean:   make([]float64, len(a.sum)),
		Var:    make([]float64, len(a.sum)),
		AbsErr: make([]float64, len(a.sum)),
		RelErr: make([]float64, len(a.sum)),
		Gamma:  gamma,
	}
	if a.n == 0 {
		return r
	}
	l := float64(a.n)
	sqrtL := math.Sqrt(l)
	for i := range a.sum {
		mean := a.sum[i] / l
		second := a.sum2[i] / l
		variance := second - mean*mean
		if variance < 0 { // numerical noise for near-constant entries
			variance = 0
		}
		abs := gamma * math.Sqrt(variance) / sqrtL
		r.Mean[i] = mean
		r.Var[i] = variance
		r.AbsErr[i] = abs
		switch {
		case mean != 0:
			r.RelErr[i] = abs / math.Abs(mean) * 100
		case abs > 0:
			r.RelErr[i] = math.Inf(1)
		default:
			r.RelErr[i] = 0
		}
		if r.AbsErr[i] > r.MaxAbsErr {
			r.MaxAbsErr = r.AbsErr[i]
		}
		if r.RelErr[i] > r.MaxRelErr {
			r.MaxRelErr = r.RelErr[i]
		}
		if r.Var[i] > r.MaxVar {
			r.MaxVar = r.Var[i]
		}
	}
	r.MeanSimTime = time.Duration(int64(a.simTime) / a.n)
	return r
}

// At returns the row-major index of entry (i, j); it panics on
// out-of-range indices (programming error).
func (r Report) At(i, j int) int {
	if i < 0 || i >= r.Nrow || j < 0 || j >= r.Ncol {
		panic(fmt.Sprintf("stat: index (%d,%d) out of range %d×%d", i, j, r.Nrow, r.Ncol))
	}
	return i*r.Ncol + j
}

// MeanAt returns ζ̄_ij.
func (r Report) MeanAt(i, j int) float64 { return r.Mean[r.At(i, j)] }

// VarAt returns σ̄²_ij.
func (r Report) VarAt(i, j int) float64 { return r.Var[r.At(i, j)] }

// AbsErrAt returns ε_ij.
func (r Report) AbsErrAt(i, j int) float64 { return r.AbsErr[r.At(i, j)] }

// RelErrAt returns ρ_ij in percent.
func (r Report) RelErrAt(i, j int) float64 { return r.RelErr[r.At(i, j)] }
