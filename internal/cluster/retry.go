package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy governs how a worker survives transport failures: every
// RPC (Register, Push, Done) is retried with exponential backoff and
// jitter, reconnecting after connection loss, until it succeeds, the
// attempt budget is exhausted, or the context is cancelled. A server
// reply carrying an application error (rpc.ServerError — e.g. a
// rejected snapshot or a workload mismatch) is definitive and is never
// retried; only transport faults (dial failures, dropped connections,
// call timeouts) are.
//
// The zero value is usable: every field falls back to its default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per RPC, including the
	// first (default 5). Values < 1 mean the default.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 20 ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1 s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries
	// (default 2; 1 gives constant-delay retries).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized,
	// in [0, 1] (default 0.2): delay · (1 − J/2 + J·u), u ∈ [0, 1).
	// Jitter decorrelates a fleet of workers reconnecting after the
	// same network event.
	Jitter float64
	// CallTimeout bounds one RPC attempt; when it expires the
	// connection is declared dead, closed, and redialed (default 30 s).
	// This is what recovers a worker from a one-way network partition,
	// where the TCP connection looks healthy but replies never arrive.
	CallTimeout time.Duration
	// DialTimeout bounds one connection attempt (default 5 s).
	DialTimeout time.Duration
	// Seed seeds the jitter generator; 0 means a fixed default, which
	// keeps single-worker tests deterministic.
	Seed int64
}

// DefaultRetryPolicy returns the policy RunWorker uses.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{}.withDefaults()
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.CallTimeout <= 0 {
		p.CallTimeout = 30 * time.Second
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 5 * time.Second
	}
	return p
}

// delay computes the backoff before retry number retry (0-based),
// exponentially grown, capped, and jittered.
func (p RetryPolicy) delay(retry int, rnd *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rnd != nil {
		d *= 1 - p.Jitter/2 + p.Jitter*rnd.Float64()
	}
	return time.Duration(d)
}

// ClientStats counts the resilience work a ResilientClient performed.
type ClientStats struct {
	Retries    int64 // RPC attempts beyond the first
	Reconnects int64 // dials beyond the first successful one
}

// ResilientClient is an rpc.Client wrapper implementing the worker side
// of at-least-once delivery: calls are retried per the RetryPolicy,
// reconnecting when the connection is lost or a call times out. It
// makes no idempotency promises itself — the protocol's sequence
// numbers (PushArgs.Seq) and identity keys (RegisterArgs.ClientID) turn
// its redeliveries into exactly-once effects on the coordinator.
//
// A ResilientClient is safe for use by one goroutine at a time (the
// worker loop is sequential); Stats may be read concurrently.
type ResilientClient struct {
	addr   string
	policy RetryPolicy
	rnd    *rand.Rand

	mu      sync.Mutex
	client  *rpc.Client
	dialed  bool // a dial has succeeded at least once
	retries atomic.Int64
	redials atomic.Int64
}

// NewResilientClient returns a client for the coordinator at addr.
// Nothing is dialed until the first call.
func NewResilientClient(addr string, policy RetryPolicy) *ResilientClient {
	p := policy.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &ResilientClient{
		addr:   addr,
		policy: p,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// Stats returns the retry/reconnect counters so far.
func (rc *ResilientClient) Stats() ClientStats {
	return ClientStats{Retries: rc.retries.Load(), Reconnects: rc.redials.Load()}
}

// Close tears down the current connection, if any.
func (rc *ResilientClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client == nil {
		return nil
	}
	err := rc.client.Close()
	rc.client = nil
	return err
}

// connect ensures a live connection, dialing if necessary.
func (rc *ResilientClient) connect() (*rpc.Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.client != nil {
		return rc.client, nil
	}
	conn, err := net.DialTimeout("tcp", rc.addr, rc.policy.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing coordinator: %w", err)
	}
	if rc.dialed {
		rc.redials.Add(1)
	}
	rc.dialed = true
	rc.client = rpc.NewClient(conn)
	return rc.client, nil
}

// drop discards the current connection so the next attempt redials.
func (rc *ResilientClient) drop(client *rpc.Client) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	client.Close()
	if rc.client == client {
		rc.client = nil
	}
}

// Policy returns the client's retry policy with defaults resolved.
func (rc *ResilientClient) Policy() RetryPolicy {
	return rc.policy
}

// Call invokes method with retry, reconnect and backoff per the policy.
// The reply each attempt decodes into is a fresh value, copied to reply
// only on success, so a late response from a timed-out attempt can
// never corrupt the caller's memory.
func (rc *ResilientClient) Call(ctx context.Context, method string, args, reply interface{}) error {
	return rc.CallWithDeadline(ctx, method, args, reply, rc.policy.CallTimeout)
}

// CallWithDeadline is Call with an explicit per-attempt timeout in
// place of the policy's CallTimeout. It exists for calls the server
// intentionally holds open — a long-poll — where the caller knows the
// maximum server-side hold and adds it as headroom, so a parked call
// is not mistaken for a dead connection and torn down early.
func (rc *ResilientClient) CallWithDeadline(ctx context.Context, method string, args, reply interface{}, attemptTimeout time.Duration) error {
	if attemptTimeout <= 0 {
		attemptTimeout = rc.policy.CallTimeout
	}
	var lastErr error
	for attempt := 0; attempt < rc.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Add(1)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(rc.policy.delay(attempt-1, rc.rnd)):
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		client, err := rc.connect()
		if err != nil {
			lastErr = err
			continue
		}
		attemptReply := reflect.New(reflect.TypeOf(reply).Elem()).Interface()
		call := client.Go(method, args, attemptReply, make(chan *rpc.Call, 1))
		timer := time.NewTimer(attemptTimeout)
		select {
		case <-ctx.Done():
			timer.Stop()
			rc.drop(client)
			return ctx.Err()
		case <-timer.C:
			rc.drop(client)
			lastErr = fmt.Errorf("cluster: %s timed out after %v", method, attemptTimeout)
		case done := <-call.Done:
			timer.Stop()
			if done.Error == nil {
				reflect.ValueOf(reply).Elem().Set(reflect.ValueOf(attemptReply).Elem())
				return nil
			}
			if _, ok := done.Error.(rpc.ServerError); ok {
				// The server answered: the call was delivered and
				// rejected. Retrying cannot change the outcome.
				return done.Error
			}
			rc.drop(client)
			lastErr = done.Error
		}
	}
	return fmt.Errorf("cluster: %s failed after %d attempts: %w", method, rc.policy.MaxAttempts, lastErr)
}
