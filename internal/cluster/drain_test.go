package cluster

import (
	"net"
	"net/rpc"
	"testing"
	"time"

	"parmonc/internal/faultnet"
	"parmonc/internal/stat"
)

// TestCloseDrainsInFlightPush is the regression test for the shutdown
// race: a Push that the coordinator has already started serving must
// complete with a real reply even when Close arrives mid-call, instead
// of dying with a spurious transport error and dropping the subtotal.
// Injected per-byte latency on the server side of the connection keeps
// the RPC in flight long enough for Close to land inside it.
func TestCloseDrainsInFlightPush(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinatorOn(testSpec(1000), CoordinatorConfig{
		WorkDir:      t.TempDir(),
		DrainTimeout: 5 * time.Second,
	}, faultnet.Wrap(raw, faultnet.FaultFirst(faultnet.ConnPlan{Latency: 30 * time.Millisecond})))
	if err != nil {
		t.Fatal(err)
	}

	client, err := rpc.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var reg RegisterReply
	if err := client.Call(ServiceName+".Register", RegisterArgs{}, &reg); err != nil {
		t.Fatal(err)
	}

	acc := stat.New(1, 1)
	if err := acc.Add([]float64{1}); err != nil {
		t.Fatal(err)
	}
	var pr PushReply
	call := client.Go(ServiceName+".Push",
		PushArgs{Worker: reg.Worker, Seq: 1, Snap: acc.Snapshot()}, &pr, nil)

	// Give the latency-delayed request time to be mid-service, then
	// shut down while it is in flight.
	time.Sleep(10 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- coord.Close() }()

	select {
	case <-call.Done:
	case <-time.After(10 * time.Second):
		t.Fatal("push never completed")
	}
	if call.Error != nil {
		t.Fatalf("push racing Close failed: %v (drain must let it finish)", call.Error)
	}
	if n := coord.N(); n != 1 {
		t.Fatalf("N = %d, want 1 (the drained push must be merged)", n)
	}

	// Close returns once the client side lets go of the connection.
	client.Close()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
}

// TestCloseForceClosesWedgedConn: drain must not hang forever on a
// connection that will never finish — after DrainTimeout the straggler
// is force-closed and Close returns.
func TestCloseForceClosesWedgedConn(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinatorOn(testSpec(1000), CoordinatorConfig{
		WorkDir:      t.TempDir(),
		DrainTimeout: 100 * time.Millisecond,
	}, faultnet.Wrap(raw, faultnet.None))
	if err != nil {
		t.Fatal(err)
	}

	// A worker that connects and then goes silent: its ServeConn blocks
	// in a read forever unless Close force-closes it.
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() { done <- coord.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a wedged connection")
	}
}
