package cluster

import (
	"fmt"

	"parmonc/internal/collect"
	"parmonc/internal/rng"
)

// leaseManager is the coordinator's work ledger: the queue of
// realization-substream windows not yet granted to any worker. Grants
// come off the front; remainders of revoked leases go back on the
// front (under fresh IDs) so lost work is recomputed before new work
// is started. All methods are called with the coordinator lock held.
type leaseManager struct {
	pending   []collect.Lease
	nextID    uint64
	nextProc  uint64 // next processor subsequence for unbounded generation
	leaseSize int64
	unbounded bool
	exhausted bool // ran out of processor subsequences (unbounded mode)
	params    rng.Params
	seqNum    uint64
}

// defaultLeaseSize picks a lease granularity when the spec does not fix
// one: a multiple of PassEvery (so lease boundaries coincide with push
// boundaries and merge counts stay the same as under static quotas),
// sized so a bounded run splits into roughly 16 leases — enough
// granularity that losing a worker loses little, few enough that
// acquire traffic stays negligible next to pushes.
func defaultLeaseSize(maxSamples, passEvery int64) int64 {
	if maxSamples <= 0 {
		return passEvery * 64
	}
	m := maxSamples / (16 * passEvery)
	if m < 1 {
		m = 1
	}
	return passEvery * m
}

func newLeaseManager(spec JobSpec) (*leaseManager, error) {
	size := spec.LeaseSize
	if size <= 0 {
		size = defaultLeaseSize(spec.MaxSamples, spec.PassEvery)
	}
	lm := &leaseManager{
		leaseSize: size,
		params:    spec.Params,
		seqNum:    spec.SeqNum,
	}
	if spec.MaxSamples > 0 {
		lm.pending = collect.PartitionLeases(spec.MaxSamples, size)
		last := lm.pending[len(lm.pending)-1]
		var maxReal uint64
		if size > 1 {
			maxReal = uint64(size - 1)
		}
		if err := spec.Params.CheckCoord(rng.Coord{
			Experiment:  spec.SeqNum,
			Processor:   last.Proc,
			Realization: maxReal,
		}); err != nil {
			return nil, fmt.Errorf("cluster: job does not fit the RNG hierarchy (%d leases of %d): %w",
				len(lm.pending), size, err)
		}
		lm.nextProc = last.Proc + 1
	} else {
		lm.unbounded = true
		lm.nextProc = 1
	}
	return lm, nil
}

// next hands out the frontmost pending lease under a fresh grant ID.
// In unbounded mode an empty queue generates a new window on the next
// processor subsequence; a bounded run returns false once everything
// has been granted (outstanding grants may still be reissued later).
func (lm *leaseManager) next() (collect.Lease, bool) {
	if len(lm.pending) == 0 && lm.unbounded && !lm.exhausted {
		l := collect.Lease{Proc: lm.nextProc, Start: 0, Count: lm.leaseSize}
		if err := lm.params.CheckCoord(rng.Coord{Experiment: lm.seqNum, Processor: l.Proc}); err != nil {
			lm.exhausted = true
		} else {
			lm.nextProc++
			lm.pending = append(lm.pending, l)
		}
	}
	if len(lm.pending) == 0 {
		return collect.Lease{}, false
	}
	l := lm.pending[0]
	lm.pending = lm.pending[1:]
	lm.nextID++
	l.ID = lm.nextID
	return l, true
}

// requeueFront puts revoked-lease remainders at the front of the
// queue, preserving their order, so the next Acquire recomputes the
// lost window before starting new work. Grant IDs are stamped by next
// when the window is actually re-granted.
func (lm *leaseManager) requeueFront(rem []collect.Lease) {
	if len(rem) == 0 {
		return
	}
	queue := make([]collect.Lease, 0, len(rem)+len(lm.pending))
	for _, r := range rem {
		r.ID = 0
		queue = append(queue, r)
	}
	lm.pending = append(queue, lm.pending...)
}

// pendingCount reports how many leases await a worker.
func (lm *leaseManager) pendingCount() int { return len(lm.pending) }
