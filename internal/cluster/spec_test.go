package cluster

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestSpecValidateMessages is the table-driven contract for JobSpec
// validation: each broken invariant is rejected with a message naming
// the offending field and value, because this text is what an operator
// sees when a job refuses to start.
func TestSpecValidateMessages(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		want   string // substring of the error text
	}{
		{"zero rows", func(s *JobSpec) { s.Nrow = 0 }, "invalid dimensions 0×1"},
		{"negative cols", func(s *JobSpec) { s.Ncol = -1 }, "invalid dimensions"},
		{"zero pass-every", func(s *JobSpec) { s.PassEvery = 0 }, "PassEvery 0 must be >= 1"},
		{"negative pass-every", func(s *JobSpec) { s.PassEvery = -5 }, "PassEvery -5 must be >= 1"},
		{"zero gamma", func(s *JobSpec) { s.Gamma = 0 }, "confidence coefficient 0 must be positive"},
		{"negative gamma", func(s *JobSpec) { s.Gamma = -1 }, "confidence coefficient -1 must be positive"},
		{"negative lease size", func(s *JobSpec) { s.LeaseSize = -1 }, "LeaseSize -1 must not be negative"},
		{"negative heartbeat", func(s *JobSpec) { s.Heartbeat = -time.Second }, "must not be negative"},
		{"bad rng nesting", func(s *JobSpec) { s.Params.ProcessorLeapLog2 = 126 }, "rng:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec(100)
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Valid specs, including the boundary values, pass.
	ok := testSpec(100)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	ok.LeaseSize = 0 // zero = automatic lease granularity
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	ok.LeaseSize = 1
	ok.Heartbeat = time.Millisecond
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadMismatchErrorText pins the exact registration error a
// misconfigured worker reports: it must name both workloads so the
// operator can tell which side is wrong — and it must not be retried,
// since a coordinator-side rejection is definitive, not a transport
// fault.
func TestWorkloadMismatchErrorText(t *testing.T) {
	spec := testSpec(1000)
	spec.Workload = "pi"
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	policy := DefaultRetryPolicy()
	policy.BaseDelay = time.Millisecond
	rc := NewResilientClient(coord.Addr(), policy)
	defer rc.Close()

	var reply RegisterReply
	err = rc.Call(context.Background(), ServiceName+".Register",
		RegisterArgs{Workload: "diffusion", ClientID: "mismatched"}, &reply)
	if err == nil {
		t.Fatal("mismatched workload accepted")
	}
	want := `cluster: worker runs workload "diffusion" but the job is "pi"`
	if got := err.Error(); got != want {
		t.Fatalf("worker sees %q, want %q", got, want)
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("definitive rejection was retried %d times", st.Retries)
	}

	// The same text reaches RunNamedWorker callers (wrapped with the
	// call site).
	if err := RunNamedWorker(context.Background(), coord.Addr(), "diffusion", uniformRealization); err == nil ||
		!strings.Contains(err.Error(), want) {
		t.Fatalf("RunNamedWorker error %v does not carry %q", err, want)
	}
}
