package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"parmonc/internal/workload"

	// Registered workloads for resolving real identities in these tests.
	_ "parmonc/internal/workload/builtin"
)

// TestSpecValidateMessages is the table-driven contract for JobSpec
// validation: each broken invariant is rejected with a message naming
// the offending field and value, because this text is what an operator
// sees when a job refuses to start.
func TestSpecValidateMessages(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		want   string // substring of the error text
	}{
		{"zero rows", func(s *JobSpec) { s.Nrow = 0 }, "invalid dimensions 0×1"},
		{"negative cols", func(s *JobSpec) { s.Ncol = -1 }, "invalid dimensions"},
		{"zero pass-every", func(s *JobSpec) { s.PassEvery = 0 }, "PassEvery 0 must be >= 1"},
		{"negative pass-every", func(s *JobSpec) { s.PassEvery = -5 }, "PassEvery -5 must be >= 1"},
		{"zero gamma", func(s *JobSpec) { s.Gamma = 0 }, "confidence coefficient 0 must be positive"},
		{"negative gamma", func(s *JobSpec) { s.Gamma = -1 }, "confidence coefficient -1 must be positive"},
		{"negative lease size", func(s *JobSpec) { s.LeaseSize = -1 }, "LeaseSize -1 must not be negative"},
		{"negative heartbeat", func(s *JobSpec) { s.Heartbeat = -time.Second }, "must not be negative"},
		{"bad rng nesting", func(s *JobSpec) { s.Params.ProcessorLeapLog2 = 126 }, "rng:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec(100)
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Valid specs, including the boundary values, pass.
	ok := testSpec(100)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	ok.LeaseSize = 0 // zero = automatic lease granularity
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	ok.LeaseSize = 1
	ok.Heartbeat = time.Millisecond
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadMismatchErrorText pins the exact registration error a
// misconfigured worker reports: it must name both workloads so the
// operator can tell which side is wrong — and it must not be retried,
// since a coordinator-side rejection is definitive, not a transport
// fault.
func TestWorkloadMismatchErrorText(t *testing.T) {
	spec := testSpec(1000)
	spec.Workload = workload.Named("pi")
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	policy := DefaultRetryPolicy()
	policy.BaseDelay = time.Millisecond
	rc := NewResilientClient(coord.Addr(), policy)
	defer rc.Close()

	var reply RegisterReply
	err = rc.Call(context.Background(), ServiceName+".Register",
		RegisterArgs{Workload: workload.Named("diffusion"), ClientID: "mismatched"}, &reply)
	if err == nil {
		t.Fatal("mismatched workload accepted")
	}
	want := `cluster: worker runs workload "diffusion" but the job is "pi"`
	if got := err.Error(); got != want {
		t.Fatalf("worker sees %q, want %q", got, want)
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("definitive rejection was retried %d times", st.Retries)
	}

	// The same text reaches RunNamedWorker callers (wrapped with the
	// call site).
	if err := RunNamedWorker(context.Background(), coord.Addr(), "diffusion", uniformRealization); err == nil ||
		!strings.Contains(err.Error(), want) {
		t.Fatalf("RunNamedWorker error %v does not carry %q", err, want)
	}
}

// fullIdentity resolves a registered workload's identity with the given
// parameter overrides, failing the test on any schema error.
func fullIdentity(t *testing.T, name string, overrides workload.Values) workload.Identity {
	t.Helper()
	def, err := workload.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	id, err := def.Identity(overrides)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestWorkloadParameterMismatchErrorText pins the exact registration
// errors of the fingerprint-level identity check: a worker running the
// same-named workload with different parameters, different dimensions,
// or a different schema version is rejected with a message naming the
// first differing field and both sides' values. This is the regression
// test for the hole the bare-string check had — such workers used to be
// accepted and their moments silently merged.
func TestWorkloadParameterMismatchErrorText(t *testing.T) {
	jobID := fullIdentity(t, "mm1", nil) // lambda=0.6 mu=1 warmup=2000 batch=2000
	cases := []struct {
		name   string
		worker workload.Identity
		want   string // exact error text, "" = accepted
	}{
		{
			"parameter mismatch",
			fullIdentity(t, "mm1", workload.Values{"lambda": 0.8}),
			`cluster: workload "mm1": parameter lambda mismatch: worker has 0.8, the job has 0.6`,
		},
		{
			"dimension mismatch",
			func() workload.Identity {
				id := fullIdentity(t, "mm1", nil)
				id.Nrow, id.Ncol = 2, 3
				return id
			}(),
			`cluster: workload "mm1": worker realization is 2×3 but the job is 1×1`,
		},
		{
			"schema version mismatch",
			func() workload.Identity {
				id := fullIdentity(t, "mm1", nil)
				id.SchemaVersion = 2
				return id
			}(),
			`cluster: workload "mm1": worker uses parameter schema v2 but the job uses v1`,
		},
		{
			"wrong workload name",
			fullIdentity(t, "pi", nil),
			`cluster: worker runs workload "pi" but the job is "mm1"`,
		},
		{"identical identity", fullIdentity(t, "mm1", nil), ""},
		{"name-only worker (legacy level)", workload.Named("mm1"), ""},
		{"anonymous worker", workload.Identity{}, ""},
	}

	spec := testSpec(1000)
	spec.Nrow, spec.Ncol = jobID.Nrow, jobID.Ncol
	spec.Workload = jobID
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	policy := DefaultRetryPolicy()
	policy.BaseDelay = time.Millisecond
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := NewResilientClient(coord.Addr(), policy)
			defer rc.Close()
			var reply RegisterReply
			err := rc.Call(context.Background(), ServiceName+".Register",
				RegisterArgs{Workload: tc.worker, ClientID: "t-" + tc.name}, &reply)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("identity rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("mismatched identity accepted")
			}
			if got := err.Error(); got != tc.want {
				t.Fatalf("worker sees\n  %q\nwant\n  %q", got, tc.want)
			}
			if st := rc.Stats(); st.Retries != 0 {
				t.Fatalf("definitive rejection was retried %d times", st.Retries)
			}
		})
	}
}

// TestWorkloadParameterMismatchEndToEnd drives the rejection through the
// full worker loop over TCP: a worker parameterized with a different
// -set must never contribute samples, and the job still completes from
// correctly-parameterized workers.
func TestWorkloadParameterMismatchEndToEnd(t *testing.T) {
	jobID := fullIdentity(t, "mm1", workload.Values{"warmup": 10, "batch": 10})
	spec := testSpec(400)
	spec.Nrow, spec.Ncol = jobID.Nrow, jobID.Ncol
	spec.Workload = jobID
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: t.TempDir(), AverPeriod: time.Millisecond}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	badID := fullIdentity(t, "mm1", workload.Values{"warmup": 10, "batch": 10, "lambda": 0.9})
	if _, err := RunResilientWorker(ctx, coord.Addr(), WorkerConfig{Workload: badID}, uniformRealization); err == nil {
		t.Fatal("differently-parameterized worker accepted")
	} else if !strings.Contains(err.Error(), "parameter lambda mismatch") {
		t.Fatalf("rejection %v does not name the differing parameter", err)
	}

	rep, err := RunResilientWorker(ctx, coord.Addr(), WorkerConfig{Workload: jobID}, uniformRealization)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Realizations != 400 {
		t.Fatalf("matching worker computed %d of 400 realizations", rep.Realizations)
	}
	coord.Stop()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
