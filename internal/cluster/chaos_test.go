package cluster

// Chaos conformance: a distributed TCP run whose network is actively
// misbehaving — connections refused, dropped after byte budgets,
// one-way partitioned, delayed — must produce a final report
// bit-identical to a fault-free in-process run of the same workload.
// The resilience layer (retrying ResilientClient + sequence-number
// dedup in the collector) is what makes that possible: delivery is
// at-least-once, merging exactly-once, so the multiset of merged
// snapshots is independent of the fault schedule. This is the guard
// against Lubachevsky's parallel-delivery failure mode: results that
// silently depend on how the network happened to behave.
//
// The workload emits small integers, so subtotal sums are exact in
// float64 and the merged totals are independent of merge order — any
// surviving discrepancy is a delivery bug, not floating-point noise.

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/faultnet"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

const (
	chaosWorkers = 4
	chaosQuota   = 100 // realizations per lease (one lease per worker when all live)
	chaosPass    = 25  // PassEvery → 4 pushes per lease
)

// chaosRealize yields integer-valued deterministic realizations: the
// value depends only on the substream coordinates (processor,
// realization, matrix cell), never on which worker executes the lease
// or on scheduling, and sums of these stay exactly representable.
func chaosRealize(src *rng.Stream, out []float64) error {
	c := src.Coord()
	for i := range out {
		out[i] = float64((int(c.Processor)*31 + int(c.Realization)*7 + i*13) % 64)
	}
	return nil
}

func chaosFactory(int) (core.Realization, error) {
	return chaosRealize, nil
}

func chaosSpec() JobSpec {
	return JobSpec{
		Nrow:       2,
		Ncol:       2,
		MaxSamples: chaosWorkers * chaosQuota,
		Params:     rng.DefaultParams(),
		Gamma:      3,
		PassEvery:  chaosPass,
		LeaseSize:  chaosQuota,
	}
}

// chaosReference runs the workload fault-free and in process: it
// enumerates the same lease partition the coordinator hands out and
// simulates every substream window directly against the engine. Since
// realizations are addressed by substream coordinates, this is the
// ground truth any crash/fault schedule must reproduce bit for bit.
func chaosReference(t *testing.T) stat.Report {
	t.Helper()
	spec := chaosSpec()
	dir, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := collect.New(dir, store.RunMeta{
		SeqNum: spec.SeqNum, Nrow: spec.Nrow, Ncol: spec.Ncol,
		MaxSV: spec.MaxSamples, Params: spec.Params, Gamma: spec.Gamma,
		StartedAt: time.Now(),
	}, collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const w = 1
	eng.Register(w)
	local := stat.New(spec.Nrow, spec.Ncol)
	out := make([]float64, spec.Nrow*spec.Ncol)
	for _, l := range collect.PartitionLeases(spec.MaxSamples, spec.LeaseSize) {
		stream, err := rng.NewStream(spec.Params, rng.Coord{
			Experiment: spec.SeqNum, Processor: l.Proc, Realization: l.Start,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < l.Count; k++ {
			if k > 0 {
				if err := stream.NextRealization(); err != nil {
					t.Fatal(err)
				}
			}
			for i := range out {
				out[i] = 0
			}
			if err := chaosRealize(stream, out); err != nil {
				t.Fatal(err)
			}
			if err := local.Add(out); err != nil {
				t.Fatal(err)
			}
			if local.N() >= spec.PassEvery || k == l.Count-1 {
				if err := eng.Push(w, local.Snapshot()); err != nil {
					t.Fatal(err)
				}
				local.Reset()
			}
		}
	}
	if err := eng.Deregister(w); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// chaosPolicy is tuned for fast tests: tight timeouts so partitioned
// calls are declared dead quickly, many cheap retries.
func chaosPolicy(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 200,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		CallTimeout: 150 * time.Millisecond,
		DialTimeout: 2 * time.Second,
		Seed:        seed,
	}
}

// chaosTCPRun drives the full TCP transport through plan-injected
// faults and returns the final report plus the coordinator metrics.
// Observability is deliberately switched on (registry + journal): the
// bit-identity assertions double as proof that instrumentation never
// perturbs the statistics.
func chaosTCPRun(t *testing.T, plan faultnet.Planner) (stat.Report, collect.MetricsSnapshot) {
	t.Helper()
	spec := chaosSpec()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	workDir := t.TempDir()
	journal, err := obs.OpenJournal(filepath.Join(workDir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	coord, err := NewCoordinatorOn(spec, CoordinatorConfig{
		WorkDir:      workDir,
		AverPeriod:   time.Hour, // only the final save matters here
		DrainTimeout: 200 * time.Millisecond,
		Registry:     obs.NewRegistry(),
		Journal:      journal,
	}, faultnet.Wrap(raw, plan))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errCh := make(chan error, chaosWorkers)
	for i := 0; i < chaosWorkers; i++ {
		go func(i int) {
			_, err := RunResilientWorker(ctx, coord.Addr(),
				WorkerConfig{Retry: chaosPolicy(int64(i) + 1)}, chaosFactory)
			errCh <- err
		}(i)
	}
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chaosWorkers; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("worker survived %d faults poorly: %v", i, err)
		}
	}
	if ctx.Err() != nil {
		t.Fatal("run completed only via context expiry")
	}
	return rep, coord.Status().Metrics
}

// assertBitIdentical compares every deterministic field of two reports
// exactly — no tolerances. (MeanSimTime is wall-clock and excluded.)
func assertBitIdentical(t *testing.T, label string, got, want stat.Report) {
	t.Helper()
	if got.N != want.N {
		t.Errorf("%s: N = %d, want %d", label, got.N, want.N)
	}
	if got.Nrow != want.Nrow || got.Ncol != want.Ncol {
		t.Errorf("%s: dims %dx%d, want %dx%d", label, got.Nrow, got.Ncol, want.Nrow, want.Ncol)
	}
	for i := range want.Mean {
		if got.Mean[i] != want.Mean[i] {
			t.Errorf("%s: Mean[%d] = %v, want %v", label, i, got.Mean[i], want.Mean[i])
		}
		if got.Var[i] != want.Var[i] {
			t.Errorf("%s: Var[%d] = %v, want %v", label, i, got.Var[i], want.Var[i])
		}
		if got.AbsErr[i] != want.AbsErr[i] {
			t.Errorf("%s: AbsErr[%d] = %v, want %v", label, i, got.AbsErr[i], want.AbsErr[i])
		}
		if got.RelErr[i] != want.RelErr[i] {
			t.Errorf("%s: RelErr[%d] = %v, want %v", label, i, got.RelErr[i], want.RelErr[i])
		}
	}
	if got.MaxAbsErr != want.MaxAbsErr || got.MaxRelErr != want.MaxRelErr || got.MaxVar != want.MaxVar {
		t.Errorf("%s: maxima (%v %v %v), want (%v %v %v)", label,
			got.MaxAbsErr, got.MaxRelErr, got.MaxVar, want.MaxAbsErr, want.MaxRelErr, want.MaxVar)
	}
}

func TestChaosFaultFreeTCPBaseline(t *testing.T) {
	// Sanity anchor: with no faults injected the TCP transport already
	// matches the goroutine reference bit for bit.
	want := chaosReference(t)
	got, m := chaosTCPRun(t, faultnet.None)
	assertBitIdentical(t, "fault-free", got, want)
	if m.Merges != chaosWorkers*chaosQuota/chaosPass {
		t.Errorf("merges = %d, want %d", m.Merges, chaosWorkers*chaosQuota/chaosPass)
	}
	if m.Redeliveries != 0 || m.WorkerRetries != 0 {
		t.Errorf("fault-free run reported resilience work: %+v", m)
	}
}

func TestChaosRandomSchedulesBitIdentical(t *testing.T) {
	// Randomized fault schedules, reproducible from their seeds: every
	// schedule must leave the statistics bit-identical to the
	// fault-free reference, and across the schedules the dedup path
	// must actually fire (redeliveries observed), proving the faults
	// reached the delivery machinery rather than being absorbed before
	// it.
	want := chaosReference(t)
	var redeliveries, retries int64
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run("", func(t *testing.T) {
			got, m := chaosTCPRun(t, faultnet.RandomPlanner(seed, 0.6, 64, 1024))
			assertBitIdentical(t, "chaos", got, want)
			if m.Merges != chaosWorkers*chaosQuota/chaosPass {
				t.Errorf("seed %d: merges = %d, want %d (dedup must keep exactly-once)",
					seed, m.Merges, chaosWorkers*chaosQuota/chaosPass)
			}
			redeliveries += m.Redeliveries
			retries += m.WorkerRetries + m.WorkerReconnects
			t.Logf("seed %d: redeliveries=%d worker_retries=%d reconnects=%d",
				seed, m.Redeliveries, m.WorkerRetries, m.WorkerReconnects)
		})
	}
	if retries == 0 {
		t.Error("no schedule exercised the retry path; raise severity")
	}
	if redeliveries == 0 {
		t.Error("no schedule exercised the dedup path (duplicate-push metric stayed 0)")
	}
}

func TestChaosLostAckSchedulesForceRedelivery(t *testing.T) {
	// Deterministic lost-ack schedules: black-holing the coordinator's
	// replies after a byte budget makes some applied push's ack vanish,
	// so the worker must redeliver and the coordinator must dedup. The
	// budgets sweep the reply stream so at least one lands after
	// registration but before the final ack.
	want := chaosReference(t)
	var redeliveries int64
	for _, budget := range []int64{300, 500, 700, 900, 1200} {
		got, m := chaosTCPRun(t, faultnet.FaultFirst(
			faultnet.ConnPlan{BlackholeAfterWrite: budget},
			faultnet.ConnPlan{BlackholeAfterWrite: budget},
		))
		assertBitIdentical(t, "lost-ack", got, want)
		redeliveries += m.Redeliveries
	}
	if redeliveries == 0 {
		t.Error("lost-ack schedules produced no redeliveries")
	}
}

func TestPushSeqDedupOverRPC(t *testing.T) {
	// Unit-level proof of idempotent pushes over the wire: the same
	// (worker, seq, snapshot) delivered twice merges once.
	coord, err := NewCoordinator(testSpec(1000), CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	rc := NewResilientClient(coord.Addr(), DefaultRetryPolicy())
	defer rc.Close()
	ctx := context.Background()

	var reg RegisterReply
	if err := rc.Call(ctx, ServiceName+".Register", RegisterArgs{ClientID: "dup-test"}, &reg); err != nil {
		t.Fatal(err)
	}
	acc := stat.New(1, 1)
	if err := acc.Add([]float64{0.25}); err != nil {
		t.Fatal(err)
	}
	args := PushArgs{Worker: reg.Worker, Seq: 1, Snap: acc.Snapshot()}
	var pr PushReply
	for i := 0; i < 3; i++ { // deliver the identical push three times
		if err := rc.Call(ctx, ServiceName+".Push", args, &pr); err != nil {
			t.Fatal(err)
		}
	}
	if n := coord.N(); n != 1 {
		t.Fatalf("N = %d after redelivered pushes, want 1 (exactly-once merge)", n)
	}
	m := coord.Status().Metrics
	if m.Merges != 1 || m.Redeliveries != 2 {
		t.Fatalf("merges/redeliveries = %d/%d, want 1/2", m.Merges, m.Redeliveries)
	}

	// A retried Register with the same ClientID reclaims the index.
	var reg2 RegisterReply
	if err := rc.Call(ctx, ServiceName+".Register", RegisterArgs{ClientID: "dup-test"}, &reg2); err != nil {
		t.Fatal(err)
	}
	if reg2.Worker != reg.Worker {
		t.Fatalf("idempotent re-register assigned %d, want %d", reg2.Worker, reg.Worker)
	}
}
