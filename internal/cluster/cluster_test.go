package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"math"
	"net"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
	"parmonc/internal/workload"
)

func uniformRealization(int) (core.Realization, error) {
	return func(src *rng.Stream, out []float64) error {
		out[0] = src.Float64()
		return nil
	}, nil
}

func testSpec(maxSV int64) JobSpec {
	return JobSpec{
		SeqNum:     0,
		Nrow:       1,
		Ncol:       1,
		MaxSamples: maxSV,
		Params:     rng.DefaultParams(),
		Gamma:      3,
		PassEvery:  50,
	}
}

// launch starts a coordinator and n workers, waits for completion, and
// returns the final report.
func launch(t *testing.T, spec JobSpec, cfg CoordinatorConfig, n int) (float64, int64) {
	t.Helper()
	coord, err := NewCoordinator(spec, cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
				errCh <- err
			}
		}()
	}

	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for e := range errCh {
		t.Fatal(e)
	}
	return rep.MeanAt(0, 0), rep.N
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*JobSpec){
		func(s *JobSpec) { s.Nrow = 0 },
		func(s *JobSpec) { s.Ncol = -1 },
		func(s *JobSpec) { s.PassEvery = 0 },
		func(s *JobSpec) { s.Gamma = 0 },
		func(s *JobSpec) { s.Params.ProcessorLeapLog2 = 126 },
	}
	for i, mutate := range bad {
		s := testSpec(100)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSingleWorkerJob(t *testing.T) {
	mean, n := launch(t, testSpec(500), CoordinatorConfig{WorkDir: t.TempDir(), AverPeriod: time.Millisecond}, 1)
	if n < 500 {
		t.Fatalf("N = %d, want >= 500", n)
	}
	if math.Abs(mean-0.5) > 0.1 {
		t.Fatalf("mean = %g", mean)
	}
}

func TestManyWorkersConverge(t *testing.T) {
	mean, n := launch(t, testSpec(5000), CoordinatorConfig{WorkDir: t.TempDir(), AverPeriod: time.Millisecond}, 8)
	if n < 5000 {
		t.Fatalf("N = %d, want >= 5000", n)
	}
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean = %g", mean)
	}
}

func TestResultsFilesWritten(t *testing.T) {
	dir := t.TempDir()
	launch(t, testSpec(500), CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, 2)
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	nrow, ncol, vals, err := d.LoadMeans()
	if err != nil {
		t.Fatal(err)
	}
	if nrow != 1 || ncol != 1 || math.Abs(vals[0]-0.5) > 0.1 {
		t.Fatalf("saved means %dx%d %v", nrow, ncol, vals)
	}
}

func TestResumeAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(1000)
	launch(t, spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, 2)

	spec.SeqNum = 1
	_, n := launch(t, spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond, Resume: true}, 2)
	if n < 2000 {
		t.Fatalf("resumed N = %d, want >= 2000", n)
	}
}

func TestResumeRejectsSameSeqNum(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(200)
	launch(t, spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, 1)
	if _, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: dir, Resume: true}, "127.0.0.1:0"); err == nil {
		t.Fatal("expected same-seqnum rejection")
	}
}

func TestWorkerJoinsAfterCompletion(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(100)
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()
	if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
		t.Fatal(err)
	}
	// Target reached; a late worker must be turned away cleanly.
	if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorStopHaltsUnboundedJob(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(0) // unbounded
	spec.PassEvery = 10
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx := context.Background()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, coord.Addr(), uniformRealization)
	}()

	// Let it simulate a bit, then stop.
	for coord.N() < 100 {
		time.Sleep(time.Millisecond)
	}
	coord.Stop()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N < 100 {
		t.Fatalf("N = %d", rep.N)
	}
}

func TestContextCancelStopsJob(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(0)
	spec.PassEvery = 10
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	wctx := context.Background()
	go RunWorker(wctx, coord.Addr(), uniformRealization)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for coord.N() < 50 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N < 50 {
		t.Fatalf("N = %d", rep.N)
	}
}

func TestPushFromUnknownWorkerRejected(t *testing.T) {
	svc := &service{}
	coord, err := NewCoordinator(testSpec(10), CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	svc.c = coord
	var pr PushReply
	if err := svc.Push(PushArgs{Worker: 99, Snap: stat.New(1, 1).Snapshot()}, &pr); err == nil {
		t.Fatal("expected unknown-worker error")
	}
	var dr DoneReply
	if err := svc.Done(DoneArgs{Worker: 99}, &dr); err == nil {
		t.Fatal("expected unknown-worker error")
	}
}

func TestPushMalformedSnapshotRejected(t *testing.T) {
	// A registered worker pushing a wrong-dimension or internally
	// inconsistent snapshot must be refused over the wire, with the
	// totals untouched — the engine validates at the merge boundary for
	// every transport, so a buggy or hostile worker binary cannot
	// corrupt the statistics.
	coord, err := NewCoordinator(testSpec(1000), CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	client, err := rpc.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var reg RegisterReply
	if err := client.Call(ServiceName+".Register", RegisterArgs{}, &reg); err != nil {
		t.Fatal(err)
	}
	w := reg.Worker

	// One good push to establish a baseline total.
	good := stat.New(1, 1)
	if err := good.Add([]float64{0.5}); err != nil {
		t.Fatal(err)
	}
	var pr PushReply
	if err := client.Call(ServiceName+".Push", PushArgs{Worker: w, Snap: good.Snapshot()}, &pr); err != nil {
		t.Fatal(err)
	}

	// Wrong dimensions for the job.
	wrong := stat.New(2, 3)
	if err := wrong.Add([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := client.Call(ServiceName+".Push", PushArgs{Worker: w, Snap: wrong.Snapshot()}, &pr); err == nil {
		t.Fatal("wrong-dimension push accepted over RPC")
	}

	// Internally inconsistent snapshot.
	bad := good.Snapshot()
	bad.N = -5
	if err := client.Call(ServiceName+".Push", PushArgs{Worker: w, Snap: bad}, &pr); err == nil {
		t.Fatal("malformed push accepted over RPC")
	}

	if got := coord.N(); got != 1 {
		t.Fatalf("rejected pushes changed the total: N = %d, want 1", got)
	}
	st := coord.Status()
	if st.Metrics.RejectedSnapshots != 2 {
		t.Fatalf("RejectedSnapshots = %d, want 2", st.Metrics.RejectedSnapshots)
	}
	if st.Metrics.Merges != 1 || st.Metrics.Pushes != 3 {
		t.Fatalf("merges/pushes = %d/%d, want 1/3", st.Metrics.Merges, st.Metrics.Pushes)
	}
}

func TestStatusReportsMetrics(t *testing.T) {
	dir := t.TempDir()
	coord, err := NewCoordinator(testSpec(300), CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- RunWorker(ctx, coord.Addr(), uniformRealization) }()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := coord.Status()
	if !st.TargetReached {
		t.Fatal("Status.TargetReached false after Wait")
	}
	if st.ActiveWorkers != 0 {
		t.Fatalf("ActiveWorkers = %d after completion", st.ActiveWorkers)
	}
	if st.N < 300 || st.N != st.Metrics.Merges*50 {
		t.Fatalf("N = %d, merges = %d (PassEvery 50)", st.N, st.Metrics.Merges)
	}
	m := st.Metrics
	if m.Pushes == 0 || m.Merges == 0 || m.Saves == 0 || m.RegisteredWorkers != 1 {
		t.Fatalf("zero counters in %+v", m)
	}
}

func TestNilFactoryRejected(t *testing.T) {
	if err := RunWorker(context.Background(), "127.0.0.1:1", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestDialFailure(t *testing.T) {
	err := RunWorker(context.Background(), "127.0.0.1:1", uniformRealization)
	if err == nil {
		t.Fatal("expected dial error")
	}
}

func TestCrashedWorkerPruned(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(300)
	coord, err := NewCoordinator(spec, CoordinatorConfig{
		WorkDir:       dir,
		AverPeriod:    time.Millisecond,
		WorkerTimeout: 100 * time.Millisecond,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Register a worker that then vanishes without pushing or detaching.
	svc := &service{coord}
	var dead RegisterReply
	if err := svc.Register(RegisterArgs{Hostname: "doomed"}, &dead); err != nil {
		t.Fatal(err)
	}
	if dead.Stop {
		t.Fatal("fresh job should not be complete")
	}

	// A healthy worker does all the work.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
			t.Error(err)
		}
	}()

	// Without pruning, Wait would hang on the dead worker until ctx
	// expires; with the timeout it must complete well before.
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N < 300 {
		t.Fatalf("N = %d", rep.N)
	}
	if coord.PrunedWorkers() != 1 {
		t.Fatalf("pruned %d workers, want 1", coord.PrunedWorkers())
	}
	if ctx.Err() != nil {
		t.Fatal("completion relied on context expiry, not pruning")
	}
}

func TestHealthyWorkersNotPruned(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(2000)
	spec.PassEvery = 20 // frequent pushes keep lastSeen fresh
	coord, err := NewCoordinator(spec, CoordinatorConfig{
		WorkDir:       dir,
		AverPeriod:    time.Millisecond,
		WorkerTimeout: 2 * time.Second,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
				t.Error(err)
			}
		}()
	}
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if coord.PrunedWorkers() != 0 {
		t.Fatalf("pruned %d healthy workers", coord.PrunedWorkers())
	}
}

func TestManaverRecoversClusterJob(t *testing.T) {
	// The paper's Sec. 3.4 workflow for cluster jobs: the coordinator
	// dies before its final save; manaver rebuilds the results from the
	// per-worker snapshot files.
	dir := t.TempDir()
	spec := testSpec(600)
	spec.PassEvery = 50
	coord, err := NewCoordinator(spec, CoordinatorConfig{
		WorkDir:             dir,
		AverPeriod:          time.Hour, // never saves mid-run
		SaveWorkerSnapshots: true,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
				t.Error(err)
			}
		}()
	}
	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Simulate the coordinator having died before the final save:
	// delete the checkpoint, keep worker files, run manaver.
	d, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	recovered, err := core.Manaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.N != rep.N {
		t.Fatalf("manaver recovered N = %d, coordinator had %d", recovered.N, rep.N)
	}
	if math.Abs(recovered.MeanAt(0, 0)-rep.MeanAt(0, 0)) > 1e-12 {
		t.Fatalf("manaver mean %g, coordinator mean %g", recovered.MeanAt(0, 0), rep.MeanAt(0, 0))
	}
}

func TestRunWorkerOptsRetriesUntilCoordinatorUp(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(200)

	// Reserve an address, start the worker first, bring the coordinator
	// up after a delay on that same address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- RunWorkerOpts(context.Background(), addr, uniformRealization, WorkerOptions{
			DialAttempts: 50,
			RetryDelay:   20 * time.Millisecond,
		})
	}()

	time.Sleep(150 * time.Millisecond)
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: dir, AverPeriod: time.Millisecond}, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if coord.N() < 200 {
		t.Fatalf("N = %d", coord.N())
	}
}

func TestRunWorkerOptsGivesUp(t *testing.T) {
	err := RunWorkerOpts(context.Background(), "127.0.0.1:1", uniformRealization, WorkerOptions{
		DialAttempts: 2,
		RetryDelay:   time.Millisecond,
		DialTimeout:  100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestRunWorkerOptsRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunWorkerOpts(ctx, "127.0.0.1:1", uniformRealization, WorkerOptions{DialAttempts: 100})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWorkloadIdentityChecked(t *testing.T) {
	spec := testSpec(1000)
	spec.Workload = workload.Named("pi")
	coord, err := NewCoordinator(spec, CoordinatorConfig{WorkDir: t.TempDir(), AverPeriod: time.Millisecond}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	// Mismatched workload: rejected at registration.
	if err := RunNamedWorker(ctx, coord.Addr(), "diffusion", uniformRealization); err == nil {
		t.Fatal("mismatched workload accepted")
	}
	// Matching workload completes the job.
	if err := RunNamedWorker(ctx, coord.Addr(), "pi", uniformRealization); err != nil {
		t.Fatal(err)
	}
	// Anonymous workers are allowed (backward compatible).
	if err := RunWorker(ctx, coord.Addr(), uniformRealization); err != nil {
		t.Fatal(err)
	}
	coord.Stop()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWireSizePaperComparison(t *testing.T) {
	// The paper reports ≈120 KB per message for the 1000×2 matrix. Our
	// gob encoding of the same payload must be the ~32 KB the
	// EXPERIMENTS.md message-size note claims (2×2000 float64 + meta).
	acc := stat.New(1000, 2)
	row := make([]float64, 2000)
	for i := range row {
		row[i] = float64(i) * 1.7
	}
	if err := acc.Add(row); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(PushArgs{Worker: 1, Snap: acc.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	if size < 30_000 || size > 40_000 {
		t.Fatalf("1000×2 snapshot encodes to %d bytes; EXPERIMENTS.md claims ≈32 KB", size)
	}
}
