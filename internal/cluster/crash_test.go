package cluster

// Crash-survivability conformance: seeded schedules that kill workers
// mid-run — crash-stop, not graceful detach — must still complete with
// exactly the requested realization count and a final report
// bit-identical to the fault-free in-process reference. The machinery
// under test is the lease ledger + heartbeat supervision: a dead
// worker's lease remainder (the window minus its acked, already-merged
// prefix) is reissued to a survivor, and the dead session's epoch is
// fenced so its zombie retries can never re-merge.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/faultnet"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
)

// crashSpec is the chaos workload with supervision switched on: tight
// heartbeats so dead workers are detected in test time.
func crashSpec() JobSpec {
	spec := chaosSpec()
	spec.Heartbeat = 20 * time.Millisecond
	return spec
}

// doomedWorker speaks the raw worker protocol — register, acquire a
// lease, push a few subtotals — and then goes silent without Done or
// heartbeats: the crash-stop failure the supervision loop exists to
// detect. The session state it leaves behind (epoch, lease, sequence
// number) lets the test replay it later as a zombie.
type doomedWorker struct {
	rc    *ResilientClient
	w     int
	epoch uint64
	seq   uint64
	lease collect.Lease
	done  int64
	local *stat.Accumulator
	spec  JobSpec
}

// runDoomed registers a worker, acquires one lease, completes `pushes`
// subtotal windows of PassEvery realizations each, and goes silent.
// pushes must leave the lease incomplete so there is a remainder to
// reissue.
func runDoomed(t *testing.T, addr, id string, pushes int) *doomedWorker {
	t.Helper()
	ctx := context.Background()
	d := &doomedWorker{rc: NewResilientClient(addr, chaosPolicy(99))}
	t.Cleanup(func() { d.rc.Close() })

	var reg RegisterReply
	if err := d.rc.Call(ctx, ServiceName+".Register", RegisterArgs{ClientID: id}, &reg); err != nil {
		t.Fatal(err)
	}
	d.w, d.epoch, d.spec = reg.Worker, reg.Epoch, reg.Spec

	var aq AcquireReply
	for !aq.Granted {
		if err := d.rc.Call(ctx, ServiceName+".Acquire", AcquireArgs{Worker: d.w, Epoch: d.epoch}, &aq); err != nil {
			t.Fatal(err)
		}
		if aq.Stop || aq.Fenced {
			t.Fatalf("doomed worker %d could not acquire: %+v", d.w, aq)
		}
		if !aq.Granted {
			time.Sleep(5 * time.Millisecond)
		}
	}
	d.lease = aq.Lease
	if int64(pushes)*d.spec.PassEvery >= d.lease.Count {
		t.Fatalf("doomed worker would complete its lease (%d pushes of %d vs count %d)",
			pushes, d.spec.PassEvery, d.lease.Count)
	}

	d.local = stat.New(d.spec.Nrow, d.spec.Ncol)
	stream, err := rng.NewStream(d.spec.Params, rng.Coord{
		Experiment: d.spec.SeqNum, Processor: d.lease.Proc, Realization: d.lease.Start,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, d.spec.Nrow*d.spec.Ncol)
	for p := 0; p < pushes; p++ {
		d.local.Reset()
		for k := int64(0); k < d.spec.PassEvery; k++ {
			if d.done > 0 || k > 0 {
				if err := stream.NextRealization(); err != nil {
					t.Fatal(err)
				}
			}
			if err := chaosRealize(stream, out); err != nil {
				t.Fatal(err)
			}
			if err := d.local.Add(out); err != nil {
				t.Fatal(err)
			}
			d.done++
		}
		d.seq++
		var pr PushReply
		if err := d.rc.Call(ctx, ServiceName+".Push", PushArgs{
			Worker: d.w, Epoch: d.epoch, Seq: d.seq,
			Lease: d.lease.ID, Done: d.done, Snap: d.local.Snapshot(),
		}, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Stop || pr.Fenced {
			t.Fatalf("doomed worker %d push rejected early: %+v", d.w, pr)
		}
	}
	return d // ...and now it goes silent.
}

// zombiePush replays the dead session one more time: a retry of its
// next push under the old epoch, exactly what a half-dead host emits
// when it wakes up after being written off.
func (d *doomedWorker) zombiePush(t *testing.T) PushReply {
	t.Helper()
	snap := snapCrash(t, d.spec, 7)
	var pr PushReply
	if err := d.rc.Call(context.Background(), ServiceName+".Push", PushArgs{
		Worker: d.w, Epoch: d.epoch, Seq: d.seq + 1,
		Lease: d.lease.ID, Done: d.done + snap.N, Snap: snap,
	}, &pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// snapCrash builds a small poison snapshot: if it ever merged, the
// bit-identity assertions downstream would catch it.
func snapCrash(t *testing.T, spec JobSpec, v float64) stat.Snapshot {
	t.Helper()
	a := stat.New(spec.Nrow, spec.Ncol)
	out := make([]float64, spec.Nrow*spec.Ncol)
	for i := range out {
		out[i] = v
	}
	if err := a.Add(out); err != nil {
		t.Fatal(err)
	}
	return a.Snapshot()
}

// journalKinds reads an events JSONL file back and counts event kinds.
func journalKinds(t *testing.T, path string) map[string]int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range splitLines(raw) {
		var e struct {
			Kind string `json:"event"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[e.Kind]++
	}
	return kinds
}

func splitLines(raw []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range raw {
		if b == '\n' {
			if i > start {
				lines = append(lines, raw[start:i])
			}
			start = i + 1
		}
	}
	if start < len(raw) {
		lines = append(lines, raw[start:])
	}
	return lines
}

// TestCrashSchedulesBitIdenticalAndReissued is the headline guarantee:
// for each seeded kill schedule (which workers die, and after how many
// acked pushes), the run completes with the exact requested sample
// count, the final report is bit-identical to the fault-free
// reference, the dead workers' lease remainders are observably
// reissued, and a zombie retry of a dead session is fenced out.
func TestCrashSchedulesBitIdenticalAndReissued(t *testing.T) {
	want := chaosReference(t)
	schedules := []struct {
		name   string
		doomed []int // acked pushes before each victim goes silent
	}{
		{"one-dies-at-birth", []int{0}},
		{"one-dies-after-progress", []int{2}},
		{"two-die-staggered", []int{0, 3}},
	}
	for _, sc := range schedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			spec := crashSpec()
			workDir := t.TempDir()
			journalPath := filepath.Join(workDir, "events.jsonl")
			journal, err := obs.OpenJournal(journalPath)
			if err != nil {
				t.Fatal(err)
			}
			coord, err := NewCoordinator(spec, CoordinatorConfig{
				WorkDir:    workDir,
				AverPeriod: time.Hour,
				MissBudget: 3,
				Registry:   obs.NewRegistry(),
				Journal:    journal,
			}, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			// The victims register first (one lease each), make their
			// acked progress, and go silent.
			var zombies []*doomedWorker
			for i, pushes := range sc.doomed {
				zombies = append(zombies, runDoomed(t, coord.Addr(),
					fmt.Sprintf("doomed-%d", i), pushes))
			}

			// The survivors join and must absorb everything: their own
			// leases plus the reissued remainders of the dead.
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			survivors := chaosWorkers - len(sc.doomed)
			errCh := make(chan error, survivors)
			for i := 0; i < survivors; i++ {
				go func(i int) {
					_, err := RunResilientWorker(ctx, coord.Addr(),
						WorkerConfig{Retry: chaosPolicy(int64(i) + 1)}, chaosFactory)
					errCh <- err
				}(i)
			}
			rep, err := coord.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < survivors; i++ {
				if err := <-errCh; err != nil {
					t.Fatalf("survivor %d: %v", i, err)
				}
			}
			if ctx.Err() != nil {
				t.Fatal("run completed only via context expiry")
			}

			if rep.N != spec.MaxSamples {
				t.Fatalf("N = %d, want exactly %d despite crashes", rep.N, spec.MaxSamples)
			}
			assertBitIdentical(t, sc.name, rep, want)

			st := coord.Status()
			if st.LeasesReissued < int64(len(sc.doomed)) {
				t.Errorf("LeasesReissued = %d, want >= %d", st.LeasesReissued, len(sc.doomed))
			}
			if st.Metrics.PrunedWorkers != int64(len(sc.doomed)) {
				t.Errorf("PrunedWorkers = %d, want %d", st.Metrics.PrunedWorkers, len(sc.doomed))
			}
			if st.HeartbeatMisses == 0 {
				t.Error("supervision never recorded a heartbeat miss for the silent workers")
			}

			// The zombies wake up and retry their dead sessions: every
			// retry must be acknowledged-but-fenced, never merged (the
			// bit-identity above already proves nothing leaked in).
			for i, z := range zombies {
				pr := z.zombiePush(t)
				if !pr.Fenced {
					t.Errorf("zombie %d push not fenced: %+v", i, pr)
				}
			}
			if got := coord.Status().Metrics.StaleEpochPushes; got < int64(len(zombies)) {
				t.Errorf("StaleEpochPushes = %d, want >= %d", got, len(zombies))
			}

			// The journal must tell the whole story: grants, the misses
			// that condemned the victims, and the reissues that saved
			// the run.
			if err := journal.Close(); err != nil {
				t.Fatal(err)
			}
			kinds := journalKinds(t, journalPath)
			for _, k := range []string{"lease_grant", "heartbeat_miss", "lease_reissue", "stale_epoch"} {
				if kinds[k] == 0 {
					t.Errorf("journal has no %q events: %v", k, kinds)
				}
			}
		})
	}
}

// TestKillFaultSchedulesBitIdentical drives real resilient workers
// through RST-style connection kills (faultnet's crash-stop fault):
// whether a worker reconnects in time or is pruned, re-registers and
// is fenced onto a fresh epoch, the statistics must stay bit-identical
// and the sample count exact.
func TestKillFaultSchedulesBitIdentical(t *testing.T) {
	want := chaosReference(t)
	// Same values as the reference (coordinate-addressed), but slow
	// enough (~2ms per realization → ~200ms per lease) that the kill
	// fuses below fire while the workers are mid-lease.
	slowChaos := func(int) (core.Realization, error) {
		return func(src *rng.Stream, out []float64) error {
			time.Sleep(2 * time.Millisecond)
			return chaosRealize(src, out)
		}, nil
	}
	var disrupted int64
	for _, fuse := range []time.Duration{60 * time.Millisecond, 120 * time.Millisecond} {
		fuse := fuse
		t.Run(fuse.String(), func(t *testing.T) {
			spec := crashSpec()
			raw, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			coord, err := NewCoordinatorOn(spec, CoordinatorConfig{
				WorkDir:    t.TempDir(),
				AverPeriod: time.Hour,
				MissBudget: 3,
			}, faultnet.Wrap(raw, faultnet.FaultFirst(
				faultnet.ConnPlan{KillAfter: fuse},
				faultnet.ConnPlan{KillAfter: 2 * fuse},
			)))
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			errCh := make(chan error, chaosWorkers)
			for i := 0; i < chaosWorkers; i++ {
				go func(i int) {
					_, err := RunResilientWorker(ctx, coord.Addr(),
						WorkerConfig{Retry: chaosPolicy(int64(i) + 1)}, slowChaos)
					errCh <- err
				}(i)
			}
			rep, err := coord.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < chaosWorkers; i++ {
				if err := <-errCh; err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			if rep.N != spec.MaxSamples {
				t.Fatalf("N = %d, want exactly %d", rep.N, spec.MaxSamples)
			}
			assertBitIdentical(t, "kill-fault", rep, want)
			m := coord.Status().Metrics
			disrupted += m.WorkerRetries + m.WorkerReconnects + m.Redeliveries + m.StaleEpochPushes
		})
	}
	if disrupted == 0 {
		t.Error("no schedule disrupted a connection; the kill fuses fired after the run ended")
	}
}

// TestSlowWorkerNotPruned: a worker whose realizations are far slower
// than the miss budget must stay alive through explicit heartbeats —
// slowness is not death, and pruning it would waste its work.
func TestSlowWorkerNotPruned(t *testing.T) {
	spec := JobSpec{
		Nrow: 1, Ncol: 1,
		MaxSamples: 20,
		Params:     rng.DefaultParams(),
		Gamma:      3,
		PassEvery:  10,
		LeaseSize:  10,
		Heartbeat:  15 * time.Millisecond, // miss budget 3 → 45ms to live
	}
	coord, err := NewCoordinator(spec, CoordinatorConfig{
		WorkDir:    t.TempDir(),
		AverPeriod: time.Hour,
		MissBudget: 3,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Each realization takes 10ms, so a push window takes ~100ms —
	// more than twice the 45ms miss budget. Only the heartbeat
	// goroutine keeps this worker alive.
	slowFactory := func(int) (core.Realization, error) {
		return func(src *rng.Stream, out []float64) error {
			time.Sleep(10 * time.Millisecond)
			out[0] = src.Float64()
			return nil
		}, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunResilientWorker(ctx, coord.Addr(), WorkerConfig{Retry: chaosPolicy(1)}, slowFactory)
	if err != nil {
		t.Fatal(err)
	}
	final, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.N != spec.MaxSamples {
		t.Fatalf("N = %d, want %d", final.N, spec.MaxSamples)
	}
	if rep.Realizations != spec.MaxSamples {
		t.Fatalf("worker computed %d realizations, want %d", rep.Realizations, spec.MaxSamples)
	}
	st := coord.Status()
	if st.Metrics.PrunedWorkers != 0 {
		t.Fatalf("slow-but-alive worker was pruned %d times", st.Metrics.PrunedWorkers)
	}
	if st.Heartbeats == 0 {
		t.Fatal("no explicit heartbeats observed; the liveness proof never ran")
	}
}

// TestKilledWorkerDetectedWithinBudget bounds the detection latency:
// a worker that goes silent holding a lease must be pruned within the
// miss budget plus supervision-tick slack, not eventually.
func TestKilledWorkerDetectedWithinBudget(t *testing.T) {
	spec := crashSpec() // 20ms heartbeat, miss budget 3 → 60ms to live
	coord, err := NewCoordinator(spec, CoordinatorConfig{
		WorkDir:    t.TempDir(),
		AverPeriod: time.Hour,
		MissBudget: 3,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	runDoomed(t, coord.Addr(), "doomed-detect", 1)
	silentAt := time.Now()

	budget := time.Duration(3) * spec.Heartbeat
	// Generous scheduling slack on top of the contractual bound: the
	// supervision tick granularity adds up to one heartbeat, and a
	// loaded CI machine adds noise — but detection in, say, seconds
	// would mean the budget is not being enforced.
	deadline := time.After(budget + 20*spec.Heartbeat)
	for coord.Status().Metrics.PrunedWorkers == 0 {
		select {
		case <-deadline:
			t.Fatalf("silent worker not pruned within %v (budget %v)", budget+20*spec.Heartbeat, budget)
		case <-time.After(2 * time.Millisecond):
		}
	}
	detection := time.Since(silentAt)
	t.Logf("silent worker pruned after %v (budget %v)", detection, budget)
	st := coord.Status()
	if st.LeasesReissued == 0 {
		t.Fatal("pruned worker's lease was not reissued")
	}
	if st.LeasesPending == 0 {
		t.Fatal("reissued remainder did not land back in the pending queue")
	}
}
