package cluster

// End-to-end observability conformance: during a live 4-worker TCP run
// the coordinator's ops server must expose valid Prometheus text with
// the collector series, /statusz must report mid-run progress as JSON,
// the worker-side registry must expose retry/reconnect/batch-duration
// series, and /debug/pprof must yield a parseable CPU profile — all
// while the run is in flight, not after it.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"parmonc/internal/core"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
)

// obsGet fetches a URL and returns the body, failing the test on any
// transport or non-200 outcome.
func obsGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts the value of an exposition line whose name (and
// optional label block) starts with prefix, e.g. "parmonc_collector_saves_total".
func metricValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", prefix, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", prefix)
	return 0
}

func TestObsEndToEndLiveRun(t *testing.T) {
	const (
		workers = 4
		quota   = 300 // realizations per lease (one lease per worker when all live)
		pass    = 20  // PassEvery → frequent merges to observe mid-run
	)
	spec := JobSpec{
		Nrow: 2, Ncol: 2,
		MaxSamples: workers * quota,
		Params:     rng.DefaultParams(),
		Gamma:      3,
		PassEvery:  pass,
		LeaseSize:  quota,
	}
	// Each realization sleeps so the run stays alive long enough to be
	// observed from outside (~quota ms per worker).
	slowFactory := func(w int) (core.Realization, error) {
		return func(_ *rng.Stream, out []float64) error {
			time.Sleep(time.Millisecond)
			for i := range out {
				out[i] = float64(w % 7)
			}
			return nil
		}, nil
	}

	dir := t.TempDir()
	journal, err := obs.OpenJournal(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := NewCoordinator(spec, CoordinatorConfig{
		WorkDir:    dir,
		AverPeriod: time.Hour, // only the final save
		Registry:   reg,
		Journal:    journal,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{
		Registry: reg,
		Journal:  journal,
		Status:   func() any { return coord.Status() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	wreg := obs.NewRegistry() // shared by all workers; series are labeled
	wsrv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{Registry: wreg})
	if err != nil {
		t.Fatal(err)
	}
	defer wsrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			_, err := RunResilientWorker(ctx, coord.Addr(), WorkerConfig{Registry: wreg}, slowFactory)
			errCh <- err
		}()
	}

	// Poll /statusz until the run is visibly in flight: some samples
	// merged, target not yet reached.
	var st struct {
		Status struct {
			N             int64 `json:"n"`
			ActiveWorkers int   `json:"active_workers"`
			TargetReached bool  `json:"target_reached"`
		} `json:"status"`
		Journal struct {
			Written int64 `json:"written"`
			Dropped int64 `json:"dropped"`
		} `json:"journal"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		body := obsGet(t, base+"/statusz")
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("statusz is not JSON: %v\n%s", err, body)
		}
		if st.Status.N > 0 && st.Status.N < spec.MaxSamples {
			break
		}
		if time.Now().After(deadline) || st.Status.TargetReached {
			t.Fatalf("never observed the run mid-flight: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Status.ActiveWorkers <= 0 {
		t.Errorf("statusz mid-run: active_workers = %d, want > 0", st.Status.ActiveWorkers)
	}

	// Coordinator exposition mid-run: collector series present and the
	// merge counter already moving.
	mid := obsGet(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE parmonc_collector_pushes_total counter",
		"# TYPE parmonc_collector_merges_total counter",
		"# TYPE parmonc_collector_redeliveries_total counter",
		"# TYPE parmonc_collector_save_seconds histogram",
		"parmonc_collector_save_seconds_bucket{le=",
		"parmonc_coordinator_active_workers",
		"parmonc_coordinator_samples_total",
	} {
		if !strings.Contains(mid, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}
	if v := metricValue(t, mid, "parmonc_collector_merges_total"); v < 1 {
		t.Errorf("mid-run merges_total = %v, want >= 1", v)
	}

	// Worker exposition mid-run: resilience and batch-duration series,
	// labeled by processor index.
	wm := obsGet(t, "http://"+wsrv.Addr()+"/metrics")
	for _, want := range []string{
		`parmonc_worker_retries{worker="`,
		`parmonc_worker_reconnects{worker="`,
		`parmonc_worker_realizations_total{worker="`,
		`parmonc_worker_push_seconds_bucket{worker="`,
		`parmonc_worker_realization_seconds_bucket{worker="`,
	} {
		if !strings.Contains(wm, want) {
			t.Errorf("worker /metrics missing %q", want)
		}
	}

	// A live CPU profile must come back as a gzipped pprof payload.
	resp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatalf("pprof profile: %v", err)
	}
	prof, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("pprof profile: reading body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile: status %d: %s", resp.StatusCode, prof)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Fatalf("pprof profile is not gzip-framed (got % x...)", prof[:min(len(prof), 4)])
	}

	if body := obsGet(t, base+"/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("healthz = %q, want ok", body)
	}

	rep, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if rep.N != spec.MaxSamples {
		t.Fatalf("final N = %d, want %d", rep.N, spec.MaxSamples)
	}

	// After the final save the latency histogram must have fired.
	final := obsGet(t, base+"/metrics")
	if v := metricValue(t, final, "parmonc_collector_save_seconds_count"); v < 1 {
		t.Errorf("save_seconds_count = %v after finalize, want >= 1", v)
	}
	if v := metricValue(t, final, "parmonc_collector_pushes_total"); v < workers*quota/pass {
		t.Errorf("pushes_total = %v, want >= %d", v, workers*quota/pass)
	}

	// The journal must hold the run's event stream with per-worker
	// attribution and no drops.
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if journal.Dropped() != 0 {
		t.Errorf("journal dropped %d events", journal.Dropped())
	}
	events, err := obs.ReadJournal(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	sawWorker := false
	for _, e := range events {
		kinds[e.Kind]++
		if e.Worker > 0 {
			sawWorker = true
		}
	}
	for _, want := range []string{"register", "push", "merge", "save", "deregister"} {
		if kinds[want] == 0 {
			t.Errorf("journal has no %q events (kinds: %v)", want, kinds)
		}
	}
	if !sawWorker {
		t.Error("journal events carry no worker attribution")
	}
}

// TestObsStatuszJSONShape pins the field names the CLI and dashboards
// consume from a coordinator /statusz document.
func TestObsStatuszJSONShape(t *testing.T) {
	coord, err := NewCoordinator(testSpec(10), CoordinatorConfig{WorkDir: t.TempDir()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{
		Registry: obs.NewRegistry(),
		Status:   func() any { return coord.Status() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := obsGet(t, fmt.Sprintf("http://%s/statusz", srv.Addr()))
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	status, ok := doc["status"].(map[string]any)
	if !ok {
		t.Fatalf("statusz has no status object: %s", body)
	}
	for _, key := range []string{"n", "active_workers", "stopped", "target_reached", "metrics"} {
		if _, ok := status[key]; !ok {
			t.Errorf("statusz status object missing %q: %s", key, body)
		}
	}
	metrics, ok := status["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("statusz metrics is not an object: %s", body)
	}
	for _, key := range []string{"pushes", "merges", "redeliveries", "saves"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("statusz metrics missing %q", key)
		}
	}
}
