// Package cluster is the distributed substrate of the library — the
// replacement for the MPI layer of the original PARMONC.
//
// The original library runs the user's program on M MPI ranks; rank 0
// collects subtotal moments the other ranks push periodically
// (Sec. 2.2). Go has no MPI, but PARMONC uses none of MPI's collective
// machinery — only "send subtotals to rank 0, rarely" — so a small RPC
// protocol over TCP reproduces the communication pattern exactly:
//
//	worker                         coordinator (rank 0)
//	  Register ────────────────▶   assign processor index + job spec
//	  simulate realizations ...
//	  Push(subtotal moments) ──▶   merge (formula (5)), save periodically
//	  ... repeat until told to stop or out of work ...
//	  Done ────────────────────▶   account; release
//
// Workers are fully asynchronous: no worker ever waits for another, and
// the coordinator merges whatever arrives whenever it arrives — the
// paper's "no need for load balancing" property. A worker that dies
// silently costs only its unsent subtotals; the surviving workers'
// moments remain valid because every worker draws from its own
// subsequence of the parallel RNG.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/core"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
)

// JobSpec describes the simulation a coordinator manages. It is
// transmitted to every worker at registration, so worker binaries need
// only the realization routine and the coordinator address.
type JobSpec struct {
	SeqNum     uint64     // "experiments" subsequence number
	Nrow, Ncol int        // realization matrix dimensions
	MaxSamples int64      // total sample volume target; <= 0 means unbounded
	Params     rng.Params // leap exponents
	Gamma      float64    // confidence coefficient
	PassEvery  int64      // worker pushes after this many realizations (>= 1)
	Workload   string     // optional workload identity, checked at registration
}

// Validate checks the spec invariants.
func (s JobSpec) Validate() error {
	if s.Nrow <= 0 || s.Ncol <= 0 {
		return fmt.Errorf("cluster: invalid dimensions %d×%d", s.Nrow, s.Ncol)
	}
	if s.PassEvery < 1 {
		return fmt.Errorf("cluster: PassEvery %d must be >= 1", s.PassEvery)
	}
	if s.Gamma <= 0 {
		return fmt.Errorf("cluster: confidence coefficient %g must be positive", s.Gamma)
	}
	return s.Params.Validate()
}

// RegisterArgs is sent by a worker when it joins.
type RegisterArgs struct {
	Hostname string // informational
	// Workload identifies the realization routine the worker will run.
	// When both sides set it, the coordinator rejects mismatches at
	// registration — catching the operator error of joining a worker
	// built for a different job before any wrong moments are merged.
	Workload string
}

// RegisterReply assigns the worker its processor subsequence and job.
type RegisterReply struct {
	Worker int // processor index (>= 1; the coordinator itself is rank 0)
	Spec   JobSpec
	Stop   bool // true when the job is already complete
}

// PushArgs carries one subtotal snapshot from a worker.
type PushArgs struct {
	Worker int
	Snap   stat.Snapshot
}

// PushReply tells the worker whether to continue.
type PushReply struct {
	Stop bool
}

// DoneArgs signals that a worker has stopped (voluntarily or on Stop).
type DoneArgs struct {
	Worker int
}

// DoneReply is empty.
type DoneReply struct{}

// ServiceName is the RPC service name workers dial.
const ServiceName = "Parmonc"

// Coordinator is the rank-0 process: it assigns processor indices and
// feeds pushed moments to the collector engine, which owns merging,
// checkpointing and results files. The coordinator itself is only the
// net/rpc transport.
type Coordinator struct {
	spec JobSpec
	eng  *collect.Collector

	mu        sync.Mutex
	next      int // next processor index to hand out
	stopped   bool
	completed chan struct{} // closed when target reached and all workers done

	timeout    time.Duration
	reaperStop chan struct{}

	ln     net.Listener
	server *rpc.Server
}

// CoordinatorConfig bundles the optional knobs of NewCoordinator.
type CoordinatorConfig struct {
	WorkDir    string        // where parmonc_data is written; default "."
	AverPeriod time.Duration // how often pushes trigger a save; default 2 min
	Resume     bool          // merge the previous run's checkpoint

	// WorkerTimeout prunes workers that have not been heard from for
	// this long, so a crashed worker cannot stall job completion. Its
	// already-pushed subtotals remain valid (they came from the
	// worker's own disjoint substream); only unsent work is lost — the
	// same failure semantics as an MPI rank dying in the original.
	// Zero disables pruning.
	WorkerTimeout time.Duration

	// SaveWorkerSnapshots writes each worker's cumulative moments to
	// parmonc_data/workers on every push, so the manaver command can
	// rebuild results if the coordinator dies before its final save —
	// the paper's post-mortem averaging workflow (Sec. 3.4).
	SaveWorkerSnapshots bool
}

// NewCoordinator creates a coordinator listening on addr (e.g.
// "127.0.0.1:0"); the chosen address is available via Addr.
func NewCoordinator(spec JobSpec, cfg CoordinatorConfig, addr string) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "."
	}
	if cfg.AverPeriod == 0 {
		cfg.AverPeriod = 2 * time.Minute
	}
	dir, err := store.Open(cfg.WorkDir)
	if err != nil {
		return nil, err
	}
	meta := store.RunMeta{
		SeqNum:    spec.SeqNum,
		Nrow:      spec.Nrow,
		Ncol:      spec.Ncol,
		MaxSV:     spec.MaxSamples,
		Params:    spec.Params,
		Gamma:     spec.Gamma,
		StartedAt: time.Now(),
	}
	eng, err := collect.New(dir, meta, collect.Config{
		Resume:              cfg.Resume,
		AverPeriod:          cfg.AverPeriod,
		SaveWorkerSnapshots: cfg.SaveWorkerSnapshots,
	})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		spec:       spec,
		eng:        eng,
		completed:  make(chan struct{}),
		timeout:    cfg.WorkerTimeout,
		reaperStop: make(chan struct{}),
	}

	c.server = rpc.NewServer()
	if err := c.server.RegisterName(ServiceName, &service{c}); err != nil {
		return nil, err
	}
	c.ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go c.acceptLoop()
	if c.timeout > 0 {
		go c.reapLoop()
	}
	return c, nil
}

// reapLoop periodically prunes workers that have gone silent.
func (c *Coordinator) reapLoop() {
	tick := time.NewTicker(c.timeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-c.completed:
			return
		case <-tick.C:
			c.eng.PruneStale(c.timeout)
			c.mu.Lock()
			c.maybeCompleteLocked()
			c.mu.Unlock()
		}
	}
}

// PrunedWorkers reports how many workers were dropped for silence.
func (c *Coordinator) PrunedWorkers() int {
	return int(c.eng.Metrics().PrunedWorkers)
}

// Addr returns the address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.server.ServeConn(conn)
	}
}

// service wraps the coordinator so only the RPC methods are exported to
// the wire.
type service struct{ c *Coordinator }

// Register assigns the calling worker a processor index.
func (s *service) Register(args RegisterArgs, reply *RegisterReply) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spec.Workload != "" && args.Workload != "" && args.Workload != c.spec.Workload {
		return fmt.Errorf("cluster: worker runs workload %q but the job is %q", args.Workload, c.spec.Workload)
	}
	if c.stopped || c.eng.TargetReached() {
		reply.Stop = true
		reply.Spec = c.spec
		return nil
	}
	c.next++
	w := c.next // processor indices start at 1; the coordinator is rank 0
	if err := c.spec.Params.CheckCoord(rng.Coord{Experiment: c.spec.SeqNum, Processor: uint64(w)}); err != nil {
		return fmt.Errorf("cluster: out of processor subsequences: %w", err)
	}
	c.eng.Register(w)
	reply.Worker = w
	reply.Spec = c.spec
	return nil
}

// Push merges a worker's subtotal moments through the collector engine,
// which validates the snapshot before merging: a malformed or
// wrong-dimension push is rejected with an error and cannot corrupt the
// totals.
func (s *service) Push(args PushArgs, reply *PushReply) error {
	c := s.c
	if err := c.eng.Push(args.Worker, args.Snap); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reply.Stop = c.stopped || c.eng.TargetReached()
	return nil
}

// Done releases a worker.
func (s *service) Done(args DoneArgs, reply *DoneReply) error {
	c := s.c
	if err := c.eng.Deregister(args.Worker); err != nil {
		return fmt.Errorf("cluster: done from unknown worker %d", args.Worker)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maybeCompleteLocked()
	return nil
}

func (c *Coordinator) maybeCompleteLocked() {
	if c.eng.Active() == 0 && (c.stopped || c.eng.TargetReached()) {
		select {
		case <-c.completed:
		default:
			close(c.completed)
		}
	}
}

// Stop tells all workers (at their next push) to stop, even if the
// sample target has not been reached — the job-kill path.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	c.maybeCompleteLocked()
}

// Wait blocks until the sample target is reached and all workers have
// detached, or ctx is cancelled (which stops the job). It then writes
// the final results and returns the merged report.
func (c *Coordinator) Wait(ctx context.Context) (stat.Report, error) {
	select {
	case <-c.completed:
	case <-ctx.Done():
		c.Stop()
		// Give workers a bounded grace period to drain, then finalize
		// with whatever has arrived.
		select {
		case <-c.completed:
		case <-time.After(5 * time.Second):
		}
	}
	return c.eng.Finalize()
}

// N returns the current total sample volume (including any resumed
// base).
func (c *Coordinator) N() int64 { return c.eng.N() }

// Status is a point-in-time view of the coordinator, including the
// collector engine's metrics.
type Status struct {
	N             int64                   // total sample volume (incl. resumed base)
	ActiveWorkers int                     // workers currently attached
	Stopped       bool                    // Stop was called
	TargetReached bool                    // the sample target has been met
	Metrics       collect.MetricsSnapshot // engine counters
}

// Status reports the coordinator's current state and metrics.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	stopped := c.stopped
	c.mu.Unlock()
	return Status{
		N:             c.eng.N(),
		ActiveWorkers: c.eng.Active(),
		Stopped:       stopped,
		TargetReached: c.eng.TargetReached(),
		Metrics:       c.eng.Metrics(),
	}
}

// Close shuts down the listener and the worker reaper. Workers'
// in-flight calls fail afterwards.
func (c *Coordinator) Close() error {
	select {
	case <-c.reaperStop:
	default:
		close(c.reaperStop)
	}
	return c.ln.Close()
}

// RunWorker connects to the coordinator at addr, registers, and
// simulates realizations with the given factory-produced routine until
// the coordinator says stop or ctx is cancelled. It implements the
// worker half of the protocol; the paper's analogue is an MPI rank
// executing the user program.
func RunWorker(ctx context.Context, addr string, factory core.Factory) error {
	return RunNamedWorker(ctx, addr, "", factory)
}

// RunNamedWorker is RunWorker carrying a workload identity that the
// coordinator verifies at registration (when its JobSpec names one).
func RunNamedWorker(ctx context.Context, addr, workloadName string, factory core.Factory) error {
	if factory == nil {
		return errors.New("cluster: nil realization factory")
	}
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: dialing coordinator: %w", err)
	}
	defer client.Close()

	var reg RegisterReply
	if err := client.Call(ServiceName+".Register", RegisterArgs{Hostname: "worker", Workload: workloadName}, &reg); err != nil {
		return fmt.Errorf("cluster: register: %w", err)
	}
	if reg.Stop {
		return nil
	}
	spec := reg.Spec
	w := reg.Worker

	realize, err := factory(w)
	if err != nil {
		return fmt.Errorf("cluster: building realization: %w", err)
	}
	stream, err := rng.NewStream(spec.Params, rng.Coord{Experiment: spec.SeqNum, Processor: uint64(w)})
	if err != nil {
		return err
	}

	local := stat.New(spec.Nrow, spec.Ncol)
	out := make([]float64, spec.Nrow*spec.Ncol)
	defer func() {
		// Flush any unsent subtotals, then detach. Errors here are
		// best-effort: the coordinator tolerates vanished workers.
		if local.N() > 0 {
			var pr PushReply
			_ = client.Call(ServiceName+".Push", PushArgs{Worker: w, Snap: local.Snapshot()}, &pr)
		}
		var dr DoneReply
		_ = client.Call(ServiceName+".Done", DoneArgs{Worker: w}, &dr)
	}()

	for k := int64(0); ; k++ {
		if ctx.Err() != nil {
			return nil
		}
		if k > 0 {
			if err := stream.NextRealization(); err != nil {
				return err
			}
		}
		for i := range out {
			out[i] = 0
		}
		t0 := time.Now()
		if err := realize(stream, out); err != nil {
			return fmt.Errorf("cluster: realization %d: %w", k, err)
		}
		if err := local.AddTimed(out, time.Since(t0)); err != nil {
			return err
		}
		if local.N() >= spec.PassEvery {
			var pr PushReply
			if err := client.Call(ServiceName+".Push", PushArgs{Worker: w, Snap: local.Snapshot()}, &pr); err != nil {
				return fmt.Errorf("cluster: push: %w", err)
			}
			local.Reset()
			if pr.Stop {
				return nil
			}
		}
	}
}

// WorkerOptions tunes RunWorkerOpts. The zero value dials once with the
// net package's default timeout.
type WorkerOptions struct {
	// DialAttempts is the number of connection attempts before giving
	// up (default 1). On a real cluster workers often start before the
	// coordinator's listener is up; retrying makes job submission
	// order-independent.
	DialAttempts int
	// RetryDelay is the pause between attempts (default 500 ms).
	RetryDelay time.Duration
	// DialTimeout bounds each attempt (default 5 s).
	DialTimeout time.Duration
}

// RunWorkerOpts is RunWorker with explicit connection options.
func RunWorkerOpts(ctx context.Context, addr string, factory core.Factory, opts WorkerOptions) error {
	if factory == nil {
		return errors.New("cluster: nil realization factory")
	}
	attempts := opts.DialAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := opts.RetryDelay
	if delay == 0 {
		delay = 500 * time.Millisecond
	}
	timeout := opts.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			conn.Close()
			return RunWorker(ctx, addr, factory)
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
	return fmt.Errorf("cluster: coordinator unreachable after %d attempts: %w", attempts, lastErr)
}
