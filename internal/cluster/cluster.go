// Package cluster is the distributed substrate of the library — the
// replacement for the MPI layer of the original PARMONC.
//
// The original library runs the user's program on M MPI ranks; rank 0
// collects subtotal moments the other ranks push periodically
// (Sec. 2.2). Go has no MPI, but PARMONC uses none of MPI's collective
// machinery — only "send subtotals to rank 0, rarely" — so a small RPC
// protocol over TCP reproduces the communication pattern exactly:
//
//	worker                         coordinator (rank 0)
//	  Register ────────────────▶   assign processor index + job spec
//	  simulate realizations ...
//	  Push(subtotal moments) ──▶   merge (formula (5)), save periodically
//	  ... repeat until told to stop or out of work ...
//	  Done ────────────────────▶   account; release
//
// Workers are fully asynchronous: no worker ever waits for another, and
// the coordinator merges whatever arrives whenever it arrives — the
// paper's "no need for load balancing" property. A worker that dies
// silently costs only its unsent subtotals; the surviving workers'
// moments remain valid because every worker draws from its own
// subsequence of the parallel RNG.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"parmonc/internal/collect"
	"parmonc/internal/obs"
	"parmonc/internal/rng"
	"parmonc/internal/stat"
	"parmonc/internal/store"
	"parmonc/internal/workload"
)

// JobSpec describes the simulation a coordinator manages. It is
// transmitted to every worker at registration, so worker binaries need
// only the realization routine and the coordinator address.
type JobSpec struct {
	SeqNum     uint64     // "experiments" subsequence number
	Nrow, Ncol int        // realization matrix dimensions
	MaxSamples int64      // total sample volume target; <= 0 means unbounded
	Params     rng.Params // leap exponents
	Gamma      float64    // confidence coefficient
	PassEvery  int64      // worker pushes after this many realizations (>= 1)

	// Workload is the parameter-resolved identity of the realization
	// routine this job averages. It is checked against every worker at
	// registration: name, schema version, dimensions and every resolved
	// parameter value must agree (via the canonical fingerprint), so a
	// worker built for the same-named scenario with different parameters
	// is rejected before any wrong moments are merged. The zero Identity
	// disables the check; a workload.Named identity checks the name only
	// (the legacy level).
	Workload workload.Identity

	// LeaseSize, when positive, fixes the realization-window size of
	// the leases the coordinator hands out: lease i covers realizations
	// [Start, Start+Count) of processor subsequence i+1, so the
	// partition of the run into substreams is a pure function of
	// (MaxSamples, LeaseSize) — independent of which workers show up or
	// die, which is what makes the final report bit-identical under any
	// failure schedule. Zero picks a PassEvery-aligned default.
	LeaseSize int64

	// Heartbeat is the liveness interval workers are told at
	// registration: a worker proves it is alive at least this often,
	// piggybacked on pushes when busy and via the explicit Heartbeat
	// RPC between pushes. The coordinator declares a worker dead after
	// CoordinatorConfig.MissBudget missed intervals, revokes its
	// leases, and reissues the uncomputed remainders. Zero disables
	// heartbeat supervision (a WorkerTimeout still maps onto it).
	Heartbeat time.Duration
}

// Validate checks the spec invariants.
func (s JobSpec) Validate() error {
	if s.Nrow <= 0 || s.Ncol <= 0 {
		return fmt.Errorf("cluster: invalid dimensions %d×%d", s.Nrow, s.Ncol)
	}
	if s.PassEvery < 1 {
		return fmt.Errorf("cluster: PassEvery %d must be >= 1", s.PassEvery)
	}
	if s.Gamma <= 0 {
		return fmt.Errorf("cluster: confidence coefficient %g must be positive", s.Gamma)
	}
	if s.LeaseSize < 0 {
		return fmt.Errorf("cluster: LeaseSize %d must not be negative", s.LeaseSize)
	}
	if s.Heartbeat < 0 {
		return fmt.Errorf("cluster: Heartbeat %s must not be negative", s.Heartbeat)
	}
	return s.Params.Validate()
}

// RegisterArgs is sent by a worker when it joins.
type RegisterArgs struct {
	Hostname string // informational
	// Workload identifies the realization routine the worker will run:
	// name, schema version, dimensions and resolved parameter values.
	// When both sides set it, the coordinator rejects any mismatch at
	// registration with an error naming the exact field that differs —
	// catching the operator error of joining a worker built (or
	// parameterized) for a different job before any wrong moments are
	// merged.
	Workload workload.Identity
	// ClientID is an opaque identity chosen by the worker process,
	// making registration idempotent: if the coordinator applied a
	// Register but the reply was lost in the network, the retried call
	// returns the same processor index instead of burning a fresh
	// subsequence and orphaning the old index. Empty means
	// non-idempotent registration (every call assigns a new index).
	ClientID string
}

// RegisterReply assigns the worker its index, epoch and job.
type RegisterReply struct {
	Worker int // worker index (>= 1; the coordinator itself is rank 0)
	Spec   JobSpec
	Stop   bool // true when the job is already complete
	// Epoch is the registration generation of this worker index. It
	// bumps every time a pruned index re-registers, fencing the dead
	// session: pushes and heartbeats stamped with an older epoch are
	// rejected, so a zombie cannot race the fresh session's sequence
	// numbers. Workers echo it on every call.
	Epoch uint64
}

// AcquireArgs asks the coordinator for the next lease.
type AcquireArgs struct {
	Worker int
	Epoch  uint64
}

// AcquireReply carries the granted lease, or tells the worker to wait
// (all leases granted, outstanding ones may yet be reissued), stop
// (job complete), or re-register (stale epoch).
type AcquireReply struct {
	Lease   collect.Lease
	Granted bool
	Stop    bool
	Fenced  bool
}

// PushArgs carries one subtotal snapshot from a worker.
type PushArgs struct {
	Worker int
	Snap   stat.Snapshot
	// Seq is the worker's monotonic push sequence number (starting at
	// 1), the idempotency key: the coordinator acknowledges but does
	// not re-merge a sequence number it has already applied, so a push
	// whose reply was lost can be retried without double-counting
	// moments. Zero means unsequenced (legacy workers; always merged).
	Seq uint64
	// Epoch is the worker's registration epoch (0: legacy, unfenced).
	Epoch uint64
	// Lease is the grant the snapshot's realizations belong to, and
	// Done the cumulative count of that lease's realizations completed
	// once this snapshot merges — the collector's per-lease ledger, the
	// exact prefix a reissue must skip. Lease 0 means an unleased push.
	Lease uint64
	Done  int64
}

// PushReply tells the worker whether to continue. Fenced means the
// push was acknowledged but NOT merged: the sender's epoch is stale or
// its lease revoked, and it must re-register before doing more work.
type PushReply struct {
	Stop   bool
	Fenced bool
}

// HeartbeatArgs is the explicit proof-of-life call a worker makes
// between pushes (busy workers piggyback liveness on Push itself).
type HeartbeatArgs struct {
	Worker int
	Epoch  uint64
}

// HeartbeatReply mirrors PushReply for a payload-free call.
type HeartbeatReply struct {
	Stop   bool
	Fenced bool
}

// DoneArgs signals that a worker has stopped (voluntarily or on Stop).
type DoneArgs struct {
	Worker int
	// Retries and Reconnects report the transport-level resilience
	// work this worker performed, folded into the coordinator's
	// collector metrics for the job-wide delivery story.
	Retries    int64
	Reconnects int64
}

// DoneReply is empty.
type DoneReply struct{}

// ServiceName is the RPC service name workers dial.
const ServiceName = "Parmonc"

// Coordinator is the rank-0 process: it assigns processor indices and
// feeds pushed moments to the collector engine, which owns merging,
// checkpointing and results files. The coordinator itself is only the
// net/rpc transport.
type Coordinator struct {
	spec    JobSpec
	eng     *collect.Collector
	journal *obs.Journal // nil: no journaling

	mu        sync.Mutex
	next      int            // next worker index to hand out
	byClient  map[string]int // ClientID → assigned index (idempotent Register)
	epoch     map[int]uint64 // registration generation per worker index
	lm        *leaseManager
	stopped   atomic.Bool   // read lock-free on the push/heartbeat hot path
	completed chan struct{} // closed when target reached and all workers done

	heartbeat  time.Duration // worker liveness interval (0: supervision off)
	missBudget int
	drain      time.Duration
	reaperStop chan struct{}

	cm coordMetrics

	ln     net.Listener
	server *rpc.Server

	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool           // Close has begun; reject late-accepted conns
	serving sync.WaitGroup // one per in-flight ServeConn goroutine
}

// CoordinatorConfig bundles the optional knobs of NewCoordinator.
type CoordinatorConfig struct {
	WorkDir    string        // where parmonc_data is written; default "."
	AverPeriod time.Duration // how often pushes trigger a save; default 2 min
	Resume     bool          // merge the previous run's checkpoint

	// WorkerTimeout prunes workers that have not been heard from for
	// this long, so a crashed worker cannot stall job completion. It is
	// a convenience mapping onto heartbeat supervision: when the spec
	// sets no Heartbeat, the heartbeat interval becomes
	// WorkerTimeout / MissBudget, so a worker is declared dead after
	// roughly WorkerTimeout of silence. Unlike the pre-lease pruner,
	// the dead worker's unfinished lease windows are reissued to
	// surviving workers, so no requested realization is ever lost.
	// Zero (with no spec Heartbeat) disables supervision.
	WorkerTimeout time.Duration

	// MissBudget is how many consecutive heartbeat intervals a worker
	// may miss before it is declared dead, its leases revoked and
	// their uncomputed remainders reissued. Default 3.
	MissBudget int

	// SaveWorkerSnapshots writes each worker's cumulative moments to
	// parmonc_data/workers on every push, so the manaver command can
	// rebuild results if the coordinator dies before its final save —
	// the paper's post-mortem averaging workflow (Sec. 3.4).
	SaveWorkerSnapshots bool

	// DrainTimeout bounds how long Close waits for in-flight worker
	// connections to finish their RPCs before force-closing them, so a
	// final subtotal flush racing shutdown is merged instead of failing
	// with a spurious connection error. Default 2 s; negative disables
	// draining (immediate force-close).
	DrainTimeout time.Duration

	// Registry, if non-nil, receives the collector engine's metrics
	// plus coordinator-level gauges (active workers, sample volume,
	// target state). Serve it with obs.Serve (the parmonc coord --http
	// flag) to scrape a running job.
	Registry *obs.Registry

	// Journal, if non-nil, receives the run-event journal: every
	// collector event plus worker register/deregister records with
	// per-worker attribution. The caller owns the journal and closes
	// it after the job.
	Journal *obs.Journal
}

// NewCoordinator creates a coordinator listening on addr (e.g.
// "127.0.0.1:0"); the chosen address is available via Addr.
func NewCoordinator(spec JobSpec, cfg CoordinatorConfig, addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewCoordinatorOn(spec, cfg, ln)
	if err != nil {
		ln.Close()
	}
	return c, err
}

// NewCoordinatorOn is NewCoordinator serving on a caller-supplied
// listener. This is how the chaos suite interposes a fault-injecting
// faultnet.Listener between the coordinator and its workers; it also
// lets deployments bring their own (e.g. TLS) listeners. The
// coordinator takes ownership of ln and closes it in Close.
func NewCoordinatorOn(spec JobSpec, cfg CoordinatorConfig, ln net.Listener) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = "."
	}
	if cfg.AverPeriod == 0 {
		cfg.AverPeriod = 2 * time.Minute
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	if cfg.MissBudget <= 0 {
		cfg.MissBudget = 3
	}
	if spec.Heartbeat <= 0 && cfg.WorkerTimeout > 0 {
		spec.Heartbeat = cfg.WorkerTimeout / time.Duration(cfg.MissBudget)
		if spec.Heartbeat <= 0 {
			spec.Heartbeat = time.Millisecond
		}
	}
	lm, err := newLeaseManager(spec)
	if err != nil {
		return nil, err
	}
	dir, err := store.Open(cfg.WorkDir)
	if err != nil {
		return nil, err
	}
	meta := store.RunMeta{
		SeqNum:      spec.SeqNum,
		Nrow:        spec.Nrow,
		Ncol:        spec.Ncol,
		MaxSV:       spec.MaxSamples,
		Params:      spec.Params,
		Gamma:       spec.Gamma,
		StartedAt:   time.Now(),
		Workload:    spec.Workload.Name,
		Fingerprint: spec.Workload.Fingerprint(),
	}
	if spec.Workload.Digest != "" {
		meta.Scenario = workload.Spec{Workload: spec.Workload.Name, Params: spec.Workload.Params}.Canonical()
	}
	eng, err := collect.New(dir, meta, collect.Config{
		Resume:              cfg.Resume,
		AverPeriod:          cfg.AverPeriod,
		SaveWorkerSnapshots: cfg.SaveWorkerSnapshots,
		Registry:            cfg.Registry,
		Hook:                collect.JournalHook(cfg.Journal),
	})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		spec:       spec,
		eng:        eng,
		journal:    cfg.Journal,
		byClient:   map[string]int{},
		epoch:      map[int]uint64{},
		lm:         lm,
		completed:  make(chan struct{}),
		heartbeat:  spec.Heartbeat,
		missBudget: cfg.MissBudget,
		drain:      cfg.DrainTimeout,
		reaperStop: make(chan struct{}),
		conns:      map[net.Conn]struct{}{},
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.cm = newCoordMetrics(reg, c)
	if !spec.Workload.IsZero() {
		// Prometheus info pattern: a constant 1 whose labels carry the
		// workload identity, joinable against every other series.
		reg.Gauge("parmonc_workload_info", "Workload identity of the job this coordinator manages.",
			obs.L("workload", spec.Workload.Name),
			obs.L("fingerprint", spec.Workload.Fingerprint())).Set(1)
	}
	if cfg.Registry != nil {
		cfg.Registry.GaugeFunc("parmonc_coordinator_active_workers", "Workers currently attached to the coordinator.",
			func() float64 { return float64(eng.Active()) })
		cfg.Registry.GaugeFunc("parmonc_coordinator_samples_total", "Total sample volume merged so far (incl. resumed base).",
			func() float64 { return float64(eng.N()) })
		cfg.Registry.GaugeFunc("parmonc_coordinator_target_reached", "1 once the sample target has been met.",
			func() float64 {
				if eng.TargetReached() {
					return 1
				}
				return 0
			})
	}

	c.server = rpc.NewServer()
	if err := c.server.RegisterName(ServiceName, &service{c}); err != nil {
		return nil, err
	}
	c.ln = ln
	go c.acceptLoop()
	if c.heartbeat > 0 {
		go c.superviseLoop()
	}
	return c, nil
}

// coordMetrics are the coordinator-level supervision counters. They
// live in the caller's registry when one is configured (so /metrics
// exposes them) and in a private one otherwise; Status reads them
// either way.
type coordMetrics struct {
	heartbeats            *obs.Counter
	heartbeatMisses       *obs.Counter
	leasesGranted         *obs.Counter
	leasesReissued        *obs.Counter
	registrationsRejected *obs.Counter
}

func newCoordMetrics(reg *obs.Registry, c *Coordinator) coordMetrics {
	reg.GaugeFunc("parmonc_coordinator_leases_pending", "Leases waiting to be granted (including reissued remainders).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.lm.pendingCount())
		})
	return coordMetrics{
		heartbeats:            reg.Counter("parmonc_coordinator_heartbeats_total", "Explicit heartbeat RPCs received."),
		heartbeatMisses:       reg.Counter("parmonc_coordinator_heartbeat_misses_total", "Supervision ticks that found a worker past its heartbeat interval."),
		leasesGranted:         reg.Counter("parmonc_coordinator_leases_granted_total", "Leases granted to workers (including re-grants of reissued remainders)."),
		leasesReissued:        reg.Counter("parmonc_coordinator_leases_reissued_total", "Lease remainders reissued after their holder died or detached mid-window."),
		registrationsRejected: reg.Counter("parmonc_coordinator_registrations_rejected_total", "Worker registrations refused for a workload identity mismatch."),
	}
}

// superviseLoop is the coordinator's failure detector. Every heartbeat
// interval it journals a heartbeat_miss for each worker past one
// interval of silence, and declares workers past MissBudget intervals
// dead: their leases are revoked and the uncomputed remainders requeued
// at the front, so a surviving or newly joining worker recomputes
// exactly the realizations the dead worker never delivered.
func (c *Coordinator) superviseLoop() {
	tick := time.NewTicker(c.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-c.completed:
			return
		case <-tick.C:
			for _, w := range c.eng.Overdue(c.heartbeat) {
				c.cm.heartbeatMisses.Inc()
				if c.journal != nil {
					c.journal.Record(obs.Event{Kind: "heartbeat_miss", Worker: w})
				}
			}
			for _, w := range c.eng.Overdue(time.Duration(c.missBudget) * c.heartbeat) {
				rem := c.eng.RevokeWorker(w)
				c.mu.Lock()
				c.reissueLocked(w, rem)
				c.mu.Unlock()
			}
			c.mu.Lock()
			c.maybeCompleteLocked()
			c.mu.Unlock()
		}
	}
}

// reissueLocked requeues the uncomputed remainders of a dead or
// detached worker's leases. Called with c.mu held.
func (c *Coordinator) reissueLocked(w int, rem []collect.Lease) {
	if len(rem) == 0 {
		return
	}
	c.lm.requeueFront(rem)
	for _, r := range rem {
		c.cm.leasesReissued.Inc()
		if c.journal != nil {
			c.journal.Record(obs.Event{Kind: "lease_reissue", Worker: w, Samples: r.Count, Fields: map[string]any{
				"proc": r.Proc, "start": r.Start, "count": r.Count,
			}})
		}
	}
}

// PrunedWorkers reports how many workers were dropped for silence.
func (c *Coordinator) PrunedWorkers() int {
	return int(c.eng.Metrics().PrunedWorkers)
}

// Addr returns the address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.connMu.Lock()
		if c.closing {
			c.connMu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.serving.Add(1)
		c.connMu.Unlock()
		go func() {
			defer c.serving.Done()
			c.server.ServeConn(conn)
			c.connMu.Lock()
			delete(c.conns, conn)
			c.connMu.Unlock()
		}()
	}
}

// service wraps the coordinator so only the RPC methods are exported to
// the wire.
type service struct{ c *Coordinator }

// Register assigns the calling worker a processor index. With a
// non-empty ClientID the call is idempotent: a retry after a lost reply
// returns the already-assigned index instead of a fresh one.
func (s *service) Register(args RegisterArgs, reply *RegisterReply) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.spec.Workload.CheckWorker(args.Workload); err != nil {
		c.cm.registrationsRejected.Inc()
		if c.journal != nil {
			c.journal.Record(obs.Event{Kind: "register_reject", Fields: map[string]any{
				"hostname": args.Hostname, "workload": args.Workload.Fingerprint(),
				"job_workload": c.spec.Workload.Fingerprint(), "reason": err.Error(),
			}})
		}
		return fmt.Errorf("cluster: %w", err)
	}
	if args.ClientID != "" {
		if w, ok := c.byClient[args.ClientID]; ok {
			reply.Worker = w
			reply.Spec = c.spec
			reply.Stop = c.stopped.Load() || c.eng.TargetReached()
			if reply.Stop {
				// The worker will exit on Stop without calling Done;
				// release the index its first (reply-lost) Register
				// activated so it cannot stall completion.
				_ = c.eng.Deregister(w)
				c.maybeCompleteLocked()
				return nil
			}
			if !c.eng.IsActive(w) {
				// A pruned session is coming back. Admit it under a new
				// epoch: the engine resets its sequence space, and any
				// in-flight pushes of the dead session — stamped with
				// the old epoch — are fenced instead of racing the
				// reset. This closes the reused-index dedup hole.
				c.epoch[w]++
				c.eng.RegisterEpoch(w, c.epoch[w])
				if c.journal != nil {
					c.journal.Record(obs.Event{Kind: "register", Worker: w, Fields: map[string]any{
						"hostname": args.Hostname, "client_id": args.ClientID,
						"epoch": c.epoch[w], "rejoin": true,
					}})
				}
			} else {
				c.eng.Register(w) // refresh liveness (retried Register)
			}
			reply.Epoch = c.epoch[w]
			return nil
		}
	}
	if c.stopped.Load() || c.eng.TargetReached() {
		reply.Stop = true
		reply.Spec = c.spec
		return nil
	}
	c.next++
	w := c.next // worker indices start at 1; the coordinator is rank 0
	c.epoch[w] = 1
	c.eng.RegisterEpoch(w, 1)
	if args.ClientID != "" {
		c.byClient[args.ClientID] = w
	}
	if c.journal != nil {
		c.journal.Record(obs.Event{Kind: "register", Worker: w, Fields: map[string]any{
			"hostname": args.Hostname, "client_id": args.ClientID, "epoch": uint64(1),
		}})
	}
	reply.Worker = w
	reply.Epoch = 1
	reply.Spec = c.spec
	return nil
}

// Acquire hands the calling worker the next lease: a window of
// realization substreams it now owns. With nothing pending the worker
// is told to wait (an outstanding lease may yet be revoked and
// reissued); once the job is complete it is told to stop.
func (s *service) Acquire(args AcquireArgs, reply *AcquireReply) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped.Load() || c.eng.TargetReached() {
		reply.Stop = true
		return nil
	}
	if err := c.eng.Touch(args.Worker, args.Epoch); err != nil {
		if errors.Is(err, collect.ErrFenced) {
			reply.Fenced = true
			return nil
		}
		return err
	}
	// A worker asking for work holds no lease it knows about; any lease
	// the ledger still attributes to it is a grant whose reply was lost.
	// Requeue the remainder so this very call re-grants the window.
	c.lm.requeueFront(c.eng.ReclaimLeases(args.Worker))
	l, ok := c.lm.next()
	if !ok {
		return nil // nothing to grant right now: wait and re-acquire
	}
	if err := c.eng.GrantLease(args.Worker, l); err != nil {
		return err
	}
	c.cm.leasesGranted.Inc()
	if c.journal != nil {
		c.journal.Record(obs.Event{Kind: "lease_grant", Worker: args.Worker, Seq: l.ID, Samples: l.Count,
			Fields: map[string]any{"proc": l.Proc, "start": l.Start, "count": l.Count}})
	}
	reply.Lease = l
	reply.Granted = true
	return nil
}

// Heartbeat is a worker's explicit proof of life between pushes.
func (s *service) Heartbeat(args HeartbeatArgs, reply *HeartbeatReply) error {
	c := s.c
	c.cm.heartbeats.Inc()
	if err := c.eng.Touch(args.Worker, args.Epoch); err != nil {
		if errors.Is(err, collect.ErrFenced) {
			reply.Fenced = true
			return nil
		}
		return err
	}
	reply.Stop = c.stopped.Load() || c.eng.TargetReached()
	return nil
}

// Push merges a worker's subtotal moments through the collector engine,
// which validates the snapshot before merging: a malformed or
// wrong-dimension push is rejected with an error and cannot corrupt the
// totals. A sequence number the engine has already applied for this
// worker is acknowledged without re-merging, so retried deliveries are
// idempotent.
func (s *service) Push(args PushArgs, reply *PushReply) error {
	c := s.c
	err := c.eng.PushFrom(collect.PushOrigin{
		Worker: args.Worker,
		Epoch:  args.Epoch,
		Seq:    args.Seq,
		Lease:  args.Lease,
		Done:   args.Done,
	}, args.Snap)
	if errors.Is(err, collect.ErrFenced) {
		// Acknowledge without merging: the sender is a fenced zombie
		// and must stop retrying this payload and re-register.
		reply.Fenced = true
		return nil
	}
	if err != nil {
		return err
	}
	// The stop signal needs no coordinator lock: a push never touches
	// lease or assignment state, so the engine's sharded merge is the
	// only synchronization on this path.
	reply.Stop = c.stopped.Load() || c.eng.TargetReached()
	return nil
}

// Done releases a worker. A retried Done for a worker index that was
// assigned but is no longer active (the first delivery was applied but
// its reply lost, or the worker was pruned) succeeds idempotently.
func (s *service) Done(args DoneArgs, reply *DoneReply) error {
	c := s.c
	rem, err := c.eng.ReleaseWorker(args.Worker)
	if err != nil {
		c.mu.Lock()
		assigned := args.Worker >= 1 && args.Worker <= c.next
		c.mu.Unlock()
		if !assigned {
			return fmt.Errorf("cluster: done from unknown worker %d", args.Worker)
		}
		return nil // duplicate Done: already detached
	}
	c.eng.NoteTransport(args.Retries, args.Reconnects)
	if c.journal != nil {
		c.journal.Record(obs.Event{Kind: "deregister", Worker: args.Worker, Fields: map[string]any{
			"retries": args.Retries, "reconnects": args.Reconnects,
		}})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A worker that detached mid-lease (context cancelled, Stop seen)
	// flushed what it had; the rest of its window goes back in the
	// queue for someone else.
	c.reissueLocked(args.Worker, rem)
	c.maybeCompleteLocked()
	return nil
}

func (c *Coordinator) maybeCompleteLocked() {
	if c.eng.Active() == 0 && (c.stopped.Load() || c.eng.TargetReached()) {
		select {
		case <-c.completed:
		default:
			close(c.completed)
		}
	}
}

// Stop tells all workers (at their next push) to stop, even if the
// sample target has not been reached — the job-kill path.
func (c *Coordinator) Stop() {
	c.stopped.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maybeCompleteLocked()
}

// Wait blocks until the sample target is reached and all workers have
// detached, or ctx is cancelled (which stops the job). It then writes
// the final results and returns the merged report.
func (c *Coordinator) Wait(ctx context.Context) (stat.Report, error) {
	select {
	case <-c.completed:
	case <-ctx.Done():
		c.Stop()
		// Give workers a bounded grace period to drain, then finalize
		// with whatever has arrived.
		select {
		case <-c.completed:
		case <-time.After(5 * time.Second):
		}
	}
	return c.eng.Finalize()
}

// N returns the current total sample volume (including any resumed
// base).
func (c *Coordinator) N() int64 { return c.eng.N() }

// Status is a point-in-time view of the coordinator, including the
// collector engine's metrics. The JSON tags are the /statusz wire
// format of the ops HTTP server.
type Status struct {
	N               int64                   `json:"n"`                // total sample volume (incl. resumed base)
	ActiveWorkers   int                     `json:"active_workers"`   // workers currently attached
	Stopped         bool                    `json:"stopped"`          // Stop was called
	TargetReached   bool                    `json:"target_reached"`   // the sample target has been met
	Metrics         collect.MetricsSnapshot `json:"metrics"`          // engine counters
	LeasesGranted   int64                   `json:"leases_granted"`   // leases handed to workers
	LeasesReissued  int64                   `json:"leases_reissued"`  // remainders reissued after a holder died
	LeasesPending   int                     `json:"leases_pending"`   // leases waiting for a worker
	Heartbeats      int64                   `json:"heartbeats"`       // explicit heartbeat RPCs received
	HeartbeatMisses int64                   `json:"heartbeat_misses"` // supervision ticks that found an overdue worker
}

// Status reports the coordinator's current state and metrics.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	pending := c.lm.pendingCount()
	c.mu.Unlock()
	stopped := c.stopped.Load()
	return Status{
		N:               c.eng.N(),
		ActiveWorkers:   c.eng.Active(),
		Stopped:         stopped,
		TargetReached:   c.eng.TargetReached(),
		Metrics:         c.eng.Metrics(),
		LeasesGranted:   c.cm.leasesGranted.Value(),
		LeasesReissued:  c.cm.leasesReissued.Value(),
		LeasesPending:   pending,
		Heartbeats:      c.cm.heartbeats.Value(),
		HeartbeatMisses: c.cm.heartbeatMisses.Value(),
	}
}

// Close shuts down the coordinator: it stops accepting new workers,
// waits up to the configured DrainTimeout for in-flight worker
// connections to finish their RPCs (so a final subtotal flush racing
// shutdown is merged, not dropped with a spurious error), then
// force-closes whatever remains, and stops the reaper.
func (c *Coordinator) Close() error {
	select {
	case <-c.reaperStop:
	default:
		close(c.reaperStop)
	}
	err := c.ln.Close()

	c.connMu.Lock()
	c.closing = true
	c.connMu.Unlock()

	if c.drain > 0 {
		drained := make(chan struct{})
		go func() {
			c.serving.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(c.drain):
		}
	}

	// Force-close stragglers (wedged or still-connected workers) so
	// their ServeConn goroutines terminate.
	c.connMu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	c.serving.Wait()
	return err
}

// The worker half of the protocol lives in worker.go: RunWorker,
// RunNamedWorker, RunWorkerOpts and RunResilientWorker, all built on
// the retrying, reconnecting ResilientClient in retry.go.
